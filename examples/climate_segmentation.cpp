// End-to-end climate-science scenario (the paper's motivating use case,
// Secs III-A and VIII-A): generate a CAM5-like dataset, produce heuristic
// ground truth with the TECA-style labeler, train the modified
// DeepLabv3+ network, then use the predicted masks the way a climate
// scientist would — per-storm statistics such as counts and conditional
// precipitation, which pixel-level segmentation makes possible for the
// first time (Sec VIII-A).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "data/labeler.hpp"
#include "obs/obs.hpp"
#include "train/trainer.hpp"

namespace {

using namespace exaclim;

char MaskChar(std::uint8_t c) {
  switch (c) {
    case kAtmosphericRiver: return 'a';
    case kTropicalCyclone: return 'T';
    default: return '.';
  }
}

// Per-event statistics from a predicted mask: storm count and
// conditional precipitation (mean PRECT over event pixels) — the
// "sophisticated metrics" of Sec VIII-A.
struct StormStats {
  int cyclones = 0;
  int rivers = 0;
  double tc_precip = 0.0;
  double ar_precip = 0.0;
  double bg_precip = 0.0;
};

StormStats AnalyzeStorms(const std::vector<std::uint8_t>& mask,
                         const ClimateSample& sample) {
  StormStats stats;
  const std::int64_t hw = sample.height * sample.width;
  // Storm counts from connected components of each class.
  for (const auto& [cls, counter] :
       {std::pair<std::uint8_t, int*>{kTropicalCyclone, &stats.cyclones},
        {kAtmosphericRiver, &stats.rivers}}) {
    std::vector<std::uint8_t> class_mask(mask.size());
    for (std::size_t i = 0; i < mask.size(); ++i) {
      class_mask[i] = mask[i] == cls ? 1 : 0;
    }
    *counter =
        ConnectedComponents(class_mask, sample.height, sample.width).count;
  }
  // Conditional precipitation.
  double sums[3] = {0, 0, 0};
  std::int64_t counts[3] = {0, 0, 0};
  for (std::int64_t p = 0; p < hw; ++p) {
    const std::uint8_t c = mask[static_cast<std::size_t>(p)];
    sums[c] += sample.fields[static_cast<std::size_t>(kPRECT * hw + p)];
    ++counts[c];
  }
  stats.bg_precip = counts[0] ? sums[0] / counts[0] : 0;
  stats.ar_precip = counts[1] ? sums[1] / counts[1] : 0;
  stats.tc_precip = counts[2] ? sums[2] / counts[2] : 0;
  return stats;
}

}  // namespace

int main() {
  // EXACLIM_TRACE=/tmp/trace.json enables step profiling: a Chrome-trace
  // file plus the metrics report on exit (see README "Observability").
  obs::EnableFromEnv();

  // Eventful synthetic climate with all 16 CAM5 variables.
  ClimateDataset::Options data;
  data.num_samples = 70;
  data.generator.height = 48;
  data.generator.width = 72;
  data.generator.mean_cyclones = 1.6;
  data.generator.mean_rivers = 1.4;
  data.channels = {kTMQ, kU850, kV850, kPSL};
  const ClimateDataset dataset(data);

  std::printf("=== climate segmentation: modified DeepLabv3+ ===\n");
  TrainerOptions opts;
  opts.arch = TrainerOptions::Arch::kDeepLab;
  opts.deeplab = DeepLabV3Plus::Config::Downscaled(4);
  opts.learning_rate = 3e-3f;
  opts.local_batch = 2;
  const auto freq = dataset.MeasureFrequencies(16);
  RankTrainer trainer(opts,
                      MakeClassWeights(freq, WeightingScheme::kInverseSqrt),
                      0);
  std::printf("model parameters: %lld\n",
              static_cast<long long>(trainer.ParameterCount()));

  Rng rng(99);
  for (int s = 0; s < 350; ++s) {
    std::vector<std::int64_t> idx(2);
    for (auto& i : idx) {
      i = rng.Int(0, dataset.size(DatasetSplit::kTrain) - 1);
    }
    const auto r =
        trainer.Step(dataset.MakeBatch(DatasetSplit::kTrain, idx));
    if ((s + 1) % 70 == 0) {
      std::printf("  step %3d  loss %.4f  acc %.1f%%\n", s + 1, r.loss,
                  r.pixel_accuracy * 100);
    }
  }

  const ConfusionMatrix cm =
      trainer.Evaluate(dataset, DatasetSplit::kValidation, 6);
  std::printf(
      "\nvalidation IoU: BG %.1f%%, AR %.1f%%, TC %.1f%% (mean %.1f%%)\n",
      cm.IoU(0) * 100, cm.IoU(1) * 100, cm.IoU(2) * 100, cm.MeanIoU() * 100);

  // Pick an eventful validation sample and show masks + science metrics.
  std::int64_t best = 0, best_events = -1;
  for (std::int64_t i = 0; i < dataset.size(DatasetSplit::kValidation);
       ++i) {
    const auto s = dataset.GetSample(DatasetSplit::kValidation, i);
    const auto events = static_cast<std::int64_t>(
        std::count_if(s.labels.begin(), s.labels.end(),
                      [](std::uint8_t l) { return l != kBackground; }));
    if (events > best_events) {
      best_events = events;
      best = i;
    }
  }
  const ClimateSample sample =
      dataset.GetSample(DatasetSplit::kValidation, best);
  const Batch batch = dataset.MakeBatch(DatasetSplit::kValidation,
                                        std::vector<std::int64_t>{best});
  const Tensor logits = trainer.model().Forward(batch.fields, false);
  const auto pred = PredictClasses(logits);

  std::printf("\nheuristic labels (top) vs predicted masks (bottom); "
              "a = AR, T = TC\n");
  const std::int64_t h = sample.height, w = sample.width;
  for (std::int64_t y = 0; y < h; y += 2) {
    std::string row;
    for (std::int64_t x = 0; x < w; ++x) {
      row += MaskChar(sample.labels[static_cast<std::size_t>(y * w + x)]);
    }
    std::printf("%s\n", row.c_str());
  }
  std::printf("%s\n", std::string(static_cast<std::size_t>(w), '-').c_str());
  for (std::int64_t y = 0; y < h; y += 2) {
    std::string row;
    for (std::int64_t x = 0; x < w; ++x) {
      row += MaskChar(pred[static_cast<std::size_t>(y * w + x)]);
    }
    std::printf("%s\n", row.c_str());
  }

  const StormStats truth_stats = AnalyzeStorms(sample.labels, sample);
  const StormStats pred_stats = AnalyzeStorms(pred, sample);
  std::printf(
      "\nper-storm science metrics (Sec VIII-A):\n"
      "  storm counts     — labels: %d TC, %d AR; predicted: %d TC, %d "
      "AR\n"
      "  conditional precipitation (mean PRECT anomaly):\n"
      "    labels:    TC %.2f, AR %.2f, background %.2f\n"
      "    predicted: TC %.2f, AR %.2f, background %.2f\n",
      truth_stats.cyclones, truth_stats.rivers, pred_stats.cyclones,
      pred_stats.rivers, truth_stats.tc_precip, truth_stats.ar_precip,
      truth_stats.bg_precip, pred_stats.tc_precip, pred_stats.ar_precip,
      pred_stats.bg_precip);

  obs::FinishFromEnv();
  return 0;
}
