// Data-plane walkthrough (Secs V-A1 and V-A2): serialise climate samples
// into NCF container files, stage them across simulated nodes with the
// distributed stager (disjoint filesystem reads + point-to-point
// redistribution), then feed training through the prefetching input
// pipeline — the same path the paper's runs took from GPFS to GPU.
//
//   ./build/examples/example_staging_pipeline

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>

#include "io/pipeline.hpp"
#include "io/sample_io.hpp"
#include "io/staging.hpp"
#include "obs/obs.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace exaclim;
  namespace fs = std::filesystem;

  // EXACLIM_TRACE=/tmp/trace.json profiles the staging phases and the
  // pipeline/training steps below into one Chrome-trace timeline.
  obs::EnableFromEnv();

  // ---- 1. "Simulation output": NCF files on the global filesystem.
  const fs::path dir = fs::temp_directory_path() / "exaclim_staging_demo";
  fs::create_directories(dir);
  const int num_files = 24;
  ClimateGenerator gen({.height = 32, .width = 48});
  HeuristicLabeler labeler;
  MockGlobalFs global_fs;
  std::printf("writing %d NCF snapshot files...\n", num_files);
  for (int f = 0; f < num_files; ++f) {
    ClimateSample sample = gen.Generate(7, f);
    labeler.LabelInPlace(sample);
    const fs::path path = dir / ("snap" + std::to_string(f) + ".ncf");
    WriteSampleFile(path, sample);
    // Register the serialised bytes with the instrumented global FS.
    std::ifstream in(path, std::ios::binary);
    std::vector<std::byte> bytes(
        static_cast<std::size_t>(fs::file_size(path)));
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    global_fs.Put(f, std::move(bytes));
  }

  // ---- 2. Distributed staging over 6 simulated nodes, each wanting a
  // random half of the catalogue (the Sec V-A1 resampling).
  const int ranks = 6;
  std::vector<std::set<int>> needs(ranks);
  for (int r = 0; r < ranks; ++r) {
    Rng rng(40 + r);
    while (static_cast<int>(needs[static_cast<std::size_t>(r)].size()) <
           num_files / 2) {
      needs[static_cast<std::size_t>(r)].insert(
          static_cast<int>(rng.Int(0, num_files - 1)));
    }
  }
  std::vector<std::map<int, std::vector<std::byte>>> staged(ranks);
  SimWorld world(ranks);
  world.Run([&](Communicator& comm) {
    staged[static_cast<std::size_t>(comm.rank())] = StageDataset(
        comm, global_fs, needs[static_cast<std::size_t>(comm.rank())],
        num_files);
  });
  std::printf(
      "staged %d files/node across %d nodes: %lld filesystem reads "
      "(exactly one per file), %.0f KB over the interconnect\n",
      num_files / 2, ranks, static_cast<long long>(global_fs.total_reads()),
      world.total_bytes() / 1024.0);

  // Model view at machine scale for context.
  const StagingModel model;
  std::printf(
      "at Summit scale the same algorithm stages 1024 nodes in %.1f min "
      "(naive: %.0f min)\n",
      model.DistributedStageSeconds(1024, 8) / 60.0,
      model.NaiveStageSeconds(1024, 8) / 60.0);

  // ---- 3. Input pipeline over the locally staged bytes of rank 0:
  // parse NCF images from memory via temp files (the node-local SSD).
  const fs::path local = dir / "node0_ssd";
  fs::create_directories(local);
  std::vector<fs::path> local_paths;
  for (const auto& [id, bytes] : staged[0]) {
    const fs::path p = local / ("staged" + std::to_string(id) + ".ncf");
    std::ofstream out(p, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    local_paths.push_back(p);
  }
  InputPipeline pipeline(
      [&](std::int64_t index) {
        const ClimateSample s = ReadSampleFile(
            local_paths[static_cast<std::size_t>(index) %
                        local_paths.size()]);
        Batch b;
        b.fields = s.fields.Reshaped(TensorShape::NCHW(
            1, kNumClimateChannels, s.height, s.width));
        b.labels = s.labels;
        return b;
      },
      36, {.workers = 3, .prefetch_depth = 4});

  // ---- 4. Consume the pipeline with a real training loop.
  TrainerOptions opts;
  opts.arch = TrainerOptions::Arch::kTiramisu;
  opts.tiramisu = Tiramisu::Config::Downscaled(16);
  opts.learning_rate = 2e-3f;
  const std::array<double, 3> freq{0.975, 0.022, 0.003};
  RankTrainer trainer(opts,
                      MakeClassWeights(freq, WeightingScheme::kInverseSqrt),
                      0);
  int steps = 0;
  double loss = 0;
  while (auto batch = pipeline.Next()) {
    loss = trainer.Step(*batch).loss;
    ++steps;
  }
  const PipelineStats stats = pipeline.Stats();
  std::printf(
      "trained %d steps straight off the staged pipeline; final loss "
      "%.4f\n"
      "pipeline: produced %lld, consumed %lld, producer time %.2f s, "
      "consumer wait %.3f s\n",
      steps, loss, static_cast<long long>(stats.produced),
      static_cast<long long>(stats.consumed), stats.produce_seconds,
      stats.wait_seconds);

  fs::remove_all(dir);
  obs::FinishFromEnv();
  std::printf("done.\n");
  return 0;
}
