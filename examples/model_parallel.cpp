// Model-parallelism outlook (Sec VIII-B): "Systems like Summit (with
// high speed NVLink connections between processors) are amenable to
// domain decomposition techniques that split layers across processors."
//
// This example splits a convolution stack spatially across 4 simulated
// ranks with halo exchange, verifies the distributed forward/backward
// against the single-device computation, and sketches the combined
// data+model-parallel arithmetic at machine scale.
//
//   ./build/examples/example_model_parallel

#include <cstdio>
#include <cstring>

#include "comm/collectives.hpp"
#include "netsim/scale.hpp"
#include "train/spatial_parallel.hpp"

int main() {
  using namespace exaclim;

  const int ranks = 4;
  const std::int64_t h = 32, w = 24;
  Rng rng(1);
  const Tensor full =
      Tensor::Uniform(TensorShape::NCHW(1, 4, h, w), rng, -1.0f, 1.0f);

  SpatialConvStack::Options opts;
  opts.in_c = 4;
  opts.widths = {8, 8, 3};
  opts.seed = 7;

  // Single-device reference.
  SpatialConvStack reference(opts);
  const Tensor expected = reference.ForwardLocal(full);

  // Distributed: each rank holds an h/4 slab; halos are exchanged before
  // every convolution.
  std::printf("spatial decomposition: %lldx%lld image into %d slabs of "
              "%lldx%lld (halo %lld)\n",
              static_cast<long long>(h), static_cast<long long>(w), ranks,
              static_cast<long long>(h / ranks), static_cast<long long>(w),
              static_cast<long long>(reference.halo()));
  std::vector<Tensor> outputs(ranks);
  std::int64_t halo_messages = 0;
  SimWorld world(ranks);
  world.Run([&](Communicator& comm) {
    SpatialConvStack stack(opts);  // replicated weights (same seed)
    const std::int64_t local_h = h / ranks;
    Tensor slab(TensorShape::NCHW(1, 4, local_h, w));
    for (std::int64_t c = 0; c < 4; ++c) {
      std::memcpy(slab.Raw() + c * local_h * w,
                  full.Raw() + c * h * w + comm.rank() * local_h * w,
                  sizeof(float) * static_cast<std::size_t>(local_h * w));
    }
    comm.ResetCounters();
    outputs[static_cast<std::size_t>(comm.rank())] =
        stack.Forward(comm, slab);
    if (comm.rank() == 1) halo_messages = comm.messages_sent();
  });

  double max_err = 0.0;
  const std::int64_t local_h = h / ranks;
  for (int r = 0; r < ranks; ++r) {
    const Tensor& out = outputs[static_cast<std::size_t>(r)];
    for (std::int64_t c = 0; c < 3; ++c) {
      for (std::int64_t y = 0; y < local_h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          max_err = std::max(
              max_err, std::abs(static_cast<double>(out.At(0, c, y, x)) -
                                expected.At(0, c, r * local_h + y, x)));
        }
      }
    }
  }
  std::printf(
      "distributed forward matches single device: max |diff| = %.2e "
      "(interior rank sent %lld halo messages for %zu convs)\n",
      max_err, static_cast<long long>(halo_messages), opts.widths.size());

  // Machine-scale sketch: model parallelism divides the per-GPU
  // activation footprint and per-sample compute by the decomposition
  // width; halo traffic rides NVLink inside a node (Sec VIII-B's point).
  const ArchSpec spec = PaperDeepLabSpec(16);
  const auto cost = AnalyzeTraining(spec, Precision::kFP16, 2);
  const MachineModel summit = MachineModel::Summit();
  std::printf(
      "\noutlook at Summit scale (DeepLabv3+ FP16, one node of 6 GPUs "
      "splitting one sample):\n");
  for (const int split : {1, 2, 3, 6}) {
    const double act_bytes = cost.TotalBytes() / split;
    // Halo traffic per conv ~ 2 rows x W x C at each cut; dwarfed by
    // NVLink bandwidth.
    const double halo_bytes =
        2.0 * (split - 1) * 1152 * 256 * 2.0 *
        static_cast<double>(spec.CountOps(OpSpec::Kind::kConv));
    std::printf(
        "  split %d-way: ~%.1f GB activations/GPU, halo traffic %.2f GB "
        "(%.1f ms on NVLink)\n",
        split, act_bytes / 1e9, halo_bytes / 1e9,
        halo_bytes / summit.nvlink_bw * 1e3);
  }
  std::printf(
      "The halo exchanges add milliseconds per step on NVLink — the reason "
      "the paper\ncalls intra-node model parallelism the natural next step "
      "for networks too large\nfor one GPU's memory.\n");
  return 0;
}
