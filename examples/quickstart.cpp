// Quickstart: the shortest path through the public API.
//
// Generates a small synthetic climate dataset, trains a downscaled
// Tiramisu segmentation network for a few epochs across 4 simulated
// data-parallel ranks (full Horovod-style gradient exchange), and prints
// the loss curve and validation IoU.
//
//   ./build/examples/example_quickstart

#include <cstdio>

#include "stats/stats.hpp"
#include "train/trainer.hpp"

int main() {
  using namespace exaclim;

  // 1. A deterministic synthetic CAM5-like dataset, labelled by the
  //    TECA-style heuristics (threshold TC detection + moisture
  //    floodfill for ARs).
  ClimateDataset::Options data;
  data.num_samples = 60;
  data.generator.height = 32;
  data.generator.width = 48;
  data.generator.mean_cyclones = 1.5;  // eventful grid for a small demo
  data.generator.mean_rivers = 1.5;
  data.channels = {kTMQ, kU850, kV850, kPSL};  // the Piz Daint 4-channel set
  const ClimateDataset dataset(data);
  const auto freq = dataset.MeasureFrequencies(16);
  std::printf("class frequencies: BG %.1f%%, AR %.2f%%, TC %.3f%%\n",
              freq[0] * 100, freq[1] * 100, freq[2] * 100);

  // 2. Training configuration: weighted loss (inverse-sqrt frequencies),
  //    Adam + LARC, hierarchical control plane, ring all-reduce.
  TrainerOptions opts;
  opts.arch = TrainerOptions::Arch::kTiramisu;
  opts.tiramisu = Tiramisu::Config::Downscaled(4);
  opts.learning_rate = 2e-3f;
  opts.exchanger.transport = ReduceTransport::kMpiRing;

  // 3. Train for 60 steps over 4 simulated ranks.
  std::printf("training Tiramisu over 4 data-parallel ranks...\n");
  const TrainRunResult result =
      RunDistributedTraining(opts, dataset, /*ranks=*/4, /*steps=*/100,
                             /*images_per_rank=*/16);
  const auto smoothed = MovingAverage(result.loss_history, 10);
  for (std::size_t s = 9; s < smoothed.size(); s += 10) {
    std::printf("  step %3zu  loss %.4f\n", s + 1, smoothed[s]);
  }

  // 4. Evaluate a fresh replica trained the same way (rank replicas are
  //    bit-identical, so rank 0's model is THE model).
  RankTrainer trainer(opts,
                      MakeClassWeights(freq, WeightingScheme::kInverseSqrt),
                      0);
  Rng rng(1);
  for (int s = 0; s < 100; ++s) {
    std::vector<std::int64_t> idx{
        rng.Int(0, dataset.size(DatasetSplit::kTrain) - 1)};
    (void)trainer.Step(dataset.MakeBatch(DatasetSplit::kTrain, idx));
  }
  const ConfusionMatrix cm =
      trainer.Evaluate(dataset, DatasetSplit::kValidation, 5);
  std::printf(
      "validation: pixel accuracy %.1f%%, mean IoU %.1f%% (BG %.1f%%, AR "
      "%.1f%%, TC %.1f%%)\n",
      cm.PixelAccuracy() * 100, cm.MeanIoU() * 100, cm.IoU(0) * 100,
      cm.IoU(1) * 100, cm.IoU(2) * 100);
  std::printf("done.\n");
  return 0;
}
