// Scaling-study walkthrough: drive the at-scale performance model the
// way the paper's Sec VII-B experiments were run — sweep GPU counts on
// Summit and Piz Daint, compare control planes, all-reduce transports,
// gradient lag and precisions, and decompose where each step's time
// goes.
//
//   ./build/examples/example_scaling_study

#include <cstdio>

#include "netsim/scale.hpp"

int main() {
  using namespace exaclim;

  // DeepLabv3+ on Summit, anchored at the paper's measured single-GPU
  // rates (Fig 2).
  ScaleOptions base;
  base.machine = MachineModel::Summit();
  base.spec = PaperDeepLabSpec(16);
  base.precision = Precision::kFP16;
  base.local_batch = 2;
  base.lag = 1;
  base.anchor_samples_per_sec = 2.67;
  base.anchor_tf_per_sample = 14.41;

  std::printf("=== DeepLabv3+ FP16 on Summit (lag 1, hybrid, hierarchical) "
              "===\n");
  std::printf("%8s %12s %10s %8s | step decomposition [ms]\n", "GPUs",
              "images/s", "PF/s", "eff");
  ScaleSimulator sim(base);
  for (const int gpus : {6, 96, 1536, 6144, 27360}) {
    const ScalePoint p = sim.Simulate(gpus);
    std::printf(
        "%8d %12.0f %10.1f %7.1f%% | compute %.0f, comm %.1f, ctrl %.2f, "
        "straggler %.1f\n",
        gpus, p.images_per_sec, p.pflops_sustained, p.efficiency * 100,
        p.compute_seconds * 1e3, p.exposed_comm_seconds * 1e3,
        p.control_seconds * 1e3, p.straggler_seconds * 1e3);
  }

  std::printf("\n=== what breaks without the paper's innovations (27360 "
              "GPUs) ===\n");
  struct Variant {
    const char* name;
    bool hier;
    bool hybrid;
    int lag;
  };
  for (const Variant v : {Variant{"all innovations", true, true, 1},
                          {"flat control plane", false, true, 1},
                          {"flat ring all-reduce", true, false, 1},
                          {"no gradient lag", true, true, 0},
                          {"none of them", false, false, 0}}) {
    ScaleOptions o = base;
    o.hierarchical_control = v.hier;
    o.hybrid_allreduce = v.hybrid;
    o.lag = v.lag;
    const ScalePoint p = ScaleSimulator(o).Simulate(27360);
    std::printf("  %-22s %9.0f images/s  %6.1f PF/s  %5.1f%% efficiency\n",
                v.name, p.images_per_sec, p.pflops_sustained,
                p.efficiency * 100);
  }

  std::printf("\n=== Piz Daint full machine (Tiramisu FP32, 4 channels) "
              "===\n");
  ScaleOptions daint;
  daint.machine = MachineModel::PizDaint();
  Tiramisu::Config cfg = Tiramisu::Config::Modified();
  cfg.in_channels = 4;
  daint.spec = BuildTiramisuSpec(cfg, 768, 1152);
  daint.precision = Precision::kFP32;
  daint.hybrid_allreduce = false;
  daint.anchor_samples_per_sec = 1.20;
  daint.anchor_tf_per_sample = 3.703;
  ScaleSimulator daint_sim(daint);
  for (const int gpus : {256, 1024, 2048, 5300}) {
    const ScalePoint p = daint_sim.Simulate(gpus);
    std::printf("  %5d GPUs: %8.0f images/s, %5.2f PF/s, %5.1f%% "
                "efficiency\n",
                gpus, p.images_per_sec, p.pflops_sustained,
                p.efficiency * 100);
  }

  // Sec III-A: strong scaling (fixed global batch) for when large-batch
  // hyperparameters cannot be found — efficiency collapses once the
  // per-GPU batch shrinks, which is why the paper weak-scales.
  std::printf("\n=== strong scaling, global batch 8192 (DeepLabv3+ FP16) "
              "===\n");
  for (const int gpus : {512, 1024, 2048, 4096}) {
    const ScalePoint p = sim.SimulateStrongScaling(gpus, 8192);
    std::printf(
        "  %5d GPUs (batch/GPU %4d): %8.0f images/s, %5.1f%% efficiency\n",
        gpus, 8192 / gpus, p.images_per_sec, p.efficiency * 100);
  }
  std::printf("  (weak scaling at 4096 GPUs for comparison: %5.1f%%)\n",
              sim.Simulate(4096).efficiency * 100);

  std::printf(
      "\nFull-Summit FP16 headline: %.2f EF/s peak-step estimate "
      "(paper: 1.13 EF/s)\n",
      sim.Simulate(27360).pflops_sustained * 1.13 / 1e3);
  return 0;
}
