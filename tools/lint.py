#!/usr/bin/env python3
"""Repo-rule lint engine for the exaclim codebase.

Run from the repo root (the `lint` CMake target does this):

    python3 tools/lint.py [--list-rules] [paths...]

The engine walks every C++ file once, builds a shared FileContext
(raw lines, comment/string-stripped code lines, full text) and hands it
to each registered Rule object. Rules carry their own id and docstring;
`--list-rules` prints the registry.

Suppression: a finding on a line is suppressed by annotating that line
with `// lint:allow` (suppresses every rule — legacy form, use sparingly)
or `// lint:allow(rule-id)` / `// lint:allow(rule-a,rule-b)` to suppress
only the named rules. File-scoped rules (pragma-once, guarded-include,
alloc-guard-include) are structural and cannot be line-suppressed.

Hot-path regions: code between `// hot-path: begin` and
`// hot-path: end` markers — plus every file listed in
tools/hot_path_manifest.txt — is subject to the hot-path-alloc rule.

Exit status: 0 when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIRS = ["src", "bench", "examples", "tests"]
CPP_SUFFIXES = {".cpp", ".hpp"}
HOT_PATH_MANIFEST = REPO_ROOT / "tools" / "hot_path_manifest.txt"

ALLOW_RE = re.compile(r"lint:allow(?:\(([^)]*)\))?")
HOT_BEGIN_MARKER = "hot-path: begin"
HOT_END_MARKER = "hot-path: end"


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of string/char literals and // comments.

    Block comments spanning lines are handled by the caller feeding us
    pre-filtered lines; within a line we drop /* ... */ spans too.
    """
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(quote + quote)  # keep token boundaries
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                break
            i = end + 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


def strip_comments_keep_strings(line: str) -> str:
    """Drops // and /* */ comment text but keeps string literal contents
    (for rules that must inspect them, e.g. getenv names)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            start = i
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(line[start:i])
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                break
            i = end + 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


def suppressed(raw_line: str, rule_id: str) -> bool:
    """True when `raw_line` carries a lint:allow marker covering rule_id."""
    for match in ALLOW_RE.finditer(raw_line):
        names = match.group(1)
        if names is None:
            return True  # bare lint:allow suppresses everything
        if rule_id in {n.strip() for n in names.split(",")}:
            return True
    return False


@dataclass
class FileContext:
    """Everything a rule needs about one file, computed once."""

    rel: Path                 # path relative to the repo root
    raw_lines: list[str]
    code_lines: list[str]     # comments + string contents stripped
    text: str
    root: Path                # repo root the include resolver runs against
    in_hot_manifest: bool = False
    _hot_lines: set[int] | None = field(default=None, repr=False)
    _unbalanced_hot: list[tuple[int, str]] = field(default_factory=list)

    def hot_lines(self) -> set[int]:
        """1-based line numbers inside hot-path regions (markers included).

        Also records unbalanced markers into _unbalanced_hot for the
        hot-path-alloc rule to report.
        """
        if self._hot_lines is not None:
            return self._hot_lines
        hot: set[int] = set()
        open_line = 0
        for lineno, raw in enumerate(self.raw_lines, 1):
            if HOT_BEGIN_MARKER in raw:
                if open_line:
                    self._unbalanced_hot.append(
                        (lineno, "nested 'hot-path: begin' (already open "
                                 f"since line {open_line})"))
                open_line = lineno
            elif HOT_END_MARKER in raw:
                if not open_line:
                    self._unbalanced_hot.append(
                        (lineno, "'hot-path: end' without a matching begin"))
                else:
                    hot.update(range(open_line, lineno + 1))
                    open_line = 0
        if open_line:
            self._unbalanced_hot.append(
                (open_line, "'hot-path: begin' never closed"))
        self._hot_lines = hot
        return hot


class Linter:
    def __init__(self, root: Path = REPO_ROOT,
                 hot_manifest: set[str] | None = None) -> None:
        self.root = root
        self.findings: list[str] = []
        if hot_manifest is None:
            hot_manifest = load_hot_manifest(HOT_PATH_MANIFEST)
        self.hot_manifest = hot_manifest

    def report(self, rel: Path, lineno: int, rule: str, message: str) -> None:
        self.findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    def report_line(self, ctx: FileContext, lineno: int, rule: str,
                    message: str) -> None:
        """Like report(), but honours line-level lint:allow suppression."""
        raw = ctx.raw_lines[lineno - 1] if lineno <= len(ctx.raw_lines) else ""
        if suppressed(raw, rule):
            return
        self.report(ctx.rel, lineno, rule, message)

    def make_context(self, path: Path) -> FileContext:
        rel = path.relative_to(self.root)
        text = path.read_text(encoding="utf-8")
        raw_lines = text.splitlines()

        # Pre-filter block comments across lines.
        code_lines: list[str] = []
        in_block = False
        for raw in raw_lines:
            line = raw
            if in_block:
                end = line.find("*/")
                if end == -1:
                    code_lines.append("")
                    continue
                line = line[end + 2:]
                in_block = False
            stripped = strip_comments_and_strings(line)
            # strip_comments drops unterminated /* spans; detect them to
            # carry block-comment state forward.
            opener = line.find("/*")
            if opener != -1 and line.find("*/", opener + 2) == -1:
                in_block = True
            code_lines.append(stripped)

        return FileContext(
            rel=rel, raw_lines=raw_lines, code_lines=code_lines, text=text,
            root=self.root,
            in_hot_manifest=rel.as_posix() in self.hot_manifest)

    def lint_file(self, path: Path) -> None:
        ctx = self.make_context(path)
        for rule in RULES:
            rule.check(ctx, self)


# ------------------------------------------------------------------ rules --


class Rule:
    """One lint rule: an id, a one-line docstring, and a check pass."""

    id = ""
    doc = ""

    def check(self, ctx: FileContext, linter: Linter) -> None:
        raise NotImplementedError


class PragmaOnceRule(Rule):
    id = "pragma-once"
    doc = "every header starts with #pragma once."

    def check(self, ctx: FileContext, linter: Linter) -> None:
        if ctx.rel.suffix != ".hpp":
            return
        for raw in ctx.raw_lines:
            s = raw.strip()
            if not s or s.startswith("//"):
                continue
            if s != "#pragma once":
                linter.report(ctx.rel, 1, self.id,
                              "header must start with #pragma once")
            return


class EndlRule(Rule):
    id = "endl"
    doc = "no std::endl — it flushes; use '\\n'."

    RE = re.compile(r"std::endl\b")

    def check(self, ctx: FileContext, linter: Linter) -> None:
        for lineno, code in enumerate(ctx.code_lines, 1):
            if self.RE.search(code):
                linter.report_line(ctx, lineno, self.id,
                                   "std::endl flushes the stream; use '\\n'")


class RawMutexRule(Rule):
    id = "raw-mutex"
    doc = ("no std::mutex / std::condition_variable / std::lock_guard / "
           "std::unique_lock / std::scoped_lock outside src/common/sync.hpp. "
           "The annotated exaclim::Mutex / MutexLock / CondVar wrappers are "
           "what give Clang's thread-safety analysis visibility.")

    RE = re.compile(
        r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|"
        r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
        r"shared_lock)\b")
    ALLOWED = {Path("src/common/sync.hpp")}

    def check(self, ctx: FileContext, linter: Linter) -> None:
        if ctx.rel in self.ALLOWED:
            return
        for lineno, code in enumerate(ctx.code_lines, 1):
            m = self.RE.search(code)
            if m:
                linter.report_line(
                    ctx, lineno, self.id,
                    f"raw std::{m.group(1)}; use exaclim::Mutex / "
                    "MutexLock / CondVar from common/sync.hpp")


class NakedNewRule(Rule):
    id = "naked-new"
    doc = ("no naked `new` / `delete` in library code — use "
           "std::make_unique / std::vector / RAII owners.")

    NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_:(]")
    DELETE_RE = re.compile(r"(?<![\w.])delete(\[\])?\s+[A-Za-z_:(*]")

    def check(self, ctx: FileContext, linter: Linter) -> None:
        for lineno, code in enumerate(ctx.code_lines, 1):
            if self.NEW_RE.search(code) or self.DELETE_RE.search(code):
                linter.report_line(ctx, lineno, self.id,
                                   "naked new/delete; use std::make_unique "
                                   "or a container")


class UnboundedRecvRule(Rule):
    id = "unbounded-recv"
    doc = ("no unbounded Recv/RecvT/RecvAny/RecvValue in src/ outside "
           "src/comm/world.*: a blocking receive hangs forever on a dead "
           "peer (DESIGN §8, §13 — the elastic exchange path must stay "
           "fully bounded). Use RecvTimeout / TryRecv / RecvValueTimeout, "
           "or annotate the line with `// fault: blocking-ok` where a "
           "blocking wait is intended (e.g. collectives over live ranks).")

    # Won't match RecvTimeout / TryRecv / RecvValueTimeout, whose names
    # diverge after the prefix.
    RE = re.compile(r"(\.|->)Recv(T|Any|Value)?\s*[<(]")
    BLOCKING_OK_MARKER = "fault: blocking-ok"

    def check(self, ctx: FileContext, linter: Linter) -> None:
        posix = ctx.rel.as_posix()
        # Only the transport itself (world.*) may block: it implements the
        # primitives. Everything else — including comm/collectives.cpp,
        # comm/elastic.cpp and all of hvd/ — rides the exchange path and
        # must use the bounded forms.
        if not posix.startswith("src/") or posix.startswith("src/comm/world."):
            return
        for lineno, (raw, code) in enumerate(
                zip(ctx.raw_lines, ctx.code_lines), 1):
            if self.BLOCKING_OK_MARKER in raw:
                continue
            if self.RE.search(code):
                linter.report_line(
                    ctx, lineno, self.id,
                    "unbounded Recv blocks forever on a dead peer; use "
                    "RecvTimeout/TryRecv or annotate "
                    "`// fault: blocking-ok`")


class IncludePathRule(Rule):
    id = "include-path"
    doc = ("quoted includes must resolve against src/ (catches stale paths "
           'and "../" escapes); system headers use angle brackets.')

    RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')

    def check(self, ctx: FileContext, linter: Linter) -> None:
        for lineno, raw in enumerate(ctx.raw_lines, 1):
            # code_lines blank out string contents, which would erase the
            # quoted include target — inspect a string-preserving strip.
            m = self.RE.match(strip_comments_keep_strings(raw))
            if not m or m.group(1) != '"':
                continue
            target = m.group(2)
            candidates = [
                ctx.root / "src" / target,
                ctx.root / ctx.rel.parent / target,
                ctx.root / "tests" / target,
            ]
            if not any(c.is_file() for c in candidates):
                linter.report_line(
                    ctx, lineno, self.id,
                    f'quoted include "{target}" does not resolve against '
                    "src/ or the including directory")
            if ".." in Path(target).parts:
                linter.report_line(
                    ctx, lineno, self.id,
                    f'include "{target}" uses "..": spell the full module '
                    "path instead")


class GuardedIncludeRule(Rule):
    id = "guarded-include"
    doc = ("files using EXACLIM_GUARDED_BY / EXACLIM_REQUIRES must include "
           "common/thread_annotations.hpp (directly or via "
           "common/sync.hpp).")

    RE = re.compile(r"EXACLIM_(GUARDED_BY|PT_GUARDED_BY|REQUIRES|"
                    r"ACQUIRE|RELEASE|EXCLUDES|CAPABILITY)\b")

    def check(self, ctx: FileContext, linter: Linter) -> None:
        if ctx.rel.name == "thread_annotations.hpp":
            return
        if not self.RE.search(ctx.text):
            return
        if ("thread_annotations.hpp" not in ctx.text
                and "common/sync.hpp" not in ctx.text):
            linter.report(ctx.rel, 1, self.id,
                          "uses EXACLIM_* thread-safety annotations but "
                          "includes neither common/thread_annotations.hpp "
                          "nor common/sync.hpp")


class HotPathAllocRule(Rule):
    id = "hot-path-alloc"
    doc = ("no `new` / `make_unique` / `.resize(` / `.push_back(` inside "
           "regions annotated `// hot-path: begin` ... `// hot-path: end` "
           "or in files listed in tools/hot_path_manifest.txt — steady-"
           "state kernels must not touch the heap (ROADMAP item 2).")

    RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_:(]"
                    r"|\bmake_unique\s*<"
                    r"|\.resize\s*\("
                    r"|\.push_back\s*\(")

    def check(self, ctx: FileContext, linter: Linter) -> None:
        hot = ctx.hot_lines()
        for lineno, message in ctx._unbalanced_hot:
            linter.report(ctx.rel, lineno, self.id, message)
        if ctx.in_hot_manifest:
            lines = range(1, len(ctx.code_lines) + 1)
        elif hot:
            lines = sorted(hot)
        else:
            return
        for lineno in lines:
            m = self.RE.search(ctx.code_lines[lineno - 1])
            if m:
                where = ("hot-path manifest file" if ctx.in_hot_manifest
                         else "hot-path region")
                linter.report_line(
                    ctx, lineno, self.id,
                    f"heap allocation `{m.group(0).strip()}` in {where}; "
                    "hoist the buffer into a workspace/scratch slot")


class HotPathVectorRule(Rule):
    id = "hot-path-vector"
    doc = ("no direct `std::vector<float>` declarations in files listed "
           "in tools/hot_path_manifest.txt — hot-path float buffers must "
           "come from the pooled arena (PoolBuffer / AcquireScratch, "
           "DESIGN §12), not ad-hoc heap vectors.")

    RE = re.compile(r"\bstd::vector\s*<\s*float\s*>")

    def check(self, ctx: FileContext, linter: Linter) -> None:
        if not ctx.in_hot_manifest:
            return
        for lineno, code in enumerate(ctx.code_lines, 1):
            m = self.RE.search(code)
            if m:
                linter.report_line(
                    ctx, lineno, self.id,
                    "`std::vector<float>` in a hot-path manifest file; "
                    "use PoolBuffer or AcquireScratch so the buffer is "
                    "arena-pooled")


class EnvPrefixRule(Rule):
    id = "env-prefix"
    doc = ("all getenv names must start with EXACLIM_ so every knob is "
           "discoverable by prefix and cannot collide with other software.")

    RE = re.compile(r'\bgetenv\s*\(\s*"([^"]*)"')

    def check(self, ctx: FileContext, linter: Linter) -> None:
        for lineno, raw in enumerate(ctx.raw_lines, 1):
            code = strip_comments_keep_strings(raw)
            for m in self.RE.finditer(code):
                name = m.group(1)
                if not name.startswith("EXACLIM_"):
                    linter.report_line(
                        ctx, lineno, self.id,
                        f'getenv("{name}"): environment knobs must be '
                        "EXACLIM_-prefixed")


class AllocGuardIncludeRule(Rule):
    id = "alloc-guard-include"
    doc = ("files using EXACLIM_ASSERT_NO_ALLOC (or the census macros) "
           "must include common/alloc_tracker.hpp.")

    RE = re.compile(r"EXACLIM_(ASSERT_NO_ALLOC|ALLOC_CENSUS(_THREAD)?|"
                    r"ALLOC_SITE)\b")

    def check(self, ctx: FileContext, linter: Linter) -> None:
        if ctx.rel.name in ("alloc_tracker.hpp", "alloc_tracker.cpp"):
            return
        if not self.RE.search(ctx.text):
            return
        if "common/alloc_tracker.hpp" not in ctx.text:
            linter.report(ctx.rel, 1, self.id,
                          "uses EXACLIM_ASSERT_NO_ALLOC / "
                          "EXACLIM_ALLOC_CENSUS but does not include "
                          "common/alloc_tracker.hpp")


RULES: list[Rule] = [
    PragmaOnceRule(),
    EndlRule(),
    RawMutexRule(),
    NakedNewRule(),
    UnboundedRecvRule(),
    IncludePathRule(),
    GuardedIncludeRule(),
    HotPathAllocRule(),
    HotPathVectorRule(),
    EnvPrefixRule(),
    AllocGuardIncludeRule(),
]


def load_hot_manifest(path: Path) -> set[str]:
    """Reads the hot-path manifest: one repo-relative path per line,
    '#' comments and blank lines ignored."""
    if not path.is_file():
        return set()
    entries: set[str] = set()
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            entries.add(line)
    return entries


def iter_files(paths: list[str], root: Path = REPO_ROOT) -> list[Path]:
    if paths:
        roots = [Path(p).resolve() for p in paths]
    else:
        roots = [root / d for d in SRC_DIRS]
    files: list[Path] = []
    for r in roots:
        if r.is_file():
            files.append(r)
            continue
        for p in sorted(r.rglob("*")):
            if p.suffix in CPP_SUFFIXES and p.is_file():
                files.append(p)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src bench "
                             "examples tests)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}:")
            for line in rule.doc.split("\n"):
                print(f"    {line}")
        return 0

    linter = Linter()
    files = iter_files(args.paths)
    for path in files:
        linter.lint_file(path)

    if linter.findings:
        for finding in linter.findings:
            print(finding)
        print(f"\ntools/lint.py: {len(linter.findings)} finding(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"tools/lint.py: OK ({len(files)} files clean, "
          f"{len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
