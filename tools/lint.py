#!/usr/bin/env python3
"""Repo-rule lint checker for the exaclim codebase.

Run from the repo root (the `lint` CMake target does this):

    python3 tools/lint.py [--list-rules] [paths...]

Rules (each can be suppressed on a specific line with `// lint:allow`):

  naked-new          no naked `new` / `delete` in library code — use
                     std::make_unique / std::vector / RAII owners.
  raw-mutex          no std::mutex / std::condition_variable /
                     std::lock_guard / std::unique_lock / std::scoped_lock
                     outside src/common/sync.hpp. The annotated
                     exaclim::Mutex / MutexLock / CondVar wrappers are what
                     give Clang's thread-safety analysis visibility.
  endl               no std::endl — it flushes; use '\n'.
  pragma-once        every header starts with #pragma once.
  include-path       quoted includes must resolve against src/ (catches
                     stale paths and "../" escapes); system headers use
                     angle brackets.
  guarded-include    files using EXACLIM_GUARDED_BY / EXACLIM_REQUIRES
                     must include common/thread_annotations.hpp
                     (directly or via common/sync.hpp).
  unbounded-recv     no unbounded Recv/RecvT/RecvAny/RecvValue in src/
                     outside src/comm/: a blocking receive hangs forever
                     on a dead peer (DESIGN §8). Use RecvTimeout /
                     TryRecv / RecvValueTimeout, or annotate the line
                     with `// fault: blocking-ok` where a blocking wait
                     is intended (e.g. collectives over live ranks).

Exit status: 0 when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIRS = ["src", "bench", "examples", "tests"]
CPP_SUFFIXES = {".cpp", ".hpp"}

ALLOW_MARKER = "lint:allow"

# Files exempt from raw-mutex: the wrapper itself.
RAW_MUTEX_ALLOWED = {Path("src/common/sync.hpp")}

RAW_MUTEX_RE = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)
NAKED_NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_:(]")
NAKED_DELETE_RE = re.compile(r"(?<![\w.])delete(\[\])?\s+[A-Za-z_:(*]")
ENDL_RE = re.compile(r"std::endl\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')
GUARDED_RE = re.compile(r"EXACLIM_(GUARDED_BY|PT_GUARDED_BY|REQUIRES|"
                        r"ACQUIRE|RELEASE|EXCLUDES|CAPABILITY)\b")
# Unbounded receives (won't match RecvTimeout / TryRecv /
# RecvValueTimeout, whose names diverge after the prefix).
RECV_RE = re.compile(r"(\.|->)Recv(T|Any|Value)?\s*[<(]")
BLOCKING_OK_MARKER = "fault: blocking-ok"


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of string/char literals and // comments.

    Block comments spanning lines are handled by the caller feeding us
    pre-filtered lines; within a line we drop /* ... */ spans too.
    """
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(quote + quote)  # keep token boundaries
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                break
            i = end + 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Linter:
    def __init__(self) -> None:
        self.findings: list[str] = []

    def report(self, path: Path, lineno: int, rule: str, message: str) -> None:
        self.findings.append(f"{path}:{lineno}: [{rule}] {message}")

    # ------------------------------------------------------------- rules --

    def lint_file(self, path: Path) -> None:
        rel = path.relative_to(REPO_ROOT)
        text = path.read_text(encoding="utf-8")
        raw_lines = text.splitlines()

        # Pre-filter block comments across lines.
        code_lines: list[str] = []
        in_block = False
        for raw in raw_lines:
            line = raw
            if in_block:
                end = line.find("*/")
                if end == -1:
                    code_lines.append("")
                    continue
                line = line[end + 2:]
                in_block = False
            stripped = strip_comments_and_strings(line)
            # strip_comments drops unterminated /* spans; detect them to
            # carry block-comment state forward.
            opener = line.find("/*")
            if opener != -1 and line.find("*/", opener + 2) == -1:
                in_block = True
            code_lines.append(stripped)

        if path.suffix == ".hpp":
            self.check_pragma_once(rel, raw_lines)
        self.check_line_rules(rel, raw_lines, code_lines)
        self.check_guarded_include(rel, text)

    def check_pragma_once(self, rel: Path, raw_lines: list[str]) -> None:
        for raw in raw_lines:
            s = raw.strip()
            if not s or s.startswith("//"):
                continue
            if s != "#pragma once":
                self.report(rel, 1, "pragma-once",
                            "header must start with #pragma once")
            return

    def check_line_rules(self, rel: Path, raw_lines: list[str],
                         code_lines: list[str]) -> None:
        for idx, (raw, code) in enumerate(zip(raw_lines, code_lines), 1):
            if ALLOW_MARKER in raw:
                continue
            if ENDL_RE.search(code):
                self.report(rel, idx, "endl",
                            "std::endl flushes the stream; use '\\n'")
            if rel not in RAW_MUTEX_ALLOWED:
                m = RAW_MUTEX_RE.search(code)
                if m:
                    self.report(
                        rel, idx, "raw-mutex",
                        f"raw std::{m.group(1)}; use exaclim::Mutex / "
                        "MutexLock / CondVar from common/sync.hpp")
            if NAKED_NEW_RE.search(code) or NAKED_DELETE_RE.search(code):
                self.report(rel, idx, "naked-new",
                            "naked new/delete; use std::make_unique or a "
                            "container")
            posix = rel.as_posix()
            if (posix.startswith("src/")
                    and not posix.startswith("src/comm/")
                    and BLOCKING_OK_MARKER not in raw
                    and RECV_RE.search(code)):
                self.report(
                    rel, idx, "unbounded-recv",
                    "unbounded Recv blocks forever on a dead peer; use "
                    "RecvTimeout/TryRecv or annotate "
                    "`// fault: blocking-ok`")
            m = INCLUDE_RE.match(code)
            if m:
                self.check_include(rel, idx, m.group(1), m.group(2))

    def check_include(self, rel: Path, lineno: int, form: str,
                      target: str) -> None:
        if form != '"':
            return
        candidates = [
            REPO_ROOT / "src" / target,
            REPO_ROOT / rel.parent / target,
            REPO_ROOT / "tests" / target,
        ]
        if not any(c.is_file() for c in candidates):
            self.report(rel, lineno, "include-path",
                        f'quoted include "{target}" does not resolve '
                        "against src/ or the including directory")
        if ".." in Path(target).parts:
            self.report(rel, lineno, "include-path",
                        f'include "{target}" uses "..": spell the full '
                        "module path instead")

    def check_guarded_include(self, rel: Path, text: str) -> None:
        if rel.name in ("thread_annotations.hpp",):
            return
        if not GUARDED_RE.search(text):
            return
        if ("thread_annotations.hpp" not in text
                and "common/sync.hpp" not in text):
            self.report(rel, 1, "guarded-include",
                        "uses EXACLIM_* thread-safety annotations but "
                        "includes neither common/thread_annotations.hpp "
                        "nor common/sync.hpp")


def iter_files(paths: list[str]) -> list[Path]:
    if paths:
        roots = [Path(p).resolve() for p in paths]
    else:
        roots = [REPO_ROOT / d for d in SRC_DIRS]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
            continue
        for p in sorted(root.rglob("*")):
            if p.suffix in CPP_SUFFIXES and p.is_file():
                files.append(p)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src bench "
                             "examples tests)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        print(__doc__)
        return 0

    linter = Linter()
    files = iter_files(args.paths)
    for path in files:
        linter.lint_file(path)

    if linter.findings:
        for finding in linter.findings:
            print(finding)
        print(f"\ntools/lint.py: {len(linter.findings)} finding(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"tools/lint.py: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
