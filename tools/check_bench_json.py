#!/usr/bin/env python3
"""Validates BENCH_<name>.json files against the exaclim-bench-v1 schema.

Usage:
    tools/check_bench_json.py BENCH_input_pipeline.json [more.json ...]
    tools/check_bench_json.py FILE... --assert-le METRIC_A METRIC_B RATIO

With --assert-le, after the schema checks pass, also asserts
median(METRIC_A) <= median(METRIC_B) * RATIO over the merged metrics of
the given files (the ci.sh perf gate: parallel must not regress past
serial). May be repeated.

Schema (emitted by obs::BenchReport):
    {
      "bench":  "<name>",
      "schema": "exaclim-bench-v1",
      "metrics": {
        "<metric>": {"count": N, "median": x, "lo": x, "hi": x},
        ...
      }
    }

Checks: required keys present, count >= 1, lo <= median <= hi, all
values finite. Exit code 0 when every file passes.
"""

import json
import math
import sys

SCHEMA = "exaclim-bench-v1"


def check_file(path: str) -> list[str]:
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]
    if not isinstance(doc.get("bench"), str) or not doc.get("bench"):
        errors.append(f"{path}: missing or empty 'bench' name")
    if doc.get("schema") != SCHEMA:
        errors.append(
            f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        return errors + [f"{path}: 'metrics' missing or empty"]

    for name, entry in metrics.items():
        where = f"{path}: metric {name!r}"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = [k for k in ("count", "median", "lo", "hi")
                   if k not in entry]
        if missing:
            errors.append(f"{where}: missing keys {missing}")
            continue
        count, median = entry["count"], entry["median"]
        lo, hi = entry["lo"], entry["hi"]
        if not isinstance(count, int) or count < 1:
            errors.append(f"{where}: count must be an integer >= 1")
        for key in ("median", "lo", "hi"):
            value = entry[key]
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                errors.append(f"{where}: {key} is not a finite number")
                break
        else:
            if not lo <= median <= hi:
                errors.append(
                    f"{where}: expected lo <= median <= hi, got "
                    f"{lo} / {median} / {hi}")
    return errors


def parse_args(argv: list[str]) -> tuple[list[str], list[tuple[str, str, float]]]:
    paths: list[str] = []
    assertions: list[tuple[str, str, float]] = []
    i = 1
    while i < len(argv):
        if argv[i] == "--assert-le":
            if i + 3 >= len(argv):
                raise ValueError("--assert-le needs METRIC_A METRIC_B RATIO")
            assertions.append((argv[i + 1], argv[i + 2], float(argv[i + 3])))
            i += 4
        else:
            paths.append(argv[i])
            i += 1
    return paths, assertions


def main(argv: list[str]) -> int:
    try:
        paths, assertions = parse_args(argv)
    except ValueError as e:
        print(f"FAIL: {e}", file=sys.stderr)
        return 2
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = []
    merged: dict[str, dict] = {}
    for path in paths:
        errors = check_file(path)
        if errors:
            failures.extend(errors)
        else:
            with open(path, encoding="utf-8") as f:
                metrics = json.load(f)["metrics"]
            merged.update(metrics)
            print(f"ok: {path} ({len(metrics)} metrics)")
    for metric_a, metric_b, ratio in assertions:
        missing = [m for m in (metric_a, metric_b) if m not in merged]
        if missing:
            failures.append(f"--assert-le: metrics not found: {missing}")
            continue
        a, b = merged[metric_a]["median"], merged[metric_b]["median"]
        if a <= b * ratio:
            print(f"ok: {metric_a} ({a:g}) <= {metric_b} ({b:g}) x {ratio:g}")
        else:
            failures.append(
                f"--assert-le: {metric_a} median {a:g} exceeds "
                f"{metric_b} median {b:g} x {ratio:g} = {b * ratio:g}")
    for e in failures:
        print(f"FAIL: {e}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
