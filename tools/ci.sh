#!/usr/bin/env bash
# The whole correctness gate in one command:
#
#   tools/ci.sh            # lint + tier-1 + ASan/UBSan (+ TSan stress)
#   tools/ci.sh --fast     # lint + tier-1 only
#
# Stages:
#   1. tools/lint.py repo rules (+ clang-tidy when installed)
#   2. tier-1: Release build + full ctest suite      (preset: release)
#   3. ASan+UBSan: Debug build + full ctest suite    (preset: asan)
#   4. TSan: Debug build + `stress`-labelled tests   (preset: tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run() {
  echo
  echo "==> $*"
  "$@"
}

# ---- 1. lint -------------------------------------------------------------
run python3 tools/lint.py
if command -v clang-tidy > /dev/null 2>&1; then
  run cmake --preset release
  run cmake --build --preset release --target tidy
else
  echo "clang-tidy not installed; skipping the tidy stage"
fi

# ---- 2. tier-1 -----------------------------------------------------------
run cmake --preset release
run cmake --build --preset release -j "$JOBS"
run ctest --preset release -j "$JOBS"

if [[ "$FAST" == 1 ]]; then
  echo
  echo "ci.sh --fast: lint + tier-1 OK"
  exit 0
fi

# ---- 3. ASan + UBSan -----------------------------------------------------
run cmake --preset asan
run cmake --build --preset asan -j "$JOBS"
run env ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --preset asan -j "$JOBS"

# ---- 4. TSan (stress-labelled tests) -------------------------------------
run cmake --preset tsan
run cmake --build --preset tsan -j "$JOBS"
run env TSAN_OPTIONS=halt_on_error=1 ctest --preset tsan -j "$JOBS"

echo
echo "ci.sh: all gates green (lint, tier-1, asan+ubsan, tsan-stress)"
