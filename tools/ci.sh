#!/usr/bin/env bash
# The whole correctness gate in one command:
#
#   tools/ci.sh            # lint + tier-1 + ASan/UBSan (+ TSan stress)
#   tools/ci.sh --fast     # lint + tier-1 only
#
# Stages:
#   1. tools/lint.py repo rules + tools/test_lint.py rule unit tests
#      (+ clang-tidy when installed; with CI=1 a missing clang-tidy is a
#      hard failure instead of a skip)
#   2. tier-1: Release build + full ctest suite      (preset: release)
#   3. bench-smoke: one bench run + BENCH_*.json schema validation
#   4. perf-smoke: bench_micro_conv engine comparison; the batch-parallel
#      conv engine must not be slower than the serial batch walk, the
#      implicit-GEMM path must hold ≥ 0.95× of im2col on every bench
#      shape, the fused conv→BN→ReLU epilogue must beat the unfused
#      chain, and the ConvFusion suite re-runs under
#      EXACLIM_GEMM_KERNEL=reference as a fallback A/B (DESIGN §15)
#   5. alloc-smoke: bench_alloc_census per-phase allocation ratchet,
#      pooled (tools/alloc_budget.json, all budgets 0) and with
#      EXACLIM_POOL=off (tools/alloc_budget_pool_off.json) — DESIGN §11/§12
#   5b. overlap-smoke (bench): bench_overlap under a deterministic wire
#      latency — overlapped step must beat serialized, FP16 wire must
#      halve the bytes, exchange allocation ratchet
#      (tools/alloc_budget_exchange.json) — DESIGN §14
#   6. ASan+UBSan: Debug build + full ctest suite    (preset: asan)
#   7. TSan: Debug build + `stress`-labelled tests   (preset: tsan)
#   8. fault-smoke: fault suite re-run under TSan with a fixed
#      EXACLIM_FAULTS spec (env-driven injection path, DESIGN §8)
#   10. overlap-smoke (TSan): exchange-thread-vs-backward suites re-run
#      under TSan, incl. the chaos kill on the exchange thread
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run() {
  echo
  echo "==> $*"
  "$@"
}

# ---- 1. lint -------------------------------------------------------------
run python3 tools/lint.py
run python3 tools/test_lint.py
if command -v clang-tidy > /dev/null 2>&1; then
  run cmake --preset release
  run cmake --build --preset release --target tidy
elif [[ "${CI:-0}" == 1 ]]; then
  # On a real CI runner a missing clang-tidy means the tidy gate silently
  # never ran — fail loudly there; locally a skip keeps ci.sh usable on
  # machines without the LLVM toolchain.
  echo "CI=1 but clang-tidy is not installed; the tidy gate cannot run" >&2
  exit 1
else
  echo "clang-tidy not installed; skipping the tidy stage"
fi

# ---- 2. tier-1 -----------------------------------------------------------
run cmake --preset release
run cmake --build --preset release -j "$JOBS"
run ctest --preset release -j "$JOBS"

# ---- 3. bench-smoke ------------------------------------------------------
# One representative bench must run, emit its BENCH_<name>.json next to
# the build tree, and pass the exaclim-bench-v1 schema check.
BENCH_DIR=$(mktemp -d)
run env EXACLIM_BENCH_DIR="$BENCH_DIR" ./build/bench/bench_input_pipeline
run python3 tools/check_bench_json.py "$BENCH_DIR"/BENCH_*.json

# ---- 4. perf-smoke -------------------------------------------------------
# The engine comparison in bench_micro_conv (gbench cases skipped) times
# fwd+bwd in both conv-engine modes. Batch-parallel must be no slower
# than serial; the 1.15x tolerance absorbs timer noise on low-core
# machines where both modes collapse to the same schedule.
run env EXACLIM_BENCH_DIR="$BENCH_DIR" \
  ./build/bench/bench_micro_conv --benchmark_filter='-.*'
run python3 tools/check_bench_json.py "$BENCH_DIR"/BENCH_micro_conv.json \
  --assert-le fwd_bwd_parallel_b4_ms fwd_bwd_serial_b4_ms 1.15 \
  --assert-le fwd_bwd_parallel_b8_ms fwd_bwd_serial_b8_ms 1.15
# Implicit-GEMM packing (DESIGN §15) must hold ≥ 0.95× of the im2col
# path on every bench shape (time gate: implicit <= im2col × 1/0.95),
# and the fused conv→BN→ReLU epilogue must never regress the unfused
# three-pass chain. Quiet-machine fused speedups are ≥ 1.7×, but CPU
# contention compresses the ratio (both paths time-slice the same
# cores and the eliminated passes are exactly the hideable memory-bound
# work), so the tile gate is no-regression (1.0) and only the pointwise
# shape — whose fold eliminates over half the work even fully loaded —
# carries the sharper 0.9 win gate.
run python3 tools/check_bench_json.py "$BENCH_DIR"/BENCH_micro_conv.json \
  --assert-le conv_implicit_b4_ms conv_im2col_b4_ms 1.0527 \
  --assert-le conv_implicit_atrous_ms conv_im2col_atrous_ms 1.0527 \
  --assert-le conv_implicit_stride2_ms conv_im2col_stride2_ms 1.0527 \
  --assert-le conv_fused_tile_eval_ms conv_unfused_tile_eval_ms 1.0 \
  --assert-le conv_fused_pointwise_eval_ms conv_unfused_pointwise_eval_ms 0.9
# A/B the fused-chain suite against the reference (unpacked) GEMM walk:
# with EXACLIM_GEMM_KERNEL=reference the fused path falls back to the
# layer-sweep chain, which must stay bit-identical to the unfused run.
run env EXACLIM_GEMM_KERNEL=reference \
  ./build/tests/test_conv_engine --gtest_filter='ConvFusion*'
# The GEMM kernel comparison in bench_micro_gemm times the packed
# microkernel engine against the reference blocked walk on the conv
# im2col shape. The reference must never come out faster (GFLOP/s are
# rates, so the gate reads reference <= packed).
run env EXACLIM_BENCH_DIR="$BENCH_DIR" \
  ./build/bench/bench_micro_gemm --benchmark_filter='-.*'
run python3 tools/check_bench_json.py "$BENCH_DIR"/BENCH_micro_gemm.json \
  --assert-le gflops_reference_conv gflops_packed_conv 1.0

# ---- 5. alloc-smoke ------------------------------------------------------
# Per-phase allocation census of a warmed-up training step, run in both
# arena configurations and ratcheted against the matching checked-in
# budget. Pooled (the default): every phase budget is 0 — a warmed-up
# step must not touch the heap at all (DESIGN §12). EXACLIM_POOL=off
# (the escape hatch): exact-size heap tensors, ratcheted by
# tools/alloc_budget_pool_off.json so the bisection path stays healthy.
# The census json is overwritten between runs, so check pooled first.
run env EXACLIM_BENCH_DIR="$BENCH_DIR" ./build/bench/bench_alloc_census
run python3 tools/check_bench_json.py "$BENCH_DIR"/BENCH_alloc_census.json
run python3 tools/check_alloc_budget.py "$BENCH_DIR"/BENCH_alloc_census.json
run env EXACLIM_BENCH_DIR="$BENCH_DIR" EXACLIM_POOL=off \
  ./build/bench/bench_alloc_census
run python3 tools/check_alloc_budget.py "$BENCH_DIR"/BENCH_alloc_census.json \
  tools/alloc_budget_pool_off.json

# ---- 5b. overlap-smoke (bench half) --------------------------------------
# The overlapped exchange (DESIGN §14) must beat the serialized one.
# bench_overlap times both modes under a deterministic 5 ms per-message
# wire latency (the comm.delay fault site), so the win is structural
# rather than scheduler luck — sleep latency is hideable behind backward
# on any core count, and CPU load only grows the hiding window. Gates:
# the overlapped step must be no slower than the serialized step (the
# headline), its exposed WaitAll tail must stay well under the
# serialized path's full post-backward exchange (the sharp structural
# gate), the packed FP16 wire must actually halve the bytes on the
# wire, and the exchange path must stay within its steady-state
# allocation ratchet (tools/alloc_budget_exchange.json). The TSan half
# of overlap-smoke is stage 10 below.
run env EXACLIM_BENCH_DIR="$BENCH_DIR" ./build/bench/bench_overlap
run python3 tools/check_bench_json.py "$BENCH_DIR"/BENCH_overlap.json \
  --assert-le step_overlap_s step_serialized_s 1.0 \
  --assert-le exchange_exposed_overlap_s exchange_exposed_serialized_s 0.9 \
  --assert-le exchange_bytes_fp16 exchange_bytes_fp32 0.51
run python3 tools/check_alloc_budget.py "$BENCH_DIR"/BENCH_overlap.json \
  tools/alloc_budget_exchange.json
rm -rf "$BENCH_DIR"

if [[ "$FAST" == 1 ]]; then
  echo
  echo "ci.sh --fast: lint + tier-1 + bench-smoke + perf-smoke + alloc-smoke + overlap-smoke(bench) OK"
  exit 0
fi

# ---- 6. ASan + UBSan -----------------------------------------------------
run cmake --preset asan
run cmake --build --preset asan -j "$JOBS"
run env ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --preset asan -j "$JOBS"

# ---- 7. TSan (stress-labelled tests) -------------------------------------
run cmake --preset tsan
run cmake --build --preset tsan -j "$JOBS"
run env TSAN_OPTIONS=halt_on_error=1 ctest --preset tsan -j "$JOBS"

# ---- 8. fault-smoke ------------------------------------------------------
# Exercise the EXACLIM_FAULTS env path end to end under TSan: a rank
# killed at launch (staging degrades around it) plus deterministic
# producer faults (pipeline retries/skips). FaultSmoke asserts correct
# staged bytes and nonzero fault.* counters under exactly this spec.
run env TSAN_OPTIONS=halt_on_error=1 \
  EXACLIM_FAULTS="comm.kill.1:1:7,pipeline.produce:1:11:4" \
  ./build-tsan/tests/test_fault --gtest_filter='FaultSmoke.*'

# ---- 9. chaos-smoke ------------------------------------------------------
# Elastic-training chaos soak under TSan through the EXACLIM_FAULTS env
# path (DESIGN §13): rank 4 dies at its step-3 entry, rank 1 dies
# mid-exchange at step 4; the survivors must rebuild to generation 2,
# resync weights, finish all steps with bit-identical replicas, and the
# whole recovery machinery must be race-free.
run env TSAN_OPTIONS=halt_on_error=1 \
  EXACLIM_FAULTS="elastic.kill.4:1:7:1:0:3,elastic.exchange.kill.1:1:9:1:0:4" \
  ./build-tsan/tests/test_elastic --gtest_filter='ChaosSmoke.*'

# ---- 10. overlap-smoke (TSan half) ---------------------------------------
# The overlapped exchange runs gradient reduction on a dedicated exchange
# thread while the trainer thread still emits grad-ready notifications
# (DESIGN §14) — exactly the pairing TSan exists for. Re-run the
# bit-identity + chaos overlap suites under TSan, including the chaos
# schedule where rank 1's kill fires on the exchange thread and the
# RankKilledError must propagate through WaitAll to the trainer thread.
run env TSAN_OPTIONS=halt_on_error=1 \
  ./build-tsan/tests/test_overlap \
  --gtest_filter='Overlap*:AllTransports/*:BucketTagLayout.*'

echo
echo "ci.sh: all gates green (lint, tier-1, bench-smoke, perf-smoke, alloc-smoke, overlap-smoke, asan+ubsan, tsan-stress, fault-smoke, chaos-smoke)"
