#!/usr/bin/env python3
"""Unit tests for the tools/lint.py rule-registry engine.

Each rule gets a positive case (finding fired), a negative case (clean
code passes), and a suppression case (`// lint:allow(rule-id)` silences
it). Runs against throwaway temp trees so the real repo never leaks in.

    python3 tools/test_lint.py
"""

from __future__ import annotations

import tempfile
import unittest
from pathlib import Path

import lint


def run_lint(files: dict[str, str],
             hot_manifest: set[str] | None = None) -> list[str]:
    """Writes `files` (relpath -> contents) into a temp tree, lints every
    .cpp/.hpp, and returns the findings."""
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        for rel, contents in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(contents, encoding="utf-8")
        linter = lint.Linter(root=root, hot_manifest=hot_manifest or set())
        for rel in sorted(files):
            if Path(rel).suffix in lint.CPP_SUFFIXES:
                linter.lint_file(root / rel)
        return linter.findings


def rules_fired(findings: list[str]) -> set[str]:
    return {f.split("[", 1)[1].split("]", 1)[0] for f in findings}


class RegistryTest(unittest.TestCase):
    def test_every_rule_has_id_and_doc(self):
        ids = [r.id for r in lint.RULES]
        self.assertEqual(len(ids), len(set(ids)), "duplicate rule ids")
        for rule in lint.RULES:
            self.assertTrue(rule.id, f"{type(rule).__name__} missing id")
            self.assertTrue(rule.doc, f"{rule.id} missing doc")

    def test_expected_rules_registered(self):
        self.assertEqual(
            {r.id for r in lint.RULES},
            {"pragma-once", "endl", "raw-mutex", "naked-new",
             "unbounded-recv", "include-path", "guarded-include",
             "hot-path-alloc", "hot-path-vector", "env-prefix",
             "alloc-guard-include"})


class PragmaOnceTest(unittest.TestCase):
    def test_missing(self):
        f = run_lint({"src/a.hpp": "int f();\n"})
        self.assertIn("pragma-once", rules_fired(f))

    def test_present(self):
        f = run_lint({"src/a.hpp": "// header\n#pragma once\nint f();\n"})
        self.assertNotIn("pragma-once", rules_fired(f))

    def test_cpp_exempt(self):
        f = run_lint({"src/a.cpp": "int f() { return 0; }\n"})
        self.assertNotIn("pragma-once", rules_fired(f))


class EndlTest(unittest.TestCase):
    def test_fires(self):
        f = run_lint({"src/a.cpp": 'void f() { std::cout << std::endl; }\n'})
        self.assertIn("endl", rules_fired(f))

    def test_clean(self):
        f = run_lint({"src/a.cpp": 'void f() { std::cout << "\\n"; }\n'})
        self.assertNotIn("endl", rules_fired(f))

    def test_comment_ignored(self):
        f = run_lint({"src/a.cpp": "// prefer '\\n' over std::endl\n"})
        self.assertNotIn("endl", rules_fired(f))

    def test_suppressed(self):
        f = run_lint({"src/a.cpp":
                      "void f() { std::cout << std::endl; }"
                      "  // lint:allow(endl)\n"})
        self.assertNotIn("endl", rules_fired(f))


class RawMutexTest(unittest.TestCase):
    def test_fires(self):
        f = run_lint({"src/a.cpp": "std::mutex m;\n"})
        self.assertIn("raw-mutex", rules_fired(f))

    def test_sync_hpp_exempt(self):
        f = run_lint({"src/common/sync.hpp":
                      "#pragma once\nstd::mutex m;\n"})
        self.assertNotIn("raw-mutex", rules_fired(f))

    def test_wrapper_clean(self):
        f = run_lint({"src/a.cpp": "exaclim::Mutex m;\nMutexLock l(m);\n"})
        self.assertNotIn("raw-mutex", rules_fired(f))

    def test_suppressed(self):
        f = run_lint({"src/a.cpp":
                      "std::mutex m;  // lint:allow(raw-mutex)\n"})
        self.assertNotIn("raw-mutex", rules_fired(f))


class NakedNewTest(unittest.TestCase):
    def test_fires(self):
        f = run_lint({"src/a.cpp": "int* p = new int(3);\n"})
        self.assertIn("naked-new", rules_fired(f))

    def test_delete_fires(self):
        f = run_lint({"src/a.cpp": "void f(int* p) { delete p; }\n"})
        self.assertIn("naked-new", rules_fired(f))

    def test_make_unique_clean(self):
        f = run_lint({"src/a.cpp": "auto p = std::make_unique<int>(3);\n"})
        self.assertNotIn("naked-new", rules_fired(f))

    def test_string_ignored(self):
        f = run_lint({"src/a.cpp": 'const char* s = "a new Thing";\n'})
        self.assertNotIn("naked-new", rules_fired(f))

    def test_bare_allow_suppresses(self):
        f = run_lint({"src/a.cpp": "int* p = new int(3);  // lint:allow\n"})
        self.assertNotIn("naked-new", rules_fired(f))

    def test_per_rule_allow_suppresses(self):
        f = run_lint({"src/a.cpp":
                      "int* p = new int(3);  // lint:allow(naked-new)\n"})
        self.assertNotIn("naked-new", rules_fired(f))

    def test_other_rule_allow_does_not_suppress(self):
        f = run_lint({"src/a.cpp":
                      "int* p = new int(3);  // lint:allow(endl)\n"})
        self.assertIn("naked-new", rules_fired(f))


class UnboundedRecvTest(unittest.TestCase):
    def test_fires_in_src(self):
        f = run_lint({"src/train/a.cpp": "comm.Recv(0, 1);\n"})
        self.assertIn("unbounded-recv", rules_fired(f))

    def test_world_substrate_exempt(self):
        f = run_lint({"src/comm/world.cpp": "comm.Recv(0, 1);\n"})
        self.assertNotIn("unbounded-recv", rules_fired(f))

    def test_rest_of_comm_fires(self):
        # The exemption covers only the substrate (world.*): the elastic
        # exchange path through collectives/elastic must stay bounded.
        f = run_lint({"src/comm/collectives.cpp": "comm.Recv(0, 1);\n"})
        self.assertIn("unbounded-recv", rules_fired(f))

    def test_tests_exempt(self):
        f = run_lint({"tests/a.cpp": "comm.Recv(0, 1);\n"})
        self.assertNotIn("unbounded-recv", rules_fired(f))

    def test_timeout_variant_clean(self):
        f = run_lint({"src/train/a.cpp": "comm.RecvTimeout(0, 1, 2.0);\n"})
        self.assertNotIn("unbounded-recv", rules_fired(f))

    def test_blocking_ok_marker(self):
        f = run_lint({"src/train/a.cpp":
                      "comm.Recv(0, 1);  // fault: blocking-ok\n"})
        self.assertNotIn("unbounded-recv", rules_fired(f))


class IncludePathTest(unittest.TestCase):
    def test_unresolvable_fires(self):
        f = run_lint({"src/a.cpp": '#include "nope/missing.hpp"\n'})
        self.assertIn("include-path", rules_fired(f))

    def test_resolvable_clean(self):
        f = run_lint({
            "src/common/x.hpp": "#pragma once\n",
            "src/a.cpp": '#include "common/x.hpp"\n',
        })
        self.assertNotIn("include-path", rules_fired(f))

    def test_dotdot_fires(self):
        f = run_lint({
            "src/common/x.hpp": "#pragma once\n",
            "src/nn/a.cpp": '#include "../common/x.hpp"\n',
        })
        self.assertIn("include-path", rules_fired(f))

    def test_system_header_clean(self):
        f = run_lint({"src/a.cpp": "#include <vector>\n"})
        self.assertNotIn("include-path", rules_fired(f))


class GuardedIncludeTest(unittest.TestCase):
    def test_missing_include_fires(self):
        f = run_lint({"src/a.hpp":
                      "#pragma once\nint x_ EXACLIM_GUARDED_BY(mutex_);\n"})
        self.assertIn("guarded-include", rules_fired(f))

    def test_sync_include_clean(self):
        f = run_lint({"src/a.hpp":
                      "#pragma once\n"
                      '#include "common/sync.hpp"\n'
                      "int x_ EXACLIM_GUARDED_BY(mutex_);\n"})
        self.assertNotIn("guarded-include", rules_fired(f))


class HotPathAllocTest(unittest.TestCase):
    def test_alloc_in_region_fires(self):
        f = run_lint({"src/a.cpp":
                      "void f(std::vector<int>& v) {\n"
                      "  // hot-path: begin\n"
                      "  v.push_back(1);\n"
                      "  // hot-path: end\n"
                      "}\n"})
        self.assertIn("hot-path-alloc", rules_fired(f))

    def test_alloc_outside_region_clean(self):
        f = run_lint({"src/a.cpp":
                      "void f(std::vector<int>& v) {\n"
                      "  v.push_back(1);\n"
                      "  // hot-path: begin\n"
                      "  v[0] = 2;\n"
                      "  // hot-path: end\n"
                      "}\n"})
        self.assertNotIn("hot-path-alloc", rules_fired(f))

    def test_all_banned_tokens_fire(self):
        for snippet in ("int* p = new int(3);",
                        "auto p = std::make_unique<int>(3);",
                        "v.resize(8);",
                        "v.push_back(1);"):
            f = run_lint({"src/a.cpp":
                          f"// hot-path: begin\n{snippet}\n"
                          "// hot-path: end\n"})
            self.assertIn("hot-path-alloc", rules_fired(f), snippet)

    def test_manifest_file_whole_file(self):
        f = run_lint({"src/kernel.cpp": "void f(V& v) { v.resize(8); }\n"},
                     hot_manifest={"src/kernel.cpp"})
        self.assertIn("hot-path-alloc", rules_fired(f))

    def test_manifest_clean_file_passes(self):
        f = run_lint({"src/kernel.cpp": "void f(int* v) { v[0] = 1; }\n"},
                     hot_manifest={"src/kernel.cpp"})
        self.assertNotIn("hot-path-alloc", rules_fired(f))

    def test_unbalanced_begin_fires(self):
        f = run_lint({"src/a.cpp": "// hot-path: begin\nint x;\n"})
        self.assertIn("hot-path-alloc", rules_fired(f))

    def test_unbalanced_end_fires(self):
        f = run_lint({"src/a.cpp": "int x;\n// hot-path: end\n"})
        self.assertIn("hot-path-alloc", rules_fired(f))

    def test_suppressed(self):
        f = run_lint({"src/a.cpp":
                      "// hot-path: begin\n"
                      "v.resize(8);  // lint:allow(hot-path-alloc)\n"
                      "// hot-path: end\n"})
        self.assertNotIn("hot-path-alloc", rules_fired(f))


class HotPathVectorTest(unittest.TestCase):
    def test_manifest_file_fires(self):
        f = run_lint({"src/kernel.cpp":
                      "void f() { std::vector<float> tmp(8); }\n"},
                     hot_manifest={"src/kernel.cpp"})
        self.assertIn("hot-path-vector", rules_fired(f))

    def test_non_manifest_file_clean(self):
        f = run_lint({"src/a.cpp":
                      "void f() { std::vector<float> tmp(8); }\n"})
        self.assertNotIn("hot-path-vector", rules_fired(f))

    def test_other_element_type_clean(self):
        f = run_lint({"src/kernel.cpp":
                      "void f() { std::vector<int> tmp(8); }\n"},
                     hot_manifest={"src/kernel.cpp"})
        self.assertNotIn("hot-path-vector", rules_fired(f))

    def test_comment_ignored(self):
        f = run_lint({"src/kernel.cpp":
                      "// the old std::vector<float> member\nint x;\n"},
                     hot_manifest={"src/kernel.cpp"})
        self.assertNotIn("hot-path-vector", rules_fired(f))

    def test_suppressed(self):
        f = run_lint({"src/kernel.cpp":
                      "std::vector<float> tmp(8);"
                      "  // lint:allow(hot-path-vector)\n"},
                     hot_manifest={"src/kernel.cpp"})
        self.assertNotIn("hot-path-vector", rules_fired(f))


class EnvPrefixTest(unittest.TestCase):
    def test_unprefixed_fires(self):
        f = run_lint({"src/a.cpp":
                      'const char* e = std::getenv("OMP_NUM_THREADS");\n'})
        self.assertIn("env-prefix", rules_fired(f))

    def test_prefixed_clean(self):
        f = run_lint({"src/a.cpp":
                      'const char* e = std::getenv("EXACLIM_THREADS");\n'})
        self.assertNotIn("env-prefix", rules_fired(f))

    def test_comment_ignored(self):
        f = run_lint({"src/a.cpp": '// like getenv("HOME") would\n'})
        self.assertNotIn("env-prefix", rules_fired(f))

    def test_suppressed(self):
        f = run_lint({"src/a.cpp":
                      'std::getenv("HOME");  // lint:allow(env-prefix)\n'})
        self.assertNotIn("env-prefix", rules_fired(f))


class AllocGuardIncludeTest(unittest.TestCase):
    def test_missing_include_fires(self):
        f = run_lint({"src/a.cpp":
                      'void f() { EXACLIM_ASSERT_NO_ALLOC("f"); }\n'})
        self.assertIn("alloc-guard-include", rules_fired(f))

    def test_census_macro_fires_too(self):
        f = run_lint({"src/a.cpp":
                      'void f() { EXACLIM_ALLOC_CENSUS("f"); }\n'})
        self.assertIn("alloc-guard-include", rules_fired(f))

    def test_with_include_clean(self):
        f = run_lint({"src/a.cpp":
                      '#include "common/alloc_tracker.hpp"\n'
                      'void f() { EXACLIM_ASSERT_NO_ALLOC("f"); }\n'})
        self.assertNotIn("alloc-guard-include", rules_fired(f))

    def test_tracker_itself_exempt(self):
        f = run_lint({"src/common/alloc_tracker.cpp":
                      "void f() { EXACLIM_ALLOC_SITE(s, \"x\"); }\n"})
        self.assertNotIn("alloc-guard-include", rules_fired(f))


class HelperTest(unittest.TestCase):
    def test_strip_keeps_token_boundaries(self):
        self.assertEqual(lint.strip_comments_and_strings('f("x") // c'),
                         'f("") ')

    def test_strip_keep_strings(self):
        self.assertEqual(lint.strip_comments_keep_strings('f("x") // c'),
                         'f("x") ')

    def test_block_comment_spanning_lines(self):
        f = run_lint({"src/a.cpp":
                      "/* block with std::endl\n"
                      "   and new int(3) inside\n"
                      "*/ int x;\n"})
        self.assertEqual(rules_fired(f), set())

    def test_hot_manifest_parser(self):
        with tempfile.TemporaryDirectory() as tmp:
            p = Path(tmp) / "manifest.txt"
            p.write_text("# comment\n\nsrc/a.cpp  # trailing\nsrc/b.cpp\n")
            self.assertEqual(lint.load_hot_manifest(p),
                             {"src/a.cpp", "src/b.cpp"})
        self.assertEqual(lint.load_hot_manifest(Path("/nonexistent")), set())


if __name__ == "__main__":
    unittest.main()
