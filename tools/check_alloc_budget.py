#!/usr/bin/env python3
"""Ratchets bench_alloc_census output against the checked-in budget.

Usage:
    tools/check_alloc_budget.py BENCH_alloc_census.json [budget.json]

The budget file (default: tools/alloc_budget.json next to this script)
maps metric name -> maximum allowed median. Every budgeted metric must be
present in the bench file and its median must be <= the budget; a
budgeted metric missing from the bench output is an error too (it means
a census site was renamed or dropped without updating the budget).

Exit code 0 when every metric is within budget.
"""

import json
import sys
from pathlib import Path

DEFAULT_BUDGET = Path(__file__).resolve().parent / "alloc_budget.json"


def main(argv: list[str]) -> int:
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    bench_path = Path(argv[1])
    budget_path = Path(argv[2]) if len(argv) == 3 else DEFAULT_BUDGET

    try:
        bench = json.loads(bench_path.read_text(encoding="utf-8"))
        budgets = json.loads(
            budget_path.read_text(encoding="utf-8"))["budgets"]
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"FAIL: cannot load inputs: {e}", file=sys.stderr)
        return 2

    metrics = bench.get("metrics", {})
    failures = []
    for name, limit in sorted(budgets.items()):
        entry = metrics.get(name)
        if entry is None:
            failures.append(
                f"budgeted metric {name!r} missing from {bench_path.name} "
                "(census site renamed/dropped? update tools/alloc_budget.json)")
            continue
        median = entry["median"]
        if median <= limit:
            print(f"ok: {name} median {median:g} <= budget {limit:g}")
        else:
            failures.append(
                f"{name}: median {median:g} exceeds budget {limit:g} — "
                "new steady-state allocations; hoist them into a "
                "workspace/scratch slot or justify a budget bump in the PR")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    if not failures:
        print(f"alloc budget OK ({len(budgets)} metrics within budget)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
