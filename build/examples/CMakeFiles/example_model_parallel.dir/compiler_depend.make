# Empty compiler generated dependencies file for example_model_parallel.
# This may be replaced when dependencies are built.
