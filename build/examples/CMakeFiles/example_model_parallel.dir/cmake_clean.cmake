file(REMOVE_RECURSE
  "CMakeFiles/example_model_parallel.dir/model_parallel.cpp.o"
  "CMakeFiles/example_model_parallel.dir/model_parallel.cpp.o.d"
  "example_model_parallel"
  "example_model_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_model_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
