# Empty compiler generated dependencies file for example_climate_segmentation.
# This may be replaced when dependencies are built.
