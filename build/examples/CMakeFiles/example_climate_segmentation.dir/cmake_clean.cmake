file(REMOVE_RECURSE
  "CMakeFiles/example_climate_segmentation.dir/climate_segmentation.cpp.o"
  "CMakeFiles/example_climate_segmentation.dir/climate_segmentation.cpp.o.d"
  "example_climate_segmentation"
  "example_climate_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_climate_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
