file(REMOVE_RECURSE
  "CMakeFiles/example_staging_pipeline.dir/staging_pipeline.cpp.o"
  "CMakeFiles/example_staging_pipeline.dir/staging_pipeline.cpp.o.d"
  "example_staging_pipeline"
  "example_staging_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_staging_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
