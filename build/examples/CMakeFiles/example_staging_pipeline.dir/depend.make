# Empty dependencies file for example_staging_pipeline.
# This may be replaced when dependencies are built.
