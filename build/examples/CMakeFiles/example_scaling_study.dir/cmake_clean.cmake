file(REMOVE_RECURSE
  "CMakeFiles/example_scaling_study.dir/scaling_study.cpp.o"
  "CMakeFiles/example_scaling_study.dir/scaling_study.cpp.o.d"
  "example_scaling_study"
  "example_scaling_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scaling_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
