# Empty compiler generated dependencies file for example_scaling_study.
# This may be replaced when dependencies are built.
