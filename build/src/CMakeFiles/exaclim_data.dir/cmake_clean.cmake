file(REMOVE_RECURSE
  "CMakeFiles/exaclim_data.dir/data/augment.cpp.o"
  "CMakeFiles/exaclim_data.dir/data/augment.cpp.o.d"
  "CMakeFiles/exaclim_data.dir/data/climate.cpp.o"
  "CMakeFiles/exaclim_data.dir/data/climate.cpp.o.d"
  "CMakeFiles/exaclim_data.dir/data/dataset.cpp.o"
  "CMakeFiles/exaclim_data.dir/data/dataset.cpp.o.d"
  "CMakeFiles/exaclim_data.dir/data/labeler.cpp.o"
  "CMakeFiles/exaclim_data.dir/data/labeler.cpp.o.d"
  "libexaclim_data.a"
  "libexaclim_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaclim_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
