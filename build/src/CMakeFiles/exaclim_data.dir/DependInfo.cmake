
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/augment.cpp" "src/CMakeFiles/exaclim_data.dir/data/augment.cpp.o" "gcc" "src/CMakeFiles/exaclim_data.dir/data/augment.cpp.o.d"
  "/root/repo/src/data/climate.cpp" "src/CMakeFiles/exaclim_data.dir/data/climate.cpp.o" "gcc" "src/CMakeFiles/exaclim_data.dir/data/climate.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/exaclim_data.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/exaclim_data.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/labeler.cpp" "src/CMakeFiles/exaclim_data.dir/data/labeler.cpp.o" "gcc" "src/CMakeFiles/exaclim_data.dir/data/labeler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exaclim_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exaclim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
