file(REMOVE_RECURSE
  "libexaclim_data.a"
)
