# Empty dependencies file for exaclim_data.
# This may be replaced when dependencies are built.
