file(REMOVE_RECURSE
  "libexaclim_hvd.a"
)
