
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hvd/control_plane.cpp" "src/CMakeFiles/exaclim_hvd.dir/hvd/control_plane.cpp.o" "gcc" "src/CMakeFiles/exaclim_hvd.dir/hvd/control_plane.cpp.o.d"
  "/root/repo/src/hvd/exchanger.cpp" "src/CMakeFiles/exaclim_hvd.dir/hvd/exchanger.cpp.o" "gcc" "src/CMakeFiles/exaclim_hvd.dir/hvd/exchanger.cpp.o.d"
  "/root/repo/src/hvd/group.cpp" "src/CMakeFiles/exaclim_hvd.dir/hvd/group.cpp.o" "gcc" "src/CMakeFiles/exaclim_hvd.dir/hvd/group.cpp.o.d"
  "/root/repo/src/hvd/hybrid.cpp" "src/CMakeFiles/exaclim_hvd.dir/hvd/hybrid.cpp.o" "gcc" "src/CMakeFiles/exaclim_hvd.dir/hvd/hybrid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exaclim_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exaclim_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exaclim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
