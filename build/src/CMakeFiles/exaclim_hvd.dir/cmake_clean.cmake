file(REMOVE_RECURSE
  "CMakeFiles/exaclim_hvd.dir/hvd/control_plane.cpp.o"
  "CMakeFiles/exaclim_hvd.dir/hvd/control_plane.cpp.o.d"
  "CMakeFiles/exaclim_hvd.dir/hvd/exchanger.cpp.o"
  "CMakeFiles/exaclim_hvd.dir/hvd/exchanger.cpp.o.d"
  "CMakeFiles/exaclim_hvd.dir/hvd/group.cpp.o"
  "CMakeFiles/exaclim_hvd.dir/hvd/group.cpp.o.d"
  "CMakeFiles/exaclim_hvd.dir/hvd/hybrid.cpp.o"
  "CMakeFiles/exaclim_hvd.dir/hvd/hybrid.cpp.o.d"
  "libexaclim_hvd.a"
  "libexaclim_hvd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaclim_hvd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
