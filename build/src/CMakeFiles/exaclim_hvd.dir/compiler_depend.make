# Empty compiler generated dependencies file for exaclim_hvd.
# This may be replaced when dependencies are built.
