# Empty compiler generated dependencies file for exaclim_flops.
# This may be replaced when dependencies are built.
