file(REMOVE_RECURSE
  "CMakeFiles/exaclim_flops.dir/flops/cost.cpp.o"
  "CMakeFiles/exaclim_flops.dir/flops/cost.cpp.o.d"
  "CMakeFiles/exaclim_flops.dir/flops/opspec.cpp.o"
  "CMakeFiles/exaclim_flops.dir/flops/opspec.cpp.o.d"
  "libexaclim_flops.a"
  "libexaclim_flops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaclim_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
