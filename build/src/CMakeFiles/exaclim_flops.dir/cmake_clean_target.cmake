file(REMOVE_RECURSE
  "libexaclim_flops.a"
)
