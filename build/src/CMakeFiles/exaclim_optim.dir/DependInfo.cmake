
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optim/lag.cpp" "src/CMakeFiles/exaclim_optim.dir/optim/lag.cpp.o" "gcc" "src/CMakeFiles/exaclim_optim.dir/optim/lag.cpp.o.d"
  "/root/repo/src/optim/larc.cpp" "src/CMakeFiles/exaclim_optim.dir/optim/larc.cpp.o" "gcc" "src/CMakeFiles/exaclim_optim.dir/optim/larc.cpp.o.d"
  "/root/repo/src/optim/optimizer.cpp" "src/CMakeFiles/exaclim_optim.dir/optim/optimizer.cpp.o" "gcc" "src/CMakeFiles/exaclim_optim.dir/optim/optimizer.cpp.o.d"
  "/root/repo/src/optim/schedule.cpp" "src/CMakeFiles/exaclim_optim.dir/optim/schedule.cpp.o" "gcc" "src/CMakeFiles/exaclim_optim.dir/optim/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exaclim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exaclim_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exaclim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
