file(REMOVE_RECURSE
  "libexaclim_optim.a"
)
