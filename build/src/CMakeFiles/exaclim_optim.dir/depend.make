# Empty dependencies file for exaclim_optim.
# This may be replaced when dependencies are built.
