file(REMOVE_RECURSE
  "CMakeFiles/exaclim_optim.dir/optim/lag.cpp.o"
  "CMakeFiles/exaclim_optim.dir/optim/lag.cpp.o.d"
  "CMakeFiles/exaclim_optim.dir/optim/larc.cpp.o"
  "CMakeFiles/exaclim_optim.dir/optim/larc.cpp.o.d"
  "CMakeFiles/exaclim_optim.dir/optim/optimizer.cpp.o"
  "CMakeFiles/exaclim_optim.dir/optim/optimizer.cpp.o.d"
  "CMakeFiles/exaclim_optim.dir/optim/schedule.cpp.o"
  "CMakeFiles/exaclim_optim.dir/optim/schedule.cpp.o.d"
  "libexaclim_optim.a"
  "libexaclim_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaclim_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
