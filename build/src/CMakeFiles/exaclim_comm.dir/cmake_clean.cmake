file(REMOVE_RECURSE
  "CMakeFiles/exaclim_comm.dir/comm/collectives.cpp.o"
  "CMakeFiles/exaclim_comm.dir/comm/collectives.cpp.o.d"
  "CMakeFiles/exaclim_comm.dir/comm/world.cpp.o"
  "CMakeFiles/exaclim_comm.dir/comm/world.cpp.o.d"
  "libexaclim_comm.a"
  "libexaclim_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaclim_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
