# Empty dependencies file for exaclim_comm.
# This may be replaced when dependencies are built.
