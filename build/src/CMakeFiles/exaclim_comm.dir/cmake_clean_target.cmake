file(REMOVE_RECURSE
  "libexaclim_comm.a"
)
