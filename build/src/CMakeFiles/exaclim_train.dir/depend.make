# Empty dependencies file for exaclim_train.
# This may be replaced when dependencies are built.
