file(REMOVE_RECURSE
  "libexaclim_train.a"
)
