file(REMOVE_RECURSE
  "CMakeFiles/exaclim_train.dir/train/checkpoint.cpp.o"
  "CMakeFiles/exaclim_train.dir/train/checkpoint.cpp.o.d"
  "CMakeFiles/exaclim_train.dir/train/epoch.cpp.o"
  "CMakeFiles/exaclim_train.dir/train/epoch.cpp.o.d"
  "CMakeFiles/exaclim_train.dir/train/spatial_parallel.cpp.o"
  "CMakeFiles/exaclim_train.dir/train/spatial_parallel.cpp.o.d"
  "CMakeFiles/exaclim_train.dir/train/trainer.cpp.o"
  "CMakeFiles/exaclim_train.dir/train/trainer.cpp.o.d"
  "libexaclim_train.a"
  "libexaclim_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaclim_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
