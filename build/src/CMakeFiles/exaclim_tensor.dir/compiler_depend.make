# Empty compiler generated dependencies file for exaclim_tensor.
# This may be replaced when dependencies are built.
