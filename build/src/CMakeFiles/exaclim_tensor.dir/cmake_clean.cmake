file(REMOVE_RECURSE
  "CMakeFiles/exaclim_tensor.dir/tensor/cast.cpp.o"
  "CMakeFiles/exaclim_tensor.dir/tensor/cast.cpp.o.d"
  "CMakeFiles/exaclim_tensor.dir/tensor/gemm.cpp.o"
  "CMakeFiles/exaclim_tensor.dir/tensor/gemm.cpp.o.d"
  "CMakeFiles/exaclim_tensor.dir/tensor/tensor.cpp.o"
  "CMakeFiles/exaclim_tensor.dir/tensor/tensor.cpp.o.d"
  "libexaclim_tensor.a"
  "libexaclim_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaclim_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
