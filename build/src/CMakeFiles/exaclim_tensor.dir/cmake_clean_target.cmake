file(REMOVE_RECURSE
  "libexaclim_tensor.a"
)
