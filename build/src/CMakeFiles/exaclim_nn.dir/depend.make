# Empty dependencies file for exaclim_nn.
# This may be replaced when dependencies are built.
