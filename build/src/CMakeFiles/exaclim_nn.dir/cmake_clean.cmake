file(REMOVE_RECURSE
  "CMakeFiles/exaclim_nn.dir/nn/activation.cpp.o"
  "CMakeFiles/exaclim_nn.dir/nn/activation.cpp.o.d"
  "CMakeFiles/exaclim_nn.dir/nn/combine.cpp.o"
  "CMakeFiles/exaclim_nn.dir/nn/combine.cpp.o.d"
  "CMakeFiles/exaclim_nn.dir/nn/conv.cpp.o"
  "CMakeFiles/exaclim_nn.dir/nn/conv.cpp.o.d"
  "CMakeFiles/exaclim_nn.dir/nn/im2col.cpp.o"
  "CMakeFiles/exaclim_nn.dir/nn/im2col.cpp.o.d"
  "CMakeFiles/exaclim_nn.dir/nn/loss.cpp.o"
  "CMakeFiles/exaclim_nn.dir/nn/loss.cpp.o.d"
  "CMakeFiles/exaclim_nn.dir/nn/norm.cpp.o"
  "CMakeFiles/exaclim_nn.dir/nn/norm.cpp.o.d"
  "CMakeFiles/exaclim_nn.dir/nn/pool.cpp.o"
  "CMakeFiles/exaclim_nn.dir/nn/pool.cpp.o.d"
  "libexaclim_nn.a"
  "libexaclim_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaclim_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
