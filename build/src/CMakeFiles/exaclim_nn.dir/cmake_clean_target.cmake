file(REMOVE_RECURSE
  "libexaclim_nn.a"
)
