
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/CMakeFiles/exaclim_nn.dir/nn/activation.cpp.o" "gcc" "src/CMakeFiles/exaclim_nn.dir/nn/activation.cpp.o.d"
  "/root/repo/src/nn/combine.cpp" "src/CMakeFiles/exaclim_nn.dir/nn/combine.cpp.o" "gcc" "src/CMakeFiles/exaclim_nn.dir/nn/combine.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/CMakeFiles/exaclim_nn.dir/nn/conv.cpp.o" "gcc" "src/CMakeFiles/exaclim_nn.dir/nn/conv.cpp.o.d"
  "/root/repo/src/nn/im2col.cpp" "src/CMakeFiles/exaclim_nn.dir/nn/im2col.cpp.o" "gcc" "src/CMakeFiles/exaclim_nn.dir/nn/im2col.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/exaclim_nn.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/exaclim_nn.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/CMakeFiles/exaclim_nn.dir/nn/norm.cpp.o" "gcc" "src/CMakeFiles/exaclim_nn.dir/nn/norm.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/CMakeFiles/exaclim_nn.dir/nn/pool.cpp.o" "gcc" "src/CMakeFiles/exaclim_nn.dir/nn/pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exaclim_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exaclim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
