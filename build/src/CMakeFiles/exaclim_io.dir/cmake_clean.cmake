file(REMOVE_RECURSE
  "CMakeFiles/exaclim_io.dir/io/ncf.cpp.o"
  "CMakeFiles/exaclim_io.dir/io/ncf.cpp.o.d"
  "CMakeFiles/exaclim_io.dir/io/pipeline.cpp.o"
  "CMakeFiles/exaclim_io.dir/io/pipeline.cpp.o.d"
  "CMakeFiles/exaclim_io.dir/io/sample_io.cpp.o"
  "CMakeFiles/exaclim_io.dir/io/sample_io.cpp.o.d"
  "CMakeFiles/exaclim_io.dir/io/staging.cpp.o"
  "CMakeFiles/exaclim_io.dir/io/staging.cpp.o.d"
  "libexaclim_io.a"
  "libexaclim_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaclim_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
