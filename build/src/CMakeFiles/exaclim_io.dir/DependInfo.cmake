
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/ncf.cpp" "src/CMakeFiles/exaclim_io.dir/io/ncf.cpp.o" "gcc" "src/CMakeFiles/exaclim_io.dir/io/ncf.cpp.o.d"
  "/root/repo/src/io/pipeline.cpp" "src/CMakeFiles/exaclim_io.dir/io/pipeline.cpp.o" "gcc" "src/CMakeFiles/exaclim_io.dir/io/pipeline.cpp.o.d"
  "/root/repo/src/io/sample_io.cpp" "src/CMakeFiles/exaclim_io.dir/io/sample_io.cpp.o" "gcc" "src/CMakeFiles/exaclim_io.dir/io/sample_io.cpp.o.d"
  "/root/repo/src/io/staging.cpp" "src/CMakeFiles/exaclim_io.dir/io/staging.cpp.o" "gcc" "src/CMakeFiles/exaclim_io.dir/io/staging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exaclim_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exaclim_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exaclim_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exaclim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
