# Empty dependencies file for exaclim_io.
# This may be replaced when dependencies are built.
