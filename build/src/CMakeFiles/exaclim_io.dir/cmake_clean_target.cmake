file(REMOVE_RECURSE
  "libexaclim_io.a"
)
