file(REMOVE_RECURSE
  "CMakeFiles/exaclim_models.dir/models/deeplab.cpp.o"
  "CMakeFiles/exaclim_models.dir/models/deeplab.cpp.o.d"
  "CMakeFiles/exaclim_models.dir/models/resnet.cpp.o"
  "CMakeFiles/exaclim_models.dir/models/resnet.cpp.o.d"
  "CMakeFiles/exaclim_models.dir/models/tiramisu.cpp.o"
  "CMakeFiles/exaclim_models.dir/models/tiramisu.cpp.o.d"
  "libexaclim_models.a"
  "libexaclim_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaclim_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
