
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/deeplab.cpp" "src/CMakeFiles/exaclim_models.dir/models/deeplab.cpp.o" "gcc" "src/CMakeFiles/exaclim_models.dir/models/deeplab.cpp.o.d"
  "/root/repo/src/models/resnet.cpp" "src/CMakeFiles/exaclim_models.dir/models/resnet.cpp.o" "gcc" "src/CMakeFiles/exaclim_models.dir/models/resnet.cpp.o.d"
  "/root/repo/src/models/tiramisu.cpp" "src/CMakeFiles/exaclim_models.dir/models/tiramisu.cpp.o" "gcc" "src/CMakeFiles/exaclim_models.dir/models/tiramisu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/exaclim_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exaclim_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/exaclim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
