# Empty dependencies file for exaclim_models.
# This may be replaced when dependencies are built.
