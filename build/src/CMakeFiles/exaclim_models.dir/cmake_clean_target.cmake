file(REMOVE_RECURSE
  "libexaclim_models.a"
)
