file(REMOVE_RECURSE
  "libexaclim_common.a"
)
