file(REMOVE_RECURSE
  "CMakeFiles/exaclim_common.dir/common/half.cpp.o"
  "CMakeFiles/exaclim_common.dir/common/half.cpp.o.d"
  "CMakeFiles/exaclim_common.dir/common/logging.cpp.o"
  "CMakeFiles/exaclim_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/exaclim_common.dir/common/thread_pool.cpp.o"
  "CMakeFiles/exaclim_common.dir/common/thread_pool.cpp.o.d"
  "libexaclim_common.a"
  "libexaclim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaclim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
