# Empty compiler generated dependencies file for exaclim_common.
# This may be replaced when dependencies are built.
