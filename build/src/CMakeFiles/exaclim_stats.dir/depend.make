# Empty dependencies file for exaclim_stats.
# This may be replaced when dependencies are built.
