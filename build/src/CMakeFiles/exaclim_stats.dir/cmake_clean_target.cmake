file(REMOVE_RECURSE
  "libexaclim_stats.a"
)
