file(REMOVE_RECURSE
  "CMakeFiles/exaclim_stats.dir/stats/stats.cpp.o"
  "CMakeFiles/exaclim_stats.dir/stats/stats.cpp.o.d"
  "libexaclim_stats.a"
  "libexaclim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaclim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
