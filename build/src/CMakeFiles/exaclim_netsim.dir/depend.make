# Empty dependencies file for exaclim_netsim.
# This may be replaced when dependencies are built.
