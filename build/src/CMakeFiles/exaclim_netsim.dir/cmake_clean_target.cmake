file(REMOVE_RECURSE
  "libexaclim_netsim.a"
)
