file(REMOVE_RECURSE
  "CMakeFiles/exaclim_netsim.dir/netsim/event_engine.cpp.o"
  "CMakeFiles/exaclim_netsim.dir/netsim/event_engine.cpp.o.d"
  "CMakeFiles/exaclim_netsim.dir/netsim/machine.cpp.o"
  "CMakeFiles/exaclim_netsim.dir/netsim/machine.cpp.o.d"
  "CMakeFiles/exaclim_netsim.dir/netsim/roofline.cpp.o"
  "CMakeFiles/exaclim_netsim.dir/netsim/roofline.cpp.o.d"
  "CMakeFiles/exaclim_netsim.dir/netsim/scale.cpp.o"
  "CMakeFiles/exaclim_netsim.dir/netsim/scale.cpp.o.d"
  "CMakeFiles/exaclim_netsim.dir/netsim/throughput_series.cpp.o"
  "CMakeFiles/exaclim_netsim.dir/netsim/throughput_series.cpp.o.d"
  "libexaclim_netsim.a"
  "libexaclim_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exaclim_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
