# Empty compiler generated dependencies file for bench_fig2_single_gpu.
# This may be replaced when dependencies are built.
