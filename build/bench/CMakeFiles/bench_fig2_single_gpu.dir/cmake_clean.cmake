file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_single_gpu.dir/bench_fig2_single_gpu.cpp.o"
  "CMakeFiles/bench_fig2_single_gpu.dir/bench_fig2_single_gpu.cpp.o.d"
  "bench_fig2_single_gpu"
  "bench_fig2_single_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_single_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
