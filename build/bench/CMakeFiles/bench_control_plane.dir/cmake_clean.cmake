file(REMOVE_RECURSE
  "CMakeFiles/bench_control_plane.dir/bench_control_plane.cpp.o"
  "CMakeFiles/bench_control_plane.dir/bench_control_plane.cpp.o.d"
  "bench_control_plane"
  "bench_control_plane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control_plane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
