# Empty compiler generated dependencies file for bench_control_plane.
# This may be replaced when dependencies are built.
