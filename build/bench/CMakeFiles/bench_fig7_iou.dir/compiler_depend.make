# Empty compiler generated dependencies file for bench_fig7_iou.
# This may be replaced when dependencies are built.
