file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_iou.dir/bench_fig7_iou.cpp.o"
  "CMakeFiles/bench_fig7_iou.dir/bench_fig7_iou.cpp.o.d"
  "bench_fig7_iou"
  "bench_fig7_iou.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_iou.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
