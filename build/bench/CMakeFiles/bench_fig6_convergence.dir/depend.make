# Empty dependencies file for bench_fig6_convergence.
# This may be replaced when dependencies are built.
