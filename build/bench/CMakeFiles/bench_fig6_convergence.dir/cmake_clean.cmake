file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_convergence.dir/bench_fig6_convergence.cpp.o"
  "CMakeFiles/bench_fig6_convergence.dir/bench_fig6_convergence.cpp.o.d"
  "bench_fig6_convergence"
  "bench_fig6_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
