file(REMOVE_RECURSE
  "CMakeFiles/bench_staging_algorithm.dir/bench_staging_algorithm.cpp.o"
  "CMakeFiles/bench_staging_algorithm.dir/bench_staging_algorithm.cpp.o.d"
  "bench_staging_algorithm"
  "bench_staging_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_staging_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
