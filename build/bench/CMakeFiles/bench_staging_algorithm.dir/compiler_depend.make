# Empty compiler generated dependencies file for bench_staging_algorithm.
# This may be replaced when dependencies are built.
