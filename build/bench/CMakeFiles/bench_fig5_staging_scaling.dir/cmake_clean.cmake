file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_staging_scaling.dir/bench_fig5_staging_scaling.cpp.o"
  "CMakeFiles/bench_fig5_staging_scaling.dir/bench_fig5_staging_scaling.cpp.o.d"
  "bench_fig5_staging_scaling"
  "bench_fig5_staging_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_staging_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
