# Empty dependencies file for bench_fig5_staging_scaling.
# This may be replaced when dependencies are built.
