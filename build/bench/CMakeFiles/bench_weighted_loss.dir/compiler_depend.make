# Empty compiler generated dependencies file for bench_weighted_loss.
# This may be replaced when dependencies are built.
