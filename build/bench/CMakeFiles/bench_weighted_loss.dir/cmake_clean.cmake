file(REMOVE_RECURSE
  "CMakeFiles/bench_weighted_loss.dir/bench_weighted_loss.cpp.o"
  "CMakeFiles/bench_weighted_loss.dir/bench_weighted_loss.cpp.o.d"
  "bench_weighted_loss"
  "bench_weighted_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weighted_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
