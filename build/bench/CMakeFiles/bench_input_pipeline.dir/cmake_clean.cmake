file(REMOVE_RECURSE
  "CMakeFiles/bench_input_pipeline.dir/bench_input_pipeline.cpp.o"
  "CMakeFiles/bench_input_pipeline.dir/bench_input_pipeline.cpp.o.d"
  "bench_input_pipeline"
  "bench_input_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_input_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
