# Empty dependencies file for bench_input_pipeline.
# This may be replaced when dependencies are built.
