# Empty compiler generated dependencies file for bench_fig3_kernel_breakdown.
# This may be replaced when dependencies are built.
