# Empty dependencies file for bench_micro_tensor.
# This may be replaced when dependencies are built.
