file(REMOVE_RECURSE
  "CMakeFiles/bench_allreduce.dir/bench_allreduce.cpp.o"
  "CMakeFiles/bench_allreduce.dir/bench_allreduce.cpp.o.d"
  "bench_allreduce"
  "bench_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
