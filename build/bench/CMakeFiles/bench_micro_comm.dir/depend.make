# Empty dependencies file for bench_micro_comm.
# This may be replaced when dependencies are built.
