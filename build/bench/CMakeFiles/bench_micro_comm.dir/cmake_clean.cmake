file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_comm.dir/bench_micro_comm.cpp.o"
  "CMakeFiles/bench_micro_comm.dir/bench_micro_comm.cpp.o.d"
  "bench_micro_comm"
  "bench_micro_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
