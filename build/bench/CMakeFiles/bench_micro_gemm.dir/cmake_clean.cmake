file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_gemm.dir/bench_micro_gemm.cpp.o"
  "CMakeFiles/bench_micro_gemm.dir/bench_micro_gemm.cpp.o.d"
  "bench_micro_gemm"
  "bench_micro_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
