# Empty compiler generated dependencies file for bench_micro_gemm.
# This may be replaced when dependencies are built.
