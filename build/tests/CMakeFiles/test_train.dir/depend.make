# Empty dependencies file for test_train.
# This may be replaced when dependencies are built.
