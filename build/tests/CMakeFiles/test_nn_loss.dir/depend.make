# Empty dependencies file for test_nn_loss.
# This may be replaced when dependencies are built.
