file(REMOVE_RECURSE
  "CMakeFiles/test_nn_loss.dir/test_nn_loss.cpp.o"
  "CMakeFiles/test_nn_loss.dir/test_nn_loss.cpp.o.d"
  "test_nn_loss"
  "test_nn_loss.pdb"
  "test_nn_loss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
