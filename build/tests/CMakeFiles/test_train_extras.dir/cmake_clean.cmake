file(REMOVE_RECURSE
  "CMakeFiles/test_train_extras.dir/test_train_extras.cpp.o"
  "CMakeFiles/test_train_extras.dir/test_train_extras.cpp.o.d"
  "test_train_extras"
  "test_train_extras.pdb"
  "test_train_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_train_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
