# Empty dependencies file for test_train_extras.
# This may be replaced when dependencies are built.
