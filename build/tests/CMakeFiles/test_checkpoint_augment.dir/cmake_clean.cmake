file(REMOVE_RECURSE
  "CMakeFiles/test_checkpoint_augment.dir/test_checkpoint_augment.cpp.o"
  "CMakeFiles/test_checkpoint_augment.dir/test_checkpoint_augment.cpp.o.d"
  "test_checkpoint_augment"
  "test_checkpoint_augment.pdb"
  "test_checkpoint_augment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkpoint_augment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
