# Empty compiler generated dependencies file for test_checkpoint_augment.
# This may be replaced when dependencies are built.
