file(REMOVE_RECURSE
  "CMakeFiles/test_event_engine.dir/test_event_engine.cpp.o"
  "CMakeFiles/test_event_engine.dir/test_event_engine.cpp.o.d"
  "test_event_engine"
  "test_event_engine.pdb"
  "test_event_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
