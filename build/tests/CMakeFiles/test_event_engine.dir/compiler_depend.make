# Empty compiler generated dependencies file for test_event_engine.
# This may be replaced when dependencies are built.
