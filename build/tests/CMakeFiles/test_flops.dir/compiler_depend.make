# Empty compiler generated dependencies file for test_flops.
# This may be replaced when dependencies are built.
