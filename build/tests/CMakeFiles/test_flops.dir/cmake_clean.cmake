file(REMOVE_RECURSE
  "CMakeFiles/test_flops.dir/test_flops.cpp.o"
  "CMakeFiles/test_flops.dir/test_flops.cpp.o.d"
  "test_flops"
  "test_flops.pdb"
  "test_flops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
