# Empty compiler generated dependencies file for test_throughput_series.
# This may be replaced when dependencies are built.
