file(REMOVE_RECURSE
  "CMakeFiles/test_throughput_series.dir/test_throughput_series.cpp.o"
  "CMakeFiles/test_throughput_series.dir/test_throughput_series.cpp.o.d"
  "test_throughput_series"
  "test_throughput_series.pdb"
  "test_throughput_series[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_throughput_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
