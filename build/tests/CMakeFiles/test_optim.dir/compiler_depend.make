# Empty compiler generated dependencies file for test_optim.
# This may be replaced when dependencies are built.
