file(REMOVE_RECURSE
  "CMakeFiles/test_spatial_parallel.dir/test_spatial_parallel.cpp.o"
  "CMakeFiles/test_spatial_parallel.dir/test_spatial_parallel.cpp.o.d"
  "test_spatial_parallel"
  "test_spatial_parallel.pdb"
  "test_spatial_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spatial_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
