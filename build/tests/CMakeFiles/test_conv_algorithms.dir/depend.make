# Empty dependencies file for test_conv_algorithms.
# This may be replaced when dependencies are built.
