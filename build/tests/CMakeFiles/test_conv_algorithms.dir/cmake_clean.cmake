file(REMOVE_RECURSE
  "CMakeFiles/test_conv_algorithms.dir/test_conv_algorithms.cpp.o"
  "CMakeFiles/test_conv_algorithms.dir/test_conv_algorithms.cpp.o.d"
  "test_conv_algorithms"
  "test_conv_algorithms.pdb"
  "test_conv_algorithms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
