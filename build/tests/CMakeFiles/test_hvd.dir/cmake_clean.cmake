file(REMOVE_RECURSE
  "CMakeFiles/test_hvd.dir/test_hvd.cpp.o"
  "CMakeFiles/test_hvd.dir/test_hvd.cpp.o.d"
  "test_hvd"
  "test_hvd.pdb"
  "test_hvd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hvd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
