# Empty dependencies file for test_hvd.
# This may be replaced when dependencies are built.
