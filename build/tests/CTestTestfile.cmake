# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_checkpoint_augment[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_conv_algorithms[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_event_engine[1]_include.cmake")
include("/root/repo/build/tests/test_flops[1]_include.cmake")
include("/root/repo/build/tests/test_hvd[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_nn_layers[1]_include.cmake")
include("/root/repo/build/tests/test_nn_loss[1]_include.cmake")
include("/root/repo/build/tests/test_optim[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_spatial_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_throughput_series[1]_include.cmake")
include("/root/repo/build/tests/test_train[1]_include.cmake")
include("/root/repo/build/tests/test_train_extras[1]_include.cmake")
