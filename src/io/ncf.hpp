#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "common/sync.hpp"

namespace exaclim {

/// NCF ("numeric container format") — this repo's stand-in for the HDF5
/// files holding CAM5 snapshots (Sec III-A2). A file stores named typed
/// datasets (float32 or uint8) with a self-describing header, enough to
/// serialise ClimateSample fields + label masks.
///
/// Crucially for the Sec V-A2 reproduction, the reader supports a
/// process-global serialisation lock emulating the HDF5 library's global
/// lock: with it enabled, concurrent reads from worker threads serialise
/// (negating parallelism exactly as the paper observed), and the fix —
/// separate "processes", i.e. lock-free readers — is the configuration
/// without it.
/// The process-wide serialisation lock used by NcfReader's global-lock
/// mode. Exposed so callers can emulate holding the HDF5 library lock
/// across read *and* decode (the full Sec V-A2 pathology).
Mutex& NcfGlobalLock();

class NcfWriter {
 public:
  explicit NcfWriter(std::filesystem::path path);

  void AddFloat(const std::string& name, std::span<const float> data);
  void AddBytes(const std::string& name, std::span<const std::uint8_t> data);

  /// Writes the file; returns total bytes written.
  std::int64_t Finish();

 private:
  struct Entry {
    std::string name;
    int dtype;  // 0 = f32, 1 = u8
    std::vector<std::uint8_t> payload;
  };
  std::filesystem::path path_;
  std::vector<Entry> entries_;
  bool finished_ = false;
};

class NcfReader {
 public:
  /// `use_global_lock` simulates HDF5's library-wide lock.
  explicit NcfReader(std::filesystem::path path, bool use_global_lock = false);

  std::vector<std::string> Names() const;
  bool Has(const std::string& name) const;
  std::int64_t Count(const std::string& name) const;

  std::vector<float> ReadFloat(const std::string& name) const;
  /// Decodes `name` directly into caller-provided storage (out.size()
  /// must equal the dataset's element count) — no intermediate payload
  /// vector, so the staging/decode path can read straight into pooled
  /// tensor buffers.
  void ReadFloatInto(const std::string& name, std::span<float> out) const;
  std::vector<std::uint8_t> ReadBytes(const std::string& name) const;

  std::int64_t file_bytes() const { return file_bytes_; }

 private:
  struct Entry {
    std::string name;
    int dtype;
    std::int64_t count;
    std::int64_t offset;
  };
  [[noreturn]] void ThrowNoSuchDataset(const std::string& name) const;
  const Entry& Find(const std::string& name, int dtype) const;
  std::vector<std::uint8_t> ReadPayload(const Entry& entry,
                                        std::size_t elem_size) const;
  std::vector<std::uint8_t> ReadPayloadUnlocked(const Entry& entry,
                                                std::size_t elem_size) const;
  void ReadRawUnlocked(const Entry& entry, void* dst,
                       std::size_t bytes) const;

  std::filesystem::path path_;
  bool use_global_lock_;
  std::vector<Entry> entries_;
  std::int64_t file_bytes_ = 0;
};

}  // namespace exaclim
