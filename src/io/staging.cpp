#include "io/staging.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/alloc_tracker.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "obs/obs.hpp"

namespace exaclim {

// -------------------------------------------------------- MockGlobalFs --

void MockGlobalFs::Put(int file_id, std::vector<std::byte> contents) {
  MutexLock lock(mutex_);
  files_[file_id] = std::move(contents);
}

std::vector<std::byte> MockGlobalFs::Read(int file_id) {
  // Transient-I/O-error fault point, consulted before the fs lock.
  if (FaultInjector::Global().ShouldInject("fs.read")) {
    FaultCounterBump("fault.fs.read_errors");
    throw Error("injected fault: fs.read of file " +
                std::to_string(file_id));
  }
  MutexLock lock(mutex_);
  const auto it = files_.find(file_id);
  EXACLIM_CHECK(it != files_.end(), "no file " << file_id);
  ++read_counts_[file_id];
  ++total_reads_;
  total_bytes_ += static_cast<std::int64_t>(it->second.size());
  return it->second;
}

std::int64_t MockGlobalFs::reads(int file_id) const {
  MutexLock lock(mutex_);
  const auto it = read_counts_.find(file_id);
  return it == read_counts_.end() ? 0 : it->second;
}

std::int64_t MockGlobalFs::total_reads() const {
  MutexLock lock(mutex_);
  return total_reads_;
}

std::int64_t MockGlobalFs::total_bytes_read() const {
  MutexLock lock(mutex_);
  return total_bytes_;
}

std::size_t MockGlobalFs::file_count() const {
  MutexLock lock(mutex_);
  return files_.size();
}

// -------------------------------------------------------- StageDataset --

namespace {

constexpr int kTagRequestCount = 7300;
constexpr int kTagRequest = 7301;
constexpr int kTagFile = 7302;

int OwnerOf(int file_id, int world_size) { return file_id % world_size; }

// Degraded-mode read: fetch one file of a failed owner's shard straight
// from the global filesystem, retrying around transient fs.read faults.
std::vector<std::byte> DegradedRead(MockGlobalFs& fs, int f,
                                    const RetryPolicy& retry) {
  std::vector<std::byte> contents;
  const RetryOutcome outcome =
      RunWithRetry(retry, "staging.degraded_read", [&] {
        try {
          contents = fs.Read(f);
          return true;
        } catch (const Error&) {
          return false;
        }
      });
  EXACLIM_CHECK(outcome.success, "degraded read of file "
                                     << f << " still failing after "
                                     << outcome.attempts << " attempts");
  FaultCounterBump("fault.staging.degraded_files");
  return contents;
}

}  // namespace

std::map<int, std::vector<std::byte>> StageDataset(
    Communicator& comm, MockGlobalFs& fs, const std::set<int>& needs,
    int num_files, const StagingFtOptions& ft) {
  const int p = comm.size();
  const int rank = comm.rank();
  EXACLIM_TRACE_SPAN("staging.stage_dataset", "io");
  // Thread-scoped census: each rank runs its whole staging exchange on
  // its own thread, so a global scope would mix concurrent ranks.
  EXACLIM_ALLOC_CENSUS_THREAD("staging.stage");

  // Phase 1 + 2: tell every owner how many requests to expect from us,
  // then send the requests themselves (interleaving with serving, below,
  // would be deadlock-free too since sends are buffered). Counts from a
  // dead or unresponsive peer are taken as zero after timed re-waits —
  // its requests, if any, are simply never served, and it degrades.
  std::int64_t expected_requests = 0;
  {
    obs::ScopedTimer phase("staging.request", "io", nullptr,
                           obs::HistogramOrNull("staging.request_s"));
    std::vector<std::int64_t> requests_to(static_cast<std::size_t>(p), 0);
    for (const int f : needs) {
      EXACLIM_CHECK(f >= 0 && f < num_files, "file id out of range");
      ++requests_to[static_cast<std::size_t>(OwnerOf(f, p))];
    }
    for (int o = 0; o < p; ++o) {
      comm.SendValue(o, kTagRequestCount,
                     requests_to[static_cast<std::size_t>(o)]);
    }
    for (int r = 0; r < p; ++r) {
      std::int64_t count = 0;
      RecvStatus status = RecvStatus::kTimeout;
      for (int attempt = 0; attempt < ft.retry.max_attempts; ++attempt) {
        status = comm.RecvValueTimeout(
            r, kTagRequestCount,
            ft.count_timeout_s + ft.retry.BackoffSeconds(attempt), &count);
        if (status != RecvStatus::kTimeout) break;
        FaultCounterBump("fault.staging.count_timeouts");
      }
      if (status == RecvStatus::kOk) {
        expected_requests += count;
      } else {
        FaultCounterBump("fault.staging.unresponsive_peers");
      }
    }
    for (const int f : needs) {
      comm.SendValue(OwnerOf(f, p), kTagRequest, f);
    }
  }

  // Phase 3: serve requests — read each requested file from the global
  // filesystem exactly once, then ship copies over the network. The
  // drain is deadline-based: requests promised but never delivered (the
  // requester died, or the message was dropped) are abandoned after
  // backoff-escalated re-waits instead of blocking staging forever.
  {
    obs::ScopedTimer phase("staging.serve", "io", nullptr,
                           obs::HistogramOrNull("staging.serve_s"));
    std::map<int, std::vector<int>> pending;  // file -> requesters, batched
    std::int64_t received = 0;
    int timeout_rounds = 0;
    while (received < expected_requests) {
      int src = -1;
      int f = 0;
      const RecvStatus status = comm.RecvValueTimeout(
          kAnySource, kTagRequest,
          ft.serve_timeout_s + ft.retry.BackoffSeconds(timeout_rounds), &f,
          &src);
      if (status == RecvStatus::kOk) {
        EXACLIM_CHECK(OwnerOf(f, p) == rank,
                      "request routed to wrong owner");
        pending[f].push_back(src);
        ++received;
        timeout_rounds = 0;
        continue;
      }
      ++timeout_rounds;
      if (timeout_rounds >= ft.retry.max_attempts) {
        FaultCounterBump("fault.staging.abandoned_requests",
                         expected_requests - received);
        break;
      }
    }
    std::int64_t bytes_sent = 0;
    for (auto& [f, requesters] : pending) {
      // Exactly one fs read per owned file on the healthy path; injected
      // fs.read faults are retried, and a file that stays unreadable is
      // skipped — its requesters recover through their degraded path.
      std::vector<std::byte> contents;
      const RetryOutcome outcome =
          RunWithRetry(ft.retry, "staging.serve_read", [&] {
            try {
              contents = fs.Read(f);
              return true;
            } catch (const Error&) {
              return false;
            }
          });
      if (!outcome.success) {
        FaultCounterBump("fault.staging.serve_failures");
        continue;
      }
      for (const int dst : requesters) {
        // Prefix the payload with the file id so receivers can match.
        std::vector<std::byte> framed(sizeof(int) + contents.size());
        std::memcpy(framed.data(), &f, sizeof(int));
        std::copy(contents.begin(), contents.end(),
                  framed.begin() + sizeof(int));
        comm.Send(dst, kTagFile, framed);
        bytes_sent += static_cast<std::int64_t>(framed.size());
      }
    }
    if (auto* c = obs::CounterOrNull("staging.bytes_sent")) {
      c->Add(bytes_sent);
    }
  }

  // Phase 4: collect our files, tracking which owner still owes what.
  // Dead owners are degraded around immediately; live-but-silent ones
  // after ft.retry timeout rounds.
  std::map<int, std::vector<std::byte>> staged;
  {
    obs::ScopedTimer phase("staging.collect", "io", nullptr,
                           obs::HistogramOrNull("staging.collect_s"));
    std::map<int, std::set<int>> owed;  // owner -> files still missing
    for (const int f : needs) owed[OwnerOf(f, p)].insert(f);

    const auto degrade_owner = [&](int owner, const std::set<int>& files) {
      EXACLIM_CHECK(ft.allow_degraded,
                    "staging owner rank "
                        << owner << " unreachable and degraded mode is off");
      for (const int f : files) staged[f] = DegradedRead(fs, f, ft.retry);
    };

    int timeout_rounds = 0;
    while (!owed.empty()) {
      for (auto it = owed.begin(); it != owed.end();) {
        if (comm.PeerDead(it->first)) {
          degrade_owner(it->first, it->second);
          it = owed.erase(it);
        } else {
          ++it;
        }
      }
      if (owed.empty()) break;
      const RecvResult r = comm.RecvTimeout(
          kAnySource, kTagFile,
          ft.file_timeout_s + ft.retry.BackoffSeconds(timeout_rounds));
      if (r.ok()) {
        EXACLIM_CHECK(r.payload.size() >= sizeof(int),
                      "malformed file frame");
        int f = 0;
        std::memcpy(&f, r.payload.data(), sizeof(int));
        if (staged.find(f) != staged.end()) {
          // Already satisfied (e.g. degraded just before a late frame).
          FaultCounterBump("fault.staging.duplicate_files");
          continue;
        }
        staged[f].assign(r.payload.begin() + sizeof(int), r.payload.end());
        const auto oit = owed.find(OwnerOf(f, p));
        if (oit != owed.end()) {
          oit->second.erase(f);
          if (oit->second.empty()) owed.erase(oit);
        }
        timeout_rounds = 0;
        continue;
      }
      ++timeout_rounds;
      FaultCounterBump("fault.staging.owner_timeouts");
      if (timeout_rounds >= ft.retry.max_attempts) {
        for (const auto& [owner, files] : owed) degrade_owner(owner, files);
        owed.clear();
      }
    }
  }
  EXACLIM_CHECK(staged.size() == needs.size(),
                "staging delivered " << staged.size() << " files, needed "
                                     << needs.size());
  if (auto* c = obs::CounterOrNull("staging.files_staged")) {
    c->Add(static_cast<std::int64_t>(staged.size()));
  }
  return staged;
}

std::map<int, std::vector<std::byte>> StageNaive(
    MockGlobalFs& fs, const std::set<int>& needs) {
  std::map<int, std::vector<std::byte>> staged;
  for (const int f : needs) staged[f] = fs.Read(f);
  return staged;
}

// -------------------------------------------------------- StagingModel --

double StagingModel::NodeReadBandwidth(int threads) const {
  EXACLIM_CHECK(threads >= 1, "need at least one reader thread");
  const double scaled =
      opts_.per_stream_bw *
      std::pow(static_cast<double>(threads), opts_.thread_scaling_exponent);
  return std::min(scaled, opts_.node_nic_bw);
}

double StagingModel::DuplicationFactor(int nodes) const {
  return static_cast<double>(nodes) * opts_.files_per_node /
         opts_.num_files;
}

double StagingModel::NaiveStageSeconds(int nodes, int threads) const {
  const double bytes_per_node =
      opts_.dataset_bytes / opts_.num_files * opts_.files_per_node;
  const double total_read = bytes_per_node * nodes;
  const double effective_bw = std::min(
      opts_.fs_aggregate_bw, NodeReadBandwidth(threads) * nodes);
  return total_read / effective_bw;
}

double StagingModel::DistributedStageSeconds(int nodes, int threads) const {
  // Disjoint read of the whole catalogue (or less if the union of shards
  // doesn't cover it — conservatively assume full coverage).
  const double covered = std::min(
      opts_.dataset_bytes,
      opts_.dataset_bytes / opts_.num_files * opts_.files_per_node * nodes);
  const double read_bw = std::min(opts_.fs_aggregate_bw,
                                  NodeReadBandwidth(threads) * nodes);
  const double read_time = covered / read_bw;

  // Point-to-point redistribution: every file reaches the other
  // (duplication - 1) nodes that want it, receive-side limited.
  const double dup = DuplicationFactor(nodes);
  const double p2p_bytes = covered * std::max(0.0, dup - 1.0);
  const double p2p_bw = opts_.p2p_bw_per_node * nodes;
  return read_time + p2p_bytes / p2p_bw;
}

}  // namespace exaclim
