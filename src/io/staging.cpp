#include "io/staging.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace exaclim {

// -------------------------------------------------------- MockGlobalFs --

void MockGlobalFs::Put(int file_id, std::vector<std::byte> contents) {
  MutexLock lock(mutex_);
  files_[file_id] = std::move(contents);
}

std::vector<std::byte> MockGlobalFs::Read(int file_id) {
  MutexLock lock(mutex_);
  const auto it = files_.find(file_id);
  EXACLIM_CHECK(it != files_.end(), "no file " << file_id);
  ++read_counts_[file_id];
  ++total_reads_;
  total_bytes_ += static_cast<std::int64_t>(it->second.size());
  return it->second;
}

std::int64_t MockGlobalFs::reads(int file_id) const {
  MutexLock lock(mutex_);
  const auto it = read_counts_.find(file_id);
  return it == read_counts_.end() ? 0 : it->second;
}

std::int64_t MockGlobalFs::total_reads() const {
  MutexLock lock(mutex_);
  return total_reads_;
}

std::int64_t MockGlobalFs::total_bytes_read() const {
  MutexLock lock(mutex_);
  return total_bytes_;
}

std::size_t MockGlobalFs::file_count() const {
  MutexLock lock(mutex_);
  return files_.size();
}

// -------------------------------------------------------- StageDataset --

namespace {

constexpr int kTagRequestCount = 7300;
constexpr int kTagRequest = 7301;
constexpr int kTagFile = 7302;

int OwnerOf(int file_id, int world_size) { return file_id % world_size; }

}  // namespace

std::map<int, std::vector<std::byte>> StageDataset(
    Communicator& comm, MockGlobalFs& fs, const std::set<int>& needs,
    int num_files) {
  const int p = comm.size();
  const int rank = comm.rank();
  EXACLIM_TRACE_SPAN("staging.stage_dataset", "io");

  // Phase 1 + 2: tell every owner how many requests to expect from us,
  // then send the requests themselves (interleaving with serving, below,
  // would be deadlock-free too since sends are buffered).
  std::int64_t expected_requests = 0;
  {
    obs::ScopedTimer phase("staging.request", "io", nullptr,
                           obs::HistogramOrNull("staging.request_s"));
    std::vector<std::int64_t> requests_to(static_cast<std::size_t>(p), 0);
    for (const int f : needs) {
      EXACLIM_CHECK(f >= 0 && f < num_files, "file id out of range");
      ++requests_to[static_cast<std::size_t>(OwnerOf(f, p))];
    }
    for (int o = 0; o < p; ++o) {
      comm.SendValue(o, kTagRequestCount,
                     requests_to[static_cast<std::size_t>(o)]);
    }
    for (int r = 0; r < p; ++r) {
      expected_requests += comm.RecvValue<std::int64_t>(r, kTagRequestCount);
    }
    for (const int f : needs) {
      comm.SendValue(OwnerOf(f, p), kTagRequest, f);
    }
  }

  // Phase 3: serve requests — read each requested file from the global
  // filesystem exactly once, then ship copies over the network.
  {
    obs::ScopedTimer phase("staging.serve", "io", nullptr,
                           obs::HistogramOrNull("staging.serve_s"));
    std::map<int, std::vector<int>> pending;  // file -> requesters, batched
    for (std::int64_t i = 0; i < expected_requests; ++i) {
      int src = -1;
      const int f = comm.RecvValue<int>(kAnySource, kTagRequest, &src);
      EXACLIM_CHECK(OwnerOf(f, p) == rank, "request routed to wrong owner");
      pending[f].push_back(src);
    }
    std::int64_t bytes_sent = 0;
    for (auto& [f, requesters] : pending) {
      const std::vector<std::byte> contents = fs.Read(f);  // exactly once
      for (const int dst : requesters) {
        // Prefix the payload with the file id so receivers can match.
        std::vector<std::byte> framed(sizeof(int) + contents.size());
        std::memcpy(framed.data(), &f, sizeof(int));
        std::copy(contents.begin(), contents.end(),
                  framed.begin() + sizeof(int));
        comm.Send(dst, kTagFile, framed);
        bytes_sent += static_cast<std::int64_t>(framed.size());
      }
    }
    if (auto* c = obs::CounterOrNull("staging.bytes_sent")) {
      c->Add(bytes_sent);
    }
  }

  // Phase 4: collect our files.
  std::map<int, std::vector<std::byte>> staged;
  {
    obs::ScopedTimer phase("staging.collect", "io", nullptr,
                           obs::HistogramOrNull("staging.collect_s"));
    for (std::size_t i = 0; i < needs.size(); ++i) {
      const std::vector<std::byte> framed =
          comm.RecvAny(kAnySource, kTagFile);
      EXACLIM_CHECK(framed.size() >= sizeof(int), "malformed file frame");
      int f = 0;
      std::memcpy(&f, framed.data(), sizeof(int));
      staged[f].assign(framed.begin() + sizeof(int), framed.end());
    }
  }
  EXACLIM_CHECK(staged.size() == needs.size(),
                "staging delivered " << staged.size() << " files, needed "
                                     << needs.size());
  if (auto* c = obs::CounterOrNull("staging.files_staged")) {
    c->Add(static_cast<std::int64_t>(staged.size()));
  }
  return staged;
}

std::map<int, std::vector<std::byte>> StageNaive(
    MockGlobalFs& fs, const std::set<int>& needs) {
  std::map<int, std::vector<std::byte>> staged;
  for (const int f : needs) staged[f] = fs.Read(f);
  return staged;
}

// -------------------------------------------------------- StagingModel --

double StagingModel::NodeReadBandwidth(int threads) const {
  EXACLIM_CHECK(threads >= 1, "need at least one reader thread");
  const double scaled =
      opts_.per_stream_bw *
      std::pow(static_cast<double>(threads), opts_.thread_scaling_exponent);
  return std::min(scaled, opts_.node_nic_bw);
}

double StagingModel::DuplicationFactor(int nodes) const {
  return static_cast<double>(nodes) * opts_.files_per_node /
         opts_.num_files;
}

double StagingModel::NaiveStageSeconds(int nodes, int threads) const {
  const double bytes_per_node =
      opts_.dataset_bytes / opts_.num_files * opts_.files_per_node;
  const double total_read = bytes_per_node * nodes;
  const double effective_bw = std::min(
      opts_.fs_aggregate_bw, NodeReadBandwidth(threads) * nodes);
  return total_read / effective_bw;
}

double StagingModel::DistributedStageSeconds(int nodes, int threads) const {
  // Disjoint read of the whole catalogue (or less if the union of shards
  // doesn't cover it — conservatively assume full coverage).
  const double covered = std::min(
      opts_.dataset_bytes,
      opts_.dataset_bytes / opts_.num_files * opts_.files_per_node * nodes);
  const double read_bw = std::min(opts_.fs_aggregate_bw,
                                  NodeReadBandwidth(threads) * nodes);
  const double read_time = covered / read_bw;

  // Point-to-point redistribution: every file reaches the other
  // (duplication - 1) nodes that want it, receive-side limited.
  const double dup = DuplicationFactor(nodes);
  const double p2p_bytes = covered * std::max(0.0, dup - 1.0);
  const double p2p_bw = opts_.p2p_bw_per_node * nodes;
  return read_time + p2p_bytes / p2p_bw;
}

}  // namespace exaclim
