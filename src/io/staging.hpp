#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "comm/world.hpp"
#include "common/fault.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace exaclim {

/// In-memory stand-in for the global parallel filesystem in the staging
/// algorithm tests: files are byte blobs; every read is counted, so tests
/// can assert the "each file is read from GPFS exactly once" property of
/// the Sec V-A1 distributed stager (vs ~23 reads/file for the naive
/// script). Thread-safe.
class MockGlobalFs {
 public:
  void Put(int file_id, std::vector<std::byte> contents);
  std::vector<std::byte> Read(int file_id);

  std::int64_t reads(int file_id) const;
  std::int64_t total_reads() const;
  std::int64_t total_bytes_read() const;
  std::size_t file_count() const;

 private:
  mutable Mutex mutex_;
  std::map<int, std::vector<std::byte>> files_ EXACLIM_GUARDED_BY(mutex_);
  std::map<int, std::int64_t> read_counts_ EXACLIM_GUARDED_BY(mutex_);
  std::int64_t total_reads_ EXACLIM_GUARDED_BY(mutex_) = 0;
  std::int64_t total_bytes_ EXACLIM_GUARDED_BY(mutex_) = 0;
};

/// Fault-tolerance knobs for StageDataset. The defaults are generous
/// enough that a healthy run never trips them (the exactly-once property
/// is preserved on the no-fault path); fault tests pass tighter values
/// so dead/unresponsive-owner detection is fast.
struct StagingFtOptions {
  /// Wait for a peer's request-count message before assuming it is gone.
  double count_timeout_s = 2.0;
  /// Wait per drain round in the serve loop (incoming requests).
  double serve_timeout_s = 2.0;
  /// Wait per drain round in the collect loop (incoming files).
  double file_timeout_s = 1.0;
  /// Governs how many timeout rounds are re-waited (with escalating
  /// backoff added to the round timeout) before degrading/abandoning.
  RetryPolicy retry{};
  /// When an owner stays unreachable: re-read its shard directly from
  /// the global filesystem (naive mode for only the affected files).
  /// With this off, an unreachable owner makes StageDataset throw.
  bool allow_degraded = true;
};

/// The Sec V-A1 distributed data-staging algorithm, run for real over the
/// comm substrate:
///  1. files are assigned to owner ranks round-robin, so the set of
///     global-filesystem reads is disjoint across ranks;
///  2. every rank tells each owner how many of its files it needs, then
///     requests them;
///  3. owners read each requested file from the filesystem once and send
///     copies point-to-point over the (InfiniBand) network to every
///     requester.
/// Returns this rank's staged files (id -> contents). `needs` is this
/// rank's required file set (the paper's ~1500 samples per node).
///
/// Fault tolerance (DESIGN §8): every receive is deadline-based, so a
/// dead or unresponsive owner is detected by timeout, re-waited with
/// backoff per `ft.retry`, and finally degraded around by reading the
/// missing files straight from `fs` — the caller always gets its full
/// `needs` set back (duplicated reads are confined to the failed shard).
/// Recoveries publish "fault.staging.*" counters.
std::map<int, std::vector<std::byte>> StageDataset(
    Communicator& comm, MockGlobalFs& fs, const std::set<int>& needs,
    int num_files, const StagingFtOptions& ft = {});

/// The naive baseline: every rank reads its whole subset straight from
/// the filesystem (duplicating reads ~(ranks*files_per_rank/num_files)x).
std::map<int, std::vector<std::byte>> StageNaive(MockGlobalFs& fs,
                                                 const std::set<int>& needs);

// ---------------------------------------------------------------------
// Analytic staging-time model (Sec V-A1 numbers at full machine scale,
// where the thread-scale algorithm above cannot run).

struct StagingModelOptions {
  /// Aggregate read bandwidth of the global filesystem (bytes/s).
  /// Summit's early-install Spectrum Scale sustained ~100 GB/s for the
  /// kind of parallel read the staging scripts issued.
  double fs_aggregate_bw = 100e9;
  /// Single-stream read bandwidth per node (paper: 1.79 GB/s).
  double per_stream_bw = 1.79e9;
  /// Thread-scaling exponent: 8 threads gave 6.7x (8^0.914 ~ 6.7).
  double thread_scaling_exponent = 0.914;
  /// Per-node NIC cap for filesystem reads (bytes/s).
  double node_nic_bw = 12.5e9;
  /// Per-node point-to-point bandwidth for the redistribution phase.
  double p2p_bw_per_node = 12.5e9;
  /// Dataset size (paper: 3.5 TB) and catalogue size (63000 samples).
  double dataset_bytes = 3.5e12;
  double num_files = 63000;
  double files_per_node = 1500;
};

class StagingModel {
 public:
  StagingModel() : StagingModel(StagingModelOptions{}) {}
  explicit StagingModel(const StagingModelOptions& opts) : opts_(opts) {}

  /// Achieved per-node read bandwidth with `threads` parallel readers
  /// (reproduces 1.79 -> 11.98 GB/s for 1 -> 8).
  double NodeReadBandwidth(int threads) const;

  /// Average number of nodes wanting each file (the "23 nodes on
  /// average" figure at 1024 nodes).
  double DuplicationFactor(int nodes) const;

  /// Naive per-node copy straight from the filesystem.
  double NaiveStageSeconds(int nodes, int threads) const;

  /// Disjoint reads + point-to-point redistribution.
  double DistributedStageSeconds(int nodes, int threads) const;

  const StagingModelOptions& options() const { return opts_; }

 private:
  StagingModelOptions opts_;
};

}  // namespace exaclim
