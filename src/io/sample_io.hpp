#pragma once

#include <filesystem>

#include "data/climate.hpp"

namespace exaclim {

/// Serialises a climate sample into an NCF file (one dataset per CAM5
/// variable, named after the channel, plus the label masks) — the layout
/// mirrors how the paper's HDF5 snapshots store one variable per dataset.
void WriteSampleFile(const std::filesystem::path& path,
                     const ClimateSample& sample);

/// Reads a sample back; `use_global_lock` routes reads through the
/// HDF5-style process-global lock (Sec V-A2 pathology mode).
ClimateSample ReadSampleFile(const std::filesystem::path& path,
                             bool use_global_lock = false);

}  // namespace exaclim
