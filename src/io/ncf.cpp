#include "io/ncf.hpp"

#include <cstring>
#include <fstream>
#include <mutex>

#include "common/error.hpp"

namespace exaclim {
namespace {

constexpr char kMagic[4] = {'N', 'C', 'F', '1'};

template <typename T>
void WriteScalar(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadScalar(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return value;
}

}  // namespace

Mutex& NcfGlobalLock() {
  static Mutex lock;
  return lock;
}

NcfWriter::NcfWriter(std::filesystem::path path) : path_(std::move(path)) {}

void NcfWriter::AddFloat(const std::string& name,
                         std::span<const float> data) {
  EXACLIM_CHECK(!finished_, "writer already finished");
  Entry entry;
  entry.name = name;
  entry.dtype = 0;
  entry.payload.resize(data.size() * sizeof(float));
  std::memcpy(entry.payload.data(), data.data(), entry.payload.size());
  entries_.push_back(std::move(entry));
}

void NcfWriter::AddBytes(const std::string& name,
                         std::span<const std::uint8_t> data) {
  EXACLIM_CHECK(!finished_, "writer already finished");
  Entry entry;
  entry.name = name;
  entry.dtype = 1;
  entry.payload.assign(data.begin(), data.end());
  entries_.push_back(std::move(entry));
}

std::int64_t NcfWriter::Finish() {
  EXACLIM_CHECK(!finished_, "writer already finished");
  finished_ = true;
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  EXACLIM_CHECK(out.good(), "cannot open " << path_ << " for writing");

  out.write(kMagic, 4);
  WriteScalar<std::uint32_t>(out, static_cast<std::uint32_t>(entries_.size()));

  // Header size must be known to compute payload offsets; lay out header
  // entries first (name_len, name, dtype, count, offset).
  std::int64_t header_size = 8;  // magic + count
  for (const Entry& e : entries_) {
    header_size += 4 + static_cast<std::int64_t>(e.name.size()) + 4 + 8 + 8;
  }
  std::int64_t offset = header_size;
  for (const Entry& e : entries_) {
    WriteScalar<std::uint32_t>(out, static_cast<std::uint32_t>(e.name.size()));
    out.write(e.name.data(), static_cast<std::streamsize>(e.name.size()));
    WriteScalar<std::uint32_t>(out, static_cast<std::uint32_t>(e.dtype));
    const std::size_t elem = e.dtype == 0 ? sizeof(float) : 1;
    WriteScalar<std::uint64_t>(
        out, static_cast<std::uint64_t>(e.payload.size() / elem));
    WriteScalar<std::uint64_t>(out, static_cast<std::uint64_t>(offset));
    offset += static_cast<std::int64_t>(e.payload.size());
  }
  for (const Entry& e : entries_) {
    out.write(reinterpret_cast<const char*>(e.payload.data()),
              static_cast<std::streamsize>(e.payload.size()));
  }
  EXACLIM_CHECK(out.good(), "write to " << path_ << " failed");
  return offset;
}

NcfReader::NcfReader(std::filesystem::path path, bool use_global_lock)
    : path_(std::move(path)), use_global_lock_(use_global_lock) {
  std::ifstream in(path_, std::ios::binary);
  EXACLIM_CHECK(in.good(), "cannot open " << path_);
  char magic[4];
  in.read(magic, 4);
  EXACLIM_CHECK(std::memcmp(magic, kMagic, 4) == 0,
                path_ << " is not an NCF file");
  const auto count = ReadScalar<std::uint32_t>(in);
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry entry;
    const auto name_len = ReadScalar<std::uint32_t>(in);
    entry.name.resize(name_len);
    in.read(entry.name.data(), name_len);
    entry.dtype = static_cast<int>(ReadScalar<std::uint32_t>(in));
    entry.count = static_cast<std::int64_t>(ReadScalar<std::uint64_t>(in));
    entry.offset = static_cast<std::int64_t>(ReadScalar<std::uint64_t>(in));
    entries_.push_back(std::move(entry));
  }
  EXACLIM_CHECK(in.good(), "truncated NCF header in " << path_);
  file_bytes_ =
      static_cast<std::int64_t>(std::filesystem::file_size(path_));
}

std::vector<std::string> NcfReader::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.name);
  return names;
}

bool NcfReader::Has(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

// Recoverable lookup failure (DESIGN §8): callers probing for optional
// datasets — e.g. a checkpoint loader meeting an older file layout — can
// catch this, so the message lists what IS in the file to make the
// mismatch diagnosable.
[[noreturn]] void NcfReader::ThrowNoSuchDataset(
    const std::string& name) const {
  std::string present;
  for (const Entry& e : entries_) {
    if (!present.empty()) present += ", ";
    present += e.name;
  }
  if (present.empty()) present = "<none>";
  throw Error("no dataset named " + name + " in " + path_.string() +
              " (present: " + present + ")");
}

std::int64_t NcfReader::Count(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return e.count;
  }
  ThrowNoSuchDataset(name);
}

const NcfReader::Entry& NcfReader::Find(const std::string& name,
                                        int dtype) const {
  for (const Entry& e : entries_) {
    if (e.name == name) {
      EXACLIM_CHECK(e.dtype == dtype,
                    "dataset " << name << " has dtype " << e.dtype);
      return e;
    }
  }
  ThrowNoSuchDataset(name);
}

std::vector<std::uint8_t> NcfReader::ReadPayload(const Entry& entry,
                                                 std::size_t elem_size) const {
  if (use_global_lock_) {
    MutexLock lock(NcfGlobalLock());
    return ReadPayloadUnlocked(entry, elem_size);
  }
  return ReadPayloadUnlocked(entry, elem_size);
}

std::vector<std::uint8_t> NcfReader::ReadPayloadUnlocked(
    const Entry& entry, std::size_t elem_size) const {
  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(entry.count) * elem_size);
  ReadRawUnlocked(entry, payload.data(), payload.size());
  return payload;
}

void NcfReader::ReadRawUnlocked(const Entry& entry, void* dst,
                                std::size_t bytes) const {
  std::ifstream in(path_, std::ios::binary);
  EXACLIM_CHECK(in.good(), "cannot open " << path_);
  in.seekg(entry.offset);
  in.read(static_cast<char*>(dst), static_cast<std::streamsize>(bytes));
  EXACLIM_CHECK(in.good(), "truncated payload for " << entry.name);
}

std::vector<float> NcfReader::ReadFloat(const std::string& name) const {
  const Entry& entry = Find(name, 0);
  const auto payload = ReadPayload(entry, sizeof(float));
  std::vector<float> data(static_cast<std::size_t>(entry.count));
  std::memcpy(data.data(), payload.data(), payload.size());
  return data;
}

void NcfReader::ReadFloatInto(const std::string& name,
                              std::span<float> out) const {
  const Entry& entry = Find(name, 0);
  EXACLIM_CHECK(static_cast<std::int64_t>(out.size()) == entry.count,
                "dataset " << name << " holds " << entry.count
                           << " floats, caller provided " << out.size());
  const std::size_t bytes = out.size() * sizeof(float);
  if (use_global_lock_) {
    MutexLock lock(NcfGlobalLock());
    ReadRawUnlocked(entry, out.data(), bytes);
    return;
  }
  ReadRawUnlocked(entry, out.data(), bytes);
}

std::vector<std::uint8_t> NcfReader::ReadBytes(const std::string& name) const {
  const Entry& entry = Find(name, 1);
  return ReadPayload(entry, 1);
}

}  // namespace exaclim
