#include "io/pipeline.hpp"

#include "common/error.hpp"

namespace exaclim {

InputPipeline::InputPipeline(Producer producer, std::int64_t total,
                             const Options& opts)
    : producer_(std::move(producer)), total_(total), opts_(opts) {
  EXACLIM_CHECK(opts_.workers >= 1 && opts_.prefetch_depth >= 1,
                "pipeline needs >= 1 worker and >= 1 queue slot");
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

InputPipeline::~InputPipeline() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  not_full_.NotifyAll();
  not_empty_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void InputPipeline::CheckQueueInvariants() const {
  EXACLIM_DCHECK(
      queue_.size() <= static_cast<std::size_t>(opts_.prefetch_depth),
      "prefetch queue overflow: " << queue_.size() << " > depth "
                                  << opts_.prefetch_depth);
  EXACLIM_DCHECK(produced_ >= consumed_,
                 "consumed " << consumed_ << " batches but only produced "
                             << produced_);
  EXACLIM_DCHECK(
      produced_ - consumed_ == static_cast<std::int64_t>(queue_.size()),
      "queue holds " << queue_.size() << " batches but accounting says "
                     << (produced_ - consumed_));
  EXACLIM_DCHECK(next_index_ <= total_ && produced_ <= next_index_,
                 "index bookkeeping out of range: next=" << next_index_
                                                         << " produced="
                                                         << produced_);
}

void InputPipeline::WorkerLoop() {
  for (;;) {
    std::int64_t index;
    {
      MutexLock lock(mutex_);
      if (stop_ || next_index_ >= total_) return;
      index = next_index_++;
    }
    // Produce outside the lock — this is where the parallelism lives.
    Batch batch = producer_(index);
    {
      MutexLock lock(mutex_);
      while (!stop_ &&
             queue_.size() >=
                 static_cast<std::size_t>(opts_.prefetch_depth)) {
        not_full_.Wait(lock);
      }
      if (stop_) return;
      queue_.push_back(std::move(batch));
      ++produced_;
      CheckQueueInvariants();
    }
    not_empty_.NotifyOne();
  }
}

std::optional<Batch> InputPipeline::Next() {
  std::optional<Batch> batch;
  {
    MutexLock lock(mutex_);
    while (queue_.empty() &&
           consumed_ + static_cast<std::int64_t>(queue_.size()) < total_ &&
           !stop_) {
      not_empty_.Wait(lock);
    }
    if (queue_.empty()) {
      // All batches consumed (or shutting down).
      return std::nullopt;
    }
    batch = std::move(queue_.front());
    queue_.pop_front();
    ++consumed_;
    CheckQueueInvariants();
    if (consumed_ >= total_) {
      // Exhausted: producers only NotifyOne per push, so with several
      // consumer threads the one taking the final batch must wake the
      // rest, or they block on not_empty_ forever (caught by
      // PipelineStress.MultiProducerMultiConsumerDrainsExactlyOnce).
      not_empty_.NotifyAll();
    }
  }
  not_full_.NotifyOne();
  return batch;
}

std::size_t InputPipeline::QueueDepth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

}  // namespace exaclim
