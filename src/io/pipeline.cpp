#include "io/pipeline.hpp"

#include "common/error.hpp"

namespace exaclim {

InputPipeline::InputPipeline(Producer producer, std::int64_t total,
                             const Options& opts)
    : producer_(std::move(producer)), total_(total), opts_(opts) {
  EXACLIM_CHECK(opts_.workers >= 1 && opts_.prefetch_depth >= 1,
                "pipeline needs >= 1 worker and >= 1 queue slot");
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

InputPipeline::~InputPipeline() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
  for (auto& w : workers_) w.join();
}

void InputPipeline::WorkerLoop() {
  for (;;) {
    std::int64_t index;
    {
      std::lock_guard lock(mutex_);
      if (stop_ || next_index_ >= total_) return;
      index = next_index_++;
    }
    // Produce outside the lock — this is where the parallelism lives.
    Batch batch = producer_(index);
    {
      std::unique_lock lock(mutex_);
      not_full_.wait(lock, [this] {
        return stop_ ||
               queue_.size() <
                   static_cast<std::size_t>(opts_.prefetch_depth);
      });
      if (stop_) return;
      queue_.push_back(std::move(batch));
      ++produced_;
    }
    not_empty_.notify_one();
  }
}

std::optional<Batch> InputPipeline::Next() {
  std::unique_lock lock(mutex_);
  not_empty_.wait(lock, [this] {
    return !queue_.empty() || consumed_ + static_cast<std::int64_t>(
                                              queue_.size()) >= total_ ||
           stop_;
  });
  if (queue_.empty()) {
    // All batches consumed (or shutting down).
    return std::nullopt;
  }
  Batch batch = std::move(queue_.front());
  queue_.pop_front();
  ++consumed_;
  lock.unlock();
  not_full_.notify_one();
  return batch;
}

std::size_t InputPipeline::QueueDepth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace exaclim
