#include "io/pipeline.hpp"

#include <chrono>
#include <exception>
#include <string>

#include "common/alloc_tracker.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "obs/obs.hpp"

namespace exaclim {

namespace {

// Publishes a queue-depth change to the enabled observability sinks.
// Called OUTSIDE the pipeline mutex: the gauge is an atomic and the
// trace append takes only the caller's thread-buffer lock, but there is
// no reason to serialise either against the queue.
void PublishQueueDepth(std::size_t depth) {
  if (auto* gauge = obs::GaugeOrNull("pipeline.queue_depth")) {
    gauge->Set(static_cast<double>(depth));
  }
  if (auto* tracer = obs::Tracer()) {
    tracer->RecordCounter("pipeline.queue_depth",
                          static_cast<double>(depth));
  }
}

}  // namespace

InputPipeline::InputPipeline(Producer producer, std::int64_t total,
                             const Options& opts)
    : producer_(std::move(producer)), total_(total), opts_(opts) {
  EXACLIM_CHECK(opts_.workers >= 1 && opts_.prefetch_depth >= 1,
                "pipeline needs >= 1 worker and >= 1 queue slot");
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

InputPipeline::~InputPipeline() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  not_full_.NotifyAll();
  not_empty_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void InputPipeline::CheckQueueInvariants() const {
  EXACLIM_DCHECK(
      queue_.size() <= static_cast<std::size_t>(opts_.prefetch_depth),
      "prefetch queue overflow: " << queue_.size() << " > depth "
                                  << opts_.prefetch_depth);
  EXACLIM_DCHECK(produced_ >= consumed_,
                 "consumed " << consumed_ << " batches but only produced "
                             << produced_);
  EXACLIM_DCHECK(
      produced_ - consumed_ == static_cast<std::int64_t>(queue_.size()),
      "queue holds " << queue_.size() << " batches but accounting says "
                     << (produced_ - consumed_));
  EXACLIM_DCHECK(next_index_ <= total_ && produced_ + skipped_ <= next_index_,
                 "index bookkeeping out of range: next="
                     << next_index_ << " produced=" << produced_
                     << " skipped=" << skipped_);
  EXACLIM_DCHECK(
      skipped_ == static_cast<std::int64_t>(producer_failures_),
      "every skipped batch must come from a permanent producer failure");
}

void InputPipeline::WorkerLoop() {
  for (;;) {
    std::int64_t index;
    {
      MutexLock lock(mutex_);
      if (stop_ || next_index_ >= total_) return;
      index = next_index_++;
    }
    // Produce outside the lock — this is where the parallelism lives. A
    // throwing producer must never terminate this thread (that would
    // std::terminate the process) or strand Next() callers: the batch is
    // retried, then skipped with its exception parked for a consumer.
    double produce_seconds = 0.0;
    std::optional<Batch> batch;
    std::exception_ptr error;
    std::int64_t retries = 0;
    for (int attempt = 0; attempt <= opts_.producer_retries; ++attempt) {
      if (attempt > 0) {
        ++retries;
        FaultCounterBump("fault.pipeline.producer_retries");
      }
      try {
        obs::ScopedTimer timer("pipeline.produce", "io", &produce_seconds,
                               obs::HistogramOrNull("pipeline.produce_s"));
        // The decode path allocates on the worker thread itself, so a
        // thread-scoped census attributes exactly this batch's heap use.
        EXACLIM_ALLOC_CENSUS_THREAD("pipeline.produce");
        if (FaultInjector::Global().ShouldInject("pipeline.produce")) {
          throw Error("injected fault: pipeline.produce of batch " +
                      std::to_string(index));
        }
        batch = producer_(index);
        error = nullptr;
        break;
      } catch (...) {
        error = std::current_exception();
      }
    }
    std::size_t depth = 0;
    if (!batch.has_value()) {
      FaultCounterBump("fault.pipeline.producer_failures");
      {
        MutexLock lock(mutex_);
        ++skipped_;
        ++producer_failures_;
        producer_retries_ += retries;
        produce_seconds_ += produce_seconds;
        pending_errors_.push_back(error);
        CheckQueueInvariants();
      }
      // Every waiter must re-evaluate: the skip may complete the total,
      // and the parked error must reach some consumer.
      not_empty_.NotifyAll();
      continue;
    }
    {
      MutexLock lock(mutex_);
      while (!stop_ &&
             queue_.size() >=
                 static_cast<std::size_t>(opts_.prefetch_depth)) {
        not_full_.Wait(lock);
      }
      if (stop_) return;
      queue_.push_back(std::move(*batch));
      ++produced_;
      producer_retries_ += retries;
      produce_seconds_ += produce_seconds;
      depth = queue_.size();
      CheckQueueInvariants();
    }
    not_empty_.NotifyOne();
    PublishQueueDepth(depth);
  }
}

std::optional<Batch> InputPipeline::Next() {
  using Clock = std::chrono::steady_clock;
  std::optional<Batch> batch;
  std::size_t depth = 0;
  double wait_seconds = 0.0;
  Clock::time_point wait_start{};
  Clock::time_point wait_end{};
  {
    MutexLock lock(mutex_);
    wait_start = Clock::now();
    while (queue_.empty() && pending_errors_.empty() &&
           consumed_ + skipped_ < total_ && !stop_) {
      not_empty_.Wait(lock);
    }
    wait_end = Clock::now();
    wait_seconds =
        std::chrono::duration<double>(wait_end - wait_start).count();
    wait_seconds_ += wait_seconds;
    if (!pending_errors_.empty()) {
      // A permanently failed batch: surface its exception exactly once.
      // The MutexLock releases on unwind; the caller may catch and keep
      // consuming the remaining batches.
      std::exception_ptr err = pending_errors_.front();
      pending_errors_.pop_front();
      std::rethrow_exception(err);
    }
    if (queue_.empty()) {
      // All batches consumed or skipped (or shutting down).
      return std::nullopt;
    }
    batch = std::move(queue_.front());
    queue_.pop_front();
    ++consumed_;
    depth = queue_.size();
    CheckQueueInvariants();
    if (consumed_ + skipped_ >= total_) {
      // Exhausted: producers only NotifyOne per push, so with several
      // consumer threads the one taking the final batch must wake the
      // rest, or they block on not_empty_ forever (caught by
      // PipelineStress.MultiProducerMultiConsumerDrainsExactlyOnce).
      not_empty_.NotifyAll();
    }
  }
  not_full_.NotifyOne();
  if (auto* hist = obs::HistogramOrNull("pipeline.wait_s")) {
    hist->Record(wait_seconds);
  }
  if (auto* tracer = obs::Tracer()) {
    // Only materialise a span when the consumer actually stalled — this
    // is the "GPU waiting on input" signal of Sec V-A2.
    if (wait_seconds > 50e-6) {
      tracer->RecordSpan("pipeline.wait", "io", wait_start, wait_end);
    }
  }
  PublishQueueDepth(depth);
  return batch;
}

PipelineStats InputPipeline::Stats() const {
  MutexLock lock(mutex_);
  PipelineStats stats;
  stats.total = total_;
  stats.produced = produced_;
  stats.consumed = consumed_;
  stats.depth = queue_.size();
  stats.produce_seconds = produce_seconds_;
  stats.wait_seconds = wait_seconds_;
  stats.producer_failures = producer_failures_;
  stats.producer_retries = producer_retries_;
  stats.skipped = skipped_;
  return stats;
}

}  // namespace exaclim
