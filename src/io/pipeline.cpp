#include "io/pipeline.hpp"

#include <chrono>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace exaclim {

namespace {

// Publishes a queue-depth change to the enabled observability sinks.
// Called OUTSIDE the pipeline mutex: the gauge is an atomic and the
// trace append takes only the caller's thread-buffer lock, but there is
// no reason to serialise either against the queue.
void PublishQueueDepth(std::size_t depth) {
  if (auto* gauge = obs::GaugeOrNull("pipeline.queue_depth")) {
    gauge->Set(static_cast<double>(depth));
  }
  if (auto* tracer = obs::Tracer()) {
    tracer->RecordCounter("pipeline.queue_depth",
                          static_cast<double>(depth));
  }
}

}  // namespace

InputPipeline::InputPipeline(Producer producer, std::int64_t total,
                             const Options& opts)
    : producer_(std::move(producer)), total_(total), opts_(opts) {
  EXACLIM_CHECK(opts_.workers >= 1 && opts_.prefetch_depth >= 1,
                "pipeline needs >= 1 worker and >= 1 queue slot");
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

InputPipeline::~InputPipeline() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  not_full_.NotifyAll();
  not_empty_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void InputPipeline::CheckQueueInvariants() const {
  EXACLIM_DCHECK(
      queue_.size() <= static_cast<std::size_t>(opts_.prefetch_depth),
      "prefetch queue overflow: " << queue_.size() << " > depth "
                                  << opts_.prefetch_depth);
  EXACLIM_DCHECK(produced_ >= consumed_,
                 "consumed " << consumed_ << " batches but only produced "
                             << produced_);
  EXACLIM_DCHECK(
      produced_ - consumed_ == static_cast<std::int64_t>(queue_.size()),
      "queue holds " << queue_.size() << " batches but accounting says "
                     << (produced_ - consumed_));
  EXACLIM_DCHECK(next_index_ <= total_ && produced_ <= next_index_,
                 "index bookkeeping out of range: next=" << next_index_
                                                         << " produced="
                                                         << produced_);
}

void InputPipeline::WorkerLoop() {
  for (;;) {
    std::int64_t index;
    {
      MutexLock lock(mutex_);
      if (stop_ || next_index_ >= total_) return;
      index = next_index_++;
    }
    // Produce outside the lock — this is where the parallelism lives.
    double produce_seconds = 0.0;
    Batch batch;
    {
      obs::ScopedTimer timer("pipeline.produce", "io", &produce_seconds,
                             obs::HistogramOrNull("pipeline.produce_s"));
      batch = producer_(index);
    }
    std::size_t depth = 0;
    {
      MutexLock lock(mutex_);
      while (!stop_ &&
             queue_.size() >=
                 static_cast<std::size_t>(opts_.prefetch_depth)) {
        not_full_.Wait(lock);
      }
      if (stop_) return;
      queue_.push_back(std::move(batch));
      ++produced_;
      produce_seconds_ += produce_seconds;
      depth = queue_.size();
      CheckQueueInvariants();
    }
    not_empty_.NotifyOne();
    PublishQueueDepth(depth);
  }
}

std::optional<Batch> InputPipeline::Next() {
  using Clock = std::chrono::steady_clock;
  std::optional<Batch> batch;
  std::size_t depth = 0;
  double wait_seconds = 0.0;
  Clock::time_point wait_start{};
  Clock::time_point wait_end{};
  {
    MutexLock lock(mutex_);
    wait_start = Clock::now();
    while (queue_.empty() &&
           consumed_ + static_cast<std::int64_t>(queue_.size()) < total_ &&
           !stop_) {
      not_empty_.Wait(lock);
    }
    wait_end = Clock::now();
    wait_seconds =
        std::chrono::duration<double>(wait_end - wait_start).count();
    wait_seconds_ += wait_seconds;
    if (queue_.empty()) {
      // All batches consumed (or shutting down).
      return std::nullopt;
    }
    batch = std::move(queue_.front());
    queue_.pop_front();
    ++consumed_;
    depth = queue_.size();
    CheckQueueInvariants();
    if (consumed_ >= total_) {
      // Exhausted: producers only NotifyOne per push, so with several
      // consumer threads the one taking the final batch must wake the
      // rest, or they block on not_empty_ forever (caught by
      // PipelineStress.MultiProducerMultiConsumerDrainsExactlyOnce).
      not_empty_.NotifyAll();
    }
  }
  not_full_.NotifyOne();
  if (auto* hist = obs::HistogramOrNull("pipeline.wait_s")) {
    hist->Record(wait_seconds);
  }
  if (auto* tracer = obs::Tracer()) {
    // Only materialise a span when the consumer actually stalled — this
    // is the "GPU waiting on input" signal of Sec V-A2.
    if (wait_seconds > 50e-6) {
      tracer->RecordSpan("pipeline.wait", "io", wait_start, wait_end);
    }
  }
  PublishQueueDepth(depth);
  return batch;
}

PipelineStats InputPipeline::Stats() const {
  MutexLock lock(mutex_);
  PipelineStats stats;
  stats.total = total_;
  stats.produced = produced_;
  stats.consumed = consumed_;
  stats.depth = queue_.size();
  stats.produce_seconds = produce_seconds_;
  stats.wait_seconds = wait_seconds_;
  return stats;
}

}  // namespace exaclim
