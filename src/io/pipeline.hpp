#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "data/dataset.hpp"

namespace exaclim {

/// The optimised input pipeline of Sec V-A2: `workers` reader threads
/// produce batches ahead of the consumer into a bounded prefetch queue
/// (TensorFlow's dataset.prefetch), so the accelerator never waits while
/// the CPU decodes input — as long as average production rate exceeds
/// consumption rate.
///
/// The HDF5-serialisation pathology and its fix are exercised by the
/// producer function itself (see io/ncf.hpp's global-lock mode): this
/// class just supplies the parallelism and the queue.
class InputPipeline {
 public:
  using Producer = std::function<Batch(std::int64_t index)>;

  struct Options {
    int workers = 4;
    int prefetch_depth = 4;
  };

  /// Produces batches for indices [0, total); producers run immediately.
  InputPipeline(Producer producer, std::int64_t total, const Options& opts);
  ~InputPipeline();

  InputPipeline(const InputPipeline&) = delete;
  InputPipeline& operator=(const InputPipeline&) = delete;

  /// Blocks for the next batch; nullopt once all `total` are consumed.
  /// Batches may arrive out of index order (training shuffles anyway).
  std::optional<Batch> Next();

  /// Batches sitting ready in the queue (diagnostic: a persistently
  /// empty queue means the pipeline is the bottleneck).
  std::size_t QueueDepth() const;

 private:
  void WorkerLoop();

  Producer producer_;
  std::int64_t total_;
  Options opts_;

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Batch> queue_;
  std::int64_t next_index_ = 0;
  std::int64_t produced_ = 0;
  std::int64_t consumed_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace exaclim
