#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "data/dataset.hpp"

namespace exaclim {

/// Point-in-time snapshot of pipeline activity, the Sec V-A2 diagnostic
/// surface: a persistently empty queue (depth 0, growing wait_seconds)
/// means the producers are the bottleneck; a persistently full one means
/// the consumer is.
struct PipelineStats {
  std::int64_t total = 0;         // batches this pipeline will produce
  std::int64_t produced = 0;      // pushed into the queue so far
  std::int64_t consumed = 0;      // handed to Next() callers so far
  std::size_t depth = 0;          // batches sitting ready right now
  double produce_seconds = 0.0;   // cumulative producer time, all workers
  double wait_seconds = 0.0;      // cumulative consumer block time in Next
};

/// The optimised input pipeline of Sec V-A2: `workers` reader threads
/// produce batches ahead of the consumer into a bounded prefetch queue
/// (TensorFlow's dataset.prefetch), so the accelerator never waits while
/// the CPU decodes input — as long as average production rate exceeds
/// consumption rate.
///
/// The HDF5-serialisation pathology and its fix are exercised by the
/// producer function itself (see io/ncf.hpp's global-lock mode): this
/// class just supplies the parallelism and the queue.
class InputPipeline {
 public:
  using Producer = std::function<Batch(std::int64_t index)>;

  struct Options {
    int workers = 4;
    int prefetch_depth = 4;
  };

  /// Produces batches for indices [0, total); producers run immediately.
  InputPipeline(Producer producer, std::int64_t total, const Options& opts);
  ~InputPipeline();

  InputPipeline(const InputPipeline&) = delete;
  InputPipeline& operator=(const InputPipeline&) = delete;

  /// Blocks for the next batch; nullopt once all `total` are consumed.
  /// Batches may arrive out of index order (training shuffles anyway).
  std::optional<Batch> Next() EXACLIM_EXCLUDES(mutex_);

  /// Consistent snapshot of the pipeline counters (replaces the old
  /// QueueDepth() with the full produced/consumed/wait picture). When
  /// observability is enabled the same numbers stream continuously into
  /// the registry ("pipeline.queue_depth" gauge, "pipeline.produce_s" /
  /// "pipeline.wait_s" histograms) and the trace (queue-depth counter
  /// track).
  PipelineStats Stats() const EXACLIM_EXCLUDES(mutex_);

 private:
  void WorkerLoop() EXACLIM_EXCLUDES(mutex_);

  // Debug-build queue invariants (bounded depth, counter consistency);
  // no-op in Release.
  void CheckQueueInvariants() const EXACLIM_REQUIRES(mutex_);

  Producer producer_;
  std::int64_t total_;
  Options opts_;

  mutable Mutex mutex_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<Batch> queue_ EXACLIM_GUARDED_BY(mutex_);
  std::int64_t next_index_ EXACLIM_GUARDED_BY(mutex_) = 0;
  std::int64_t produced_ EXACLIM_GUARDED_BY(mutex_) = 0;
  std::int64_t consumed_ EXACLIM_GUARDED_BY(mutex_) = 0;
  double produce_seconds_ EXACLIM_GUARDED_BY(mutex_) = 0.0;
  double wait_seconds_ EXACLIM_GUARDED_BY(mutex_) = 0.0;
  bool stop_ EXACLIM_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace exaclim
