#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "data/dataset.hpp"

namespace exaclim {

/// Point-in-time snapshot of pipeline activity, the Sec V-A2 diagnostic
/// surface: a persistently empty queue (depth 0, growing wait_seconds)
/// means the producers are the bottleneck; a persistently full one means
/// the consumer is.
struct PipelineStats {
  std::int64_t total = 0;         // batches this pipeline will produce
  std::int64_t produced = 0;      // pushed into the queue so far
  std::int64_t consumed = 0;      // handed to Next() callers so far
  std::size_t depth = 0;          // batches sitting ready right now
  double produce_seconds = 0.0;   // cumulative producer time, all workers
  double wait_seconds = 0.0;      // cumulative consumer block time in Next
  // Fault-tolerance accounting (DESIGN §8): a producer exception is
  // retried up to Options::producer_retries times; a batch that still
  // fails is skipped and its exception surfaced on Next().
  std::int64_t producer_failures = 0;  // batches permanently failed
  std::int64_t producer_retries = 0;   // retry attempts across all batches
  std::int64_t skipped = 0;            // batches never delivered
};

/// The optimised input pipeline of Sec V-A2: `workers` reader threads
/// produce batches ahead of the consumer into a bounded prefetch queue
/// (TensorFlow's dataset.prefetch), so the accelerator never waits while
/// the CPU decodes input — as long as average production rate exceeds
/// consumption rate.
///
/// The HDF5-serialisation pathology and its fix are exercised by the
/// producer function itself (see io/ncf.hpp's global-lock mode): this
/// class just supplies the parallelism and the queue.
class InputPipeline {
 public:
  using Producer = std::function<Batch(std::int64_t index)>;

  struct Options {
    int workers = 4;
    int prefetch_depth = 4;
    /// Extra attempts per batch after a producer exception before the
    /// batch is skipped and the exception surfaced on Next().
    int producer_retries = 2;
  };

  /// Produces batches for indices [0, total); producers run immediately.
  InputPipeline(Producer producer, std::int64_t total, const Options& opts);
  ~InputPipeline();

  InputPipeline(const InputPipeline&) = delete;
  InputPipeline& operator=(const InputPipeline&) = delete;

  /// Blocks for the next batch; nullopt once all `total` are consumed or
  /// skipped. Batches may arrive out of index order (training shuffles
  /// anyway).
  ///
  /// Fault surface: a producer exception that survives its retries never
  /// terminates the worker thread or strands consumers — it is re-thrown
  /// here, exactly once per failed batch. Callers may catch it and keep
  /// calling Next() for the remaining batches.
  std::optional<Batch> Next() EXACLIM_EXCLUDES(mutex_);

  /// Consistent snapshot of the pipeline counters (replaces the old
  /// QueueDepth() with the full produced/consumed/wait picture). When
  /// observability is enabled the same numbers stream continuously into
  /// the registry ("pipeline.queue_depth" gauge, "pipeline.produce_s" /
  /// "pipeline.wait_s" histograms) and the trace (queue-depth counter
  /// track).
  PipelineStats Stats() const EXACLIM_EXCLUDES(mutex_);

 private:
  void WorkerLoop() EXACLIM_EXCLUDES(mutex_);

  // Debug-build queue invariants (bounded depth, counter consistency);
  // no-op in Release.
  void CheckQueueInvariants() const EXACLIM_REQUIRES(mutex_);

  Producer producer_;
  std::int64_t total_;
  Options opts_;

  mutable Mutex mutex_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<Batch> queue_ EXACLIM_GUARDED_BY(mutex_);
  std::deque<std::exception_ptr> pending_errors_ EXACLIM_GUARDED_BY(mutex_);
  std::int64_t next_index_ EXACLIM_GUARDED_BY(mutex_) = 0;
  std::int64_t produced_ EXACLIM_GUARDED_BY(mutex_) = 0;
  std::int64_t consumed_ EXACLIM_GUARDED_BY(mutex_) = 0;
  std::int64_t skipped_ EXACLIM_GUARDED_BY(mutex_) = 0;
  std::int64_t producer_failures_ EXACLIM_GUARDED_BY(mutex_) = 0;
  std::int64_t producer_retries_ EXACLIM_GUARDED_BY(mutex_) = 0;
  double produce_seconds_ EXACLIM_GUARDED_BY(mutex_) = 0.0;
  double wait_seconds_ EXACLIM_GUARDED_BY(mutex_) = 0.0;
  bool stop_ EXACLIM_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace exaclim
