#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "data/dataset.hpp"

namespace exaclim {

/// The optimised input pipeline of Sec V-A2: `workers` reader threads
/// produce batches ahead of the consumer into a bounded prefetch queue
/// (TensorFlow's dataset.prefetch), so the accelerator never waits while
/// the CPU decodes input — as long as average production rate exceeds
/// consumption rate.
///
/// The HDF5-serialisation pathology and its fix are exercised by the
/// producer function itself (see io/ncf.hpp's global-lock mode): this
/// class just supplies the parallelism and the queue.
class InputPipeline {
 public:
  using Producer = std::function<Batch(std::int64_t index)>;

  struct Options {
    int workers = 4;
    int prefetch_depth = 4;
  };

  /// Produces batches for indices [0, total); producers run immediately.
  InputPipeline(Producer producer, std::int64_t total, const Options& opts);
  ~InputPipeline();

  InputPipeline(const InputPipeline&) = delete;
  InputPipeline& operator=(const InputPipeline&) = delete;

  /// Blocks for the next batch; nullopt once all `total` are consumed.
  /// Batches may arrive out of index order (training shuffles anyway).
  std::optional<Batch> Next() EXACLIM_EXCLUDES(mutex_);

  /// Batches sitting ready in the queue (diagnostic: a persistently
  /// empty queue means the pipeline is the bottleneck).
  std::size_t QueueDepth() const EXACLIM_EXCLUDES(mutex_);

 private:
  void WorkerLoop() EXACLIM_EXCLUDES(mutex_);

  // Debug-build queue invariants (bounded depth, counter consistency);
  // no-op in Release.
  void CheckQueueInvariants() const EXACLIM_REQUIRES(mutex_);

  Producer producer_;
  std::int64_t total_;
  Options opts_;

  mutable Mutex mutex_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<Batch> queue_ EXACLIM_GUARDED_BY(mutex_);
  std::int64_t next_index_ EXACLIM_GUARDED_BY(mutex_) = 0;
  std::int64_t produced_ EXACLIM_GUARDED_BY(mutex_) = 0;
  std::int64_t consumed_ EXACLIM_GUARDED_BY(mutex_) = 0;
  bool stop_ EXACLIM_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace exaclim
