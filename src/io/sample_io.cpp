#include "io/sample_io.hpp"

#include <cstring>
#include <string>

#include "common/error.hpp"
#include "io/ncf.hpp"

namespace exaclim {

void WriteSampleFile(const std::filesystem::path& path,
                     const ClimateSample& sample) {
  const std::int64_t hw = sample.height * sample.width;
  EXACLIM_CHECK(sample.fields.shape() ==
                    TensorShape({kNumClimateChannels, sample.height,
                                 sample.width}),
                "unexpected sample field shape");
  NcfWriter writer(path);
  // Shape metadata as a tiny float dataset (h, w).
  const float dims[2] = {static_cast<float>(sample.height),
                         static_cast<float>(sample.width)};
  writer.AddFloat("dims", dims);
  for (int c = 0; c < kNumClimateChannels; ++c) {
    writer.AddFloat(std::string(ChannelName(c)),
                    std::span<const float>(sample.fields.Raw() + c * hw,
                                           static_cast<std::size_t>(hw)));
  }
  writer.AddBytes("truth", sample.truth);
  if (!sample.labels.empty()) writer.AddBytes("labels", sample.labels);
  writer.Finish();
}

ClimateSample ReadSampleFile(const std::filesystem::path& path,
                             bool use_global_lock) {
  NcfReader reader(path, use_global_lock);
  const auto dims = reader.ReadFloat("dims");
  EXACLIM_CHECK(dims.size() == 2, "malformed sample file " << path);
  ClimateSample sample;
  sample.height = static_cast<std::int64_t>(dims[0]);
  sample.width = static_cast<std::int64_t>(dims[1]);
  const std::int64_t hw = sample.height * sample.width;
  sample.fields =
      Tensor(TensorShape{kNumClimateChannels, sample.height, sample.width});
  for (int c = 0; c < kNumClimateChannels; ++c) {
    // Decode straight into the pooled tensor buffer — no per-channel
    // staging vector, so decode storage is arena-accounted.
    reader.ReadFloatInto(
        std::string(ChannelName(c)),
        std::span<float>(sample.fields.Raw() + c * hw,
                         static_cast<std::size_t>(hw)));
  }
  sample.truth = reader.ReadBytes("truth");
  if (reader.Has("labels")) sample.labels = reader.ReadBytes("labels");
  return sample;
}

}  // namespace exaclim
