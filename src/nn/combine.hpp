#pragma once

#include <span>
#include <vector>

#include "nn/layer.hpp"

namespace exaclim {

/// Channel-wise concatenation (the combine operation Tiramisu uses where
/// ResNet uses addition). Free functions rather than a Layer because the
/// model graphs wire skips explicitly.
Tensor ConcatChannels(std::span<const Tensor* const> inputs);
Tensor ConcatChannels(const Tensor& a, const Tensor& b);

/// Splits a concatenated gradient back into per-input gradients with the
/// given channel counts (adjoint of ConcatChannels).
std::vector<Tensor> SplitChannels(const Tensor& grad,
                                  std::span<const std::int64_t> channels);

/// Allocation-reusing form of SplitChannels: writes part i into out[i],
/// recycling out[i]'s pooled buffer when its shape already matches
/// (which it does from the second training step on — DenseBlock and
/// Tiramisu keep the destination tensors as member scratch).
/// out.size() must equal channels.size().
void SplitChannelsInto(const Tensor& grad,
                       std::span<const std::int64_t> channels,
                       std::span<Tensor> out);

/// Extracts a channel range [begin, begin+count) as its own tensor.
Tensor SliceChannels(const Tensor& input, std::int64_t begin,
                     std::int64_t count);

/// Bilinear upsampling by an integer factor (align_corners=false
/// convention). Kept for decoder ablations against the deconv-based
/// full-resolution decoder of Fig 1.
class BilinearUpsample2d : public Layer {
 public:
  BilinearUpsample2d(std::string name, std::int64_t factor);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override;

 private:
  std::int64_t factor_;
  TensorShape input_shape_;
};

}  // namespace exaclim
