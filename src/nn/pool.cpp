#include "nn/pool.hpp"

#include <limits>

#include "common/thread_pool.hpp"

namespace exaclim {
namespace {

/// Plane-parallel dispatch for the pooling loops: every (image, channel)
/// plane is independent, writes are disjoint and each plane's reduction
/// stays within one task, so results are scheduling-invariant.
void ForEachPlane(std::int64_t planes,
                  FunctionRef<void(std::int64_t)> fn) {
  ParallelFor(
      0, static_cast<std::size_t>(planes),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t p = lo; p < hi; ++p) {
          fn(static_cast<std::int64_t>(p));
        }
      },
      /*grain=*/1);
}

}  // namespace

// ---------------------------------------------------------- MaxPool2d ---

MaxPool2d::MaxPool2d(std::string name, std::int64_t kernel,
                     std::int64_t stride, std::int64_t pad)
    : Layer(std::move(name)),
      kernel_(kernel),
      stride_(stride),
      pad_(pad < 0 ? kernel / 2 : pad) {
  EXACLIM_CHECK(kernel_ >= 1 && stride_ >= 1, "invalid pool geometry");
}

TensorShape MaxPool2d::OutputShape(const TensorShape& input) const {
  EXACLIM_CHECK(input.rank() == 4, name() << ": rank-4 input required");
  const std::int64_t oh = (input.h() + 2 * pad_ - kernel_) / stride_ + 1;
  const std::int64_t ow = (input.w() + 2 * pad_ - kernel_) / stride_ + 1;
  return TensorShape::NCHW(input.n(), input.c(), oh, ow);
}

Tensor MaxPool2d::Forward(const Tensor& input, bool /*train*/) {
  const TensorShape out_shape = OutputShape(input.shape());
  input_shape_ = input.shape();
  Tensor output(out_shape);
  argmax_.assign(static_cast<std::size_t>(out_shape.NumElements()), -1);

  const std::int64_t planes = input.shape().n() * input.shape().c();
  const std::int64_t ih = input.shape().h(), iw = input.shape().w();
  const std::int64_t oh = out_shape.h(), ow = out_shape.w();
  ForEachPlane(planes, [&](std::int64_t p) {
    const float* in = input.Raw() + p * ih * iw;
    float* out = output.Raw() + p * oh * ow;
    std::int64_t* arg = argmax_.data() + p * oh * ow;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        float best = -std::numeric_limits<float>::infinity();
        std::int64_t best_idx = -1;
        for (std::int64_t ky = 0; ky < kernel_; ++ky) {
          const std::int64_t iy = oy * stride_ + ky - pad_;
          if (iy < 0 || iy >= ih) continue;
          for (std::int64_t kx = 0; kx < kernel_; ++kx) {
            const std::int64_t ix = ox * stride_ + kx - pad_;
            if (ix < 0 || ix >= iw) continue;
            const float v = in[iy * iw + ix];
            if (v > best) {
              best = v;
              best_idx = iy * iw + ix;
            }
          }
        }
        // Fully-padded window (possible at edges): acts as zero.
        out[oy * ow + ox] = best_idx >= 0 ? best : 0.0f;
        arg[oy * ow + ox] = best_idx;
      }
    }
  });
  MaybeQuantise(output);
  return output;
}

Tensor MaxPool2d::Backward(const Tensor& grad_output) {
  EXACLIM_CHECK(!argmax_.empty(), name() << ": Backward before Forward");
  const TensorShape out_shape = OutputShape(input_shape_);
  EXACLIM_CHECK(grad_output.shape() == out_shape,
                name() << ": grad shape mismatch");
  Tensor grad_input(input_shape_);
  const std::int64_t planes = input_shape_.n() * input_shape_.c();
  const std::int64_t ihw = input_shape_.h() * input_shape_.w();
  const std::int64_t ohw = out_shape.h() * out_shape.w();
  ForEachPlane(planes, [&](std::int64_t p) {
    const float* gout = grad_output.Raw() + p * ohw;
    const std::int64_t* arg = argmax_.data() + p * ohw;
    float* gin = grad_input.Raw() + p * ihw;
    for (std::int64_t i = 0; i < ohw; ++i) {
      if (arg[i] >= 0) gin[arg[i]] += gout[i];
    }
  });
  MaybeQuantise(grad_input);
  return grad_input;
}

// ---------------------------------------------------------- AvgPool2d ---

AvgPool2d::AvgPool2d(std::string name, std::int64_t kernel,
                     std::int64_t stride)
    : Layer(std::move(name)), kernel_(kernel), stride_(stride) {
  EXACLIM_CHECK(kernel_ >= 0 && stride_ >= 1, "invalid pool geometry");
}

TensorShape AvgPool2d::OutputShape(const TensorShape& input) const {
  EXACLIM_CHECK(input.rank() == 4, name() << ": rank-4 input required");
  if (kernel_ == 0) {
    return TensorShape::NCHW(input.n(), input.c(), 1, 1);
  }
  const std::int64_t oh = (input.h() - kernel_) / stride_ + 1;
  const std::int64_t ow = (input.w() - kernel_) / stride_ + 1;
  return TensorShape::NCHW(input.n(), input.c(), oh, ow);
}

Tensor AvgPool2d::Forward(const Tensor& input, bool /*train*/) {
  const TensorShape out_shape = OutputShape(input.shape());
  input_shape_ = input.shape();
  Tensor output(out_shape);
  const std::int64_t planes = input.shape().n() * input.shape().c();
  const std::int64_t ih = input.shape().h(), iw = input.shape().w();
  const std::int64_t oh = out_shape.h(), ow = out_shape.w();
  const std::int64_t k = kernel_ == 0 ? ih : kernel_;  // square assumption
  const std::int64_t kw = kernel_ == 0 ? iw : kernel_;
  const std::int64_t stride_h = kernel_ == 0 ? ih : stride_;
  const std::int64_t stride_w = kernel_ == 0 ? iw : stride_;
  ForEachPlane(planes, [&](std::int64_t p) {
    const float* in = input.Raw() + p * ih * iw;
    float* out = output.Raw() + p * oh * ow;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        double acc = 0.0;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          for (std::int64_t kx = 0; kx < kw; ++kx) {
            acc += in[(oy * stride_h + ky) * iw + ox * stride_w + kx];
          }
        }
        out[oy * ow + ox] = static_cast<float>(acc / (k * kw));
      }
    }
  });
  MaybeQuantise(output);
  return output;
}

Tensor AvgPool2d::Backward(const Tensor& grad_output) {
  EXACLIM_CHECK(input_shape_.rank() == 4,
                name() << ": Backward before Forward");
  const TensorShape out_shape = OutputShape(input_shape_);
  EXACLIM_CHECK(grad_output.shape() == out_shape,
                name() << ": grad shape mismatch");
  Tensor grad_input(input_shape_);
  const std::int64_t planes = input_shape_.n() * input_shape_.c();
  const std::int64_t ih = input_shape_.h(), iw = input_shape_.w();
  const std::int64_t oh = out_shape.h(), ow = out_shape.w();
  const std::int64_t k = kernel_ == 0 ? ih : kernel_;
  const std::int64_t kw = kernel_ == 0 ? iw : kernel_;
  const std::int64_t stride_h = kernel_ == 0 ? ih : stride_;
  const std::int64_t stride_w = kernel_ == 0 ? iw : stride_;
  const float inv = 1.0f / static_cast<float>(k * kw);
  ForEachPlane(planes, [&](std::int64_t p) {
    const float* gout = grad_output.Raw() + p * oh * ow;
    float* gin = grad_input.Raw() + p * ih * iw;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const float g = gout[oy * ow + ox] * inv;
        for (std::int64_t ky = 0; ky < k; ++ky) {
          for (std::int64_t kx = 0; kx < kw; ++kx) {
            gin[(oy * stride_h + ky) * iw + ox * stride_w + kx] += g;
          }
        }
      }
    }
  });
  MaybeQuantise(grad_input);
  return grad_input;
}

}  // namespace exaclim
