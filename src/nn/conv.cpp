#include "nn/conv.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/gemm_kernel.hpp"

namespace exaclim {
namespace {

std::atomic<ConvAlgorithm>& DefaultAlgorithmFlag() {
  static std::atomic<ConvAlgorithm> flag([] {
    if (const char* env = std::getenv("EXACLIM_CONV_ALGO")) {
      if (const auto parsed = ParseConvAlgorithm(env)) return *parsed;
    }
    return ConvAlgorithm::kAuto;
  }());
  return flag;
}

// "Same" padding must grow with the dilated (effective) kernel, or an
// ASPP-style dilated conv with the default pad silently shrinks its
// spatial map.
std::int64_t SamePad(std::int64_t kernel, std::int64_t dilation) {
  return dilation * (kernel / 2);
}

// Per-image bias gradient contribution for one channel plane, as a float
// (the canonical per-image rounding the shard accumulators chain).
float PlaneSum(const float* plane, std::int64_t count) {
  double acc = 0.0;
  for (std::int64_t p = 0; p < count; ++p) acc += plane[p];
  return static_cast<float>(acc);
}

// Naive direct convolution of one image (used when kDirect is forced on a
// non-pointwise geometry): no patch buffer, pure loops.
void DirectConvImage(const ConvGeometry& g, std::int64_t out_c,
                     const float* image, const float* weight, float* out) {
  const std::int64_t out_h = g.OutH(), out_w = g.OutW();
  const std::int64_t patch = g.PatchSize();
  for (std::int64_t oc = 0; oc < out_c; ++oc) {
    const float* w_oc = weight + oc * patch;
    float* plane = out + oc * out_h * out_w;
    for (std::int64_t oy = 0; oy < out_h; ++oy) {
      for (std::int64_t ox = 0; ox < out_w; ++ox) {
        double acc = 0.0;
        std::int64_t w_idx = 0;
        for (std::int64_t c = 0; c < g.in_c; ++c) {
          const float* in_plane = image + c * g.in_h * g.in_w;
          for (std::int64_t ky = 0; ky < g.k_h; ++ky) {
            const std::int64_t iy = oy * g.stride + ky * g.dilation - g.pad;
            for (std::int64_t kx = 0; kx < g.k_w; ++kx, ++w_idx) {
              const std::int64_t ix =
                  ox * g.stride + kx * g.dilation - g.pad;
              if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w) {
                acc += static_cast<double>(w_oc[w_idx]) *
                       in_plane[iy * g.in_w + ix];
              }
            }
          }
        }
        plane[oy * out_w + ox] = static_cast<float>(acc);
      }
    }
  }
}

}  // namespace

const char* ToString(ConvAlgorithm algo) {
  switch (algo) {
    case ConvAlgorithm::kAuto: return "auto";
    case ConvAlgorithm::kIm2Col: return "im2col";
    case ConvAlgorithm::kImplicitGemm: return "implicit-gemm";
    case ConvAlgorithm::kDirect: return "direct";
  }
  return "?";
}

std::optional<ConvAlgorithm> ParseConvAlgorithm(std::string_view value) {
  if (value == "auto") return ConvAlgorithm::kAuto;
  if (value == "im2col") return ConvAlgorithm::kIm2Col;
  if (value == "implicit" || value == "implicit-gemm") {
    return ConvAlgorithm::kImplicitGemm;
  }
  if (value == "direct") return ConvAlgorithm::kDirect;
  return std::nullopt;
}

ConvAlgorithm DefaultConvAlgorithm() {
  return DefaultAlgorithmFlag().load(std::memory_order_relaxed);
}

void SetDefaultConvAlgorithm(ConvAlgorithm algo) {
  DefaultAlgorithmFlag().store(algo, std::memory_order_relaxed);
}

// ----------------------------------------------------------- Conv2d -----

Conv2d::Conv2d(std::string name, const Options& opts, Rng& rng)
    : Layer(std::move(name)),
      opts_([&] {
        Options o = opts;
        if (o.pad < 0) o.pad = SamePad(o.kernel, o.dilation);
        return o;
      }()),
      weight_(this->name() + ".weight",
              Tensor::Randn(
                  TensorShape{opts_.out_c,
                              opts_.in_c * opts_.kernel * opts_.kernel},
                  rng, 0.0f,
                  // He initialisation for ReLU networks.
                  std::sqrt(2.0f / static_cast<float>(
                                       opts_.in_c * opts_.kernel *
                                       opts_.kernel)))) {
  EXACLIM_CHECK(opts_.in_c > 0 && opts_.out_c > 0, "conv needs channels");
  EXACLIM_CHECK(opts_.stride >= 1 && opts_.dilation >= 1,
                "invalid stride/dilation");
  if (opts_.bias) {
    bias_.emplace(this->name() + ".bias", Tensor::Zeros(TensorShape{opts_.out_c}));
  }
}

ConvGeometry Conv2d::Geometry(std::int64_t h, std::int64_t w) const {
  ConvGeometry g;
  g.in_c = opts_.in_c;
  g.in_h = h;
  g.in_w = w;
  g.k_h = g.k_w = opts_.kernel;
  g.stride = opts_.stride;
  g.pad = opts_.pad;
  g.dilation = opts_.dilation;
  return g;
}

bool Conv2d::UsePointwiseFastPath() const {
  return opts_.kernel == 1 && opts_.stride == 1 && opts_.pad == 0 &&
         opts_.dilation == 1;
}

ConvAlgorithm Conv2d::chosen_algorithm() const {
  ConvAlgorithm algo = opts_.algorithm;
  if (algo == ConvAlgorithm::kAuto) algo = DefaultConvAlgorithm();
  if (algo == ConvAlgorithm::kAuto) {
    // Direct is strictly better for pointwise convolutions (no patch
    // expansion); implicit GEMM wins elsewhere on this substrate.
    algo = UsePointwiseFastPath() ? ConvAlgorithm::kDirect
                                  : ConvAlgorithm::kImplicitGemm;
  }
  // The implicit-B packer lives in the packed engine; the reference
  // kernel A/B (EXACLIM_GEMM_KERNEL=reference) falls back to the
  // bit-identical materialized col path.
  if (algo == ConvAlgorithm::kImplicitGemm && !GemmUsesPackedEngine()) {
    algo = ConvAlgorithm::kIm2Col;
  }
  return algo;
}

bool Conv2d::CanFuseEpilogue() const {
  if (precision() != Precision::kFP32 || !GemmUsesPackedEngine()) {
    return false;
  }
  const ConvAlgorithm algo = chosen_algorithm();
  return algo == ConvAlgorithm::kImplicitGemm ||
         algo == ConvAlgorithm::kIm2Col ||
         (algo == ConvAlgorithm::kDirect && UsePointwiseFastPath());
}

TensorShape Conv2d::OutputShape(const TensorShape& input) const {
  EXACLIM_CHECK(input.rank() == 4 && input.c() == opts_.in_c,
                name() << ": bad input " << input.ToString() << ", expected C="
                       << opts_.in_c);
  const ConvGeometry g = Geometry(input.h(), input.w());
  return TensorShape::NCHW(input.n(), opts_.out_c, g.OutH(), g.OutW());
}

const Tensor& Conv2d::ComputeWeight() {
  if (precision() != Precision::kFP16) return weight_.value;
  quantised_weight_ = weight_.value;
  RoundTripHalf(quantised_weight_);
  return quantised_weight_;
}

Tensor Conv2d::Forward(const Tensor& input, bool train) {
  return ForwardFused(input, train, ConvFusedOps{});
}

Tensor Conv2d::ForwardFused(const Tensor& input, bool /*train*/,
                            const ConvFusedOps& ops) {
  const TensorShape out_shape = OutputShape(input.shape());
  const ConvGeometry g = Geometry(input.shape().h(), input.shape().w());
  cached_input_ = input;

  Tensor output(out_shape);
  const Tensor& w = ComputeWeight();
  const ConvAlgorithm algo = chosen_algorithm();
  const bool pointwise = UsePointwiseFastPath();
  EXACLIM_CHECK(ops.Empty() || CanFuseEpilogue(),
                name() << ": epilogue ops on a non-fusable configuration");
  // Fold the conv's own bias into the GEMM epilogue whenever the packed
  // writeback allows it: the per-element add is the exact same FP op as
  // the separate bias pass below, so flipping EXACLIM_CONV_FUSE (or the
  // algorithm) never changes bits — it only changes how often C is
  // touched.
  const bool use_epilogue =
      !ops.Empty() ||
      (bias_.has_value() && ConvFusionEnabled() && CanFuseEpilogue());
  GemmEpilogue epi;
  if (use_epilogue) {
    if (bias_) epi.bias = bias_->value.Raw();
    epi.bn_mean = ops.bn_mean;
    epi.bn_inv_std = ops.bn_inv_std;
    epi.bn_gamma = ops.bn_gamma;
    epi.bn_beta = ops.bn_beta;
    epi.relu = ops.relu;
    epi.mask_ld = g.OutPixels();
    EXACLIM_CHECK(ops.bn_norm == nullptr || ops.bn_mean != nullptr,
                  name() << ": x_hat writeback without BN vectors");
  }
  const std::int64_t batch = input.shape().n();
  const std::int64_t shards = ConvGradShards(batch);
  // The implicit path's headline: no col buffer at all on the forward
  // hot path — only the kIm2Col reference still materializes patches.
  const std::int64_t col_elems =
      algo == ConvAlgorithm::kIm2Col ? g.PatchSize() * g.OutPixels() : 0;
  workspace_.Configure(shards, col_elems, /*grad_col_elems=*/0,
                       /*weight_elems=*/0, /*bias_elems=*/0);
  const GemmImplicitRow* rows = algo == ConvAlgorithm::kImplicitGemm ||
                                        algo == ConvAlgorithm::kIm2Col
                                    ? workspace_.ImplicitRows(g)
                                    : nullptr;
  const std::int64_t in_stride = g.in_c * g.in_h * g.in_w;
  const std::int64_t out_stride = opts_.out_c * g.OutPixels();
  const std::int64_t out_h = g.OutH();
  const std::int64_t out_w = g.OutW();
  // Pack the weight into the GEMM engine's A-panel layout once; every
  // shard then reuses the panels read-only instead of re-packing W per
  // image inside the per-image GEMMs (DESIGN §10).
  const bool prepacked = GemmUsesPackedEngine() &&
                         (algo == ConvAlgorithm::kImplicitGemm ||
                          algo == ConvAlgorithm::kIm2Col || pointwise);
  if (prepacked) {
    const std::int64_t kk =
        algo == ConvAlgorithm::kDirect ? g.in_c : g.PatchSize();
    packed_weight_.Pack(false, opts_.out_c, kk, 1.0f, w.Raw());
  }
  RunConvShards(shards, [&](std::int64_t s) {
    const ConvShardRange images = ShardImageRange(batch, shards, s);
    for (std::int64_t n = images.lo; n < images.hi; ++n) {
      // Per-image epilogue view: only the mask/x_hat pointers move with n.
      GemmEpilogue epi_n = epi;
      if (ops.relu_mask != nullptr) {
        epi_n.relu_mask = ops.relu_mask + n * out_stride;
      }
      if (ops.bn_norm != nullptr) {
        epi_n.bn_norm = ops.bn_norm + n * out_stride;
      }
      const GemmEpilogue* epi_ptr = use_epilogue ? &epi_n : nullptr;
      if (algo == ConvAlgorithm::kImplicitGemm) {
        // out[out_c, P] = W[out_c, patch] @ implicit-im2col(x) — the
        // B-panel packer gathers straight from the image (DESIGN §15).
        GemmImplicitB bsrc;
        bsrc.image = input.Raw() + n * in_stride;
        bsrc.rows = rows;
        bsrc.out_h = out_h;
        bsrc.out_w = out_w;
        bsrc.in_row_stride = g.in_w;
        bsrc.stride = g.stride;
        GemmPackedImplicit(packed_weight_, bsrc, 0.0f,
                           output.Raw() + n * out_stride, epi_ptr);
      } else if (algo == ConvAlgorithm::kIm2Col) {
        float* col = workspace_.Col(s);
        Im2ColFromRows(g, rows, input.Raw() + n * in_stride, col);
        // out[out_c, P] = W[out_c, patch] @ col[patch, P]
        if (prepacked) {
          GemmPackedWithA(packed_weight_, false, g.OutPixels(), col, 0.0f,
                          output.Raw() + n * out_stride, epi_ptr);
        } else {
          Gemm(false, false, opts_.out_c, g.OutPixels(), g.PatchSize(), 1.0f,
               w.Raw(), col, 0.0f, output.Raw() + n * out_stride);
        }
      } else if (pointwise) {
        // 1x1/stride-1: the activation map already IS the patch matrix.
        if (prepacked) {
          GemmPackedWithA(packed_weight_, false, g.OutPixels(),
                          input.Raw() + n * in_stride, 0.0f,
                          output.Raw() + n * out_stride, epi_ptr);
        } else {
          Gemm(false, false, opts_.out_c, g.OutPixels(), g.in_c, 1.0f,
               w.Raw(), input.Raw() + n * in_stride, 0.0f,
               output.Raw() + n * out_stride);
        }
      } else {
        DirectConvImage(g, opts_.out_c, input.Raw() + n * in_stride,
                        w.Raw(), output.Raw() + n * out_stride);
      }
      if (bias_ && !use_epilogue) {
        float* out_n = output.Raw() + n * out_stride;
        for (std::int64_t c = 0; c < opts_.out_c; ++c) {
          const float b = bias_->value[static_cast<std::size_t>(c)];
          float* plane = out_n + c * g.OutPixels();
          for (std::int64_t p = 0; p < g.OutPixels(); ++p) plane[p] += b;
        }
      }
    }
  });
  MaybeQuantise(output);
  return output;
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  EXACLIM_CHECK(!cached_input_.Empty(), name() << ": Backward before Forward");
  const TensorShape& in_shape = cached_input_.shape();
  const ConvGeometry g = Geometry(in_shape.h(), in_shape.w());
  EXACLIM_CHECK(grad_output.shape() == OutputShape(in_shape),
                name() << ": grad shape mismatch");

  Tensor grad_input(in_shape);
  const Tensor& w = ComputeWeight();
  // Backward always uses the GEMM formulation (cuDNN similarly selects
  // backward algorithms independently of the forward choice); the
  // pointwise fast path just skips the patch buffers.
  //
  // Weight/bias gradients go through per-shard accumulators merged by a
  // fixed-order tree so the batch-parallel result is bit-identical to the
  // serial walk (DESIGN §9).
  const bool pointwise = UsePointwiseFastPath();
  const std::int64_t batch = in_shape.n();
  const std::int64_t shards = ConvGradShards(batch);
  const std::int64_t col_elems =
      pointwise ? 0 : g.PatchSize() * g.OutPixels();
  workspace_.Configure(shards, col_elems, col_elems,
                       weight_.grad.NumElements(),
                       bias_ ? opts_.out_c : 0);
  workspace_.ZeroGradAccumulators();
  // Geometry-dependent im2col setup hoisted out of the n-loop: the table
  // is shared read-only by all shards (and is already warm whenever the
  // forward pass ran the implicit path on the same geometry).
  const GemmImplicitRow* rows =
      pointwise ? nullptr : workspace_.ImplicitRows(g);
  const std::int64_t in_stride = g.in_c * g.in_h * g.in_w;
  const std::int64_t out_stride = opts_.out_c * g.OutPixels();
  // The data gradient multiplies by W^T for every image; prepack the
  // transposed panels once and share across shards. Weight-gradient GEMMs
  // keep the plain entry point (their left operand changes per image).
  const bool prepacked = GemmUsesPackedEngine();
  if (prepacked) {
    if (pointwise) {
      packed_weight_bwd_.Pack(true, g.in_c, opts_.out_c, 1.0f, w.Raw());
    } else {
      packed_weight_bwd_.Pack(true, g.PatchSize(), opts_.out_c, 1.0f,
                              w.Raw());
    }
  }

  RunConvShards(shards, [&](std::int64_t s) {
    const ConvShardRange images = ShardImageRange(batch, shards, s);
    float* wgrad = workspace_.WeightGrad(s);
    float* bgrad = bias_ ? workspace_.BiasGrad(s) : nullptr;
    for (std::int64_t n = images.lo; n < images.hi; ++n) {
      const float* gout = grad_output.Raw() + n * out_stride;
      if (pointwise) {
        Gemm(false, true, opts_.out_c, g.in_c, g.OutPixels(), 1.0f, gout,
             cached_input_.Raw() + n * in_stride, 1.0f, wgrad);
        if (prepacked) {
          GemmPackedWithA(packed_weight_bwd_, false, g.OutPixels(), gout,
                          0.0f, grad_input.Raw() + n * in_stride);
        } else {
          Gemm(true, false, g.in_c, g.OutPixels(), opts_.out_c, 1.0f,
               w.Raw(), gout, 0.0f, grad_input.Raw() + n * in_stride);
        }
      } else {
        // Weight gradient: gW[out_c, patch] += gout[out_c, P] @ col^T.
        float* col = workspace_.Col(s);
        float* grad_col = workspace_.GradCol(s);
        Im2ColFromRows(g, rows, cached_input_.Raw() + n * in_stride, col);
        Gemm(false, true, opts_.out_c, g.PatchSize(), g.OutPixels(), 1.0f,
             gout, col, 1.0f, wgrad);
        // Data gradient: gcol[patch, P] = W^T @ gout; scatter back.
        if (prepacked) {
          GemmPackedWithA(packed_weight_bwd_, false, g.OutPixels(), gout,
                          0.0f, grad_col);
        } else {
          Gemm(true, false, g.PatchSize(), g.OutPixels(), opts_.out_c, 1.0f,
               w.Raw(), gout, 0.0f, grad_col);
        }
        Col2Im(g, grad_col, grad_input.Raw() + n * in_stride);
      }
      if (bgrad != nullptr) {
        for (std::int64_t c = 0; c < opts_.out_c; ++c) {
          bgrad[c] += PlaneSum(gout + c * g.OutPixels(), g.OutPixels());
        }
      }
    }
  });
  workspace_.ReduceWeightGradInto(weight_.grad.Raw());
  if (bias_) workspace_.ReduceBiasGradInto(bias_->grad.Raw());
  MaybeQuantise(grad_input);
  return grad_input;
}

std::vector<Param*> Conv2d::Params() {
  std::vector<Param*> params{&weight_};
  if (bias_) params.push_back(&*bias_);
  return params;
}

// -------------------------------------------------- ConvTranspose2d -----

ConvTranspose2d::ConvTranspose2d(std::string name, const Options& opts,
                                 Rng& rng)
    : Layer(std::move(name)),
      opts_([&] {
        Options o = opts;
        if (o.pad < 0) o.pad = (o.kernel - o.stride + 1) / 2;
        return o;
      }()),
      weight_(this->name() + ".weight",
              Tensor::Randn(
                  TensorShape{opts_.in_c,
                              opts_.out_c * opts_.kernel * opts_.kernel},
                  rng, 0.0f,
                  std::sqrt(2.0f / static_cast<float>(
                                       opts_.in_c * opts_.kernel *
                                       opts_.kernel)))) {
  EXACLIM_CHECK(opts_.in_c > 0 && opts_.out_c > 0, "deconv needs channels");
  EXACLIM_CHECK(opts_.pad >= 0, "deconv pad must resolve non-negative");
  EXACLIM_CHECK(opts_.out_pad >= 0 && opts_.out_pad < opts_.stride,
                "out_pad must be in [0, stride)");
  if (opts_.bias) {
    bias_.emplace(this->name() + ".bias",
                  Tensor::Zeros(TensorShape{opts_.out_c}));
  }
}

ConvGeometry ConvTranspose2d::Geometry(std::int64_t out_h,
                                       std::int64_t out_w) const {
  // The underlying convolution runs output -> input, so its "input" is the
  // deconv output plane.
  ConvGeometry g;
  g.in_c = opts_.out_c;
  g.in_h = out_h;
  g.in_w = out_w;
  g.k_h = g.k_w = opts_.kernel;
  g.stride = opts_.stride;
  g.pad = opts_.pad;
  g.dilation = 1;
  return g;
}

TensorShape ConvTranspose2d::OutputShape(const TensorShape& input) const {
  EXACLIM_CHECK(input.rank() == 4 && input.c() == opts_.in_c,
                name() << ": bad input " << input.ToString());
  const std::int64_t out_h = (input.h() - 1) * opts_.stride - 2 * opts_.pad +
                             opts_.kernel + opts_.out_pad;
  const std::int64_t out_w = (input.w() - 1) * opts_.stride - 2 * opts_.pad +
                             opts_.kernel + opts_.out_pad;
  const ConvGeometry g = Geometry(out_h, out_w);
  EXACLIM_CHECK(g.OutH() == input.h() && g.OutW() == input.w(),
                name() << ": inconsistent deconv geometry");
  return TensorShape::NCHW(input.n(), opts_.out_c, out_h, out_w);
}

const Tensor& ConvTranspose2d::ComputeWeight() {
  if (precision() != Precision::kFP16) return weight_.value;
  quantised_weight_ = weight_.value;
  RoundTripHalf(quantised_weight_);
  return quantised_weight_;
}

Tensor ConvTranspose2d::Forward(const Tensor& input, bool /*train*/) {
  const TensorShape out_shape = OutputShape(input.shape());
  const ConvGeometry g = Geometry(out_shape.h(), out_shape.w());
  cached_input_ = input;

  Tensor output(out_shape);
  const Tensor& w = ComputeWeight();
  const std::int64_t pixels = input.shape().h() * input.shape().w();
  const std::int64_t batch = input.shape().n();
  const std::int64_t shards = ConvGradShards(batch);
  workspace_.Configure(shards, g.PatchSize() * pixels, /*grad_col_elems=*/0,
                       /*weight_elems=*/0, /*bias_elems=*/0);
  const std::int64_t in_stride = opts_.in_c * pixels;
  const std::int64_t out_stride = opts_.out_c * out_shape.h() * out_shape.w();

  const bool prepacked = GemmUsesPackedEngine();
  if (prepacked) {
    packed_weight_.Pack(true, g.PatchSize(), opts_.in_c, 1.0f, w.Raw());
  }
  RunConvShards(shards, [&](std::int64_t s) {
    const ConvShardRange images = ShardImageRange(batch, shards, s);
    float* col = workspace_.Col(s);
    for (std::int64_t n = images.lo; n < images.hi; ++n) {
      // col[out_c*k*k, P] = W^T[out_c*k*k, in_c] @ x[in_c, P]
      if (prepacked) {
        GemmPackedWithA(packed_weight_, false, pixels,
                        input.Raw() + n * in_stride, 0.0f, col);
      } else {
        Gemm(true, false, g.PatchSize(), pixels, opts_.in_c, 1.0f, w.Raw(),
             input.Raw() + n * in_stride, 0.0f, col);
      }
      Col2Im(g, col, output.Raw() + n * out_stride);
      if (bias_) {
        float* out_n = output.Raw() + n * out_stride;
        const std::int64_t plane = out_shape.h() * out_shape.w();
        for (std::int64_t c = 0; c < opts_.out_c; ++c) {
          const float b = bias_->value[static_cast<std::size_t>(c)];
          for (std::int64_t p = 0; p < plane; ++p) {
            out_n[c * plane + p] += b;
          }
        }
      }
    }
  });
  MaybeQuantise(output);
  return output;
}

Tensor ConvTranspose2d::Backward(const Tensor& grad_output) {
  EXACLIM_CHECK(!cached_input_.Empty(), name() << ": Backward before Forward");
  const TensorShape& in_shape = cached_input_.shape();
  const TensorShape out_shape = OutputShape(in_shape);
  EXACLIM_CHECK(grad_output.shape() == out_shape,
                name() << ": grad shape mismatch");
  const ConvGeometry g = Geometry(out_shape.h(), out_shape.w());

  Tensor grad_input(in_shape);
  const Tensor& w = ComputeWeight();
  const std::int64_t pixels = in_shape.h() * in_shape.w();
  const std::int64_t batch = in_shape.n();
  const std::int64_t shards = ConvGradShards(batch);
  workspace_.Configure(shards, g.PatchSize() * pixels, /*grad_col_elems=*/0,
                       weight_.grad.NumElements(),
                       bias_ ? opts_.out_c : 0);
  workspace_.ZeroGradAccumulators();
  const std::int64_t in_stride = opts_.in_c * pixels;
  const std::int64_t out_stride = opts_.out_c * out_shape.h() * out_shape.w();
  const bool prepacked = GemmUsesPackedEngine();
  if (prepacked) {
    packed_weight_bwd_.Pack(false, opts_.in_c, g.PatchSize(), 1.0f, w.Raw());
  }
  // The fix for the per-batch-element Im2Col: all geometry-dependent
  // setup (bounds, offsets) is computed once per geometry here; the
  // n-loop below does pure data movement through the row table.
  const GemmImplicitRow* rows = workspace_.ImplicitRows(g);

  RunConvShards(shards, [&](std::int64_t s) {
    const ConvShardRange images = ShardImageRange(batch, shards, s);
    float* col = workspace_.Col(s);
    float* wgrad = workspace_.WeightGrad(s);
    float* bgrad = bias_ ? workspace_.BiasGrad(s) : nullptr;
    for (std::int64_t n = images.lo; n < images.hi; ++n) {
      const float* gout = grad_output.Raw() + n * out_stride;
      Im2ColFromRows(g, rows, gout, col);
      // Data gradient: gx[in_c, P] = W[in_c, patch] @ col[patch, P]
      if (prepacked) {
        GemmPackedWithA(packed_weight_bwd_, false, pixels, col, 0.0f,
                        grad_input.Raw() + n * in_stride);
      } else {
        Gemm(false, false, opts_.in_c, pixels, g.PatchSize(), 1.0f, w.Raw(),
             col, 0.0f, grad_input.Raw() + n * in_stride);
      }
      // Weight gradient: gW[in_c, patch] += x[in_c, P] @ col[patch, P]^T
      Gemm(false, true, opts_.in_c, g.PatchSize(), pixels, 1.0f,
           cached_input_.Raw() + n * in_stride, col, 1.0f, wgrad);
      if (bgrad != nullptr) {
        const std::int64_t plane = out_shape.h() * out_shape.w();
        for (std::int64_t c = 0; c < opts_.out_c; ++c) {
          bgrad[c] += PlaneSum(gout + c * plane, plane);
        }
      }
    }
  });
  workspace_.ReduceWeightGradInto(weight_.grad.Raw());
  if (bias_) workspace_.ReduceBiasGradInto(bias_->grad.Raw());
  MaybeQuantise(grad_input);
  return grad_input;
}

std::vector<Param*> ConvTranspose2d::Params() {
  std::vector<Param*> params{&weight_};
  if (bias_) params.push_back(&*bias_);
  return params;
}

}  // namespace exaclim
