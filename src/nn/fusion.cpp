#include "nn/fusion.hpp"

#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/norm.hpp"

namespace exaclim {
namespace {

bool IsFp32(const Layer& layer) {
  return layer.precision() == Precision::kFP32;
}

}  // namespace

std::size_t FusableChainAt(const std::vector<LayerPtr>& layers,
                           std::size_t i) {
  auto* conv = dynamic_cast<Conv2d*>(layers[i].get());
  if (conv == nullptr || !IsFp32(*conv)) return 0;
  Layer* next = i + 1 < layers.size() ? layers[i + 1].get() : nullptr;
  if (next == nullptr) return 0;

  if (auto* bn = dynamic_cast<BatchNorm2d*>(next)) {
    if (!IsFp32(*bn) || bn->channels() != conv->options().out_c) return 0;
    Layer* third = i + 2 < layers.size() ? layers[i + 2].get() : nullptr;
    if (auto* relu = dynamic_cast<ReLU*>(third); relu && IsFp32(*relu)) {
      return 3;
    }
    return 2;
  }
  if (auto* relu = dynamic_cast<ReLU*>(next); relu && IsFp32(*relu)) {
    // Without a BN sweep to piggyback on, the ReLU can only ride the
    // conv's GEMM epilogue.
    return conv->CanFuseEpilogue() ? 2 : 0;
  }
  return 0;
}

Tensor ForwardFusedChain(const std::vector<LayerPtr>& layers, std::size_t i,
                         std::size_t len, const Tensor& input, bool train) {
  auto* conv = static_cast<Conv2d*>(layers[i].get());
  auto* bn = dynamic_cast<BatchNorm2d*>(layers[i + 1].get());

  if (bn == nullptr) {
    // Conv2d→ReLU: relu + mask fold straight into the GEMM writeback.
    auto* relu = static_cast<ReLU*>(layers[i + 1].get());
    ConvFusedOps ops;
    ops.relu = true;
    ops.relu_mask = relu->BeginFusedForward(conv->OutputShape(input.shape()));
    return conv->ForwardFused(input, train, ops);
  }

  auto* relu = len == 3 ? static_cast<ReLU*>(layers[i + 2].get()) : nullptr;

  if (!train && conv->CanFuseEpilogue()) {
    // Inference: fold the BN affine (from running stats) and the ReLU
    // into the GEMM epilogue — one pass over C, no BN sweep at all. The
    // epilogue also fills both layers' backward caches (x_hat through
    // bn_norm, the ReLU mask), so a Backward after the folded eval
    // forward — the gradcheck pattern — works bit-identically.
    const TensorShape out_shape = conv->OutputShape(input.shape());
    const BatchNorm2d::FoldedAffine folded =
        bn->FoldInferenceParams(out_shape);
    ConvFusedOps ops;
    ops.bn_mean = folded.mean;
    ops.bn_inv_std = folded.inv_std;
    ops.bn_gamma = folded.gamma;
    ops.bn_beta = folded.beta;
    ops.bn_norm = folded.norm_out;
    if (relu != nullptr) {
      ops.relu = true;
      ops.relu_mask = relu->BeginFusedForward(out_shape);
    }
    return conv->ForwardFused(input, train, ops);
  }

  // Training (or a conv that can't take an epilogue): run the conv —
  // ForwardFused folds its bias into the GEMM writeback internally when
  // it can — then normalise in place over the conv output, applying the
  // trailing ReLU (and filling its mask) in the same sweep.
  Tensor y = conv->Forward(input, train);
  bn->ForwardFusedInPlace(y, train, relu);
  return y;
}

}  // namespace exaclim
