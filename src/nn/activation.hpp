#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace exaclim {

/// Rectified linear unit (pointwise; one of the "point-wise" kernel
/// categories of Figs 3/8/9).
class ReLU : public Layer {
 public:
  explicit ReLU(std::string name) : Layer(std::move(name)) {}

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override {
    return input;
  }

  /// Hands the forward mask to a fused producer (conv epilogue or
  /// BatchNorm2d::ForwardFusedInPlace) which fills it from the pre-ReLU
  /// values — one byte per element, layout == the tensor. After the
  /// producer returns, Backward behaves exactly as after Forward().
  unsigned char* BeginFusedForward(const TensorShape& shape);

 private:
  // One byte per element (not vector<bool>): the forward pass fills the
  // mask from parallel blocks, and bit-packing would make neighbouring
  // writes race.
  std::vector<unsigned char> mask_;
  TensorShape input_shape_;
};

/// Inverted dropout: scales kept activations by 1/(1-p) during training so
/// inference needs no rescaling. Tiramisu's dense layers use p = 0.2.
class Dropout : public Layer {
 public:
  Dropout(std::string name, float p, Rng& rng);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override {
    return input;
  }

  float rate() const { return p_; }

 private:
  float p_;
  Rng rng_;
  std::vector<float> mask_;  // 0 or 1/(1-p)
  TensorShape input_shape_;
  bool last_was_train_ = false;
};

}  // namespace exaclim
