#pragma once

#include <optional>

#include "nn/conv_engine.hpp"
#include "nn/im2col.hpp"
#include "nn/layer.hpp"
#include "tensor/gemm_kernel.hpp"

namespace exaclim {

/// Convolution algorithm selection — the stand-in for cuDNN's dynamic
/// algorithm tuning that Sec VI traces ("all convolutions were performed
/// using either implicit GEMMs or direct convolutions"). kImplicitGemm
/// lowers through im2col; kDirect computes the convolution in place (for
/// 1×1/stride-1 this is a pure GEMM on the activation map with no patch
/// buffer — the same FLOPs, less memory traffic). kAuto picks kDirect
/// where it is never worse.
enum class ConvAlgorithm { kAuto, kImplicitGemm, kDirect };

const char* ToString(ConvAlgorithm algo);

/// 2-D convolution (NCHW) with stride, zero padding and dilation (atrous).
/// Weights are [out_c, in_c*k_h*k_w] with He initialisation, optional
/// bias.
class Conv2d : public Layer {
 public:
  struct Options {
    std::int64_t in_c = 0;
    std::int64_t out_c = 0;
    std::int64_t kernel = 3;
    std::int64_t stride = 1;
    std::int64_t pad = -1;  // -1 = "same" for stride 1: dilation*(k/2)
    std::int64_t dilation = 1;
    bool bias = true;
    ConvAlgorithm algorithm = ConvAlgorithm::kAuto;
  };

  Conv2d(std::string name, const Options& opts, Rng& rng);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override;
  std::vector<Param*> Params() override;

  const Options& options() const { return opts_; }
  Param& weight() { return weight_; }
  /// The algorithm actually used (kAuto resolved) — the equivalent of
  /// the cuDNN API tracing of Sec VI.
  ConvAlgorithm chosen_algorithm() const;

 private:
  ConvGeometry Geometry(std::int64_t h, std::int64_t w) const;
  /// Weights as used in compute: FP32, or binary16-rounded under FP16.
  const Tensor& ComputeWeight();
  bool UsePointwiseFastPath() const;

  Options opts_;
  Param weight_;
  std::optional<Param> bias_;
  Tensor quantised_weight_;  // scratch for FP16 emulation
  Tensor cached_input_;      // saved for the backward pass
  ConvWorkspace workspace_;  // per-shard col/grad buffers (DESIGN §9)
  // Weight matrix prepacked into the GEMM engine's A-panel layout, once
  // per Forward/Backward and shared read-only across batch shards
  // (forward uses W, backward's data gradient W^T — different layouts,
  // so each direction keeps its own panel buffer).
  PackedGemmA packed_weight_;
  PackedGemmA packed_weight_bwd_;
};

/// Transposed convolution ("deconv", light-blue layers of Fig 1) used by
/// the full-resolution DeepLabv3+ decoder and the Tiramisu up path.
/// Forward is exactly the data-gradient of a Conv2d with swapped roles;
/// output size is (H-1)*stride - 2*pad + kernel.
class ConvTranspose2d : public Layer {
 public:
  struct Options {
    std::int64_t in_c = 0;
    std::int64_t out_c = 0;
    std::int64_t kernel = 3;
    std::int64_t stride = 2;
    std::int64_t pad = -1;  // -1 = (kernel - stride + 1) / 2
    /// Extra rows/cols appended to the output (TensorFlow SAME-style
    /// doubling: kernel 3, stride 2, pad 1, out_pad 1 gives exactly 2H).
    std::int64_t out_pad = 0;
    bool bias = true;
  };

  ConvTranspose2d(std::string name, const Options& opts, Rng& rng);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override;
  std::vector<Param*> Params() override;

  const Options& options() const { return opts_; }

 private:
  /// Geometry of the *underlying* convolution (output -> input direction).
  ConvGeometry Geometry(std::int64_t out_h, std::int64_t out_w) const;
  const Tensor& ComputeWeight();

  Options opts_;
  Param weight_;  // [in_c, out_c*k*k]
  std::optional<Param> bias_;
  Tensor quantised_weight_;
  Tensor cached_input_;
  ConvWorkspace workspace_;
  PackedGemmA packed_weight_;      // forward: W^T panels
  PackedGemmA packed_weight_bwd_;  // backward data gradient: W panels
};

}  // namespace exaclim
