#pragma once

#include <optional>
#include <string_view>

#include "nn/conv_engine.hpp"
#include "nn/im2col.hpp"
#include "nn/layer.hpp"
#include "tensor/gemm_kernel.hpp"

namespace exaclim {

/// Convolution algorithm selection — the stand-in for cuDNN's dynamic
/// algorithm tuning that Sec VI traces ("all convolutions were performed
/// using either implicit GEMMs or direct convolutions"). kIm2Col lowers
/// through a materialized patch buffer; kImplicitGemm runs the packed
/// GEMM engine's implicit-B path, gathering panels straight from the
/// input tensor with no col buffer (DESIGN §15); kDirect computes the
/// convolution in place (for 1×1/stride-1 this is a pure GEMM on the
/// activation map — the same FLOPs, less memory traffic). kAuto picks
/// kDirect for pointwise geometries and kImplicitGemm elsewhere.
/// kImplicitGemm needs the packed engine, so under
/// EXACLIM_GEMM_KERNEL=reference it resolves to kIm2Col. All algorithms
/// produce bit-identical forward outputs (the sweep in
/// tests/test_conv_algorithms.cpp holds them to it).
enum class ConvAlgorithm { kAuto, kIm2Col, kImplicitGemm, kDirect };

const char* ToString(ConvAlgorithm algo);

/// Parses "auto" / "im2col" / "implicit" (or "implicit-gemm") / "direct";
/// nullopt on anything else.
std::optional<ConvAlgorithm> ParseConvAlgorithm(std::string_view value);

/// The process-wide default that layers constructed with kAuto resolve
/// through: EXACLIM_CONV_ALGO (parsed once) unless overridden, kAuto when
/// unset or unparsable (= the pointwise→direct, else→implicit policy).
ConvAlgorithm DefaultConvAlgorithm();

/// Programmatic override of the EXACLIM_CONV_ALGO default (benches and
/// the algorithm A/B tests flip this per run).
void SetDefaultConvAlgorithm(ConvAlgorithm algo);

/// Pointwise epilogue ops a fused chain folds into the convolution's
/// GEMM writeback (DESIGN §15). The conv's own bias is not listed here —
/// Conv2d folds it in by itself whenever the epilogue path is active.
/// bn_* are per-output-channel vectors (all set or all null) that must
/// stay alive across the call; relu_mask, when non-null, is the ReLU
/// layer's mask for the whole output tensor (layout == output, one byte
/// per element) and is filled from the pre-ReLU values; bn_norm, when
/// non-null, receives the normalised x_hat per element (BatchNorm2d's
/// backward cache, same layout as the output).
struct ConvFusedOps {
  const float* bn_mean = nullptr;
  const float* bn_inv_std = nullptr;
  const float* bn_gamma = nullptr;
  const float* bn_beta = nullptr;
  float* bn_norm = nullptr;
  bool relu = false;
  unsigned char* relu_mask = nullptr;

  bool Empty() const {
    return bn_mean == nullptr && !relu && relu_mask == nullptr;
  }
};

/// 2-D convolution (NCHW) with stride, zero padding and dilation (atrous).
/// Weights are [out_c, in_c*k_h*k_w] with He initialisation, optional
/// bias.
class Conv2d : public Layer {
 public:
  struct Options {
    std::int64_t in_c = 0;
    std::int64_t out_c = 0;
    std::int64_t kernel = 3;
    std::int64_t stride = 1;
    std::int64_t pad = -1;  // -1 = "same" for stride 1: dilation*(k/2)
    std::int64_t dilation = 1;
    bool bias = true;
    ConvAlgorithm algorithm = ConvAlgorithm::kAuto;
  };

  Conv2d(std::string name, const Options& opts, Rng& rng);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override;
  std::vector<Param*> Params() override;

  /// Forward with extra epilogue ops fused into the GEMM writeback —
  /// what Sequential's fusion pass calls for Conv2d→BN(→ReLU) chains.
  /// Requires CanFuseEpilogue() when `ops` is non-empty; Forward() is
  /// exactly ForwardFused(input, train, {}).
  Tensor ForwardFused(const Tensor& input, bool train,
                      const ConvFusedOps& ops);

  /// Whether this layer's resolved configuration can fold epilogue ops
  /// into the GEMM writeback: FP32 precision, the packed engine active,
  /// and an algorithm that writes C through it (implicit, im2col-GEMM,
  /// or the pointwise fast path — everything but naive direct loops).
  bool CanFuseEpilogue() const;

  const Options& options() const { return opts_; }
  Param& weight() { return weight_; }
  /// The algorithm actually used (kAuto resolved through
  /// DefaultConvAlgorithm, engine fallback applied) — the equivalent of
  /// the cuDNN API tracing of Sec VI.
  ConvAlgorithm chosen_algorithm() const;

 private:
  ConvGeometry Geometry(std::int64_t h, std::int64_t w) const;
  /// Weights as used in compute: FP32, or binary16-rounded under FP16.
  const Tensor& ComputeWeight();
  bool UsePointwiseFastPath() const;

  Options opts_;
  Param weight_;
  std::optional<Param> bias_;
  Tensor quantised_weight_;  // scratch for FP16 emulation
  Tensor cached_input_;      // saved for the backward pass
  ConvWorkspace workspace_;  // per-shard col/grad buffers (DESIGN §9)
  // Weight matrix prepacked into the GEMM engine's A-panel layout, once
  // per Forward/Backward and shared read-only across batch shards
  // (forward uses W, backward's data gradient W^T — different layouts,
  // so each direction keeps its own panel buffer).
  PackedGemmA packed_weight_;
  PackedGemmA packed_weight_bwd_;
};

/// Transposed convolution ("deconv", light-blue layers of Fig 1) used by
/// the full-resolution DeepLabv3+ decoder and the Tiramisu up path.
/// Forward is exactly the data-gradient of a Conv2d with swapped roles;
/// output size is (H-1)*stride - 2*pad + kernel.
class ConvTranspose2d : public Layer {
 public:
  struct Options {
    std::int64_t in_c = 0;
    std::int64_t out_c = 0;
    std::int64_t kernel = 3;
    std::int64_t stride = 2;
    std::int64_t pad = -1;  // -1 = (kernel - stride + 1) / 2
    /// Extra rows/cols appended to the output (TensorFlow SAME-style
    /// doubling: kernel 3, stride 2, pad 1, out_pad 1 gives exactly 2H).
    std::int64_t out_pad = 0;
    bool bias = true;
  };

  ConvTranspose2d(std::string name, const Options& opts, Rng& rng);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override;
  std::vector<Param*> Params() override;

  const Options& options() const { return opts_; }

 private:
  /// Geometry of the *underlying* convolution (output -> input direction).
  ConvGeometry Geometry(std::int64_t out_h, std::int64_t out_w) const;
  const Tensor& ComputeWeight();

  Options opts_;
  Param weight_;  // [in_c, out_c*k*k]
  std::optional<Param> bias_;
  Tensor quantised_weight_;
  Tensor cached_input_;
  ConvWorkspace workspace_;
  PackedGemmA packed_weight_;      // forward: W^T panels
  PackedGemmA packed_weight_bwd_;  // backward data gradient: W panels
};

}  // namespace exaclim
