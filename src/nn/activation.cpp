#include "nn/activation.hpp"

#include "common/thread_pool.hpp"
#include "tensor/epilogue.hpp"

namespace exaclim {
namespace {

// Pointwise kernels are memory-bound; blocks must be big enough that the
// fork/join cost stays negligible.
constexpr std::size_t kPointwiseGrain = 16384;

}  // namespace

// --------------------------------------------------------------- ReLU ---

Tensor ReLU::Forward(const Tensor& input, bool /*train*/) {
  input_shape_ = input.shape();
  Tensor output(input.shape());
  const std::size_t size = static_cast<std::size_t>(input.NumElements());
  mask_.resize(size);
  ParallelFor(
      0, size,
      [&](std::size_t lo, std::size_t hi) {
        // hot-path: begin
        for (std::size_t i = lo; i < hi; ++i) {
          mask_[i] = ReluActive(input[i]) ? 1 : 0;
          output[i] = ReluValue(input[i]);
        }
        // hot-path: end
      },
      kPointwiseGrain);
  MaybeQuantise(output);
  return output;
}

unsigned char* ReLU::BeginFusedForward(const TensorShape& shape) {
  input_shape_ = shape;
  mask_.resize(static_cast<std::size_t>(shape.NumElements()));
  return mask_.data();
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  EXACLIM_CHECK(grad_output.shape() == input_shape_,
                name() << ": grad shape mismatch");
  Tensor grad_input(input_shape_);
  ParallelFor(
      0, mask_.size(),
      [&](std::size_t lo, std::size_t hi) {
        // hot-path: begin
        for (std::size_t i = lo; i < hi; ++i) {
          grad_input[i] = mask_[i] != 0 ? grad_output[i] : 0.0f;
        }
        // hot-path: end
      },
      kPointwiseGrain);
  MaybeQuantise(grad_input);
  return grad_input;
}

// ------------------------------------------------------------ Dropout ---

Dropout::Dropout(std::string name, float p, Rng& rng)
    : Layer(std::move(name)), p_(p), rng_(rng.Fork(0x9d0u)) {
  EXACLIM_CHECK(p >= 0.0f && p < 1.0f, "dropout rate must be in [0,1)");
}

Tensor Dropout::Forward(const Tensor& input, bool train) {
  input_shape_ = input.shape();
  last_was_train_ = train;
  if (!train || p_ == 0.0f) {
    mask_.clear();
    return input;
  }
  const std::size_t size = static_cast<std::size_t>(input.NumElements());
  mask_.resize(size);
  const float keep_scale = 1.0f / (1.0f - p_);
  Tensor output(input.shape());
  for (std::size_t i = 0; i < size; ++i) {
    const float m = rng_.Bernoulli(p_) ? 0.0f : keep_scale;
    mask_[i] = m;
    output[i] = input[i] * m;
  }
  MaybeQuantise(output);
  return output;
}

Tensor Dropout::Backward(const Tensor& grad_output) {
  EXACLIM_CHECK(grad_output.shape() == input_shape_,
                name() << ": grad shape mismatch");
  if (!last_was_train_ || p_ == 0.0f) return grad_output;
  Tensor grad_input(input_shape_);
  // (Forward stays serial: the mask is a sequential draw from rng_.)
  ParallelFor(
      0, mask_.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          grad_input[i] = grad_output[i] * mask_[i];
        }
      },
      kPointwiseGrain);
  MaybeQuantise(grad_input);
  return grad_input;
}

}  // namespace exaclim
