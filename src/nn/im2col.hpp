#pragma once

#include <cstdint>

#include "tensor/gemm_kernel.hpp"

namespace exaclim {

/// Parameters of a 2-D convolution window (square-independent: separate
/// height/width). Dilation implements atrous convolution (DeepLabv3+'s
/// ASPP); stride implements downscaling.
struct ConvGeometry {
  std::int64_t in_c = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t k_h = 1;
  std::int64_t k_w = 1;
  std::int64_t stride = 1;
  std::int64_t pad = 0;
  std::int64_t dilation = 1;

  std::int64_t EffectiveKh() const { return dilation * (k_h - 1) + 1; }
  std::int64_t EffectiveKw() const { return dilation * (k_w - 1) + 1; }
  std::int64_t OutH() const {
    return (in_h + 2 * pad - EffectiveKh()) / stride + 1;
  }
  std::int64_t OutW() const {
    return (in_w + 2 * pad - EffectiveKw()) / stride + 1;
  }
  /// Rows of the im2col matrix (= columns of the weight matrix).
  std::int64_t PatchSize() const { return in_c * k_h * k_w; }
  std::int64_t OutPixels() const { return OutH() * OutW(); }

  /// Geometry identity keys the per-workspace implicit row-table cache.
  bool operator==(const ConvGeometry&) const = default;
};

/// Expands one image (C,H,W row-major) into the patch matrix
/// col[PatchSize(), OutPixels()]: column p holds the receptive field of
/// output pixel p, zero-padded outside the image. This is the lowering
/// that turns convolution into GEMM (the "implicit GEMM" form of Sec VI).
void Im2Col(const ConvGeometry& g, const float* image, float* col);

/// Adjoint of Im2Col: scatters/accumulates the patch matrix back into the
/// image buffer (which the caller must zero first). Used for the
/// data-gradient of Conv2d and the forward pass of ConvTranspose2d.
void Col2Im(const ConvGeometry& g, const float* col, float* image);

/// Builds the PatchSize() implicit-GEMM row descriptors for `g` into
/// `rows` (DESIGN §15): per (ci, kh, kw) the image offset plus the valid
/// output-pixel rectangle, everything the engine's B-panel gather and
/// Im2ColFromRows need. Geometry-dependent setup done once per geometry
/// (into pooled scratch — ConvWorkspace::ImplicitRows caches it), not
/// once per batch element.
void BuildImplicitRows(const ConvGeometry& g, GemmImplicitRow* rows);

/// Table-driven Im2Col: identical output to Im2Col(g, image, col) (bit
/// for bit — copies and zeros only), but all geometry/bounds decisions
/// come precomputed from the row table, so per-image work is pure data
/// movement. The backward paths use this with the workspace-cached table.
void Im2ColFromRows(const ConvGeometry& g, const GemmImplicitRow* rows,
                    const float* image, float* col);

}  // namespace exaclim
