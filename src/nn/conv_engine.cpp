#include "nn/conv_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/alloc_tracker.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace exaclim {
namespace {

std::atomic<bool>& BatchParallelFlag() {
  static std::atomic<bool> flag([] {
    const char* env = std::getenv("EXACLIM_CONV_SERIAL");
    return env == nullptr || std::strcmp(env, "0") == 0;
  }());
  return flag;
}

std::atomic<bool>& FusionFlag() {
  static std::atomic<bool> flag([] {
    const char* env = std::getenv("EXACLIM_CONV_FUSE");
    return env == nullptr ||
           (std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0);
  }());
  return flag;
}

std::int64_t MaxShardsKnob() {
  static const std::int64_t knob = [] {
    if (const char* env = std::getenv("EXACLIM_CONV_SHARDS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != nullptr && *end == '\0' && v > 0) {
        return static_cast<std::int64_t>(v);
      }
    }
    return std::int64_t{16};
  }();
  return knob;
}

}  // namespace

bool ConvBatchParallelEnabled() {
  return BatchParallelFlag().load(std::memory_order_relaxed);
}

void SetConvBatchParallel(bool enabled) {
  BatchParallelFlag().store(enabled, std::memory_order_relaxed);
}

bool ConvFusionEnabled() {
  return FusionFlag().load(std::memory_order_relaxed);
}

void SetConvFusion(bool enabled) {
  FusionFlag().store(enabled, std::memory_order_relaxed);
}

std::int64_t ConvGradShards(std::int64_t n) {
  return std::max<std::int64_t>(1, std::min(n, MaxShardsKnob()));
}

ConvShardRange ShardImageRange(std::int64_t n, std::int64_t shards,
                               std::int64_t shard) {
  const std::int64_t chunk = (n + shards - 1) / shards;
  ConvShardRange r;
  r.lo = std::min(n, shard * chunk);
  r.hi = std::min(n, r.lo + chunk);
  return r;
}

void RunConvShards(std::int64_t shards,
                   FunctionRef<void(std::int64_t)> fn) {
  // Census over the whole shard run (workers included): in a warmed-up
  // step this should be near zero — the workspace and pack scratch are
  // grow-only — so conv.shards is the first place arena regressions show.
  EXACLIM_ALLOC_CENSUS("conv.shards");
  if (!ConvBatchParallelEnabled() || shards <= 1 ||
      ThreadPool::InParallelRegion()) {
    for (std::int64_t s = 0; s < shards; ++s) fn(s);
    return;
  }
  const auto run_range = [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      fn(static_cast<std::int64_t>(s));
    }
  };
  ParallelFor(0, static_cast<std::size_t>(shards), run_range, /*grain=*/1);
}

void ConvWorkspace::Configure(std::int64_t shards, std::int64_t col_elems,
                              std::int64_t grad_col_elems,
                              std::int64_t weight_elems,
                              std::int64_t bias_elems) {
  EXACLIM_CHECK(shards >= 1, "workspace needs at least one shard");
  if (shards == shards_ && col_elems == col_elems_ &&
      grad_col_elems == grad_col_elems_ && weight_elems == weight_elems_ &&
      bias_elems == bias_elems_) {
    return;
  }
  shards_ = shards;
  col_elems_ = col_elems;
  grad_col_elems_ = grad_col_elems;
  weight_elems_ = weight_elems;
  bias_elems_ = bias_elems;
  // Re-acquire only families that no longer fit: the old block returns
  // to the arena free-lists and a same-bucket layer elsewhere reuses it.
  const auto fit = [](PoolBuffer& buf, std::int64_t elems) {
    if (static_cast<std::size_t>(elems) > buf.capacity()) {
      buf = AcquirePoolBuffer(static_cast<std::size_t>(elems));
    }
  };
  fit(col_, shards * col_elems);
  fit(grad_col_, shards * grad_col_elems);
  fit(weight_grad_, shards * weight_elems);
  fit(bias_grad_, shards * bias_elems);
}

float* ConvWorkspace::Col(std::int64_t shard) {
  return col_.data() + shard * col_elems_;
}

float* ConvWorkspace::GradCol(std::int64_t shard) {
  return grad_col_.data() + shard * grad_col_elems_;
}

float* ConvWorkspace::WeightGrad(std::int64_t shard) {
  return weight_grad_.data() + shard * weight_elems_;
}

float* ConvWorkspace::BiasGrad(std::int64_t shard) {
  return bias_grad_.data() + shard * bias_elems_;
}

void ConvWorkspace::ZeroGradAccumulators() {
  const std::size_t weight_bytes =
      static_cast<std::size_t>(shards_ * weight_elems_) * sizeof(float);
  if (weight_bytes > 0) std::memset(weight_grad_.data(), 0, weight_bytes);
  const std::size_t bias_bytes =
      static_cast<std::size_t>(shards_ * bias_elems_) * sizeof(float);
  if (bias_bytes > 0) std::memset(bias_grad_.data(), 0, bias_bytes);
}

namespace {

// In-place pairwise tree over `shards` buffers of `size` floats, then
// dst += root. The per-element addition order is a pure function of the
// shard count.
void TreeReduceInto(float* dst, float* buffers, std::int64_t shards,
                    std::int64_t size) {
  if (size == 0) return;
  // hot-path: begin
  for (std::int64_t stride = 1; stride < shards; stride *= 2) {
    for (std::int64_t s = 0; s + stride < shards; s += 2 * stride) {
      float* a = buffers + s * size;
      const float* b = buffers + (s + stride) * size;
      for (std::int64_t i = 0; i < size; ++i) a[i] += b[i];
    }
  }
  for (std::int64_t i = 0; i < size; ++i) dst[i] += buffers[i];
  // hot-path: end
}

}  // namespace

void ConvWorkspace::ReduceWeightGradInto(float* dst) {
  TreeReduceInto(dst, weight_grad_.data(), shards_, weight_elems_);
}

void ConvWorkspace::ReduceBiasGradInto(float* dst) {
  TreeReduceInto(dst, bias_grad_.data(), shards_, bias_elems_);
}

const GemmImplicitRow* ConvWorkspace::ImplicitRows(const ConvGeometry& g) {
  if (!(g == rows_geometry_) || rows_.null()) {
    const std::int64_t n_rows = g.PatchSize();
    // Row descriptors overlay the float pool block; PoolBuffer payloads
    // are at least 16-byte aligned, which covers the int64 members.
    const std::size_t floats =
        (static_cast<std::size_t>(n_rows) * sizeof(GemmImplicitRow) +
         sizeof(float) - 1) /
        sizeof(float);
    if (rows_.capacity() < floats || rows_.null()) {
      rows_ = AcquirePoolBuffer(floats > 0 ? floats : 1);
    }
    BuildImplicitRows(g, reinterpret_cast<GemmImplicitRow*>(rows_.data()));
    rows_geometry_ = g;
  }
  return reinterpret_cast<const GemmImplicitRow*>(rows_.data());
}

}  // namespace exaclim
