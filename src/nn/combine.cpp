#include "nn/combine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

namespace exaclim {

Tensor ConcatChannels(std::span<const Tensor* const> inputs) {
  EXACLIM_CHECK(!inputs.empty(), "concat of zero tensors");
  const TensorShape& first = inputs[0]->shape();
  EXACLIM_CHECK(first.rank() == 4, "concat requires rank-4 tensors");
  std::int64_t total_c = 0;
  for (const Tensor* t : inputs) {
    const TensorShape& s = t->shape();
    EXACLIM_CHECK(s.rank() == 4 && s.n() == first.n() && s.h() == first.h() &&
                      s.w() == first.w(),
                  "concat spatial/batch mismatch: " << s.ToString() << " vs "
                                                    << first.ToString());
    total_c += s.c();
  }
  Tensor out(TensorShape::NCHW(first.n(), total_c, first.h(), first.w()));
  const std::int64_t hw = first.h() * first.w();
  for (std::int64_t n = 0; n < first.n(); ++n) {
    std::int64_t c_off = 0;
    for (const Tensor* t : inputs) {
      const std::int64_t c = t->shape().c();
      std::memcpy(out.Raw() + (n * total_c + c_off) * hw,
                  t->Raw() + n * c * hw,
                  sizeof(float) * static_cast<std::size_t>(c * hw));
      c_off += c;
    }
  }
  return out;
}

Tensor ConcatChannels(const Tensor& a, const Tensor& b) {
  const std::array<const Tensor*, 2> inputs{&a, &b};
  return ConcatChannels(std::span<const Tensor* const>(inputs));
}

void SplitChannelsInto(const Tensor& grad,
                       std::span<const std::int64_t> channels,
                       std::span<Tensor> out) {
  const TensorShape& s = grad.shape();
  EXACLIM_CHECK(s.rank() == 4, "split requires rank-4");
  EXACLIM_CHECK(out.size() == channels.size(),
                "split output count " << out.size() << " != channel count "
                                      << channels.size());
  std::int64_t total = 0;
  for (auto c : channels) total += c;
  EXACLIM_CHECK(total == s.c(), "split channels " << total
                                                  << " != tensor C " << s.c());
  const std::int64_t hw = s.h() * s.w();
  std::int64_t c_off = 0;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    const std::int64_t c = channels[i];
    const TensorShape part_shape = TensorShape::NCHW(s.n(), c, s.h(), s.w());
    // Reuse the destination's buffer when the shape already matches —
    // every element is overwritten below, so skipping the reconstruction
    // (and its zero-fill) changes nothing.
    if (out[i].shape() != part_shape) out[i] = Tensor(part_shape);
    for (std::int64_t n = 0; n < s.n(); ++n) {
      std::memcpy(out[i].Raw() + n * c * hw,
                  grad.Raw() + (n * s.c() + c_off) * hw,
                  sizeof(float) * static_cast<std::size_t>(c * hw));
    }
    c_off += c;
  }
}

std::vector<Tensor> SplitChannels(const Tensor& grad,
                                  std::span<const std::int64_t> channels) {
  std::vector<Tensor> parts(channels.size());
  SplitChannelsInto(grad, channels, parts);
  return parts;
}

Tensor SliceChannels(const Tensor& input, std::int64_t begin,
                     std::int64_t count) {
  const TensorShape& s = input.shape();
  EXACLIM_CHECK(s.rank() == 4 && begin >= 0 && begin + count <= s.c(),
                "bad channel slice [" << begin << "," << begin + count
                                      << ") of " << s.ToString());
  Tensor out(TensorShape::NCHW(s.n(), count, s.h(), s.w()));
  const std::int64_t hw = s.h() * s.w();
  for (std::int64_t n = 0; n < s.n(); ++n) {
    std::memcpy(out.Raw() + n * count * hw,
                input.Raw() + (n * s.c() + begin) * hw,
                sizeof(float) * static_cast<std::size_t>(count * hw));
  }
  return out;
}

// -------------------------------------------------- BilinearUpsample ----

BilinearUpsample2d::BilinearUpsample2d(std::string name, std::int64_t factor)
    : Layer(std::move(name)), factor_(factor) {
  EXACLIM_CHECK(factor_ >= 1, "upsample factor must be >= 1");
}

TensorShape BilinearUpsample2d::OutputShape(const TensorShape& input) const {
  EXACLIM_CHECK(input.rank() == 4, name() << ": rank-4 input required");
  return TensorShape::NCHW(input.n(), input.c(), input.h() * factor_,
                           input.w() * factor_);
}

namespace {

// Source coordinate and lerp weights for one output index
// (align_corners=false convention, clamped at borders).
struct LerpCoord {
  std::int64_t lo;
  std::int64_t hi;
  float w_hi;
};

LerpCoord MakeCoord(std::int64_t out_idx, std::int64_t factor,
                    std::int64_t in_size) {
  const float src =
      (static_cast<float>(out_idx) + 0.5f) / static_cast<float>(factor) -
      0.5f;
  const float clamped = std::max(0.0f, src);
  const auto lo = static_cast<std::int64_t>(clamped);
  LerpCoord c;
  c.lo = std::min(lo, in_size - 1);
  c.hi = std::min(c.lo + 1, in_size - 1);
  c.w_hi = std::clamp(src - static_cast<float>(c.lo), 0.0f, 1.0f);
  return c;
}

}  // namespace

Tensor BilinearUpsample2d::Forward(const Tensor& input, bool /*train*/) {
  input_shape_ = input.shape();
  const TensorShape out_shape = OutputShape(input.shape());
  Tensor output(out_shape);
  const std::int64_t planes = input.shape().n() * input.shape().c();
  const std::int64_t ih = input.shape().h(), iw = input.shape().w();
  const std::int64_t oh = out_shape.h(), ow = out_shape.w();
  for (std::int64_t p = 0; p < planes; ++p) {
    const float* in = input.Raw() + p * ih * iw;
    float* out = output.Raw() + p * oh * ow;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      const LerpCoord y = MakeCoord(oy, factor_, ih);
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const LerpCoord x = MakeCoord(ox, factor_, iw);
        const float v00 = in[y.lo * iw + x.lo];
        const float v01 = in[y.lo * iw + x.hi];
        const float v10 = in[y.hi * iw + x.lo];
        const float v11 = in[y.hi * iw + x.hi];
        const float top = v00 + (v01 - v00) * x.w_hi;
        const float bot = v10 + (v11 - v10) * x.w_hi;
        out[oy * ow + ox] = top + (bot - top) * y.w_hi;
      }
    }
  }
  MaybeQuantise(output);
  return output;
}

Tensor BilinearUpsample2d::Backward(const Tensor& grad_output) {
  EXACLIM_CHECK(input_shape_.rank() == 4,
                name() << ": Backward before Forward");
  const TensorShape out_shape = OutputShape(input_shape_);
  EXACLIM_CHECK(grad_output.shape() == out_shape,
                name() << ": grad shape mismatch");
  Tensor grad_input(input_shape_);
  const std::int64_t planes = input_shape_.n() * input_shape_.c();
  const std::int64_t ih = input_shape_.h(), iw = input_shape_.w();
  const std::int64_t oh = out_shape.h(), ow = out_shape.w();
  for (std::int64_t p = 0; p < planes; ++p) {
    const float* gout = grad_output.Raw() + p * oh * ow;
    float* gin = grad_input.Raw() + p * ih * iw;
    for (std::int64_t oy = 0; oy < oh; ++oy) {
      const LerpCoord y = MakeCoord(oy, factor_, ih);
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const LerpCoord x = MakeCoord(ox, factor_, iw);
        const float g = gout[oy * ow + ox];
        gin[y.lo * iw + x.lo] += g * (1 - y.w_hi) * (1 - x.w_hi);
        gin[y.lo * iw + x.hi] += g * (1 - y.w_hi) * x.w_hi;
        gin[y.hi * iw + x.lo] += g * y.w_hi * (1 - x.w_hi);
        gin[y.hi * iw + x.hi] += g * y.w_hi * x.w_hi;
      }
    }
  }
  MaybeQuantise(grad_input);
  return grad_input;
}

}  // namespace exaclim
