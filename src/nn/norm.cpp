#include "nn/norm.hpp"

#include <cmath>

#include "common/thread_pool.hpp"
#include "nn/activation.hpp"
#include "tensor/epilogue.hpp"

namespace exaclim {
namespace {

/// Channel-parallel dispatch: batch-norm statistics, running-stat updates
/// and plane writes are all per-channel, so channels are independent
/// tasks and each channel's reduction order is unchanged from the serial
/// loop — results are scheduling-invariant.
void ForEachChannel(std::int64_t channels,
                    FunctionRef<void(std::int64_t)> fn) {
  ParallelFor(
      0, static_cast<std::size_t>(channels),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          fn(static_cast<std::int64_t>(c));
        }
      },
      /*grain=*/1);
}

}  // namespace

BatchNorm2d::BatchNorm2d(std::string name, std::int64_t channels,
                         float momentum, float epsilon)
    : Layer(std::move(name)),
      channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(this->name() + ".gamma",
             Tensor::Full(TensorShape{channels}, 1.0f)),
      beta_(this->name() + ".beta", Tensor::Zeros(TensorShape{channels})),
      running_mean_(TensorShape{channels}),
      running_var_(Tensor::Full(TensorShape{channels}, 1.0f)) {
  EXACLIM_CHECK(channels_ > 0, "batchnorm needs channels");
}

TensorShape BatchNorm2d::OutputShape(const TensorShape& input) const {
  EXACLIM_CHECK(input.rank() == 4 && input.c() == channels_,
                name() << ": bad input " << input.ToString());
  return input;
}

void BatchNorm2d::RunForwardInto(const Tensor& input, Tensor& output,
                                 bool train, ReLU* relu) {
  (void)OutputShape(input.shape());
  input_shape_ = input.shape();
  last_was_train_ = train;
  const std::int64_t n = input.shape().n();
  const std::int64_t hw = input.shape().h() * input.shape().w();
  const std::int64_t count = n * hw;
  const std::int64_t chw = channels_ * hw;

  cached_norm_ = Tensor(input.shape());
  batch_inv_std_ = Tensor(TensorShape{channels_});
  unsigned char* mask =
      relu != nullptr ? relu->BeginFusedForward(input.shape()) : nullptr;

  ForEachChannel(channels_, [&](std::int64_t c) {
    float mean, var;
    if (train) {
      double sum = 0.0, sumsq = 0.0;
      for (std::int64_t b = 0; b < n; ++b) {
        const float* plane = input.Raw() + b * chw + c * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          sum += plane[i];
          sumsq += static_cast<double>(plane[i]) * plane[i];
        }
      }
      mean = static_cast<float>(sum / count);
      var = static_cast<float>(sumsq / count - static_cast<double>(mean) * mean);
      if (var < 0.0f) var = 0.0f;  // numerical guard
      running_mean_[static_cast<std::size_t>(c)] =
          momentum_ * running_mean_[static_cast<std::size_t>(c)] +
          (1.0f - momentum_) * mean;
      running_var_[static_cast<std::size_t>(c)] =
          momentum_ * running_var_[static_cast<std::size_t>(c)] +
          (1.0f - momentum_) * var;
    } else {
      mean = running_mean_[static_cast<std::size_t>(c)];
      var = running_var_[static_cast<std::size_t>(c)];
    }
    const float inv_std = 1.0f / std::sqrt(var + epsilon_);
    batch_inv_std_[static_cast<std::size_t>(c)] = inv_std;
    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float bta = beta_.value[static_cast<std::size_t>(c)];
    for (std::int64_t b = 0; b < n; ++b) {
      const float* in_plane = input.Raw() + b * chw + c * hw;
      float* norm_plane = cached_norm_.Raw() + b * chw + c * hw;
      float* out_plane = output.Raw() + b * chw + c * hw;
      unsigned char* mask_plane =
          mask != nullptr ? mask + b * chw + c * hw : nullptr;
      for (std::int64_t i = 0; i < hw; ++i) {
        // The stats pass above read the whole channel before any write, so
        // `output` may alias `input`; x_hat goes to the separate cache.
        const float x_hat = BnNormalise(in_plane[i], mean, inv_std);
        norm_plane[i] = x_hat;
        float y = BnAffine(x_hat, g, bta);
        if (mask_plane != nullptr) {
          mask_plane[i] = ReluActive(y) ? 1 : 0;
          y = ReluValue(y);
        }
        out_plane[i] = y;
      }
    }
  });
}

Tensor BatchNorm2d::Forward(const Tensor& input, bool train) {
  Tensor output(input.shape());
  RunForwardInto(input, output, train, /*relu=*/nullptr);
  MaybeQuantise(output);
  return output;
}

void BatchNorm2d::ForwardFusedInPlace(Tensor& x, bool train, ReLU* relu) {
  // Fused chains are FP32-only (Sequential never builds one under FP16
  // emulation), so there is no MaybeQuantise step to replicate here.
  RunForwardInto(x, x, train, relu);
}

BatchNorm2d::FoldedAffine BatchNorm2d::FoldInferenceParams(
    const TensorShape& out_shape) {
  (void)OutputShape(out_shape);
  batch_inv_std_ = Tensor(TensorShape{channels_});
  for (std::int64_t c = 0; c < channels_; ++c) {
    // Exactly the eval-mode forward's per-channel scale.
    batch_inv_std_[static_cast<std::size_t>(c)] =
        1.0f / std::sqrt(running_var_[static_cast<std::size_t>(c)] + epsilon_);
  }
  // The GEMM epilogue fills cached_norm_ through norm_out, leaving the
  // layer exactly as an unfused eval Forward would.
  cached_norm_ = Tensor(out_shape);
  input_shape_ = out_shape;
  last_was_train_ = false;
  return {running_mean_.Raw(), batch_inv_std_.Raw(), gamma_.value.Raw(),
          beta_.value.Raw(), cached_norm_.Raw()};
}

Tensor BatchNorm2d::Backward(const Tensor& grad_output) {
  EXACLIM_CHECK(!cached_norm_.Empty(), name() << ": Backward before Forward");
  EXACLIM_CHECK(grad_output.shape() == input_shape_,
                name() << ": grad shape mismatch");
  const std::int64_t n = input_shape_.n();
  const std::int64_t hw = input_shape_.h() * input_shape_.w();
  const std::int64_t count = n * hw;
  const std::int64_t chw = channels_ * hw;

  Tensor grad_input(input_shape_);
  ForEachChannel(channels_, [&](std::int64_t c) {
    // Accumulate dL/dgamma, dL/dbeta and the two reduction terms of the
    // batch-norm backward formula.
    double sum_g = 0.0, sum_gx = 0.0;
    for (std::int64_t b = 0; b < n; ++b) {
      const float* gout = grad_output.Raw() + b * chw + c * hw;
      const float* x_hat = cached_norm_.Raw() + b * chw + c * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        sum_g += gout[i];
        sum_gx += static_cast<double>(gout[i]) * x_hat[i];
      }
    }
    gamma_.grad[static_cast<std::size_t>(c)] += static_cast<float>(sum_gx);
    beta_.grad[static_cast<std::size_t>(c)] += static_cast<float>(sum_g);

    const float g = gamma_.value[static_cast<std::size_t>(c)];
    const float inv_std = batch_inv_std_[static_cast<std::size_t>(c)];
    // Train mode: the batch statistics depend on the input, adding the two
    // mean-correction terms. Eval mode: stats are constants, so the layer
    // is affine and dx = gamma * inv_std * dy.
    const float mean_g =
        last_was_train_ ? static_cast<float>(sum_g / count) : 0.0f;
    const float mean_gx =
        last_was_train_ ? static_cast<float>(sum_gx / count) : 0.0f;
    // dx = gamma * inv_std * (dy - mean(dy) - x_hat * mean(dy * x_hat))
    for (std::int64_t b = 0; b < n; ++b) {
      const float* gout = grad_output.Raw() + b * chw + c * hw;
      const float* x_hat = cached_norm_.Raw() + b * chw + c * hw;
      float* gin = grad_input.Raw() + b * chw + c * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        gin[i] = g * inv_std * (gout[i] - mean_g - x_hat[i] * mean_gx);
      }
    }
  });
  MaybeQuantise(grad_input);
  return grad_input;
}

std::vector<Param*> BatchNorm2d::Params() { return {&gamma_, &beta_}; }

std::vector<Layer::StateTensor> BatchNorm2d::StateTensors() {
  return {{name() + ".running_mean", &running_mean_},
          {name() + ".running_var", &running_var_}};
}

}  // namespace exaclim
