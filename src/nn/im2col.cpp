#include "nn/im2col.hpp"

#include <algorithm>
#include <cstring>

namespace exaclim {
namespace {

// Valid output coordinates along one axis for an input displacement `d`
// (= k*dilation - pad): the o with 0 <= o*stride + d < in_sz, clamped to
// [0, out_sz]. Matches the per-element bound checks in Im2Col exactly.
void ValidOutRange(std::int64_t d, std::int64_t stride, std::int64_t in_sz,
                   std::int64_t out_sz, std::int64_t* lo, std::int64_t* hi) {
  *lo = d >= 0 ? 0 : (-d + stride - 1) / stride;
  *hi = in_sz > d ? (in_sz - d - 1) / stride + 1 : 0;
  *lo = std::min(*lo, out_sz);
  *hi = std::min(*hi, out_sz);
  if (*hi < *lo) *hi = *lo;
}

}  // namespace

void Im2Col(const ConvGeometry& g, const float* image, float* col) {
  const std::int64_t out_h = g.OutH();
  const std::int64_t out_w = g.OutW();
  const std::int64_t hw = g.in_h * g.in_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const float* plane = image + c * hw;
    for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.k_w; ++kw, ++row) {
        float* dst = col + row * (out_h * out_w);
        const std::int64_t dy = kh * g.dilation - g.pad;
        const std::int64_t dx = kw * g.dilation - g.pad;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * g.stride + dy;
          float* dst_row = dst + oy * out_w;
          if (iy < 0 || iy >= g.in_h) {
            std::memset(dst_row, 0, sizeof(float) * out_w);
            continue;
          }
          const float* src_row = plane + iy * g.in_w;
          if (g.stride == 1) {
            // Contiguous inner copy with explicit edge handling.
            std::int64_t ox = 0;
            for (; ox < out_w && ox + dx < 0; ++ox) dst_row[ox] = 0.0f;
            std::int64_t ox_end = out_w;
            while (ox_end > ox && ox_end - 1 + dx >= g.in_w) --ox_end;
            if (ox_end > ox) {
              std::memcpy(dst_row + ox, src_row + ox + dx,
                          sizeof(float) * (ox_end - ox));
            }
            for (ox = ox_end; ox < out_w; ++ox) dst_row[ox] = 0.0f;
          } else {
            for (std::int64_t ox = 0; ox < out_w; ++ox) {
              const std::int64_t ix = ox * g.stride + dx;
              dst_row[ox] =
                  (ix >= 0 && ix < g.in_w) ? src_row[ix] : 0.0f;
            }
          }
        }
      }
    }
  }
}

void BuildImplicitRows(const ConvGeometry& g, GemmImplicitRow* rows) {
  const std::int64_t out_h = g.OutH();
  const std::int64_t out_w = g.OutW();
  std::int64_t r = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.k_w; ++kw, ++r) {
        const std::int64_t dy = kh * g.dilation - g.pad;
        const std::int64_t dx = kw * g.dilation - g.pad;
        GemmImplicitRow& rd = rows[r];
        rd.offset = c * g.in_h * g.in_w + dy * g.in_w + dx;
        ValidOutRange(dy, g.stride, g.in_h, out_h, &rd.oy_lo, &rd.oy_hi);
        ValidOutRange(dx, g.stride, g.in_w, out_w, &rd.ox_lo, &rd.ox_hi);
      }
    }
  }
}

void Im2ColFromRows(const ConvGeometry& g, const GemmImplicitRow* rows,
                    const float* image, float* col) {
  const std::int64_t out_h = g.OutH();
  const std::int64_t out_w = g.OutW();
  const std::int64_t patch = g.PatchSize();
  for (std::int64_t r = 0; r < patch; ++r) {
    const GemmImplicitRow& rd = rows[r];
    float* dst = col + r * out_h * out_w;
    for (std::int64_t oy = 0; oy < out_h; ++oy, dst += out_w) {
      if (oy < rd.oy_lo || oy >= rd.oy_hi) {
        std::memset(dst, 0, sizeof(float) * out_w);
        continue;
      }
      // Full int64 element index before pointer arithmetic — rd.offset
      // alone may be negative (padding), but base + ox*stride is in
      // bounds for every ox in [ox_lo, ox_hi).
      const std::int64_t base = rd.offset + oy * g.stride * g.in_w;
      std::int64_t ox = 0;
      for (; ox < rd.ox_lo; ++ox) dst[ox] = 0.0f;
      if (g.stride == 1) {
        if (rd.ox_hi > ox) {
          std::memcpy(dst + ox, image + (base + ox),
                      sizeof(float) * (rd.ox_hi - ox));
        }
        ox = std::max(ox, rd.ox_hi);
      } else {
        for (; ox < rd.ox_hi; ++ox) dst[ox] = image[base + ox * g.stride];
      }
      for (; ox < out_w; ++ox) dst[ox] = 0.0f;
    }
  }
}

void Col2Im(const ConvGeometry& g, const float* col, float* image) {
  const std::int64_t out_h = g.OutH();
  const std::int64_t out_w = g.OutW();
  const std::int64_t hw = g.in_h * g.in_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    float* plane = image + c * hw;
    for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.k_w; ++kw, ++row) {
        const float* src = col + row * (out_h * out_w);
        const std::int64_t dy = kh * g.dilation - g.pad;
        const std::int64_t dx = kw * g.dilation - g.pad;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * g.stride + dy;
          if (iy < 0 || iy >= g.in_h) continue;
          const float* src_row = src + oy * out_w;
          float* dst_row = plane + iy * g.in_w;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * g.stride + dx;
            if (ix >= 0 && ix < g.in_w) dst_row[ix] += src_row[ox];
          }
        }
      }
    }
  }
}

}  // namespace exaclim
