#include "nn/im2col.hpp"

#include <cstring>

namespace exaclim {

void Im2Col(const ConvGeometry& g, const float* image, float* col) {
  const std::int64_t out_h = g.OutH();
  const std::int64_t out_w = g.OutW();
  const std::int64_t hw = g.in_h * g.in_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const float* plane = image + c * hw;
    for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.k_w; ++kw, ++row) {
        float* dst = col + row * (out_h * out_w);
        const std::int64_t dy = kh * g.dilation - g.pad;
        const std::int64_t dx = kw * g.dilation - g.pad;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * g.stride + dy;
          float* dst_row = dst + oy * out_w;
          if (iy < 0 || iy >= g.in_h) {
            std::memset(dst_row, 0, sizeof(float) * out_w);
            continue;
          }
          const float* src_row = plane + iy * g.in_w;
          if (g.stride == 1) {
            // Contiguous inner copy with explicit edge handling.
            std::int64_t ox = 0;
            for (; ox < out_w && ox + dx < 0; ++ox) dst_row[ox] = 0.0f;
            std::int64_t ox_end = out_w;
            while (ox_end > ox && ox_end - 1 + dx >= g.in_w) --ox_end;
            if (ox_end > ox) {
              std::memcpy(dst_row + ox, src_row + ox + dx,
                          sizeof(float) * (ox_end - ox));
            }
            for (ox = ox_end; ox < out_w; ++ox) dst_row[ox] = 0.0f;
          } else {
            for (std::int64_t ox = 0; ox < out_w; ++ox) {
              const std::int64_t ix = ox * g.stride + dx;
              dst_row[ox] =
                  (ix >= 0 && ix < g.in_w) ? src_row[ix] : 0.0f;
            }
          }
        }
      }
    }
  }
}

void Col2Im(const ConvGeometry& g, const float* col, float* image) {
  const std::int64_t out_h = g.OutH();
  const std::int64_t out_w = g.OutW();
  const std::int64_t hw = g.in_h * g.in_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    float* plane = image + c * hw;
    for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.k_w; ++kw, ++row) {
        const float* src = col + row * (out_h * out_w);
        const std::int64_t dy = kh * g.dilation - g.pad;
        const std::int64_t dx = kw * g.dilation - g.pad;
        for (std::int64_t oy = 0; oy < out_h; ++oy) {
          const std::int64_t iy = oy * g.stride + dy;
          if (iy < 0 || iy >= g.in_h) continue;
          const float* src_row = src + oy * out_w;
          float* dst_row = plane + iy * g.in_w;
          for (std::int64_t ox = 0; ox < out_w; ++ox) {
            const std::int64_t ix = ox * g.stride + dx;
            if (ix >= 0 && ix < g.in_w) dst_row[ix] += src_row[ox];
          }
        }
      }
    }
  }
}

}  // namespace exaclim
