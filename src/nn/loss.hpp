#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/cast.hpp"
#include "tensor/tensor.hpp"

namespace exaclim {

/// Class-weighting schemes of Sec V-B1. kInverse equalises per-class loss
/// mass but spans ~3 orders of magnitude with the paper's 98.2/1.7/0.1 %
/// class frequencies, which destabilises FP16; kInverseSqrt is the
/// paper's fix.
enum class WeightingScheme { kNone, kInverse, kInverseSqrt };

const char* ToString(WeightingScheme s);

/// Per-class weights from class pixel frequencies (must sum to ~1).
std::vector<float> MakeClassWeights(std::span<const double> frequencies,
                                    WeightingScheme scheme);

struct SegmentationLossOptions {
  /// Size C; empty = unweighted. Non-owning view: the caller keeps the
  /// weight storage alive for the duration of the loss call (binding a
  /// named vector — e.g. RankTrainer's class_weights_ member — avoids a
  /// per-step copy; binding a temporary vector dangles).
  std::span<const float> class_weights;
  Precision precision = Precision::kFP32;
  /// Gradient multiplier for FP16 loss scaling; the optimizer divides the
  /// applied update by the same factor.
  float loss_scale = 1.0f;
};

struct SegmentationLossResult {
  /// Weighted mean cross-entropy (unscaled, FP64 accumulation).
  double loss = 0.0;
  /// Gradient w.r.t. logits, including the loss_scale factor.
  Tensor grad_logits;
  /// Unweighted pixel accuracy (the metric the degenerate all-background
  /// predictor maxes out at 98.2%).
  double pixel_accuracy = 0.0;
  /// FP16 diagnostics (0 under FP32): gradients that became inf/NaN and
  /// gradients that flushed from non-zero to zero in binary16.
  std::int64_t nonfinite_grad_count = 0;
  std::int64_t flushed_grad_count = 0;
  /// Per-pixel losses that overflowed binary16 (weighted loss > 65504).
  std::int64_t nonfinite_loss_count = 0;
};

/// Per-pixel weighted softmax cross-entropy over logits [N, C, H, W] with
/// labels in [0, C). The per-pixel weight map of Sec V-B1 is realised as
/// class_weights[label(pixel)]. Under FP16 the per-pixel losses and the
/// gradient tensor are rounded through binary16, reproducing the numeric
/// behaviour that motivated the inverse-sqrt weighting.
SegmentationLossResult WeightedSoftmaxCrossEntropy(
    const Tensor& logits, std::span<const std::uint8_t> labels,
    const SegmentationLossOptions& opts);

/// Argmax class per pixel: logits [N, C, H, W] -> labels [N*H*W].
std::vector<std::uint8_t> PredictClasses(const Tensor& logits);

}  // namespace exaclim
