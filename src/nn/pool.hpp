#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace exaclim {

/// Max pooling (e.g. the 3×3/2 pool after the ResNet stem in Fig 1).
/// Backward routes the gradient to the argmax position of each window.
class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::string name, std::int64_t kernel, std::int64_t stride,
            std::int64_t pad = -1);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override;

 private:
  std::int64_t kernel_;
  std::int64_t stride_;
  std::int64_t pad_;
  TensorShape input_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

/// Average pooling; kernel == 0 means global average pooling (used by the
/// ASPP image-level branch variant and ablations).
class AvgPool2d : public Layer {
 public:
  AvgPool2d(std::string name, std::int64_t kernel, std::int64_t stride);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override;

 private:
  std::int64_t kernel_;  // 0 = global
  std::int64_t stride_;
  TensorShape input_shape_;
};

}  // namespace exaclim
