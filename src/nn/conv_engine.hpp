#pragma once

// Batch-parallel convolution execution engine (DESIGN §9).
//
// The conv/deconv/pool layers decompose each batch into contiguous image
// shards and run the shards through ThreadPool::Global(). The shard
// partition and the weight-gradient reduction tree depend only on the
// batch size (plus the EXACLIM_CONV_SHARDS knob) — never on the thread
// count or on scheduling — so the batch-parallel backward pass produces
// bit-identical gradients to the serial batch walk. Nested GEMMs issued
// from inside a shard run inline via the pool's nesting policy.

#include <cstdint>

#include "common/function_ref.hpp"
#include "common/pool.hpp"
#include "nn/im2col.hpp"

namespace exaclim {

/// Whether conv-family layers run their batch shards on the global pool.
/// Defaults to on; EXACLIM_CONV_SERIAL=1 (or any value other than "0")
/// forces the serial batch walk. Either mode computes the exact same
/// floating-point operation sequence per gradient element.
bool ConvBatchParallelEnabled();

/// Programmatic override of the EXACLIM_CONV_SERIAL default (benches and
/// the serial-vs-parallel bit-exactness tests flip this per run).
void SetConvBatchParallel(bool enabled);

/// Whether Sequential fuses Conv2d→BatchNorm2d→ReLU chains and the conv
/// layers fold their bias into the packed GEMM epilogue (DESIGN §15).
/// Defaults to on; EXACLIM_CONV_FUSE=off (or "0") disables. Fused and
/// unfused execution are bit-identical — this is a pure perf A/B knob.
bool ConvFusionEnabled();

/// Programmatic override of the EXACLIM_CONV_FUSE default.
void SetConvFusion(bool enabled);

/// Number of shards a batch of `n` images is decomposed into:
/// min(n, EXACLIM_CONV_SHARDS), knob default 16. Fixed for a given batch
/// size, so the gradient reduction tree is reproducible across machines
/// with different core counts.
std::int64_t ConvGradShards(std::int64_t n);

/// Contiguous image range [lo, hi) owned by `shard` under the
/// deterministic ceil(n/shards) split ParallelFor also uses.
struct ConvShardRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};
ConvShardRange ShardImageRange(std::int64_t n, std::int64_t shards,
                               std::int64_t shard);

/// Runs fn(shard) for every shard in [0, shards): on the global pool when
/// ConvBatchParallelEnabled(), serially in shard order otherwise. Each
/// shard touches only its own workspace slot, so the modes differ only in
/// scheduling.
void RunConvShards(std::int64_t shards,
                   FunctionRef<void(std::int64_t)> fn);

/// Reusable per-layer workspace for the im2col lowering: per-shard
/// col / grad-col panels plus per-shard weight/bias gradient
/// accumulators. Buffers are pooled blocks (common/pool.hpp), sized once
/// per (geometry, shard-count) and reused across Forward/Backward calls
/// — the per-call allocations this replaces dominated small-GEMM conv
/// layers, and a geometry change recycles the old panels through the
/// arena free-lists instead of the heap.
class ConvWorkspace {
 public:
  /// (Re)sizes the buffers; cheap no-op when nothing changed. Element
  /// counts of zero skip the corresponding buffer family.
  void Configure(std::int64_t shards, std::int64_t col_elems,
                 std::int64_t grad_col_elems, std::int64_t weight_elems,
                 std::int64_t bias_elems);

  float* Col(std::int64_t shard);
  float* GradCol(std::int64_t shard);
  float* WeightGrad(std::int64_t shard);
  float* BiasGrad(std::int64_t shard);

  /// Zeroes the gradient accumulators ahead of a Backward pass.
  void ZeroGradAccumulators();

  /// Merges the per-shard accumulators by a fixed-order pairwise tree
  /// (shard 0 += shard 1, shard 2 += shard 3, ...; doubling strides) and
  /// accumulates the root into dst. The tree shape depends only on the
  /// shard count, pinning the reduction order.
  void ReduceWeightGradInto(float* dst);
  void ReduceBiasGradInto(float* dst);

  /// The implicit-GEMM row-descriptor table for `g` (DESIGN §15), built
  /// on first use and rebuilt only when the geometry changes — repeat
  /// calls with the layer's steady-state geometry touch neither the heap
  /// nor the arena. The table is shared read-only by every batch shard
  /// (and by the forward/backward passes, whose geometries coincide).
  const GemmImplicitRow* ImplicitRows(const ConvGeometry& g);

  std::int64_t shards() const { return shards_; }

 private:
  std::int64_t shards_ = 0;
  std::int64_t col_elems_ = 0;
  std::int64_t grad_col_elems_ = 0;
  std::int64_t weight_elems_ = 0;
  std::int64_t bias_elems_ = 0;
  PoolBuffer col_;
  PoolBuffer grad_col_;
  PoolBuffer weight_grad_;
  PoolBuffer bias_grad_;
  ConvGeometry rows_geometry_;  // geometry rows_ was built for
  PoolBuffer rows_;             // GemmImplicitRow[PatchSize()] overlay
};

}  // namespace exaclim
