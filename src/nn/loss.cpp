#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/half.hpp"
#include "common/workspace.hpp"

namespace exaclim {

const char* ToString(WeightingScheme s) {
  switch (s) {
    case WeightingScheme::kNone: return "unweighted";
    case WeightingScheme::kInverse: return "inverse-frequency";
    case WeightingScheme::kInverseSqrt: return "inverse-sqrt-frequency";
  }
  return "?";
}

std::vector<float> MakeClassWeights(std::span<const double> frequencies,
                                    WeightingScheme scheme) {
  std::vector<float> weights(frequencies.size(), 1.0f);
  for (std::size_t c = 0; c < frequencies.size(); ++c) {
    EXACLIM_CHECK(frequencies[c] > 0.0, "class " << c << " has frequency 0");
    switch (scheme) {
      case WeightingScheme::kNone:
        weights[c] = 1.0f;
        break;
      case WeightingScheme::kInverse:
        weights[c] = static_cast<float>(1.0 / frequencies[c]);
        break;
      case WeightingScheme::kInverseSqrt:
        weights[c] = static_cast<float>(1.0 / std::sqrt(frequencies[c]));
        break;
    }
  }
  return weights;
}

SegmentationLossResult WeightedSoftmaxCrossEntropy(
    const Tensor& logits, std::span<const std::uint8_t> labels,
    const SegmentationLossOptions& opts) {
  const TensorShape& s = logits.shape();
  EXACLIM_CHECK(s.rank() == 4, "logits must be [N,C,H,W]");
  const std::int64_t n = s.n(), c = s.c(), hw = s.h() * s.w();
  EXACLIM_CHECK(static_cast<std::int64_t>(labels.size()) == n * hw,
                "labels size " << labels.size() << " != " << n * hw);
  EXACLIM_CHECK(opts.class_weights.empty() ||
                    static_cast<std::int64_t>(opts.class_weights.size()) == c,
                "class_weights size mismatch");

  SegmentationLossResult result;
  result.grad_logits = Tensor(s);
  const double inv_pixels = 1.0 / static_cast<double>(n * hw);
  const bool fp16 = opts.precision == Precision::kFP16;

  double loss_acc = 0.0;
  std::int64_t correct = 0;
  // Pooled scratch stream, not a local vector: the loss runs once per
  // step and must not allocate in steady state (DESIGN §12).
  float* probs = AcquireScratch(ScratchSlot::kLossProbs,
                                static_cast<std::size_t>(c));

  for (std::int64_t b = 0; b < n; ++b) {
    const float* logit_base = logits.Raw() + b * c * hw;
    float* grad_base = result.grad_logits.Raw() + b * c * hw;
    for (std::int64_t p = 0; p < hw; ++p) {
      // Numerically stable softmax over the class dimension.
      float max_logit = logit_base[p];
      for (std::int64_t k = 1; k < c; ++k) {
        max_logit = std::max(max_logit, logit_base[k * hw + p]);
      }
      double denom = 0.0;
      for (std::int64_t k = 0; k < c; ++k) {
        probs[static_cast<std::size_t>(k)] =
            std::exp(logit_base[k * hw + p] - max_logit);
        denom += probs[static_cast<std::size_t>(k)];
      }
      const double inv_denom = 1.0 / denom;

      const std::uint8_t label = labels[static_cast<std::size_t>(b * hw + p)];
      EXACLIM_CHECK(label < c, "label " << int(label) << " out of range");
      const float weight =
          opts.class_weights.empty() ? 1.0f : opts.class_weights[label];

      const double p_label =
          probs[static_cast<std::size_t>(label)] * inv_denom;
      float pixel_loss = static_cast<float>(
          -weight * std::log(std::max(p_label, 1e-30)));
      if (fp16) {
        // The per-pixel weighted loss is materialised in FP16 on the GPU.
        const Half h(pixel_loss);
        if (!h.IsFinite()) ++result.nonfinite_loss_count;
        pixel_loss = h.ToFloat();
      }
      loss_acc += pixel_loss;

      std::int64_t argmax = 0;
      float best = probs[0];
      for (std::int64_t k = 1; k < c; ++k) {
        if (probs[static_cast<std::size_t>(k)] > best) {
          best = probs[static_cast<std::size_t>(k)];
          argmax = k;
        }
      }
      if (argmax == label) ++correct;

      const float scale = static_cast<float>(weight * opts.loss_scale *
                                             inv_pixels);
      for (std::int64_t k = 0; k < c; ++k) {
        const float softmax_k = static_cast<float>(
            probs[static_cast<std::size_t>(k)] * inv_denom);
        const float onehot = (k == label) ? 1.0f : 0.0f;
        float g = scale * (softmax_k - onehot);
        if (fp16) {
          const Half h(g);
          if (!h.IsFinite()) {
            ++result.nonfinite_grad_count;
          } else if (g != 0.0f && h.ToFloat() == 0.0f) {
            ++result.flushed_grad_count;
          }
          g = h.ToFloat();
        }
        grad_base[k * hw + p] = g;
      }
    }
  }

  result.loss = loss_acc * inv_pixels;
  result.pixel_accuracy = static_cast<double>(correct) * inv_pixels;
  return result;
}

std::vector<std::uint8_t> PredictClasses(const Tensor& logits) {
  const TensorShape& s = logits.shape();
  EXACLIM_CHECK(s.rank() == 4, "logits must be [N,C,H,W]");
  const std::int64_t n = s.n(), c = s.c(), hw = s.h() * s.w();
  std::vector<std::uint8_t> out(static_cast<std::size_t>(n * hw));
  for (std::int64_t b = 0; b < n; ++b) {
    const float* base = logits.Raw() + b * c * hw;
    for (std::int64_t p = 0; p < hw; ++p) {
      std::int64_t argmax = 0;
      float best = base[p];
      for (std::int64_t k = 1; k < c; ++k) {
        if (base[k * hw + p] > best) {
          best = base[k * hw + p];
          argmax = k;
        }
      }
      out[static_cast<std::size_t>(b * hw + p)] =
          static_cast<std::uint8_t>(argmax);
    }
  }
  return out;
}

}  // namespace exaclim
