#pragma once

#include "nn/layer.hpp"

namespace exaclim {

/// Batch normalisation over (N, H, W) per channel with learnable scale and
/// shift, running statistics for inference, and the full analytic backward
/// pass. In the data-parallel setting each rank normalises over its local
/// batch, exactly as TensorFlow+Horovod did in the paper.
class BatchNorm2d : public Layer {
 public:
  BatchNorm2d(std::string name, std::int64_t channels, float momentum = 0.9f,
              float epsilon = 1e-5f);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override;
  std::vector<Param*> Params() override;
  /// Running mean/var: inference state that checkpoint/resume must carry
  /// for bit-exact validation metrics after a restart.
  std::vector<StateTensor> StateTensors() override;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  std::int64_t channels_;
  float momentum_;
  float epsilon_;
  Param gamma_;
  Param beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Saved forward state for backward.
  Tensor cached_norm_;   // normalised input x_hat
  Tensor batch_inv_std_;  // per-channel 1/sqrt(var+eps)
  TensorShape input_shape_;
  bool last_was_train_ = false;
};

}  // namespace exaclim
