#pragma once

#include "nn/layer.hpp"

namespace exaclim {

class ReLU;

/// Batch normalisation over (N, H, W) per channel with learnable scale and
/// shift, running statistics for inference, and the full analytic backward
/// pass. In the data-parallel setting each rank normalises over its local
/// batch, exactly as TensorFlow+Horovod did in the paper.
class BatchNorm2d : public Layer {
 public:
  BatchNorm2d(std::string name, std::int64_t channels, float momentum = 0.9f,
              float epsilon = 1e-5f);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override;
  std::vector<Param*> Params() override;
  /// Running mean/var: inference state that checkpoint/resume must carry
  /// for bit-exact validation metrics after a restart.
  std::vector<StateTensor> StateTensors() override;

  /// Fused-chain forward (DESIGN §15): exactly Forward() but written back
  /// in place over `x` (the conv output the chain just produced), with an
  /// optional trailing ReLU applied in the same sweep (filling the ReLU
  /// layer's mask via BeginFusedForward, so its Backward works as after a
  /// plain Forward). Bit-identical to the unfused chain; all backward
  /// caches (x_hat, inv_std) are filled, in train and eval mode alike.
  void ForwardFusedInPlace(Tensor& x, bool train, ReLU* relu);

  /// Per-channel vectors for folding an INFERENCE BatchNorm into the conv
  /// GEMM epilogue: y = gamma * ((v - mean) * inv_std) + beta. norm_out
  /// is the layer's x_hat cache (shaped like the output) the epilogue
  /// must fill so Backward keeps working after the folded forward.
  struct FoldedAffine {
    const float* mean;
    const float* inv_std;
    const float* gamma;
    const float* beta;
    float* norm_out;
  };

  /// Computes inv_std from the running statistics (exactly as the eval
  /// forward does), sizes the backward caches for `out_shape`, and
  /// returns the epilogue vectors, valid until the next forward/fold.
  /// With the caller writing x_hat through norm_out, the layer is left in
  /// exactly the state an unfused eval Forward produces — Backward is
  /// bit-identical either way.
  FoldedAffine FoldInferenceParams(const TensorShape& out_shape);

  std::int64_t channels() const { return channels_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  /// Shared Forward/ForwardFusedInPlace driver; `output` may alias
  /// `input` (the stats pass completes before the write pass per
  /// channel, and writes are element-wise after the read).
  void RunForwardInto(const Tensor& input, Tensor& output, bool train,
                      ReLU* relu);

  std::int64_t channels_;
  float momentum_;
  float epsilon_;
  Param gamma_;
  Param beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Saved forward state for backward.
  Tensor cached_norm_;   // normalised input x_hat
  Tensor batch_inv_std_;  // per-channel 1/sqrt(var+eps)
  TensorShape input_shape_;
  bool last_was_train_ = false;
};

}  // namespace exaclim
