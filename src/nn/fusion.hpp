#pragma once

// Conv2d→BatchNorm2d(→ReLU) chain fusion (DESIGN §15).
//
// Sequential::Forward scans its layer list for fusable chains and routes
// them through ForwardFusedChain instead of layer-by-layer Forward calls.
// Fusion is bitwise-transparent: the fused chain produces the exact same
// output tensor AND leaves the member layers with the exact same backward
// caches (x_hat, inv_std, the ReLU mask) as the unfused walk, so Backward
// is completely unaware of it. EXACLIM_CONV_FUSE=off restores the plain
// walk (tests/test_conv_engine.cpp holds the two modes bit-identical).

#include <cstddef>
#include <vector>

#include "nn/layer.hpp"

namespace exaclim {

/// Length of the fusable chain starting at layers[i]: 3 for
/// Conv2d→BatchNorm2d→ReLU, 2 for Conv2d→BatchNorm2d or Conv2d→ReLU,
/// 0 when layers[i] starts no fusable chain. All member layers must be
/// FP32 (FP16 emulation quantises between layers, which fusion would
/// skip) and a conv→ReLU pair additionally needs the conv's GEMM
/// epilogue (CanFuseEpilogue) since there is no BN sweep to apply the
/// ReLU in.
std::size_t FusableChainAt(const std::vector<LayerPtr>& layers,
                           std::size_t i);

/// Executes the `len`-layer chain starting at layers[i] (len from
/// FusableChainAt, >= 2) as one fused pass. Eval-mode conv→BN(→ReLU)
/// chains with a GEMM-capable conv fold the whole epilogue into the
/// packed GEMM writeback; train-mode chains run the conv (bias folded
/// into the epilogue) and then one in-place BN sweep that also fills the
/// ReLU mask. Bit-identical to calling each layer's Forward in turn.
Tensor ForwardFusedChain(const std::vector<LayerPtr>& layers, std::size_t i,
                         std::size_t len, const Tensor& input, bool train);

}  // namespace exaclim
