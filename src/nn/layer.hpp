#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/cast.hpp"
#include "tensor/tensor.hpp"

namespace exaclim {

/// A trainable parameter: value plus accumulated gradient. Optimizers and
/// the data-parallel aggregation layer (hvd) operate on flat lists of
/// these, mirroring how Horovod hooks TensorFlow's variable list.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  std::int64_t NumElements() const { return value.NumElements(); }
};

class Layer;

/// Observer of backward-pass progress: containers (Sequential, the model
/// backward paths) announce each child layer right after its Backward
/// returns, at which point that child's Param::grads are final for the
/// step — the hook that lets the gradient exchange overlap with the rest
/// of backprop (DESIGN §14). Announcements may repeat or cover layers
/// without params; listeners dedup.
class GradReadyListener {
 public:
  virtual ~GradReadyListener() = default;
  virtual void OnGradsReady(Layer& layer) = 0;
};

/// Base class for network layers.
///
/// Layers cache whatever forward-pass state their backward pass needs, so
/// the usage contract is: Forward, then at most one Backward for that
/// Forward. Gradients accumulate into Param::grad (callers zero them
/// between steps). SetPrecision(kFP16) makes the layer quantise its output
/// activations and use binary16-rounded weights — the emulation point for
/// the paper's mixed-precision runs (master weights stay FP32).
class Layer {
 public:
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output; `train` enables dropout/batch-stat updates.
  virtual Tensor Forward(const Tensor& input, bool train) = 0;

  /// Propagates the loss gradient, accumulating parameter gradients.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Output shape for a given input shape (no compute) — used by model
  /// assembly checks.
  virtual TensorShape OutputShape(const TensorShape& input) const = 0;

  virtual std::vector<Param*> Params() { return {}; }

  /// Non-trainable state that must survive checkpoint/resume — e.g.
  /// batch-norm running statistics. Named like params but outside the
  /// optimizer and the gradient exchange; checkpoints store them as
  /// "__state__<name>" datasets.
  struct StateTensor {
    std::string name;
    Tensor* tensor;
  };
  virtual std::vector<StateTensor> StateTensors() { return {}; }

  const std::string& name() const { return name_; }

  void SetPrecision(Precision p) { precision_ = p; }
  Precision precision() const { return precision_; }

  /// Installs the backward-progress observer on this layer (the trainer
  /// sets it on the model root only; nested containers keep nullptr and
  /// the root announces their children transitively).
  void SetGradReadyListener(GradReadyListener* listener) {
    grad_listener_ = listener;
  }

 protected:
  explicit Layer(std::string name) : name_(std::move(name)) {}

  /// Applies FP16 storage emulation to an activation if enabled.
  void MaybeQuantise(Tensor& t) const {
    if (precision_ == Precision::kFP16) RoundTripHalf(t);
  }

  /// Announces that `child`'s gradients are final for this step. No-op
  /// without a listener, so un-instrumented call paths cost one branch.
  void NotifyGradsReady(Layer& child) const {
    if (grad_listener_ != nullptr) grad_listener_->OnGradsReady(child);
  }

  /// The installed listener (for containers that forward it to nested
  /// instrumented children, e.g. DeepLab handing its encoder over so the
  /// encoder announces per-block instead of as one giant layer).
  GradReadyListener* grad_ready_listener() const { return grad_listener_; }

 private:
  std::string name_;
  Precision precision_ = Precision::kFP32;
  GradReadyListener* grad_listener_ = nullptr;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Collects Params from a list of layers (helper for containers/models).
inline void AppendParams(std::vector<Param*>& out, Layer& layer) {
  for (Param* p : layer.Params()) out.push_back(p);
}

/// Same for non-trainable state tensors.
inline void AppendStateTensors(std::vector<Layer::StateTensor>& out,
                               Layer& layer) {
  for (auto& s : layer.StateTensors()) out.push_back(std::move(s));
}

}  // namespace exaclim
