#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/cast.hpp"
#include "tensor/tensor.hpp"

namespace exaclim {

/// A trainable parameter: value plus accumulated gradient. Optimizers and
/// the data-parallel aggregation layer (hvd) operate on flat lists of
/// these, mirroring how Horovod hooks TensorFlow's variable list.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  Param(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  std::int64_t NumElements() const { return value.NumElements(); }
};

/// Base class for network layers.
///
/// Layers cache whatever forward-pass state their backward pass needs, so
/// the usage contract is: Forward, then at most one Backward for that
/// Forward. Gradients accumulate into Param::grad (callers zero them
/// between steps). SetPrecision(kFP16) makes the layer quantise its output
/// activations and use binary16-rounded weights — the emulation point for
/// the paper's mixed-precision runs (master weights stay FP32).
class Layer {
 public:
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output; `train` enables dropout/batch-stat updates.
  virtual Tensor Forward(const Tensor& input, bool train) = 0;

  /// Propagates the loss gradient, accumulating parameter gradients.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Output shape for a given input shape (no compute) — used by model
  /// assembly checks.
  virtual TensorShape OutputShape(const TensorShape& input) const = 0;

  virtual std::vector<Param*> Params() { return {}; }

  /// Non-trainable state that must survive checkpoint/resume — e.g.
  /// batch-norm running statistics. Named like params but outside the
  /// optimizer and the gradient exchange; checkpoints store them as
  /// "__state__<name>" datasets.
  struct StateTensor {
    std::string name;
    Tensor* tensor;
  };
  virtual std::vector<StateTensor> StateTensors() { return {}; }

  const std::string& name() const { return name_; }

  void SetPrecision(Precision p) { precision_ = p; }
  Precision precision() const { return precision_; }

 protected:
  explicit Layer(std::string name) : name_(std::move(name)) {}

  /// Applies FP16 storage emulation to an activation if enabled.
  void MaybeQuantise(Tensor& t) const {
    if (precision_ == Precision::kFP16) RoundTripHalf(t);
  }

 private:
  std::string name_;
  Precision precision_ = Precision::kFP32;
};

using LayerPtr = std::unique_ptr<Layer>;

/// Collects Params from a list of layers (helper for containers/models).
inline void AppendParams(std::vector<Param*>& out, Layer& layer) {
  for (Param* p : layer.Params()) out.push_back(p);
}

/// Same for non-trainable state tensors.
inline void AppendStateTensors(std::vector<Layer::StateTensor>& out,
                               Layer& layer) {
  for (auto& s : layer.StateTensors()) out.push_back(std::move(s));
}

}  // namespace exaclim
