#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nn/conv_engine.hpp"
#include "nn/fusion.hpp"
#include "nn/layer.hpp"

namespace exaclim {

/// Linear chain of layers. Forward caches nothing itself (each layer
/// caches its own state); Backward runs the chain in reverse.
class Sequential : public Layer {
 public:
  explicit Sequential(std::string name) : Layer(std::move(name)) {}

  /// Appends a layer, returning a typed reference for later access.
  template <typename L, typename... Args>
  L& Emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void Append(LayerPtr layer) { layers_.push_back(std::move(layer)); }

  Tensor Forward(const Tensor& input, bool train) override {
    Tensor x = input;
    const bool fuse = ConvFusionEnabled();
    for (std::size_t i = 0; i < layers_.size();) {
      // Conv2d→BN(→ReLU) chains collapse into one fused pass (DESIGN
      // §15) — bit-identical output and backward caches, so Backward
      // below stays a plain reverse walk.
      const std::size_t fused = fuse ? FusableChainAt(layers_, i) : 0;
      if (fused >= 2) {
        x = ForwardFusedChain(layers_, i, fused, x, train);
        i += fused;
      } else {
        x = layers_[i]->Forward(x, train);
        ++i;
      }
    }
    return x;
  }

  Tensor Backward(const Tensor& grad_output) override {
    Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      g = (*it)->Backward(g);
      // This child's param grads are final for the step — the overlap
      // hook (DESIGN §14). No-op without a listener.
      NotifyGradsReady(**it);
    }
    return g;
  }

  TensorShape OutputShape(const TensorShape& input) const override {
    TensorShape s = input;
    for (const auto& layer : layers_) s = layer->OutputShape(s);
    return s;
  }

  std::vector<Param*> Params() override {
    std::vector<Param*> params;
    for (auto& layer : layers_) AppendParams(params, *layer);
    return params;
  }

  std::vector<StateTensor> StateTensors() override {
    std::vector<StateTensor> state;
    for (auto& layer : layers_) AppendStateTensors(state, *layer);
    return state;
  }

  /// Propagates precision to every contained layer.
  void SetPrecisionRecursive(Precision p) {
    SetPrecision(p);
    for (auto& layer : layers_) {
      if (auto* seq = dynamic_cast<Sequential*>(layer.get())) {
        seq->SetPrecisionRecursive(p);
      } else {
        layer->SetPrecision(p);
      }
    }
  }

  std::size_t size() const { return layers_.size(); }
  Layer& at(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace exaclim
