#include "hvd/exchanger.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <string>
#include <utility>

#include "comm/collectives.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/workspace.hpp"
#include "hvd/group.hpp"
#include "obs/obs.hpp"

namespace exaclim {

const char* ToString(ReduceTransport t) {
  switch (t) {
    case ReduceTransport::kMpiRing: return "mpi-ring";
    case ReduceTransport::kMpiTree: return "mpi-tree";
    case ReduceTransport::kHybrid: return "hybrid";
  }
  return "?";
}

ExchangerOptions ExchangerOptions::FromEnv(ExchangerOptions base) {
  if (const char* v = std::getenv("EXACLIM_OVERLAP")) {
    const std::string s(v);
    base.overlap = !(s.empty() || s == "off" || s == "0" || s == "false");
  }
  if (const char* v = std::getenv("EXACLIM_FUSION_BYTES")) {
    base.fusion_threshold_bytes = std::stoll(v);
  }
  if (const char* v = std::getenv("EXACLIM_WIRE")) {
    const std::string s(v);
    if (s == "fp16" || s == "half") {
      base.wire_precision = Precision::kFP16;
    } else if (s == "fp32") {
      base.wire_precision = Precision::kFP32;
    }
  }
  return base;
}

GradientExchanger::GradientExchanger(const ExchangerOptions& opts,
                                     std::uint64_t seed)
    : opts_(opts),
      control_(MakeControlPlane(opts.hierarchical_control,
                                opts.control_radix)),
      rng_(seed) {}

GradientExchanger::~GradientExchanger() {
  if (thread_started_) {
    {
      MutexLock lock(mu_);
      shutdown_ = true;
    }
    cv_.NotifyAll();
    exchange_thread_.join();
  }
}

ElasticWorld& GradientExchanger::Identity(Communicator& comm) {
  // Built once and reused — the previous implementation constructed a
  // fresh ElasticWorld (liveness state, member vector) on every call.
  if (identity_ == nullptr || identity_comm_ != &comm ||
      identity_->view().size() != comm.size()) {
    identity_ = std::make_unique<ElasticWorld>(  // lint:allow(hot-path-alloc)
        comm, ElasticOptions{});
    identity_comm_ = &comm;
  }
  EXACLIM_CHECK(identity_->view().size() == comm.size() &&
                    identity_->view().my_index == comm.rank(),
                "identity elastic view out of sync with communicator: view "
                    << identity_->view().size() << "/"
                    << identity_->view().my_index << " vs comm "
                    << comm.size() << "/" << comm.rank());
  return *identity_;
}

void GradientExchanger::MaybeChaosKill(Communicator& comm) {
  // Chaos site "elastic.exchange.kill.<rank>": this rank dies right
  // after an order was agreed, so its peers starve *inside* the
  // allreduce rounds — the mid-collective failure mode of DESIGN §13.
  // Checked exactly once per step in both the serialized and the
  // overlapped path, so schedules count occurrences identically.
  FaultInjector& injector = FaultInjector::Global();
  if (injector.ArmedSiteCount() > 0 &&
      injector.ShouldInject("elastic.exchange.kill." +
                            std::to_string(comm.rank()))) {
    comm.KillSelf();
    throw RankKilledError("rank " + std::to_string(comm.rank()) +
                          " killed mid-exchange by the chaos schedule");
  }
}

void GradientExchanger::Exchange(Communicator& comm,
                                 const std::vector<Param*>& params,
                                 std::span<const int> ready_order) {
  // The blocking path is the elastic path at generation 0 over the full
  // world with no deadline — one implementation, identical messages.
  const CollectiveResult result = TryExchange(
      comm, params, Identity(comm), Deadline(kNoTimeout), ready_order);
  EXACLIM_CHECK(result.ok(),
                "rank " << comm.rank()
                        << ": blocking Exchange cannot complete: rank "
                        << result.suspect_rank
                        << (result.status == CollectiveStatus::kPeerDead
                                ? " is dead"
                                : " is unresponsive"));
}

CollectiveResult GradientExchanger::ReduceFusedBucket(
    Communicator& comm, const std::vector<Param*>& params,
    ElasticWorld& elastic, const RankGroup& group, std::span<const int> ids,
    int bucket_index, const Deadline& deadline) {
  std::int64_t elems = 0;
  for (const int id : ids) {
    elems += params[static_cast<std::size_t>(id)]->grad.NumElements();
  }
  if (elems == 0) return {};  // identical on every rank: shapes agree

  // Pooled fusion buffer (per thread): the serialized path packs on the
  // trainer thread, the overlapped path on the exchange thread — each
  // gets its own slot, and buckets on one thread run strictly in order.
  std::span<float> fusion(
      AcquireScratch(ScratchSlot::kExchangeFusion,
                     static_cast<std::size_t>(elems)),
      static_cast<std::size_t>(elems));
  std::size_t off = 0;
  for (const int id : ids) {
    const Tensor& g = params[static_cast<std::size_t>(id)]->grad;
    std::copy(g.Data().begin(), g.Data().end(), fusion.begin() + off);
    off += static_cast<std::size_t>(g.NumElements());
  }

  const bool fp16 = opts_.wire_precision == Precision::kFP16;
  if (fp16) RoundTripHalf(fusion);
  const WireFormat wire = fp16 ? WireFormat::kFP16 : WireFormat::kFP32;

  const ElasticView& view = elastic.view();
  const int tag = elastic.GenTag(BucketTag(bucket_index));
  CollectiveResult reduce_result;
  switch (opts_.transport) {
    case ReduceTransport::kMpiRing:
      reduce_result = TryGroupAllreduceRing(comm, group, fusion, deadline,
                                            tag, DeadScan::kGroup, wire);
      break;
    case ReduceTransport::kMpiTree:
      reduce_result = TryGroupAllreduceTree(comm, group, fusion, deadline,
                                            tag, DeadScan::kGroup, wire);
      break;
    case ReduceTransport::kHybrid:
      // The hybrid scheme needs whole nodes; a shrunk view falls back
      // to the bandwidth-optimal group ring over the survivors.
      if (view.generation == 0 && view.size() == comm.size()) {
        reduce_result = TryHybridAllreduce(comm, fusion, opts_.hybrid,
                                           deadline, tag, wire);
      } else {
        reduce_result = TryGroupAllreduceRing(comm, group, fusion, deadline,
                                              tag, DeadScan::kGroup, wire);
      }
      break;
  }
  if (!reduce_result.ok()) return reduce_result;

  const float inv_world =
      opts_.average ? 1.0f / static_cast<float>(view.size()) : 1.0f;
  for (auto& v : fusion) v *= inv_world;
  if (fp16) RoundTripHalf(fusion);

  off = 0;
  for (const int id : ids) {
    Tensor& g = params[static_cast<std::size_t>(id)]->grad;
    std::copy(fusion.begin() + off,
              fusion.begin() + off + static_cast<std::size_t>(g.NumElements()),
              g.Data().begin());
    off += static_cast<std::size_t>(g.NumElements());
  }
  return {};
}

CollectiveResult GradientExchanger::TryExchange(
    Communicator& comm, const std::vector<Param*>& params,
    ElasticWorld& elastic, const Deadline& deadline,
    std::span<const int> ready_order) {
  EXACLIM_REENTRANCY_SCOPE(reentrancy_);
  const ElasticView& view = elastic.view();
  EXACLIM_CHECK(view.my_index >= 0,
                "rank " << comm.rank()
                        << " exchanging outside its elastic view");
  const auto n = static_cast<int>(params.size());
  last_tensors_ = n;
  last_fused_buffers_ = 0;
  if (n == 0) return {};

  // Local readiness order: either the backward emission order handed in
  // by the trainer (so serialized steps fuse the exact buckets the
  // overlapped path forms) or the index order. TensorFlow's dynamic
  // scheduler finishes backprop ops in a timing-dependent order,
  // different per rank — emulated by the optional shuffle, keyed by
  // (world rank, step); the step counter only advances on success, so a
  // post-rebuild retry replays the same shuffle.
  if (ready_order.empty()) {
    ready_.assign(static_cast<std::size_t>(n), 0);
    std::iota(ready_.begin(), ready_.end(), 0);
  } else {
    EXACLIM_CHECK(static_cast<int>(ready_order.size()) == n,
                  "ready_order covers " << ready_order.size() << " of " << n
                                        << " tensors");
    ready_.assign(ready_order.begin(), ready_order.end());
  }
  if (opts_.shuffle_ready_order) {
    Rng step_rng = rng_.Fork(
        static_cast<std::uint64_t>(comm.rank()) * 1000003u +
        static_cast<std::uint64_t>(step_));
    std::shuffle(ready_.begin(), ready_.end(), step_rng.engine());
  }

  const RankGroup group(view.members, comm.rank());
  {
    CollectiveResult r = control_->TryNegotiateOrder(
        comm, group, ready_, deadline, elastic.GenTag(0), &order_);
    if (!r.ok()) return r;
  }
  EXACLIM_CHECK(static_cast<int>(order_.size()) == n,
                "negotiated order has wrong tensor count");

  MaybeChaosKill(comm);

  const int bpe = BytesPerElement(opts_.wire_precision);

  EXACLIM_TRACE_SPAN("exchange.allreduce", "hvd");
  std::int64_t total_bytes = 0;
  std::size_t pos = 0;
  int buffer_index = 0;
  while (pos < order_.size()) {
    // Greedy fusion: take consecutive tensors from the agreed order until
    // the byte threshold is reached (always at least one).
    std::size_t end = pos;
    std::int64_t bytes = 0;
    while (end < order_.size()) {
      const std::int64_t t_bytes =
          params[static_cast<std::size_t>(order_[end])]->grad.NumElements() *
          bpe;
      if (end > pos && bytes + t_bytes > opts_.fusion_threshold_bytes) break;
      bytes += t_bytes;
      ++end;
    }

    CollectiveResult r = ReduceFusedBucket(
        comm, params, elastic, group,
        std::span<const int>(order_.data() + pos, end - pos), buffer_index,
        deadline);
    if (!r.ok()) return r;

    total_bytes += bytes;
    pos = end;
    ++buffer_index;
  }
  last_fused_buffers_ = buffer_index;
  if (auto* c = obs::CounterOrNull("exchange.bytes")) c->Add(total_bytes);
  if (auto* c = obs::CounterOrNull("exchange.buffers")) c->Add(buffer_index);
  ++step_;
  return {};
}

// ---- overlapped exchange ---------------------------------------------------

void GradientExchanger::StartExchangeThread() {
  if (thread_started_) return;
  exchange_thread_ = std::thread([this] { ExchangeThreadMain(); });
  thread_started_ = true;
}

void GradientExchanger::BeginStep(Communicator& comm,
                                  const std::vector<Param*>& params,
                                  ElasticWorld* elastic,
                                  const Deadline& deadline) {
  EXACLIM_CHECK(!step_open_, "BeginStep while a step is already open");
  ElasticWorld& world = elastic != nullptr ? *elastic : Identity(comm);
  EXACLIM_CHECK(world.view().my_index >= 0,
                "rank " << comm.rank()
                        << " exchanging outside its elastic view");
  StartExchangeThread();
  {
    MutexLock lock(mu_);
    EXACLIM_CHECK(!step_active_, "previous overlapped step still draining");
    ol_comm_ = &comm;
    ol_params_ = &params;
    ol_elastic_ = &world;
    ol_deadline_ = deadline;
    sched_order_.assign(params.size(), -1);
    sched_count_ = 0;
    buckets_.assign(params.size(), Bucket{});  // never more buckets than tensors
    buckets_closed_ = 0;
    pend_begin_ = 0;
    pend_bytes_ = 0;
    pend_elems_ = 0;
    emit_done_ = false;
    ol_failed_ = false;
    ol_result_ = {};
    ol_exception_ = nullptr;
    ol_bytes_ = 0;
    ol_buffers_ = 0;
    step_active_ = true;
  }
  cv_.NotifyAll();
  step_open_ = true;
}

void GradientExchanger::CloseBucketLocked() {
  Bucket& b = buckets_[static_cast<std::size_t>(buckets_closed_)];
  b.begin = pend_begin_;
  b.end = sched_count_;
  b.elems = pend_elems_;
  b.bytes = pend_bytes_;
  ++buckets_closed_;
  pend_begin_ = sched_count_;
  pend_bytes_ = 0;
  pend_elems_ = 0;
}

void GradientExchanger::NotifyGradReady(int param_index) {
  EXACLIM_CHECK(step_open_, "NotifyGradReady outside BeginStep/WaitAll");
  const std::int64_t t_elems =
      (*ol_params_)[static_cast<std::size_t>(param_index)]
          ->grad.NumElements();
  const std::int64_t t_bytes =
      t_elems * BytesPerElement(opts_.wire_precision);
  bool closed = false;
  {
    MutexLock lock(mu_);
    // Same greedy rule as the serialized fusion loop: a bucket always
    // takes at least one tensor, and closes when the next would push it
    // past the threshold — identical bucket composition by construction.
    if (sched_count_ > pend_begin_ &&
        pend_bytes_ + t_bytes > opts_.fusion_threshold_bytes) {
      CloseBucketLocked();
      closed = true;
    }
    sched_order_[static_cast<std::size_t>(sched_count_)] = param_index;
    ++sched_count_;
    pend_bytes_ += t_bytes;
    pend_elems_ += t_elems;
  }
  if (closed) cv_.NotifyAll();
}

CollectiveResult GradientExchanger::WaitAll() {
  EXACLIM_CHECK(step_open_, "WaitAll without BeginStep");
  {
    MutexLock lock(mu_);
    if (sched_count_ > pend_begin_) CloseBucketLocked();
    emit_done_ = true;
  }
  cv_.NotifyAll();
  {
    MutexLock lock(mu_);
    while (step_active_) cv_.Wait(lock);
  }
  // The exchange thread cleared step_active_ under mu_ after its last
  // write to the result fields; observing the clear under mu_ orders
  // every read below after those writes.
  step_open_ = false;
  last_tensors_ = sched_count_;
  last_fused_buffers_ = ol_buffers_;
  if (ol_exception_ != nullptr) {
    const std::exception_ptr e = ol_exception_;
    ol_exception_ = nullptr;
    std::rethrow_exception(e);
  }
  if (!ol_result_.ok()) return ol_result_;
  if (auto* c = obs::CounterOrNull("exchange.bytes")) c->Add(ol_bytes_);
  if (auto* c = obs::CounterOrNull("exchange.buffers")) c->Add(ol_buffers_);
  ++step_;
  return {};
}

void GradientExchanger::ExchangeThreadMain() {
  for (;;) {
    {
      MutexLock lock(mu_);
      while (!shutdown_ && !step_active_) cv_.Wait(lock);
      if (shutdown_) return;
    }
    RunOverlapStep();
    {
      MutexLock lock(mu_);
      step_active_ = false;
    }
    cv_.NotifyAll();
  }
}

void GradientExchanger::RunOverlapStep() {
  Communicator& comm = *ol_comm_;
  ElasticWorld& elastic = *ol_elastic_;
  const ElasticView& view = elastic.view();
  const RankGroup group(view.members, comm.rank());
  int next_bucket = 0;
  bool chaos_checked = false;
  for (;;) {
    Bucket b;
    {
      MutexLock lock(mu_);
      while (buckets_closed_ <= next_bucket && !emit_done_) cv_.Wait(lock);
      if (next_bucket >= buckets_closed_) break;  // drained & emission done
      b = buckets_[static_cast<std::size_t>(next_bucket)];
    }
    // After the first failure the step is doomed: drain the remaining
    // buckets without touching the communicator so WaitAll can return
    // the first result and the trainer can roll the step back.
    if (!ol_failed_) {
      try {
        EXACLIM_TRACE_SPAN("exchange.bucket", "hvd");
        // Entries [b.begin, b.end) were written under mu_ before the
        // bucket close we just observed under mu_ — safe to read.
        const std::span<const int> ids(
            sched_order_.data() + b.begin,
            static_cast<std::size_t>(b.end - b.begin));
        // Per-bucket negotiation reuses the control tag window: safe
        // because buckets run strictly sequentially on this thread and
        // every peer orders its buckets identically (see
        // hvd/control_plane.hpp).
        CollectiveResult r = control_->TryNegotiateOrder(
            comm, group, ids, ol_deadline_, elastic.GenTag(0), &ol_order_);
        if (r.ok()) {
          EXACLIM_CHECK(ol_order_.size() == ids.size(),
                        "negotiated bucket order has wrong tensor count");
          if (!chaos_checked) {
            chaos_checked = true;
            MaybeChaosKill(comm);
          }
          r = ReduceFusedBucket(comm, *ol_params_, elastic, group, ol_order_,
                                next_bucket, ol_deadline_);
        }
        if (!r.ok()) {
          ol_result_ = r;
          ol_failed_ = true;
        } else {
          ol_bytes_ += b.bytes;
          ++ol_buffers_;
        }
      } catch (...) {
        ol_exception_ = std::current_exception();
        ol_failed_ = true;
      }
    }
    ++next_bucket;
  }
}

// ---- GradReadyRecorder -----------------------------------------------------

void GradReadyRecorder::Bind(const std::vector<Param*>& params) {
  if (params_ == &params && index_of_.size() == params.size()) return;
  params_ = &params;
  index_of_.clear();
  layer_indices_.clear();
  index_of_.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    index_of_.emplace(params[i], static_cast<int>(i));
  }
  seen_.assign(params.size(), 0);
  order_.assign(params.size(), -1);
  count_ = 0;
  sink_ = nullptr;
}

void GradReadyRecorder::BeginStep(GradientExchanger* sink) {
  EXACLIM_CHECK(params_ != nullptr, "GradReadyRecorder used before Bind");
  seen_.assign(params_->size(), 0);
  order_.assign(params_->size(), -1);
  count_ = 0;
  sink_ = sink;
}

void GradReadyRecorder::OnGradsReady(Layer& layer) {
  auto it = layer_indices_.find(&layer);
  if (it == layer_indices_.end()) {
    // First sighting of this layer: snapshot its param indices
    // (Layer::Params allocates a fresh vector — once per layer, after
    // which steady-state notifications are heap-free).
    const std::vector<Param*> ps = layer.Params();
    std::vector<int> ids(ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const auto idx = index_of_.find(ps[i]);
      EXACLIM_CHECK(idx != index_of_.end(),
                    "layer '" << layer.name()
                              << "' announced a param outside the bound "
                                 "param list");
      ids[i] = idx->second;
    }
    it = layer_indices_.emplace(&layer, std::move(ids)).first;
  }
  for (const int id : it->second) Emit(id);
}

void GradReadyRecorder::FlushRemaining() {
  EXACLIM_CHECK(params_ != nullptr, "GradReadyRecorder used before Bind");
  const int n = static_cast<int>(params_->size());
  for (int i = 0; i < n; ++i) Emit(i);
}

void GradReadyRecorder::Emit(int param_index) {
  if (seen_[static_cast<std::size_t>(param_index)] != 0) return;
  seen_[static_cast<std::size_t>(param_index)] = 1;
  order_[count_] = param_index;
  ++count_;
  if (sink_ != nullptr) sink_->NotifyGradReady(param_index);
}

}  // namespace exaclim
