#include "hvd/exchanger.hpp"

#include <algorithm>
#include <numeric>
#include <string>

#include "comm/collectives.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "hvd/group.hpp"
#include "obs/obs.hpp"

namespace exaclim {

const char* ToString(ReduceTransport t) {
  switch (t) {
    case ReduceTransport::kMpiRing: return "mpi-ring";
    case ReduceTransport::kMpiTree: return "mpi-tree";
    case ReduceTransport::kHybrid: return "hybrid";
  }
  return "?";
}

GradientExchanger::GradientExchanger(const ExchangerOptions& opts,
                                     std::uint64_t seed)
    : opts_(opts),
      control_(MakeControlPlane(opts.hierarchical_control,
                                opts.control_radix)),
      rng_(seed) {}

void GradientExchanger::Exchange(Communicator& comm,
                                 const std::vector<Param*>& params) {
  // The blocking path is the elastic path at generation 0 over the full
  // world with no deadline — one implementation, identical messages.
  ElasticWorld identity(comm, ElasticOptions{});
  const CollectiveResult result =
      TryExchange(comm, params, identity, Deadline(kNoTimeout));
  EXACLIM_CHECK(result.ok(),
                "rank " << comm.rank()
                        << ": blocking Exchange cannot complete: rank "
                        << result.suspect_rank
                        << (result.status == CollectiveStatus::kPeerDead
                                ? " is dead"
                                : " is unresponsive"));
}

CollectiveResult GradientExchanger::TryExchange(
    Communicator& comm, const std::vector<Param*>& params,
    ElasticWorld& elastic, const Deadline& deadline) {
  EXACLIM_REENTRANCY_SCOPE(reentrancy_);
  const ElasticView& view = elastic.view();
  EXACLIM_CHECK(view.my_index >= 0,
                "rank " << comm.rank()
                        << " exchanging outside its elastic view");
  const auto n = static_cast<int>(params.size());
  last_tensors_ = n;
  last_fused_buffers_ = 0;
  if (n == 0) return {};

  // Local readiness order: TensorFlow's dynamic scheduler finishes
  // backprop ops in a timing-dependent order, different per rank. Keyed
  // by (world rank, step); the step counter only advances on success, so
  // a post-rebuild retry replays the same shuffle.
  std::vector<int> ready(static_cast<std::size_t>(n));
  std::iota(ready.begin(), ready.end(), 0);
  if (opts_.shuffle_ready_order) {
    Rng step_rng = rng_.Fork(
        static_cast<std::uint64_t>(comm.rank()) * 1000003u +
        static_cast<std::uint64_t>(step_));
    std::shuffle(ready.begin(), ready.end(), step_rng.engine());
  }

  const RankGroup group(view.members, comm.rank());
  std::vector<int> order;
  {
    CollectiveResult r = control_->TryNegotiateOrder(
        comm, group, ready, deadline, elastic.GenTag(0), &order);
    if (!r.ok()) return r;
  }
  EXACLIM_CHECK(static_cast<int>(order.size()) == n,
                "negotiated order has wrong tensor count");

  // Chaos site "elastic.exchange.kill.<rank>": this rank dies right
  // after the order was agreed, so its peers starve *inside* the
  // allreduce rounds — the mid-collective failure mode of DESIGN §13.
  {
    FaultInjector& injector = FaultInjector::Global();
    if (injector.ArmedSiteCount() > 0 &&
        injector.ShouldInject("elastic.exchange.kill." +
                              std::to_string(comm.rank()))) {
      comm.KillSelf();
      throw RankKilledError("rank " + std::to_string(comm.rank()) +
                            " killed mid-exchange by the chaos schedule");
    }
  }

  const float inv_world =
      opts_.average ? 1.0f / static_cast<float>(view.size()) : 1.0f;
  const int bpe = BytesPerElement(opts_.wire_precision);

  EXACLIM_TRACE_SPAN("exchange.allreduce", "hvd");
  std::int64_t total_bytes = 0;
  std::size_t pos = 0;
  int buffer_index = 0;
  std::vector<float> fusion;
  while (pos < order.size()) {
    // Greedy fusion: take consecutive tensors from the agreed order until
    // the byte threshold is reached (always at least one).
    std::size_t end = pos;
    std::int64_t bytes = 0;
    std::int64_t elems = 0;
    while (end < order.size()) {
      const std::int64_t t_bytes =
          params[static_cast<std::size_t>(order[end])]->grad.NumElements() *
          bpe;
      if (end > pos && bytes + t_bytes > opts_.fusion_threshold_bytes) break;
      bytes += t_bytes;
      elems +=
          params[static_cast<std::size_t>(order[end])]->grad.NumElements();
      ++end;
    }

    fusion.resize(static_cast<std::size_t>(elems));
    std::size_t off = 0;
    for (std::size_t i = pos; i < end; ++i) {
      const Tensor& g = params[static_cast<std::size_t>(order[i])]->grad;
      std::copy(g.Data().begin(), g.Data().end(), fusion.begin() + off);
      off += static_cast<std::size_t>(g.NumElements());
    }

    if (opts_.wire_precision == Precision::kFP16) RoundTripHalf(fusion);

    const int tag = elastic.GenTag(20000 + buffer_index * 700);
    CollectiveResult reduce_result;
    switch (opts_.transport) {
      case ReduceTransport::kMpiRing:
        reduce_result =
            TryGroupAllreduceRing(comm, group, fusion, deadline, tag);
        break;
      case ReduceTransport::kMpiTree:
        reduce_result =
            TryGroupAllreduceTree(comm, group, fusion, deadline, tag);
        break;
      case ReduceTransport::kHybrid:
        // The hybrid scheme needs whole nodes; a shrunk view falls back
        // to the bandwidth-optimal group ring over the survivors.
        if (view.generation == 0 && view.size() == comm.size()) {
          reduce_result = TryHybridAllreduce(comm, fusion, opts_.hybrid,
                                             deadline, tag);
        } else {
          reduce_result =
              TryGroupAllreduceRing(comm, group, fusion, deadline, tag);
        }
        break;
    }
    if (!reduce_result.ok()) return reduce_result;

    for (auto& v : fusion) v *= inv_world;
    if (opts_.wire_precision == Precision::kFP16) RoundTripHalf(fusion);

    off = 0;
    for (std::size_t i = pos; i < end; ++i) {
      Tensor& g = params[static_cast<std::size_t>(order[i])]->grad;
      std::copy(fusion.begin() + off,
                fusion.begin() + off +
                    static_cast<std::size_t>(g.NumElements()),
                g.Data().begin());
      off += static_cast<std::size_t>(g.NumElements());
    }

    total_bytes += bytes;
    pos = end;
    ++buffer_index;
  }
  last_fused_buffers_ = buffer_index;
  if (auto* c = obs::CounterOrNull("exchange.bytes")) c->Add(total_bytes);
  if (auto* c = obs::CounterOrNull("exchange.buffers")) c->Add(buffer_index);
  ++step_;
  return {};
}

}  // namespace exaclim
