#include "hvd/control_plane.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace exaclim {
namespace {

constexpr int kTagReady = 9100;
constexpr int kTagOrder = 9101;

// Debug-build postcondition shared by both control planes: the agreed
// order must be a permutation of this rank's ready set, otherwise ranks
// would launch collectives for mismatched tensors and deadlock.
void DCheckIsPermutation([[maybe_unused]] std::span<const int> ready_ids,
                         [[maybe_unused]] std::span<const int> order) {
#if EXACLIM_DCHECK_ENABLED
  std::vector<int> a(ready_ids.begin(), ready_ids.end());
  std::vector<int> b(order.begin(), order.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXACLIM_DCHECK(a == b,
                 "negotiated order is not a permutation of the ready set");
#endif
}

}  // namespace

// ---------------------------------------------------- FlatControlPlane --

std::vector<int> FlatControlPlane::NegotiateOrder(
    Communicator& comm, std::span<const int> ready_ids) {
  const int p = comm.size();
  const auto n = static_cast<std::int64_t>(ready_ids.size());
  if (p == 1) return {ready_ids.begin(), ready_ids.end()};
  // Readiness latency: how long this rank spends agreeing on the global
  // collective order — the Sec V-A3 bottleneck metric.
  obs::ScopedTimer timer("control.negotiate", "hvd", nullptr,
                         obs::HistogramOrNull("control.negotiate_s"));

  if (comm.rank() != 0) {
    // Stream one readiness message per tensor to the controller, in this
    // rank's local scheduling order.
    for (const int id : ready_ids) comm.SendValue(0, kTagReady, id);
    std::vector<int> order(static_cast<std::size_t>(n));
    comm.RecvT(0, kTagOrder, std::span<int>(order));  // fault: blocking-ok
    return order;
  }

  // Controller: a tensor enters the order once every rank reported it.
  std::unordered_map<int, int> counts;
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  for (const int id : ready_ids) counts[id] = 1;  // own readiness
  std::int64_t expected = (p - 1) * n;
  while (expected-- > 0) {
    const int id =
        comm.RecvValue<int>(kAnySource, kTagReady);  // fault: blocking-ok
    if (++counts[id] == p) order.push_back(id);
  }
  EXACLIM_CHECK(static_cast<std::int64_t>(order.size()) == n,
                "controller: not all tensors reached full readiness");
  for (int r = 1; r < p; ++r) {
    comm.SendT(r, kTagOrder, std::span<const int>(order));
  }
  DCheckIsPermutation(ready_ids, order);
  return order;
}

// -------------------------------------------- HierarchicalControlPlane --

HierarchicalControlPlane::HierarchicalControlPlane(int radix)
    : radix_(radix) {
  EXACLIM_CHECK(radix_ >= 1, "radix must be >= 1");
}

std::vector<int> HierarchicalControlPlane::Children(int rank, int radix,
                                                    int world_size) {
  std::vector<int> children;
  for (int c = rank * radix + 1;
       c <= rank * radix + radix && c < world_size; ++c) {
    children.push_back(c);
  }
  return children;
}

std::vector<int> HierarchicalControlPlane::NegotiateOrder(
    Communicator& comm, std::span<const int> ready_ids) {
  const int p = comm.size();
  const auto n = static_cast<std::int64_t>(ready_ids.size());
  if (p == 1) return {ready_ids.begin(), ready_ids.end()};
  obs::ScopedTimer timer("control.negotiate", "hvd", nullptr,
                         obs::HistogramOrNull("control.negotiate_s"));

  const int rank = comm.rank();
  const auto children = Children(rank, radix_, p);
  const int needed = static_cast<int>(children.size()) + 1;

  // Upward aggregation: report a tensor to the parent only once the whole
  // subtree is ready for it. Rank 0 appends completed tensors to the
  // order instead.
  std::unordered_map<int, int> counts;
  std::vector<int> order;
  auto on_complete = [&](int id) {
    if (rank == 0) {
      order.push_back(id);
    } else {
      comm.SendValue(Parent(rank, radix_), kTagReady, id);
    }
  };
  for (const int id : ready_ids) {
    if (++counts[id] == needed) on_complete(id);
  }
  std::int64_t expected = static_cast<std::int64_t>(children.size()) * n;
  while (expected-- > 0) {
    const int id =
        comm.RecvValue<int>(kAnySource, kTagReady);  // fault: blocking-ok
    if (++counts[id] == needed) on_complete(id);
  }

  // Downward recursive broadcast of the agreed order.
  if (rank == 0) {
    EXACLIM_CHECK(static_cast<std::int64_t>(order.size()) == n,
                  "root: incomplete readiness aggregation");
  } else {
    order.resize(static_cast<std::size_t>(n));
    comm.RecvT(Parent(rank, radix_),  // fault: blocking-ok
               kTagOrder, std::span<int>(order));
  }
  for (const int child : children) {
    comm.SendT(child, kTagOrder, std::span<const int>(order));
  }
  DCheckIsPermutation(ready_ids, order);
  return order;
}

// ---------------------------------------------------------------- Load --

ControlPlaneLoad FlatControlLoad(int world_size, int num_tensors) {
  return {.controller_recv = static_cast<std::int64_t>(world_size - 1) *
                             num_tensors,
          .controller_send = world_size - 1};
}

ControlPlaneLoad HierarchicalControlLoad(int world_size, int radix,
                                         int num_tensors) {
  const auto children = static_cast<std::int64_t>(
      HierarchicalControlPlane::Children(0, radix, world_size).size());
  return {.controller_recv = children * num_tensors,
          .controller_send = children};
}

std::unique_ptr<ControlPlane> MakeControlPlane(bool hierarchical, int radix) {
  if (hierarchical) {
    return std::make_unique<HierarchicalControlPlane>(radix);
  }
  return std::make_unique<FlatControlPlane>();
}

}  // namespace exaclim
