#include "hvd/control_plane.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <unordered_map>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace exaclim {
namespace {

constexpr int kTagReady = 9100;
constexpr int kTagOrder = 9101;

// Debug-build postcondition shared by both control planes: the agreed
// order must be a permutation of this rank's ready set, otherwise ranks
// would launch collectives for mismatched tensors and deadlock.
void DCheckIsPermutation([[maybe_unused]] std::span<const int> ready_ids,
                         [[maybe_unused]] std::span<const int> order) {
#if EXACLIM_DCHECK_ENABLED
  std::vector<int> a(ready_ids.begin(), ready_ids.end());
  std::vector<int> b(order.begin(), order.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXACLIM_DCHECK(a == b,
                 "negotiated order is not a permutation of the ready set");
#endif
}

/// Failure result for a control-plane receive. With kAnySource there is
/// no single waited-on rank, so the dead-member scan does the naming.
CollectiveResult PlaneFail(Communicator& comm, const RankGroup& group,
                           int waited_world_rank, RecvStatus status) {
  CollectiveResult result;
  result.suspect_rank = waited_world_rank;
  result.status = status == RecvStatus::kPeerDead
                      ? CollectiveStatus::kPeerDead
                      : CollectiveStatus::kTimeout;
  if (result.status == CollectiveStatus::kTimeout) {
    for (int i = 0; i < group.size(); ++i) {
      if (comm.PeerDead(group.WorldRank(i))) {
        result.status = CollectiveStatus::kPeerDead;
        result.suspect_rank = group.WorldRank(i);
        return result;
      }
    }
    for (int r = 0; r < comm.size(); ++r) {
      if (comm.PeerDead(r)) {
        result.status = CollectiveStatus::kPeerDead;
        result.suspect_rank = r;
        break;
      }
    }
  }
  return result;
}

/// How often a waiting rank re-checks member liveness. Scoped to the
/// negotiation group (elastic generations run with ex-members dead in
/// the world); keeps controller/worker failure detection at one slice
/// instead of the whole deadline — the kAnySource readiness wait has no
/// single source whose death could wake it early.
constexpr double kDeadScanSlice = 0.025;

/// Receive from `src` (may be kAnySource) in short slices, scanning the
/// group for dead members in between. On a death, returns kPeerDead
/// with `src` naming the dead member.
RecvResult RecvScanningForDeadMember(Communicator& comm,
                                     const RankGroup& group, int src,
                                     int tag, const Deadline& deadline) {
  for (;;) {
    const double remaining = deadline.Remaining();
    const double slice = remaining == kNoTimeout
                             ? kDeadScanSlice
                             : std::min(kDeadScanSlice, remaining);
    RecvResult r = comm.RecvTimeout(src, tag, slice);
    if (r.status == RecvStatus::kPeerDead) {
      r.src = src;
      return r;
    }
    if (r.status == RecvStatus::kOk) return r;
    for (int i = 0; i < group.size(); ++i) {
      if (comm.PeerDead(group.WorldRank(i))) {
        r.status = RecvStatus::kPeerDead;
        r.src = group.WorldRank(i);
        return r;
      }
    }
    if (deadline.Expired()) return r;
  }
}

}  // namespace

std::vector<int> ControlPlane::NegotiateOrder(Communicator& comm,
                                              std::span<const int> ready_ids) {
  std::vector<int> world(static_cast<std::size_t>(comm.size()));
  std::iota(world.begin(), world.end(), 0);
  const RankGroup group(world, comm.rank());
  std::vector<int> order;
  const CollectiveResult result = TryNegotiateOrder(
      comm, group, ready_ids, Deadline(kNoTimeout), /*tag_salt=*/0, &order);
  EXACLIM_CHECK(result.ok(),
                "rank " << comm.rank()
                        << ": blocking NegotiateOrder cannot complete: rank "
                        << result.suspect_rank
                        << (result.status == CollectiveStatus::kPeerDead
                                ? " is dead"
                                : " is unresponsive"));
  return order;
}

// ---------------------------------------------------- FlatControlPlane --

CollectiveResult FlatControlPlane::TryNegotiateOrder(
    Communicator& comm, const RankGroup& group,
    std::span<const int> ready_ids, const Deadline& deadline, int tag_salt,
    std::vector<int>* order) {
  const int p = group.size();
  const auto n = static_cast<std::int64_t>(ready_ids.size());
  order->assign(ready_ids.begin(), ready_ids.end());
  if (p == 1) return {};
  // Readiness latency: how long this rank spends agreeing on the global
  // collective order — the Sec V-A3 bottleneck metric.
  obs::ScopedTimer timer("control.negotiate", "hvd", nullptr,
                         obs::HistogramOrNull("control.negotiate_s"));
  const int tag_ready = kTagReady + tag_salt;
  const int tag_order = kTagOrder + tag_salt;
  const int controller = group.WorldRank(0);

  if (group.my_index() != 0) {
    // Stream one readiness message per tensor to the controller, in this
    // rank's local scheduling order.
    for (const int id : ready_ids) comm.SendValue(controller, tag_ready, id);
    RecvResult r = RecvScanningForDeadMember(comm, group, controller,
                                             tag_order, deadline);
    if (!r.ok()) {
      return PlaneFail(
          comm, group,
          r.status == RecvStatus::kPeerDead ? r.src : controller, r.status);
    }
    EXACLIM_CHECK(r.payload.size() ==
                      static_cast<std::size_t>(n) * sizeof(int),
                  "negotiated order has wrong wire size");
    order->resize(static_cast<std::size_t>(n));
    std::memcpy(order->data(), r.payload.data(), r.payload.size());
    DCheckIsPermutation(ready_ids, *order);
    return {};
  }

  // Controller: a tensor enters the order once every member reported it.
  std::unordered_map<int, int> counts;
  order->clear();
  order->reserve(static_cast<std::size_t>(n));
  for (const int id : ready_ids) counts[id] = 1;  // own readiness
  std::int64_t expected = static_cast<std::int64_t>(p - 1) * n;
  while (expected-- > 0) {
    const RecvResult r = RecvScanningForDeadMember(comm, group, kAnySource,
                                                   tag_ready, deadline);
    if (!r.ok()) {
      return PlaneFail(comm, group,
                       r.status == RecvStatus::kPeerDead ? r.src : -1,
                       r.status);
    }
    EXACLIM_CHECK(r.payload.size() == sizeof(int),
                  "readiness report has wrong wire size");
    int id = 0;
    std::memcpy(&id, r.payload.data(), sizeof(int));
    if (++counts[id] == p) order->push_back(id);
  }
  EXACLIM_CHECK(static_cast<std::int64_t>(order->size()) == n,
                "controller: not all tensors reached full readiness");
  for (int i = 1; i < p; ++i) {
    comm.SendT(group.WorldRank(i), tag_order, std::span<const int>(*order));
  }
  DCheckIsPermutation(ready_ids, *order);
  return {};
}

// -------------------------------------------- HierarchicalControlPlane --

HierarchicalControlPlane::HierarchicalControlPlane(int radix)
    : radix_(radix) {
  EXACLIM_CHECK(radix_ >= 1, "radix must be >= 1");
}

CollectiveResult HierarchicalControlPlane::TryNegotiateOrder(
    Communicator& comm, const RankGroup& group,
    std::span<const int> ready_ids, const Deadline& deadline, int tag_salt,
    std::vector<int>* order) {
  const int p = group.size();
  const auto n = static_cast<std::int64_t>(ready_ids.size());
  order->assign(ready_ids.begin(), ready_ids.end());
  if (p == 1) return {};
  obs::ScopedTimer timer("control.negotiate", "hvd", nullptr,
                         obs::HistogramOrNull("control.negotiate_s"));
  const int tag_ready = kTagReady + tag_salt;
  const int tag_order = kTagOrder + tag_salt;

  const int index = group.my_index();
  const auto children = TreeChildren(index, radix_, p);
  const int needed = static_cast<int>(children.size()) + 1;

  // Upward aggregation: report a tensor to the parent only once the whole
  // subtree is ready for it. The root appends completed tensors to the
  // order instead.
  std::unordered_map<int, int> counts;
  order->clear();
  auto on_complete = [&](int id) {
    if (index == 0) {
      order->push_back(id);
    } else {
      comm.SendValue(group.WorldRank(TreeParent(index, radix_)), tag_ready,
                     id);
    }
  };
  for (const int id : ready_ids) {
    if (++counts[id] == needed) on_complete(id);
  }
  std::int64_t expected = static_cast<std::int64_t>(children.size()) * n;
  while (expected-- > 0) {
    const RecvResult r = RecvScanningForDeadMember(comm, group, kAnySource,
                                                   tag_ready, deadline);
    if (!r.ok()) {
      return PlaneFail(comm, group,
                       r.status == RecvStatus::kPeerDead ? r.src : -1,
                       r.status);
    }
    EXACLIM_CHECK(r.payload.size() == sizeof(int),
                  "readiness report has wrong wire size");
    int id = 0;
    std::memcpy(&id, r.payload.data(), sizeof(int));
    if (++counts[id] == needed) on_complete(id);
  }

  // Downward recursive broadcast of the agreed order.
  if (index == 0) {
    EXACLIM_CHECK(static_cast<std::int64_t>(order->size()) == n,
                  "root: incomplete readiness aggregation");
  } else {
    const int parent = group.WorldRank(TreeParent(index, radix_));
    RecvResult r =
        RecvScanningForDeadMember(comm, group, parent, tag_order, deadline);
    if (!r.ok()) {
      return PlaneFail(comm, group,
                       r.status == RecvStatus::kPeerDead ? r.src : parent,
                       r.status);
    }
    EXACLIM_CHECK(r.payload.size() ==
                      static_cast<std::size_t>(n) * sizeof(int),
                  "negotiated order has wrong wire size");
    order->resize(static_cast<std::size_t>(n));
    std::memcpy(order->data(), r.payload.data(), r.payload.size());
  }
  for (const int child : children) {
    comm.SendT(group.WorldRank(child), tag_order,
               std::span<const int>(*order));
  }
  DCheckIsPermutation(ready_ids, *order);
  return {};
}

// ---------------------------------------------------------------- Load --

ControlPlaneLoad FlatControlLoad(int world_size, int num_tensors) {
  return {.controller_recv = static_cast<std::int64_t>(world_size - 1) *
                             num_tensors,
          .controller_send = world_size - 1};
}

ControlPlaneLoad HierarchicalControlLoad(int world_size, int radix,
                                         int num_tensors) {
  const auto children = static_cast<std::int64_t>(
      HierarchicalControlPlane::Children(0, radix, world_size).size());
  return {.controller_recv = children * num_tensors,
          .controller_send = children};
}

std::unique_ptr<ControlPlane> MakeControlPlane(bool hierarchical, int radix) {
  if (hierarchical) {
    return std::make_unique<HierarchicalControlPlane>(radix);
  }
  return std::make_unique<FlatControlPlane>();
}

}  // namespace exaclim
