#include "hvd/group.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/workspace.hpp"
#include "tensor/cast.hpp"

namespace exaclim {
namespace {

void AddInto(std::span<float> acc, std::span<const float> other) {
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += other[i];
}

/// Failure result for a group receive that did not complete; a timeout
/// on a live neighbour is usually a cascade from a dead rank elsewhere
/// (possibly outside this group, in another phase of the hybrid scheme),
/// so scan the whole world for the culprit.
CollectiveResult GroupFail(Communicator& comm, int waited_world_rank,
                           RecvStatus status) {
  CollectiveResult result;
  result.suspect_rank = waited_world_rank;
  result.status = status == RecvStatus::kPeerDead
                      ? CollectiveStatus::kPeerDead
                      : CollectiveStatus::kTimeout;
  if (result.status == CollectiveStatus::kTimeout) {
    for (int r = 0; r < comm.size(); ++r) {
      if (comm.PeerDead(r)) {
        result.status = CollectiveStatus::kPeerDead;
        result.suspect_rank = r;
        break;
      }
    }
  }
  return result;
}

/// How often a waiting member re-checks group liveness. The scan is
/// scoped to the group — not the world — because elastic generations
/// deliberately run group collectives while ex-members stay dead in the
/// world; only a dead *member* dooms this collective. A death outside
/// the group (another phase of the hybrid scheme) is still caught at
/// the deadline by GroupFail's world scan.
constexpr double kDeadScanSlice = 0.025;

/// Receive from `src` in short slices, scanning the group for dead
/// members in between, so a member death anywhere in the group fails
/// the collective within one slice even when this rank's wait edge is
/// with a live member that is itself stuck on the dead one.
RecvResult RecvScanningForDeadMember(Communicator& comm,
                                     const RankGroup& group, int src,
                                     int tag, const Deadline& deadline,
                                     DeadScan scan) {
  for (;;) {
    const double remaining = deadline.Remaining();
    const double slice = remaining == kNoTimeout
                             ? kDeadScanSlice
                             : std::min(kDeadScanSlice, remaining);
    RecvResult r = comm.RecvTimeout(src, tag, slice);
    if (r.status == RecvStatus::kPeerDead) {
      r.src = src;
      return r;
    }
    if (r.status == RecvStatus::kOk) return r;
    if (scan == DeadScan::kWorld) {
      for (int rank = 0; rank < comm.size(); ++rank) {
        if (comm.PeerDead(rank)) {
          r.status = RecvStatus::kPeerDead;
          r.src = rank;
          return r;
        }
      }
    } else {
      for (int i = 0; i < group.size(); ++i) {
        if (comm.PeerDead(group.WorldRank(i))) {
          r.status = RecvStatus::kPeerDead;
          r.src = group.WorldRank(i);
          return r;
        }
      }
    }
    if (deadline.Expired()) return r;
  }
}

CollectiveResult TimedRecvFloats(Communicator& comm, const RankGroup& group,
                                 int src, int tag, std::span<float> data,
                                 const Deadline& deadline, DeadScan scan,
                                 WireFormat wire) {
  RecvResult r =
      RecvScanningForDeadMember(comm, group, src, tag, deadline, scan);
  if (!r.ok()) {
    return GroupFail(comm, r.status == RecvStatus::kPeerDead ? r.src : src,
                     r.status);
  }
  EXACLIM_CHECK(r.payload.size() == WireBytes(data.size(), wire),
                "group recv size mismatch: got "
                    << r.payload.size() << " expected "
                    << WireBytes(data.size(), wire) << " (tag " << tag
                    << ", wire " << ToString(wire) << ")");
  DecodeFloats(r.payload, data, wire);
  return {};
}

void Require(Communicator& comm, const char* what,
             const CollectiveResult& result) {
  EXACLIM_CHECK(result.ok(),
                "rank " << comm.rank() << ": blocking " << what
                        << " cannot complete: rank " << result.suspect_rank
                        << (result.status == CollectiveStatus::kPeerDead
                                ? " is dead"
                                : " is unresponsive"));
}

}  // namespace

RankGroup::RankGroup(std::span<const int> ranks, int my_world_rank)
    : ranks_(ranks.begin(), ranks.end()), my_index_(-1) {
  EXACLIM_CHECK(!ranks_.empty(), "empty rank group");
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    if (ranks_[i] == my_world_rank) {
      my_index_ = static_cast<int>(i);
    }
  }
  EXACLIM_CHECK(my_index_ >= 0,
                "rank " << my_world_rank << " not a member of the group");
}

CollectiveResult TryGroupBroadcast(Communicator& comm, const RankGroup& group,
                                   int root_index, std::span<float> data,
                                   const Deadline& deadline, int tag,
                                   DeadScan scan, WireFormat wire) {
  const int n = group.size();
  if (n == 1) return {};
  const int vrank = (group.my_index() - root_index + n) % n;
  if (vrank != 0) {
    int mask = 1;
    while (mask <= vrank) mask <<= 1;
    mask >>= 1;
    const int parent = group.WorldRank(((vrank - mask) + root_index) % n);
    CollectiveResult r = TimedRecvFloats(comm, group, parent, tag, data,
                                         deadline, scan, wire);
    if (!r.ok()) return r;
  } else if (wire == WireFormat::kFP16) {
    // Quantise what the root keeps to match what everyone receives off
    // the packed wire (receivers forward already-quantised data, a
    // bit-exact pack/unpack round trip).
    RoundTripHalf(data);
  }
  int mask = 1;
  while (mask <= vrank) mask <<= 1;
  for (; mask < n; mask <<= 1) {
    const int vchild = vrank + mask;
    if (vchild >= n) break;
    SendFloats(comm, group.WorldRank((vchild + root_index) % n), tag,
               std::span<const float>(data.data(), data.size()), wire);
  }
  return {};
}

void GroupBroadcast(Communicator& comm, const RankGroup& group,
                    int root_index, std::span<float> data, int tag) {
  Require(comm, "GroupBroadcast",
          TryGroupBroadcast(comm, group, root_index, data,
                            Deadline(kNoTimeout), tag));
}

CollectiveResult TryGroupReduce(Communicator& comm, const RankGroup& group,
                                int root_index, std::span<float> data,
                                const Deadline& deadline, int tag,
                                DeadScan scan, WireFormat wire) {
  const int n = group.size();
  if (n == 1) return {};
  const int vrank = (group.my_index() - root_index + n) % n;
  // Pooled per-thread receive buffer: the binomial rounds run strictly
  // sequentially on this thread, so one slot serves every round without
  // a heap allocation per call (DESIGN §12).
  std::span<float> incoming(
      AcquireScratch(ScratchSlot::kGroupIncoming, data.size()), data.size());
  for (int mask = 1; mask < n; mask <<= 1) {
    if (vrank & mask) {
      const int dst = group.WorldRank(((vrank - mask) + root_index) % n);
      SendFloats(comm, dst, tag,
                 std::span<const float>(data.data(), data.size()), wire);
      return {};
    }
    const int vsrc = vrank + mask;
    if (vsrc < n) {
      CollectiveResult r = TimedRecvFloats(
          comm, group, group.WorldRank((vsrc + root_index) % n), tag,
          incoming, deadline, scan, wire);
      if (!r.ok()) return r;
      AddInto(data, incoming);
    }
  }
  return {};
}

void GroupReduce(Communicator& comm, const RankGroup& group, int root_index,
                 std::span<float> data, int tag) {
  Require(comm, "GroupReduce",
          TryGroupReduce(comm, group, root_index, data, Deadline(kNoTimeout),
                         tag));
}

CollectiveResult TryGroupAllreduceRing(Communicator& comm,
                                       const RankGroup& group,
                                       std::span<float> data,
                                       const Deadline& deadline, int tag,
                                       DeadScan scan, WireFormat wire) {
  const int n = group.size();
  if (n == 1) return {};
  const auto shards = ComputeShards(data.size(), n);
  const int idx = group.my_index();
  const int next = group.WorldRank((idx + 1) % n);
  const int prev = group.WorldRank((idx - 1 + n) % n);
  // Pooled per-thread receive buffer (see TryGroupReduce).
  float* incoming = AcquireScratch(ScratchSlot::kGroupIncoming, data.size());

  for (int k = 0; k < n - 1; ++k) {
    const int send_shard = ((idx - k) % n + n) % n;
    const int recv_shard = ((idx - k - 1) % n + n) % n;
    const auto& s = shards[static_cast<std::size_t>(send_shard)];
    const auto& r = shards[static_cast<std::size_t>(recv_shard)];
    SendFloats(comm, next, tag + k,
               std::span<const float>(data.data() + s.offset, s.count),
               wire);
    CollectiveResult recv = TimedRecvFloats(
        comm, group, prev, tag + k, std::span<float>(incoming, r.count),
        deadline, scan, wire);
    if (!recv.ok()) return recv;
    AddInto(std::span<float>(data.data() + r.offset, r.count),
            std::span<const float>(incoming, r.count));
  }
  if (wire == WireFormat::kFP16) {
    // After the reduce-scatter this rank owns the fully reduced shard
    // (idx+1) mod n. Quantise it before the allgather so the copy this
    // rank keeps matches the packed copy every peer receives; forwarded
    // shards are already quantised, so their pack hop is bit-exact.
    const auto& own = shards[static_cast<std::size_t>((idx + 1) % n)];
    RoundTripHalf(std::span<float>(data.data() + own.offset, own.count));
  }
  for (int k = 0; k < n - 1; ++k) {
    const int send_shard = ((idx + 1 - k) % n + n) % n;
    const int recv_shard = ((idx - k) % n + n) % n;
    const auto& s = shards[static_cast<std::size_t>(send_shard)];
    const auto& r = shards[static_cast<std::size_t>(recv_shard)];
    SendFloats(comm, next, tag + n + k,
               std::span<const float>(data.data() + s.offset, s.count),
               wire);
    CollectiveResult recv = TimedRecvFloats(
        comm, group, prev, tag + n + k,
        std::span<float>(data.data() + r.offset, r.count), deadline, scan,
        wire);
    if (!recv.ok()) return recv;
  }
  return {};
}

void GroupAllreduceRing(Communicator& comm, const RankGroup& group,
                        std::span<float> data, int tag) {
  Require(comm, "GroupAllreduceRing",
          TryGroupAllreduceRing(comm, group, data, Deadline(kNoTimeout),
                                tag));
}

CollectiveResult TryGroupAllreduceTree(Communicator& comm,
                                       const RankGroup& group,
                                       std::span<float> data,
                                       const Deadline& deadline, int tag,
                                       DeadScan scan, WireFormat wire) {
  CollectiveResult r =
      TryGroupReduce(comm, group, 0, data, deadline, tag, scan, wire);
  if (!r.ok()) return r;
  return TryGroupBroadcast(comm, group, 0, data, deadline, tag + 1, scan,
                           wire);
}

void GroupAllreduceTree(Communicator& comm, const RankGroup& group,
                        std::span<float> data, int tag) {
  Require(comm, "GroupAllreduceTree",
          TryGroupAllreduceTree(comm, group, data, Deadline(kNoTimeout),
                                tag));
}

}  // namespace exaclim
