#include "hvd/group.hpp"

#include <algorithm>

#include "comm/collectives.hpp"
#include "common/error.hpp"

namespace exaclim {
namespace {

void AddInto(std::span<float> acc, std::span<const float> other) {
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += other[i];
}

}  // namespace

RankGroup::RankGroup(std::span<const int> ranks, int my_world_rank)
    : ranks_(ranks.begin(), ranks.end()), my_index_(-1) {
  EXACLIM_CHECK(!ranks_.empty(), "empty rank group");
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    if (ranks_[i] == my_world_rank) {
      my_index_ = static_cast<int>(i);
    }
  }
  EXACLIM_CHECK(my_index_ >= 0,
                "rank " << my_world_rank << " not a member of the group");
}

void GroupBroadcast(Communicator& comm, const RankGroup& group,
                    int root_index, std::span<float> data, int tag) {
  const int n = group.size();
  if (n == 1) return;
  const int vrank = (group.my_index() - root_index + n) % n;
  if (vrank != 0) {
    int mask = 1;
    while (mask <= vrank) mask <<= 1;
    mask >>= 1;
    const int parent = group.WorldRank(((vrank - mask) + root_index) % n);
    comm.RecvT(parent, tag, data);  // fault: blocking-ok
  }
  int mask = 1;
  while (mask <= vrank) mask <<= 1;
  for (; mask < n; mask <<= 1) {
    const int vchild = vrank + mask;
    if (vchild >= n) break;
    comm.SendT(group.WorldRank((vchild + root_index) % n), tag,
               std::span<const float>(data.data(), data.size()));
  }
}

void GroupReduce(Communicator& comm, const RankGroup& group, int root_index,
                 std::span<float> data, int tag) {
  const int n = group.size();
  if (n == 1) return;
  const int vrank = (group.my_index() - root_index + n) % n;
  std::vector<float> incoming(data.size());
  for (int mask = 1; mask < n; mask <<= 1) {
    if (vrank & mask) {
      const int dst = group.WorldRank(((vrank - mask) + root_index) % n);
      comm.SendT(dst, tag,
                 std::span<const float>(data.data(), data.size()));
      return;
    }
    const int vsrc = vrank + mask;
    if (vsrc < n) {
      comm.RecvT(group.WorldRank((vsrc + root_index) % n),  // fault: blocking-ok
                 tag,
                 std::span<float>(incoming));
      AddInto(data, incoming);
    }
  }
}

void GroupAllreduceRing(Communicator& comm, const RankGroup& group,
                        std::span<float> data, int tag) {
  const int n = group.size();
  if (n == 1) return;
  const auto shards = ComputeShards(data.size(), n);
  const int idx = group.my_index();
  const int next = group.WorldRank((idx + 1) % n);
  const int prev = group.WorldRank((idx - 1 + n) % n);
  std::vector<float> incoming(data.size());

  for (int k = 0; k < n - 1; ++k) {
    const int send_shard = ((idx - k) % n + n) % n;
    const int recv_shard = ((idx - k - 1) % n + n) % n;
    const auto& s = shards[static_cast<std::size_t>(send_shard)];
    const auto& r = shards[static_cast<std::size_t>(recv_shard)];
    comm.SendT(next, tag + k,
               std::span<const float>(data.data() + s.offset, s.count));
    comm.RecvT(prev, tag + k,  // fault: blocking-ok
               std::span<float>(incoming.data(), r.count));
    AddInto(std::span<float>(data.data() + r.offset, r.count),
            std::span<const float>(incoming.data(), r.count));
  }
  for (int k = 0; k < n - 1; ++k) {
    const int send_shard = ((idx + 1 - k) % n + n) % n;
    const int recv_shard = ((idx - k) % n + n) % n;
    const auto& s = shards[static_cast<std::size_t>(send_shard)];
    const auto& r = shards[static_cast<std::size_t>(recv_shard)];
    comm.SendT(next, tag + n + k,
               std::span<const float>(data.data() + s.offset, s.count));
    comm.RecvT(prev, tag + n + k,  // fault: blocking-ok
               std::span<float>(data.data() + r.offset, r.count));
  }
}

void GroupAllreduceTree(Communicator& comm, const RankGroup& group,
                        std::span<float> data, int tag) {
  GroupReduce(comm, group, 0, data, tag);
  GroupBroadcast(comm, group, 0, data, tag + 1);
}

}  // namespace exaclim
