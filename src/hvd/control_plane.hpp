#pragma once

#include <memory>
#include <span>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/elastic.hpp"
#include "comm/world.hpp"
#include "hvd/group.hpp"

namespace exaclim {

/// Horovod-style collective scheduling (Sec V-A3).
///
/// Each TensorFlow process schedules its graph independently, so ranks
/// announce readiness of their gradient tensors in different orders; to
/// avoid deadlock all ranks must agree on one total order of collective
/// operations. NegotiateOrder submits this rank's tensor ids in its local
/// readiness order and returns the globally agreed execution order
/// (identical on every rank).
/// Both planes also expose a deadline-aware, group-scoped negotiation
/// (TryNegotiateOrder) for the elastic path: the coordinator is the
/// group's index-0 member instead of world rank 0, tags are salted into
/// the current generation's namespace, and a dead member surfaces as a
/// CollectiveResult instead of a hang. The blocking NegotiateOrder
/// delegates over the full world with no deadline — identical messages.
///
/// Sequential reuse: the overlapped exchange (DESIGN §14) negotiates once
/// per fused bucket with the *same* tag salt. That is safe without extra
/// tag space because negotiations are strictly serialized — a rank only
/// starts bucket k+1's negotiation after receiving bucket k's order,
/// which the coordinator sent only after collecting every rank's bucket-k
/// readiness — so at most one negotiation is ever in flight, and the
/// mailbox's per-(src, tag) FIFO matching keeps the reused tags unambiguous.
class ControlPlane {
 public:
  virtual ~ControlPlane() = default;
  /// Blocking negotiation over the full world (throws on a dead peer).
  std::vector<int> NegotiateOrder(Communicator& comm,
                                  std::span<const int> ready_ids);
  /// Bounded negotiation over `group`; on kOk `*order` holds the agreed
  /// execution order. `tag_salt` shifts the control tags into a
  /// generation's namespace (ElasticWorld::GenTag(0)).
  virtual CollectiveResult TryNegotiateOrder(Communicator& comm,
                                             const RankGroup& group,
                                             std::span<const int> ready_ids,
                                             const Deadline& deadline,
                                             int tag_salt,
                                             std::vector<int>* order) = 0;
  virtual const char* Name() const = 0;
};

/// Stock Horovod: every rank streams per-tensor readiness messages to the
/// rank-0 controller, which replies with the execution order once all
/// ranks are ready — the controller handles O(P·N) messages per step, the
/// bottleneck the paper hit beyond ~1024 GPUs.
class FlatControlPlane : public ControlPlane {
 public:
  CollectiveResult TryNegotiateOrder(Communicator& comm,
                                     const RankGroup& group,
                                     std::span<const int> ready_ids,
                                     const Deadline& deadline, int tag_salt,
                                     std::vector<int>* order) override;
  const char* Name() const override { return "flat"; }
};

/// The paper's fix: ranks form a radix-r tree. Each tree node forwards a
/// readiness message for tensor t only after all of its children (and
/// itself) are ready, so no rank sends or receives more than r+1 messages
/// per tensor; the decided order is relayed back down the tree
/// (recursive broadcast). Rank 0 still decides the order, but now
/// coordinates only its direct children.
class HierarchicalControlPlane : public ControlPlane {
 public:
  explicit HierarchicalControlPlane(int radix);

  CollectiveResult TryNegotiateOrder(Communicator& comm,
                                     const RankGroup& group,
                                     std::span<const int> ready_ids,
                                     const Deadline& deadline, int tag_salt,
                                     std::vector<int>* order) override;
  const char* Name() const override { return "hierarchical"; }
  int radix() const { return radix_; }

  /// Tree helpers (world rank <-> radix-r heap layout), exposed for the
  /// message-count analysis in netsim. The topology is the shared radix
  /// heap of comm/elastic.hpp — the same tree the elastic survivor
  /// consensus reuses.
  static int Parent(int rank, int radix) { return TreeParent(rank, radix); }
  static std::vector<int> Children(int rank, int radix, int world_size) {
    return TreeChildren(rank, radix, world_size);
  }

 private:
  int radix_;
};

/// Analytic per-step message counts at the busiest rank (used to
/// extrapolate the control-plane benchmark to full-machine scale, and
/// validated against measured counts at thread scale in the tests).
struct ControlPlaneLoad {
  std::int64_t controller_recv;  // messages into the busiest coordinator
  std::int64_t controller_send;
};
ControlPlaneLoad FlatControlLoad(int world_size, int num_tensors);
ControlPlaneLoad HierarchicalControlLoad(int world_size, int radix,
                                         int num_tensors);

std::unique_ptr<ControlPlane> MakeControlPlane(bool hierarchical, int radix);

}  // namespace exaclim
