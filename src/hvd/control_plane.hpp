#pragma once

#include <memory>
#include <span>
#include <vector>

#include "comm/world.hpp"

namespace exaclim {

/// Horovod-style collective scheduling (Sec V-A3).
///
/// Each TensorFlow process schedules its graph independently, so ranks
/// announce readiness of their gradient tensors in different orders; to
/// avoid deadlock all ranks must agree on one total order of collective
/// operations. NegotiateOrder submits this rank's tensor ids in its local
/// readiness order and returns the globally agreed execution order
/// (identical on every rank).
class ControlPlane {
 public:
  virtual ~ControlPlane() = default;
  virtual std::vector<int> NegotiateOrder(Communicator& comm,
                                          std::span<const int> ready_ids) = 0;
  virtual const char* Name() const = 0;
};

/// Stock Horovod: every rank streams per-tensor readiness messages to the
/// rank-0 controller, which replies with the execution order once all
/// ranks are ready — the controller handles O(P·N) messages per step, the
/// bottleneck the paper hit beyond ~1024 GPUs.
class FlatControlPlane : public ControlPlane {
 public:
  std::vector<int> NegotiateOrder(Communicator& comm,
                                  std::span<const int> ready_ids) override;
  const char* Name() const override { return "flat"; }
};

/// The paper's fix: ranks form a radix-r tree. Each tree node forwards a
/// readiness message for tensor t only after all of its children (and
/// itself) are ready, so no rank sends or receives more than r+1 messages
/// per tensor; the decided order is relayed back down the tree
/// (recursive broadcast). Rank 0 still decides the order, but now
/// coordinates only its direct children.
class HierarchicalControlPlane : public ControlPlane {
 public:
  explicit HierarchicalControlPlane(int radix);

  std::vector<int> NegotiateOrder(Communicator& comm,
                                  std::span<const int> ready_ids) override;
  const char* Name() const override { return "hierarchical"; }
  int radix() const { return radix_; }

  /// Tree helpers (world rank <-> radix-r heap layout), exposed for the
  /// message-count analysis in netsim.
  static int Parent(int rank, int radix) { return (rank - 1) / radix; }
  static std::vector<int> Children(int rank, int radix, int world_size);

 private:
  int radix_;
};

/// Analytic per-step message counts at the busiest rank (used to
/// extrapolate the control-plane benchmark to full-machine scale, and
/// validated against measured counts at thread scale in the tests).
struct ControlPlaneLoad {
  std::int64_t controller_recv;  // messages into the busiest coordinator
  std::int64_t controller_send;
};
ControlPlaneLoad FlatControlLoad(int world_size, int num_tensors);
ControlPlaneLoad HierarchicalControlLoad(int world_size, int radix,
                                         int num_tensors);

std::unique_ptr<ControlPlane> MakeControlPlane(bool hierarchical, int radix);

}  // namespace exaclim
