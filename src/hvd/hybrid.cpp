#include "hvd/hybrid.hpp"

#include <numeric>

#include "comm/collectives.hpp"
#include "common/error.hpp"
#include "hvd/group.hpp"

namespace exaclim {

CollectiveResult TryHybridAllreduce(Communicator& comm, std::span<float> data,
                                    const HybridAllreduceOptions& opts,
                                    const Deadline& deadline, int tag,
                                    WireFormat wire) {
  const int p = comm.size();
  const Topology& topo = opts.topology;
  const int rpn = topo.ranks_per_node;
  EXACLIM_CHECK(p % rpn == 0,
                "hybrid allreduce: world size " << p
                                                << " not a multiple of "
                                                << rpn);
  const int nodes = p / rpn;
  const int mpi_ranks = std::min<int>(opts.mpi_ranks_per_node, rpn);
  const int rank = comm.rank();
  const int node = topo.NodeOf(rank);
  const int local = topo.LocalRank(rank);

  // Group of this node's local ranks.
  std::vector<int> node_ranks(static_cast<std::size_t>(rpn));
  std::iota(node_ranks.begin(), node_ranks.end(), node * rpn);
  const RankGroup node_group(node_ranks, rank);

  // Phase 1 (NCCL): intra-node ring all-reduce. All phases scan the
  // whole world for deaths: the hybrid scheme only runs over the full
  // generation-0 world, so a death anywhere dooms it — waiting out the
  // deadline inside an unaffected subgroup would just delay recovery.
  if (rpn > 1) {
    CollectiveResult r = TryGroupAllreduceRing(comm, node_group, data,
                                               deadline, tag,
                                               DeadScan::kWorld, wire);
    if (!r.ok()) return r;
  }
  if (nodes == 1) return {};

  // Phase 2 (MPI): the first `mpi_ranks` local ranks each all-reduce one
  // shard with their same-indexed peers across nodes.
  const auto shards = ComputeShards(data.size(), mpi_ranks);
  if (local < mpi_ranks) {
    std::vector<int> peer_ranks(static_cast<std::size_t>(nodes));
    for (int nd = 0; nd < nodes; ++nd) {
      peer_ranks[static_cast<std::size_t>(nd)] = topo.GlobalRank(nd, local);
    }
    const RankGroup peers(peer_ranks, rank);
    const auto& s = shards[static_cast<std::size_t>(local)];
    std::span<float> shard(data.data() + s.offset, s.count);
    if (!shard.empty()) {
      const int shard_tag = tag + 100 + local;
      CollectiveResult r =
          opts.inter_node_tree
              ? TryGroupAllreduceTree(comm, peers, shard, deadline,
                                      shard_tag, DeadScan::kWorld, wire)
              : TryGroupAllreduceRing(comm, peers, shard, deadline,
                                      shard_tag, DeadScan::kWorld, wire);
      if (!r.ok()) return r;
    }
  }

  // Phase 3 (NCCL): each shard owner broadcasts its shard node-locally.
  if (rpn > 1) {
    for (int owner = 0; owner < mpi_ranks; ++owner) {
      const auto& s = shards[static_cast<std::size_t>(owner)];
      if (s.count == 0) continue;
      CollectiveResult r = TryGroupBroadcast(
          comm, node_group, owner,
          std::span<float>(data.data() + s.offset, s.count), deadline,
          tag + 500 + owner, DeadScan::kWorld, wire);
      if (!r.ok()) return r;
    }
  }
  return {};
}

void HybridAllreduce(Communicator& comm, std::span<float> data,
                     const HybridAllreduceOptions& opts, int tag,
                     WireFormat wire) {
  const CollectiveResult result =
      TryHybridAllreduce(comm, data, opts, Deadline(kNoTimeout), tag, wire);
  EXACLIM_CHECK(result.ok(),
                "rank " << comm.rank()
                        << ": blocking HybridAllreduce cannot complete: rank "
                        << result.suspect_rank
                        << (result.status == CollectiveStatus::kPeerDead
                                ? " is dead"
                                : " is unresponsive"));
}

}  // namespace exaclim
