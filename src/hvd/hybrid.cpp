#include "hvd/hybrid.hpp"

#include <numeric>

#include "comm/collectives.hpp"
#include "common/error.hpp"
#include "hvd/group.hpp"

namespace exaclim {

void HybridAllreduce(Communicator& comm, std::span<float> data,
                     const HybridAllreduceOptions& opts, int tag) {
  const int p = comm.size();
  const Topology& topo = opts.topology;
  const int rpn = topo.ranks_per_node;
  EXACLIM_CHECK(p % rpn == 0,
                "hybrid allreduce: world size " << p
                                                << " not a multiple of "
                                                << rpn);
  const int nodes = p / rpn;
  const int mpi_ranks = std::min<int>(opts.mpi_ranks_per_node, rpn);
  const int rank = comm.rank();
  const int node = topo.NodeOf(rank);
  const int local = topo.LocalRank(rank);

  // Group of this node's local ranks.
  std::vector<int> node_ranks(static_cast<std::size_t>(rpn));
  std::iota(node_ranks.begin(), node_ranks.end(), node * rpn);
  const RankGroup node_group(node_ranks, rank);

  // Phase 1 (NCCL): intra-node ring all-reduce.
  if (rpn > 1) {
    GroupAllreduceRing(comm, node_group, data, tag);
  }
  if (nodes == 1) return;

  // Phase 2 (MPI): the first `mpi_ranks` local ranks each all-reduce one
  // shard with their same-indexed peers across nodes.
  const auto shards = ComputeShards(data.size(), mpi_ranks);
  if (local < mpi_ranks) {
    std::vector<int> peer_ranks(static_cast<std::size_t>(nodes));
    for (int nd = 0; nd < nodes; ++nd) {
      peer_ranks[static_cast<std::size_t>(nd)] = topo.GlobalRank(nd, local);
    }
    const RankGroup peers(peer_ranks, rank);
    const auto& s = shards[static_cast<std::size_t>(local)];
    std::span<float> shard(data.data() + s.offset, s.count);
    if (!shard.empty()) {
      const int shard_tag = tag + 100 + local;
      if (opts.inter_node_tree) {
        GroupAllreduceTree(comm, peers, shard, shard_tag);
      } else {
        GroupAllreduceRing(comm, peers, shard, shard_tag);
      }
    }
  }

  // Phase 3 (NCCL): each shard owner broadcasts its shard node-locally.
  if (rpn > 1) {
    for (int owner = 0; owner < mpi_ranks; ++owner) {
      const auto& s = shards[static_cast<std::size_t>(owner)];
      if (s.count == 0) continue;
      GroupBroadcast(comm, node_group, owner,
                     std::span<float>(data.data() + s.offset, s.count),
                     tag + 500 + owner);
    }
  }
}

}  // namespace exaclim
