#pragma once

#include <span>

#include "comm/collectives.hpp"
#include "comm/world.hpp"

namespace exaclim {

/// The paper's hybrid NCCL+MPI all-reduce (Sec V-A3).
///
/// Three phases, run over a flat communicator with a node topology:
///  1. intra-node ring all-reduce over the node's GPUs (the NCCL/NVLink
///     phase) — afterwards all local ranks hold the node-local sum;
///  2. `mpi_ranks_per_node` of the local ranks each take one shard
///     (a "quarter" with the paper's 4-of-6 split) and all-reduce it with
///     the same-indexed rank on every other node (the MPI/InfiniBand
///     phase, one shard per virtual IB device);
///  3. each shard owner broadcasts its fully reduced shard within the
///     node (the NCCL broadcast phase), leaving every rank with the
///     complete result.
///
/// Ranks whose world size is a single node degenerate to phase 1 only
/// (Piz Daint's 1 GPU/node instead skips phase 1 and 3).
struct HybridAllreduceOptions {
  Topology topology{.ranks_per_node = 6};
  int mpi_ranks_per_node = 4;
  /// Inter-node shard all-reduce algorithm (tree matches MPI's scale
  /// behaviour; ring is bandwidth-optimal).
  bool inter_node_tree = true;
};

/// In-place sum across all ranks. World size must be a whole number of
/// nodes. All ranks must call collectively. `wire` selects the message
/// encoding (packed binary16 halves every phase's traffic; each phase
/// quantises kept data exactly where it quantises sent data, so all
/// ranks still finish bit-identical — see hvd/group.hpp).
void HybridAllreduce(Communicator& comm, std::span<float> data,
                     const HybridAllreduceOptions& opts, int tag = 9500,
                     WireFormat wire = WireFormat::kFP32);

/// Deadline-aware variant: returns instead of hanging when a rank dies
/// in any of the three phases. The blocking form delegates here with
/// kNoTimeout (identical message pattern and combining order).
CollectiveResult TryHybridAllreduce(Communicator& comm, std::span<float> data,
                                    const HybridAllreduceOptions& opts,
                                    const Deadline& deadline, int tag = 9500,
                                    WireFormat wire = WireFormat::kFP32);

}  // namespace exaclim
