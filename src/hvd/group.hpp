#pragma once

#include <span>
#include <vector>

#include "comm/world.hpp"

namespace exaclim {

/// Collectives over an arbitrary subset of world ranks — the building
/// block for the hybrid all-reduce of Sec V-A3, where different
/// operations run over "the 6 GPUs of a node" (NCCL scope) and "rank k of
/// every node" (MPI scope). Group-relative algorithms mirror
/// comm/collectives.hpp: systolic ring for reduce-scatter/allgather (the
/// NCCL pattern) and binomial trees for broadcast/reduce.
///
/// `group` lists the participating world ranks; the calling rank must be
/// a member. All members must call with an identical group and tag.
class RankGroup {
 public:
  RankGroup(std::span<const int> ranks, int my_world_rank);

  int size() const { return static_cast<int>(ranks_.size()); }
  int my_index() const { return my_index_; }
  int WorldRank(int index) const { return ranks_.at(static_cast<std::size_t>(index)); }

 private:
  std::vector<int> ranks_;
  int my_index_;
};

void GroupBroadcast(Communicator& comm, const RankGroup& group,
                    int root_index, std::span<float> data, int tag);

void GroupReduce(Communicator& comm, const RankGroup& group, int root_index,
                 std::span<float> data, int tag);

/// Ring reduce-scatter + allgather within the group (in-place sum).
void GroupAllreduceRing(Communicator& comm, const RankGroup& group,
                        std::span<float> data, int tag);

/// Tree (reduce + broadcast) all-reduce within the group.
void GroupAllreduceTree(Communicator& comm, const RankGroup& group,
                        std::span<float> data, int tag);

}  // namespace exaclim
