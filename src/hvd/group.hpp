#pragma once

#include <span>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/world.hpp"

namespace exaclim {

/// Collectives over an arbitrary subset of world ranks — the building
/// block for the hybrid all-reduce of Sec V-A3, where different
/// operations run over "the 6 GPUs of a node" (NCCL scope) and "rank k of
/// every node" (MPI scope). Group-relative algorithms mirror
/// comm/collectives.hpp: systolic ring for reduce-scatter/allgather (the
/// NCCL pattern) and binomial trees for broadcast/reduce.
///
/// `group` lists the participating world ranks; the calling rank must be
/// a member. All members must call with an identical group and tag.
class RankGroup {
 public:
  RankGroup(std::span<const int> ranks, int my_world_rank);

  int size() const { return static_cast<int>(ranks_.size()); }
  int my_index() const { return my_index_; }
  int WorldRank(int index) const { return ranks_.at(static_cast<std::size_t>(index)); }

 private:
  std::vector<int> ranks_;
  int my_index_;
};

/// Scope of the periodic liveness scan a waiting member runs inside a
/// bounded group collective. kGroup (the default) only aborts on a dead
/// *member* — elastic generations deliberately keep collectives alive
/// while ex-members stay dead in the world. kWorld aborts on a death
/// anywhere; correct only when the caller knows any death dooms the
/// operation, e.g. the hybrid allreduce whose subgroup phases require
/// the entire generation-0 world.
enum class DeadScan { kGroup, kWorld };

/// Every group collective has a deadline-aware Try* variant (mirroring
/// comm/collectives.hpp); the blocking form delegates with kNoTimeout,
/// so both run the identical message pattern and combining order. Over
/// the full world the group algorithms are element-for-element the same
/// arithmetic as the flat collectives — the property that makes the
/// elastic generation-0 path bit-identical to the non-elastic one.
///
/// `wire` selects the on-the-wire encoding (comm/collectives.hpp): under
/// WireFormat::kFP16 every message moves packed binary16 words (half the
/// bytes) while accumulation stays FP32. The algorithms quantise
/// *kept* data at the same points the wire quantises *sent* data — the
/// ring quantises each owner's fully reduced shard before the allgather,
/// the tree's root quantises before broadcasting — so every member still
/// finishes with bit-identical buffers. kFP32 (the default) is
/// bit-identical to the pre-wire behaviour.

void GroupBroadcast(Communicator& comm, const RankGroup& group,
                    int root_index, std::span<float> data, int tag);
CollectiveResult TryGroupBroadcast(Communicator& comm, const RankGroup& group,
                                   int root_index, std::span<float> data,
                                   const Deadline& deadline, int tag,
                                   DeadScan scan = DeadScan::kGroup,
                                   WireFormat wire = WireFormat::kFP32);

void GroupReduce(Communicator& comm, const RankGroup& group, int root_index,
                 std::span<float> data, int tag);
CollectiveResult TryGroupReduce(Communicator& comm, const RankGroup& group,
                                int root_index, std::span<float> data,
                                const Deadline& deadline, int tag,
                                DeadScan scan = DeadScan::kGroup,
                                WireFormat wire = WireFormat::kFP32);

/// Ring reduce-scatter + allgather within the group (in-place sum).
void GroupAllreduceRing(Communicator& comm, const RankGroup& group,
                        std::span<float> data, int tag);
CollectiveResult TryGroupAllreduceRing(Communicator& comm,
                                       const RankGroup& group,
                                       std::span<float> data,
                                       const Deadline& deadline, int tag,
                                       DeadScan scan = DeadScan::kGroup,
                                       WireFormat wire = WireFormat::kFP32);

/// Tree (reduce + broadcast) all-reduce within the group.
void GroupAllreduceTree(Communicator& comm, const RankGroup& group,
                        std::span<float> data, int tag);
CollectiveResult TryGroupAllreduceTree(Communicator& comm,
                                       const RankGroup& group,
                                       std::span<float> data,
                                       const Deadline& deadline, int tag,
                                       DeadScan scan = DeadScan::kGroup,
                                       WireFormat wire = WireFormat::kFP32);

}  // namespace exaclim
