#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "comm/elastic.hpp"
#include "comm/world.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"
#include "hvd/control_plane.hpp"
#include "hvd/hybrid.hpp"
#include "nn/layer.hpp"
#include "tensor/cast.hpp"

namespace exaclim {

/// Which transport the gradient all-reduce uses.
enum class ReduceTransport {
  kMpiRing,   // flat ring over all ranks
  kMpiTree,   // flat tree over all ranks
  kHybrid,    // the paper's NCCL-intra-node + sharded-MPI scheme
};

const char* ToString(ReduceTransport t);

/// Bucket tag layout (DESIGN §14). Every fused buffer's collective runs
/// in its own tag window so concurrent in-flight buckets can never
/// cross-match; the window index wraps inside a *bounded* field so the
/// largest bucket tag stays below the elastic generation stride — the
/// previous open-ended layout (20000 + i*700) crossed into generation
/// N+1's namespace at ~1400 buckets, letting a stale generation-N bucket
/// message alias a post-rebuild control or collective tag.
///
///   [ 0 .. kBucketTagBase )                   control/consensus/resync
///   [ kBucketTagBase .. kGenTagStride )       bucket windows, stride
///                                             kBucketTagStride each
///
/// Wrap-around reuse of a window is safe for the same reason step-count
/// tag reuse is: each rank issues its buckets strictly in order and the
/// mailbox matches per (src, tag) FIFO, so two uses of one window are
/// never concurrently in flight on an edge.
inline constexpr int kBucketTagBase = 40000;
/// Tags a single bucket's collective may touch: the group ring uses
/// tag+k and tag+n+k (2n tags), the hybrid offsets by up to 500+owner.
inline constexpr int kBucketTagStride = 700;
inline constexpr int kBucketTagSlots =
    (kGenTagStride - kBucketTagBase) / kBucketTagStride;
static_assert(kBucketTagBase + kBucketTagSlots * kBucketTagStride <=
                  kGenTagStride,
              "bucket tag field must fit inside one generation's salt "
              "budget — a bucket tag crossing kGenTagStride would alias "
              "the next generation's namespace");
static_assert(kBucketTagSlots >= 1000,
              "bucket tag field unexpectedly small");

/// Collective tag (pre-generation-salt) of fused buffer `bucket_index`.
inline int BucketTag(int bucket_index) {
  return kBucketTagBase + (bucket_index % kBucketTagSlots) * kBucketTagStride;
}

/// Data-parallel gradient aggregation in the style of Horovod (Sec V-A3):
/// negotiate a global tensor order through the control plane (emulating
/// TensorFlow's nondeterministic per-rank scheduling by shuffling the
/// local readiness order), fuse consecutive tensors into buffers up to a
/// byte threshold (Horovod's tensor fusion, which gradient lag improves),
/// and run one all-reduce per fused buffer, averaging across ranks.
struct ExchangerOptions {
  bool hierarchical_control = true;
  int control_radix = 4;
  ReduceTransport transport = ReduceTransport::kHybrid;
  HybridAllreduceOptions hybrid{};
  /// Fuse consecutive tensors into buffers of up to this many bytes.
  std::int64_t fusion_threshold_bytes = 4 << 20;
  /// FP16 wire format: gradients are rounded through binary16 and move
  /// across ranks as packed 2-byte words (WireFormat::kFP16), halving
  /// the bytes on the wire; the reduction itself accumulates in FP32
  /// (Tensor Core FMA / NCCL fp32-accumulation style).
  Precision wire_precision = Precision::kFP32;
  bool average = true;
  /// Emulate TensorFlow's dynamic scheduler: shuffle the local readiness
  /// order per step (all ranks still converge on one global order).
  /// Ignored by the overlapped path, whose readiness order *is* the
  /// backward emission order.
  bool shuffle_ready_order = true;
  /// Overlap the exchange with backward compute: the trainer streams
  /// grad-ready notifications during Backward and a dedicated exchange
  /// thread reduces each fused bucket as soon as it closes (DESIGN §14).
  bool overlap = false;

  /// EXACLIM_OVERLAP=on|off, EXACLIM_FUSION_BYTES=<bytes>,
  /// EXACLIM_WIRE=fp16|fp32 applied over `base`.
  static ExchangerOptions FromEnv(ExchangerOptions base);
};

class GradientExchanger {
 public:
  GradientExchanger(const ExchangerOptions& opts, std::uint64_t seed);
  ~GradientExchanger();

  /// Collective: every rank calls with its (identically shaped) params.
  /// On return, each param's grad holds the rank-averaged gradient,
  /// bit-identical on every rank. A non-empty `ready_order` replaces the
  /// iota local readiness order (the trainer passes the backward
  /// emission order so the serialized path fuses the exact buckets the
  /// overlapped path does).
  void Exchange(Communicator& comm, const std::vector<Param*>& params,
                std::span<const int> ready_order = {});

  /// Elastic variant: the same negotiation + fusion + allreduce, run
  /// over the current view's members with generation-salted tags and a
  /// bounded deadline. On failure the partial step must be discarded by
  /// the caller (gradients may hold partially averaged data) and the
  /// step counter is NOT advanced, so the retried step reproduces the
  /// same readiness shuffle. At generation 0 over the full world this is
  /// message-for-message identical to Exchange. After a shrink the
  /// hybrid transport falls back to the group ring (survivors rarely
  /// form whole nodes).
  CollectiveResult TryExchange(Communicator& comm,
                               const std::vector<Param*>& params,
                               ElasticWorld& elastic,
                               const Deadline& deadline,
                               std::span<const int> ready_order = {});

  /// ---- Overlapped exchange (DESIGN §14) -------------------------------
  /// BeginStep arms a step: NotifyGradReady calls (from the backward
  /// pass, via GradReadyRecorder) append tensors to the emission order
  /// and greedily close fusion buckets; a persistent exchange thread
  /// negotiates and reduces each closed bucket while the remaining
  /// backward layers keep computing. WaitAll closes the final bucket,
  /// blocks until the exchange thread drained the step, and returns the
  /// first failure (kOk when every bucket reduced). `elastic == nullptr`
  /// uses the lazily built identity view (blocking semantics: WaitAll
  /// checks success). Bucket composition and reduce order are identical
  /// to the serialized path fed the same readiness order, so
  /// overlap-on/off is bit-identical.
  void BeginStep(Communicator& comm, const std::vector<Param*>& params,
                 ElasticWorld* elastic, const Deadline& deadline);
  /// Announces that `param_index`'s gradient is final for this step.
  /// Called on the trainer thread, between BeginStep and WaitAll.
  void NotifyGradReady(int param_index);
  /// Barrier before optimizer.Step: rethrows a RankKilledError raised on
  /// the exchange thread (chaos schedule) on the calling thread.
  CollectiveResult WaitAll();

  /// Fused buffers formed in the last Exchange (diagnostic).
  std::int64_t last_fused_buffers() const { return last_fused_buffers_; }
  std::int64_t last_negotiated_tensors() const { return last_tensors_; }

  const ExchangerOptions& options() const { return opts_; }

 private:
  /// One fused buffer: the half-open range [begin, end) of the step's
  /// emission order.
  struct Bucket {
    int begin = 0;
    int end = 0;
    std::int64_t elems = 0;
    std::int64_t bytes = 0;
  };

  /// Lazily built generation-0 view over `comm` for the non-elastic
  /// path; rebuilt only if the communicator changes, asserted in sync
  /// with comm.size() (previously re-derived every call).
  ElasticWorld& Identity(Communicator& comm);

  /// Packs `ids` (param indices) into the fusion scratch, reduces the
  /// buffer in bucket_index's tag window, averages and scatters back.
  CollectiveResult ReduceFusedBucket(Communicator& comm,
                                     const std::vector<Param*>& params,
                                     ElasticWorld& elastic,
                                     const RankGroup& group,
                                     std::span<const int> ids,
                                     int bucket_index,
                                     const Deadline& deadline);

  /// Fires the "elastic.exchange.kill.<rank>" chaos site (at most once
  /// per step, right after an order was agreed).
  void MaybeChaosKill(Communicator& comm);

  void StartExchangeThread();
  void ExchangeThreadMain();
  /// Runs one armed step on the exchange thread: negotiate + reduce each
  /// closed bucket in order, latch the first failure, drain the rest.
  void RunOverlapStep();
  void CloseBucketLocked();

  ExchangerOptions opts_;
  std::unique_ptr<ControlPlane> control_;
  Rng rng_;
  std::int64_t last_fused_buffers_ = 0;
  std::int64_t last_tensors_ = 0;
  int step_ = 0;
  // One exchanger per rank by design; Debug builds trap two threads
  // calling Exchange on the same instance (which would corrupt rng_ and
  // the step counter without any TSan-visible lock).
  ReentrancyGuard reentrancy_;

  // Non-elastic identity view (see Identity()).
  std::unique_ptr<ElasticWorld> identity_;
  Communicator* identity_comm_ = nullptr;

  // Serialized-path reusable buffers (grow-only across steps).
  std::vector<int> ready_;
  std::vector<int> order_;

  // ---- overlap engine state ----
  // Hand-off discipline: the trainer thread writes sched_order_ /
  // bucket bookkeeping under mu_ (NotifyGradReady); the exchange thread
  // copies closed buckets out under mu_ and touches comm/grads only for
  // tensors already announced, so the two threads never race on a
  // tensor. Result fields are written by the exchange thread before it
  // clears step_active_ under mu_ and read by WaitAll after observing
  // step_active_ == false — ordered by the mutex.
  Mutex mu_;
  CondVar cv_;
  std::thread exchange_thread_;
  bool thread_started_ = false;
  bool shutdown_ = false;        // guarded by mu_
  bool step_active_ = false;     // guarded by mu_
  bool emit_done_ = false;       // guarded by mu_
  bool step_open_ = false;       // trainer thread only
  Communicator* ol_comm_ = nullptr;
  const std::vector<Param*>* ol_params_ = nullptr;
  ElasticWorld* ol_elastic_ = nullptr;
  Deadline ol_deadline_{kNoTimeout};
  std::vector<int> sched_order_;  // emission order; writes guarded by mu_
  int sched_count_ = 0;           // guarded by mu_
  std::vector<Bucket> buckets_;   // closed buckets; guarded by mu_
  int buckets_closed_ = 0;        // guarded by mu_
  int pend_begin_ = 0;            // open bucket start; guarded by mu_
  std::int64_t pend_bytes_ = 0;   // guarded by mu_
  std::int64_t pend_elems_ = 0;   // guarded by mu_
  std::vector<int> ol_order_;     // exchange thread's negotiation buffer
  CollectiveResult ol_result_;    // first failure of the armed step
  bool ol_failed_ = false;
  std::exception_ptr ol_exception_;
  std::int64_t ol_bytes_ = 0;
  std::int64_t ol_buffers_ = 0;
};

/// Bridges Layer grad-ready hooks to the exchanger: the trainer installs
/// it as the model's GradReadyListener for the backward pass. It maps
/// each announcing layer to its param indices (cached after the first
/// step — steady-state notifications do zero heap work), dedups, records
/// the emission order, and forwards newly ready indices to the exchanger
/// when one is armed. FlushRemaining emits params no hook announced
/// (models without instrumented containers), so every param always
/// exchanges exactly once per step.
class GradReadyRecorder : public GradReadyListener {
 public:
  /// Binds the flat param list the indices refer to (cheap when
  /// unchanged; rebinding clears the layer cache).
  void Bind(const std::vector<Param*>& params);
  /// Starts a step. `sink` receives NotifyGradReady(index) per newly
  /// ready param; nullptr records the order only (serialized path).
  void BeginStep(GradientExchanger* sink);
  void OnGradsReady(Layer& layer) override;
  /// Emits every param not announced by a hook, in index order.
  void FlushRemaining();
  /// Emission order of the current/last step.
  std::span<const int> order() const {
    return std::span<const int>(order_.data(), count_);
  }

 private:
  void Emit(int param_index);

  const std::vector<Param*>* params_ = nullptr;
  std::unordered_map<const Param*, int> index_of_;
  std::unordered_map<const Layer*, std::vector<int>> layer_indices_;
  std::vector<char> seen_;
  std::vector<int> order_;
  std::size_t count_ = 0;
  GradientExchanger* sink_ = nullptr;
};

}  // namespace exaclim
