#pragma once

#include <memory>
#include <vector>

#include "comm/elastic.hpp"
#include "comm/world.hpp"
#include "common/rng.hpp"
#include "common/sync.hpp"
#include "hvd/control_plane.hpp"
#include "hvd/hybrid.hpp"
#include "nn/layer.hpp"
#include "tensor/cast.hpp"

namespace exaclim {

/// Which transport the gradient all-reduce uses.
enum class ReduceTransport {
  kMpiRing,   // flat ring over all ranks
  kMpiTree,   // flat tree over all ranks
  kHybrid,    // the paper's NCCL-intra-node + sharded-MPI scheme
};

const char* ToString(ReduceTransport t);

/// Data-parallel gradient aggregation in the style of Horovod (Sec V-A3):
/// negotiate a global tensor order through the control plane (emulating
/// TensorFlow's nondeterministic per-rank scheduling by shuffling the
/// local readiness order), fuse consecutive tensors into buffers up to a
/// byte threshold (Horovod's tensor fusion, which gradient lag improves),
/// and run one all-reduce per fused buffer, averaging across ranks.
struct ExchangerOptions {
  bool hierarchical_control = true;
  int control_radix = 4;
  ReduceTransport transport = ReduceTransport::kHybrid;
  HybridAllreduceOptions hybrid{};
  /// Fuse consecutive tensors into buffers of up to this many bytes.
  std::int64_t fusion_threshold_bytes = 4 << 20;
  /// FP16 wire format: gradients are rounded through binary16 before and
  /// after the reduction (reduction itself accumulates in FP32, like
  /// Tensor Core FMA / NCCL's fp32 accumulation mode).
  Precision wire_precision = Precision::kFP32;
  bool average = true;
  /// Emulate TensorFlow's dynamic scheduler: shuffle the local readiness
  /// order per step (all ranks still converge on one global order).
  bool shuffle_ready_order = true;
};

class GradientExchanger {
 public:
  GradientExchanger(const ExchangerOptions& opts, std::uint64_t seed);

  /// Collective: every rank calls with its (identically shaped) params.
  /// On return, each param's grad holds the rank-averaged gradient,
  /// bit-identical on every rank.
  void Exchange(Communicator& comm, const std::vector<Param*>& params);

  /// Elastic variant: the same negotiation + fusion + allreduce, run
  /// over the current view's members with generation-salted tags and a
  /// bounded deadline. On failure the partial step must be discarded by
  /// the caller (gradients may hold partially averaged data) and the
  /// step counter is NOT advanced, so the retried step reproduces the
  /// same readiness shuffle. At generation 0 over the full world this is
  /// message-for-message identical to Exchange. After a shrink the
  /// hybrid transport falls back to the group ring (survivors rarely
  /// form whole nodes).
  CollectiveResult TryExchange(Communicator& comm,
                               const std::vector<Param*>& params,
                               ElasticWorld& elastic,
                               const Deadline& deadline);

  /// Fused buffers formed in the last Exchange (diagnostic).
  std::int64_t last_fused_buffers() const { return last_fused_buffers_; }
  std::int64_t last_negotiated_tensors() const { return last_tensors_; }

  const ExchangerOptions& options() const { return opts_; }

 private:
  ExchangerOptions opts_;
  std::unique_ptr<ControlPlane> control_;
  Rng rng_;
  std::int64_t last_fused_buffers_ = 0;
  std::int64_t last_tensors_ = 0;
  int step_ = 0;
  // One exchanger per rank by design; Debug builds trap two threads
  // calling Exchange on the same instance (which would corrupt rng_ and
  // the step counter without any TSan-visible lock).
  ReentrancyGuard reentrancy_;
};

}  // namespace exaclim
