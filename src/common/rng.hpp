#pragma once

#include <cstdint>
#include <random>

namespace exaclim {

/// Deterministic seeded RNG used everywhere randomness is needed (weight
/// init, data synthesis, sampling). Wrapping mt19937_64 keeps every
/// experiment reproducible across runs and rank counts; per-rank streams
/// are derived by Fork() with a distinct stream id.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// Derives an independent deterministic stream (e.g. one per rank).
  Rng Fork(std::uint64_t stream) const {
    // SplitMix64-style mixing of (seed, stream) into a new seed.
    std::uint64_t z = seed_ + 0x9e3779b97f4a7c15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return Rng(z ^ (z >> 31));
  }

  float Uniform(float lo = 0.0f, float hi = 1.0f) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  double UniformDouble(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  float Normal(float mean = 0.0f, float stddev = 1.0f) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t Int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  std::size_t Index(std::size_t n) {
    return static_cast<std::size_t>(Int(0, static_cast<std::int64_t>(n) - 1));
  }

  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace exaclim
