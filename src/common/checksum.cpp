#include "common/checksum.hpp"

#include <array>

namespace exaclim {

namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(std::span<const std::byte> data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t crc = seed ^ 0xffffffffu;
  for (const std::byte b : data) {
    crc = table[(crc ^ static_cast<std::uint32_t>(b)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace exaclim
