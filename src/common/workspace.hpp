#pragma once

#include <cstddef>
#include <cstdint>

namespace exaclim {

/// Thread-local named scratch streams over the pooled arena.
///
/// Hot kernels (the packed GEMM engine, the reference GEMM panel walk,
/// the loss softmax) need per-task scratch buffers. Allocating them
/// inside the task puts a malloc/free pair on every dispatch; instead
/// each worker thread keeps one grow-only buffer per named stream,
/// handed out by AcquireScratch(). The buffers are pooled PoolBuffer
/// blocks (common/pool.hpp, DESIGN §12), so scratch draws from the same
/// accounted arena as Tensor storage and the ConvWorkspace panels: a
/// grow re-acquires from the next size bucket and returns the old block
/// to the free-lists, and the pool gauges (pool.live_bytes etc.)
/// include scratch bytes.
///
/// Contracts:
///  * The returned pointer is valid until the next AcquireScratch on the
///    same (thread, stream) with a size above the current capacity —
///    callers must not hold a pointer across a re-acquire that may grow
///    the buffer.
///  * Streams are independent: acquiring one never moves another.
///  * Contents are unspecified on acquire (previous use leaks through,
///    and a grow does NOT copy the old contents); kernels that need
///    zeros must clear explicitly.
///  * AcquireScratch never returns nullptr — elems == 0 on a never-grown
///    stream grows it to the smallest pool bucket, so the result is
///    always a valid pointer (asserted in test_pool.cpp; previously the
///    elems == 0 validity was unspecified).
///  * Thread-local by construction, so no locking and no false sharing;
///    a pointer must not be shared with other threads unless the owner
///    blocks until they finish (the fork/join pattern ParallelFor
///    guarantees).
enum class ScratchSlot {
  kGemmPackA = 0,   // MR-strip A panels of the packed GEMM engine
  kGemmPackB,       // NR-strip B panels of the packed GEMM engine
  kGemmRefPanel,    // op(B) panel of the reference (pre-PR5) kernel
  kLossProbs,       // per-pixel softmax probabilities of the loss kernel
  kStagingDecode,   // per-channel decode panel of the sample reader
  kExchangeFusion,  // fused gradient staging of the hvd exchanger
  kWirePack,        // packed-binary16 encode buffer of the comm wire
  kGroupIncoming,   // partial-sum receive buffer of the group collectives
  kConvImplicitRows,  // implicit-GEMM row-descriptor tables (DESIGN §15)
  kSlotCount,
};

/// Human-readable stream name ("gemm.pack_a", ...), for diagnostics.
const char* ScratchSlotName(ScratchSlot slot);

/// Returns this thread's buffer for `slot`, grown to at least `elems`
/// floats (and at least one pool bucket). Never returns nullptr.
float* AcquireScratch(ScratchSlot slot, std::size_t elems);

/// Same stream viewed as packed binary16 words: grows the float buffer
/// to cover `elems` uint16 elements and reinterprets it. A slot must be
/// used with one element type at a time (the wire pack path owns
/// kWirePack); capacities still account in floats.
std::uint16_t* AcquireScratchU16(ScratchSlot slot, std::size_t elems);

/// Same stream viewed as raw bytes (e.g. the implicit-GEMM row tables of
/// kConvImplicitRows): grows the float buffer to cover `bytes` and
/// reinterprets it. Pool blocks are 16-byte aligned, which bounds the
/// alignment any plain-old-data overlay may assume.
void* AcquireScratchBytes(ScratchSlot slot, std::size_t bytes);

/// Capacity (in floats) of this thread's buffer for `slot`; 0 before the
/// first acquire. Exposed for tests asserting reuse (no re-allocation
/// between same-sized acquires).
std::size_t ScratchCapacity(ScratchSlot slot);

}  // namespace exaclim
