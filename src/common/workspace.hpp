#pragma once

#include <cstddef>

namespace exaclim {

/// Thread-local scratch-buffer registry for the compute kernels.
///
/// Hot kernels (the packed GEMM engine, the reference GEMM panel walk)
/// need large pack/panel buffers per ParallelFor task. Allocating them
/// inside the task closure puts a malloc/free pair on every dispatch;
/// instead each worker thread keeps one grow-only buffer per named slot,
/// handed out by AcquireScratch(). Buffers persist for the lifetime of
/// the thread and grow monotonically to the largest size requested — the
/// same trade ConvWorkspace makes per layer (DESIGN §9), applied
/// per thread.
///
/// Contracts:
///  * The returned pointer is valid until the next AcquireScratch on the
///    same (thread, slot) with a larger size — callers must not hold a
///    pointer across a re-acquire that may grow the buffer.
///  * Slots are independent: acquiring one never moves another.
///  * Contents are unspecified on acquire (previous use leaks through);
///    kernels that need zeros must clear explicitly.
///  * Thread-local by construction, so no locking and no false sharing;
///    a pointer must not be shared with other threads unless the owner
///    blocks until they finish (the fork/join pattern ParallelFor
///    guarantees).
enum class ScratchSlot {
  kGemmPackA = 0,   // MR-strip A panels of the packed GEMM engine
  kGemmPackB,       // NR-strip B panels of the packed GEMM engine
  kGemmRefPanel,    // op(B) panel of the reference (pre-PR5) kernel
  kSlotCount,
};

/// Returns this thread's buffer for `slot`, grown to at least `elems`
/// floats. Never returns nullptr; elems == 0 yields a valid (possibly
/// empty-capacity) pointer only if the slot was grown before, so callers
/// should pass their true size.
float* AcquireScratch(ScratchSlot slot, std::size_t elems);

/// Capacity (in floats) of this thread's buffer for `slot`; 0 before the
/// first acquire. Exposed for tests asserting reuse (no re-allocation
/// between same-sized acquires).
std::size_t ScratchCapacity(ScratchSlot slot);

}  // namespace exaclim
