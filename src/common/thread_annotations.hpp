#pragma once

// Clang thread-safety-analysis attribute macros (no-ops on GCC/MSVC).
//
// Annotate shared state with the mutex that guards it and let the
// compiler prove every access is made under that mutex:
//
//   exaclim::Mutex mu_;
//   std::deque<Task> queue_ EXACLIM_GUARDED_BY(mu_);
//
//   void Push(Task t) {
//     MutexLock lock(mu_);   // SCOPED_CAPABILITY — analysis sees the hold
//     queue_.push_back(std::move(t));
//   }
//
// Build with Clang and -Werror=thread-safety (wired up automatically by
// the top-level CMakeLists) to turn missed-lock bugs into compile errors.
// See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.

#if defined(__clang__) && !defined(EXACLIM_NO_THREAD_SAFETY_ANALYSIS)
#define EXACLIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EXACLIM_THREAD_ANNOTATION(x)
#endif

// On a class: instances of this type are lockable capabilities.
#define EXACLIM_CAPABILITY(name) EXACLIM_THREAD_ANNOTATION(capability(name))

// On a class: RAII object that acquires a capability at construction and
// releases it at destruction (std::lock_guard-style).
#define EXACLIM_SCOPED_CAPABILITY EXACLIM_THREAD_ANNOTATION(scoped_lockable)

// On a data member: may only be read/written while holding `mu`.
#define EXACLIM_GUARDED_BY(mu) EXACLIM_THREAD_ANNOTATION(guarded_by(mu))

// On a pointer member: the pointed-to data is guarded by `mu`.
#define EXACLIM_PT_GUARDED_BY(mu) EXACLIM_THREAD_ANNOTATION(pt_guarded_by(mu))

// On a function: caller must hold the listed capabilities (exclusively /
// shared) for the duration of the call.
#define EXACLIM_REQUIRES(...) \
  EXACLIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EXACLIM_REQUIRES_SHARED(...) \
  EXACLIM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// On a function: acquires / releases the listed capabilities.
#define EXACLIM_ACQUIRE(...) \
  EXACLIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define EXACLIM_ACQUIRE_SHARED(...) \
  EXACLIM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define EXACLIM_RELEASE(...) \
  EXACLIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define EXACLIM_RELEASE_SHARED(...) \
  EXACLIM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// On a function: attempts acquisition; holds the capability iff the
// return value equals `ret`.
#define EXACLIM_TRY_ACQUIRE(ret, ...) \
  EXACLIM_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

// On a function: caller must NOT hold the listed capabilities (deadlock
// prevention for functions that acquire them internally).
#define EXACLIM_EXCLUDES(...) \
  EXACLIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On a function: returns a reference to the named capability.
#define EXACLIM_RETURN_CAPABILITY(x) \
  EXACLIM_THREAD_ANNOTATION(lock_returned(x))

// On a function: asserts (at runtime) that the capability is already
// held; informs the analysis without acquiring.
#define EXACLIM_ASSERT_CAPABILITY(...) \
  EXACLIM_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

// Escape hatch — use sparingly and leave a comment explaining why the
// analysis cannot see the invariant.
#define EXACLIM_NO_THREAD_SAFETY_ANALYSIS_ATTR \
  EXACLIM_THREAD_ANNOTATION(no_thread_safety_analysis)
