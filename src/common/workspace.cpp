#include "common/workspace.hpp"

#include <array>
#include <vector>

namespace exaclim {
namespace {

using SlotArray =
    std::array<std::vector<float>,
               static_cast<std::size_t>(ScratchSlot::kSlotCount)>;

SlotArray& ThreadSlots() {
  thread_local SlotArray slots;
  return slots;
}

}  // namespace

float* AcquireScratch(ScratchSlot slot, std::size_t elems) {
  std::vector<float>& buf = ThreadSlots()[static_cast<std::size_t>(slot)];
  if (buf.size() < elems) buf.resize(elems);
  return buf.data();
}

std::size_t ScratchCapacity(ScratchSlot slot) {
  return ThreadSlots()[static_cast<std::size_t>(slot)].size();
}

}  // namespace exaclim
