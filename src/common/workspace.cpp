#include "common/workspace.hpp"

#include <array>

#include "common/pool.hpp"

namespace exaclim {
namespace {

using SlotArray =
    std::array<PoolBuffer,
               static_cast<std::size_t>(ScratchSlot::kSlotCount)>;

SlotArray& ThreadSlots() {
  thread_local SlotArray slots;
  return slots;
}

}  // namespace

const char* ScratchSlotName(ScratchSlot slot) {
  switch (slot) {
    case ScratchSlot::kGemmPackA: return "gemm.pack_a";
    case ScratchSlot::kGemmPackB: return "gemm.pack_b";
    case ScratchSlot::kGemmRefPanel: return "gemm.ref_panel";
    case ScratchSlot::kLossProbs: return "loss.probs";
    case ScratchSlot::kStagingDecode: return "staging.decode";
    case ScratchSlot::kExchangeFusion: return "exchange.fusion";
    case ScratchSlot::kWirePack: return "comm.wire_pack";
    case ScratchSlot::kGroupIncoming: return "comm.group_incoming";
    case ScratchSlot::kConvImplicitRows: return "conv.implicit_rows";
    case ScratchSlot::kSlotCount: break;
  }
  return "?";
}

float* AcquireScratch(ScratchSlot slot, std::size_t elems) {
  PoolBuffer& buf = ThreadSlots()[static_cast<std::size_t>(slot)];
  if (buf.capacity() < elems || buf.null()) {
    // Grow (or first touch, including elems == 0): request at least one
    // element so the pool hands back a real block and the
    // never-returns-nullptr contract holds.
    buf = AcquirePoolBuffer(elems > 0 ? elems : 1);
  }
  return buf.data();
}

std::uint16_t* AcquireScratchU16(ScratchSlot slot, std::size_t elems) {
  // Two packed words per float element; round up so odd counts fit.
  return reinterpret_cast<std::uint16_t*>(
      AcquireScratch(slot, (elems + 1) / 2));
}

void* AcquireScratchBytes(ScratchSlot slot, std::size_t bytes) {
  return AcquireScratch(slot, (bytes + sizeof(float) - 1) / sizeof(float));
}

std::size_t ScratchCapacity(ScratchSlot slot) {
  return ThreadSlots()[static_cast<std::size_t>(slot)].capacity();
}

}  // namespace exaclim
