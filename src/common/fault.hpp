#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace exaclim {

/// One armed fault point. Sites are free-form dotted strings agreed on
/// between the injector and the instrumented code; the ones the library
/// itself consults are listed in DESIGN §8 ("Fault model"):
///
///   comm.drop                     drop a delivered message
///   comm.delay                    delay a delivered message by delay_seconds
///   comm.kill.<rank>              kill rank <rank> at SimWorld::Run entry
///   fs.read                       MockGlobalFs::Read throws (transient I/O)
///   pipeline.produce              InputPipeline producer attempt throws
///   checkpoint.write              SaveCheckpoint fails before the rename
///   epoch.step                    RunEpochs throws mid-epoch (job kill)
///   elastic.kill.<rank>           kill rank <rank> at training-step entry
///   elastic.exchange.kill.<rank>  kill rank <rank> mid-exchange, after the
///                                 tensor order was negotiated (peers starve
///                                 inside the allreduce rounds)
struct FaultSpec {
  std::string site;
  /// Chance each evaluation fires, drawn from the site's own seeded
  /// stream — deterministic given (site, seed) and the call sequence.
  double probability = 1.0;
  std::uint64_t seed = 0;
  /// Total number of times the site may fire; < 0 means unlimited.
  int max_triggers = -1;
  /// For delay-type sites (comm.delay): how long to hold the message.
  double delay_seconds = 0.0;
  /// Number of initial evaluations that can never fire — lets tests pin
  /// a fault to "the Nth call" (e.g. a specific epoch/step).
  std::int64_t skip_first = 0;
};

/// Deterministic, seedable, thread-safe fault-point registry. Library
/// code asks `ShouldInject(site)` at each fault point; the injector
/// answers false in O(one relaxed atomic load) while nothing is armed,
/// so instrumented hot paths cost nothing in production runs.
///
/// Sites are armed programmatically (Arm) or from the environment:
///
///   EXACLIM_FAULTS=site:prob[:seed[:max[:delay_s[:skip]]]],site:...
///
/// e.g. EXACLIM_FAULTS="comm.kill.1:1:7,pipeline.produce:0.3:99:6"
class FaultInjector {
 public:
  /// Process-wide instance used by all built-in fault points.
  static FaultInjector& Global();

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void Arm(const FaultSpec& spec) EXACLIM_EXCLUDES(mutex_);
  /// Parses the EXACLIM_FAULTS grammar; throws exaclim::Error on a
  /// malformed spec (a bad fault config should be loud, not silent) or
  /// on a site the library does not consult — a typo'd site would arm
  /// silently and never fire, so the error lists every valid site.
  /// Programmatic Arm() stays free-form for tests with synthetic sites.
  /// Returns the number of sites armed.
  int ArmFromString(std::string_view specs) EXACLIM_EXCLUDES(mutex_);
  /// Reads EXACLIM_FAULTS; no-op (returns 0) when unset or empty.
  int ArmFromEnv() EXACLIM_EXCLUDES(mutex_);
  void Disarm(std::string_view site) EXACLIM_EXCLUDES(mutex_);
  /// Clears every armed site and all counters.
  void Reset() EXACLIM_EXCLUDES(mutex_);

  /// Evaluates the fault point: true when the site is armed, past its
  /// skip_first window, under its trigger budget, and its stream draws
  /// under `probability`. Each fire bumps the "fault.injected.<site>"
  /// counter through the metric sink (below).
  bool ShouldInject(std::string_view site) EXACLIM_EXCLUDES(mutex_);

  /// delay_seconds of the armed spec, or 0 when the site is not armed.
  double DelaySeconds(std::string_view site) const EXACLIM_EXCLUDES(mutex_);
  bool IsArmed(std::string_view site) const EXACLIM_EXCLUDES(mutex_);

  std::int64_t InjectionCount(std::string_view site) const
      EXACLIM_EXCLUDES(mutex_);
  std::int64_t TotalInjections() const EXACLIM_EXCLUDES(mutex_);
  int ArmedSiteCount() const;

 private:
  struct Site {
    FaultSpec spec;
    Rng rng;
    std::int64_t evaluated = 0;
    std::int64_t fired = 0;
    explicit Site(const FaultSpec& s)
        : spec(s), rng(Rng(s.seed ^ 0xfa017ed5ull).Fork(s.site.size())) {}
  };

  mutable Mutex mutex_;
  std::map<std::string, Site, std::less<>> sites_ EXACLIM_GUARDED_BY(mutex_);
  std::int64_t total_fired_ EXACLIM_GUARDED_BY(mutex_) = 0;
  // Fast path: number of armed sites, readable without the mutex.
  std::atomic<int> armed_count_{0};
};

/// Bounded-retry schedule: exponential backoff with a deterministic
/// jitter stream and an overall wall-clock deadline. Pure data + pure
/// BackoffSeconds so schedules are unit-testable without sleeping.
struct RetryPolicy {
  int max_attempts = 4;
  double initial_backoff_s = 1e-3;
  double multiplier = 2.0;
  double max_backoff_s = 0.25;
  /// Fractional jitter: each backoff is scaled by a factor drawn
  /// deterministically from `seed` in [1 - jitter, 1 + jitter].
  double jitter = 0.1;
  double deadline_s = std::numeric_limits<double>::infinity();
  std::uint64_t seed = 0x5eedu;

  /// Backoff slept after failed attempt `attempt` (0-based). Monotone
  /// non-decreasing up to max_backoff_s before jitter; deterministic.
  double BackoffSeconds(int attempt) const;
  /// The full sleep schedule (max_attempts - 1 entries), for tests.
  std::vector<double> Schedule() const;
};

struct RetryOutcome {
  bool success = false;
  int attempts = 0;
  double slept_seconds = 0.0;
};

/// Runs `op` until it returns true, retrying per `policy` (sleeping the
/// backoff between attempts, stopping at max_attempts or the deadline).
/// Exceptions from `op` propagate — wrap them into a false return to
/// retry on them. Publishes "fault.retry.attempts" / "fault.retry.giveups".
RetryOutcome RunWithRetry(const RetryPolicy& policy, std::string_view what,
                          const std::function<bool()>& op);

/// The EXACLIM_FAULTS site vocabulary. Entries ending in '.' are
/// parameterized prefixes that take a nonnegative rank number
/// ("comm.kill." accepts "comm.kill.3"). RegisterFaultSite lets code
/// outside the core library (tests, new subsystems) extend the
/// vocabulary; registration is process-global and append-only.
void RegisterFaultSite(std::string_view site_or_prefix);
bool IsKnownFaultSite(std::string_view site);
std::vector<std::string> KnownFaultSites();

/// Counter bridge out of the base layer: common/ cannot depend on obs/,
/// so obs::Enable installs a sink that forwards these bumps into the
/// global MetricsRegistry. With no sink installed the bump is a no-op.
/// All fault-layer counters ("fault.*", "checkpoint.saved", ...) flow
/// through here so they appear in traces and bench JSON like any metric.
using FaultMetricSink = void (*)(std::string_view name, std::int64_t delta);
void SetFaultMetricSink(FaultMetricSink sink);
void FaultCounterBump(std::string_view name, std::int64_t delta = 1);

}  // namespace exaclim
