#pragma once

#include <cstddef>
#include <cstdint>

// Pooled tensor memory (DESIGN §12).
//
// A size-bucketed arena allocator with a pointer registry and per-thread
// free-lists, sitting underneath Tensor storage and the workspace scratch
// streams. Buffers are handed out as RAII PoolBuffer handles (pointer +
// capacity + bucket id); releasing a handle pushes the block onto the
// releasing thread's free-list (overflowing to the central list), so a
// warmed-up training step recycles every tensor temporary without
// touching the heap — the zero-steady-state-allocation invariant the
// ci.sh alloc-smoke budget enforces.
//
// Bucket policy: capacities are kMinBucketElems << bucket (64 floats,
// 128, 256, ... — power-of-two rounding). Requests above the largest
// bucket (EXACLIM_POOL_BUCKETS size classes, default 26 -> 8 GiB) and all
// requests with EXACLIM_POOL=off bypass the pool entirely and use plain
// operator new[], preserving pre-pool behaviour for bisection.
//
// Registry contract: every pooled block is created by ::operator new (so
// pool *misses* stay visible to the alloc_tracker interposer), carries a
// magic+bucket header, and is recorded in a central registry for the
// lifetime of the process. Blocks are never returned to the OS; free
// blocks wait on free-lists. PoolOwnsPointer() consults the registry,
// double-release trips the header magic check.

namespace exaclim {

// ------------------------------------------------------------- toggles --

/// Whether AcquirePoolBuffer serves from the arena. Seeded from
/// EXACLIM_POOL on first use (unset/"on"/"1" enabled; "off"/"0"
/// disabled). The flag is consulted at acquire time only: a buffer
/// always releases to wherever it came from (its bucket id), so the
/// switch may flip between phases without corrupting outstanding
/// handles.
bool PoolEnabled();

/// Programmatic override of the env default (tests, benches).
void SetPoolEnabled(bool enabled);

// ------------------------------------------------------ bucket policy --

/// Smallest bucket capacity in floats (256 bytes).
inline constexpr std::size_t kMinBucketElems = 64;

/// Bucket id of a direct-heap (non-pooled) buffer.
inline constexpr std::int32_t kPoolBucketHeap = -1;

/// Number of size classes: EXACLIM_POOL_BUCKETS, default 26, clamped to
/// [1, 40]. Read once on first use.
std::int32_t PoolBucketCount();

/// Size class serving a request of `elems` floats, or kPoolBucketHeap
/// when the request exceeds the largest bucket. elems == 0 maps to
/// bucket 0.
std::int32_t PoolBucketIndex(std::size_t elems);

/// Capacity in floats of bucket `bucket` (kMinBucketElems << bucket).
std::size_t PoolBucketElems(std::int32_t bucket);

// ------------------------------------------------------------- handle --

/// RAII handle to one pool block (or one heap fallback allocation).
/// Move-only; destruction returns the block to the pool. Contents are
/// unspecified on acquire — owners that need zeros clear explicitly
/// (Tensor does).
class PoolBuffer {
 public:
  PoolBuffer() = default;
  ~PoolBuffer() { Release(); }

  PoolBuffer(PoolBuffer&& other) noexcept
      : data_(other.data_), capacity_(other.capacity_),
        bucket_(other.bucket_) {
    other.data_ = nullptr;
    other.capacity_ = 0;
    other.bucket_ = kPoolBucketHeap;
  }
  PoolBuffer& operator=(PoolBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      data_ = other.data_;
      capacity_ = other.capacity_;
      bucket_ = other.bucket_;
      other.data_ = nullptr;
      other.capacity_ = 0;
      other.bucket_ = kPoolBucketHeap;
    }
    return *this;
  }

  PoolBuffer(const PoolBuffer&) = delete;
  PoolBuffer& operator=(const PoolBuffer&) = delete;

  float* data() { return data_; }
  const float* data() const { return data_; }
  /// Usable capacity in floats (the bucket capacity for pooled blocks,
  /// the exact request for heap fallbacks).
  std::size_t capacity() const { return capacity_; }
  std::int32_t bucket() const { return bucket_; }
  bool null() const { return data_ == nullptr; }

  /// Returns the block to the pool now (idempotent).
  void Release();

 private:
  friend PoolBuffer AcquirePoolBuffer(std::size_t elems);

  float* data_ = nullptr;
  std::size_t capacity_ = 0;
  std::int32_t bucket_ = kPoolBucketHeap;
};

/// Acquires a buffer of at least `elems` floats: this thread's free-list
/// first, then the central list, then a fresh ::operator new block (a
/// miss). elems == 0 returns a null handle with capacity 0. With the
/// pool disabled or the request over-bucket, falls back to operator
/// new[] with exact capacity.
PoolBuffer AcquirePoolBuffer(std::size_t elems);

// -------------------------------------------------- stats & registry --

/// Snapshot of the arena. live/peak count pooled bucket bytes handed to
/// outstanding handles; hits/misses count free-list serves vs fresh
/// block creations; outstanding_buffers counts live pooled handles;
/// block_count is the registry size (blocks ever created).
struct PoolStats {
  std::int64_t live_bytes = 0;
  std::int64_t peak_live_bytes = 0;
  std::int64_t hit_count = 0;
  std::int64_t miss_count = 0;
  std::int64_t outstanding_buffers = 0;
  std::int64_t block_count = 0;
};
PoolStats GetPoolStats();

/// Zeroes hit/miss counters and resets peak to the current live bytes
/// (phase boundary between warmup and a measured window).
void ResetPoolCounters();

/// True when `p` is the payload of a block the arena created (live or
/// free). Heap-fallback pointers are not registered.
bool PoolOwnsPointer(const float* p);

/// Flushes the calling thread's free-lists into the central pool (also
/// runs automatically at thread exit).
void FlushThreadPoolCache();

// ------------------------------------------------------ metric bridge --

/// The metric bridge to obs (common cannot link obs): PublishPoolMetrics
/// pushes "pool.live_bytes", "pool.peak_live_bytes", "pool.hit_count"
/// and "pool.miss_count" gauge updates through this pointer when
/// installed. obs::Enable installs a sink that forwards to the
/// MetricsRegistry; null means no publication.
using PoolMetricSink = void (*)(const char* name, double value);
void SetPoolMetricSink(PoolMetricSink sink);

/// Publishes the current PoolStats through the sink (no-op without one).
/// RankTrainer::Step calls this once per step.
void PublishPoolMetrics();

}  // namespace exaclim
