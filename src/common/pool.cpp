#include "common/pool.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "common/error.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace exaclim {
namespace {

// ------------------------------------------------------- block layout --

// Every pooled block is one ::operator new allocation: a 64-byte header
// followed by the 64-byte-aligned float payload. The header doubles as
// the registry entry (magic + bucket) and as the intrusive free-list
// link, so pushing/popping free blocks never allocates.
constexpr std::size_t kHeaderBytes = 64;
constexpr std::uint64_t kLiveMagic = 0xec11a110c0ffee01ull;
constexpr std::uint64_t kFreeMagic = 0xec11f4ee0ddba115ull;

struct BlockHeader {
  std::uint64_t magic = 0;
  std::int32_t bucket = 0;
  std::uint32_t pad = 0;
  BlockHeader* next = nullptr;  // free-list link while free
};
static_assert(sizeof(BlockHeader) <= kHeaderBytes,
              "header must fit its reserved slot");

float* PayloadOf(BlockHeader* h) {
  return reinterpret_cast<float*>(reinterpret_cast<char*>(h) +
                                  kHeaderBytes);
}

BlockHeader* HeaderOf(float* payload) {
  return reinterpret_cast<BlockHeader*>(reinterpret_cast<char*>(payload) -
                                        kHeaderBytes);
}

constexpr std::int32_t kMaxBuckets = 40;

// ------------------------------------------------------------- knobs --

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag([] {
    const char* env = std::getenv("EXACLIM_POOL");
    return env == nullptr ||
           (std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0);
  }());
  return flag;
}

// -------------------------------------------------------- central pool --

// Global free-lists plus the pointer registry. Intentionally immortal
// (function-local static pointer, never deleted): worker threads flush
// their caches here at exit, and a static Tensor destroyed after main
// may still release into it. All blocks stay reachable through the
// registry, so leak checkers classify them as still-reachable, not
// leaked.
struct CentralPool {
  Mutex mutex;
  std::array<BlockHeader*, kMaxBuckets> free_lists
      EXACLIM_GUARDED_BY(mutex){};
  std::vector<const float*> registry EXACLIM_GUARDED_BY(mutex);
};

CentralPool& Central() {
  // Immortal singleton, reachable via the static (LSan-clean).
  static CentralPool* central = new CentralPool;  // lint:allow(naked-new)
  return *central;
}

// -------------------------------------------------------------- stats --

std::atomic<std::int64_t> g_live_bytes{0};
std::atomic<std::int64_t> g_peak_live_bytes{0};
std::atomic<std::int64_t> g_hit_count{0};
std::atomic<std::int64_t> g_miss_count{0};
std::atomic<std::int64_t> g_outstanding{0};

void NoteLiveDelta(std::int64_t delta) {
  const std::int64_t live =
      g_live_bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
  std::int64_t peak = g_peak_live_bytes.load(std::memory_order_relaxed);
  while (live > peak && !g_peak_live_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

// -------------------------------------------------------- thread cache --

// Per-thread intrusive free-lists, capped per bucket; overflow and
// thread exit spill into the central lists. No heap use on any path.
constexpr std::int32_t kMaxCachedPerBucket = 8;

struct ThreadCache {
  std::array<BlockHeader*, kMaxBuckets> free_lists{};
  std::array<std::int32_t, kMaxBuckets> counts{};

  ~ThreadCache() { Flush(); }

  void Flush() {
    CentralPool& central = Central();
    MutexLock lock(central.mutex);
    for (std::int32_t b = 0; b < kMaxBuckets; ++b) {
      while (free_lists[static_cast<std::size_t>(b)] != nullptr) {
        BlockHeader* h = free_lists[static_cast<std::size_t>(b)];
        free_lists[static_cast<std::size_t>(b)] = h->next;
        h->next = central.free_lists[static_cast<std::size_t>(b)];
        central.free_lists[static_cast<std::size_t>(b)] = h;
      }
      counts[static_cast<std::size_t>(b)] = 0;
    }
  }
};

ThreadCache& Cache() {
  thread_local ThreadCache cache;
  return cache;
}

BlockHeader* PopBlock(std::int32_t bucket) {
  ThreadCache& cache = Cache();
  const auto b = static_cast<std::size_t>(bucket);
  if (cache.free_lists[b] != nullptr) {
    BlockHeader* h = cache.free_lists[b];
    cache.free_lists[b] = h->next;
    --cache.counts[b];
    return h;
  }
  CentralPool& central = Central();
  MutexLock lock(central.mutex);
  BlockHeader* h = central.free_lists[b];
  if (h != nullptr) central.free_lists[b] = h->next;
  return h;
}

void PushBlock(BlockHeader* h) {
  ThreadCache& cache = Cache();
  const auto b = static_cast<std::size_t>(h->bucket);
  if (cache.counts[b] < kMaxCachedPerBucket) {
    h->next = cache.free_lists[b];
    cache.free_lists[b] = h;
    ++cache.counts[b];
    return;
  }
  CentralPool& central = Central();
  MutexLock lock(central.mutex);
  h->next = central.free_lists[b];
  central.free_lists[b] = h;
}

BlockHeader* NewBlock(std::int32_t bucket) {
  const std::size_t bytes =
      kHeaderBytes + PoolBucketElems(bucket) * sizeof(float);
  // Deliberately ::operator new, not malloc: a pool MISS must stay
  // visible to the alloc_tracker interposer, so the zero-alloc gate
  // cannot be cheated by routing tensor traffic around the counters.
  // lint:allow(naked-new) — the arena is the owner; blocks are immortal.
  auto* h = static_cast<BlockHeader*>(
      ::operator new(bytes, std::align_val_t{kHeaderBytes}));
  h->bucket = bucket;
  h->pad = 0;
  h->next = nullptr;
  CentralPool& central = Central();
  MutexLock lock(central.mutex);
  central.registry.push_back(PayloadOf(h));
  return h;
}

std::atomic<PoolMetricSink> g_pool_sink{nullptr};

}  // namespace

// -------------------------------------------------------------- public --

bool PoolEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetPoolEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

std::int32_t PoolBucketCount() {
  static const std::int32_t count = [] {
    if (const char* env = std::getenv("EXACLIM_POOL_BUCKETS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != nullptr && *end == '\0' && v >= 1 && v <= kMaxBuckets) {
        return static_cast<std::int32_t>(v);
      }
    }
    return std::int32_t{26};
  }();
  return count;
}

std::int32_t PoolBucketIndex(std::size_t elems) {
  std::size_t cap = kMinBucketElems;
  std::int32_t bucket = 0;
  while (cap < elems) {
    cap <<= 1;
    ++bucket;
  }
  return bucket < PoolBucketCount() ? bucket : kPoolBucketHeap;
}

std::size_t PoolBucketElems(std::int32_t bucket) {
  EXACLIM_CHECK(bucket >= 0 && bucket < kMaxBuckets,
                "bucket " << bucket << " out of range");
  return kMinBucketElems << bucket;
}

void PoolBuffer::Release() {
  if (data_ == nullptr) return;
  if (bucket_ == kPoolBucketHeap) {
    delete[] data_;  // lint:allow(naked-new) heap escape hatch
  } else {
    BlockHeader* h = HeaderOf(data_);
    EXACLIM_DCHECK(h->magic == kLiveMagic,
                   "pool release of corrupt or double-released block");
    h->magic = kFreeMagic;
    NoteLiveDelta(-static_cast<std::int64_t>(capacity_ * sizeof(float)));
    g_outstanding.fetch_sub(1, std::memory_order_relaxed);
    PushBlock(h);
  }
  data_ = nullptr;
  capacity_ = 0;
  bucket_ = kPoolBucketHeap;
}

PoolBuffer AcquirePoolBuffer(std::size_t elems) {
  PoolBuffer buf;
  if (elems == 0) return buf;
  const std::int32_t bucket =
      PoolEnabled() ? PoolBucketIndex(elems) : kPoolBucketHeap;
  if (bucket == kPoolBucketHeap) {
    // Escape hatch (EXACLIM_POOL=off) or over-bucket request: exact-size
    // heap allocation, tracked like any other operator new[].
    buf.data_ = new float[elems];  // lint:allow(naked-new)
    buf.capacity_ = elems;
    buf.bucket_ = kPoolBucketHeap;
    return buf;
  }
  BlockHeader* h = PopBlock(bucket);
  if (h != nullptr) {
    EXACLIM_DCHECK(h->magic == kFreeMagic && h->bucket == bucket,
                   "pool free-list block corrupt");
    g_hit_count.fetch_add(1, std::memory_order_relaxed);
  } else {
    h = NewBlock(bucket);
    g_miss_count.fetch_add(1, std::memory_order_relaxed);
  }
  h->magic = kLiveMagic;
  buf.data_ = PayloadOf(h);
  buf.capacity_ = PoolBucketElems(bucket);
  buf.bucket_ = bucket;
  NoteLiveDelta(static_cast<std::int64_t>(buf.capacity_ * sizeof(float)));
  g_outstanding.fetch_add(1, std::memory_order_relaxed);
  return buf;
}

PoolStats GetPoolStats() {
  PoolStats stats;
  stats.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  stats.peak_live_bytes = g_peak_live_bytes.load(std::memory_order_relaxed);
  stats.hit_count = g_hit_count.load(std::memory_order_relaxed);
  stats.miss_count = g_miss_count.load(std::memory_order_relaxed);
  stats.outstanding_buffers =
      g_outstanding.load(std::memory_order_relaxed);
  CentralPool& central = Central();
  MutexLock lock(central.mutex);
  stats.block_count = static_cast<std::int64_t>(central.registry.size());
  return stats;
}

void ResetPoolCounters() {
  g_hit_count.store(0, std::memory_order_relaxed);
  g_miss_count.store(0, std::memory_order_relaxed);
  g_peak_live_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
}

bool PoolOwnsPointer(const float* p) {
  if (p == nullptr) return false;
  CentralPool& central = Central();
  MutexLock lock(central.mutex);
  for (const float* payload : central.registry) {
    if (payload == p) return true;
  }
  return false;
}

void FlushThreadPoolCache() { Cache().Flush(); }

void SetPoolMetricSink(PoolMetricSink sink) {
  g_pool_sink.store(sink, std::memory_order_release);
}

void PublishPoolMetrics() {
  const PoolMetricSink sink = g_pool_sink.load(std::memory_order_acquire);
  if (sink == nullptr) return;
  const PoolStats stats = GetPoolStats();
  sink("pool.live_bytes", static_cast<double>(stats.live_bytes));
  sink("pool.peak_live_bytes",
       static_cast<double>(stats.peak_live_bytes));
  sink("pool.hit_count", static_cast<double>(stats.hit_count));
  sink("pool.miss_count", static_cast<double>(stats.miss_count));
}

}  // namespace exaclim
