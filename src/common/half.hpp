#pragma once

#include <cstdint>
#include <iosfwd>

namespace exaclim {

/// Software IEEE 754 binary16 ("half") value.
///
/// Summit's Tensor Cores operate on FP16 inputs; on this substrate we
/// emulate the storage format exactly (round-to-nearest-even conversion,
/// denormals, infinities, NaN) so that the paper's mixed-precision
/// numerical-stability findings (Sec V-B1) reproduce faithfully. Arithmetic
/// is performed by converting through float, matching the FP16-in/FP32-out
/// accumulate behaviour of the Tensor Core FMA path.
class Half {
 public:
  constexpr Half() = default;

  /// Converts from float with round-to-nearest-even, overflowing to +/-inf.
  explicit Half(float value) : bits_(FromFloat(value)) {}

  /// Reinterprets raw binary16 bits.
  static constexpr Half FromBits(std::uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  /// Converts to float exactly (every binary16 value is representable).
  float ToFloat() const { return ToFloatImpl(bits_); }
  explicit operator float() const { return ToFloat(); }

  constexpr std::uint16_t bits() const { return bits_; }

  bool IsNan() const {
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) != 0;
  }
  bool IsInf() const {
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) == 0;
  }
  bool IsFinite() const { return (bits_ & 0x7c00u) != 0x7c00u; }

  /// Largest finite binary16 value (65504).
  static constexpr Half Max() { return FromBits(0x7bffu); }
  /// Smallest positive normal binary16 value (2^-14).
  static constexpr Half MinNormal() { return FromBits(0x0400u); }
  /// Smallest positive subnormal binary16 value (2^-24).
  static constexpr Half MinSubnormal() { return FromBits(0x0001u); }

  friend bool operator==(Half a, Half b) {
    if (a.IsNan() || b.IsNan()) return false;
    // +0 == -0.
    if (((a.bits_ | b.bits_) & 0x7fffu) == 0) return true;
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(Half a, Half b) { return !(a == b); }
  friend bool operator<(Half a, Half b) { return a.ToFloat() < b.ToFloat(); }

  friend Half operator+(Half a, Half b) {
    return Half(a.ToFloat() + b.ToFloat());
  }
  friend Half operator-(Half a, Half b) {
    return Half(a.ToFloat() - b.ToFloat());
  }
  friend Half operator*(Half a, Half b) {
    return Half(a.ToFloat() * b.ToFloat());
  }
  friend Half operator/(Half a, Half b) {
    return Half(a.ToFloat() / b.ToFloat());
  }
  friend Half operator-(Half a) { return FromBits(a.bits_ ^ 0x8000u); }

  Half& operator+=(Half other) { return *this = *this + other; }
  Half& operator-=(Half other) { return *this = *this - other; }
  Half& operator*=(Half other) { return *this = *this * other; }
  Half& operator/=(Half other) { return *this = *this / other; }

 private:
  static std::uint16_t FromFloat(float value);
  static float ToFloatImpl(std::uint16_t bits);

  std::uint16_t bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, Half h);

/// Relative unit roundoff of binary16 (2^-11); useful for test tolerances.
inline constexpr float kHalfEpsilonRel = 1.0f / 2048.0f;

}  // namespace exaclim
