#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/sync.hpp"

namespace exaclim {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
Mutex g_sink_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double t =
      std::chrono::duration<double>(Clock::now() - start).count();
  MutexLock lock(g_sink_mutex);
  std::fprintf(stderr, "[%8.3f %-5s] %.*s\n", t, LevelName(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace exaclim
