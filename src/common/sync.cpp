#include "common/sync.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace exaclim {
namespace detail {

#if EXACLIM_DCHECK_ENABLED

namespace {
// Ranks of the ranked mutexes the calling thread currently holds, in
// acquisition order. Unranked mutexes (rank < 0) are not tracked.
thread_local std::vector<int> t_held_ranks;
}  // namespace

void NoteLockAcquired(int rank) {
  if (rank < 0) return;
  if (!t_held_ranks.empty()) {
    const int deepest = t_held_ranks.back();
    EXACLIM_CHECK(rank > deepest,
                  "lock-order violation: acquiring mutex rank "
                      << rank << " while holding rank " << deepest
                      << " (ranked mutexes must be taken in increasing "
                         "rank order)");
  }
  t_held_ranks.push_back(rank);
}

void NoteLockRecorded(int rank) {
  if (rank < 0) return;
  t_held_ranks.push_back(rank);
}

void NoteLockReleased(int rank) {
  if (rank < 0) return;
  // Locks are usually released LIFO, but out-of-order release is legal —
  // erase the most recent matching entry.
  const auto it =
      std::find(t_held_ranks.rbegin(), t_held_ranks.rend(), rank);
  EXACLIM_CHECK(it != t_held_ranks.rend(),
                "releasing mutex rank " << rank << " not held by thread");
  t_held_ranks.erase(std::next(it).base());
}

int HeldRankedLocks() { return static_cast<int>(t_held_ranks.size()); }

#else  // !EXACLIM_DCHECK_ENABLED

void NoteLockAcquired(int) {}
void NoteLockRecorded(int) {}
void NoteLockReleased(int) {}
int HeldRankedLocks() { return 0; }

#endif

}  // namespace detail

#if EXACLIM_DCHECK_ENABLED

ReentrancyGuard::Scope::Scope(ReentrancyGuard& guard, const char* where)
    : guard_(guard) {
  EXACLIM_CHECK(!guard_.busy_.exchange(true, std::memory_order_acq_rel),
                "reentrant/concurrent call into " << where
                << " on an object documented as single-caller");
}

ReentrancyGuard::Scope::~Scope() {
  guard_.busy_.store(false, std::memory_order_release);
}

#endif  // EXACLIM_DCHECK_ENABLED

}  // namespace exaclim
