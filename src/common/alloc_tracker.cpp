#include "common/alloc_tracker.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/error.hpp"
#include "common/logging.hpp"

#if __has_include(<malloc.h>)
#include <malloc.h>
#define EXACLIM_HAVE_MALLOC_USABLE_SIZE 1
#endif

// The interposed operators run before main, during static init/teardown
// and inside arbitrary library code, so everything here obeys three
// rules: (1) only constant-initialized globals (no dynamic initializers
// racing with early allocations), (2) the tracker never allocates through
// the interposed operators itself (raw std::malloc + a thread-local
// bypass flag for the few places that must touch the heap), and (3) the
// per-allocation fast path is wait-free: bump relaxed atomics on a
// record only this thread writes.

namespace exaclim {
namespace {

constexpr int kMaxThreadRecords = 512;

// Tracking mode; -1 = not yet read from the environment.
enum : int { kModeUninit = -1, kModeOff = 0, kModeOn = 1, kModeStrict = 2 };
std::atomic<int> g_mode{kModeUninit};

std::atomic<AllocMetricSink> g_metric_sink{nullptr};

// Per-thread allocation record. Single writer (the owning thread), many
// readers (census aggregation) — hence relaxed atomics rather than plain
// fields. Records are malloc'd once per thread and intentionally leaked:
// GlobalAllocCounters must keep seeing a thread's history after it
// exits, and a pool worker's record must never dangle mid-sum.
struct ThreadRecord {
  std::atomic<std::int64_t> count{0};
  std::atomic<std::int64_t> bytes{0};
  std::atomic<std::int64_t> free_count{0};
  std::atomic<std::int64_t> freed_bytes{0};
  std::atomic<std::int64_t> peak_live_bytes{0};
};

std::atomic<ThreadRecord*> g_thread_records[kMaxThreadRecords];
std::atomic<int> g_thread_record_count{0};
// Threads past the fixed capacity share this record (multi-writer, still
// correct — just contended).
ThreadRecord g_overflow_record;

thread_local ThreadRecord* t_record = nullptr;
// Re-entrancy / noise gate: allocations made while the tracker itself
// (registration, violation reports, metric publication) touches the heap
// bypass counting entirely.
thread_local bool t_bypass = false;
// Innermost open region on this thread; regions chain via parent_.
thread_local ScopedAllocCheck* t_region_head = nullptr;
// Number of open kAssertNoAlloc regions: lets the allocation fast path
// skip the region-chain walk entirely in the common census-only case.
thread_local int t_assert_depth = 0;

int InitModeFromEnv() {
  int mode = kModeOff;
  if (const char* env = std::getenv("EXACLIM_ALLOC_TRACK")) {
    if (std::strcmp(env, "strict") == 0) {
      mode = kModeStrict;
    } else if (*env != '\0' && std::strcmp(env, "0") != 0) {
      mode = kModeOn;
    }
  }
  int expected = kModeUninit;
  g_mode.compare_exchange_strong(expected, mode, std::memory_order_relaxed);
  return g_mode.load(std::memory_order_relaxed);
}

inline int Mode() {
  const int mode = g_mode.load(std::memory_order_relaxed);
  return mode == kModeUninit ? InitModeFromEnv() : mode;
}

ThreadRecord* Record() {
  if (t_record != nullptr) return t_record;
  t_bypass = true;
  void* raw = std::malloc(sizeof(ThreadRecord));
  ThreadRecord* record =  // placement new into raw malloc; intentionally
      raw != nullptr ? new (raw) ThreadRecord()  // lint:allow(naked-new)
                     : &g_overflow_record;       // leaked (see above).
  if (record != &g_overflow_record) {
    const int slot =
        g_thread_record_count.fetch_add(1, std::memory_order_relaxed);
    if (slot < kMaxThreadRecords) {
      g_thread_records[slot].store(record, std::memory_order_release);
    } else {
      // Registry full: fold this thread into the shared overflow record
      // (also registered below on first use) so no allocation is lost.
      record->~ThreadRecord();
      std::free(raw);
      record = &g_overflow_record;
    }
  }
  t_bypass = false;
  t_record = record;
  return record;
}

inline std::int64_t UsableBytes(void* ptr, std::size_t requested) {
#if defined(EXACLIM_HAVE_MALLOC_USABLE_SIZE)
  const std::size_t usable = malloc_usable_size(ptr);
  return static_cast<std::int64_t>(usable != 0 ? usable : requested);
#else
  (void)ptr;
  return static_cast<std::int64_t>(requested);
#endif
}

AllocCounters SnapshotRecord(const ThreadRecord& r) {
  AllocCounters c;
  c.count = r.count.load(std::memory_order_relaxed);
  c.bytes = r.bytes.load(std::memory_order_relaxed);
  c.free_count = r.free_count.load(std::memory_order_relaxed);
  c.freed_bytes = r.freed_bytes.load(std::memory_order_relaxed);
  c.peak_live_bytes = r.peak_live_bytes.load(std::memory_order_relaxed);
  return c;
}

// ------------------------------------------------------- site registry --

constexpr int kMaxAllocSites = 256;

struct SiteSlot {
  std::atomic<const char*> name{nullptr};
  const char* file = nullptr;
  int line = 0;
  std::atomic<std::int64_t> count{0};
  std::atomic<std::int64_t> bytes{0};
  std::atomic<std::int64_t> violations{0};
};

SiteSlot g_sites[kMaxAllocSites];
std::atomic<int> g_site_count{0};

SiteSlot& Site(AllocSiteId id) {
  return g_sites[id >= 0 && id < kMaxAllocSites ? id : kMaxAllocSites - 1];
}

}  // namespace

// Counting hook shared by every interposed allocation path. Must not
// allocate.
void NoteTrackedAllocation(std::size_t bytes) {
  ThreadRecord* r = Record();
  const auto delta = static_cast<std::int64_t>(bytes);
  r->count.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t total =
      r->bytes.fetch_add(delta, std::memory_order_relaxed) + delta;
  const std::int64_t live =
      total - r->freed_bytes.load(std::memory_order_relaxed);
  if (live > r->peak_live_bytes.load(std::memory_order_relaxed)) {
    r->peak_live_bytes.store(live, std::memory_order_relaxed);
  }
  if (t_assert_depth > 0) {
    for (ScopedAllocCheck* region = t_region_head; region != nullptr;
         region = region->parent_) {
      if (region->mode_ != ScopedAllocCheck::Mode::kAssertNoAlloc) continue;
      ++region->violations_;
      if (region->first_violation_bytes_ < 0) {
        region->first_violation_bytes_ = delta;
      }
      Site(region->site_).violations.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

namespace {

inline void NoteTrackedFree(std::int64_t bytes) {
  ThreadRecord* r = Record();
  r->free_count.fetch_add(1, std::memory_order_relaxed);
  r->freed_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

inline bool ShouldTrack() { return Mode() != kModeOff && !t_bypass; }

void* TrackedAlloc(std::size_t size) {
  void* ptr = std::malloc(size != 0 ? size : 1);
  if (ptr != nullptr && ShouldTrack()) {
    NoteTrackedAllocation(static_cast<std::size_t>(UsableBytes(ptr, size)));
  }
  return ptr;
}

void* TrackedAllocAligned(std::size_t size, std::size_t alignment) {
  void* ptr = nullptr;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  if (posix_memalign(&ptr, alignment, size != 0 ? size : alignment) != 0) {
    return nullptr;
  }
  if (ShouldTrack()) {
    NoteTrackedAllocation(static_cast<std::size_t>(UsableBytes(ptr, size)));
  }
  return ptr;
}

void TrackedFree(void* ptr, std::size_t size_hint) {
  if (ptr == nullptr) return;
  if (ShouldTrack()) {
    NoteTrackedFree(size_hint != 0 ? static_cast<std::int64_t>(size_hint)
                                   : UsableBytes(ptr, 0));
  }
  std::free(ptr);
}

}  // namespace

// ------------------------------------------------------------- toggles --

bool AllocTrackingEnabled() { return Mode() != kModeOff; }

bool AllocTrackingStrict() { return Mode() == kModeStrict; }

void SetAllocTracking(bool enabled) {
  Mode();  // settle the env default first so strict can't resurrect later
  g_mode.store(enabled ? kModeOn : kModeOff, std::memory_order_relaxed);
}

// ------------------------------------------------------------ counters --

AllocCounters ThreadAllocCounters() { return SnapshotRecord(*Record()); }

AllocCounters GlobalAllocCounters() {
  AllocCounters total;
  const int n = g_thread_record_count.load(std::memory_order_relaxed);
  const int limit = n < kMaxThreadRecords ? n : kMaxThreadRecords;
  for (int i = 0; i < limit; ++i) {
    const ThreadRecord* r =
        g_thread_records[i].load(std::memory_order_acquire);
    if (r == nullptr) continue;  // registration in flight
    const AllocCounters c = SnapshotRecord(*r);
    total.count += c.count;
    total.bytes += c.bytes;
    total.free_count += c.free_count;
    total.freed_bytes += c.freed_bytes;
    total.peak_live_bytes += c.peak_live_bytes;
  }
  const AllocCounters overflow = SnapshotRecord(g_overflow_record);
  total.count += overflow.count;
  total.bytes += overflow.bytes;
  total.free_count += overflow.free_count;
  total.freed_bytes += overflow.freed_bytes;
  total.peak_live_bytes += overflow.peak_live_bytes;
  return total;
}

// ------------------------------------------------------- site registry --

AllocSiteId RegisterAllocSite(const char* name, const char* file, int line) {
  const int slot = g_site_count.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kMaxAllocSites - 1) {
    // Shared overflow slot: census data for it is meaningless but nothing
    // crashes, and AllocSiteCount stays clamped to the capacity.
    g_site_count.store(kMaxAllocSites, std::memory_order_relaxed);
    SiteSlot& overflow = g_sites[kMaxAllocSites - 1];
    overflow.name.store("<overflow>", std::memory_order_release);
    return kMaxAllocSites - 1;
  }
  SiteSlot& site = g_sites[slot];
  site.file = file;
  site.line = line;
  site.name.store(name, std::memory_order_release);  // publishes file/line
  return slot;
}

int AllocSiteCount() {
  const int n = g_site_count.load(std::memory_order_relaxed);
  return n < kMaxAllocSites ? n : kMaxAllocSites;
}

AllocSiteInfo GetAllocSite(AllocSiteId id) {
  AllocSiteInfo info;
  if (id < 0 || id >= AllocSiteCount()) return info;
  const SiteSlot& site = g_sites[id];
  info.name = site.name.load(std::memory_order_acquire);
  info.file = site.file;
  info.line = site.line;
  info.count = site.count.load(std::memory_order_relaxed);
  info.bytes = site.bytes.load(std::memory_order_relaxed);
  info.violations = site.violations.load(std::memory_order_relaxed);
  return info;
}

AllocSiteId FindAllocSite(const char* name) {
  const int n = AllocSiteCount();
  for (int id = 0; id < n; ++id) {
    const char* candidate = g_sites[id].name.load(std::memory_order_acquire);
    if (candidate != nullptr && std::strcmp(candidate, name) == 0) return id;
  }
  return -1;
}

void ResetAllocSiteStats() {
  const int n = AllocSiteCount();
  for (int id = 0; id < n; ++id) {
    g_sites[id].count.store(0, std::memory_order_relaxed);
    g_sites[id].bytes.store(0, std::memory_order_relaxed);
    g_sites[id].violations.store(0, std::memory_order_relaxed);
  }
}

// ------------------------------------------------------ region guards --

void SetAllocMetricSink(AllocMetricSink sink) {
  g_metric_sink.store(sink, std::memory_order_release);
}

namespace {

void PublishCensus(const char* site_name, std::int64_t count,
                   std::int64_t bytes) {
  AllocMetricSink sink = g_metric_sink.load(std::memory_order_acquire);
  if (sink == nullptr || site_name == nullptr) return;
  // The sink (obs registry) allocates on first use of a gauge name; keep
  // that out of the census.
  t_bypass = true;
  char name[128];
  std::snprintf(name, sizeof(name), "alloc.count.%s", site_name);
  sink(name, static_cast<double>(count));
  std::snprintf(name, sizeof(name), "alloc.bytes.%s", site_name);
  sink(name, static_cast<double>(bytes));
  t_bypass = false;
}

}  // namespace

ScopedAllocCheck::ScopedAllocCheck(AllocSiteId site, Mode mode, Scope scope)
    : site_(site), mode_(mode), scope_(scope) {
  if (!AllocTrackingEnabled()) return;
  EXACLIM_CHECK(mode_ != Mode::kAssertNoAlloc || scope_ == Scope::kThread,
                "EXACLIM_ASSERT_NO_ALLOC attributes allocations to the "
                "calling thread; a global-scope assert region is meaningless");
  active_ = true;
  parent_ = t_region_head;
  t_region_head = this;
  if (mode_ == Mode::kAssertNoAlloc) ++t_assert_depth;
  const AllocCounters entry = scope_ == Scope::kThread
                                  ? ThreadAllocCounters()
                                  : GlobalAllocCounters();
  entry_count_ = entry.count;
  entry_bytes_ = entry.bytes;
}

std::int64_t ScopedAllocCheck::count() const {
  if (!active_) return 0;
  const AllocCounters now = scope_ == Scope::kThread ? ThreadAllocCounters()
                                                     : GlobalAllocCounters();
  return now.count - entry_count_;
}

std::int64_t ScopedAllocCheck::bytes() const {
  if (!active_) return 0;
  const AllocCounters now = scope_ == Scope::kThread ? ThreadAllocCounters()
                                                     : GlobalAllocCounters();
  return now.bytes - entry_bytes_;
}

ScopedAllocCheck::~ScopedAllocCheck() {
  if (!active_) return;
  const std::int64_t region_count = count();
  const std::int64_t region_bytes = bytes();
  t_region_head = parent_;
  if (mode_ == Mode::kAssertNoAlloc) --t_assert_depth;

  SiteSlot& site = Site(site_);
  site.count.fetch_add(region_count, std::memory_order_relaxed);
  site.bytes.fetch_add(region_bytes, std::memory_order_relaxed);
  const char* site_name = site.name.load(std::memory_order_acquire);

  if (mode_ == Mode::kCensus) {
    PublishCensus(site_name, region_count, region_bytes);
    return;
  }
  if (violations_ == 0) return;
  t_bypass = true;
  {
    EXACLIM_LOG(kError) << "no-alloc region '"
                        << (site_name != nullptr ? site_name : "?") << "' ("
                        << (site.file != nullptr ? site.file : "?") << ":"
                        << site.line << ") saw " << violations_
                        << " heap allocation(s), first of "
                        << first_violation_bytes_ << " bytes";
  }
  t_bypass = false;
  if (AllocTrackingStrict()) {
    // A throw would escape a destructor; strict mode is a CI gate, so
    // fail hard and loud instead.
    std::fputs("EXACLIM_ALLOC_TRACK=strict: allocation inside no-alloc "
               "region; aborting\n",
               stderr);
    std::abort();
  }
}

}  // namespace exaclim

// ---------------------------------------------------------- interposer --
// Global replacements for the allocation functions ([new.delete] — the
// program-wide definitions every TU in the binary uses once this object
// file is linked). All forms funnel into TrackedAlloc/TrackedFree above.

void* operator new(std::size_t size) {
  void* ptr = exaclim::TrackedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = exaclim::TrackedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return exaclim::TrackedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return exaclim::TrackedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* ptr = exaclim::TrackedAllocAligned(
      size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* ptr = exaclim::TrackedAllocAligned(
      size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return exaclim::TrackedAllocAligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return exaclim::TrackedAllocAligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { exaclim::TrackedFree(ptr, 0); }

void operator delete[](void* ptr) noexcept { exaclim::TrackedFree(ptr, 0); }

void operator delete(void* ptr, std::size_t) noexcept {
  // Ignore the compiler's size hint: bytes freed are measured the same
  // way bytes allocated were (usable size), keeping live-byte math
  // internally consistent.
  exaclim::TrackedFree(ptr, 0);
}

void operator delete[](void* ptr, std::size_t) noexcept {
  exaclim::TrackedFree(ptr, 0);
}

void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  exaclim::TrackedFree(ptr, 0);
}

void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  exaclim::TrackedFree(ptr, 0);
}

void operator delete(void* ptr, std::align_val_t) noexcept {
  exaclim::TrackedFree(ptr, 0);
}

void operator delete[](void* ptr, std::align_val_t) noexcept {
  exaclim::TrackedFree(ptr, 0);
}

void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  exaclim::TrackedFree(ptr, 0);
}

void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  exaclim::TrackedFree(ptr, 0);
}
