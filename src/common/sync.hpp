#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"

// Debug-only lock-order bookkeeping; compiles to nothing in Release so
// Mutex is exactly a std::mutex on the hot path. The acquire note runs
// BEFORE the underlying lock (it checks acquisition *intent*, which is
// what deadlock ordering is about), so a violation throws with the mutex
// untouched.
#if EXACLIM_DCHECK_ENABLED
#define EXACLIM_NOTE_LOCK_INTENT(rank) \
  ::exaclim::detail::NoteLockAcquired(rank)
#define EXACLIM_NOTE_LOCK_RECORDED(rank) \
  ::exaclim::detail::NoteLockRecorded(rank)
#define EXACLIM_NOTE_LOCK_RELEASED(rank) \
  ::exaclim::detail::NoteLockReleased(rank)
#else
#define EXACLIM_NOTE_LOCK_INTENT(rank) static_cast<void>(0)
#define EXACLIM_NOTE_LOCK_RECORDED(rank) static_cast<void>(0)
#define EXACLIM_NOTE_LOCK_RELEASED(rank) static_cast<void>(0)
#endif

namespace exaclim {

namespace detail {
// Debug-build lock-order checker (see sync.cpp). Every Mutex constructed
// with a non-negative rank participates: a thread may only acquire a
// ranked mutex whose rank is strictly greater than every ranked mutex it
// already holds, so any potential cyclic lock order trips an
// exaclim::Error deterministically instead of deadlocking rarely.
// Compiled to no-ops in Release.
void NoteLockAcquired(int rank);
// Records a hold without the order check — for try-locks, which never
// block and therefore cannot deadlock.
void NoteLockRecorded(int rank);
void NoteLockReleased(int rank);
// Number of ranked locks the calling thread currently holds (test hook).
int HeldRankedLocks();
}  // namespace detail

/// Annotated mutex. The only mutex type allowed outside this header
/// (tools/lint.py enforces the rule) — wrapping std::mutex here is what
/// lets Clang's -Wthread-safety prove every EXACLIM_GUARDED_BY field is
/// accessed under its lock.
class EXACLIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// A mutex with a lock-order rank. Debug builds enforce that ranked
  /// mutexes are always acquired in strictly increasing rank order.
  explicit Mutex(int rank) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() EXACLIM_ACQUIRE() {
    EXACLIM_NOTE_LOCK_INTENT(rank_);
    mu_.lock();
  }

  void Unlock() EXACLIM_RELEASE() {
    EXACLIM_NOTE_LOCK_RELEASED(rank_);
    mu_.unlock();
  }

  bool TryLock() EXACLIM_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    EXACLIM_NOTE_LOCK_RECORDED(rank_);
    return true;
  }

  int rank() const { return rank_; }

 private:
  friend class MutexLock;
  std::mutex mu_;
  const int rank_ = -1;  // -1 = unranked, exempt from order checking
};

/// RAII scoped lock over Mutex (std::lock_guard/std::unique_lock stand-in
/// that the thread-safety analysis understands). Also the handle CondVar
/// waits on, so waits go through std::condition_variable's fast path.
class EXACLIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) EXACLIM_ACQUIRE(mu)
      // Comma operand: note the acquisition intent before blocking on
      // the mutex, so an order violation throws without holding it.
      : mu_(mu), lock_((EXACLIM_NOTE_LOCK_INTENT(mu.rank()), mu.mu_)) {}

  ~MutexLock() EXACLIM_RELEASE() {
    EXACLIM_NOTE_LOCK_RELEASED(mu_.rank());
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock.
///
/// Call sites should spell the wait loop out so the analysis sees the
/// guarded reads happen under the lock:
///
///   MutexLock lock(mu_);
///   while (queue_.empty() && !stop_) cv_.Wait(lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, blocks, and reacquires before return.
  /// (The lock-order bookkeeping treats the hold as continuous: a wait
  /// neither releases nor re-checks the rank, matching the invariant
  /// that the caller still logically owns the mutex.)
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Convenience predicate wait for un-annotated call sites (tests,
  /// lambdas); annotated classes should prefer the explicit loop form.
  template <typename Pred>
  void Wait(MutexLock& lock, Pred&& pred) {
    while (!pred()) Wait(lock);
  }

  /// Timed wait: blocks for at most `seconds`. Returns false on timeout,
  /// true when notified (possibly spuriously — callers loop on their
  /// predicate either way). The deadline-based receive paths
  /// (Communicator::RecvTimeout) are built on this.
  bool WaitFor(MutexLock& lock, double seconds) {
    if (seconds <= 0.0) return false;
    return cv_.wait_for(lock.lock_, std::chrono::duration<double>(seconds)) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Debug-build reentrancy detector for classes that are intentionally NOT
/// thread-safe (one instance per rank/thread by design, e.g.
/// GradientExchanger). Embed one and guard each entry point with
/// EXACLIM_REENTRANCY_SCOPE; concurrent entry trips an exaclim::Error
/// instead of silently corrupting state. Zero-size-ish and inert in
/// Release.
class ReentrancyGuard {
 public:
#if EXACLIM_DCHECK_ENABLED
  class Scope {
   public:
    explicit Scope(ReentrancyGuard& guard, const char* where);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ReentrancyGuard& guard_;
  };

 private:
  friend class Scope;
  std::atomic<bool> busy_{false};
#else
  class Scope {
   public:
    explicit Scope(ReentrancyGuard&, const char*) {}
  };
#endif
};

#define EXACLIM_REENTRANCY_SCOPE(guard)                          \
  ::exaclim::ReentrancyGuard::Scope exaclim_reentrancy_scope_( \
      guard, __func__)

}  // namespace exaclim
