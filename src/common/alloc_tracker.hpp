#pragma once

#include <cstddef>
#include <cstdint>

// Heap-allocation discipline analysis (DESIGN §11).
//
// alloc_tracker.cpp interposes the global operator new/delete family (all
// array / aligned / nothrow forms). With tracking off — the default — every
// interposed operator is one relaxed atomic load and a branch away from
// plain malloc/free; with EXACLIM_ALLOC_TRACK=1 (or SetAllocTracking(true))
// each allocation bumps lock-free per-thread counters, so hot paths can be
// audited for steady-state heap traffic without a profiler.
//
// Two RAII region guards build on the counters:
//
//   EXACLIM_ALLOC_CENSUS(site)        measure: how many allocations/bytes
//                                     happened while this scope was live
//                                     (process-wide; spans pool workers).
//   EXACLIM_ALLOC_CENSUS_THREAD(site) same, but only this thread's allocs.
//   EXACLIM_ASSERT_NO_ALLOC(site)     enforce: this thread must not touch
//                                     the heap inside the scope. Violations
//                                     are counted per registered site and
//                                     reported (file:line, no symbolization)
//                                     when the scope closes; with
//                                     EXACLIM_ALLOC_TRACK=strict the report
//                                     is fatal.
//
// Each macro registers its call site once in a fixed-capacity site registry
// (name + __FILE__:__LINE__), which accumulates cumulative count/bytes/
// violations per site — the raw material of the per-phase allocation census
// (bench_alloc_census, the ci.sh alloc-smoke ratchet).

namespace exaclim {

// ------------------------------------------------------------- toggles --

/// Whether the interposed operators are counting. Seeded from
/// EXACLIM_ALLOC_TRACK on first allocation (unset/"0" off, "strict" fatal
/// no-alloc violations, anything else on).
bool AllocTrackingEnabled();

/// True only under EXACLIM_ALLOC_TRACK=strict: a no-alloc region that saw
/// an allocation aborts the process when it closes (abort, not throw —
/// the report fires from a destructor).
bool AllocTrackingStrict();

/// Programmatic override of the env default (tests, benches). Phase-
/// boundary operation: flipping it mid-region makes that region's deltas
/// meaningless, nothing worse.
void SetAllocTracking(bool enabled);

// ------------------------------------------------------------ counters --

/// Snapshot of allocation activity. `count`/`bytes` are allocation-side
/// totals (bytes are usable heap bytes where the platform exposes them,
/// requested bytes otherwise). `free_count`/`freed_bytes` are attributed
/// to the *freeing* thread, so per-thread live/peak figures are
/// best-effort for memory that migrates between threads; the global
/// aggregate is exact in count and monotone in bytes.
struct AllocCounters {
  std::int64_t count = 0;
  std::int64_t bytes = 0;
  std::int64_t free_count = 0;
  std::int64_t freed_bytes = 0;
  std::int64_t peak_live_bytes = 0;
};

/// This thread's counters since process start (zero before its first
/// tracked allocation).
AllocCounters ThreadAllocCounters();

/// Sum over every thread that ever allocated while tracking was on.
/// Records outlive their threads, so the aggregate never loses history.
AllocCounters GlobalAllocCounters();

// ------------------------------------------------------- site registry --

/// Compact handle for an annotated region call site. Site 0..capacity-1;
/// registration past the fixed capacity collapses onto a shared overflow
/// slot rather than failing.
using AllocSiteId = int;

/// Registers (name, file, line) once and returns its id. Idempotent per
/// call site via the static local inside EXACLIM_ALLOC_SITE; safe during
/// static initialization (no heap use).
AllocSiteId RegisterAllocSite(const char* name, const char* file, int line);

/// Cumulative per-site census, summed over every region instance that ran
/// at that site. Nested sites both see an allocation (regions are
/// inclusive phases, like trace spans).
struct AllocSiteInfo {
  const char* name = nullptr;
  const char* file = nullptr;
  int line = 0;
  std::int64_t count = 0;
  std::int64_t bytes = 0;
  std::int64_t violations = 0;
};

/// Number of registered sites so far.
int AllocSiteCount();

/// Snapshot of one site; id must be < AllocSiteCount().
AllocSiteInfo GetAllocSite(AllocSiteId id);

/// Id of the first site registered under `name`, or -1. Census readers
/// (bench_alloc_census) key off the site name.
AllocSiteId FindAllocSite(const char* name);

/// Zeroes every site's cumulative count/bytes/violations (names and ids
/// survive). Called between warmup and the measured window of a census.
void ResetAllocSiteStats();

// ------------------------------------------------------ region guards --

/// The metric bridge to obs (common cannot link obs): census regions
/// publish "alloc.count.<site>" / "alloc.bytes.<site>" gauge updates
/// through this pointer when installed. obs::Enable installs a sink that
/// forwards to the MetricsRegistry; null means no publication.
using AllocMetricSink = void (*)(const char* name, double value);
void SetAllocMetricSink(AllocMetricSink sink);

/// RAII allocation-census / no-alloc region. Prefer the macros below;
/// they handle site registration.
class ScopedAllocCheck {
 public:
  enum class Mode {
    kCensus,         // count, publish, never complain
    kAssertNoAlloc,  // any allocation on this thread is a violation
  };
  enum class Scope {
    kThread,  // deltas of the constructing thread only
    kGlobal,  // process-wide deltas (phases that fan out to pool workers)
  };

  ScopedAllocCheck(AllocSiteId site, Mode mode, Scope scope = Scope::kThread);
  ~ScopedAllocCheck();

  ScopedAllocCheck(const ScopedAllocCheck&) = delete;
  ScopedAllocCheck& operator=(const ScopedAllocCheck&) = delete;

  /// Allocations / bytes since the region opened (0 while tracking is
  /// off — the zero-overhead path).
  std::int64_t count() const;
  std::int64_t bytes() const;

  /// Allocations that violated a kAssertNoAlloc region so far.
  std::int64_t violations() const { return violations_; }

  /// True when tracking was on at construction (deltas are meaningful).
  bool active() const { return active_; }

 private:
  friend void NoteTrackedAllocation(std::size_t bytes);

  AllocSiteId site_;
  Mode mode_;
  Scope scope_;
  bool active_ = false;
  ScopedAllocCheck* parent_ = nullptr;  // enclosing region on this thread
  std::int64_t entry_count_ = 0;
  std::int64_t entry_bytes_ = 0;
  std::int64_t violations_ = 0;
  std::int64_t first_violation_bytes_ = -1;
};

}  // namespace exaclim

#define EXACLIM_ALLOC_CONCAT_INNER(a, b) a##b
#define EXACLIM_ALLOC_CONCAT(a, b) EXACLIM_ALLOC_CONCAT_INNER(a, b)

/// Registers this call site once and yields its AllocSiteId.
#define EXACLIM_ALLOC_SITE(name)                                          \
  ([]() -> ::exaclim::AllocSiteId {                                       \
    static const ::exaclim::AllocSiteId exaclim_alloc_site_id =           \
        ::exaclim::RegisterAllocSite(name, __FILE__, __LINE__);           \
    return exaclim_alloc_site_id;                                         \
  }())

/// Process-wide allocation census over the enclosing scope (use for
/// phases that fan work out to pool threads, e.g. a training-step phase).
#define EXACLIM_ALLOC_CENSUS(name)                                        \
  ::exaclim::ScopedAllocCheck EXACLIM_ALLOC_CONCAT(exaclim_alloc_census_, \
                                                   __COUNTER__)(          \
      EXACLIM_ALLOC_SITE(name),                                           \
      ::exaclim::ScopedAllocCheck::Mode::kCensus,                         \
      ::exaclim::ScopedAllocCheck::Scope::kGlobal)

/// Calling-thread-only allocation census (producer loops, pack paths).
#define EXACLIM_ALLOC_CENSUS_THREAD(name)                                 \
  ::exaclim::ScopedAllocCheck EXACLIM_ALLOC_CONCAT(exaclim_alloc_census_, \
                                                   __COUNTER__)(          \
      EXACLIM_ALLOC_SITE(name),                                           \
      ::exaclim::ScopedAllocCheck::Mode::kCensus,                         \
      ::exaclim::ScopedAllocCheck::Scope::kThread)

/// Declares the enclosing scope heap-free for the calling thread. Any
/// allocation is recorded against this site and reported when the scope
/// closes (fatal under EXACLIM_ALLOC_TRACK=strict).
#define EXACLIM_ASSERT_NO_ALLOC(name)                                     \
  ::exaclim::ScopedAllocCheck EXACLIM_ALLOC_CONCAT(exaclim_alloc_guard_,  \
                                                   __COUNTER__)(          \
      EXACLIM_ALLOC_SITE(name),                                           \
      ::exaclim::ScopedAllocCheck::Mode::kAssertNoAlloc,                  \
      ::exaclim::ScopedAllocCheck::Scope::kThread)
