#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace exaclim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Thread-safe sink to stderr, prefixed with level and a monotonic
/// timestamp. Kept intentionally minimal — experiments print their own
/// tables to stdout; logging is for diagnostics only.
void LogMessage(LogLevel level, std::string_view message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Formats alternating key/value arguments as "k1=v1 k2=v2 ...". Values
/// go through operator<< so anything streamable works.
template <typename... Args>
std::string FormatKV(Args&&... args) {
  static_assert(sizeof...(Args) % 2 == 0,
                "FormatKV takes alternating key/value pairs");
  std::ostringstream out;
  int position = 0;
  // maybe_unused: with an empty pack the fold never calls emit.
  [[maybe_unused]] const auto emit = [&](const auto& part) {
    if (position % 2 == 0) {
      if (position > 0) out << ' ';
      out << part << '=';
    } else {
      out << part;
    }
    ++position;
  };
  (emit(args), ...);
  return out.str();
}

}  // namespace detail

/// Structured one-line log entry from key/value pairs; the formatting
/// cost is only paid when the level is enabled. Prefer this over
/// free-text EXACLIM_LOG for anything a script might grep (the metrics
/// report is emitted this way).
template <typename... Args>
void LogKV(LogLevel level, Args&&... args) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  LogMessage(level, detail::FormatKV(std::forward<Args>(args)...));
}

}  // namespace exaclim

#define EXACLIM_LOG(level) ::exaclim::detail::LogLine(::exaclim::LogLevel::level)

/// Structured logging: EXACLIM_LOG_KV(kInfo, "event", "staged", "files", n)
/// -> "event=staged files=24".
#define EXACLIM_LOG_KV(level, ...) \
  ::exaclim::LogKV(::exaclim::LogLevel::level, __VA_ARGS__)
