#pragma once

#include <sstream>
#include <string>

namespace exaclim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Thread-safe sink to stderr, prefixed with level and a monotonic
/// timestamp. Kept intentionally minimal — experiments print their own
/// tables to stdout; logging is for diagnostics only.
void LogMessage(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace exaclim

#define EXACLIM_LOG(level) ::exaclim::detail::LogLine(::exaclim::LogLevel::level)
