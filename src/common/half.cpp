#include "common/half.hpp"

#include <bit>
#include <cstring>
#include <ostream>

namespace exaclim {
namespace {

std::uint32_t FloatBits(float f) { return std::bit_cast<std::uint32_t>(f); }
float BitsToFloat(std::uint32_t u) { return std::bit_cast<float>(u); }

}  // namespace

std::uint16_t Half::FromFloat(float value) {
  const std::uint32_t f = FloatBits(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t abs = f & 0x7fffffffu;

  if (abs >= 0x7f800000u) {
    // Inf or NaN. Preserve NaN-ness with a quiet-NaN payload bit.
    const std::uint32_t nan_payload = (abs > 0x7f800000u) ? 0x0200u : 0;
    return static_cast<std::uint16_t>(sign | 0x7c00u | nan_payload);
  }
  if (abs >= 0x477ff000u) {
    // Rounds to a magnitude >= 2^16 - 2^4: overflow to infinity.
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs < 0x33000001u) {
    // Magnitude below half the smallest subnormal: rounds to zero.
    return static_cast<std::uint16_t>(sign);
  }

  const int exp32 = static_cast<int>(abs >> 23);  // biased float exponent
  std::uint32_t mantissa = abs & 0x007fffffu;
  int exp16 = exp32 - 127 + 15;  // re-bias to binary16

  std::uint32_t shift;  // bits discarded from the 24-bit significand
  if (exp16 <= 0) {
    // Subnormal result: shift in the implicit leading 1 and denormalize.
    mantissa |= 0x00800000u;
    shift = static_cast<std::uint32_t>(13 + 1 - exp16);
    exp16 = 0;
  } else {
    shift = 13;
  }

  const std::uint32_t round_bit = 1u << (shift - 1);
  const std::uint32_t sticky_mask = round_bit - 1;
  std::uint32_t half_mantissa = mantissa >> shift;
  // Round to nearest even.
  if ((mantissa & round_bit) &&
      ((mantissa & sticky_mask) || (half_mantissa & 1u))) {
    ++half_mantissa;
  }

  // Carry from rounding may bump into the exponent (and may produce inf for
  // values just under the overflow threshold; excluded above).
  std::uint32_t result =
      (static_cast<std::uint32_t>(exp16) << 10) + half_mantissa;
  return static_cast<std::uint16_t>(sign | result);
}

float Half::ToFloatImpl(std::uint16_t bits) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(bits) & 0x8000u)
                             << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1fu;
  std::uint32_t mantissa = bits & 0x03ffu;

  if (exp == 0x1fu) {  // inf / NaN
    return BitsToFloat(sign | 0x7f800000u | (mantissa << 13));
  }
  if (exp == 0) {
    if (mantissa == 0) return BitsToFloat(sign);  // +/- 0
    // Subnormal: normalize into float representation.
    int e = -1;
    do {
      ++e;
      mantissa <<= 1;
    } while ((mantissa & 0x0400u) == 0);
    mantissa &= 0x03ffu;
    const std::uint32_t f_exp =
        static_cast<std::uint32_t>(127 - 15 - e) << 23;
    return BitsToFloat(sign | f_exp | (mantissa << 13));
  }
  const std::uint32_t f_exp = (exp + 127 - 15) << 23;
  return BitsToFloat(sign | f_exp | (mantissa << 13));
}

std::ostream& operator<<(std::ostream& os, Half h) {
  return os << h.ToFloat();
}

}  // namespace exaclim
