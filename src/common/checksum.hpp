#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace exaclim {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
/// in the checkpoint footer. `seed` is a previous Crc32 result, so large
/// payloads can be checksummed incrementally:
///
///   std::uint32_t crc = Crc32(part1);
///   crc = Crc32(part2, crc);
std::uint32_t Crc32(std::span<const std::byte> data, std::uint32_t seed = 0);

inline std::uint32_t Crc32(std::span<const std::uint8_t> data,
                           std::uint32_t seed = 0) {
  return Crc32(std::as_bytes(data), seed);
}

}  // namespace exaclim
