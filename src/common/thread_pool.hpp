#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/function_ref.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace exaclim {

/// Fixed-size worker pool used by the tensor kernels for intra-op
/// parallelism (the stand-in for the CUDA stream the paper's kernels ran
/// on). ParallelFor partitions an index range into contiguous blocks,
/// one per worker, and blocks until all complete — deterministic
/// partitioning keeps reductions reproducible.
///
/// Dispatch is allocation-free in steady state (DESIGN §12): blocks are
/// POD Task records in a grow-only ring buffer, the callable travels as
/// a non-owning FunctionRef (no std::function closure heap), and the
/// fork/join rendezvous is an atomic counter on the caller's stack
/// joined through pool-owned join_mutex_/join_cv_ — nothing is
/// heap-allocated per call once the ring has grown to the working size.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(begin, end) over disjoint sub-ranges of [begin, end) on the
  /// pool (and the calling thread), returning when every block is done.
  /// `grain` is the minimum block size worth shipping to a worker.
  ///
  /// `fn` is non-owning (FunctionRef): the call blocks until every block
  /// has finished running it, so the referenced callable outlives all
  /// uses. Lambdas with captures bind implicitly, closure-free.
  ///
  /// Nesting policy: a ParallelFor issued from inside a running block of
  /// another ParallelFor (any pool) executes fn(begin, end) inline on the
  /// calling thread. Re-entering the pool from a worker would stack a
  /// blocked join wait behind the queued outer blocks and oversubscribe
  /// the machine; inline execution keeps one level of parallelism live
  /// with zero extra threads (DESIGN §9).
  void ParallelFor(std::size_t begin, std::size_t end,
                   FunctionRef<void(std::size_t, std::size_t)> fn,
                   std::size_t grain = 1024) EXACLIM_EXCLUDES(mutex_);

  /// True while the calling thread is executing a ParallelFor block —
  /// i.e. a nested ParallelFor from here would run inline.
  static bool InParallelRegion();

  /// Process-wide pool shared by tensor kernels. Sized from
  /// EXACLIM_THREADS when set (a positive integer), else from
  /// std::thread::hardware_concurrency().
  static ThreadPool& Global();

 private:
  /// Fork/join rendezvous for one ParallelFor call. Lives on the
  /// caller's stack: the final fetch_sub in FinishBlock is the last time
  /// any worker touches it (the notify that follows uses only the
  /// pool-owned join_mutex_/join_cv_), so the caller may return as soon
  /// as remaining reads 0 — no heap latch needed.
  struct JoinCounter {
    std::atomic<std::size_t> remaining{0};
  };

  /// One enqueued block: trivially copyable, heap-free.
  struct Task {
    FunctionRef<void(std::size_t, std::size_t)> fn;
    std::size_t lo = 0;
    std::size_t hi = 0;
    JoinCounter* join = nullptr;
  };

  void WorkerLoop() EXACLIM_EXCLUDES(mutex_);
  /// Runs one dequeued block and signals its JoinCounter.
  void RunBlock(const Task& task) EXACLIM_EXCLUDES(join_mutex_);
  /// Blocks until every shipped block of `join` has finished.
  void AwaitJoin(JoinCounter& join) EXACLIM_EXCLUDES(join_mutex_);

  /// Appends to the ring, growing (re-normalised to head 0) only when
  /// the live count hits capacity.
  void PushTask(const Task& task) EXACLIM_REQUIRES(mutex_);

  // Debug-build queue invariants; no-op in Release.
  void CheckQueueInvariants() const EXACLIM_REQUIRES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  // Grow-only ring of pending blocks: live tasks occupy
  // [ring_head_, ring_head_ + ring_count_) modulo ring_.size().
  std::vector<Task> ring_ EXACLIM_GUARDED_BY(mutex_);
  std::size_t ring_head_ EXACLIM_GUARDED_BY(mutex_) = 0;
  std::size_t ring_count_ EXACLIM_GUARDED_BY(mutex_) = 0;
  bool stop_ EXACLIM_GUARDED_BY(mutex_) = false;
  // Debug-build queue accounting: ring_count_ == enqueued_ - dequeued_.
  std::size_t enqueued_ EXACLIM_GUARDED_BY(mutex_) = 0;
  std::size_t dequeued_ EXACLIM_GUARDED_BY(mutex_) = 0;

  // Join rendezvous, shared by all concurrent ParallelFor callers (the
  // counters disambiguate; spurious wakeups re-check and re-wait).
  Mutex join_mutex_;
  CondVar join_cv_;
};

/// Convenience wrapper over ThreadPool::Global().ParallelFor.
void ParallelFor(std::size_t begin, std::size_t end,
                 FunctionRef<void(std::size_t, std::size_t)> fn,
                 std::size_t grain = 1024);

}  // namespace exaclim
