#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace exaclim {

/// Fixed-size worker pool used by the tensor kernels for intra-op
/// parallelism (the stand-in for the CUDA stream the paper's kernels ran
/// on). Tasks are arbitrary callables; ParallelFor partitions an index
/// range into contiguous blocks, one per worker, and blocks until all
/// complete — deterministic partitioning keeps reductions reproducible.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(begin, end) over disjoint sub-ranges of [begin, end) on the
  /// pool (and the calling thread), returning when every block is done.
  /// `grain` is the minimum block size worth shipping to a worker.
  ///
  /// Nesting policy: a ParallelFor issued from inside a running block of
  /// another ParallelFor (any pool) executes fn(begin, end) inline on the
  /// calling thread. Re-entering the pool from a worker would stack a
  /// blocked latch wait behind the queued outer blocks and oversubscribe
  /// the machine; inline execution keeps one level of parallelism live
  /// with zero extra threads (DESIGN §9).
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t, std::size_t)>& fn,
                   std::size_t grain = 1024) EXACLIM_EXCLUDES(mutex_);

  /// True while the calling thread is executing a ParallelFor block —
  /// i.e. a nested ParallelFor from here would run inline.
  static bool InParallelRegion();

  /// Process-wide pool shared by tensor kernels. Sized from
  /// EXACLIM_THREADS when set (a positive integer), else from
  /// std::thread::hardware_concurrency().
  static ThreadPool& Global();

 private:
  void WorkerLoop() EXACLIM_EXCLUDES(mutex_);

  // Debug-build queue invariants; no-op in Release.
  void CheckQueueInvariants() const EXACLIM_REQUIRES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ EXACLIM_GUARDED_BY(mutex_);
  bool stop_ EXACLIM_GUARDED_BY(mutex_) = false;
  // Debug-build queue accounting: tasks_.size() == enqueued_ - dequeued_.
  std::size_t enqueued_ EXACLIM_GUARDED_BY(mutex_) = 0;
  std::size_t dequeued_ EXACLIM_GUARDED_BY(mutex_) = 0;
};

/// Convenience wrapper over ThreadPool::Global().ParallelFor.
void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t, std::size_t)>& fn,
                 std::size_t grain = 1024);

}  // namespace exaclim
