#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace exaclim {

/// Error type thrown by all EXACLIM_CHECK failures. Carries the failing
/// expression, source location and a formatted message.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* expr, const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: (" << expr << ") ";
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] void raise() const { throw Error(stream_.str()); }

  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace exaclim

/// Precondition/invariant check: throws exaclim::Error with context on
/// failure. Usable in both library and test code; always enabled.
#define EXACLIM_CHECK(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::exaclim::detail::CheckMessageBuilder builder(#expr, __FILE__,       \
                                                     __LINE__);             \
      builder << msg; /* NOLINT */                                          \
      builder.raise();                                                      \
    }                                                                       \
  } while (false)
