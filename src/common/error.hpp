#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace exaclim {

/// Error type thrown by all EXACLIM_CHECK failures. Carries the failing
/// expression, source location and a formatted message.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* expr, const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: (" << expr << ") ";
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] void raise() const { throw Error(stream_.str()); }

  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace exaclim

/// Precondition/invariant check: throws exaclim::Error with context on
/// failure. Usable in both library and test code; always enabled.
///
/// `expr` is evaluated exactly once (stringification via #expr does not
/// evaluate); `msg` operands are evaluated only on the failure path. The
/// failure branch ends in the [[noreturn]] raise(), so the compiler knows
/// control never continues past a failed check.
#define EXACLIM_CHECK(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) [[unlikely]] {                                             \
      ::exaclim::detail::CheckMessageBuilder builder(#expr, __FILE__,       \
                                                     __LINE__);             \
      builder << msg; /* NOLINT */                                          \
      builder.raise();                                                      \
    }                                                                       \
  } while (false)

/// Unconditional failure for unreachable code paths. Unlike
/// EXACLIM_CHECK(false, ...) the expansion is a single statement whose
/// tail is [[noreturn]], so callers need no dead `return`/`throw` after
/// it to satisfy -Wreturn-type.
#define EXACLIM_FATAL(msg)                                                  \
  do {                                                                      \
    ::exaclim::detail::CheckMessageBuilder builder("fatal", __FILE__,       \
                                                   __LINE__);               \
    builder << msg; /* NOLINT */                                            \
    builder.raise();                                                        \
  } while (false)

/// Debug-only check: identical to EXACLIM_CHECK in Debug builds
/// (including the sanitizer presets), compiled out in Release — the
/// condition is NOT evaluated there, so it must be side-effect free.
/// Define EXACLIM_FORCE_DCHECKS to keep them in optimized builds.
#if !defined(NDEBUG) || defined(EXACLIM_FORCE_DCHECKS)
#define EXACLIM_DCHECK_ENABLED 1
#define EXACLIM_DCHECK(expr, msg) EXACLIM_CHECK(expr, msg)
#else
#define EXACLIM_DCHECK_ENABLED 0
#define EXACLIM_DCHECK(expr, msg)                                           \
  do {                                                                      \
    if (false) {                                                            \
      static_cast<void>(expr); /* compile, never run */                     \
    }                                                                       \
  } while (false)
#endif
