#include "common/fault.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "common/error.hpp"
#include "common/sync.hpp"

namespace exaclim {

// ------------------------------------------------------- metric bridge --

namespace {
std::atomic<FaultMetricSink> g_fault_sink{nullptr};
}  // namespace

void SetFaultMetricSink(FaultMetricSink sink) {
  g_fault_sink.store(sink, std::memory_order_release);
}

void FaultCounterBump(std::string_view name, std::int64_t delta) {
  if (FaultMetricSink sink = g_fault_sink.load(std::memory_order_acquire)) {
    sink(name, delta);
  }
}

// ------------------------------------------------------ site registry --

namespace {

struct SiteRegistry {
  Mutex mutex;
  // Entries ending in '.' are prefixes taking a nonnegative integer.
  std::vector<std::string> entries EXACLIM_GUARDED_BY(mutex) = {
      "comm.drop",        "comm.delay",      "comm.kill.",
      "fs.read",          "pipeline.produce", "checkpoint.write",
      "epoch.step",       "elastic.kill.",   "elastic.exchange.kill.",
  };
};

SiteRegistry& GlobalSiteRegistry() {
  static SiteRegistry registry;
  return registry;
}

bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace

void RegisterFaultSite(std::string_view site_or_prefix) {
  SiteRegistry& registry = GlobalSiteRegistry();
  MutexLock lock(registry.mutex);
  for (const auto& e : registry.entries) {
    if (e == site_or_prefix) return;
  }
  registry.entries.emplace_back(site_or_prefix);
}

bool IsKnownFaultSite(std::string_view site) {
  SiteRegistry& registry = GlobalSiteRegistry();
  MutexLock lock(registry.mutex);
  for (const auto& e : registry.entries) {
    if (e.back() == '.') {
      if (site.size() > e.size() && site.substr(0, e.size()) == e &&
          AllDigits(site.substr(e.size()))) {
        return true;
      }
    } else if (site == e) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> KnownFaultSites() {
  SiteRegistry& registry = GlobalSiteRegistry();
  MutexLock lock(registry.mutex);
  return registry.entries;
}

// ------------------------------------------------------- FaultInjector --

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Arm(const FaultSpec& spec) {
  EXACLIM_CHECK(!spec.site.empty(), "fault spec needs a site name");
  EXACLIM_CHECK(spec.probability >= 0.0 && spec.probability <= 1.0,
                "fault probability must be in [0, 1], got "
                    << spec.probability);
  MutexLock lock(mutex_);
  sites_.erase(spec.site);
  sites_.emplace(spec.site, Site(spec));
  armed_count_.store(static_cast<int>(sites_.size()),
                     std::memory_order_relaxed);
}

int FaultInjector::ArmFromString(std::string_view specs) {
  int armed = 0;
  std::size_t pos = 0;
  while (pos <= specs.size()) {
    const std::size_t comma = specs.find(',', pos);
    const std::string_view one = specs.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? specs.size() + 1 : comma + 1;
    if (one.empty()) continue;

    // site:prob[:seed[:max[:delay_s[:skip]]]]
    std::vector<std::string> fields;
    std::size_t f = 0;
    while (f <= one.size()) {
      const std::size_t colon = one.find(':', f);
      if (colon == std::string_view::npos) {
        fields.emplace_back(one.substr(f));
        break;
      }
      fields.emplace_back(one.substr(f, colon - f));
      f = colon + 1;
    }
    EXACLIM_CHECK(fields.size() >= 2 && fields.size() <= 6,
                  "EXACLIM_FAULTS entry '"
                      << std::string(one)
                      << "' wants site:prob[:seed[:max[:delay_s[:skip]]]]");
    FaultSpec spec;
    spec.site = fields[0];
    try {
      spec.probability = std::stod(fields[1]);
      if (fields.size() > 2 && !fields[2].empty()) {
        spec.seed = std::stoull(fields[2]);
      }
      if (fields.size() > 3 && !fields[3].empty()) {
        spec.max_triggers = std::stoi(fields[3]);
      }
      if (fields.size() > 4 && !fields[4].empty()) {
        spec.delay_seconds = std::stod(fields[4]);
      }
      if (fields.size() > 5 && !fields[5].empty()) {
        spec.skip_first = std::stoll(fields[5]);
      }
    } catch (const std::exception&) {
      throw Error("EXACLIM_FAULTS entry '" + std::string(one) +
                  "' has a non-numeric field");
    }
    if (!IsKnownFaultSite(spec.site)) {
      std::string valid;
      for (const auto& s : KnownFaultSites()) {
        if (!valid.empty()) valid += ", ";
        valid += s;
        if (s.back() == '.') valid += "<rank>";
      }
      throw Error("EXACLIM_FAULTS names unknown site '" + spec.site +
                  "' — nothing consults it, so it would never fire. "
                  "Valid sites: " + valid);
    }
    Arm(spec);
    ++armed;
  }
  return armed;
}

int FaultInjector::ArmFromEnv() {
  const char* env = std::getenv("EXACLIM_FAULTS");
  if (env == nullptr || *env == '\0') return 0;
  return ArmFromString(env);
}

void FaultInjector::Disarm(std::string_view site) {
  MutexLock lock(mutex_);
  const auto it = sites_.find(site);
  if (it != sites_.end()) sites_.erase(it);
  armed_count_.store(static_cast<int>(sites_.size()),
                     std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  MutexLock lock(mutex_);
  sites_.clear();
  total_fired_ = 0;
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::ShouldInject(std::string_view site) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  bool fired = false;
  {
    MutexLock lock(mutex_);
    const auto it = sites_.find(site);
    if (it == sites_.end()) return false;
    Site& s = it->second;
    ++s.evaluated;
    if (s.evaluated <= s.spec.skip_first) return false;
    if (s.spec.max_triggers >= 0 && s.fired >= s.spec.max_triggers) {
      return false;
    }
    if (s.rng.UniformDouble() >= s.spec.probability) return false;
    ++s.fired;
    ++total_fired_;
    fired = true;
  }
  // Bump outside the injector mutex: the sink takes registry locks.
  if (fired) FaultCounterBump("fault.injected." + std::string(site));
  return fired;
}

double FaultInjector::DelaySeconds(std::string_view site) const {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return 0.0;
  MutexLock lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0.0 : it->second.spec.delay_seconds;
}

bool FaultInjector::IsArmed(std::string_view site) const {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  MutexLock lock(mutex_);
  return sites_.find(site) != sites_.end();
}

std::int64_t FaultInjector::InjectionCount(std::string_view site) const {
  MutexLock lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

std::int64_t FaultInjector::TotalInjections() const {
  MutexLock lock(mutex_);
  return total_fired_;
}

int FaultInjector::ArmedSiteCount() const {
  return armed_count_.load(std::memory_order_relaxed);
}

// --------------------------------------------------------- RetryPolicy --

double RetryPolicy::BackoffSeconds(int attempt) const {
  EXACLIM_CHECK(attempt >= 0, "retry attempt index must be >= 0");
  double backoff =
      initial_backoff_s * std::pow(multiplier, static_cast<double>(attempt));
  backoff = std::min(backoff, max_backoff_s);
  if (jitter > 0.0) {
    // One deterministic draw per attempt index: same policy, same
    // schedule, every run.
    Rng rng = Rng(seed).Fork(static_cast<std::uint64_t>(attempt));
    backoff *= 1.0 + jitter * (2.0 * rng.UniformDouble() - 1.0);
  }
  return backoff;
}

std::vector<double> RetryPolicy::Schedule() const {
  std::vector<double> schedule;
  for (int a = 0; a + 1 < max_attempts; ++a) {
    schedule.push_back(BackoffSeconds(a));
  }
  return schedule;
}

RetryOutcome RunWithRetry(const RetryPolicy& policy, std::string_view what,
                          const std::function<bool()>& op) {
  EXACLIM_CHECK(policy.max_attempts >= 1,
                "retry policy for " << what << " needs >= 1 attempt");
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  RetryOutcome out;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    out.attempts = attempt + 1;
    if (op()) {
      out.success = true;
      return out;
    }
    if (attempt + 1 >= policy.max_attempts) break;
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed >= policy.deadline_s) break;
    double sleep_s = policy.BackoffSeconds(attempt);
    sleep_s = std::min(sleep_s, policy.deadline_s - elapsed);
    FaultCounterBump("fault.retry.attempts");
    if (sleep_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
      out.slept_seconds += sleep_s;
    }
  }
  FaultCounterBump("fault.retry.giveups");
  return out;
}

}  // namespace exaclim
