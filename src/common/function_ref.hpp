#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace exaclim {

/// Non-owning reference to a callable: one data pointer plus one function
/// pointer, trivially copyable, never touches the heap.
///
/// This is the parameter type of the fork/join dispatch surfaces
/// (ThreadPool::ParallelFor, RunConvShards, the per-channel/per-plane
/// helpers): they all block until every block has run, so the referenced
/// callable outlives every invocation by construction. The implicit
/// converting constructor keeps lambda call sites source-identical to the
/// std::function signatures it replaced — minus the per-call closure
/// allocation std::function needs once a capture outgrows its small
/// buffer (DESIGN §12).
///
/// Do NOT store a FunctionRef beyond the callable's lifetime; it is a
/// reference, not an owner.
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Null reference; calling it is undefined. Exists so POD task slots
  /// can be default-constructed.
  FunctionRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design.
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace exaclim
