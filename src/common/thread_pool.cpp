#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"
#include "common/sync.hpp"

namespace exaclim {

namespace {

/// Depth of ParallelFor blocks currently executing on this thread. Any
/// ParallelFor issued while this is non-zero runs inline (the nesting
/// policy documented in the header); blocks == 1 degenerate calls do not
/// count, so an inner kernel under a serial outer loop still gets the
/// pool.
thread_local int tls_parallel_depth = 0;

struct ParallelRegionGuard {
  ParallelRegionGuard() { ++tls_parallel_depth; }
  ~ParallelRegionGuard() { --tls_parallel_depth; }
  ParallelRegionGuard(const ParallelRegionGuard&) = delete;
  ParallelRegionGuard& operator=(const ParallelRegionGuard&) = delete;
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in ParallelFor, so spawn one fewer.
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::CheckQueueInvariants() const {
  EXACLIM_DCHECK(dequeued_ <= enqueued_,
                 "dequeued " << dequeued_ << " > enqueued " << enqueued_);
  EXACLIM_DCHECK(ring_count_ == enqueued_ - dequeued_,
                 "ring holds " << ring_count_ << " tasks but accounting "
                               << "says " << (enqueued_ - dequeued_));
  EXACLIM_DCHECK(ring_count_ <= ring_.size(),
                 "ring count " << ring_count_ << " exceeds capacity "
                               << ring_.size());
}

void ThreadPool::PushTask(const Task& task) {
  if (ring_count_ == ring_.size()) {
    // Capacity grow: the one allocating path, hit only until the ring
    // reaches the working set's high-water mark. Re-normalise so the
    // live tasks sit at [0, ring_count_) and head restarts at 0.
    std::vector<Task> grown(std::max<std::size_t>(16, ring_.size() * 2));
    for (std::size_t i = 0; i < ring_count_; ++i) {
      grown[i] = ring_[(ring_head_ + i) % ring_.size()];
    }
    ring_.swap(grown);
    ring_head_ = 0;
  }
  ring_[(ring_head_ + ring_count_) % ring_.size()] = task;
  ++ring_count_;
}

void ThreadPool::RunBlock(const Task& task) {
  {
    ParallelRegionGuard region;
    task.fn(task.lo, task.hi);
  }
  // After this fetch_sub the worker never touches the caller's stack
  // again — the notify below only uses pool-owned members, so a caller
  // observing remaining == 0 may safely return (and destroy the
  // JoinCounter) while this thread is still inside NotifyAll. The
  // acq_rel RMW chain makes every block's writes visible to the caller's
  // acquire load in AwaitJoin.
  if (task.join->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Taking join_mutex_ serialises with a waiter sitting between its
    // predicate check and Wait(), so the notify cannot land in that
    // window (no missed wakeup).
    MutexLock lock(join_mutex_);
    join_cv_.NotifyAll();
  }
}

void ThreadPool::AwaitJoin(JoinCounter& join) {
  MutexLock lock(join_mutex_);
  while (join.remaining.load(std::memory_order_acquire) != 0) {
    join_cv_.Wait(lock);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && ring_count_ == 0) cv_.Wait(lock);
      if (stop_ && ring_count_ == 0) return;
      task = ring_[ring_head_];
      ring_head_ = (ring_head_ + 1) % ring_.size();
      --ring_count_;
      ++dequeued_;
      CheckQueueInvariants();
    }
    RunBlock(task);
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             FunctionRef<void(std::size_t, std::size_t)> fn,
                             std::size_t grain) {
  if (begin >= end) return;
  if (tls_parallel_depth > 0) {
    // Nested call from inside a parallel block: run inline (see header).
    fn(begin, end);
    return;
  }
  const std::size_t total = end - begin;
  const std::size_t max_blocks = workers_.size() + 1;
  const std::size_t blocks = std::max<std::size_t>(
      1,
      std::min(max_blocks, total / std::max<std::size_t>(1, grain)));
  if (blocks == 1) {
    fn(begin, end);
    return;
  }

  const std::size_t chunk = (total + blocks - 1) / blocks;
  // Stack rendezvous: AwaitJoin below keeps this frame (and whatever
  // `fn` references) alive until every shipped block has finished.
  JoinCounter join;
  join.remaining.store(blocks - 1, std::memory_order_relaxed);

  {
    MutexLock lock(mutex_);
    EXACLIM_DCHECK(!stop_, "ParallelFor on a stopped pool");
    for (std::size_t b = 1; b < blocks; ++b) {
      const std::size_t lo = begin + b * chunk;
      const std::size_t hi = std::min(end, lo + chunk);
      PushTask(Task{fn, lo, hi, &join});
      ++enqueued_;
    }
    CheckQueueInvariants();
  }
  cv_.NotifyAll();

  // The caller runs the first block itself, then waits out the rest.
  {
    ParallelRegionGuard region;
    fn(begin, std::min(end, begin + chunk));
  }
  AwaitJoin(join);
}

bool ThreadPool::InParallelRegion() { return tls_parallel_depth > 0; }

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("EXACLIM_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != nullptr && *end == '\0' && v > 0) {
        return static_cast<std::size_t>(v);
      }
    }
    return std::size_t{0};  // hardware_concurrency
  }());
  return pool;
}

void ParallelFor(std::size_t begin, std::size_t end,
                 FunctionRef<void(std::size_t, std::size_t)> fn,
                 std::size_t grain) {
  ThreadPool::Global().ParallelFor(begin, end, fn, grain);
}

}  // namespace exaclim
