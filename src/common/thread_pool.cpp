#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/error.hpp"
#include "common/sync.hpp"

namespace exaclim {

namespace {

/// Depth of ParallelFor blocks currently executing on this thread. Any
/// ParallelFor issued while this is non-zero runs inline (the nesting
/// policy documented in the header); blocks == 1 degenerate calls do not
/// count, so an inner kernel under a serial outer loop still gets the
/// pool.
thread_local int tls_parallel_depth = 0;

struct ParallelRegionGuard {
  ParallelRegionGuard() { ++tls_parallel_depth; }
  ~ParallelRegionGuard() { --tls_parallel_depth; }
  ParallelRegionGuard(const ParallelRegionGuard&) = delete;
  ParallelRegionGuard& operator=(const ParallelRegionGuard&) = delete;
};

/// Completion latch for one ParallelFor call. Heap-allocated and shared
/// with every enqueued block so that a worker finishing the final block
/// can still touch it after the caller's stack frame is gone — the caller
/// may observe remaining == 0 and return while that worker is still
/// inside NotifyAll (the classic waiting-destruction race; TSan flagged
/// the stack-allocated predecessor).
struct ForkJoinLatch {
  Mutex mutex;
  CondVar cv;
  std::size_t remaining EXACLIM_GUARDED_BY(mutex);

  explicit ForkJoinLatch(std::size_t n) : remaining(n) {}

  void CountDown() EXACLIM_EXCLUDES(mutex) {
    bool last = false;
    {
      MutexLock lock(mutex);
      EXACLIM_DCHECK(remaining > 0, "latch counted below zero");
      last = --remaining == 0;
    }
    if (last) cv.NotifyAll();
  }

  void Await() EXACLIM_EXCLUDES(mutex) {
    MutexLock lock(mutex);
    while (remaining != 0) cv.Wait(lock);
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in ParallelFor, so spawn one fewer.
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::CheckQueueInvariants() const {
  EXACLIM_DCHECK(dequeued_ <= enqueued_,
                 "dequeued " << dequeued_ << " > enqueued " << enqueued_);
  EXACLIM_DCHECK(tasks_.size() == enqueued_ - dequeued_,
                 "queue holds " << tasks_.size() << " tasks but accounting "
                                << "says " << (enqueued_ - dequeued_));
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_.Wait(lock);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++dequeued_;
      CheckQueueInvariants();
    }
    task();
  }
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (begin >= end) return;
  if (tls_parallel_depth > 0) {
    // Nested call from inside a parallel block: run inline (see header).
    fn(begin, end);
    return;
  }
  const std::size_t total = end - begin;
  const std::size_t max_blocks = workers_.size() + 1;
  const std::size_t blocks =
      std::max<std::size_t>(1, std::min(max_blocks, total / std::max<std::size_t>(1, grain)));
  if (blocks == 1) {
    fn(begin, end);
    return;
  }

  const std::size_t chunk = (total + blocks - 1) / blocks;
  auto latch = std::make_shared<ForkJoinLatch>(blocks - 1);

  {
    MutexLock lock(mutex_);
    EXACLIM_DCHECK(!stop_, "ParallelFor on a stopped pool");
    for (std::size_t b = 1; b < blocks; ++b) {
      const std::size_t lo = begin + b * chunk;
      const std::size_t hi = std::min(end, lo + chunk);
      // `fn` is captured by reference: Await() below keeps the caller's
      // frame alive until every block has finished running it. The latch
      // is captured by value so stragglers inside CountDown stay safe.
      tasks_.push([&fn, latch, lo, hi] {
        {
          ParallelRegionGuard region;
          fn(lo, hi);
        }
        latch->CountDown();
      });
      ++enqueued_;
    }
    CheckQueueInvariants();
  }
  cv_.NotifyAll();

  // The caller runs the first block itself, then waits out the rest.
  {
    ParallelRegionGuard region;
    fn(begin, std::min(end, begin + chunk));
  }
  latch->Await();
}

bool ThreadPool::InParallelRegion() { return tls_parallel_depth > 0; }

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("EXACLIM_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != nullptr && *end == '\0' && v > 0) {
        return static_cast<std::size_t>(v);
      }
    }
    return std::size_t{0};  // hardware_concurrency
  }());
  return pool;
}

void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t, std::size_t)>& fn,
                 std::size_t grain) {
  ThreadPool::Global().ParallelFor(begin, end, fn, grain);
}

}  // namespace exaclim
