#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace exaclim {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in ParallelFor, so spawn one fewer.
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t max_blocks = workers_.size() + 1;
  const std::size_t blocks =
      std::max<std::size_t>(1, std::min(max_blocks, total / std::max<std::size_t>(1, grain)));
  if (blocks == 1) {
    fn(begin, end);
    return;
  }

  const std::size_t chunk = (total + blocks - 1) / blocks;
  std::atomic<std::size_t> remaining{blocks - 1};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t b = 1; b < blocks; ++b) {
    const std::size_t lo = begin + b * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    {
      std::lock_guard lock(mutex_);
      tasks_.push([&, lo, hi] {
        fn(lo, hi);
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard done_lock(done_mutex);
          done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();

  // The caller runs the first block itself, then waits out the rest.
  fn(begin, std::min(end, begin + chunk));
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] {
    return remaining.load(std::memory_order_acquire) == 0;
  });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

void ParallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t, std::size_t)>& fn,
                 std::size_t grain) {
  ThreadPool::Global().ParallelFor(begin, end, fn, grain);
}

}  // namespace exaclim
