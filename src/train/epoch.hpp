#pragma once

#include <filesystem>

#include "data/augment.hpp"
#include "train/trainer.hpp"

namespace exaclim {

/// Epoch-structured training with per-epoch validation, the loop the
/// paper's convergence runs used (Sec VI: "a series of additional
/// calculations is carried out on the validation data set after each
/// epoch ... this overhead is negligible once amortized over the
/// steps"). Optionally applies the physically-consistent augmentation of
/// data/augment.hpp to every training batch.
struct EpochRunnerOptions {
  int epochs = 3;
  int steps_per_epoch = 20;
  std::int64_t validation_samples = 4;
  bool augment = false;
  AugmentOptions augment_options{};

  // Checkpoint/restart (DESIGN §8). With checkpoint_every > 0 and a
  // non-empty path, a checksummed checkpoint (model params + batch-norm
  // running statistics + epoch index) is written atomically after every
  // Nth epoch. With resume on, an existing readable checkpoint restarts
  // the run from the epoch after the one it recorded; a corrupt or
  // unreadable one is rejected (counted as "fault.checkpoint.rejected")
  // and training starts fresh. Per-epoch RNG streams are forked from the
  // seed by epoch index, so a resumed run retraces the uninterrupted
  // trajectory — training losses AND validation metrics — exactly, as
  // long as the optimizer itself is stateless (plain SGD, momentum 0,
  // no LARC).
  int checkpoint_every = 0;
  std::filesystem::path checkpoint_path{};
  bool resume = false;
};

struct EpochRunnerResult {
  std::vector<double> train_loss;      // mean loss per epoch (from start_epoch)
  std::vector<double> validation_miou; // per epoch (from start_epoch)
  double train_seconds = 0.0;
  double validation_seconds = 0.0;
  int start_epoch = 0;          // first epoch actually run (resume offset)
  int checkpoints_written = 0;
  bool resumed = false;

  /// Fraction of wall time spent validating (the Sec VI overhead).
  double ValidationFraction() const {
    const double total = train_seconds + validation_seconds;
    return total > 0 ? validation_seconds / total : 0.0;
  }
};

/// Single-rank epoch loop (the distributed variant is
/// RunDistributedTraining; epochs are a per-rank notion because each rank
/// iterates its own local shard, Sec V-A1).
EpochRunnerResult RunEpochs(const TrainerOptions& trainer_opts,
                            const ClimateDataset& dataset,
                            const EpochRunnerOptions& opts);

}  // namespace exaclim
