#include "train/spatial_parallel.hpp"

#include <cstring>

#include "common/error.hpp"

namespace exaclim {
namespace {

// Copies `rows` full-width rows starting at `y0` of every (n, c) plane
// into a contiguous buffer (and back).
std::vector<float> GatherRows(const Tensor& t, std::int64_t y0,
                              std::int64_t rows) {
  const TensorShape& s = t.shape();
  std::vector<float> out(static_cast<std::size_t>(s.n() * s.c() * rows *
                                                  s.w()));
  std::size_t off = 0;
  for (std::int64_t nc = 0; nc < s.n() * s.c(); ++nc) {
    const float* plane = t.Raw() + nc * s.h() * s.w();
    std::memcpy(out.data() + off, plane + y0 * s.w(),
                sizeof(float) * static_cast<std::size_t>(rows * s.w()));
    off += static_cast<std::size_t>(rows * s.w());
  }
  return out;
}

}  // namespace

Tensor ExchangeHaloAndPad(Communicator& comm, const Tensor& slab,
                          std::int64_t halo, int tag) {
  const TensorShape& s = slab.shape();
  EXACLIM_CHECK(s.rank() == 4 && s.h() >= halo,
                "slab must be rank-4 with h >= halo");
  const int rank = comm.rank();
  const int p = comm.size();

  // Send boundary rows to neighbours (top rows go up, bottom rows down).
  if (rank > 0) {
    comm.SendT(rank - 1, tag,
               std::span<const float>(GatherRows(slab, 0, halo)));
  }
  if (rank + 1 < p) {
    comm.SendT(rank + 1, tag + 1,
               std::span<const float>(
                   GatherRows(slab, s.h() - halo, halo)));
  }

  Tensor padded(TensorShape::NCHW(s.n(), s.c(), s.h() + 2 * halo,
                                  s.w() + 2 * halo));
  const std::int64_t ph = s.h() + 2 * halo, pw = s.w() + 2 * halo;
  // Interior copy (offset by halo in both axes; columns zero-padded).
  for (std::int64_t nc = 0; nc < s.n() * s.c(); ++nc) {
    const float* src = slab.Raw() + nc * s.h() * s.w();
    float* dst = padded.Raw() + nc * ph * pw;
    for (std::int64_t y = 0; y < s.h(); ++y) {
      std::memcpy(dst + (y + halo) * pw + halo, src + y * s.w(),
                  sizeof(float) * static_cast<std::size_t>(s.w()));
    }
  }

  auto scatter_rows = [&](const std::vector<float>& rows, std::int64_t y0) {
    std::size_t off = 0;
    for (std::int64_t nc = 0; nc < s.n() * s.c(); ++nc) {
      float* dst = padded.Raw() + nc * ph * pw;
      for (std::int64_t y = 0; y < halo; ++y) {
        std::memcpy(dst + (y0 + y) * pw + halo,
                    rows.data() + off + y * s.w(),
                    sizeof(float) * static_cast<std::size_t>(s.w()));
      }
      off += static_cast<std::size_t>(halo * s.w());
    }
  };

  // Receive the neighbour halos (global top/bottom stay zero = padding).
  const std::size_t halo_elems =
      static_cast<std::size_t>(s.n() * s.c() * halo * s.w());
  if (rank > 0) {
    std::vector<float> above(halo_elems);
    comm.RecvT(rank - 1, tag + 1, std::span<float>(above));  // fault: blocking-ok
    scatter_rows(above, 0);
  }
  if (rank + 1 < p) {
    std::vector<float> below(halo_elems);
    comm.RecvT(rank + 1, tag, std::span<float>(below));  // fault: blocking-ok
    scatter_rows(below, s.h() + halo);
  }
  return padded;
}

Tensor ExchangeHaloAndPadBackward(Communicator& comm,
                                  const Tensor& grad_padded,
                                  std::int64_t halo, int tag) {
  const TensorShape& ps = grad_padded.shape();
  const std::int64_t h = ps.h() - 2 * halo, w = ps.w() - 2 * halo;
  EXACLIM_CHECK(h >= halo && w >= 1, "bad padded gradient shape");
  const int rank = comm.rank();
  const int p = comm.size();
  const std::int64_t pw = ps.w();

  // Halo-row gradients belong to the neighbours' slabs: ship them.
  auto gather_padded_rows = [&](std::int64_t y0) {
    std::vector<float> out(
        static_cast<std::size_t>(ps.n() * ps.c() * halo * w));
    std::size_t off = 0;
    for (std::int64_t nc = 0; nc < ps.n() * ps.c(); ++nc) {
      const float* src = grad_padded.Raw() + nc * ps.h() * pw;
      for (std::int64_t y = 0; y < halo; ++y) {
        std::memcpy(out.data() + off + y * w, src + (y0 + y) * pw + halo,
                    sizeof(float) * static_cast<std::size_t>(w));
      }
      off += static_cast<std::size_t>(halo * w);
    }
    return out;
  };
  if (rank > 0) {
    comm.SendT(rank - 1, tag, std::span<const float>(gather_padded_rows(0)));
  }
  if (rank + 1 < p) {
    comm.SendT(rank + 1, tag + 1,
               std::span<const float>(gather_padded_rows(h + halo)));
  }

  // Local slab gradient = interior of the padded gradient...
  Tensor grad_slab(TensorShape::NCHW(ps.n(), ps.c(), h, w));
  for (std::int64_t nc = 0; nc < ps.n() * ps.c(); ++nc) {
    const float* src = grad_padded.Raw() + nc * ps.h() * pw;
    float* dst = grad_slab.Raw() + nc * h * w;
    for (std::int64_t y = 0; y < h; ++y) {
      std::memcpy(dst + y * w, src + (y + halo) * pw + halo,
                  sizeof(float) * static_cast<std::size_t>(w));
    }
  }

  // ...plus the contributions our rows made to the neighbours' halos.
  const std::size_t halo_elems =
      static_cast<std::size_t>(ps.n() * ps.c() * halo * w);
  auto add_rows = [&](const std::vector<float>& rows, std::int64_t y0) {
    std::size_t off = 0;
    for (std::int64_t nc = 0; nc < ps.n() * ps.c(); ++nc) {
      float* dst = grad_slab.Raw() + nc * h * w;
      for (std::int64_t y = 0; y < halo; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          dst[(y0 + y) * w + x] += rows[off + y * w + x];
        }
      }
      off += static_cast<std::size_t>(halo * w);
    }
  };
  if (rank > 0) {
    // The rank above holds the gradient for OUR top rows (its bottom
    // halo).
    std::vector<float> from_above(halo_elems);
    comm.RecvT(rank - 1, tag + 1,  // fault: blocking-ok
               std::span<float>(from_above));
    add_rows(from_above, 0);
  }
  if (rank + 1 < p) {
    std::vector<float> from_below(halo_elems);
    comm.RecvT(rank + 1, tag,  // fault: blocking-ok
               std::span<float>(from_below));
    add_rows(from_below, h - halo);
  }
  return grad_slab;
}

SpatialConvStack::SpatialConvStack(const Options& opts)
    : opts_(opts), halo_(opts.kernel / 2) {
  EXACLIM_CHECK(opts_.kernel % 2 == 1, "odd kernels only");
  Rng rng(opts_.seed);
  std::int64_t c = opts_.in_c;
  for (std::size_t i = 0; i < opts_.widths.size(); ++i) {
    convs_.push_back(std::make_unique<Conv2d>(
        "spatial.conv" + std::to_string(i),
        // pad 0: the halo exchange provides the padding.
        Conv2d::Options{.in_c = c, .out_c = opts_.widths[i],
                        .kernel = opts_.kernel, .pad = 0, .bias = false},
        rng));
    c = opts_.widths[i];
  }
}

Tensor SpatialConvStack::Forward(Communicator& comm, const Tensor& slab) {
  Tensor x = slab;
  int tag = 8600;
  for (auto& conv : convs_) {
    const Tensor padded = ExchangeHaloAndPad(comm, x, halo_, tag);
    x = conv->Forward(padded, /*train=*/true);
    tag += 10;
  }
  return x;
}

Tensor SpatialConvStack::Backward(Communicator& comm,
                                  const Tensor& grad_out) {
  Tensor g = grad_out;
  int tag = 8600 + 10 * static_cast<int>(convs_.size());
  for (std::size_t i = convs_.size(); i-- > 0;) {
    tag -= 10;
    const Tensor grad_padded = convs_[i]->Backward(g);
    g = ExchangeHaloAndPadBackward(comm, grad_padded, halo_, tag + 5);
  }
  return g;
}

namespace {

// Zero-pads a full image by `halo` on every side (the single-device
// equivalent of the halo exchange at world size 1... but without comm).
Tensor ZeroPad(const Tensor& image, std::int64_t halo) {
  const TensorShape& s = image.shape();
  Tensor padded(TensorShape::NCHW(s.n(), s.c(), s.h() + 2 * halo,
                                  s.w() + 2 * halo));
  const std::int64_t pw = s.w() + 2 * halo;
  for (std::int64_t nc = 0; nc < s.n() * s.c(); ++nc) {
    const float* src = image.Raw() + nc * s.h() * s.w();
    float* dst = padded.Raw() + nc * (s.h() + 2 * halo) * pw;
    for (std::int64_t y = 0; y < s.h(); ++y) {
      std::memcpy(dst + (y + halo) * pw + halo, src + y * s.w(),
                  sizeof(float) * static_cast<std::size_t>(s.w()));
    }
  }
  return padded;
}

Tensor CropPad(const Tensor& padded, std::int64_t halo) {
  const TensorShape& s = padded.shape();
  const std::int64_t h = s.h() - 2 * halo, w = s.w() - 2 * halo;
  Tensor out(TensorShape::NCHW(s.n(), s.c(), h, w));
  for (std::int64_t nc = 0; nc < s.n() * s.c(); ++nc) {
    const float* src = padded.Raw() + nc * s.h() * s.w();
    float* dst = out.Raw() + nc * h * w;
    for (std::int64_t y = 0; y < h; ++y) {
      std::memcpy(dst + y * w, src + (y + halo) * s.w() + halo,
                  sizeof(float) * static_cast<std::size_t>(w));
    }
  }
  return out;
}

}  // namespace

Tensor SpatialConvStack::ForwardLocal(const Tensor& full_image) {
  Tensor x = full_image;
  for (auto& conv : convs_) {
    x = conv->Forward(ZeroPad(x, halo_), /*train=*/true);
  }
  return x;
}

Tensor SpatialConvStack::BackwardLocal(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = convs_.size(); i-- > 0;) {
    g = CropPad(convs_[i]->Backward(g), halo_);
  }
  return g;
}

std::vector<Param*> SpatialConvStack::Params() {
  std::vector<Param*> params;
  for (auto& conv : convs_) AppendParams(params, *conv);
  return params;
}

}  // namespace exaclim
