#include "train/trainer.hpp"

#include "common/alloc_tracker.hpp"
#include "common/error.hpp"
#include "common/pool.hpp"
#include "common/sync.hpp"
#include "obs/obs.hpp"

namespace exaclim {

std::unique_ptr<Layer> BuildModel(const TrainerOptions& opts, Rng& rng) {
  if (opts.arch == TrainerOptions::Arch::kTiramisu) {
    return std::make_unique<Tiramisu>(opts.tiramisu, rng);
  }
  return std::make_unique<DeepLabV3Plus>(opts.deeplab, rng);
}

void SetModelPrecision(Layer& model, Precision precision) {
  if (auto* t = dynamic_cast<Tiramisu*>(&model)) {
    t->SetPrecisionAll(precision);
  } else if (auto* d = dynamic_cast<DeepLabV3Plus*>(&model)) {
    d->SetPrecisionAll(precision);
  } else {
    model.SetPrecision(precision);
  }
}

RankTrainer::RankTrainer(const TrainerOptions& opts,
                         std::vector<float> class_weights, int rank)
    : opts_(opts),
      class_weights_(std::move(class_weights)),
      scaler_(opts.loss_scaler) {
  // Same seed on every rank -> identical initial replicas (the
  // synchronous-training invariant of Sec V-A3).
  Rng rng(opts_.seed);
  model_ = BuildModel(opts_, rng);
  SetModelPrecision(*model_, opts_.precision);
  params_ = model_->Params();

  std::unique_ptr<Optimizer> base;
  if (opts_.optimizer == TrainerOptions::Opt::kSGD) {
    base = std::make_unique<SGD>(
        params_, SGD::Options{.lr = opts_.learning_rate,
                              .momentum = opts_.momentum});
  } else {
    base = std::make_unique<Adam>(params_,
                                  Adam::Options{.lr = opts_.learning_rate});
  }
  if (opts_.use_larc) {
    base = std::make_unique<LARC>(std::move(base), opts_.larc);
  }
  if (opts_.lag > 0) {
    base = std::make_unique<GradientLag>(std::move(base), opts_.lag);
  }
  optimizer_ = std::move(base);

  exchanger_ = std::make_unique<GradientExchanger>(
      opts_.exchanger, opts_.seed ^ 0xe8c4ull);
  // Per-rank construction differences live only in the exchanger's
  // shuffle stream, which is seeded by the communicator rank at use.
  (void)rank;
}

std::int64_t RankTrainer::ParameterCount() const {
  std::int64_t total = 0;
  for (const Param* p : params_) total += p->NumElements();
  return total;
}

RankTrainer::StepResult RankTrainer::Step(const Batch& batch,
                                          Communicator* comm) {
  StepResult result;
  obs::ScopedTimer step_timer("step", "train", &result.timings.total_seconds,
                              obs::HistogramOrNull("step.total_s"));
  // Per-phase allocation census (DESIGN §11): process-wide scope, since
  // forward/backward fan out to the thread pool. Publishes
  // alloc.{count,bytes}.step.* gauges and accumulates into the site
  // registry that bench_alloc_census reads; disappears behind one relaxed
  // load when EXACLIM_ALLOC_TRACK is off.
  EXACLIM_ALLOC_CENSUS("step");

  SegmentationLossResult loss;
  {
    obs::ScopedTimer timer("step.forward", "train",
                           &result.timings.forward_seconds,
                           obs::HistogramOrNull("step.forward_s"));
    EXACLIM_ALLOC_CENSUS("step.forward");
    optimizer_->ZeroGrad();
    const Tensor logits = model_->Forward(batch.fields, /*train=*/true);

    SegmentationLossOptions loss_opts;
    loss_opts.class_weights = class_weights_;
    loss_opts.precision = opts_.precision;
    loss_opts.loss_scale =
        opts_.precision == Precision::kFP16 ? scaler_.scale() : 1.0f;
    loss = WeightedSoftmaxCrossEntropy(logits, batch.labels, loss_opts);
    result.loss_scale = loss_opts.loss_scale;
  }
  {
    obs::ScopedTimer timer("step.backward", "train",
                           &result.timings.backward_seconds,
                           obs::HistogramOrNull("step.backward_s"));
    EXACLIM_ALLOC_CENSUS("step.backward");
    (void)model_->Backward(loss.grad_logits);
  }

  if (comm != nullptr) {
    obs::ScopedTimer timer("step.exchange", "train",
                           &result.timings.exchange_seconds,
                           obs::HistogramOrNull("step.exchange_s"));
    EXACLIM_ALLOC_CENSUS("step.exchange");
    exchanger_->Exchange(*comm, params_);
  }

  result.loss = loss.loss;
  result.pixel_accuracy = loss.pixel_accuracy;

  bool apply = true;
  {
    obs::ScopedTimer timer("step.update", "train",
                           &result.timings.update_seconds,
                           obs::HistogramOrNull("step.update_s"));
    EXACLIM_ALLOC_CENSUS("step.update");
    if (opts_.precision == Precision::kFP16) {
      const bool finite = !optimizer_->HasNonFiniteGradient();
      apply = scaler_.Update(finite);
      if (apply) optimizer_->UnscaleGradients(result.loss_scale);
    }
    if (apply) {
      optimizer_->Step();
    }
  }
  result.update_applied = apply;
  if (auto* g = obs::GaugeOrNull("step.loss_scale")) {
    g->Set(static_cast<double>(result.loss_scale));
  }
  if (!apply) {
    if (auto* c = obs::CounterOrNull("step.skipped")) c->Increment();
  }
  // Arena gauges (pool.live_bytes etc.); no-op without an installed sink.
  PublishPoolMetrics();
  return result;
}

ConfusionMatrix RankTrainer::Evaluate(const ClimateDataset& dataset,
                                      DatasetSplit split,
                                      std::int64_t max_samples) {
  ConfusionMatrix cm(kNumClimateClasses);
  const std::int64_t n = std::min(max_samples, dataset.size(split));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::vector<std::int64_t> idx{i};
    const Batch batch = dataset.MakeBatch(split, idx);
    const Tensor logits = model_->Forward(batch.fields, /*train=*/false);
    const auto pred = PredictClasses(logits);
    cm.Add(pred, batch.labels);
  }
  return cm;
}

TrainRunResult RunDistributedTraining(const TrainerOptions& opts,
                                      const ClimateDataset& dataset,
                                      int ranks, int steps,
                                      std::int64_t images_per_rank) {
  EXACLIM_CHECK(ranks >= 1 && steps >= 1, "need ranks >= 1, steps >= 1");
  const auto freq = dataset.MeasureFrequencies(16);
  const auto weights = MakeClassWeights(freq, opts.weighting);

  TrainRunResult result;
  result.loss_history.assign(static_cast<std::size_t>(steps), 0.0);
  result.accuracy_history.assign(static_cast<std::size_t>(steps), 0.0);
  Mutex result_mutex;

  SimWorld world(ranks);
  world.Run([&](Communicator& comm) {
    RankTrainer trainer(opts, weights, comm.rank());
    // Sec V-A1 local shards: each rank samples its own subset.
    const auto shard = dataset.LocalShard(comm.rank(), images_per_rank);
    Rng batch_rng =
        Rng(opts.seed ^ 0xba7c4).Fork(static_cast<std::uint64_t>(comm.rank()));

    for (int s = 0; s < steps; ++s) {
      std::vector<std::int64_t> indices(
          static_cast<std::size_t>(opts.local_batch));
      for (auto& idx : indices) {
        idx = shard[batch_rng.Index(shard.size())];
      }
      const Batch batch = dataset.MakeBatch(DatasetSplit::kTrain, indices);
      const auto step = trainer.Step(batch, &comm);
      if (comm.rank() == 0) {
        MutexLock lock(result_mutex);
        result.loss_history[static_cast<std::size_t>(s)] = step.loss;
        result.accuracy_history[static_cast<std::size_t>(s)] =
            step.pixel_accuracy;
        if (!step.update_applied) ++result.skipped_steps;
      }
    }
  });
  result.final_loss = result.loss_history.back();
  return result;
}

}  // namespace exaclim
