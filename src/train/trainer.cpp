#include "train/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/alloc_tracker.hpp"
#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/pool.hpp"
#include "common/sync.hpp"
#include "hvd/group.hpp"
#include "obs/obs.hpp"

namespace exaclim {

std::unique_ptr<Layer> BuildModel(const TrainerOptions& opts, Rng& rng) {
  if (opts.arch == TrainerOptions::Arch::kTiramisu) {
    return std::make_unique<Tiramisu>(opts.tiramisu, rng);
  }
  return std::make_unique<DeepLabV3Plus>(opts.deeplab, rng);
}

void SetModelPrecision(Layer& model, Precision precision) {
  if (auto* t = dynamic_cast<Tiramisu*>(&model)) {
    t->SetPrecisionAll(precision);
  } else if (auto* d = dynamic_cast<DeepLabV3Plus*>(&model)) {
    d->SetPrecisionAll(precision);
  } else {
    model.SetPrecision(precision);
  }
}

RankTrainer::RankTrainer(const TrainerOptions& opts,
                         std::vector<float> class_weights, int rank)
    : opts_(opts),
      class_weights_(std::move(class_weights)),
      scaler_(opts.loss_scaler) {
  // Same seed on every rank -> identical initial replicas (the
  // synchronous-training invariant of Sec V-A3).
  Rng rng(opts_.seed);
  model_ = BuildModel(opts_, rng);
  SetModelPrecision(*model_, opts_.precision);
  params_ = model_->Params();

  std::unique_ptr<Optimizer> base;
  if (opts_.optimizer == TrainerOptions::Opt::kSGD) {
    base = std::make_unique<SGD>(
        params_, SGD::Options{.lr = opts_.learning_rate,
                              .momentum = opts_.momentum});
  } else {
    base = std::make_unique<Adam>(params_,
                                  Adam::Options{.lr = opts_.learning_rate});
  }
  if (opts_.use_larc) {
    base = std::make_unique<LARC>(std::move(base), opts_.larc);
  }
  if (opts_.lag > 0) {
    base = std::make_unique<GradientLag>(std::move(base), opts_.lag);
  }
  optimizer_ = std::move(base);

  exchanger_ = std::make_unique<GradientExchanger>(
      opts_.exchanger, opts_.seed ^ 0xe8c4ull);
  recorder_.Bind(params_);
  // Per-rank construction differences live only in the exchanger's
  // shuffle stream, which is seeded by the communicator rank at use.
  (void)rank;
}

std::int64_t RankTrainer::ParameterCount() const {
  std::int64_t total = 0;
  for (const Param* p : params_) total += p->NumElements();
  return total;
}

RankTrainer::StepResult RankTrainer::Step(const Batch& batch,
                                          Communicator* comm) {
  return StepImpl(batch, comm, nullptr, nullptr);
}

RankTrainer::ElasticStepResult RankTrainer::StepElastic(
    const Batch& batch, Communicator& comm, ElasticWorld& elastic) {
  ElasticStepResult result;
  result.step = StepImpl(batch, &comm, &elastic, &result.exchange);
  return result;
}

RankTrainer::StepResult RankTrainer::StepImpl(
    const Batch& batch, Communicator* comm, ElasticWorld* elastic,
    CollectiveResult* exchange_status) {
  StepResult result;
  obs::ScopedTimer step_timer("step", "train", &result.timings.total_seconds,
                              obs::HistogramOrNull("step.total_s"));
  // Per-phase allocation census (DESIGN §11): process-wide scope, since
  // forward/backward fan out to the thread pool. Publishes
  // alloc.{count,bytes}.step.* gauges and accumulates into the site
  // registry that bench_alloc_census reads; disappears behind one relaxed
  // load when EXACLIM_ALLOC_TRACK is off.
  EXACLIM_ALLOC_CENSUS("step");

  SegmentationLossResult loss;
  {
    obs::ScopedTimer timer("step.forward", "train",
                           &result.timings.forward_seconds,
                           obs::HistogramOrNull("step.forward_s"));
    EXACLIM_ALLOC_CENSUS("step.forward");
    optimizer_->ZeroGrad();
    const Tensor logits = model_->Forward(batch.fields, /*train=*/true);

    SegmentationLossOptions loss_opts;
    loss_opts.class_weights = class_weights_;
    loss_opts.precision = opts_.precision;
    loss_opts.loss_scale =
        opts_.precision == Precision::kFP16 ? scaler_.scale() : 1.0f;
    loss = WeightedSoftmaxCrossEntropy(logits, batch.labels, loss_opts);
    result.loss_scale = loss_opts.loss_scale;
  }
  const bool overlap = opts_.exchanger.overlap && comm != nullptr;
  {
    obs::ScopedTimer timer("step.backward", "train",
                           &result.timings.backward_seconds,
                           obs::HistogramOrNull("step.backward_s"));
    EXACLIM_ALLOC_CENSUS("step.backward");
    if (comm != nullptr) {
      // Record the grad-ready emission order (and, in overlap mode,
      // stream it straight into the exchanger so fused buckets reduce on
      // the exchange thread while the rest of backward still computes —
      // DESIGN §14).
      if (overlap) {
        const Deadline deadline(elastic != nullptr
                                    ? elastic->options().collective_timeout_s
                                    : kNoTimeout);
        exchanger_->BeginStep(*comm, params_, elastic, deadline);
      }
      recorder_.BeginStep(overlap ? exchanger_.get() : nullptr);
      model_->SetGradReadyListener(&recorder_);
    }
    (void)model_->Backward(loss.grad_logits);
    if (comm != nullptr) {
      model_->SetGradReadyListener(nullptr);
      // Params no hook announced (if any) still exchange exactly once.
      recorder_.FlushRemaining();
    }
  }

  if (comm != nullptr) {
    obs::ScopedTimer timer("step.exchange", "train",
                           &result.timings.exchange_seconds,
                           obs::HistogramOrNull("step.exchange_s"));
    EXACLIM_ALLOC_CENSUS("step.exchange");
    CollectiveResult r;
    if (overlap) {
      // Barrier: only the exchange tail not hidden behind backward shows
      // up here (a RankKilledError raised on the exchange thread by the
      // chaos schedule rethrows out of WaitAll on this thread).
      r = exchanger_->WaitAll();
    } else if (elastic != nullptr) {
      const Deadline deadline(elastic->options().collective_timeout_s);
      r = exchanger_->TryExchange(*comm, params_, *elastic, deadline,
                                  recorder_.order());
    } else {
      exchanger_->Exchange(*comm, params_, recorder_.order());
    }
    if (exchange_status != nullptr) *exchange_status = r;
    if (elastic != nullptr) {
      if (!r.ok()) {
        // Failed exchange: the gradients are partial garbage. Roll the
        // step back — no optimizer or scaler update — so every survivor
        // leaves this step with the pre-step replica, bit-identical.
        result.loss = loss.loss;
        result.pixel_accuracy = loss.pixel_accuracy;
        result.update_applied = false;
        return result;
      }
    } else {
      EXACLIM_CHECK(r.ok(),
                    "rank " << comm->rank()
                            << ": blocking exchange cannot complete: rank "
                            << r.suspect_rank
                            << (r.status == CollectiveStatus::kPeerDead
                                    ? " is dead"
                                    : " is unresponsive"));
    }
  }

  result.loss = loss.loss;
  result.pixel_accuracy = loss.pixel_accuracy;

  bool apply = true;
  {
    obs::ScopedTimer timer("step.update", "train",
                           &result.timings.update_seconds,
                           obs::HistogramOrNull("step.update_s"));
    EXACLIM_ALLOC_CENSUS("step.update");
    if (opts_.precision == Precision::kFP16) {
      const bool finite = !optimizer_->HasNonFiniteGradient();
      apply = scaler_.Update(finite);
      if (apply) optimizer_->UnscaleGradients(result.loss_scale);
    }
    if (apply) {
      optimizer_->Step();
    }
  }
  result.update_applied = apply;
  if (auto* g = obs::GaugeOrNull("step.loss_scale")) {
    g->Set(static_cast<double>(result.loss_scale));
  }
  if (!apply) {
    if (auto* c = obs::CounterOrNull("step.skipped")) c->Increment();
  }
  // Arena gauges (pool.live_bytes etc.); no-op without an installed sink.
  PublishPoolMetrics();
  return result;
}

namespace {

// Resync tags, salted into the new generation's namespace at use.
constexpr int kTagResync = 30000;
constexpr int kTagResyncCrc = 30700;
constexpr int kTagResumeUp = 30900;
constexpr int kTagResumeDown = 30901;

/// Post-rebuild resume-step agreement. Survivors can observe a death at
/// adjacent step indices — a rank may abort its step-s exchange while a
/// peer, whose collective was already satisfiable from delivered
/// messages, completes s and fails at s+1. Everyone resumes from the
/// lowest failed step: with freshly resynced weights a replayed step is
/// just another synchronous step, while diverged step counters would
/// strand the tail of the run (unequal exchange counts never match up).
int AgreeResumeStep(Communicator& comm, ElasticWorld& elastic,
                    int my_failed_step) {
  const ElasticView& view = elastic.view();
  const RankGroup group(view.members, comm.rank());
  const Deadline deadline(elastic.options().rebuild_timeout_s);
  int resume = my_failed_step;
  if (view.my_index == 0) {
    for (int i = 1; i < group.size(); ++i) {
      int other = 0;
      const RecvStatus status = comm.RecvValueTimeout(
          group.WorldRank(i), elastic.GenTag(kTagResumeUp),
          deadline.Remaining(), &other);
      EXACLIM_CHECK(status == RecvStatus::kOk,
                    "rank " << comm.rank()
                            << ": resume-step agreement lost rank "
                            << group.WorldRank(i));
      resume = std::min(resume, other);
    }
    for (int i = 1; i < group.size(); ++i) {
      comm.SendValue(group.WorldRank(i), elastic.GenTag(kTagResumeDown),
                     resume);
    }
  } else {
    comm.SendValue(group.WorldRank(0), elastic.GenTag(kTagResumeUp),
                   my_failed_step);
    const RecvStatus status = comm.RecvValueTimeout(
        group.WorldRank(0), elastic.GenTag(kTagResumeDown),
        deadline.Remaining(), &resume);
    EXACLIM_CHECK(status == RecvStatus::kOk,
                  "rank " << comm.rank()
                          << ": resume-step agreement lost the root");
  }
  return resume;
}

}  // namespace

std::uint32_t RankTrainer::ParamsCrc32() const {
  std::uint32_t crc = 0;
  for (const Param* p : params_) {
    const auto data = p->value.Data();
    crc = Crc32(std::as_bytes(std::span<const float>(data.data(),
                                                     data.size())),
                crc);
  }
  return crc;
}

CollectiveResult RankTrainer::ResyncFromRoot(Communicator& comm,
                                             ElasticWorld& elastic,
                                             std::int64_t* resync_bytes) {
  const ElasticView& view = elastic.view();
  const RankGroup group(view.members, comm.rank());
  const Deadline deadline(elastic.options().rebuild_timeout_s);
  const bool is_root = view.my_index == 0;

  std::int64_t total = 0;
  for (const Param* p : params_) total += p->NumElements();
  std::vector<float> blob(static_cast<std::size_t>(total));
  if (is_root) {
    std::size_t off = 0;
    for (const Param* p : params_) {
      const auto data = p->value.Data();
      std::copy(data.begin(), data.end(), blob.begin() + off);
      off += data.size();
    }
  }

  CollectiveResult r = TryGroupBroadcast(comm, group, 0, blob, deadline,
                                         elastic.GenTag(kTagResync));
  if (!r.ok()) return r;

  // The root's checksum is authoritative; every receiver verifies the
  // blob it got survived the broadcast tree intact.
  const std::uint32_t local_crc =
      Crc32(std::as_bytes(std::span<const float>(blob)));
  if (is_root) {
    for (int i = 1; i < group.size(); ++i) {
      comm.SendValue(group.WorldRank(i), elastic.GenTag(kTagResyncCrc),
                     local_crc);
    }
  } else {
    std::uint32_t root_crc = 0;
    const RecvStatus status = comm.RecvValueTimeout(
        group.WorldRank(0), elastic.GenTag(kTagResyncCrc),
        deadline.Remaining(), &root_crc);
    if (status != RecvStatus::kOk) {
      CollectiveResult fail;
      fail.status = status == RecvStatus::kPeerDead
                        ? CollectiveStatus::kPeerDead
                        : CollectiveStatus::kTimeout;
      fail.suspect_rank = group.WorldRank(0);
      return fail;
    }
    EXACLIM_CHECK(root_crc == local_crc,
                  "rank " << comm.rank() << ": resync CRC mismatch (root "
                          << root_crc << " vs local " << local_crc
                          << ") — weight broadcast corrupted");
    std::size_t off = 0;
    for (Param* p : params_) {
      auto data = p->value.Data();
      std::copy(blob.begin() + off,
                blob.begin() + off + static_cast<std::ptrdiff_t>(data.size()),
                data.begin());
      off += data.size();
    }
  }
  if (resync_bytes != nullptr) {
    *resync_bytes = total * static_cast<std::int64_t>(sizeof(float));
  }
  return {};
}

ConfusionMatrix RankTrainer::Evaluate(const ClimateDataset& dataset,
                                      DatasetSplit split,
                                      std::int64_t max_samples) {
  ConfusionMatrix cm(kNumClimateClasses);
  const std::int64_t n = std::min(max_samples, dataset.size(split));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::vector<std::int64_t> idx{i};
    const Batch batch = dataset.MakeBatch(split, idx);
    const Tensor logits = model_->Forward(batch.fields, /*train=*/false);
    const auto pred = PredictClasses(logits);
    cm.Add(pred, batch.labels);
  }
  return cm;
}

TrainRunResult RunDistributedTraining(const TrainerOptions& raw_opts,
                                      const ClimateDataset& dataset,
                                      int ranks, int steps,
                                      std::int64_t images_per_rank) {
  EXACLIM_CHECK(ranks >= 1 && steps >= 1, "need ranks >= 1, steps >= 1");
  // EXACLIM_ELASTIC / EXACLIM_ELASTIC_TIMEOUT /
  // EXACLIM_ELASTIC_REBUILD_TIMEOUT override the programmatic options,
  // so elasticity can be armed on an existing binary alongside
  // EXACLIM_FAULTS.
  TrainerOptions opts = raw_opts;
  opts.elastic = ElasticOptions::FromEnv(opts.elastic);
  // EXACLIM_OVERLAP / EXACLIM_FUSION_BYTES / EXACLIM_WIRE likewise
  // override the exchange knobs on an existing binary.
  opts.exchanger = ExchangerOptions::FromEnv(opts.exchanger);
  const auto freq = dataset.MeasureFrequencies(16);
  const auto weights = MakeClassWeights(freq, opts.weighting);

  TrainRunResult result;
  result.loss_history.assign(static_cast<std::size_t>(steps), 0.0);
  result.accuracy_history.assign(static_cast<std::size_t>(steps), 0.0);
  result.final_world_size = ranks;
  result.survived.assign(static_cast<std::size_t>(ranks), 0);
  result.survivor_param_crcs.assign(static_cast<std::size_t>(ranks), 0);
  Mutex result_mutex;
  const bool elastic_on = opts.elastic.enabled;

  SimWorld world(ranks);
  world.Run([&](Communicator& comm) {
    RankTrainer trainer(opts, weights, comm.rank());
    ElasticWorld elastic(comm, opts.elastic);
    // Sec V-A1 local shards: each rank samples its own subset. After a
    // shrink the surviving ranks reshard by view index, so the dead
    // ranks' data keeps being visited.
    auto shard = dataset.LocalShard(comm.rank(), images_per_rank);
    Rng batch_rng =
        Rng(opts.seed ^ 0xba7c4).Fork(static_cast<std::uint64_t>(comm.rank()));

    std::int64_t local_recoveries = 0;
    std::int64_t local_resync_bytes = 0;
    try {
      for (int s = 0; s < steps; ++s) {
        if (elastic_on) {
          // Chaos site "elastic.kill.<rank>": die at step entry, before
          // this rank joins the exchange — its peers discover the death
          // from inside their bounded collectives.
          FaultInjector& injector = FaultInjector::Global();
          if (injector.ArmedSiteCount() > 0 &&
              injector.ShouldInject("elastic.kill." +
                                    std::to_string(comm.rank()))) {
            comm.KillSelf();
            throw RankKilledError("rank " + std::to_string(comm.rank()) +
                                  " killed at step entry by the chaos "
                                  "schedule");
          }
        }
        std::vector<std::int64_t> indices(
            static_cast<std::size_t>(opts.local_batch));
        for (auto& idx : indices) {
          idx = shard[batch_rng.Index(shard.size())];
        }
        const Batch batch = dataset.MakeBatch(DatasetSplit::kTrain, indices);

        RankTrainer::StepResult step;
        if (elastic_on) {
          const auto es = trainer.StepElastic(batch, comm, elastic);
          if (!es.exchange.ok()) {
            // A peer died mid-exchange. Every survivor observed a failed
            // collective, so nobody applied this step: rebuild the world,
            // resync weights from the lowest-ranked survivor, reshard,
            // and retry the same step index on the shrunk world.
            const auto t0 = std::chrono::steady_clock::now();
            const CollectiveResult rebuilt = elastic.Rebuild();
            EXACLIM_CHECK(rebuilt.ok(),
                          "rank " << comm.rank()
                                  << ": elastic rebuild failed after rank "
                                  << es.exchange.suspect_rank << " died");
            std::int64_t bytes = 0;
            const CollectiveResult resync =
                trainer.ResyncFromRoot(comm, elastic, &bytes);
            EXACLIM_CHECK(resync.ok(),
                          "rank " << comm.rank()
                                  << ": weight resync failed (suspect rank "
                                  << resync.suspect_rank << ")");
            shard = dataset.LocalShard(elastic.view().my_index,
                                       images_per_rank);
            const double secs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            ++local_recoveries;
            local_resync_bytes += bytes;
            if (auto* g = obs::GaugeOrNull("elastic.generation")) {
              g->Set(static_cast<double>(elastic.generation()));
            }
            if (auto* c = obs::CounterOrNull("elastic.recoveries")) {
              c->Increment();
            }
            if (auto* c = obs::CounterOrNull("elastic.resync_bytes")) {
              c->Add(bytes);
            }
            if (auto* h = obs::HistogramOrNull("elastic.recovery_s")) {
              h->Record(secs);
            }
            // Rewind to the lowest failed step across survivors (the
            // for-loop increment lands on it); see AgreeResumeStep.
            s = AgreeResumeStep(comm, elastic, s) - 1;
            continue;
          }
          step = es.step;
        } else {
          step = trainer.Step(batch, &comm);
        }

        // Loss history follows the lowest live rank so the curve
        // continues across the death of rank 0.
        const bool recorder =
            elastic_on ? elastic.view().WorldRank(0) == comm.rank()
                       : comm.rank() == 0;
        if (recorder) {
          MutexLock lock(result_mutex);
          result.loss_history[static_cast<std::size_t>(s)] = step.loss;
          result.accuracy_history[static_cast<std::size_t>(s)] =
              step.pixel_accuracy;
          if (!step.update_applied) ++result.skipped_steps;
        }
      }
    } catch (const RankKilledError&) {
      // This rank was chaos-killed. Its mailbox is already drained and
      // flagged dead; just leave the lambda without poisoning the world.
      return;
    }

    MutexLock lock(result_mutex);
    result.survived[static_cast<std::size_t>(comm.rank())] = 1;
    result.survivor_param_crcs[static_cast<std::size_t>(comm.rank())] =
        trainer.ParamsCrc32();
    result.final_world_size = elastic.view().size();
    result.final_generation =
        std::max(result.final_generation, elastic.generation());
    result.recoveries = std::max(result.recoveries, local_recoveries);
    result.resync_bytes = std::max(result.resync_bytes, local_resync_bytes);
  });
  result.final_loss = result.loss_history.back();
  return result;
}

}  // namespace exaclim
