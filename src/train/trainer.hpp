#pragma once

#include <memory>
#include <vector>

#include "comm/elastic.hpp"
#include "comm/world.hpp"
#include "data/dataset.hpp"
#include "hvd/exchanger.hpp"
#include "models/deeplab.hpp"
#include "models/tiramisu.hpp"
#include "nn/loss.hpp"
#include "optim/lag.hpp"
#include "optim/larc.hpp"
#include "optim/loss_scaler.hpp"
#include "optim/optimizer.hpp"
#include "stats/stats.hpp"

namespace exaclim {

/// Everything configurable about a (downscaled, CPU-runnable) version of
/// the paper's training runs: architecture, precision, loss weighting,
/// optimizer stack (SGD/Adam, LARC, gradient lag, dynamic loss scaling)
/// and the Horovod-style gradient exchange.
struct TrainerOptions {
  enum class Arch { kTiramisu, kDeepLab };
  enum class Opt { kSGD, kAdam };

  Arch arch = Arch::kTiramisu;
  Tiramisu::Config tiramisu = Tiramisu::Config::Downscaled(8);
  DeepLabV3Plus::Config deeplab = DeepLabV3Plus::Config::Downscaled(8);

  Precision precision = Precision::kFP32;
  LossScaler::Options loss_scaler{};  // active under FP16
  WeightingScheme weighting = WeightingScheme::kInverseSqrt;

  Opt optimizer = Opt::kAdam;
  float learning_rate = 1e-3f;
  float momentum = 0.9f;
  bool use_larc = true;
  LARC::Options larc{};
  int lag = 0;

  ExchangerOptions exchanger{};
  /// Elastic training (DESIGN §13): survive rank death mid-step via
  /// bounded collectives + world rebuild + live-peer weight resync.
  ElasticOptions elastic{};
  std::int64_t local_batch = 1;
  std::uint64_t seed = 42;
};

/// One rank's training state: model replica (identically initialised on
/// every rank from the shared seed), optimizer stack, loss scaler and
/// gradient exchanger. Step() performs one synchronous data-parallel
/// training step, which leaves replicas bit-identical across ranks.
class RankTrainer {
 public:
  RankTrainer(const TrainerOptions& opts,
              std::vector<float> class_weights, int rank);

  /// Wall-clock breakdown of a single step, filled on every call (cheap
  /// steady_clock reads). When observability is enabled the same numbers
  /// also stream into the "step.*_s" histograms and the trace as nested
  /// spans under "step".
  struct StepTimings {
    double forward_seconds = 0.0;
    double backward_seconds = 0.0;
    double exchange_seconds = 0.0;  // 0 when running without a communicator
    double update_seconds = 0.0;
    double total_seconds = 0.0;
  };

  struct StepResult {
    double loss = 0.0;
    double pixel_accuracy = 0.0;
    bool update_applied = true;  // false: FP16 overflow skipped the step
    float loss_scale = 1.0f;
    StepTimings timings;
  };

  /// One synchronous data-parallel training step. With a communicator,
  /// all ranks call collectively with their own local batch and gradients
  /// are exchanged; with `comm == nullptr` the step is local-only (single
  /// process, no gradient exchange).
  StepResult Step(const Batch& batch, Communicator* comm = nullptr);

  /// Elastic step: the exchange runs bounded over the current view. On a
  /// failed exchange (`!exchange.ok()`) the partial gradients are
  /// discarded — no optimizer or loss-scaler update happens — so every
  /// survivor's replica stays bit-identical and the step can be retried
  /// after Rebuild()+ResyncFromRoot().
  struct ElasticStepResult {
    StepResult step;
    CollectiveResult exchange;
  };
  ElasticStepResult StepElastic(const Batch& batch, Communicator& comm,
                                ElasticWorld& elastic);

  /// Re-aligns replicas after a rebuild: the view's index-0 survivor
  /// broadcasts its weights in memory (no disk checkpoint on the hot
  /// recovery path), CRC32-verified on every receiver. `*resync_bytes`
  /// gets the broadcast payload size.
  CollectiveResult ResyncFromRoot(Communicator& comm, ElasticWorld& elastic,
                                  std::int64_t* resync_bytes);

  /// CRC32 over all parameter values — the replica-consistency probe the
  /// chaos tests assert with.
  std::uint32_t ParamsCrc32() const;

  /// Runs inference over up to `max_samples` of a split, accumulating a
  /// confusion matrix (mean IoU is the Sec VII-D metric).
  ConfusionMatrix Evaluate(const ClimateDataset& dataset, DatasetSplit split,
                           std::int64_t max_samples);

  Layer& model() { return *model_; }
  const std::vector<Param*>& params() const { return params_; }
  std::int64_t ParameterCount() const;

 private:
  StepResult StepImpl(const Batch& batch, Communicator* comm,
                      ElasticWorld* elastic,
                      CollectiveResult* exchange_status);

  TrainerOptions opts_;
  std::vector<float> class_weights_;
  std::unique_ptr<Layer> model_;
  std::vector<Param*> params_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<GradientExchanger> exchanger_;
  /// Streams per-layer grad-ready events from Backward into the
  /// exchanger (overlap mode) and records the emission order the
  /// serialized exchange replays, so both modes fuse identical buckets.
  GradReadyRecorder recorder_;
  LossScaler scaler_;
};

/// Convergence-run driver (the engine behind Fig 6 / Fig 7 benches):
/// trains over `ranks` simulated data-parallel ranks for `steps` steps,
/// each rank drawing batches from its own local shard (Sec V-A1
/// resampling), and records the rank-0 loss curve.
struct TrainRunResult {
  std::vector<double> loss_history;       // per step (lowest live rank)
  std::vector<double> accuracy_history;   // per step (lowest live rank)
  std::int64_t skipped_steps = 0;         // FP16 overflow skips
  double final_loss = 0.0;

  // Elastic outcome (populated when opts.elastic.enabled; with no
  // failures: final_world_size == ranks, generation 0, 0 recoveries).
  int final_world_size = 0;
  int final_generation = 0;
  std::int64_t recoveries = 0;      // world rebuilds survived
  std::int64_t resync_bytes = 0;    // weight bytes re-broadcast in memory
  std::vector<char> survived;       // per world rank: finished the run
  std::vector<std::uint32_t> survivor_param_crcs;  // per rank, 0 if dead
};

TrainRunResult RunDistributedTraining(const TrainerOptions& opts,
                                      const ClimateDataset& dataset,
                                      int ranks, int steps,
                                      std::int64_t images_per_rank = 32);

/// Builds the model described by the options (used by benches that need
/// a standalone replica, e.g. for evaluation).
std::unique_ptr<Layer> BuildModel(const TrainerOptions& opts, Rng& rng);
void SetModelPrecision(Layer& model, Precision precision);

}  // namespace exaclim
