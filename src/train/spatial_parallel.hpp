#pragma once

#include <memory>

#include "comm/world.hpp"
#include "nn/conv.hpp"

namespace exaclim {

/// Spatial model parallelism (the paper's Sec VIII future-work item:
/// "Systems like Summit ... are amenable to domain decomposition
/// techniques that split layers across processors").
///
/// The image's H dimension is partitioned into equal slabs, one per
/// rank; convolution weights are replicated. Before each 3×3/5×5 conv,
/// ranks exchange `halo` boundary rows with their neighbours so each
/// local convolution sees exactly the receptive field it would see on
/// the full image — the distributed forward/backward is numerically
/// identical to the single-device computation (up to FP accumulation
/// order). Weight gradients are partial sums over each slab; summing
/// them across ranks (e.g. with comm's Allreduce) recovers the full
/// gradient, which is what a combined data+model-parallel training step
/// would all-reduce.

/// Exchanges `halo` rows with the ranks above/below this slab (zeros at
/// the global top/bottom) and zero-pads `halo` columns, returning a
/// [N, C, h+2*halo, w+2*halo] tensor ready for a pad-0 convolution.
Tensor ExchangeHaloAndPad(Communicator& comm, const Tensor& slab,
                          std::int64_t halo, int tag);

/// Adjoint of ExchangeHaloAndPad: accumulates the padded-input gradient
/// back onto the local slab, shipping halo-row contributions to the
/// neighbour ranks they belong to (and receiving ours from them).
Tensor ExchangeHaloAndPadBackward(Communicator& comm,
                                  const Tensor& grad_padded,
                                  std::int64_t halo, int tag);

/// A stack of same-resolution convolutions (3×3, pad "same") executed
/// under spatial decomposition. Weights are owned here and replicated
/// identically on every rank (same seed).
class SpatialConvStack {
 public:
  struct Options {
    std::int64_t in_c = 4;
    std::vector<std::int64_t> widths = {8, 8};  // output channels per conv
    std::int64_t kernel = 3;
    std::uint64_t seed = 1;
  };

  explicit SpatialConvStack(const Options& opts);

  /// Distributed forward over this rank's slab [N, C, h_local, W]. All
  /// ranks call collectively with equal slab heights.
  Tensor Forward(Communicator& comm, const Tensor& slab);
  /// Distributed backward; returns grad w.r.t. the local slab and
  /// accumulates partial weight gradients (sum over this slab's pixels).
  Tensor Backward(Communicator& comm, const Tensor& grad_out);

  /// Single-device reference path (no comm), for equivalence checks.
  Tensor ForwardLocal(const Tensor& full_image);
  Tensor BackwardLocal(const Tensor& grad_out);

  std::vector<Param*> Params();
  std::int64_t halo() const { return halo_; }

 private:
  Options opts_;
  std::int64_t halo_;
  std::vector<std::unique_ptr<Conv2d>> convs_;
};

}  // namespace exaclim
