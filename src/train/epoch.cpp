#include "train/epoch.hpp"

#include <chrono>
#include <map>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/logging.hpp"
#include "train/checkpoint.hpp"

namespace exaclim {

EpochRunnerResult RunEpochs(const TrainerOptions& trainer_opts,
                            const ClimateDataset& dataset,
                            const EpochRunnerOptions& opts) {
  EXACLIM_CHECK(opts.epochs >= 1 && opts.steps_per_epoch >= 1,
                "need at least one epoch and one step");
  EXACLIM_CHECK(opts.checkpoint_every == 0 || !opts.checkpoint_path.empty(),
                "periodic checkpointing needs a checkpoint_path");
  using Clock = std::chrono::steady_clock;

  const auto freq = dataset.MeasureFrequencies(16);
  RankTrainer trainer(
      trainer_opts, MakeClassWeights(freq, trainer_opts.weighting), 0);
  const Rng rng_base(trainer_opts.seed ^ 0xe90c4ull);

  EpochRunnerResult result;

  // Resume: a good checkpoint restarts from the epoch after the one it
  // recorded; a corrupt/truncated one is rejected and training restarts
  // from scratch — restart-safety must never depend on a file that may
  // itself be the casualty of the crash being recovered from.
  if (opts.resume && !opts.checkpoint_path.empty() &&
      std::filesystem::exists(opts.checkpoint_path)) {
    std::map<std::string, double> meta;
    try {
      LoadCheckpoint(opts.checkpoint_path, trainer.params(), &meta,
                     trainer.model().StateTensors());
      const auto it = meta.find("epoch");
      EXACLIM_CHECK(it != meta.end(),
                    "checkpoint " << opts.checkpoint_path
                                  << " carries no epoch index");
      result.start_epoch = static_cast<int>(it->second);
      result.resumed = true;
    } catch (const Error& e) {
      FaultCounterBump("fault.checkpoint.rejected");
      EXACLIM_LOG(kWarn) << "ignoring unusable checkpoint "
                         << opts.checkpoint_path << ": " << e.what();
      result.start_epoch = 0;
      result.resumed = false;
    }
  }

  FaultInjector& injector = FaultInjector::Global();
  for (int epoch = result.start_epoch; epoch < opts.epochs; ++epoch) {
    // Epoch-indexed RNG stream: epoch N draws the same indices (and
    // augmentations) whether reached directly or through a resume.
    Rng rng = rng_base.Fork(epoch);
    const auto train_start = Clock::now();
    double loss_acc = 0.0;
    for (int s = 0; s < opts.steps_per_epoch; ++s) {
      if (injector.ShouldInject("epoch.step")) {
        FaultCounterBump("fault.epoch.step_kills");
        throw Error("injected fault: epoch.step at epoch " +
                    std::to_string(epoch) + " step " + std::to_string(s));
      }
      std::vector<std::int64_t> idx(
          static_cast<std::size_t>(trainer_opts.local_batch));
      for (auto& i : idx) {
        i = rng.Int(0, dataset.size(DatasetSplit::kTrain) - 1);
      }
      Batch batch = dataset.MakeBatch(DatasetSplit::kTrain, idx);
      if (opts.augment) {
        AugmentBatch(batch, opts.augment_options, rng, dataset.height(),
                     dataset.width());
      }
      loss_acc += trainer.Step(batch).loss;
    }
    result.train_seconds +=
        std::chrono::duration<double>(Clock::now() - train_start).count();
    result.train_loss.push_back(loss_acc / opts.steps_per_epoch);

    const auto val_start = Clock::now();
    const ConfusionMatrix cm = trainer.Evaluate(
        dataset, DatasetSplit::kValidation, opts.validation_samples);
    result.validation_seconds +=
        std::chrono::duration<double>(Clock::now() - val_start).count();
    result.validation_miou.push_back(cm.MeanIoU());

    if (opts.checkpoint_every > 0 &&
        (epoch + 1) % opts.checkpoint_every == 0) {
      // A failed write (e.g. the injected checkpoint.write crash) costs
      // the checkpoint, not the run: keep training on the last good one.
      try {
        std::map<std::string, double> meta;
        meta["epoch"] = static_cast<double>(epoch + 1);
        SaveCheckpoint(opts.checkpoint_path, trainer.params(), meta,
                       trainer.model().StateTensors());
        ++result.checkpoints_written;
      } catch (const Error& e) {
        FaultCounterBump("fault.checkpoint.save_failures");
        EXACLIM_LOG(kWarn) << "checkpoint write failed at epoch " << epoch
                           << ": " << e.what();
      }
    }
  }
  return result;
}

}  // namespace exaclim
