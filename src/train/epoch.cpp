#include "train/epoch.hpp"

#include <chrono>

#include "common/error.hpp"

namespace exaclim {

EpochRunnerResult RunEpochs(const TrainerOptions& trainer_opts,
                            const ClimateDataset& dataset,
                            const EpochRunnerOptions& opts) {
  EXACLIM_CHECK(opts.epochs >= 1 && opts.steps_per_epoch >= 1,
                "need at least one epoch and one step");
  using Clock = std::chrono::steady_clock;

  const auto freq = dataset.MeasureFrequencies(16);
  RankTrainer trainer(
      trainer_opts, MakeClassWeights(freq, trainer_opts.weighting), 0);
  Rng rng(trainer_opts.seed ^ 0xe90c4ull);

  EpochRunnerResult result;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    const auto train_start = Clock::now();
    double loss_acc = 0.0;
    for (int s = 0; s < opts.steps_per_epoch; ++s) {
      std::vector<std::int64_t> idx(
          static_cast<std::size_t>(trainer_opts.local_batch));
      for (auto& i : idx) {
        i = rng.Int(0, dataset.size(DatasetSplit::kTrain) - 1);
      }
      Batch batch = dataset.MakeBatch(DatasetSplit::kTrain, idx);
      if (opts.augment) {
        AugmentBatch(batch, opts.augment_options, rng, dataset.height(),
                     dataset.width());
      }
      loss_acc += trainer.Step(batch).loss;
    }
    result.train_seconds +=
        std::chrono::duration<double>(Clock::now() - train_start).count();
    result.train_loss.push_back(loss_acc / opts.steps_per_epoch);

    const auto val_start = Clock::now();
    const ConfusionMatrix cm = trainer.Evaluate(
        dataset, DatasetSplit::kValidation, opts.validation_samples);
    result.validation_seconds +=
        std::chrono::duration<double>(Clock::now() - val_start).count();
    result.validation_miou.push_back(cm.MeanIoU());
  }
  return result;
}

}  // namespace exaclim
