#include "train/checkpoint.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "io/ncf.hpp"

namespace exaclim {

std::int64_t SaveCheckpoint(const std::filesystem::path& path,
                            const std::vector<Param*>& params) {
  NcfWriter writer(path);
  for (const Param* p : params) {
    writer.AddFloat(p->name, p->value.Data());
  }
  return writer.Finish();
}

void LoadCheckpoint(const std::filesystem::path& path,
                    const std::vector<Param*>& params) {
  NcfReader reader(path);
  for (Param* p : params) {
    EXACLIM_CHECK(reader.Has(p->name),
                  "checkpoint " << path << " missing parameter " << p->name);
    const auto values = reader.ReadFloat(p->name);
    EXACLIM_CHECK(static_cast<std::int64_t>(values.size()) ==
                      p->value.NumElements(),
                  "checkpoint size mismatch for " << p->name << ": file has "
                                                  << values.size());
    std::copy(values.begin(), values.end(), p->value.Data().begin());
  }
}

}  // namespace exaclim
