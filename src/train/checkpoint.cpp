#include "train/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/checksum.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "io/ncf.hpp"
#include "obs/obs.hpp"

namespace exaclim {

namespace {

// Footer appended after the NCF payload:
//   [u32 magic "XCRC"] [u32 count] count * { u32 name_len, name, u32 crc }
//   [u64 body_size] [char[4] "XCRC"]
// The trailing 12 bytes make detection O(1) from the file tail; a file
// without them is a pre-footer checkpoint and loads unverified.
constexpr char kCrcMagic[4] = {'X', 'C', 'R', 'C'};
constexpr std::size_t kCrcTailBytes = sizeof(std::uint64_t) + 4;

constexpr const char* kMetaPrefix = "__meta__";
constexpr const char* kStatePrefix = "__state__";

void AppendScalar(std::vector<std::uint8_t>* out, const void* p,
                  std::size_t n) {
  const auto* bytes = static_cast<const std::uint8_t*>(p);
  out->insert(out->end(), bytes, bytes + n);
}

std::uint32_t CrcOfFloats(std::span<const float> values) {
  return Crc32(std::as_bytes(values));
}

// Parses the CRC footer of `path` if one is present. Returns true and
// fills `crcs` when the file carries a (well-formed) footer; false for
// legacy footer-less files. Throws on a mangled footer.
bool ReadCrcFooter(const std::filesystem::path& path,
                   std::map<std::string, std::uint32_t>* crcs) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXACLIM_CHECK(in.good(), "cannot open checkpoint " << path);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  if (file_size < kCrcTailBytes) return false;

  char tail_magic[4] = {};
  std::uint64_t body_size = 0;
  in.seekg(static_cast<std::streamoff>(file_size - kCrcTailBytes));
  in.read(reinterpret_cast<char*>(&body_size), sizeof(body_size));
  in.read(tail_magic, sizeof(tail_magic));
  if (std::memcmp(tail_magic, kCrcMagic, 4) != 0) return false;  // legacy

  EXACLIM_CHECK(body_size + kCrcTailBytes <= file_size,
                "checkpoint " << path << " has truncated CRC footer");
  std::vector<char> body(static_cast<std::size_t>(body_size));
  in.seekg(
      static_cast<std::streamoff>(file_size - kCrcTailBytes - body_size));
  in.read(body.data(), static_cast<std::streamsize>(body.size()));
  EXACLIM_CHECK(in.good(), "cannot read CRC footer of " << path);

  std::size_t pos = 0;
  const auto take = [&](void* dst, std::size_t n) {
    EXACLIM_CHECK(pos + n <= body.size(),
                  "checkpoint " << path << " has truncated CRC footer");
    std::memcpy(dst, body.data() + pos, n);
    pos += n;
  };
  char body_magic[4] = {};
  take(body_magic, 4);
  EXACLIM_CHECK(std::memcmp(body_magic, kCrcMagic, 4) == 0,
                "checkpoint " << path << " has corrupt CRC footer");
  std::uint32_t count = 0;
  take(&count, sizeof(count));
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t name_len = 0;
    take(&name_len, sizeof(name_len));
    std::string name(name_len, '\0');
    take(name.data(), name_len);
    std::uint32_t crc = 0;
    take(&crc, sizeof(crc));
    (*crcs)[std::move(name)] = crc;
  }
  return true;
}

}  // namespace

std::int64_t SaveCheckpoint(const std::filesystem::path& path,
                            const std::vector<Param*>& params,
                            const std::map<std::string, double>& meta,
                            const std::vector<Layer::StateTensor>& state) {
  const std::filesystem::path tmp = path.string() + ".tmp";

  std::vector<std::pair<std::string, std::uint32_t>> crcs;
  {
    NcfWriter writer(tmp);
    for (const Param* p : params) {
      writer.AddFloat(p->name, p->value.Data());
      crcs.emplace_back(p->name, CrcOfFloats(p->value.Data()));
    }
    for (const auto& [key, value] : meta) {
      const float v = static_cast<float>(value);
      const std::string name = kMetaPrefix + key;
      writer.AddFloat(name, std::span<const float>(&v, 1));
      crcs.emplace_back(name, CrcOfFloats(std::span<const float>(&v, 1)));
    }
    for (const auto& s : state) {
      const std::string name = kStatePrefix + s.name;
      writer.AddFloat(name, s.tensor->Data());
      crcs.emplace_back(name, CrcOfFloats(s.tensor->Data()));
    }
    writer.Finish();
  }

  // Footer body, then self-locating tail.
  std::vector<std::uint8_t> body;
  AppendScalar(&body, kCrcMagic, 4);
  const auto count = static_cast<std::uint32_t>(crcs.size());
  AppendScalar(&body, &count, sizeof(count));
  for (const auto& [name, crc] : crcs) {
    const auto name_len = static_cast<std::uint32_t>(name.size());
    AppendScalar(&body, &name_len, sizeof(name_len));
    AppendScalar(&body, name.data(), name.size());
    AppendScalar(&body, &crc, sizeof(crc));
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::app);
    EXACLIM_CHECK(out.good(), "cannot append CRC footer to " << tmp);
    out.write(reinterpret_cast<const char*>(body.data()),
              static_cast<std::streamsize>(body.size()));
    const auto body_size = static_cast<std::uint64_t>(body.size());
    out.write(reinterpret_cast<const char*>(&body_size), sizeof(body_size));
    out.write(kCrcMagic, 4);
    EXACLIM_CHECK(out.good(), "short write of CRC footer to " << tmp);
  }

  // Crash-mid-write fault point: tear the temp file and abort before the
  // rename — the previous checkpoint at `path` must survive untouched.
  if (FaultInjector::Global().ShouldInject("checkpoint.write")) {
    const auto full = std::filesystem::file_size(tmp);
    std::filesystem::resize_file(tmp, full / 2);
    FaultCounterBump("fault.checkpoint.write_failures");
    throw Error("injected fault: checkpoint.write of " + path.string() +
                " torn mid-write");
  }

  const auto bytes =
      static_cast<std::int64_t>(std::filesystem::file_size(tmp));
  std::filesystem::rename(tmp, path);  // atomic publish
  if (auto* c = obs::CounterOrNull("checkpoint.saved")) c->Add(1);
  return bytes;
}

void LoadCheckpoint(const std::filesystem::path& path,
                    const std::vector<Param*>& params,
                    std::map<std::string, double>* meta,
                    const std::vector<Layer::StateTensor>& state) {
  std::map<std::string, std::uint32_t> crcs;
  const bool verified = ReadCrcFooter(path, &crcs);

  NcfReader reader(path);
  const auto check_crc = [&](const std::string& name,
                             std::span<const float> values) {
    if (!verified) return;
    const auto it = crcs.find(name);
    EXACLIM_CHECK(it != crcs.end(), "checkpoint " << path << " dataset "
                                                  << name
                                                  << " missing from CRC "
                                                     "footer");
    EXACLIM_CHECK(CrcOfFloats(values) == it->second,
                  "checkpoint " << path << " dataset " << name
                                << " failed CRC verification (corrupt?)");
  };

  for (Param* p : params) {
    EXACLIM_CHECK(reader.Has(p->name),
                  "checkpoint " << path << " missing parameter " << p->name);
    const auto values = reader.ReadFloat(p->name);
    EXACLIM_CHECK(static_cast<std::int64_t>(values.size()) ==
                      p->value.NumElements(),
                  "checkpoint size mismatch for " << p->name << ": file has "
                                                  << values.size());
    check_crc(p->name, values);
    std::copy(values.begin(), values.end(), p->value.Data().begin());
  }
  for (const auto& s : state) {
    const std::string name = kStatePrefix + s.name;
    // Absent dataset: a checkpoint from before state capture existed —
    // leave the tensor as constructed rather than failing the resume.
    if (!reader.Has(name)) continue;
    const auto values = reader.ReadFloat(name);
    EXACLIM_CHECK(static_cast<std::int64_t>(values.size()) ==
                      s.tensor->NumElements(),
                  "checkpoint size mismatch for state " << s.name
                                                        << ": file has "
                                                        << values.size());
    check_crc(name, values);
    std::copy(values.begin(), values.end(), s.tensor->Data().begin());
  }
  if (meta != nullptr) {
    const std::size_t prefix_len = std::string(kMetaPrefix).size();
    for (const std::string& name : reader.Names()) {
      if (name.rfind(kMetaPrefix, 0) != 0) continue;
      const auto values = reader.ReadFloat(name);
      EXACLIM_CHECK(values.size() == 1,
                    "checkpoint meta " << name << " must be a scalar");
      check_crc(name, values);
      (*meta)[name.substr(prefix_len)] = static_cast<double>(values[0]);
    }
  }
}

}  // namespace exaclim
