#pragma once

#include <filesystem>

#include "nn/layer.hpp"

namespace exaclim {

/// Model checkpointing to NCF container files: one float dataset per
/// parameter, keyed by the parameter's name. The multi-hour Summit runs
/// depended on checkpoint/restart; here it also lets the examples hand a
/// trained model between processes.

/// Writes every Param's value (not gradients). Returns bytes written.
std::int64_t SaveCheckpoint(const std::filesystem::path& path,
                            const std::vector<Param*>& params);

/// Loads values into the given params; every param must be present in
/// the file with a matching element count (name-keyed, so architectures
/// must match). Throws on any mismatch.
void LoadCheckpoint(const std::filesystem::path& path,
                    const std::vector<Param*>& params);

}  // namespace exaclim
