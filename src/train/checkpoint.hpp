#pragma once

#include <filesystem>
#include <map>
#include <string>

#include "nn/layer.hpp"

namespace exaclim {

/// Model checkpointing to NCF container files: one float dataset per
/// parameter, keyed by the parameter's name. The multi-hour Summit runs
/// depended on checkpoint/restart; here it also lets the examples hand a
/// trained model between processes.
///
/// Fault tolerance (DESIGN §8):
///  - writes are atomic: the file is assembled at `path` + ".tmp" and
///    renamed into place, so a crash mid-write can never corrupt the
///    last good checkpoint;
///  - every dataset's bytes are covered by a CRC32 footer appended after
///    the NCF payload; LoadCheckpoint verifies it and throws a
///    recoverable exaclim::Error on any mismatch (bit-flip, truncation),
///    letting the caller fall back to an older checkpoint;
///  - files written before the footer existed (a bare NCF container)
///    still load — verification is skipped when no footer is present.
///
/// Scalar run metadata (e.g. the epoch index) rides along as float[1]
/// datasets named "__meta__<key>", checksummed like everything else.
/// Non-trainable layer state (batch-norm running statistics, via
/// Layer::StateTensors) rides along as "__state__<name>" datasets, so a
/// resumed run reproduces validation metrics bit-exactly, not just the
/// training trajectory.

/// Writes every Param's value (not gradients) plus `meta` and `state`,
/// atomically, with a CRC32 footer. Returns bytes written. The
/// "checkpoint.write" fault site simulates a crash mid-write: the temp
/// file is torn and an Error thrown before the rename, preserving the
/// previous checkpoint.
std::int64_t SaveCheckpoint(const std::filesystem::path& path,
                            const std::vector<Param*>& params,
                            const std::map<std::string, double>& meta = {},
                            const std::vector<Layer::StateTensor>& state = {});

/// Loads values into the given params; every param must be present in
/// the file with a matching element count (name-keyed, so architectures
/// must match). Verifies the CRC32 footer when present. Throws
/// exaclim::Error on any mismatch or corruption. When `meta` is non-null
/// it receives every "__meta__<key>" entry in the file. State tensors
/// load from their "__state__<name>" datasets; entries absent from the
/// file (a checkpoint written before state was captured) are left
/// untouched, so legacy checkpoints still load.
void LoadCheckpoint(const std::filesystem::path& path,
                    const std::vector<Param*>& params,
                    std::map<std::string, double>* meta = nullptr,
                    const std::vector<Layer::StateTensor>& state = {});

}  // namespace exaclim
