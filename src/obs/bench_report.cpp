#include "obs/bench_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "stats/stats.hpp"

namespace exaclim::obs {

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::AddSeries(std::string_view metric,
                            std::span<const double> values) {
  Entry entry;
  entry.metric = metric;
  entry.count = static_cast<std::int64_t>(values.size());
  if (!values.empty()) {
    const SeriesSummary s = Summarize(values);
    entry.median = s.median;
    entry.lo = s.lo;
    entry.hi = s.hi;
  }
  entries_.push_back(std::move(entry));
}

void BenchReport::AddScalar(std::string_view metric, double value) {
  Entry entry;
  entry.metric = metric;
  entry.count = 1;
  entry.median = entry.lo = entry.hi = value;
  entries_.push_back(std::move(entry));
}

std::string BenchReport::ToJson() const {
  std::string out =
      "{\"bench\":\"" + name_ + "\",\"schema\":\"exaclim-bench-v1\",";
  out += "\"metrics\":{";
  char buf[160];
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (i > 0) out += ",";
    std::snprintf(buf, sizeof(buf),
                  "\n  \"%s\":{\"count\":%lld,\"median\":%.9g,\"lo\":%.9g,"
                  "\"hi\":%.9g}",
                  e.metric.c_str(), static_cast<long long>(e.count),
                  e.median, e.lo, e.hi);
    out += buf;
  }
  out += "\n}}\n";
  return out;
}

std::filesystem::path BenchReport::WriteJsonFile() const {
  std::filesystem::path dir = ".";
  if (const char* env = std::getenv("EXACLIM_BENCH_DIR");
      env != nullptr && *env != '\0') {
    dir = env;
  }
  const std::filesystem::path path = dir / ("BENCH_" + name_ + ".json");
  std::ofstream out(path, std::ios::binary);
  if (!out) return {};
  const std::string json = ToJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  return out ? path : std::filesystem::path{};
}

}  // namespace exaclim::obs
