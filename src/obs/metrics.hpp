#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.hpp"

namespace exaclim::obs {

/// Monotonic event count (bytes exchanged, batches produced, skipped
/// steps). Lock-free; safe to bump from any thread, including under
/// other locks.
class Counter {
 public:
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, loss scale).
/// Lock-free like Counter.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution summary following the Sec VI reporting convention:
/// median with the central-68% interval from the 0.16/0.84 percentiles
/// (computed through stats::Percentile, pinned by tests).
struct HistogramSummary {
  std::int64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double p16 = 0.0;
  double p84 = 0.0;
};

/// Sample-retaining histogram: Record appends, Summary computes exact
/// percentiles over everything recorded so far. Intended for per-step /
/// per-batch timings (thousands of samples, not millions).
class Histogram {
 public:
  void Record(double value) EXACLIM_EXCLUDES(mutex_);
  HistogramSummary Summary() const EXACLIM_EXCLUDES(mutex_);
  std::vector<double> Samples() const EXACLIM_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::vector<double> samples_ EXACLIM_GUARDED_BY(mutex_);
};

/// Thread-safe named-metric registry. Get* registers the metric on first
/// use and returns a stable pointer — never invalidated while the
/// registry lives — so hot paths can cache the handle and skip the name
/// lookup entirely.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name) EXACLIM_EXCLUDES(mutex_);
  Gauge* GetGauge(std::string_view name) EXACLIM_EXCLUDES(mutex_);
  Histogram* GetHistogram(std::string_view name) EXACLIM_EXCLUDES(mutex_);

  /// Compact human-readable table, one line per metric, sorted by name
  /// within each kind (the "stdout report").
  std::string Report() const EXACLIM_EXCLUDES(mutex_);

  /// Structured form of Report(): one EXACLIM_LOG_KV line per metric at
  /// kInfo, machine-greppable (`metric=<name> ... median=<v>`).
  void LogReport() const EXACLIM_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  // std::less<> enables string_view lookups without allocating.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>>
      counters_ EXACLIM_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>>
      gauges_ EXACLIM_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_ EXACLIM_GUARDED_BY(mutex_);
};

}  // namespace exaclim::obs
