#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>

namespace exaclim::obs {

namespace {

std::atomic<std::uint64_t> g_next_recorder_id{1};

// Per-thread cache of the buffer registered with a specific recorder.
// Keyed by the recorder's process-unique id, so a recorder destroyed and
// another constructed at the same address cannot alias.
struct BufferCache {
  std::uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
thread_local BufferCache t_buffer_cache;

void AppendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

TraceRecorder::TraceRecorder()
    : id_(g_next_recorder_id.fetch_add(1)), epoch_(Clock::now()) {}

double TraceRecorder::NowMicros() const {
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer* TraceRecorder::LocalBuffer() {
  if (t_buffer_cache.recorder_id == id_) {
    return static_cast<ThreadBuffer*>(t_buffer_cache.buffer);
  }
  auto owned = std::make_unique<ThreadBuffer>();
  ThreadBuffer* buffer = owned.get();
  {
    MutexLock lock(mutex_);
    buffer->tid = static_cast<int>(buffers_.size());
    buffers_.push_back(std::move(owned));
  }
  t_buffer_cache = {id_, buffer};
  return buffer;
}

void TraceRecorder::Append(TraceEvent event) {
  ThreadBuffer* buffer = LocalBuffer();
  event.tid = buffer->tid;
  MutexLock lock(buffer->mutex);
  buffer->events.push_back(std::move(event));
}

void TraceRecorder::RecordSpan(std::string_view name, std::string_view cat,
                               Clock::time_point start,
                               Clock::time_point end) {
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ph = 'X';
  event.ts_us =
      std::chrono::duration<double, std::micro>(start - epoch_).count();
  event.dur_us = std::chrono::duration<double, std::micro>(end - start).count();
  Append(std::move(event));
}

void TraceRecorder::RecordCounter(std::string_view name, double value) {
  TraceEvent event;
  event.name = name;
  event.ph = 'C';
  event.ts_us = NowMicros();
  event.value = value;
  Append(std::move(event));
}

void TraceRecorder::RecordInstant(std::string_view name,
                                  std::string_view cat) {
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ph = 'i';
  event.ts_us = NowMicros();
  Append(std::move(event));
}

void TraceRecorder::RecordSpanAt(std::string_view name, std::string_view cat,
                                 double ts_us, double dur_us, int tid) {
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ph = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  // Bypass the thread-lane assignment: simulated lanes are explicit.
  ThreadBuffer* buffer = LocalBuffer();
  event.tid = tid;
  MutexLock lock(buffer->mutex);
  buffer->events.push_back(std::move(event));
}

void TraceRecorder::RecordCounterAt(std::string_view name, double value,
                                    double ts_us, int tid) {
  TraceEvent event;
  event.name = name;
  event.ph = 'C';
  event.ts_us = ts_us;
  event.value = value;
  ThreadBuffer* buffer = LocalBuffer();
  event.tid = tid;
  MutexLock lock(buffer->mutex);
  buffer->events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::vector<ThreadBuffer*> buffers;
  {
    MutexLock lock(mutex_);
    buffers.reserve(buffers_.size());
    for (const auto& b : buffers_) buffers.push_back(b.get());
  }
  std::vector<TraceEvent> events;
  for (ThreadBuffer* buffer : buffers) {
    MutexLock lock(buffer->mutex);
    events.insert(events.end(), buffer->events.begin(),
                  buffer->events.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return events;
}

std::string TraceRecorder::ToJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\":[";
  char buf[96];
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(out, e.name);
    out += "\",\"cat\":\"";
    AppendEscaped(out, e.cat.empty() ? std::string_view("exaclim")
                                     : std::string_view(e.cat));
    out += "\",\"ph\":\"";
    out += e.ph;
    std::snprintf(buf, sizeof(buf), "\",\"pid\":1,\"tid\":%d,\"ts\":%.3f",
                  e.tid, e.ts_us);
    out += buf;
    if (e.ph == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", e.dur_us);
      out += buf;
    }
    if (e.ph == 'C') {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%.6g}", e.value);
      out += buf;
    } else {
      out += ",\"args\":{}";
    }
    if (e.ph == 'i') out += ",\"s\":\"t\"";
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool TraceRecorder::WriteJsonFile(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::string json = ToJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(out);
}

}  // namespace exaclim::obs
