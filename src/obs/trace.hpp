#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.hpp"

namespace exaclim::obs {

/// One entry in the Chrome trace_event format (the JSON loaded by
/// chrome://tracing / Perfetto). Only the event kinds the repo needs:
///   'X' complete span (ts + dur), 'C' counter sample, 'i' instant.
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';
  double ts_us = 0.0;   // microseconds since the recorder's epoch
  double dur_us = 0.0;  // 'X' only
  int tid = 0;
  double value = 0.0;   // 'C' only
};

/// Timestamped event collector with per-thread buffers: each recording
/// thread registers its own buffer (owned by the recorder) on first use,
/// so concurrent spans never contend on a global lock; Snapshot/ToJson
/// merge and time-sort everything recorded so far.
///
/// Real threads get sequential tids in registration order. The *At
/// variants take explicit timestamps and an explicit tid — that is how
/// netsim exports simulated-time spans into the same trace, so a real
/// run and a simulation are inspected with one tool (use tids >= kSimTid
/// to keep simulated lanes visually separate).
class TraceRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  /// First tid reserved for simulated-time lanes.
  static constexpr int kSimTid = 9000;

  TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since this recorder was constructed.
  double NowMicros() const;

  /// Complete span on the calling thread's lane.
  void RecordSpan(std::string_view name, std::string_view cat,
                  Clock::time_point start, Clock::time_point end);
  /// Counter sample (rendered as a stacked area track) at "now".
  void RecordCounter(std::string_view name, double value);
  /// Instant marker at "now" on the calling thread's lane.
  void RecordInstant(std::string_view name, std::string_view cat);

  /// Explicit-timestamp variants for simulated time (ts in microseconds
  /// of simulated time, on an explicit lane).
  void RecordSpanAt(std::string_view name, std::string_view cat,
                    double ts_us, double dur_us, int tid);
  void RecordCounterAt(std::string_view name, double value, double ts_us,
                       int tid);

  /// All events recorded so far, time-sorted.
  std::vector<TraceEvent> Snapshot() const EXACLIM_EXCLUDES(mutex_);

  /// chrome://tracing-loadable JSON document.
  std::string ToJson() const;
  bool WriteJsonFile(const std::filesystem::path& path) const;

 private:
  struct ThreadBuffer {
    Mutex mutex;
    int tid = 0;
    std::vector<TraceEvent> events EXACLIM_GUARDED_BY(mutex);
  };

  ThreadBuffer* LocalBuffer() EXACLIM_EXCLUDES(mutex_);
  void Append(TraceEvent event);

  const std::uint64_t id_;  // process-unique; keys the thread-local cache
  const Clock::time_point epoch_;
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      EXACLIM_GUARDED_BY(mutex_);
};

}  // namespace exaclim::obs
