#include "obs/obs.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/alloc_tracker.hpp"
#include "common/fault.hpp"
#include "common/pool.hpp"
#include "common/logging.hpp"
#include "common/sync.hpp"

namespace exaclim::obs {

namespace {

// Owners live behind a mutex; the hot path reads only the raw atomics.
Mutex g_mutex;
std::unique_ptr<MetricsRegistry> g_metrics_owner
    EXACLIM_GUARDED_BY(g_mutex);
std::unique_ptr<TraceRecorder> g_tracer_owner EXACLIM_GUARDED_BY(g_mutex);
std::string g_trace_path EXACLIM_GUARDED_BY(g_mutex);

std::atomic<MetricsRegistry*> g_metrics{nullptr};
std::atomic<TraceRecorder*> g_tracer{nullptr};

// The common/fault.hpp metric bridge: common cannot link obs (obs sits
// above it), so fault-layer counters arrive through this function
// pointer. Null-safe when observability is disabled.
void FaultSinkToRegistry(std::string_view name, std::int64_t delta) {
  if (Counter* c = CounterOrNull(name)) c->Add(delta);
}

// Same bridge shape for the allocation tracker (common/alloc_tracker.hpp):
// census regions publish per-phase alloc.count.<site> / alloc.bytes.<site>
// gauges through this hook.
void AllocSinkToRegistry(const char* name, double value) {
  if (Gauge* g = GaugeOrNull(name)) g->Set(value);
}

// And for the memory pool (common/pool.hpp): PublishPoolMetrics pushes
// pool.live_bytes / pool.peak_live_bytes / pool.hit_count /
// pool.miss_count gauges through this hook once per training step.
void PoolSinkToRegistry(const char* name, double value) {
  if (Gauge* g = GaugeOrNull(name)) g->Set(value);
}

}  // namespace

void Enable(const Options& options) {
  MutexLock lock(g_mutex);
  if (options.metrics) {
    if (!g_metrics_owner) g_metrics_owner = std::make_unique<MetricsRegistry>();
    g_metrics.store(g_metrics_owner.get(), std::memory_order_release);
  }
  if (options.trace) {
    if (!g_tracer_owner) g_tracer_owner = std::make_unique<TraceRecorder>();
    g_tracer.store(g_tracer_owner.get(), std::memory_order_release);
  }
  // Leave installed across Disable(): the sinks are no-ops without a live
  // registry, and fault/alloc metrics must survive Enable/Disable cycles.
  SetFaultMetricSink(&FaultSinkToRegistry);
  SetAllocMetricSink(&AllocSinkToRegistry);
  SetPoolMetricSink(&PoolSinkToRegistry);
}

void Disable() {
  MutexLock lock(g_mutex);
  g_metrics.store(nullptr, std::memory_order_release);
  g_tracer.store(nullptr, std::memory_order_release);
  g_metrics_owner.reset();
  g_tracer_owner.reset();
  g_trace_path.clear();
}

bool Enabled() {
  return g_metrics.load(std::memory_order_acquire) != nullptr ||
         g_tracer.load(std::memory_order_acquire) != nullptr;
}

MetricsRegistry* Metrics() {
  return g_metrics.load(std::memory_order_acquire);
}

TraceRecorder* Tracer() { return g_tracer.load(std::memory_order_acquire); }

Counter* CounterOrNull(std::string_view name) {
  MetricsRegistry* registry = Metrics();
  return registry == nullptr ? nullptr : registry->GetCounter(name);
}

Gauge* GaugeOrNull(std::string_view name) {
  MetricsRegistry* registry = Metrics();
  return registry == nullptr ? nullptr : registry->GetGauge(name);
}

Histogram* HistogramOrNull(std::string_view name) {
  MetricsRegistry* registry = Metrics();
  return registry == nullptr ? nullptr : registry->GetHistogram(name);
}

// ----------------------------------------------------------- ScopedTimer --

ScopedTimer::ScopedTimer(const char* name, const char* cat,
                         double* out_seconds, Histogram* histogram)
    : name_(name),
      cat_(cat),
      out_seconds_(out_seconds),
      histogram_(histogram),
      tracer_(Tracer()) {
  if (tracer_ != nullptr || out_seconds_ != nullptr ||
      histogram_ != nullptr) {
    start_ = TraceRecorder::Clock::now();
  }
}

ScopedTimer::~ScopedTimer() {
  if (tracer_ == nullptr && out_seconds_ == nullptr &&
      histogram_ == nullptr) {
    return;
  }
  const auto end = TraceRecorder::Clock::now();
  const double seconds =
      std::chrono::duration<double>(end - start_).count();
  if (out_seconds_ != nullptr) *out_seconds_ = seconds;
  if (histogram_ != nullptr) histogram_->Record(seconds);
  if (tracer_ != nullptr) tracer_->RecordSpan(name_, cat_, start_, end);
}

// ----------------------------------------------------------- env helpers --

bool EnableFromEnv() {
  const char* path = std::getenv("EXACLIM_TRACE");
  if (path == nullptr || *path == '\0') return false;
  Enable();
  MutexLock lock(g_mutex);
  g_trace_path = path;
  return true;
}

void FinishFromEnv() {
  std::string path;
  {
    MutexLock lock(g_mutex);
    path = g_trace_path;
  }
  if (path.empty()) return;
  if (MetricsRegistry* registry = Metrics()) {
    const std::string report = registry->Report();
    if (!report.empty()) {
      std::printf("\n--- observability report ---\n%s", report.c_str());
    }
    registry->LogReport();
  }
  if (TraceRecorder* tracer = Tracer()) {
    if (tracer->WriteJsonFile(path)) {
      std::printf("trace written to %s (open in chrome://tracing)\n",
                  path.c_str());
    } else {
      EXACLIM_LOG(kWarn) << "failed to write trace file " << path;
    }
  }
  Disable();
}

}  // namespace exaclim::obs
