#pragma once

#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace exaclim::obs {

/// What Enable installs. Both default on; benches that only want the
/// registry can switch the trace off.
struct Options {
  bool metrics = true;
  bool trace = true;
};

/// Installs the process-global MetricsRegistry / TraceRecorder that the
/// instrumented hot paths publish into. Off by default: every call site
/// branches on a null handle, so a run that never calls Enable pays one
/// relaxed atomic load per instrumentation point and nothing else.
///
/// Enable/Disable are phase-boundary operations (start of main, between
/// test cases) — they must not race with threads actively recording.
void Enable(const Options& options = {});
void Disable();
bool Enabled();

/// Global handles; nullptr while disabled (the fast path).
MetricsRegistry* Metrics();
TraceRecorder* Tracer();

/// Metric lookups that collapse to nullptr while disabled, so call
/// sites read as `if (auto* c = CounterOrNull("x")) c->Add(n);`.
Counter* CounterOrNull(std::string_view name);
Gauge* GaugeOrNull(std::string_view name);
Histogram* HistogramOrNull(std::string_view name);

/// RAII wall-time span. On destruction it publishes the elapsed time to
/// every sink it was given: `out_seconds` (always, for callers that
/// surface timings through their API, e.g. StepResult), `histogram`
/// (when non-null), and the global trace (when enabled). When all three
/// sinks are absent the timer never reads the clock — the disabled-path
/// cost is two null checks.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, const char* cat = "exaclim",
                       double* out_seconds = nullptr,
                       Histogram* histogram = nullptr);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  const char* cat_;
  double* out_seconds_;
  Histogram* histogram_;
  TraceRecorder* tracer_;
  TraceRecorder::Clock::time_point start_;
};

/// Example/bench entry points: if EXACLIM_TRACE=<path> is set in the
/// environment, EnableFromEnv turns observability on and remembers the
/// path; FinishFromEnv writes the Chrome-trace JSON there, prints the
/// compact metrics report to stdout, and disables again. Both are no-ops
/// when the variable is unset, so instrumented examples behave exactly
/// as before unless asked to trace.
bool EnableFromEnv();
void FinishFromEnv();

}  // namespace exaclim::obs

#define EXACLIM_OBS_CONCAT_INNER(a, b) a##b
#define EXACLIM_OBS_CONCAT(a, b) EXACLIM_OBS_CONCAT_INNER(a, b)

/// Traces the enclosing scope as a named span; no-op while observability
/// is disabled.
#define EXACLIM_TRACE_SPAN(name, cat)                                   \
  ::exaclim::obs::ScopedTimer EXACLIM_OBS_CONCAT(exaclim_trace_span_,   \
                                                 __COUNTER__)(name, cat)
