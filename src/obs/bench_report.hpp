#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace exaclim::obs {

/// Machine-readable bench output: every bench that calls WriteJsonFile
/// drops a `BENCH_<name>.json` (schema "exaclim-bench-v1") next to its
/// stdout table, so the BENCH trajectory is scriptable. Each metric is a
/// {count, median, lo, hi} summary — series go through stats::Summarize
/// (median + 0.16/0.84 percentiles, the Sec VI convention); scalars are
/// stored with median == lo == hi.
///
/// tools/check_bench_json.py validates the schema; the `bench-smoke`
/// stage of tools/ci.sh runs one bench and checks its file.
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  void AddSeries(std::string_view metric, std::span<const double> values);
  void AddScalar(std::string_view metric, double value);

  std::string ToJson() const;

  /// Writes BENCH_<name>.json into $EXACLIM_BENCH_DIR (or the working
  /// directory) and returns the path; empty path on I/O failure.
  std::filesystem::path WriteJsonFile() const;

  const std::string& name() const { return name_; }

 private:
  struct Entry {
    std::string metric;
    std::int64_t count = 0;
    double median = 0.0;
    double lo = 0.0;
    double hi = 0.0;
  };

  std::string name_;
  std::vector<Entry> entries_;
};

}  // namespace exaclim::obs
