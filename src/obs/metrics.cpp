#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/logging.hpp"
#include "stats/stats.hpp"

namespace exaclim::obs {

// ------------------------------------------------------------ Histogram --

void Histogram::Record(double value) {
  MutexLock lock(mutex_);
  samples_.push_back(value);
}

std::vector<double> Histogram::Samples() const {
  MutexLock lock(mutex_);
  return samples_;
}

HistogramSummary Histogram::Summary() const {
  // Copy out under the lock, compute percentiles outside it.
  const std::vector<double> samples = Samples();
  HistogramSummary s;
  s.count = static_cast<std::int64_t>(samples.size());
  if (samples.empty()) return s;
  const auto [lo, hi] = std::minmax_element(samples.begin(), samples.end());
  s.min = *lo;
  s.max = *hi;
  s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  const SeriesSummary series = Summarize(samples);
  s.median = series.median;
  s.p16 = series.lo;
  s.p84 = series.hi;
  return s;
}

// ------------------------------------------------------ MetricsRegistry --

namespace {

template <typename Map>
auto* GetOrCreate(Map& map, std::string_view name) {
  const auto it = map.find(name);
  if (it != map.end()) return it->second.get();
  using Metric = typename Map::mapped_type::element_type;
  return map.emplace(std::string(name), std::make_unique<Metric>())
      .first->second.get();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mutex_);
  return GetOrCreate(counters_, name);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mutex_);
  return GetOrCreate(gauges_, name);
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(mutex_);
  return GetOrCreate(histograms_, name);
}

std::string MetricsRegistry::Report() const {
  // Snapshot the handle tables, then read the (internally synchronized)
  // metrics without holding the registry lock.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    MutexLock lock(mutex_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
  }

  std::string out;
  char line[256];
  for (const auto& [name, c] : counters) {
    std::snprintf(line, sizeof(line), "counter    %-32s %lld\n", name.c_str(),
                  static_cast<long long>(c->value()));
    out += line;
  }
  for (const auto& [name, g] : gauges) {
    std::snprintf(line, sizeof(line), "gauge      %-32s %.6g\n", name.c_str(),
                  g->value());
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    const HistogramSummary s = h->Summary();
    std::snprintf(line, sizeof(line),
                  "histogram  %-32s count %lld  median %.6g  p16 %.6g  "
                  "p84 %.6g  mean %.6g\n",
                  name.c_str(), static_cast<long long>(s.count), s.median,
                  s.p16, s.p84, s.mean);
    out += line;
  }
  return out;
}

void MetricsRegistry::LogReport() const {
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    MutexLock lock(mutex_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
  }
  for (const auto& [name, c] : counters) {
    EXACLIM_LOG_KV(kInfo, "metric", name, "type", "counter", "value",
                   c->value());
  }
  for (const auto& [name, g] : gauges) {
    EXACLIM_LOG_KV(kInfo, "metric", name, "type", "gauge", "value",
                   g->value());
  }
  for (const auto& [name, h] : histograms) {
    const HistogramSummary s = h->Summary();
    EXACLIM_LOG_KV(kInfo, "metric", name, "type", "histogram", "count",
                   s.count, "median", s.median, "p16", s.p16, "p84", s.p84,
                   "mean", s.mean);
  }
}

}  // namespace exaclim::obs
