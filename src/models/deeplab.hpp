#pragma once

#include <memory>
#include <vector>

#include "models/resnet.hpp"
#include "nn/combine.hpp"

namespace exaclim {

/// Atrous spatial pyramid pooling (Fig 1 middle): parallel 1×1 conv and
/// three 3×3 atrous convs at the configured dilations, concatenated and
/// fused by a 1×1 projection. Each branch is Conv-BN-ReLU.
class ASPP : public Layer {
 public:
  struct Options {
    std::int64_t in_c = 0;
    std::int64_t branch_c = 256;
    std::vector<std::int64_t> rates = {12, 24, 36};
  };

  ASPP(std::string name, const Options& opts, Rng& rng);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override;
  std::vector<Param*> Params() override;
  std::vector<StateTensor> StateTensors() override;
  void SetPrecisionAll(Precision p);

  std::int64_t out_channels() const { return opts_.branch_c; }

 private:
  Options opts_;
  std::vector<std::unique_ptr<Sequential>> branches_;
  std::unique_ptr<Sequential> project_;
};

/// Modified DeepLabv3+ (Fig 1): ResNet encoder with atrous stages
/// (output stride 8), ASPP, and — the paper's key change (Sec V-B5) — a
/// decoder that deconvolves back to *full* input resolution instead of
/// predicting at 1/4 resolution, for precise segmentation boundaries.
/// Setting Config::full_res_decoder=false reproduces the standard
/// quarter-resolution DeepLabv3+ head (logits are bilinearly upsampled
/// to full resolution), for the ablation benchmarks.
class DeepLabV3Plus : public Layer {
 public:
  struct Config {
    ResNetEncoder::Config encoder = ResNetEncoder::Config::ResNet50();
    std::int64_t num_classes = 3;
    std::int64_t aspp_channels = 256;
    std::vector<std::int64_t> aspp_rates = {12, 24, 36};
    std::int64_t decoder_skip_channels = 48;  // 1×1-reduced low-level skip
    /// Channel widths of the three deconv upsampling steps (stride 8 ->
    /// 1). Fig 1's decoder widths are ambiguous in the schematic; these
    /// taper (256/128/64) so that the DeepLab/Tiramisu operation-count
    /// ratio matches the paper's measured 3.44x (see EXPERIMENTS.md).
    std::vector<std::int64_t> decoder_channels = {256, 128, 64};
    bool full_res_decoder = true;

    /// Paper configuration (Fig 1) for 16-channel input.
    static Config Paper(std::int64_t in_channels = 16);
    /// Small variant for CPU training experiments.
    static Config Downscaled(std::int64_t in_channels = 8);
  };

  DeepLabV3Plus(const Config& config, Rng& rng);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override;
  std::vector<Param*> Params() override;
  std::vector<StateTensor> StateTensors() override;
  void SetPrecisionAll(Precision p);

  const Config& config() const { return config_; }
  std::int64_t ParameterCount();
  /// Input H/W must be divisible by this.
  std::int64_t SpatialDivisor() const;

 private:
  Config config_;
  std::unique_ptr<ResNetEncoder> encoder_;
  std::unique_ptr<ASPP> aspp_;
  std::unique_ptr<Sequential> skip_reduce_;  // 1×1 conv 48 on low-level
  std::unique_ptr<ConvTranspose2d> up1_;     // stride 8 -> 4 (to skip res)
  std::unique_ptr<Sequential> refine_;       // convs after skip concat
  std::vector<std::unique_ptr<Layer>> upsample_tail_;  // to full res
  std::unique_ptr<Conv2d> classifier_;
  std::int64_t skip_concat_channels_ = 0;
};

}  // namespace exaclim
