#include "models/tiramisu.hpp"

#include <algorithm>

namespace exaclim {

// --------------------------------------------------------- DenseBlock ---

DenseBlock::DenseBlock(std::string name, const Options& opts, Rng& rng)
    : Layer(std::move(name)), opts_(opts) {
  EXACLIM_CHECK(opts_.in_c > 0 && opts_.growth > 0 && opts_.layers > 0,
                this->name() << ": bad dense block options");
  feat_channels_.push_back(opts_.in_c);
  std::int64_t in_c = opts_.in_c;
  for (std::int64_t i = 0; i < opts_.layers; ++i) {
    auto unit = std::make_unique<Sequential>(this->name() + ".unit" +
                                             std::to_string(i));
    unit->Emplace<BatchNorm2d>(unit->name() + ".bn", in_c);
    unit->Emplace<ReLU>(unit->name() + ".relu");
    unit->Emplace<Conv2d>(
        unit->name() + ".conv",
        Conv2d::Options{.in_c = in_c, .out_c = opts_.growth,
                        .kernel = opts_.kernel, .bias = false},
        rng);
    if (opts_.dropout > 0.0f) {
      unit->Emplace<Dropout>(unit->name() + ".drop", opts_.dropout, rng);
    }
    units_.push_back(std::move(unit));
    feat_channels_.push_back(opts_.growth);
    in_c += opts_.growth;
  }
  const std::size_t n_feats = feat_channels_.size();
  feats_.resize(n_feats);
  concat_ptrs_.reserve(n_feats);
  feat_grads_.resize(n_feats);
  split_scratch_.resize(n_feats);
}

TensorShape DenseBlock::OutputShape(const TensorShape& input) const {
  EXACLIM_CHECK(input.rank() == 4 && input.c() == opts_.in_c,
                name() << ": bad input " << input.ToString());
  return TensorShape::NCHW(input.n(), out_channels(), input.h(), input.w());
}

Tensor DenseBlock::Forward(const Tensor& input, bool train) {
  (void)OutputShape(input.shape());
  input_shape_ = input.shape();
  feats_[0] = input;  // copy-assign reuses the pooled buffer after warmup
  for (std::size_t i = 0; i < units_.size(); ++i) {
    concat_ptrs_.clear();
    for (std::size_t f = 0; f <= i; ++f) concat_ptrs_.push_back(&feats_[f]);
    const Tensor concat_in = ConcatChannels(concat_ptrs_);
    feats_[i + 1] = units_[i]->Forward(concat_in, train);
  }
  concat_ptrs_.clear();
  for (std::size_t i = opts_.include_input ? 0 : 1; i < feats_.size(); ++i) {
    concat_ptrs_.push_back(&feats_[i]);
  }
  return ConcatChannels(concat_ptrs_);
}

Tensor DenseBlock::Backward(const Tensor& grad_output) {
  EXACLIM_CHECK(input_shape_.rank() == 4,
                name() << ": Backward before Forward");
  EXACLIM_CHECK(grad_output.shape() == OutputShape(input_shape_),
                name() << ": grad shape mismatch");

  // Split the output gradient into per-feature gradients. feat_grads_[0]
  // is the block input's gradient (zero if the input was not emitted).
  // All split destinations are member scratch whose pooled buffers are
  // recycled from the previous step.
  const std::span<const std::int64_t> all_channels(feat_channels_);
  const std::span<Tensor> all_grads(feat_grads_);
  if (opts_.include_input) {
    SplitChannelsInto(grad_output, all_channels, all_grads);
  } else {
    SplitChannelsInto(grad_output, all_channels.subspan(1),
                      all_grads.subspan(1));
    if (feat_grads_[0].shape() != input_shape_) {
      feat_grads_[0] = Tensor(input_shape_);  // zero-filled
    } else {
      feat_grads_[0].SetZero();
    }
  }

  // Walk units in reverse: each unit's input was concat(feats[0..i]), so
  // its input gradient scatters back onto those features.
  for (std::size_t i = units_.size(); i-- > 0;) {
    const Tensor unit_grad_in = units_[i]->Backward(feat_grads_[i + 1]);
    SplitChannelsInto(unit_grad_in, all_channels.first(i + 1),
                      std::span<Tensor>(split_scratch_).first(i + 1));
    for (std::size_t j = 0; j <= i; ++j) {
      feat_grads_[j] += split_scratch_[j];
    }
  }
  return std::move(feat_grads_[0]);
}

std::vector<Param*> DenseBlock::Params() {
  std::vector<Param*> params;
  for (auto& unit : units_) AppendParams(params, *unit);
  return params;
}

std::vector<Layer::StateTensor> DenseBlock::StateTensors() {
  std::vector<StateTensor> state;
  for (auto& unit : units_) AppendStateTensors(state, *unit);
  return state;
}

void DenseBlock::SetPrecisionAll(Precision p) {
  SetPrecision(p);
  for (auto& unit : units_) unit->SetPrecisionRecursive(p);
}

// ----------------------------------------------------- TransitionDown ---

TransitionDown::TransitionDown(std::string name, std::int64_t channels,
                               float dropout, Rng& rng)
    : Sequential(std::move(name)) {
  Emplace<BatchNorm2d>(this->name() + ".bn", channels);
  Emplace<ReLU>(this->name() + ".relu");
  Emplace<Conv2d>(this->name() + ".conv",
                  Conv2d::Options{.in_c = channels, .out_c = channels,
                                  .kernel = 1, .pad = 0, .bias = false},
                  rng);
  if (dropout > 0.0f) {
    Emplace<Dropout>(this->name() + ".drop", dropout, rng);
  }
  Emplace<MaxPool2d>(this->name() + ".pool", 2, 2, 0);
}

// ----------------------------------------------------------- Tiramisu ---

Tiramisu::Config Tiramisu::Config::Original() {
  Config c;
  c.growth_rate = 16;
  c.kernel = 3;
  c.down_layers = {2, 2, 2, 4};
  c.bottleneck_layers = 5;
  return c;
}

Tiramisu::Config Tiramisu::Config::Modified() {
  Config c;
  c.growth_rate = 32;
  c.kernel = 5;
  c.down_layers = {1, 1, 1, 2};
  c.bottleneck_layers = 3;
  return c;
}

Tiramisu::Config Tiramisu::Config::Downscaled(std::int64_t in_channels) {
  Config c;
  c.in_channels = in_channels;
  c.first_features = 8;
  c.growth_rate = 4;
  c.kernel = 3;
  c.down_layers = {1, 1};
  c.bottleneck_layers = 1;
  c.dropout = 0.0f;
  return c;
}

Tiramisu::Tiramisu(const Config& config, Rng& rng)
    : Layer("tiramisu"), config_(config) {
  EXACLIM_CHECK(!config_.down_layers.empty(), "tiramisu needs down blocks");
  first_conv_ = std::make_unique<Conv2d>(
      "tiramisu.first",
      Conv2d::Options{.in_c = config_.in_channels,
                      .out_c = config_.first_features,
                      .kernel = config_.kernel, .bias = false},
      rng);

  std::int64_t c = config_.first_features;
  for (std::size_t i = 0; i < config_.down_layers.size(); ++i) {
    const std::string base = "tiramisu.down" + std::to_string(i);
    down_blocks_.push_back(std::make_unique<DenseBlock>(
        base,
        DenseBlock::Options{.in_c = c, .growth = config_.growth_rate,
                            .layers = config_.down_layers[i],
                            .kernel = config_.kernel,
                            .dropout = config_.dropout,
                            .include_input = true},
        rng));
    c = down_blocks_.back()->out_channels();
    skip_channels_.push_back(c);
    downs_.push_back(
        std::make_unique<TransitionDown>(base + ".td", c, config_.dropout,
                                         rng));
  }

  bottleneck_ = std::make_unique<DenseBlock>(
      "tiramisu.bottleneck",
      DenseBlock::Options{.in_c = c, .growth = config_.growth_rate,
                          .layers = config_.bottleneck_layers,
                          .kernel = config_.kernel,
                          .dropout = config_.dropout,
                          .include_input = false},
      rng);
  std::int64_t new_feats = bottleneck_->out_channels();

  for (std::size_t i = config_.down_layers.size(); i-- > 0;) {
    const std::string base = "tiramisu.up" + std::to_string(i);
    ups_.push_back(std::make_unique<ConvTranspose2d>(
        base + ".tu",
        ConvTranspose2d::Options{.in_c = new_feats, .out_c = new_feats,
                                 .kernel = 3, .stride = 2, .pad = 1,
                                 .out_pad = 1, .bias = false},
        rng));
    up_blocks_.push_back(std::make_unique<DenseBlock>(
        base,
        DenseBlock::Options{.in_c = new_feats + skip_channels_[i],
                            .growth = config_.growth_rate,
                            .layers = config_.down_layers[i],
                            .kernel = config_.kernel,
                            .dropout = config_.dropout,
                            .include_input = false},
        rng));
    new_feats = up_blocks_.back()->out_channels();
  }

  final_conv_ = std::make_unique<Conv2d>(
      "tiramisu.final",
      Conv2d::Options{.in_c = new_feats, .out_c = config_.num_classes,
                      .kernel = 1, .pad = 0},
      rng);
}

std::int64_t Tiramisu::SpatialDivisor() const {
  return std::int64_t{1} << config_.down_layers.size();
}

TensorShape Tiramisu::OutputShape(const TensorShape& input) const {
  EXACLIM_CHECK(input.rank() == 4 && input.c() == config_.in_channels,
                "tiramisu: bad input " << input.ToString());
  EXACLIM_CHECK(input.h() % SpatialDivisor() == 0 &&
                    input.w() % SpatialDivisor() == 0,
                "tiramisu: H/W must be divisible by " << SpatialDivisor());
  return TensorShape::NCHW(input.n(), config_.num_classes, input.h(),
                           input.w());
}

Tensor Tiramisu::Forward(const Tensor& input, bool train) {
  (void)OutputShape(input.shape());
  skips_.clear();
  Tensor x = first_conv_->Forward(input, train);
  for (std::size_t i = 0; i < down_blocks_.size(); ++i) {
    x = down_blocks_[i]->Forward(x, train);
    skips_.push_back(x);
    x = downs_[i]->Forward(x, train);
  }
  x = bottleneck_->Forward(x, train);
  // ups_/up_blocks_ are stored deepest-first; skips_ shallow-first.
  for (std::size_t u = 0; u < ups_.size(); ++u) {
    const std::size_t skip_idx = ups_.size() - 1 - u;
    x = ups_[u]->Forward(x, train);
    x = ConcatChannels(x, skips_[skip_idx]);
    x = up_blocks_[u]->Forward(x, train);
  }
  return final_conv_->Forward(x, train);
}

Tensor Tiramisu::Backward(const Tensor& grad_output) {
  // Each child is announced grad-ready right after its Backward — the
  // overlap hooks of DESIGN §14 (no-ops without a listener installed).
  Tensor g = final_conv_->Backward(grad_output);
  NotifyGradsReady(*final_conv_);
  skip_grads_.resize(skips_.size());  // capacity-stable after warmup
  for (std::size_t u = up_blocks_.size(); u-- > 0;) {
    const std::size_t skip_idx = ups_.size() - 1 - u;
    g = up_blocks_[u]->Backward(g);
    NotifyGradsReady(*up_blocks_[u]);
    const std::array<std::int64_t, 2> channels{
        g.shape().c() - skip_channels_[skip_idx], skip_channels_[skip_idx]};
    SplitChannelsInto(g, channels, up_split_);
    skip_grads_[skip_idx] = std::move(up_split_[1]);
    g = ups_[u]->Backward(up_split_[0]);
    NotifyGradsReady(*ups_[u]);
  }
  g = bottleneck_->Backward(g);
  NotifyGradsReady(*bottleneck_);
  for (std::size_t i = down_blocks_.size(); i-- > 0;) {
    g = downs_[i]->Backward(g);
    NotifyGradsReady(*downs_[i]);
    g += skip_grads_[i];
    g = down_blocks_[i]->Backward(g);
    NotifyGradsReady(*down_blocks_[i]);
  }
  g = first_conv_->Backward(g);
  NotifyGradsReady(*first_conv_);
  return g;
}

std::vector<Param*> Tiramisu::Params() {
  std::vector<Param*> params;
  AppendParams(params, *first_conv_);
  for (auto& b : down_blocks_) AppendParams(params, *b);
  for (auto& d : downs_) AppendParams(params, *d);
  AppendParams(params, *bottleneck_);
  for (auto& u : ups_) AppendParams(params, *u);
  for (auto& b : up_blocks_) AppendParams(params, *b);
  AppendParams(params, *final_conv_);
  return params;
}

std::vector<Layer::StateTensor> Tiramisu::StateTensors() {
  std::vector<StateTensor> state;
  AppendStateTensors(state, *first_conv_);
  for (auto& b : down_blocks_) AppendStateTensors(state, *b);
  for (auto& d : downs_) AppendStateTensors(state, *d);
  AppendStateTensors(state, *bottleneck_);
  for (auto& u : ups_) AppendStateTensors(state, *u);
  for (auto& b : up_blocks_) AppendStateTensors(state, *b);
  AppendStateTensors(state, *final_conv_);
  return state;
}

void Tiramisu::SetPrecisionAll(Precision p) {
  SetPrecision(p);
  first_conv_->SetPrecision(p);
  for (auto& b : down_blocks_) b->SetPrecisionAll(p);
  for (auto& d : downs_) d->SetPrecisionRecursive(p);
  bottleneck_->SetPrecisionAll(p);
  for (auto& u : ups_) u->SetPrecision(p);
  for (auto& b : up_blocks_) b->SetPrecisionAll(p);
  final_conv_->SetPrecision(p);
}

std::int64_t Tiramisu::ParameterCount() {
  std::int64_t count = 0;
  for (Param* p : Params()) count += p->NumElements();
  return count;
}

}  // namespace exaclim
