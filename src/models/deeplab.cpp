#include "models/deeplab.hpp"

namespace exaclim {

// --------------------------------------------------------------- ASPP ---

ASPP::ASPP(std::string name, const Options& opts, Rng& rng)
    : Layer(std::move(name)), opts_(opts) {
  EXACLIM_CHECK(opts_.in_c > 0 && opts_.branch_c > 0, "bad ASPP options");
  auto make_branch = [&](const std::string& bname, std::int64_t kernel,
                         std::int64_t rate) {
    auto seq = std::make_unique<Sequential>(bname);
    seq->Emplace<Conv2d>(
        bname + ".conv",
        Conv2d::Options{.in_c = opts_.in_c, .out_c = opts_.branch_c,
                        .kernel = kernel, .pad = kernel == 1 ? 0 : rate,
                        .dilation = rate, .bias = false},
        rng);
    seq->Emplace<BatchNorm2d>(bname + ".bn", opts_.branch_c);
    seq->Emplace<ReLU>(bname + ".relu");
    return seq;
  };

  branches_.push_back(make_branch(this->name() + ".b1x1", 1, 1));
  for (std::size_t i = 0; i < opts_.rates.size(); ++i) {
    branches_.push_back(make_branch(
        this->name() + ".b3x3_d" + std::to_string(opts_.rates[i]), 3,
        opts_.rates[i]));
  }

  project_ = std::make_unique<Sequential>(this->name() + ".project");
  project_->Emplace<Conv2d>(
      this->name() + ".project.conv",
      Conv2d::Options{.in_c = static_cast<std::int64_t>(branches_.size()) *
                              opts_.branch_c,
                      .out_c = opts_.branch_c, .kernel = 1, .pad = 0,
                      .bias = false},
      rng);
  project_->Emplace<BatchNorm2d>(this->name() + ".project.bn",
                                 opts_.branch_c);
  project_->Emplace<ReLU>(this->name() + ".project.relu");
}

TensorShape ASPP::OutputShape(const TensorShape& input) const {
  EXACLIM_CHECK(input.rank() == 4 && input.c() == opts_.in_c,
                name() << ": bad input " << input.ToString());
  return TensorShape::NCHW(input.n(), opts_.branch_c, input.h(), input.w());
}

Tensor ASPP::Forward(const Tensor& input, bool train) {
  std::vector<Tensor> outs;
  outs.reserve(branches_.size());
  for (auto& branch : branches_) {
    outs.push_back(branch->Forward(input, train));
  }
  std::vector<const Tensor*> ptrs;
  for (const Tensor& t : outs) ptrs.push_back(&t);
  const Tensor cat = ConcatChannels(ptrs);
  return project_->Forward(cat, train);
}

Tensor ASPP::Backward(const Tensor& grad_output) {
  const Tensor g_cat = project_->Backward(grad_output);
  const std::vector<std::int64_t> channels(branches_.size(), opts_.branch_c);
  auto parts = SplitChannels(g_cat, channels);
  Tensor g_in;
  for (std::size_t i = 0; i < branches_.size(); ++i) {
    Tensor g = branches_[i]->Backward(parts[i]);
    if (i == 0) {
      g_in = std::move(g);
    } else {
      g_in += g;
    }
  }
  return g_in;
}

std::vector<Param*> ASPP::Params() {
  std::vector<Param*> params;
  for (auto& b : branches_) AppendParams(params, *b);
  AppendParams(params, *project_);
  return params;
}

std::vector<Layer::StateTensor> ASPP::StateTensors() {
  std::vector<StateTensor> state;
  for (auto& b : branches_) AppendStateTensors(state, *b);
  AppendStateTensors(state, *project_);
  return state;
}

void ASPP::SetPrecisionAll(Precision p) {
  SetPrecision(p);
  for (auto& b : branches_) b->SetPrecisionRecursive(p);
  project_->SetPrecisionRecursive(p);
}

// ------------------------------------------------------ DeepLabV3Plus ---

DeepLabV3Plus::Config DeepLabV3Plus::Config::Paper(std::int64_t in_channels) {
  Config c;
  c.encoder = ResNetEncoder::Config::ResNet50(in_channels);
  return c;
}

DeepLabV3Plus::Config DeepLabV3Plus::Config::Downscaled(
    std::int64_t in_channels) {
  Config c;
  c.encoder = ResNetEncoder::Config::Downscaled(in_channels);
  c.aspp_channels = 16;
  c.aspp_rates = {2, 4, 6};  // scaled to the smaller feature maps
  c.decoder_skip_channels = 8;
  c.decoder_channels = {16, 12, 8};
  return c;
}

DeepLabV3Plus::DeepLabV3Plus(const Config& config, Rng& rng)
    : Layer("deeplabv3plus"), config_(config) {
  EXACLIM_CHECK(config_.decoder_channels.size() == 3,
                "decoder needs exactly 3 upsample widths (stride 8 -> 1)");
  encoder_ = std::make_unique<ResNetEncoder>(config_.encoder, rng);
  EXACLIM_CHECK(encoder_->output_stride() == 8,
                "Fig 1 encoder must have output stride 8, got "
                    << encoder_->output_stride());

  aspp_ = std::make_unique<ASPP>(
      "aspp",
      ASPP::Options{.in_c = encoder_->out_channels(),
                    .branch_c = config_.aspp_channels,
                    .rates = config_.aspp_rates},
      rng);

  skip_reduce_ = std::make_unique<Sequential>("decoder.skip");
  skip_reduce_->Emplace<Conv2d>(
      "decoder.skip.conv",
      Conv2d::Options{.in_c = encoder_->low_level_channels(),
                      .out_c = config_.decoder_skip_channels, .kernel = 1,
                      .pad = 0, .bias = false},
      rng);
  skip_reduce_->Emplace<BatchNorm2d>("decoder.skip.bn",
                                     config_.decoder_skip_channels);
  skip_reduce_->Emplace<ReLU>("decoder.skip.relu");

  const std::int64_t d0 = config_.decoder_channels[0];
  up1_ = std::make_unique<ConvTranspose2d>(
      "decoder.up1",
      ConvTranspose2d::Options{.in_c = config_.aspp_channels, .out_c = d0,
                               .kernel = 3, .stride = 2, .pad = 1,
                               .out_pad = 1, .bias = false},
      rng);
  skip_concat_channels_ = d0 + config_.decoder_skip_channels;

  refine_ = std::make_unique<Sequential>("decoder.refine");
  refine_->Emplace<Conv2d>(
      "decoder.refine.conv1",
      Conv2d::Options{.in_c = skip_concat_channels_, .out_c = d0,
                      .bias = false},
      rng);
  refine_->Emplace<BatchNorm2d>("decoder.refine.bn1", d0);
  refine_->Emplace<ReLU>("decoder.refine.relu1");
  refine_->Emplace<Conv2d>(
      "decoder.refine.conv2",
      Conv2d::Options{.in_c = d0, .out_c = d0, .bias = false}, rng);
  refine_->Emplace<BatchNorm2d>("decoder.refine.bn2", d0);
  refine_->Emplace<ReLU>("decoder.refine.relu2");

  std::int64_t head_c = d0;
  if (config_.full_res_decoder) {
    // Fig 1 full-resolution tail: two more deconv×2 steps with a 3×3
    // refine conv after each, taking stride 4 back to stride 1.
    for (int step = 0; step < 2; ++step) {
      const std::int64_t out_c = config_.decoder_channels[step + 1];
      auto up = std::make_unique<Sequential>("decoder.up" +
                                             std::to_string(step + 2));
      up->Emplace<ConvTranspose2d>(
          up->name() + ".deconv",
          ConvTranspose2d::Options{.in_c = head_c, .out_c = out_c,
                                   .kernel = 3, .stride = 2, .pad = 1,
                                   .out_pad = 1, .bias = false},
          rng);
      up->Emplace<BatchNorm2d>(up->name() + ".bn", out_c);
      up->Emplace<ReLU>(up->name() + ".relu");
      up->Emplace<Conv2d>(
          up->name() + ".conv",
          Conv2d::Options{.in_c = out_c, .out_c = out_c, .bias = false},
          rng);
      up->Emplace<BatchNorm2d>(up->name() + ".bn2", out_c);
      up->Emplace<ReLU>(up->name() + ".relu2");
      upsample_tail_.push_back(std::move(up));
      head_c = out_c;
    }
  } else {
    // Standard DeepLabv3+: predict at 1/4 resolution, then bilinear ×4.
    upsample_tail_.push_back(
        std::make_unique<BilinearUpsample2d>("decoder.bilinear", 4));
  }

  classifier_ = std::make_unique<Conv2d>(
      "decoder.classifier",
      Conv2d::Options{.in_c = head_c, .out_c = config_.num_classes,
                      .kernel = 1, .pad = 0},
      rng);
}

std::int64_t DeepLabV3Plus::SpatialDivisor() const { return 8; }

TensorShape DeepLabV3Plus::OutputShape(const TensorShape& input) const {
  EXACLIM_CHECK(input.rank() == 4 &&
                    input.c() == config_.encoder.in_channels,
                "deeplab: bad input " << input.ToString());
  EXACLIM_CHECK(input.h() % SpatialDivisor() == 0 &&
                    input.w() % SpatialDivisor() == 0,
                "deeplab: H/W must be divisible by " << SpatialDivisor());
  return TensorShape::NCHW(input.n(), config_.num_classes, input.h(),
                           input.w());
}

Tensor DeepLabV3Plus::Forward(const Tensor& input, bool train) {
  (void)OutputShape(input.shape());
  Tensor x = encoder_->Forward(input, train);
  x = aspp_->Forward(x, train);
  x = up1_->Forward(x, train);

  const Tensor skip = skip_reduce_->Forward(encoder_->low_level(), train);
  x = ConcatChannels(x, skip);
  x = refine_->Forward(x, train);
  if (config_.full_res_decoder) {
    for (auto& up : upsample_tail_) x = up->Forward(x, train);
    return classifier_->Forward(x, train);
  }
  // Quarter-resolution head: classify, then bilinear upsample the logits.
  x = classifier_->Forward(x, train);
  return upsample_tail_[0]->Forward(x, train);
}

Tensor DeepLabV3Plus::Backward(const Tensor& grad_output) {
  // Each child is announced grad-ready right after its Backward — the
  // overlap hooks of DESIGN §14 (no-ops without a listener installed).
  // The encoder inherits the listener so it announces per-block instead
  // of as one giant tensor group.
  encoder_->SetGradReadyListener(grad_ready_listener());
  Tensor g;
  if (config_.full_res_decoder) {
    g = classifier_->Backward(grad_output);
    NotifyGradsReady(*classifier_);
    for (std::size_t i = upsample_tail_.size(); i-- > 0;) {
      g = upsample_tail_[i]->Backward(g);
      NotifyGradsReady(*upsample_tail_[i]);
    }
  } else {
    g = upsample_tail_[0]->Backward(grad_output);
    NotifyGradsReady(*upsample_tail_[0]);
    g = classifier_->Backward(g);
    NotifyGradsReady(*classifier_);
  }
  g = refine_->Backward(g);
  NotifyGradsReady(*refine_);
  const std::vector<std::int64_t> channels{
      config_.decoder_channels[0], config_.decoder_skip_channels};
  auto parts = SplitChannels(g, channels);
  encoder_->AddLowLevelGradient(skip_reduce_->Backward(parts[1]));
  NotifyGradsReady(*skip_reduce_);
  g = up1_->Backward(parts[0]);
  NotifyGradsReady(*up1_);
  g = aspp_->Backward(g);
  NotifyGradsReady(*aspp_);
  return encoder_->Backward(g);
}

std::vector<Param*> DeepLabV3Plus::Params() {
  std::vector<Param*> params;
  AppendParams(params, *encoder_);
  AppendParams(params, *aspp_);
  AppendParams(params, *skip_reduce_);
  AppendParams(params, *up1_);
  AppendParams(params, *refine_);
  for (auto& up : upsample_tail_) AppendParams(params, *up);
  AppendParams(params, *classifier_);
  return params;
}

std::vector<Layer::StateTensor> DeepLabV3Plus::StateTensors() {
  std::vector<StateTensor> state;
  AppendStateTensors(state, *encoder_);
  AppendStateTensors(state, *aspp_);
  AppendStateTensors(state, *skip_reduce_);
  AppendStateTensors(state, *up1_);
  AppendStateTensors(state, *refine_);
  for (auto& up : upsample_tail_) AppendStateTensors(state, *up);
  AppendStateTensors(state, *classifier_);
  return state;
}

void DeepLabV3Plus::SetPrecisionAll(Precision p) {
  SetPrecision(p);
  encoder_->SetPrecisionAll(p);
  aspp_->SetPrecisionAll(p);
  skip_reduce_->SetPrecisionRecursive(p);
  up1_->SetPrecision(p);
  refine_->SetPrecisionRecursive(p);
  for (auto& up : upsample_tail_) {
    if (auto* seq = dynamic_cast<Sequential*>(up.get())) {
      seq->SetPrecisionRecursive(p);
    } else {
      up->SetPrecision(p);
    }
  }
  classifier_->SetPrecision(p);
}

std::int64_t DeepLabV3Plus::ParameterCount() {
  std::int64_t count = 0;
  for (Param* p : Params()) count += p->NumElements();
  return count;
}

}  // namespace exaclim
