#pragma once

#include <array>
#include <memory>
#include <vector>

#include "nn/activation.hpp"
#include "nn/combine.hpp"
#include "nn/conv.hpp"
#include "nn/norm.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"

namespace exaclim {

/// One dense block of the Tiramisu (FC-DenseNet) architecture: `layers`
/// units of BN-ReLU-Conv(growth)-Dropout, where unit i consumes the
/// channel-concatenation of the block input and all previous unit outputs.
/// Where ResNet adds, Tiramisu concatenates (Sec III-A1).
class DenseBlock : public Layer {
 public:
  struct Options {
    std::int64_t in_c = 0;
    std::int64_t growth = 16;
    std::int64_t layers = 2;
    std::int64_t kernel = 3;
    float dropout = 0.0f;
    /// Down-path blocks concatenate their input into the output; up-path
    /// blocks emit only the newly produced features to bound growth.
    bool include_input = true;
  };

  DenseBlock(std::string name, const Options& opts, Rng& rng);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override;
  std::vector<Param*> Params() override;
  std::vector<StateTensor> StateTensors() override;
  void SetPrecisionAll(Precision p);

  std::int64_t out_channels() const {
    return (opts_.include_input ? opts_.in_c : 0) +
           opts_.layers * opts_.growth;
  }

 private:
  Options opts_;
  std::vector<std::unique_ptr<Sequential>> units_;
  std::vector<std::int64_t> feat_channels_;  // input + per-unit growth
  TensorShape input_shape_;

  // Per-step scratch, sized once in the constructor and reused every
  // Forward/Backward so the steady-state step performs no heap
  // allocation (DESIGN §12): the tensors recycle their pooled buffers
  // via SplitChannelsInto / copy-assign capacity reuse.
  std::vector<Tensor> feats_;               // input + per-unit outputs
  std::vector<const Tensor*> concat_ptrs_;  // ConcatChannels argument
  std::vector<Tensor> feat_grads_;          // per-feature gradients
  std::vector<Tensor> split_scratch_;       // unit input-grad split parts
};

/// Tiramisu transition down: BN-ReLU-1×1 conv-dropout-2×2 max pool.
class TransitionDown : public Sequential {
 public:
  TransitionDown(std::string name, std::int64_t channels, float dropout,
                 Rng& rng);
};

/// Tiramisu segmentation network (Sec III-A1, V-B5).
///
/// The architecture is fully parameterised so that both paper variants
/// (growth 16 / 3×3 kernels and the modified growth 32 / 5×5 with halved
/// block depths) and CPU-runnable downscaled versions share one
/// implementation. Structure: initial conv; down path of dense blocks
/// with transition-downs, keeping skip tensors; a bottleneck dense block;
/// an up path of transition-up deconvs, skip concatenation and dense
/// blocks; a final 1×1 classification conv at input resolution.
class Tiramisu : public Layer {
 public:
  struct Config {
    std::int64_t in_channels = 16;
    std::int64_t num_classes = 3;
    std::int64_t first_features = 48;
    std::int64_t growth_rate = 32;
    std::int64_t kernel = 5;
    std::vector<std::int64_t> down_layers = {1, 1, 1, 2};
    std::int64_t bottleneck_layers = 3;
    float dropout = 0.2f;

    /// Paper's original design: growth 16, 3×3 kernels, blocks 2,2,2,4,5.
    static Config Original();
    /// Paper's modified design (Sec V-B5): growth 32, 5×5, halved depth.
    static Config Modified();
    /// Small variant for CPU training experiments.
    static Config Downscaled(std::int64_t in_channels = 8);
  };

  Tiramisu(const Config& config, Rng& rng);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override;
  std::vector<Param*> Params() override;
  std::vector<StateTensor> StateTensors() override;

  /// Propagates precision to every sub-layer (FP16 emulation).
  void SetPrecisionAll(Precision p);

  const Config& config() const { return config_; }
  std::int64_t ParameterCount();
  /// Input H/W must be divisible by this (2^len(down_layers)).
  std::int64_t SpatialDivisor() const;

 private:
  Config config_;
  std::unique_ptr<Conv2d> first_conv_;
  std::vector<std::unique_ptr<DenseBlock>> down_blocks_;
  std::vector<std::unique_ptr<TransitionDown>> downs_;
  std::unique_ptr<DenseBlock> bottleneck_;
  std::vector<std::unique_ptr<ConvTranspose2d>> ups_;
  std::vector<std::unique_ptr<DenseBlock>> up_blocks_;
  std::unique_ptr<Conv2d> final_conv_;

  std::vector<std::int64_t> skip_channels_;
  std::vector<Tensor> skips_;  // saved during Forward for the up path

  // Per-step scratch (see DenseBlock): reused across Backward calls.
  std::vector<Tensor> skip_grads_;
  std::array<Tensor, 2> up_split_;  // [new-features grad, skip grad]
};

}  // namespace exaclim
