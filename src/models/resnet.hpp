#pragma once

#include <memory>
#include <vector>

#include "nn/activation.hpp"
#include "nn/conv.hpp"
#include "nn/norm.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"

namespace exaclim {

/// ResNet bottleneck block: 1×1 reduce, 3×3 (optionally atrous), 1×1
/// expand, plus identity or projection shortcut. The middle conv carries
/// the stride and dilation, matching the Fig 1 encoder where conv4/conv5
/// trade stride for dilation 2/4 to keep output stride 8.
class Bottleneck : public Layer {
 public:
  struct Options {
    std::int64_t in_c = 0;
    std::int64_t mid_c = 0;   // width of the 3×3 conv
    std::int64_t out_c = 0;   // expansion output (4× mid in ResNet-50)
    std::int64_t stride = 1;
    std::int64_t dilation = 1;
  };

  Bottleneck(std::string name, const Options& opts, Rng& rng);

  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  TensorShape OutputShape(const TensorShape& input) const override;
  std::vector<Param*> Params() override;
  std::vector<StateTensor> StateTensors() override;
  void SetPrecisionAll(Precision p);

 private:
  Options opts_;
  std::unique_ptr<Sequential> main_;       // 1×1 -> 3×3 -> 1×1 (+BNs/ReLUs)
  std::unique_ptr<Sequential> shortcut_;   // null = identity
  std::unique_ptr<ReLU> out_relu_;
  Tensor cached_input_;
};

/// ResNet-50-style encoder with configurable width and per-stage
/// stride/dilation, producing both the low-level feature map (after
/// stage 1, used by the DeepLabv3+ decoder skip) and the final high-level
/// features. With the Fig 1 settings the output stride is 8.
class ResNetEncoder : public Layer {
 public:
  struct Config {
    std::int64_t in_channels = 16;
    std::int64_t stem_features = 64;
    /// Bottleneck 3×3 widths per stage; outputs are 4× these.
    std::vector<std::int64_t> stage_widths = {64, 128, 256, 512};
    std::vector<std::int64_t> stage_blocks = {3, 4, 6, 3};
    std::vector<std::int64_t> stage_strides = {1, 2, 1, 1};
    std::vector<std::int64_t> stage_dilations = {1, 1, 2, 4};

    static Config ResNet50(std::int64_t in_channels = 16);
    static Config Downscaled(std::int64_t in_channels = 8);
  };

  ResNetEncoder(const Config& config, Rng& rng);

  /// Returns the final (high-level) feature map; the stage-1 low-level
  /// features are retrievable via low_level() after Forward.
  Tensor Forward(const Tensor& input, bool train) override;
  Tensor Backward(const Tensor& grad_output) override;
  /// Adds a gradient flowing into the low-level tap (from the decoder
  /// skip); must be called before Backward.
  void AddLowLevelGradient(Tensor grad);

  TensorShape OutputShape(const TensorShape& input) const override;
  TensorShape LowLevelShape(const TensorShape& input) const;
  std::vector<Param*> Params() override;
  std::vector<StateTensor> StateTensors() override;
  void SetPrecisionAll(Precision p);

  const Tensor& low_level() const { return low_level_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t low_level_channels() const { return low_level_channels_; }
  /// Total downscale factor of the final features (output stride).
  std::int64_t output_stride() const { return output_stride_; }

  const Config& config() const { return config_; }

 private:
  Config config_;
  std::unique_ptr<Sequential> stem_;
  std::vector<std::unique_ptr<Bottleneck>> blocks_;
  std::size_t low_level_block_end_ = 0;  // blocks_[0..end) form stage 1
  std::int64_t out_channels_ = 0;
  std::int64_t low_level_channels_ = 0;
  std::int64_t output_stride_ = 0;
  Tensor low_level_;
  Tensor low_level_grad_;
};

}  // namespace exaclim
