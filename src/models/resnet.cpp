#include "models/resnet.hpp"

namespace exaclim {

// --------------------------------------------------------- Bottleneck ---

Bottleneck::Bottleneck(std::string name, const Options& opts, Rng& rng)
    : Layer(std::move(name)), opts_(opts) {
  EXACLIM_CHECK(opts_.in_c > 0 && opts_.mid_c > 0 && opts_.out_c > 0,
                this->name() << ": bad bottleneck options");
  main_ = std::make_unique<Sequential>(this->name() + ".main");
  main_->Emplace<Conv2d>(
      this->name() + ".conv1",
      Conv2d::Options{.in_c = opts_.in_c, .out_c = opts_.mid_c, .kernel = 1,
                      .pad = 0, .bias = false},
      rng);
  main_->Emplace<BatchNorm2d>(this->name() + ".bn1", opts_.mid_c);
  main_->Emplace<ReLU>(this->name() + ".relu1");
  main_->Emplace<Conv2d>(
      this->name() + ".conv2",
      Conv2d::Options{.in_c = opts_.mid_c, .out_c = opts_.mid_c, .kernel = 3,
                      .stride = opts_.stride, .pad = opts_.dilation,
                      .dilation = opts_.dilation, .bias = false},
      rng);
  main_->Emplace<BatchNorm2d>(this->name() + ".bn2", opts_.mid_c);
  main_->Emplace<ReLU>(this->name() + ".relu2");
  main_->Emplace<Conv2d>(
      this->name() + ".conv3",
      Conv2d::Options{.in_c = opts_.mid_c, .out_c = opts_.out_c, .kernel = 1,
                      .pad = 0, .bias = false},
      rng);
  main_->Emplace<BatchNorm2d>(this->name() + ".bn3", opts_.out_c);

  if (opts_.in_c != opts_.out_c || opts_.stride != 1) {
    shortcut_ = std::make_unique<Sequential>(this->name() + ".shortcut");
    shortcut_->Emplace<Conv2d>(
        this->name() + ".proj",
        Conv2d::Options{.in_c = opts_.in_c, .out_c = opts_.out_c,
                        .kernel = 1, .stride = opts_.stride, .pad = 0,
                        .bias = false},
        rng);
    shortcut_->Emplace<BatchNorm2d>(this->name() + ".proj_bn", opts_.out_c);
  }
  out_relu_ = std::make_unique<ReLU>(this->name() + ".out_relu");
}

TensorShape Bottleneck::OutputShape(const TensorShape& input) const {
  return main_->OutputShape(input);
}

Tensor Bottleneck::Forward(const Tensor& input, bool train) {
  cached_input_ = input;
  Tensor y = main_->Forward(input, train);
  if (shortcut_) {
    y += shortcut_->Forward(input, train);
  } else {
    y += input;
  }
  Tensor out = out_relu_->Forward(y, train);
  return out;
}

Tensor Bottleneck::Backward(const Tensor& grad_output) {
  const Tensor g_sum = out_relu_->Backward(grad_output);
  Tensor g_in = main_->Backward(g_sum);
  if (shortcut_) {
    g_in += shortcut_->Backward(g_sum);
  } else {
    g_in += g_sum;
  }
  return g_in;
}

std::vector<Param*> Bottleneck::Params() {
  std::vector<Param*> params;
  AppendParams(params, *main_);
  if (shortcut_) AppendParams(params, *shortcut_);
  return params;
}

std::vector<Layer::StateTensor> Bottleneck::StateTensors() {
  std::vector<StateTensor> state;
  AppendStateTensors(state, *main_);
  if (shortcut_) AppendStateTensors(state, *shortcut_);
  return state;
}

void Bottleneck::SetPrecisionAll(Precision p) {
  SetPrecision(p);
  main_->SetPrecisionRecursive(p);
  if (shortcut_) shortcut_->SetPrecisionRecursive(p);
  out_relu_->SetPrecision(p);
}

// ------------------------------------------------------ ResNetEncoder ---

ResNetEncoder::Config ResNetEncoder::Config::ResNet50(
    std::int64_t in_channels) {
  Config c;
  c.in_channels = in_channels;
  return c;
}

ResNetEncoder::Config ResNetEncoder::Config::Downscaled(
    std::int64_t in_channels) {
  Config c;
  c.in_channels = in_channels;
  c.stem_features = 8;
  c.stage_widths = {8, 16, 32, 64};
  c.stage_blocks = {1, 1, 1, 1};
  return c;
}

ResNetEncoder::ResNetEncoder(const Config& config, Rng& rng)
    : Layer("encoder"), config_(config) {
  const std::size_t n_stages = config_.stage_widths.size();
  EXACLIM_CHECK(config_.stage_blocks.size() == n_stages &&
                    config_.stage_strides.size() == n_stages &&
                    config_.stage_dilations.size() == n_stages,
                "encoder: inconsistent stage config");

  stem_ = std::make_unique<Sequential>("encoder.stem");
  stem_->Emplace<Conv2d>(
      "encoder.stem.conv",
      Conv2d::Options{.in_c = config_.in_channels,
                      .out_c = config_.stem_features, .kernel = 7,
                      .stride = 2, .bias = false},
      rng);
  stem_->Emplace<BatchNorm2d>("encoder.stem.bn", config_.stem_features);
  stem_->Emplace<ReLU>("encoder.stem.relu");
  stem_->Emplace<MaxPool2d>("encoder.stem.pool", 3, 2);

  std::int64_t c = config_.stem_features;
  output_stride_ = 4;  // stem conv /2 + pool /2
  for (std::size_t s = 0; s < n_stages; ++s) {
    const std::int64_t width = config_.stage_widths[s];
    const std::int64_t out_c = width * 4;
    for (std::int64_t b = 0; b < config_.stage_blocks[s]; ++b) {
      const std::int64_t stride =
          (b == 0) ? config_.stage_strides[s] : 1;
      blocks_.push_back(std::make_unique<Bottleneck>(
          "encoder.stage" + std::to_string(s + 1) + ".block" +
              std::to_string(b),
          Bottleneck::Options{.in_c = c, .mid_c = width, .out_c = out_c,
                              .stride = stride,
                              .dilation = config_.stage_dilations[s]},
          rng));
      c = out_c;
    }
    output_stride_ *= config_.stage_strides[s];
    if (s == 0) {
      low_level_block_end_ = blocks_.size();
      low_level_channels_ = c;
    }
  }
  out_channels_ = c;
}

TensorShape ResNetEncoder::OutputShape(const TensorShape& input) const {
  TensorShape s = stem_->OutputShape(input);
  for (const auto& b : blocks_) s = b->OutputShape(s);
  return s;
}

TensorShape ResNetEncoder::LowLevelShape(const TensorShape& input) const {
  TensorShape s = stem_->OutputShape(input);
  for (std::size_t i = 0; i < low_level_block_end_; ++i) {
    s = blocks_[i]->OutputShape(s);
  }
  return s;
}

Tensor ResNetEncoder::Forward(const Tensor& input, bool train) {
  Tensor x = stem_->Forward(input, train);
  low_level_grad_ = Tensor();
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    x = blocks_[i]->Forward(x, train);
    if (i + 1 == low_level_block_end_) low_level_ = x;
  }
  return x;
}

void ResNetEncoder::AddLowLevelGradient(Tensor grad) {
  low_level_grad_ = std::move(grad);
}

Tensor ResNetEncoder::Backward(const Tensor& grad_output) {
  // Overlap hooks (DESIGN §14): each block announced right after its
  // Backward. The listener arrives via DeepLabV3Plus, which forwards its
  // own before calling into the encoder.
  Tensor g = grad_output;
  for (std::size_t i = blocks_.size(); i-- > 0;) {
    if (i + 1 == low_level_block_end_ && !low_level_grad_.Empty()) {
      g += low_level_grad_;
    }
    g = blocks_[i]->Backward(g);
    NotifyGradsReady(*blocks_[i]);
  }
  g = stem_->Backward(g);
  NotifyGradsReady(*stem_);
  return g;
}

std::vector<Param*> ResNetEncoder::Params() {
  std::vector<Param*> params;
  AppendParams(params, *stem_);
  for (auto& b : blocks_) AppendParams(params, *b);
  return params;
}

std::vector<Layer::StateTensor> ResNetEncoder::StateTensors() {
  std::vector<StateTensor> state;
  AppendStateTensors(state, *stem_);
  for (auto& b : blocks_) AppendStateTensors(state, *b);
  return state;
}

void ResNetEncoder::SetPrecisionAll(Precision p) {
  SetPrecision(p);
  stem_->SetPrecisionRecursive(p);
  for (auto& b : blocks_) b->SetPrecisionAll(p);
}

}  // namespace exaclim
