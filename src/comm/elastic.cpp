#include "comm/elastic.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/fault.hpp"
#include "common/logging.hpp"

namespace exaclim {
namespace {

// Consensus tags, salted into the current generation's namespace.
constexpr int kTagSuspect = 9200;
constexpr int kTagView = 9210;

struct MsgHeader {
  std::int32_t generation;
  std::int32_t attempt;
};

void PutHeader(std::vector<std::byte>* buf, MsgHeader header) {
  buf->resize(sizeof(MsgHeader));
  std::memcpy(buf->data(), &header, sizeof(MsgHeader));
}

MsgHeader GetHeader(const std::vector<std::byte>& buf) {
  EXACLIM_CHECK(buf.size() >= sizeof(MsgHeader),
                "elastic message shorter than its header");
  MsgHeader header;
  std::memcpy(&header, buf.data(), sizeof(MsgHeader));
  return header;
}

/// Failure result for a consensus receive; a timeout while a member is
/// dead names the dead member (the timeout is its cascade).
CollectiveResult ConsensusFail(Communicator& comm, int waited_world_rank,
                               RecvStatus status) {
  CollectiveResult result;
  result.suspect_rank = waited_world_rank;
  result.status = status == RecvStatus::kPeerDead
                      ? CollectiveStatus::kPeerDead
                      : CollectiveStatus::kTimeout;
  if (result.status == CollectiveStatus::kTimeout) {
    for (int r = 0; r < comm.size(); ++r) {
      if (comm.PeerDead(r)) {
        result.status = CollectiveStatus::kPeerDead;
        result.suspect_rank = r;
        break;
      }
    }
  }
  return result;
}

}  // namespace

ElasticOptions ElasticOptions::FromEnv(ElasticOptions base) {
  if (const char* env = std::getenv("EXACLIM_ELASTIC")) {
    const std::string value(env);
    base.enabled = !(value == "off" || value == "0" || value == "false" ||
                     value.empty());
  }
  if (const char* env = std::getenv("EXACLIM_ELASTIC_TIMEOUT")) {
    base.collective_timeout_s = std::stod(env);
  }
  if (const char* env = std::getenv("EXACLIM_ELASTIC_REBUILD_TIMEOUT")) {
    base.rebuild_timeout_s = std::stod(env);
  }
  return base;
}

ElasticView MakeInitialView(int world_size, int my_rank) {
  ElasticView view;
  view.generation = 0;
  view.members.resize(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    view.members[static_cast<std::size_t>(r)] = r;
  }
  view.my_index = my_rank;
  return view;
}

ElasticWorld::ElasticWorld(Communicator& comm, ElasticOptions options)
    : comm_(&comm),
      options_(options),
      view_(MakeInitialView(comm.size(), comm.rank())) {}

CollectiveResult ElasticWorld::Attempt(int attempt, ElasticView* next) {
  const std::vector<int>& members = view_.members;
  const int n = view_.size();
  const int gen = view_.generation;

  // Freeze the dead set for this attempt: monotone liveness means every
  // survivor that scans after the same deaths freezes the same set, and
  // with an identical frozen set the tree routing below is agreed upon
  // without further negotiation. A death after the freeze shows up as a
  // kPeerDead / kTimeout mid-attempt and forces a re-freeze.
  std::vector<std::uint8_t> suspect(static_cast<std::size_t>(n), 0);
  std::vector<int> live;  // positions -> member indices
  for (int i = 0; i < n; ++i) {
    if (comm_->PeerDead(members[static_cast<std::size_t>(i)])) {
      suspect[static_cast<std::size_t>(i)] = 1;
    } else {
      live.push_back(i);
    }
  }
  const int live_count = static_cast<int>(live.size());
  const auto my_pos_it = std::find(live.begin(), live.end(), view_.my_index);
  EXACLIM_CHECK(my_pos_it != live.end(),
                "rank " << comm_->rank()
                        << " running Rebuild but marked dead");
  const int my_pos = static_cast<int>(my_pos_it - live.begin());
  const auto world_rank_of_pos = [&](int pos) {
    return members[static_cast<std::size_t>(
        live[static_cast<std::size_t>(pos)])];
  };

  const Deadline deadline(options_.rebuild_timeout_s);
  const int radix = options_.control_radix;
  const std::vector<int> child_positions =
      TreeChildren(my_pos, radix, live_count);

  // Receives a consensus message from `src`, rejecting stale
  // (generation, attempt) stamps — a retried attempt's leftovers or a
  // pre-rebuild straggler must not steer this round.
  const auto recv_checked =
      [&](int src, int tag,
          std::vector<std::byte>* payload) -> CollectiveResult {
    for (;;) {
      RecvResult r = comm_->RecvTimeout(src, tag, deadline.Remaining());
      if (!r.ok()) return ConsensusFail(*comm_, src, r.status);
      const MsgHeader header = GetHeader(r.payload);
      if (header.generation != gen || header.attempt != attempt) {
        ++stale_rejected_;
        FaultCounterBump("fault.elastic.stale_rejected");
        continue;
      }
      *payload = std::move(r.payload);
      return {};
    }
  };

  // Phase 1 — suspect gather: OR children's masks into mine, report up.
  // The masks are PeerDead-confirmed at their source, so the root never
  // excludes a live rank on hearsay.
  for (const int child : child_positions) {
    std::vector<std::byte> payload;
    CollectiveResult r =
        recv_checked(world_rank_of_pos(child), GenTag(kTagSuspect), &payload);
    if (!r.ok()) return r;
    EXACLIM_CHECK(payload.size() == sizeof(MsgHeader) +
                                        static_cast<std::size_t>(n),
                  "suspect mask size mismatch");
    for (int i = 0; i < n; ++i) {
      suspect[static_cast<std::size_t>(i)] |= static_cast<std::uint8_t>(
          payload[sizeof(MsgHeader) + static_cast<std::size_t>(i)]);
    }
  }
  if (my_pos != 0) {
    std::vector<std::byte> report;
    PutHeader(&report, {gen, attempt});
    report.insert(report.end(),
                  reinterpret_cast<const std::byte*>(suspect.data()),
                  reinterpret_cast<const std::byte*>(suspect.data() + n));
    comm_->Send(world_rank_of_pos(TreeParent(my_pos, radix)),
                GenTag(kTagSuspect), report);
  }

  // Phase 2 — view broadcast: the effective root (lowest live member)
  // fixes the generation-N+1 member list and pushes it down the tree.
  std::vector<std::int32_t> survivors;
  if (my_pos == 0) {
    for (int i = 0; i < n; ++i) {
      if (!suspect[static_cast<std::size_t>(i)]) {
        survivors.push_back(members[static_cast<std::size_t>(i)]);
      }
    }
  } else {
    std::vector<std::byte> payload;
    CollectiveResult r = recv_checked(
        world_rank_of_pos(TreeParent(my_pos, radix)), GenTag(kTagView),
        &payload);
    if (!r.ok()) return r;
    const std::size_t count =
        (payload.size() - sizeof(MsgHeader)) / sizeof(std::int32_t);
    survivors.resize(count);
    std::memcpy(survivors.data(), payload.data() + sizeof(MsgHeader),
                count * sizeof(std::int32_t));
  }
  std::vector<std::byte> view_msg;
  PutHeader(&view_msg, {gen, attempt});
  view_msg.insert(view_msg.end(),
                  reinterpret_cast<const std::byte*>(survivors.data()),
                  reinterpret_cast<const std::byte*>(survivors.data() +
                                                     survivors.size()));
  for (const int child : child_positions) {
    comm_->Send(world_rank_of_pos(child), GenTag(kTagView), view_msg);
  }

  next->generation = gen + 1;
  next->members.assign(survivors.begin(), survivors.end());
  next->my_index = next->IndexOf(comm_->rank());
  EXACLIM_CHECK(next->my_index >= 0,
                "rank " << comm_->rank()
                        << " excluded from the survivor view it helped "
                           "build (gen "
                        << next->generation << ")");
  return {};
}

CollectiveResult ElasticWorld::Rebuild() {
  CollectiveResult last;
  for (int attempt = 0; attempt < options_.max_rebuild_attempts; ++attempt) {
    ElasticView next;
    last = Attempt(attempt, &next);
    if (last.ok()) {
      EXACLIM_LOG(kWarn) << "elastic: rank " << comm_->rank()
                         << " adopted generation " << next.generation
                         << " with " << next.size() << "/" << comm_->size()
                         << " members (index " << next.my_index << ")";
      view_ = std::move(next);
      ++rebuilds_;
      FaultCounterBump("fault.elastic.rebuilds");
      return last;
    }
  }
  return last;
}

}  // namespace exaclim
