#pragma once

#include <span>
#include <vector>

#include "comm/world.hpp"

namespace exaclim {

/// Collective algorithms implemented over point-to-point messaging —
/// the building blocks the paper's hybrid all-reduce composes (Sec
/// V-A3). All reductions are float sums with deterministic combining
/// order (independent of thread timing), so data-parallel replicas stay
/// bit-identical.
///
/// Each call takes a `tag` namespace; sequential collectives on the same
/// communicator may reuse a tag, concurrent ones must not.

/// Dissemination barrier: ceil(log2 n) rounds.
void Barrier(Communicator& comm, int tag = 1000);

/// Binomial-tree broadcast from root.
void Broadcast(Communicator& comm, int root, std::span<float> data,
               int tag = 1100);

/// Binomial-tree sum-reduction to root (other ranks' buffers untouched).
void Reduce(Communicator& comm, int root, std::span<float> data,
            int tag = 1200);

/// Ring reduce-scatter: on return, rank r owns the fully reduced shard
/// (r+1) mod n (the classic systolic-ring layout, matched by
/// AllgatherRing). Shards partition [0, n) as evenly as possible via
/// ComputeShards. This is the NCCL-style pattern of Sec V-A3.
struct ShardExtent {
  std::size_t offset;
  std::size_t count;
};
std::vector<ShardExtent> ComputeShards(std::size_t n, int parts);
void ReduceScatterRing(Communicator& comm, std::span<float> data,
                       int tag = 1300);

/// Ring allgather of the per-rank shards produced by ReduceScatterRing.
void AllgatherRing(Communicator& comm, std::span<float> data,
                   int tag = 1400);

enum class AllreduceAlgo {
  kRing,               // reduce-scatter + allgather (bandwidth-optimal)
  kTree,               // reduce to root + broadcast (latency-friendly)
  kRecursiveDoubling,  // power-of-two butterfly (MPI-style)
};

const char* ToString(AllreduceAlgo algo);

/// In-place sum all-reduce with the chosen algorithm. Recursive doubling
/// falls back to tree for non-power-of-two sizes.
void Allreduce(Communicator& comm, std::span<float> data,
               AllreduceAlgo algo = AllreduceAlgo::kRing, int tag = 1500);

/// Gathers `data` from every rank to root (concatenated rank-major).
void Gather(Communicator& comm, int root, std::span<const float> data,
            std::span<float> out, int tag = 1600);

}  // namespace exaclim
