#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "comm/world.hpp"

namespace exaclim {

/// Collective algorithms implemented over point-to-point messaging —
/// the building blocks the paper's hybrid all-reduce composes (Sec
/// V-A3). All reductions are float sums with deterministic combining
/// order (independent of thread timing), so data-parallel replicas stay
/// bit-identical.
///
/// Each call takes a `tag` namespace; sequential collectives on the same
/// communicator may reuse a tag, concurrent ones must not.
///
/// Every collective has a deadline-aware Try* variant returning a
/// CollectiveResult instead of hanging or throwing when a peer dies
/// mid-operation — the substrate of elastic training (DESIGN §13). The
/// blocking functions are thin wrappers that delegate with kNoTimeout,
/// so both paths execute the identical message pattern and combining
/// order (bit-identical results).

/// Outcome of a deadline-aware collective.
enum class CollectiveStatus {
  kOk,        // completed on every participating edge of this rank
  kPeerDead,  // a participant died; suspect_rank names it
  kTimeout,   // deadline expired with no dead rank detected
};

const char* ToString(CollectiveStatus status);

struct CollectiveResult {
  CollectiveStatus status = CollectiveStatus::kOk;
  /// The dead rank (kPeerDead) or the rank whose message never arrived
  /// (kTimeout). -1 on kOk.
  int suspect_rank = -1;

  bool ok() const { return status == CollectiveStatus::kOk; }
};

/// Dissemination barrier: ceil(log2 n) rounds.
void Barrier(Communicator& comm, int tag = 1000);
CollectiveResult TryBarrier(Communicator& comm, const Deadline& deadline,
                            int tag = 1000);

/// Binomial-tree broadcast from root.
void Broadcast(Communicator& comm, int root, std::span<float> data,
               int tag = 1100);
CollectiveResult TryBroadcast(Communicator& comm, int root,
                              std::span<float> data,
                              const Deadline& deadline, int tag = 1100);

/// Binomial-tree sum-reduction to root (other ranks' buffers untouched).
void Reduce(Communicator& comm, int root, std::span<float> data,
            int tag = 1200);
CollectiveResult TryReduce(Communicator& comm, int root,
                           std::span<float> data, const Deadline& deadline,
                           int tag = 1200);

/// Ring reduce-scatter: on return, rank r owns the fully reduced shard
/// (r+1) mod n (the classic systolic-ring layout, matched by
/// AllgatherRing). Shards partition [0, n) as evenly as possible via
/// ComputeShards. This is the NCCL-style pattern of Sec V-A3.
struct ShardExtent {
  std::size_t offset;
  std::size_t count;
};
std::vector<ShardExtent> ComputeShards(std::size_t n, int parts);
void ReduceScatterRing(Communicator& comm, std::span<float> data,
                       int tag = 1300);
CollectiveResult TryReduceScatterRing(Communicator& comm,
                                      std::span<float> data,
                                      const Deadline& deadline,
                                      int tag = 1300);

/// Ring allgather of the per-rank shards produced by ReduceScatterRing.
void AllgatherRing(Communicator& comm, std::span<float> data,
                   int tag = 1400);
CollectiveResult TryAllgatherRing(Communicator& comm, std::span<float> data,
                                  const Deadline& deadline, int tag = 1400);

enum class AllreduceAlgo {
  kRing,               // reduce-scatter + allgather (bandwidth-optimal)
  kTree,               // reduce to root + broadcast (latency-friendly)
  kRecursiveDoubling,  // power-of-two butterfly (MPI-style)
};

const char* ToString(AllreduceAlgo algo);

/// In-place sum all-reduce with the chosen algorithm. Recursive doubling
/// falls back to tree for non-power-of-two sizes.
void Allreduce(Communicator& comm, std::span<float> data,
               AllreduceAlgo algo = AllreduceAlgo::kRing, int tag = 1500);
CollectiveResult TryAllreduce(Communicator& comm, std::span<float> data,
                              AllreduceAlgo algo, const Deadline& deadline,
                              int tag = 1500);

/// Gathers `data` from every rank to root (concatenated rank-major).
void Gather(Communicator& comm, int root, std::span<const float> data,
            std::span<float> out, int tag = 1600);
CollectiveResult TryGather(Communicator& comm, int root,
                           std::span<const float> data, std::span<float> out,
                           const Deadline& deadline, int tag = 1600);

/// On-the-wire encoding of a float payload. kFP32 sends raw floats;
/// kFP16 packs each element through IEEE binary16 (PackHalf), halving
/// the bytes every message moves. Reductions still accumulate in FP32 —
/// the wire format only controls what crosses rank boundaries, so a
/// packed send quantises exactly like RoundTripHalf on the sender.
/// Values already representable in binary16 survive a pack/unpack hop
/// bit-exactly, which is what keeps forwarded (already-quantised)
/// payloads identical along broadcast and allgather paths.
enum class WireFormat { kFP32, kFP16 };

const char* ToString(WireFormat wire);

/// Bytes a `count`-element float span occupies under `wire`.
inline std::size_t WireBytes(std::size_t count, WireFormat wire) {
  return count * (wire == WireFormat::kFP32 ? sizeof(float)
                                            : sizeof(std::uint16_t));
}

/// Sends `data` to `dst` encoded per `wire`. The kFP16 path packs into a
/// pooled thread-local scratch buffer (no heap traffic on the exchange
/// hot path) before the buffered send copies it out.
void SendFloats(Communicator& comm, int dst, int tag,
                std::span<const float> data, WireFormat wire);

/// Decodes a received payload (previously produced by SendFloats with
/// the same `wire`) into `out`. The payload size must equal
/// WireBytes(out.size(), wire) — callers check before decoding.
void DecodeFloats(std::span<const std::byte> payload, std::span<float> out,
                  WireFormat wire);

}  // namespace exaclim
