#pragma once

#include <cstdint>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/world.hpp"
#include "common/error.hpp"

namespace exaclim {

/// Elastic membership layer (DESIGN §13): when a rank dies mid-step the
/// survivors agree on a new, dense, generation-stamped view of the world
/// and training continues on it — no job restart, no disk checkpoint.
///
/// The protocol leans on two SimWorld properties that real elastic
/// runtimes approximate with leases and heartbeats:
///   * liveness is monotone — a dead rank never comes back within a Run;
///   * an allreduce is collective — if any member is dead, *every*
///     survivor's bounded exchange fails, so all survivors enter
///     Rebuild() for the same step.

/// Heap-shaped radix tree over dense indices — the same topology the
/// hierarchical hvd control plane uses (hvd/control_plane.*, which
/// delegates here). Index 0 is the root.
inline int TreeParent(int index, int radix) {
  return index <= 0 ? -1 : (index - 1) / radix;
}
inline std::vector<int> TreeChildren(int index, int radix, int n) {
  std::vector<int> children;
  for (int c = index * radix + 1; c <= index * radix + radix && c < n; ++c) {
    children.push_back(c);
  }
  return children;
}

/// Tag-namespace stride between generations: collectives on generation g
/// run at `tag + g * kGenTagStride`, so a straggler message from an
/// aborted pre-failure step can never match a post-rebuild receive.
inline constexpr int kGenTagStride = 1'000'000;

/// Thrown by the chaos schedule inside a victim rank after KillSelf();
/// the training loop catches it and unwinds the rank's thread cleanly
/// (throwing out of SimWorld::Run would poison every mailbox).
struct RankKilledError : Error {
  using Error::Error;
};

struct ElasticOptions {
  bool enabled = false;
  /// Deadline for one bounded collective on the exchange path.
  double collective_timeout_s = 5.0;
  /// Deadline per survivor-consensus attempt.
  double rebuild_timeout_s = 10.0;
  int max_rebuild_attempts = 3;
  /// Radix of the consensus tree (mirrors the hvd control plane).
  int control_radix = 4;

  /// EXACLIM_ELASTIC=on|off, EXACLIM_ELASTIC_TIMEOUT=<s>,
  /// EXACLIM_ELASTIC_REBUILD_TIMEOUT=<s> applied over `base`.
  static ElasticOptions FromEnv(ElasticOptions base);
  static ElasticOptions FromEnv() { return FromEnv(ElasticOptions{}); }
};

/// A generation's membership: the ascending world ranks still alive, and
/// this rank's dense index among them. Generation 0 is the identity view
/// (member i == world rank i), so elastic-on with no failures runs the
/// exact same algorithms over the exact same rank sets as elastic-off.
struct ElasticView {
  int generation = 0;
  std::vector<int> members;
  int my_index = -1;

  int size() const { return static_cast<int>(members.size()); }
  int WorldRank(int index) const {
    return members[static_cast<std::size_t>(index)];
  }
  int IndexOf(int world_rank) const {
    for (int i = 0; i < size(); ++i) {
      if (members[static_cast<std::size_t>(i)] == world_rank) return i;
    }
    return -1;
  }
  bool IsMember(int world_rank) const { return IndexOf(world_rank) >= 0; }
};

ElasticView MakeInitialView(int world_size, int my_rank);

/// Per-rank handle owning the current view and the rebuild protocol.
/// Rebuild() runs the survivor consensus:
///   1. freeze the dead set (PeerDead scan over current members);
///   2. gather per-rank suspect masks up a radix tree over the *live*
///      members (root = lowest live rank) — structurally the
///      hierarchical control plane's topology, routed around the dead;
///   3. the root broadcasts the generation-N+1 member list down the same
///      tree; everyone adopts it and re-ranks densely.
/// Messages carry (generation, attempt) stamps; stale ones are rejected
/// and counted ("fault.elastic.stale_rejected"). A member death *during*
/// an attempt surfaces as kPeerDead/kTimeout and the attempt is retried
/// with a fresh dead-set freeze, up to max_rebuild_attempts.
class ElasticWorld {
 public:
  ElasticWorld(Communicator& comm, ElasticOptions options);

  const ElasticView& view() const { return view_; }
  int generation() const { return view_.generation; }
  const ElasticOptions& options() const { return options_; }

  /// Current generation's tag namespace.
  int GenTag(int tag) const { return tag + view_.generation * kGenTagStride; }

  /// Survivor consensus; on kOk the view has advanced one generation.
  /// kPeerDead/kTimeout means every attempt failed (suspect_rank names
  /// the last offender) and the view is unchanged.
  CollectiveResult Rebuild();

  std::int64_t rebuilds() const { return rebuilds_; }
  std::int64_t stale_rejected() const { return stale_rejected_; }

 private:
  CollectiveResult Attempt(int attempt, ElasticView* next);

  Communicator* comm_;
  ElasticOptions options_;
  ElasticView view_;
  std::int64_t rebuilds_ = 0;
  std::int64_t stale_rejected_ = 0;
};

}  // namespace exaclim
