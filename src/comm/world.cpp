#include "comm/world.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/logging.hpp"

namespace exaclim {

// ------------------------------------------------------- Communicator ---

int Communicator::size() const { return world_->size(); }

void Communicator::Send(int dst, int tag, std::span<const std::byte> data) {
  EXACLIM_CHECK(dst >= 0 && dst < world_->size(),
                "send to invalid rank " << dst);
  SimWorld::Message message;
  message.src = rank_;
  message.tag = tag;
  message.payload.assign(data.begin(), data.end());
  ++messages_sent_;
  bytes_sent_ += static_cast<std::int64_t>(data.size());
  world_->Deliver(dst, std::move(message));
}

int Communicator::Recv(int src, int tag, std::span<std::byte> data) {
  SimWorld::Message message;
  const RecvStatus status = world_->Take(rank_, src, tag, -1.0, &message);
  EXACLIM_CHECK(status != RecvStatus::kPeerDead,
                "rank " << rank_ << ": blocking Recv from dead rank " << src
                        << " (tag " << tag << ") can never complete");
  EXACLIM_CHECK(message.payload.size() == data.size(),
                "recv size mismatch: got " << message.payload.size()
                                           << " expected " << data.size()
                                           << " (tag " << tag << ")");
  std::copy(message.payload.begin(), message.payload.end(), data.begin());
  ++messages_received_;
  return message.src;
}

std::vector<std::byte> Communicator::RecvAny(int src, int tag,
                                             int* actual_src) {
  SimWorld::Message message;
  const RecvStatus status = world_->Take(rank_, src, tag, -1.0, &message);
  EXACLIM_CHECK(status != RecvStatus::kPeerDead,
                "rank " << rank_ << ": blocking RecvAny from dead rank "
                        << src << " (tag " << tag
                        << ") can never complete");
  if (actual_src != nullptr) *actual_src = message.src;
  ++messages_received_;
  return std::move(message.payload);
}

RecvResult Communicator::RecvTimeout(int src, int tag,
                                     double timeout_seconds) {
  SimWorld::Message message;
  RecvResult result;
  // kNoTimeout means "wait forever, but still report kPeerDead" — the
  // blocking collectives delegate here with it so one implementation
  // serves both the bounded and unbounded paths.
  const double take_timeout =
      timeout_seconds == kNoTimeout ? -1.0 : std::max(timeout_seconds, 0.0);
  result.status = world_->Take(rank_, src, tag, take_timeout, &message);
  if (result.status == RecvStatus::kOk) {
    result.src = message.src;
    result.payload = std::move(message.payload);
    ++messages_received_;
  } else if (result.status == RecvStatus::kTimeout) {
    FaultCounterBump("fault.comm.recv_timeouts");
  } else {
    FaultCounterBump("fault.comm.recv_peer_dead");
  }
  return result;
}

RecvResult Communicator::TryRecv(int src, int tag) {
  return RecvTimeout(src, tag, 0.0);
}

bool Communicator::PeerDead(int rank) const {
  return world_->RankDead(rank);
}

void Communicator::KillSelf() { world_->KillRank(rank_); }

// ------------------------------------------------------------ SimWorld --

SimWorld::SimWorld(int size)
    : size_(size),
      drop_logged_(static_cast<std::size_t>(size) *
                   static_cast<std::size_t>(size)) {
  EXACLIM_CHECK(size_ >= 1, "world size must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(size_));
  for (int i = 0; i < size_; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

SimWorld::~SimWorld() = default;

void SimWorld::Deliver(int dst, Message message) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  if (box.dead.load(std::memory_order_acquire)) {
    FaultCounterBump("fault.comm.send_to_dead");
    FaultCounterBump("comm.send.dropped_dead");
    // Log the first drop per (src, dst) pair; after that only the
    // counter moves, so a chatty retry loop can't flood the log.
    std::atomic<bool>& logged =
        drop_logged_[static_cast<std::size_t>(message.src) *
                         static_cast<std::size_t>(size_) +
                     static_cast<std::size_t>(dst)];
    if (!logged.exchange(true, std::memory_order_relaxed)) {
      EXACLIM_LOG(kWarn) << "comm: dropping send " << message.src << " -> "
                         << dst << " (tag " << message.tag
                         << "): destination rank is dead";
    }
    return;
  }
  // Fault points are consulted before any lock is taken: the injector
  // has its own (unranked) mutex and the metric sink takes registry
  // locks.
  FaultInjector& injector = FaultInjector::Global();
  if (injector.ArmedSiteCount() > 0) {
    if (injector.ShouldInject("comm.drop")) {
      FaultCounterBump("fault.comm.dropped_messages");
      return;
    }
    if (injector.ShouldInject("comm.delay")) {
      message.deliver_after =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 injector.DelaySeconds("comm.delay")));
      FaultCounterBump("fault.comm.delayed_messages");
    }
  }
  {
    MutexLock lock(box.mutex);
    box.messages.push_back(std::move(message));
  }
  box.cv.NotifyAll();
}

RecvStatus SimWorld::Take(int dst, int src, int tag, double timeout_seconds,
                          Message* out) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  const bool bounded = timeout_seconds >= 0.0;
  const Clock::time_point deadline =
      bounded ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       timeout_seconds))
              : Clock::time_point::max();
  MutexLock lock(box.mutex);
  for (;;) {
    const Clock::time_point now = Clock::now();
    // Scan for a matching, due message; track the earliest delayed match
    // so the wait below wakes exactly when it becomes deliverable.
    Clock::time_point earliest_due = Clock::time_point::max();
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if ((src == kAnySource || it->src == src) && it->tag == tag) {
        if (it->deliver_after <= now) {
          *out = std::move(*it);
          box.messages.erase(it);
          return RecvStatus::kOk;
        }
        earliest_due = std::min(earliest_due, it->deliver_after);
      }
    }
    if (box.poisoned) {
      throw Error("rank " + std::to_string(dst) +
                  ": world poisoned while waiting for message (src=" +
                  std::to_string(src) + ", tag=" + std::to_string(tag) + ")");
    }
    // A dead, message-less source can never satisfy the receive. (With
    // kAnySource the caller's deadline is the only exit.)
    if (src != kAnySource &&
        mailboxes_[static_cast<std::size_t>(src)]->dead.load(
            std::memory_order_acquire) &&
        earliest_due == Clock::time_point::max()) {
      return RecvStatus::kPeerDead;
    }
    Clock::time_point wake = std::min(deadline, earliest_due);
    if (wake == Clock::time_point::max()) {
      box.cv.Wait(lock);
      continue;
    }
    if (now >= deadline) return RecvStatus::kTimeout;
    const double wait_s =
        std::chrono::duration<double>(wake - now).count();
    box.cv.WaitFor(lock, wait_s);
  }
}

void SimWorld::KillRank(int rank) {
  EXACLIM_CHECK(rank >= 0 && rank < size_, "kill of invalid rank " << rank);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(rank)];
  box.dead.store(true, std::memory_order_release);
  {
    MutexLock lock(box.mutex);
    box.messages.clear();
  }
  FaultCounterBump("fault.comm.rank_kills");
  // Wake every waiter in the world: peers blocked in timed receives on
  // this rank must re-check the dead flag and report kPeerDead now
  // rather than at their deadline.
  for (auto& other : mailboxes_) other->cv.NotifyAll();
}

bool SimWorld::RankDead(int rank) const {
  EXACLIM_CHECK(rank >= 0 && rank < size_,
                "liveness query for invalid rank " << rank);
  return mailboxes_[static_cast<std::size_t>(rank)]->dead.load(
      std::memory_order_acquire);
}

void SimWorld::Run(const std::function<void(Communicator&)>& fn) {
  // Reset poison/dead state from any previous run.
  for (auto& box : mailboxes_) {
    MutexLock lock(box->mutex);
    box->poisoned = false;
    box->dead.store(false, std::memory_order_release);
  }
  for (auto& flag : drop_logged_) {
    flag.store(false, std::memory_order_relaxed);
  }
  std::vector<Communicator> comms;
  comms.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) comms.emplace_back(*this, r);

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      // Launch-time rank death ("comm.kill.<rank>"): the rank is marked
      // dead and its function never runs — the surviving ranks must make
      // progress through their timeout/degradation paths.
      FaultInjector& injector = FaultInjector::Global();
      if (injector.ArmedSiteCount() > 0 &&
          injector.ShouldInject("comm.kill." + std::to_string(r))) {
        KillRank(r);
        return;
      }
      try {
        fn(comms[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Poison every mailbox so peers blocked in Recv abort instead of
        // deadlocking on a rank that died.
        for (auto& box : mailboxes_) {
          {
            MutexLock lock(box->mutex);
            box->poisoned = true;
          }
          box->cv.NotifyAll();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  total_messages_ = 0;
  total_bytes_ = 0;
  for (const Communicator& c : comms) {
    total_messages_ += c.messages_sent();
    total_bytes_ += c.bytes_sent();
  }
  // Drain any leftover messages (e.g. from an aborted run).
  for (auto& box : mailboxes_) {
    MutexLock lock(box->mutex);
    box->messages.clear();
  }
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace exaclim
