#include "comm/world.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/error.hpp"

namespace exaclim {

// ------------------------------------------------------- Communicator ---

int Communicator::size() const { return world_->size(); }

void Communicator::Send(int dst, int tag, std::span<const std::byte> data) {
  EXACLIM_CHECK(dst >= 0 && dst < world_->size(),
                "send to invalid rank " << dst);
  SimWorld::Message message;
  message.src = rank_;
  message.tag = tag;
  message.payload.assign(data.begin(), data.end());
  ++messages_sent_;
  bytes_sent_ += static_cast<std::int64_t>(data.size());
  world_->Deliver(dst, std::move(message));
}

int Communicator::Recv(int src, int tag, std::span<std::byte> data) {
  SimWorld::Message message = world_->Take(rank_, src, tag);
  EXACLIM_CHECK(message.payload.size() == data.size(),
                "recv size mismatch: got " << message.payload.size()
                                           << " expected " << data.size()
                                           << " (tag " << tag << ")");
  std::copy(message.payload.begin(), message.payload.end(), data.begin());
  ++messages_received_;
  return message.src;
}

std::vector<std::byte> Communicator::RecvAny(int src, int tag,
                                             int* actual_src) {
  SimWorld::Message message = world_->Take(rank_, src, tag);
  if (actual_src != nullptr) *actual_src = message.src;
  ++messages_received_;
  return std::move(message.payload);
}

// ------------------------------------------------------------ SimWorld --

SimWorld::SimWorld(int size) : size_(size) {
  EXACLIM_CHECK(size_ >= 1, "world size must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(size_));
  for (int i = 0; i < size_; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

SimWorld::~SimWorld() = default;

void SimWorld::Deliver(int dst, Message message) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    MutexLock lock(box.mutex);
    box.messages.push_back(std::move(message));
  }
  box.cv.NotifyAll();
}

SimWorld::Message SimWorld::Take(int dst, int src, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  MutexLock lock(box.mutex);
  for (;;) {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if ((src == kAnySource || it->src == src) && it->tag == tag) {
        Message message = std::move(*it);
        box.messages.erase(it);
        return message;
      }
    }
    if (box.poisoned) {
      throw Error("rank " + std::to_string(dst) +
                  ": world poisoned while waiting for message (src=" +
                  std::to_string(src) + ", tag=" + std::to_string(tag) + ")");
    }
    box.cv.Wait(lock);
  }
}

void SimWorld::Run(const std::function<void(Communicator&)>& fn) {
  // Reset poison/counters from any previous run.
  for (auto& box : mailboxes_) {
    MutexLock lock(box->mutex);
    box->poisoned = false;
  }
  std::vector<Communicator> comms;
  comms.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) comms.emplace_back(*this, r);

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  threads.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(comms[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // Poison every mailbox so peers blocked in Recv abort instead of
        // deadlocking on a rank that died.
        for (auto& box : mailboxes_) {
          {
            MutexLock lock(box->mutex);
            box->poisoned = true;
          }
          box->cv.NotifyAll();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  total_messages_ = 0;
  total_bytes_ = 0;
  for (const Communicator& c : comms) {
    total_messages_ += c.messages_sent();
    total_bytes_ += c.bytes_sent();
  }
  // Drain any leftover messages (e.g. from an aborted run).
  for (auto& box : mailboxes_) {
    MutexLock lock(box->mutex);
    box->messages.clear();
  }
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace exaclim
