#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace exaclim {

/// Matches any source rank in Recv (like MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;

class SimWorld;

/// Per-rank handle into a SimWorld: blocking tagged point-to-point
/// messaging, plus counters used by the control-plane experiments. All
/// collectives (comm/collectives.hpp) are built on these primitives, the
/// same way MPI collectives are built on sends — so the hierarchical
/// Horovod algorithms in hvd/ genuinely execute their message patterns.
class Communicator {
 public:
  Communicator(SimWorld& world, int rank) : world_(&world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const;

  /// Buffered send: enqueues and returns immediately (MPI_Bsend-like).
  void Send(int dst, int tag, std::span<const std::byte> data);
  /// Blocking receive of a message matching (src, tag); src may be
  /// kAnySource. Returns the actual source rank; the payload must fit.
  int Recv(int src, int tag, std::span<std::byte> data);
  /// Receives a message of unknown size (returns payload; sets src).
  std::vector<std::byte> RecvAny(int src, int tag, int* actual_src = nullptr);

  // Typed convenience wrappers.
  template <typename T>
  void SendT(int dst, int tag, std::span<const T> data) {
    Send(dst, tag, std::as_bytes(data));
  }
  template <typename T>
  int RecvT(int src, int tag, std::span<T> data) {
    return Recv(src, tag, std::as_writable_bytes(data));
  }
  template <typename T>
  void SendValue(int dst, int tag, const T& value) {
    SendT(dst, tag, std::span<const T>(&value, 1));
  }
  template <typename T>
  T RecvValue(int src, int tag, int* actual_src = nullptr) {
    T value{};
    const int s = RecvT(src, tag, std::span<T>(&value, 1));
    if (actual_src != nullptr) *actual_src = s;
    return value;
  }

  std::int64_t messages_sent() const { return messages_sent_; }
  std::int64_t bytes_sent() const { return bytes_sent_; }
  std::int64_t messages_received() const { return messages_received_; }
  void ResetCounters() {
    messages_sent_ = bytes_sent_ = messages_received_ = 0;
  }

 private:
  SimWorld* world_;
  int rank_;
  std::int64_t messages_sent_ = 0;
  std::int64_t bytes_sent_ = 0;
  std::int64_t messages_received_ = 0;
};

/// An in-process "machine": `size` ranks, each a thread, exchanging
/// messages through per-destination mailboxes. The stand-in for MPI on
/// this substrate — collective *algorithms* run for real; only transport
/// time is left to netsim's analytic model.
class SimWorld {
 public:
  explicit SimWorld(int size);
  ~SimWorld();

  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  int size() const { return size_; }

  /// Runs fn on every rank concurrently (one thread per rank) and joins.
  /// The first exception thrown by any rank is rethrown here after all
  /// ranks finish or the world is poisoned.
  void Run(const std::function<void(Communicator&)>& fn);

  /// Total messages/bytes across all ranks in the last Run.
  std::int64_t total_messages() const { return total_messages_; }
  std::int64_t total_bytes() const { return total_bytes_; }

 private:
  friend class Communicator;

  struct Message {
    int src;
    int tag;
    std::vector<std::byte> payload;
  };

  struct Mailbox {
    Mutex mutex;
    CondVar cv;
    std::deque<Message> messages EXACLIM_GUARDED_BY(mutex);
    bool poisoned EXACLIM_GUARDED_BY(mutex) = false;
  };

  void Deliver(int dst, Message message);
  Message Take(int dst, int src, int tag);

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::int64_t total_messages_ = 0;
  std::int64_t total_bytes_ = 0;
};

/// Maps flat ranks onto a (node, local rank) topology — Summit runs 6
/// ranks per node (one per GPU), Piz Daint 1 (Sec V-A3).
struct Topology {
  int ranks_per_node = 1;

  int NodeOf(int rank) const { return rank / ranks_per_node; }
  int LocalRank(int rank) const { return rank % ranks_per_node; }
  int GlobalRank(int node, int local) const {
    return node * ranks_per_node + local;
  }
  int NumNodes(int world_size) const {
    return (world_size + ranks_per_node - 1) / ranks_per_node;
  }
};

}  // namespace exaclim
