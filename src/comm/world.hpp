#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/sync.hpp"
#include "common/thread_annotations.hpp"

namespace exaclim {

/// Matches any source rank in Recv (like MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;

/// Timeout value meaning "wait forever" for RecvTimeout / Deadline. A
/// bounded call with this timeout still reports kPeerDead instead of
/// throwing, which is how the blocking collectives share one
/// implementation with their deadline-aware variants.
inline constexpr double kNoTimeout = std::numeric_limits<double>::infinity();

/// Absolute deadline carried through a multi-message operation (one
/// collective, one consensus round): constructed once at entry, every
/// receive inside uses Remaining() so the whole operation — not each
/// message — is bounded. kNoTimeout never expires.
class Deadline {
 public:
  explicit Deadline(double timeout_seconds)
      : unbounded_(timeout_seconds == kNoTimeout),
        end_(unbounded_
                 ? std::chrono::steady_clock::time_point::max()
                 : std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               std::max(timeout_seconds, 0.0)))) {}

  /// Seconds left (>= 0), or kNoTimeout when unbounded.
  double Remaining() const {
    if (unbounded_) return kNoTimeout;
    const double left = std::chrono::duration<double>(
                            end_ - std::chrono::steady_clock::now())
                            .count();
    return left > 0.0 ? left : 0.0;
  }
  bool Expired() const { return !unbounded_ && Remaining() <= 0.0; }

 private:
  bool unbounded_;
  std::chrono::steady_clock::time_point end_;
};

class SimWorld;

/// Outcome of a deadline-based receive.
enum class RecvStatus {
  kOk,        // message delivered
  kTimeout,   // deadline passed with no matching message
  kPeerDead,  // the requested source rank is dead and sent nothing
};

struct RecvResult {
  RecvStatus status = RecvStatus::kTimeout;
  int src = -1;
  std::vector<std::byte> payload;

  bool ok() const { return status == RecvStatus::kOk; }
};

/// Per-rank handle into a SimWorld: blocking tagged point-to-point
/// messaging, plus counters used by the control-plane experiments. All
/// collectives (comm/collectives.hpp) are built on these primitives, the
/// same way MPI collectives are built on sends — so the hierarchical
/// Horovod algorithms in hvd/ genuinely execute their message patterns.
///
/// Fault semantics (DESIGN §8): Send to a dead rank is silently dropped;
/// blocking Recv from a dead rank throws exaclim::Error (it can never
/// complete); RecvTimeout/TryRecv report kPeerDead instead. The
/// FaultInjector sites "comm.drop" / "comm.delay" act at delivery time.
class Communicator {
 public:
  Communicator(SimWorld& world, int rank) : world_(&world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const;

  /// Buffered send: enqueues and returns immediately (MPI_Bsend-like).
  void Send(int dst, int tag, std::span<const std::byte> data);
  /// Blocking receive of a message matching (src, tag); src may be
  /// kAnySource. Returns the actual source rank; the payload must fit.
  int Recv(int src, int tag, std::span<std::byte> data);
  /// Receives a message of unknown size (returns payload; sets src).
  std::vector<std::byte> RecvAny(int src, int tag, int* actual_src = nullptr);

  /// Deadline-based receive: waits at most `timeout_seconds` for a
  /// matching message. Never blocks past the deadline, so callers can
  /// detect dead or unresponsive peers instead of hanging forever.
  RecvResult RecvTimeout(int src, int tag, double timeout_seconds);
  /// Non-blocking receive: returns immediately with whatever is queued.
  RecvResult TryRecv(int src, int tag);

  /// True when `rank` has been killed (SimWorld::KillRank or an armed
  /// "comm.kill.<rank>" fault site).
  bool PeerDead(int rank) const;

  /// Marks this rank dead in the world — the chaos-schedule stand-in for
  /// a process crash. Queued messages drop, later sends to it drop, and
  /// peers' timed receives report kPeerDead. The caller must unwind out
  /// of its rank function without touching the communicator again.
  void KillSelf();

  // Typed convenience wrappers.
  template <typename T>
  void SendT(int dst, int tag, std::span<const T> data) {
    Send(dst, tag, std::as_bytes(data));
  }
  template <typename T>
  int RecvT(int src, int tag, std::span<T> data) {
    return Recv(src, tag, std::as_writable_bytes(data));
  }
  template <typename T>
  void SendValue(int dst, int tag, const T& value) {
    SendT(dst, tag, std::span<const T>(&value, 1));
  }
  template <typename T>
  T RecvValue(int src, int tag, int* actual_src = nullptr) {
    T value{};
    const int s = RecvT(src, tag, std::span<T>(&value, 1));
    if (actual_src != nullptr) *actual_src = s;
    return value;
  }
  /// Timed scalar receive; `*value` is written only on kOk.
  template <typename T>
  RecvStatus RecvValueTimeout(int src, int tag, double timeout_seconds,
                              T* value, int* actual_src = nullptr) {
    RecvResult r = RecvTimeout(src, tag, timeout_seconds);
    if (!r.ok()) return r.status;
    EXACLIM_CHECK(r.payload.size() == sizeof(T),
                  "recv size mismatch: got " << r.payload.size()
                                             << " expected " << sizeof(T)
                                             << " (tag " << tag << ")");
    std::memcpy(value, r.payload.data(), sizeof(T));
    if (actual_src != nullptr) *actual_src = r.src;
    return RecvStatus::kOk;
  }

  std::int64_t messages_sent() const { return messages_sent_; }
  std::int64_t bytes_sent() const { return bytes_sent_; }
  std::int64_t messages_received() const { return messages_received_; }
  void ResetCounters() {
    messages_sent_ = bytes_sent_ = messages_received_ = 0;
  }

 private:
  SimWorld* world_;
  int rank_;
  std::int64_t messages_sent_ = 0;
  std::int64_t bytes_sent_ = 0;
  std::int64_t messages_received_ = 0;
};

/// An in-process "machine": `size` ranks, each a thread, exchanging
/// messages through per-destination mailboxes. The stand-in for MPI on
/// this substrate — collective *algorithms* run for real; only transport
/// time is left to netsim's analytic model.
///
/// Fault injection: SimWorld consults FaultInjector::Global() at two
/// points — per-message delivery ("comm.drop" / "comm.delay") and per
/// rank at Run entry ("comm.kill.<rank>", which marks the rank dead and
/// never runs its function, emulating a node lost at job launch).
class SimWorld {
 public:
  explicit SimWorld(int size);
  ~SimWorld();

  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  int size() const { return size_; }

  /// Runs fn on every rank concurrently (one thread per rank) and joins.
  /// The first exception thrown by any rank is rethrown here after all
  /// ranks finish or the world is poisoned.
  void Run(const std::function<void(Communicator&)>& fn);

  /// Marks a rank dead mid-run: its queued messages are discarded, later
  /// sends to it are dropped, and peers waiting on it are woken so their
  /// timed receives can report kPeerDead. Safe to call from any rank's
  /// thread. Dead flags reset at the next Run.
  void KillRank(int rank);
  bool RankDead(int rank) const;

  /// Total messages/bytes across all ranks in the last Run.
  std::int64_t total_messages() const { return total_messages_; }
  std::int64_t total_bytes() const { return total_bytes_; }

 private:
  friend class Communicator;

  using Clock = std::chrono::steady_clock;

  struct Message {
    int src;
    int tag;
    std::vector<std::byte> payload;
    // Injected-delay support: the message exists in the mailbox but is
    // not matchable until this instant ("comm.delay" site).
    Clock::time_point deliver_after{};
  };

  struct Mailbox {
    Mutex mutex;
    CondVar cv;
    std::deque<Message> messages EXACLIM_GUARDED_BY(mutex);
    bool poisoned EXACLIM_GUARDED_BY(mutex) = false;
    // Readable without the mailbox lock (peers check it while holding
    // their own mailbox mutex).
    std::atomic<bool> dead{false};
  };

  void Deliver(int dst, Message message);
  /// Core matching loop. timeout_seconds < 0 waits forever. On kOk the
  /// message is moved into *out. Throws exaclim::Error when the world is
  /// poisoned while waiting.
  RecvStatus Take(int dst, int src, int tag, double timeout_seconds,
                  Message* out);

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::int64_t total_messages_ = 0;
  std::int64_t total_bytes_ = 0;
  // One flag per (src, dst) pair so a dropped send to a dead rank is
  // logged once, not once per message. Reset at each Run.
  std::vector<std::atomic<bool>> drop_logged_;
};

/// Maps flat ranks onto a (node, local rank) topology — Summit runs 6
/// ranks per node (one per GPU), Piz Daint 1 (Sec V-A3).
struct Topology {
  int ranks_per_node = 1;

  int NodeOf(int rank) const { return rank / ranks_per_node; }
  int LocalRank(int rank) const { return rank % ranks_per_node; }
  int GlobalRank(int node, int local) const {
    return node * ranks_per_node + local;
  }
  int NumNodes(int world_size) const {
    return (world_size + ranks_per_node - 1) / ranks_per_node;
  }
};

}  // namespace exaclim
