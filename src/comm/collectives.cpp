#include "comm/collectives.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace exaclim {
namespace {

void AddInto(std::span<float> acc, std::span<const float> other) {
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += other[i];
}

}  // namespace

void Barrier(Communicator& comm, int tag) {
  const int n = comm.size();
  const char token = 1;
  for (int k = 1; k < n; k <<= 1) {
    const int dst = (comm.rank() + k) % n;
    const int src = (comm.rank() - k % n + n) % n;
    comm.SendValue(dst, tag, token);
    (void)comm.RecvValue<char>(src, tag);
  }
}

void Broadcast(Communicator& comm, int root, std::span<float> data,
               int tag) {
  const int n = comm.size();
  if (n == 1) return;
  // Virtual rank with root at 0; binomial tree over virtual ranks.
  const int vrank = (comm.rank() - root + n) % n;
  // Receive from parent (highest set bit), unless root.
  if (vrank != 0) {
    int mask = 1;
    while (mask <= vrank) mask <<= 1;
    mask >>= 1;
    const int vparent = vrank - mask;
    const int parent = (vparent + root) % n;
    comm.RecvT(parent, tag, data);
  }
  // Forward to children.
  int mask = 1;
  while (mask <= vrank) mask <<= 1;
  for (; mask < n; mask <<= 1) {
    const int vchild = vrank + mask;
    if (vchild >= n) break;
    const int child = (vchild + root) % n;
    comm.SendT(child, tag, std::span<const float>(data.data(), data.size()));
  }
}

void Reduce(Communicator& comm, int root, std::span<float> data, int tag) {
  const int n = comm.size();
  if (n == 1) return;
  const int vrank = (comm.rank() - root + n) % n;
  std::vector<float> incoming(data.size());
  // Binomial tree: in round k, virtual ranks with bit k set send to
  // (vrank - 2^k); receivers accumulate.
  for (int mask = 1; mask < n; mask <<= 1) {
    if (vrank & mask) {
      const int vdst = vrank - mask;
      const int dst = (vdst + root) % n;
      comm.SendT(dst, tag,
                 std::span<const float>(data.data(), data.size()));
      return;  // this rank is done after sending
    }
    const int vsrc = vrank + mask;
    if (vsrc < n) {
      const int src = (vsrc + root) % n;
      comm.RecvT(src, tag, std::span<float>(incoming));
      AddInto(data, incoming);
    }
  }
}

std::vector<ShardExtent> ComputeShards(std::size_t n, int parts) {
  EXACLIM_CHECK(parts >= 1, "shard parts must be >= 1");
  std::vector<ShardExtent> shards(static_cast<std::size_t>(parts));
  const std::size_t base = n / static_cast<std::size_t>(parts);
  const std::size_t extra = n % static_cast<std::size_t>(parts);
  std::size_t offset = 0;
  for (int i = 0; i < parts; ++i) {
    const std::size_t count =
        base + (static_cast<std::size_t>(i) < extra ? 1 : 0);
    shards[static_cast<std::size_t>(i)] = {offset, count};
    offset += count;
  }
  return shards;
}

void ReduceScatterRing(Communicator& comm, std::span<float> data, int tag) {
  const int n = comm.size();
  if (n == 1) return;
  const auto shards = ComputeShards(data.size(), n);
  const int rank = comm.rank();
  const int next = (rank + 1) % n;
  const int prev = (rank - 1 + n) % n;
  std::vector<float> incoming(data.size());

  // Round k: send shard (rank - k), receive and accumulate shard
  // (rank - k - 1). After n-1 rounds rank r holds the full sum of shard
  // (r+1) mod n.
  for (int k = 0; k < n - 1; ++k) {
    const int send_shard = ((rank - k) % n + n) % n;
    const int recv_shard = ((rank - k - 1) % n + n) % n;
    const auto& s = shards[static_cast<std::size_t>(send_shard)];
    const auto& r = shards[static_cast<std::size_t>(recv_shard)];
    comm.SendT(next, tag + k,
               std::span<const float>(data.data() + s.offset, s.count));
    comm.RecvT(prev, tag + k,
               std::span<float>(incoming.data(), r.count));
    AddInto(std::span<float>(data.data() + r.offset, r.count),
            std::span<const float>(incoming.data(), r.count));
  }
}

void AllgatherRing(Communicator& comm, std::span<float> data, int tag) {
  const int n = comm.size();
  if (n == 1) return;
  const auto shards = ComputeShards(data.size(), n);
  const int rank = comm.rank();
  const int next = (rank + 1) % n;
  const int prev = (rank - 1 + n) % n;

  // Round k: send shard (rank + 1 - k), receive shard (rank - k).
  for (int k = 0; k < n - 1; ++k) {
    const int send_shard = ((rank + 1 - k) % n + n) % n;
    const int recv_shard = ((rank - k) % n + n) % n;
    const auto& s = shards[static_cast<std::size_t>(send_shard)];
    const auto& r = shards[static_cast<std::size_t>(recv_shard)];
    comm.SendT(next, tag + k,
               std::span<const float>(data.data() + s.offset, s.count));
    comm.RecvT(prev, tag + k,
               std::span<float>(data.data() + r.offset, r.count));
  }
}

const char* ToString(AllreduceAlgo algo) {
  switch (algo) {
    case AllreduceAlgo::kRing: return "ring";
    case AllreduceAlgo::kTree: return "tree";
    case AllreduceAlgo::kRecursiveDoubling: return "recursive-doubling";
  }
  return "?";
}

namespace {

bool IsPowerOfTwo(int n) { return n > 0 && (n & (n - 1)) == 0; }

void AllreduceRecursiveDoubling(Communicator& comm, std::span<float> data,
                                int tag) {
  const int n = comm.size();
  std::vector<float> incoming(data.size());
  int round = 0;
  for (int mask = 1; mask < n; mask <<= 1, ++round) {
    const int partner = comm.rank() ^ mask;
    comm.SendT(partner, tag + round,
               std::span<const float>(data.data(), data.size()));
    comm.RecvT(partner, tag + round, std::span<float>(incoming));
    AddInto(data, incoming);
  }
}

}  // namespace

void Allreduce(Communicator& comm, std::span<float> data, AllreduceAlgo algo,
               int tag) {
  switch (algo) {
    case AllreduceAlgo::kRing:
      // For tiny payloads relative to rank count the ring degenerates;
      // still correct, and netsim models the latency cost.
      ReduceScatterRing(comm, data, tag);
      AllgatherRing(comm, data, tag + comm.size());
      return;
    case AllreduceAlgo::kTree:
      Reduce(comm, 0, data, tag);
      Broadcast(comm, 0, data, tag + 1);
      return;
    case AllreduceAlgo::kRecursiveDoubling:
      if (IsPowerOfTwo(comm.size())) {
        AllreduceRecursiveDoubling(comm, data, tag);
      } else {
        Reduce(comm, 0, data, tag);
        Broadcast(comm, 0, data, tag + 1);
      }
      return;
  }
}

void Gather(Communicator& comm, int root, std::span<const float> data,
            std::span<float> out, int tag) {
  const int n = comm.size();
  if (comm.rank() == root) {
    EXACLIM_CHECK(out.size() == data.size() * static_cast<std::size_t>(n),
                  "gather output buffer size mismatch");
    std::copy(data.begin(), data.end(),
              out.begin() + static_cast<std::ptrdiff_t>(
                                data.size() * static_cast<std::size_t>(root)));
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      comm.RecvT(r, tag,
                 std::span<float>(out.data() + data.size() *
                                                   static_cast<std::size_t>(r),
                                  data.size()));
    }
  } else {
    comm.SendT(root, tag, data);
  }
}

}  // namespace exaclim
