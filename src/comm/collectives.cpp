#include "comm/collectives.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/workspace.hpp"
#include "tensor/cast.hpp"

namespace exaclim {
namespace {

void AddInto(std::span<float> acc, std::span<const float> other) {
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += other[i];
}

/// Builds the failure result for a receive that did not complete. A
/// kTimeout while waiting on a *live* neighbour is usually a cascade —
/// that neighbour is itself stuck on the dead rank — so scan liveness
/// and name the actual culprit instead of the messenger.
CollectiveResult Fail(Communicator& comm, int waited_src,
                      RecvStatus status) {
  CollectiveResult result;
  result.suspect_rank = waited_src;
  result.status = status == RecvStatus::kPeerDead
                      ? CollectiveStatus::kPeerDead
                      : CollectiveStatus::kTimeout;
  if (result.status == CollectiveStatus::kTimeout) {
    for (int r = 0; r < comm.size(); ++r) {
      if (comm.PeerDead(r)) {
        result.status = CollectiveStatus::kPeerDead;
        result.suspect_rank = r;
        break;
      }
    }
  }
  return result;
}

/// How often a waiting rank re-checks liveness. A world collective can
/// only complete if every rank participates, so a death *anywhere*
/// should fail it promptly — not after the whole deadline — even when
/// this rank's wait edge is with a live peer that is itself stuck on
/// the dead rank (e.g. the far side of a broken ring).
constexpr double kDeadScanSlice = 0.025;

/// Receive from `src` in short slices, scanning the world for dead
/// ranks in between. On the healthy path this consumes exactly the same
/// messages as one long wait; on a death it returns kPeerDead within
/// one slice with `src` set to the culprit.
RecvResult RecvScanningForDead(Communicator& comm, int src, int tag,
                               const Deadline& deadline) {
  for (;;) {
    const double remaining = deadline.Remaining();
    const double slice = remaining == kNoTimeout
                             ? kDeadScanSlice
                             : std::min(kDeadScanSlice, remaining);
    RecvResult r = comm.RecvTimeout(src, tag, slice);
    if (r.status == RecvStatus::kPeerDead) {
      r.src = src;
      return r;
    }
    if (r.status == RecvStatus::kOk) return r;
    for (int rank = 0; rank < comm.size(); ++rank) {
      if (comm.PeerDead(rank)) {
        r.status = RecvStatus::kPeerDead;
        r.src = rank;
        return r;
      }
    }
    if (deadline.Expired()) return r;
  }
}

/// Timed receive of exactly data.size() floats from src. kOk fills
/// `data`; anything else leaves it untouched and reports the suspect.
CollectiveResult TimedRecvFloats(Communicator& comm, int src, int tag,
                                 std::span<float> data,
                                 const Deadline& deadline) {
  RecvResult r = RecvScanningForDead(comm, src, tag, deadline);
  if (!r.ok()) {
    return Fail(comm, r.status == RecvStatus::kPeerDead ? r.src : src,
                r.status);
  }
  EXACLIM_CHECK(r.payload.size() == data.size() * sizeof(float),
                "collective recv size mismatch: got "
                    << r.payload.size() << " expected "
                    << data.size() * sizeof(float) << " (tag " << tag
                    << ")");
  if (!r.payload.empty()) {
    std::memcpy(data.data(), r.payload.data(), r.payload.size());
  }
  return {};
}

/// Throws on a failed blocking collective — the pre-elastic contract
/// (unbounded Recv from a dead peer threw exaclim::Error).
void Require(Communicator& comm, const char* what,
             const CollectiveResult& result) {
  EXACLIM_CHECK(result.ok(),
                "rank " << comm.rank() << ": blocking " << what
                        << " cannot complete: rank " << result.suspect_rank
                        << (result.status == CollectiveStatus::kPeerDead
                                ? " is dead"
                                : " is unresponsive"));
}

}  // namespace

const char* ToString(CollectiveStatus status) {
  switch (status) {
    case CollectiveStatus::kOk: return "ok";
    case CollectiveStatus::kPeerDead: return "peer-dead";
    case CollectiveStatus::kTimeout: return "timeout";
  }
  return "?";
}

CollectiveResult TryBarrier(Communicator& comm, const Deadline& deadline,
                            int tag) {
  const int n = comm.size();
  const char token = 1;
  for (int k = 1; k < n; k <<= 1) {
    const int dst = (comm.rank() + k) % n;
    const int src = (comm.rank() - k % n + n) % n;
    comm.SendValue(dst, tag, token);
    const RecvResult r = RecvScanningForDead(comm, src, tag, deadline);
    if (!r.ok()) {
      return Fail(comm, r.status == RecvStatus::kPeerDead ? r.src : src,
                  r.status);
    }
  }
  return {};
}

void Barrier(Communicator& comm, int tag) {
  Require(comm, "Barrier", TryBarrier(comm, Deadline(kNoTimeout), tag));
}

CollectiveResult TryBroadcast(Communicator& comm, int root,
                              std::span<float> data,
                              const Deadline& deadline, int tag) {
  const int n = comm.size();
  if (n == 1) return {};
  // Virtual rank with root at 0; binomial tree over virtual ranks.
  const int vrank = (comm.rank() - root + n) % n;
  // Receive from parent (highest set bit), unless root.
  if (vrank != 0) {
    int mask = 1;
    while (mask <= vrank) mask <<= 1;
    mask >>= 1;
    const int vparent = vrank - mask;
    const int parent = (vparent + root) % n;
    CollectiveResult r = TimedRecvFloats(comm, parent, tag, data, deadline);
    if (!r.ok()) return r;
  }
  // Forward to children.
  int mask = 1;
  while (mask <= vrank) mask <<= 1;
  for (; mask < n; mask <<= 1) {
    const int vchild = vrank + mask;
    if (vchild >= n) break;
    const int child = (vchild + root) % n;
    comm.SendT(child, tag, std::span<const float>(data.data(), data.size()));
  }
  return {};
}

void Broadcast(Communicator& comm, int root, std::span<float> data,
               int tag) {
  Require(comm, "Broadcast",
          TryBroadcast(comm, root, data, Deadline(kNoTimeout), tag));
}

CollectiveResult TryReduce(Communicator& comm, int root,
                           std::span<float> data, const Deadline& deadline,
                           int tag) {
  const int n = comm.size();
  if (n == 1) return {};
  const int vrank = (comm.rank() - root + n) % n;
  std::vector<float> incoming(data.size());
  // Binomial tree: in round k, virtual ranks with bit k set send to
  // (vrank - 2^k); receivers accumulate.
  for (int mask = 1; mask < n; mask <<= 1) {
    if (vrank & mask) {
      const int vdst = vrank - mask;
      const int dst = (vdst + root) % n;
      comm.SendT(dst, tag,
                 std::span<const float>(data.data(), data.size()));
      return {};  // this rank is done after sending
    }
    const int vsrc = vrank + mask;
    if (vsrc < n) {
      const int src = (vsrc + root) % n;
      CollectiveResult r =
          TimedRecvFloats(comm, src, tag, std::span<float>(incoming),
                          deadline);
      if (!r.ok()) return r;
      AddInto(data, incoming);
    }
  }
  return {};
}

void Reduce(Communicator& comm, int root, std::span<float> data, int tag) {
  Require(comm, "Reduce",
          TryReduce(comm, root, data, Deadline(kNoTimeout), tag));
}

std::vector<ShardExtent> ComputeShards(std::size_t n, int parts) {
  EXACLIM_CHECK(parts >= 1, "shard parts must be >= 1");
  std::vector<ShardExtent> shards(static_cast<std::size_t>(parts));
  const std::size_t base = n / static_cast<std::size_t>(parts);
  const std::size_t extra = n % static_cast<std::size_t>(parts);
  std::size_t offset = 0;
  for (int i = 0; i < parts; ++i) {
    const std::size_t count =
        base + (static_cast<std::size_t>(i) < extra ? 1 : 0);
    shards[static_cast<std::size_t>(i)] = {offset, count};
    offset += count;
  }
  return shards;
}

CollectiveResult TryReduceScatterRing(Communicator& comm,
                                      std::span<float> data,
                                      const Deadline& deadline, int tag) {
  const int n = comm.size();
  if (n == 1) return {};
  const auto shards = ComputeShards(data.size(), n);
  const int rank = comm.rank();
  const int next = (rank + 1) % n;
  const int prev = (rank - 1 + n) % n;
  std::vector<float> incoming(data.size());

  // Round k: send shard (rank - k), receive and accumulate shard
  // (rank - k - 1). After n-1 rounds rank r holds the full sum of shard
  // (r+1) mod n.
  for (int k = 0; k < n - 1; ++k) {
    const int send_shard = ((rank - k) % n + n) % n;
    const int recv_shard = ((rank - k - 1) % n + n) % n;
    const auto& s = shards[static_cast<std::size_t>(send_shard)];
    const auto& r = shards[static_cast<std::size_t>(recv_shard)];
    comm.SendT(next, tag + k,
               std::span<const float>(data.data() + s.offset, s.count));
    CollectiveResult recv = TimedRecvFloats(
        comm, prev, tag + k, std::span<float>(incoming.data(), r.count),
        deadline);
    if (!recv.ok()) return recv;
    AddInto(std::span<float>(data.data() + r.offset, r.count),
            std::span<const float>(incoming.data(), r.count));
  }
  return {};
}

void ReduceScatterRing(Communicator& comm, std::span<float> data, int tag) {
  Require(comm, "ReduceScatterRing",
          TryReduceScatterRing(comm, data, Deadline(kNoTimeout), tag));
}

CollectiveResult TryAllgatherRing(Communicator& comm, std::span<float> data,
                                  const Deadline& deadline, int tag) {
  const int n = comm.size();
  if (n == 1) return {};
  const auto shards = ComputeShards(data.size(), n);
  const int rank = comm.rank();
  const int next = (rank + 1) % n;
  const int prev = (rank - 1 + n) % n;

  // Round k: send shard (rank + 1 - k), receive shard (rank - k).
  for (int k = 0; k < n - 1; ++k) {
    const int send_shard = ((rank + 1 - k) % n + n) % n;
    const int recv_shard = ((rank - k) % n + n) % n;
    const auto& s = shards[static_cast<std::size_t>(send_shard)];
    const auto& r = shards[static_cast<std::size_t>(recv_shard)];
    comm.SendT(next, tag + k,
               std::span<const float>(data.data() + s.offset, s.count));
    CollectiveResult recv = TimedRecvFloats(
        comm, prev, tag + k,
        std::span<float>(data.data() + r.offset, r.count), deadline);
    if (!recv.ok()) return recv;
  }
  return {};
}

void AllgatherRing(Communicator& comm, std::span<float> data, int tag) {
  Require(comm, "AllgatherRing",
          TryAllgatherRing(comm, data, Deadline(kNoTimeout), tag));
}

const char* ToString(AllreduceAlgo algo) {
  switch (algo) {
    case AllreduceAlgo::kRing: return "ring";
    case AllreduceAlgo::kTree: return "tree";
    case AllreduceAlgo::kRecursiveDoubling: return "recursive-doubling";
  }
  return "?";
}

namespace {

bool IsPowerOfTwo(int n) { return n > 0 && (n & (n - 1)) == 0; }

CollectiveResult TryAllreduceRecursiveDoubling(Communicator& comm,
                                               std::span<float> data,
                                               const Deadline& deadline,
                                               int tag) {
  const int n = comm.size();
  std::vector<float> incoming(data.size());
  int round = 0;
  for (int mask = 1; mask < n; mask <<= 1, ++round) {
    const int partner = comm.rank() ^ mask;
    comm.SendT(partner, tag + round,
               std::span<const float>(data.data(), data.size()));
    CollectiveResult r = TimedRecvFloats(
        comm, partner, tag + round, std::span<float>(incoming), deadline);
    if (!r.ok()) return r;
    AddInto(data, incoming);
  }
  return {};
}

}  // namespace

CollectiveResult TryAllreduce(Communicator& comm, std::span<float> data,
                              AllreduceAlgo algo, const Deadline& deadline,
                              int tag) {
  switch (algo) {
    case AllreduceAlgo::kRing: {
      // For tiny payloads relative to rank count the ring degenerates;
      // still correct, and netsim models the latency cost.
      CollectiveResult r = TryReduceScatterRing(comm, data, deadline, tag);
      if (!r.ok()) return r;
      return TryAllgatherRing(comm, data, deadline, tag + comm.size());
    }
    case AllreduceAlgo::kTree: {
      CollectiveResult r = TryReduce(comm, 0, data, deadline, tag);
      if (!r.ok()) return r;
      return TryBroadcast(comm, 0, data, deadline, tag + 1);
    }
    case AllreduceAlgo::kRecursiveDoubling: {
      if (IsPowerOfTwo(comm.size())) {
        return TryAllreduceRecursiveDoubling(comm, data, deadline, tag);
      }
      CollectiveResult r = TryReduce(comm, 0, data, deadline, tag);
      if (!r.ok()) return r;
      return TryBroadcast(comm, 0, data, deadline, tag + 1);
    }
  }
  return {};
}

void Allreduce(Communicator& comm, std::span<float> data, AllreduceAlgo algo,
               int tag) {
  Require(comm, "Allreduce",
          TryAllreduce(comm, data, algo, Deadline(kNoTimeout), tag));
}

CollectiveResult TryGather(Communicator& comm, int root,
                           std::span<const float> data, std::span<float> out,
                           const Deadline& deadline, int tag) {
  const int n = comm.size();
  if (comm.rank() == root) {
    EXACLIM_CHECK(out.size() == data.size() * static_cast<std::size_t>(n),
                  "gather output buffer size mismatch");
    std::copy(data.begin(), data.end(),
              out.begin() + static_cast<std::ptrdiff_t>(
                                data.size() * static_cast<std::size_t>(root)));
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      CollectiveResult recv = TimedRecvFloats(
          comm, r, tag,
          std::span<float>(out.data() + data.size() *
                                            static_cast<std::size_t>(r),
                           data.size()),
          deadline);
      if (!recv.ok()) return recv;
    }
  } else {
    comm.SendT(root, tag, data);
  }
  return {};
}

void Gather(Communicator& comm, int root, std::span<const float> data,
            std::span<float> out, int tag) {
  Require(comm, "Gather",
          TryGather(comm, root, data, out, Deadline(kNoTimeout), tag));
}

const char* ToString(WireFormat wire) {
  switch (wire) {
    case WireFormat::kFP32: return "fp32";
    case WireFormat::kFP16: return "fp16";
  }
  return "?";
}

void SendFloats(Communicator& comm, int dst, int tag,
                std::span<const float> data, WireFormat wire) {
  if (wire == WireFormat::kFP32) {
    comm.SendT(dst, tag, data);
    return;
  }
  // Pack into the thread-local wire scratch; Send buffers (copies) the
  // payload before returning, so the scratch is immediately reusable.
  std::uint16_t* packed = AcquireScratchU16(ScratchSlot::kWirePack,
                                            data.size());
  PackHalf(data, std::span<std::uint16_t>(packed, data.size()));
  comm.Send(dst, tag,
            std::as_bytes(std::span<const std::uint16_t>(packed,
                                                         data.size())));
}

void DecodeFloats(std::span<const std::byte> payload, std::span<float> out,
                  WireFormat wire) {
  EXACLIM_CHECK(payload.size() == WireBytes(out.size(), wire),
                "wire payload size mismatch: got "
                    << payload.size() << " expected "
                    << WireBytes(out.size(), wire) << " ("
                    << ToString(wire) << ")");
  if (out.empty()) return;
  if (wire == WireFormat::kFP32) {
    std::memcpy(out.data(), payload.data(), payload.size());
    return;
  }
  UnpackHalf(std::span<const std::uint16_t>(
                 reinterpret_cast<const std::uint16_t*>(payload.data()),
                 out.size()),
             out);
}

}  // namespace exaclim
