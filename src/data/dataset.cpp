#include "data/dataset.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace exaclim {

ClimateDataset::ClimateDataset(const Options& opts)
    : opts_(opts),
      generator_(opts.generator),
      labeler_(opts.labeler),
      train_size_(opts.num_samples * 8 / 10),
      test_size_(opts.num_samples / 10) {
  EXACLIM_CHECK(opts_.num_samples >= 10, "need at least 10 samples");
  for (const int c : opts_.channels) {
    EXACLIM_CHECK(c >= 0 && c < kNumClimateChannels,
                  "bad channel index " << c);
  }
}

std::int64_t ClimateDataset::size(DatasetSplit split) const {
  switch (split) {
    case DatasetSplit::kTrain: return train_size_;
    case DatasetSplit::kTest: return test_size_;
    case DatasetSplit::kValidation:
      return opts_.num_samples - train_size_ - test_size_;
  }
  return 0;
}

std::int64_t ClimateDataset::GlobalIndex(DatasetSplit split,
                                         std::int64_t i) const {
  EXACLIM_CHECK(i >= 0 && i < size(split), "sample index out of range");
  switch (split) {
    case DatasetSplit::kTrain: return i;
    case DatasetSplit::kTest: return train_size_ + i;
    case DatasetSplit::kValidation: return train_size_ + test_size_ + i;
  }
  return 0;
}

ClimateSample ClimateDataset::GetSample(DatasetSplit split,
                                        std::int64_t i) const {
  ClimateSample sample =
      generator_.Generate(opts_.seed, GlobalIndex(split, i));
  labeler_.LabelInPlace(sample);
  if (!opts_.use_heuristic_labels) sample.labels = sample.truth;
  return sample;
}

Batch ClimateDataset::MakeBatch(
    DatasetSplit split, std::span<const std::int64_t> indices) const {
  EXACLIM_CHECK(!indices.empty(), "empty batch");
  const std::int64_t n = static_cast<std::int64_t>(indices.size());
  const std::int64_t c = num_channels();
  const std::int64_t h = height(), w = width();
  Batch batch;
  batch.fields = Tensor(TensorShape::NCHW(n, c, h, w));
  batch.labels.resize(static_cast<std::size_t>(n * h * w));

  for (std::int64_t b = 0; b < n; ++b) {
    const ClimateSample sample =
        GetSample(split, indices[static_cast<std::size_t>(b)]);
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const int src_c = opts_.channels.empty()
                            ? static_cast<int>(ci)
                            : opts_.channels[static_cast<std::size_t>(ci)];
      std::memcpy(batch.fields.Raw() + ((b * c + ci) * h * w),
                  sample.fields.Raw() + src_c * h * w,
                  sizeof(float) * static_cast<std::size_t>(h * w));
    }
    std::memcpy(batch.labels.data() + b * h * w, sample.labels.data(),
                static_cast<std::size_t>(h * w));
  }
  return batch;
}

std::vector<std::int64_t> ClimateDataset::LocalShard(
    int rank, std::int64_t images_per_rank) const {
  Rng rng = Rng(opts_.seed ^ 0x5174ull).Fork(static_cast<std::uint64_t>(rank));
  std::vector<std::int64_t> shard(static_cast<std::size_t>(images_per_rank));
  for (auto& idx : shard) {
    idx = rng.Int(0, train_size_ - 1);
  }
  return shard;
}

std::array<double, kNumClimateClasses> ClimateDataset::MeasureFrequencies(
    std::int64_t n) const {
  std::array<std::int64_t, kNumClimateClasses> counts{};
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < std::min(n, train_size_); ++i) {
    const ClimateSample sample = GetSample(DatasetSplit::kTrain, i);
    for (const std::uint8_t l : sample.labels) {
      ++counts[l];
      ++total;
    }
  }
  std::array<double, kNumClimateClasses> freq{};
  for (int c = 0; c < kNumClimateClasses; ++c) {
    // Avoid zero frequencies (weights would blow up): floor at one pixel.
    freq[static_cast<std::size_t>(c)] =
        std::max<double>(counts[static_cast<std::size_t>(c)], 1) /
        static_cast<double>(total);
  }
  return freq;
}

}  // namespace exaclim
