#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "data/climate.hpp"
#include "data/labeler.hpp"

namespace exaclim {

/// The Piz Daint 4-channel subset (Sec V-B3: "4 channels that were
/// thought to be the most important").
inline constexpr std::array<int, 4> kPizDaintChannels{kTMQ, kU850, kV850,
                                                      kPSL};

enum class DatasetSplit { kTrain, kTest, kValidation };

/// A batch ready for the network: fields [N, C, H, W] and per-pixel
/// labels (N*H*W, row-major matching the tensor layout).
struct Batch {
  Tensor fields;
  std::vector<std::uint8_t> labels;
};

/// Deterministic synthetic climate dataset with the paper's 80/10/10
/// train/test/validation split (Sec III-A2). Samples are generated on
/// demand from (seed, index) and labelled by the TECA-style heuristics,
/// so the "dataset" needs no storage — the io/ module handles the
/// serialised-file view of the same samples for the staging experiments.
class ClimateDataset {
 public:
  struct Options {
    ClimateGeneratorOptions generator{};
    HeuristicLabelerOptions labeler{};
    std::int64_t num_samples = 1000;
    std::uint64_t seed = 2018;
    /// Channel subset fed to the network; empty = all 16.
    std::vector<int> channels{};
    /// Train with the heuristic labels (as the paper did) or the planted
    /// truth (upper-bound ablation).
    bool use_heuristic_labels = true;
  };

  explicit ClimateDataset(const Options& opts);

  std::int64_t size(DatasetSplit split) const;
  std::int64_t num_channels() const {
    return opts_.channels.empty()
               ? kNumClimateChannels
               : static_cast<std::int64_t>(opts_.channels.size());
  }
  std::int64_t height() const { return opts_.generator.height; }
  std::int64_t width() const { return opts_.generator.width; }

  /// Generates + labels sample `i` of the split.
  ClimateSample GetSample(DatasetSplit split, std::int64_t i) const;

  /// Assembles a batch from split-local indices (with channel subsetting).
  Batch MakeBatch(DatasetSplit split,
                  std::span<const std::int64_t> indices) const;

  /// The per-rank local-shard sampling of Sec V-A1: each rank
  /// independently draws `images_per_rank` random train indices; batches
  /// drawn from these shards are statistically similar to global ones.
  std::vector<std::int64_t> LocalShard(int rank, std::int64_t images_per_rank)
      const;

  /// Measures label class frequencies over the first `n` train samples —
  /// the input to MakeClassWeights.
  std::array<double, kNumClimateClasses> MeasureFrequencies(
      std::int64_t n) const;

  const Options& options() const { return opts_; }

 private:
  std::int64_t GlobalIndex(DatasetSplit split, std::int64_t i) const;

  Options opts_;
  ClimateGenerator generator_;
  HeuristicLabeler labeler_;
  std::int64_t train_size_;
  std::int64_t test_size_;
};

}  // namespace exaclim
