#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace exaclim {

/// Segmentation classes (Sec III-A2).
enum ClimateClass : std::uint8_t {
  kBackground = 0,
  kAtmosphericRiver = 1,
  kTropicalCyclone = 2,
};
inline constexpr int kNumClimateClasses = 3;

/// The 16 CAM5 variables used on Summit (Sec V-B3): moisture, winds,
/// humidity, pressures, temperatures, precipitation and geopotential
/// heights. Indices into the channel dimension of ClimateSample::fields.
enum ClimateChannel : int {
  kTMQ = 0,    // total (integrated) water vapour — the Fig 7 backdrop
  kU850 = 1,   // zonal wind at 850 hPa
  kV850 = 2,   // meridional wind at 850 hPa
  kUBOT = 3,   // lowest-level zonal wind
  kVBOT = 4,   // lowest-level meridional wind
  kQREFHT = 5, // reference-height humidity
  kPS = 6,     // surface pressure
  kPSL = 7,    // sea-level pressure — TC detection input
  kT200 = 8,   // temperature at 200 hPa — warm-core check
  kT500 = 9,   // temperature at 500 hPa
  kPRECT = 10, // total precipitation
  kTS = 11,    // surface temperature
  kTREFHT = 12,// reference-height temperature
  kZ100 = 13,  // geopotential height at 100 hPa
  kZ200 = 14,  // geopotential height at 200 hPa
  kZBOT = 15,  // lowest-level geopotential height
};
inline constexpr int kNumClimateChannels = 16;

std::string_view ChannelName(int channel);

/// One simulated CAM5 snapshot: `channels` x H x W fields, the planted
/// ground-truth mask, and (after labelling) the heuristic mask used for
/// training. Fields are in normalised physical-anomaly units.
struct ClimateSample {
  Tensor fields;                          // [C, H, W]
  std::vector<std::uint8_t> truth;        // planted event mask, H*W
  std::vector<std::uint8_t> labels;       // heuristic (TECA-style) mask
  std::int64_t height = 0;
  std::int64_t width = 0;
};

/// Synthetic CAM5 generator (the data substitution described in
/// DESIGN.md): smooth large-scale background circulation per channel,
/// plus planted tropical cyclones (azimuthal vortices with a deep PSL
/// minimum, warm core, moisture and rain signatures) and atmospheric
/// rivers (long narrow moisture filaments advecting poleward). Event
/// counts/sizes are tuned so label frequencies approximate the paper's
/// 98.2 / 1.7 / 0.1 % class imbalance.
/// All 16 channels are always generated; channel sub-selection (the
/// 4-channel Piz Daint mode of Sec V-B3) happens at batch assembly in
/// data/dataset.hpp, as in the paper where both modes read the same CAM5
/// output.
struct ClimateGeneratorOptions {
  std::int64_t height = 96;
  std::int64_t width = 144;
  double mean_cyclones = 0.8;
  double mean_rivers = 1.0;
  /// Scale of the unstructured background noise (relative to signals).
  float background_noise = 0.35f;
};

class ClimateGenerator {
 public:
  explicit ClimateGenerator(const ClimateGeneratorOptions& opts);

  /// Generates sample `index` deterministically from (seed, index).
  ClimateSample Generate(std::uint64_t seed, std::int64_t index) const;

  const ClimateGeneratorOptions& options() const { return opts_; }

 private:
  void PaintBackground(Tensor& fields, Rng& rng) const;
  void PlantCyclone(ClimateSample& sample, Rng& rng) const;
  void PlantRiver(ClimateSample& sample, Rng& rng) const;

  ClimateGeneratorOptions opts_;
};

}  // namespace exaclim
