#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace exaclim {

/// Physically-consistent data augmentation for global climate grids.
/// Longitude is periodic, so rolling a snapshot in x produces another
/// valid snapshot; mirroring latitude is valid if the meridional wind
/// components flip sign (southward becomes northward). Labels transform
/// with the fields. The fixed training set is the scaling bottleneck the
/// paper notes ("the size of the overall training set remains fixed"),
/// which augmentation stretches.
struct AugmentOptions {
  bool roll_longitude = true;
  bool mirror_latitude = true;
  /// Channel indices (within the batch's channel axis) holding
  /// meridional winds, negated under a latitude mirror.
  std::vector<std::int64_t> meridional_channels;
  /// Additive Gaussian field noise (0 disables) — observation-noise
  /// robustness.
  float noise_stddev = 0.0f;
};

/// Rolls every sample of the batch by `shift` pixels in longitude
/// (periodic).
void RollLongitude(Batch& batch, std::int64_t shift, std::int64_t height,
                   std::int64_t width);

/// Mirrors latitude (flips y), negating the given meridional channels.
void MirrorLatitude(Batch& batch, std::span<const std::int64_t> v_channels,
                    std::int64_t height, std::int64_t width);

/// Applies a random augmentation drawn from `rng` (independent per call).
void AugmentBatch(Batch& batch, const AugmentOptions& opts, Rng& rng,
                  std::int64_t height, std::int64_t width);

}  // namespace exaclim
