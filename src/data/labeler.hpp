#pragma once

#include <cstdint>
#include <vector>

#include "data/climate.hpp"

namespace exaclim {

/// TECA-style heuristic ground-truth production (Sec III-A2): the paper's
/// training labels come not from hand annotation but from threshold
/// heuristics — TECA [1,11] finds tropical cyclones from sea-level
/// pressure minima with a warm-core and wind criterion, and a floodfill
/// of integrated water vapour produces atmospheric-river masks [12].
/// This class reimplements that pipeline on the synthetic fields.
struct HeuristicLabelerOptions {
  // --- TC detection ---
  /// A pixel is a TC candidate core if PSL anomaly is below this.
  float psl_depth_threshold = -1.4f;
  /// Warm-core requirement: mean T200 anomaly over the core must exceed.
  float warm_core_threshold = 0.3f;
  /// Minimum peak wind speed (|U850,V850|) within the candidate.
  float wind_speed_threshold = 1.0f;
  /// Candidate core size limits in pixels.
  std::int64_t tc_min_pixels = 3;
  std::int64_t tc_max_pixels = 400;

  // --- AR detection (floodfill of TMQ) ---
  /// Moisture anomaly threshold seeding the floodfill.
  float tmq_threshold = 1.25f;
  /// Geometry filters on connected components.
  std::int64_t ar_min_pixels = 25;
  /// Minimum elongation (bounding-box diagonal / sqrt(area)).
  double ar_min_elongation = 1.8;
};

class HeuristicLabeler {
 public:
  HeuristicLabeler() : HeuristicLabelerOptions_{} {}
  explicit HeuristicLabeler(const HeuristicLabelerOptions& opts)
      : HeuristicLabelerOptions_(opts) {}

  /// Produces the label mask for a sample (does not read sample.truth).
  std::vector<std::uint8_t> Label(const ClimateSample& sample) const;

  /// Convenience: labels the sample in place (fills sample.labels).
  void LabelInPlace(ClimateSample& sample) const {
    sample.labels = Label(sample);
  }

  const HeuristicLabelerOptions& options() const {
    return HeuristicLabelerOptions_;
  }

 private:
  HeuristicLabelerOptions HeuristicLabelerOptions_;
};

/// 4-connected components of a boolean mask; returns a component id per
/// pixel (-1 outside the mask) and the number of components. Longitude
/// wraps periodically, matching the global grid.
struct ComponentMap {
  std::vector<int> ids;
  int count = 0;
};
ComponentMap ConnectedComponents(const std::vector<std::uint8_t>& mask,
                                 std::int64_t h, std::int64_t w);

}  // namespace exaclim
