#include "data/labeler.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/error.hpp"

namespace exaclim {

ComponentMap ConnectedComponents(const std::vector<std::uint8_t>& mask,
                                 std::int64_t h, std::int64_t w) {
  EXACLIM_CHECK(static_cast<std::int64_t>(mask.size()) == h * w,
                "mask size mismatch");
  ComponentMap result;
  result.ids.assign(mask.size(), -1);
  for (std::int64_t start = 0; start < h * w; ++start) {
    if (!mask[static_cast<std::size_t>(start)] ||
        result.ids[static_cast<std::size_t>(start)] >= 0) {
      continue;
    }
    // BFS floodfill with periodic longitude.
    const int id = result.count++;
    std::deque<std::int64_t> frontier{start};
    result.ids[static_cast<std::size_t>(start)] = id;
    while (!frontier.empty()) {
      const std::int64_t p = frontier.front();
      frontier.pop_front();
      const std::int64_t y = p / w, x = p % w;
      const std::int64_t neighbours[4] = {
          (y > 0) ? p - w : -1,
          (y + 1 < h) ? p + w : -1,
          y * w + (x + 1) % w,
          y * w + (x - 1 + w) % w,
      };
      for (const std::int64_t q : neighbours) {
        if (q < 0) continue;
        if (mask[static_cast<std::size_t>(q)] &&
            result.ids[static_cast<std::size_t>(q)] < 0) {
          result.ids[static_cast<std::size_t>(q)] = id;
          frontier.push_back(q);
        }
      }
    }
  }
  return result;
}

namespace {

struct ComponentStats {
  std::int64_t pixels = 0;
  std::int64_t min_y = 1 << 30, max_y = -1;
  std::int64_t min_x = 1 << 30, max_x = -1;  // note: ignores wrap for bbox
  double sum_t200 = 0.0;
  double max_wind_sq = 0.0;
};

}  // namespace

std::vector<std::uint8_t> HeuristicLabeler::Label(
    const ClimateSample& sample) const {
  const auto& opts = HeuristicLabelerOptions_;
  const std::int64_t h = sample.height, w = sample.width;
  const Tensor& f = sample.fields;
  const auto field = [&](int c, std::int64_t p) {
    return f.Data()[static_cast<std::size_t>(c * h * w + p)];
  };

  std::vector<std::uint8_t> labels(static_cast<std::size_t>(h * w),
                                   kBackground);

  // ---- TC detection: floodfill deep PSL minima, then verify warm core
  // and wind criterion (TECA's multi-variate thresholds).
  std::vector<std::uint8_t> tc_mask(labels.size(), 0);
  for (std::int64_t p = 0; p < h * w; ++p) {
    tc_mask[static_cast<std::size_t>(p)] =
        field(kPSL, p) < opts.psl_depth_threshold ? 1 : 0;
  }
  const ComponentMap tc_components = ConnectedComponents(tc_mask, h, w);
  std::vector<ComponentStats> tc_stats(
      static_cast<std::size_t>(tc_components.count));
  for (std::int64_t p = 0; p < h * w; ++p) {
    const int id = tc_components.ids[static_cast<std::size_t>(p)];
    if (id < 0) continue;
    auto& s = tc_stats[static_cast<std::size_t>(id)];
    ++s.pixels;
    s.sum_t200 += field(kT200, p);
    const double u = field(kU850, p), v = field(kV850, p);
    s.max_wind_sq = std::max(s.max_wind_sq, u * u + v * v);
  }
  std::vector<bool> tc_accepted(static_cast<std::size_t>(tc_components.count),
                                false);
  for (int id = 0; id < tc_components.count; ++id) {
    const auto& s = tc_stats[static_cast<std::size_t>(id)];
    const double mean_t200 = s.sum_t200 / static_cast<double>(s.pixels);
    tc_accepted[static_cast<std::size_t>(id)] =
        s.pixels >= opts.tc_min_pixels && s.pixels <= opts.tc_max_pixels &&
        mean_t200 > opts.warm_core_threshold &&
        std::sqrt(s.max_wind_sq) > opts.wind_speed_threshold;
  }

  // ---- AR detection: floodfill high-TMQ regions, then geometry filter
  // (long and narrow, reaching away from the deep tropics).
  std::vector<std::uint8_t> ar_mask(labels.size(), 0);
  for (std::int64_t p = 0; p < h * w; ++p) {
    // Exclude accepted TC cores from the moisture mask so a cyclone's
    // moist envelope is not double-counted as a river.
    const int tc_id = tc_components.ids[static_cast<std::size_t>(p)];
    const bool in_tc = tc_id >= 0 && tc_accepted[static_cast<std::size_t>(tc_id)];
    ar_mask[static_cast<std::size_t>(p)] =
        (!in_tc && field(kTMQ, p) > opts.tmq_threshold) ? 1 : 0;
  }
  const ComponentMap ar_components = ConnectedComponents(ar_mask, h, w);
  std::vector<ComponentStats> ar_stats(
      static_cast<std::size_t>(ar_components.count));
  for (std::int64_t p = 0; p < h * w; ++p) {
    const int id = ar_components.ids[static_cast<std::size_t>(p)];
    if (id < 0) continue;
    auto& s = ar_stats[static_cast<std::size_t>(id)];
    ++s.pixels;
    const std::int64_t y = p / w, x = p % w;
    s.min_y = std::min(s.min_y, y);
    s.max_y = std::max(s.max_y, y);
    s.min_x = std::min(s.min_x, x);
    s.max_x = std::max(s.max_x, x);
  }
  std::vector<bool> ar_accepted(static_cast<std::size_t>(ar_components.count),
                                false);
  for (int id = 0; id < ar_components.count; ++id) {
    const auto& s = ar_stats[static_cast<std::size_t>(id)];
    if (s.pixels < opts.ar_min_pixels) continue;
    const double dy = static_cast<double>(s.max_y - s.min_y + 1);
    const double dx = static_cast<double>(s.max_x - s.min_x + 1);
    const double diag = std::hypot(dx, dy);
    const double elongation = diag / std::sqrt(static_cast<double>(s.pixels));
    ar_accepted[static_cast<std::size_t>(id)] =
        elongation >= opts.ar_min_elongation;
  }

  for (std::int64_t p = 0; p < h * w; ++p) {
    const int tc_id = tc_components.ids[static_cast<std::size_t>(p)];
    if (tc_id >= 0 && tc_accepted[static_cast<std::size_t>(tc_id)]) {
      labels[static_cast<std::size_t>(p)] = kTropicalCyclone;
      continue;
    }
    const int ar_id = ar_components.ids[static_cast<std::size_t>(p)];
    if (ar_id >= 0 && ar_accepted[static_cast<std::size_t>(ar_id)]) {
      labels[static_cast<std::size_t>(p)] = kAtmosphericRiver;
    }
  }
  return labels;
}

}  // namespace exaclim
