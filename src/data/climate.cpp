#include "data/climate.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace exaclim {
namespace {

constexpr std::array<std::string_view, kNumClimateChannels> kChannelNames{
    "TMQ",  "U850",   "V850", "UBOT", "VBOT", "QREFHT", "PS",   "PSL",
    "T200", "T500",   "PRECT", "TS",  "TREFHT", "Z100", "Z200", "ZBOT"};

constexpr double kPi = 3.14159265358979323846;

/// Poisson sample via inversion (small means only).
int PoissonSample(Rng& rng, double mean) {
  const double l = std::exp(-mean);
  double p = 1.0;
  int k = 0;
  do {
    ++k;
    p *= rng.UniformDouble();
  } while (p > l);
  return k - 1;
}

float& FieldAt(Tensor& fields, int c, std::int64_t y, std::int64_t x,
               std::int64_t h, std::int64_t w) {
  (void)h;
  return fields.Data()[static_cast<std::size_t>((c * h + y) * w + x)];
}

}  // namespace

std::string_view ChannelName(int channel) {
  EXACLIM_CHECK(channel >= 0 && channel < kNumClimateChannels,
                "bad channel index " << channel);
  return kChannelNames[static_cast<std::size_t>(channel)];
}

ClimateGenerator::ClimateGenerator(const ClimateGeneratorOptions& opts)
    : opts_(opts) {
  EXACLIM_CHECK(opts_.height >= 16 && opts_.width >= 16,
                "grid too small for event synthesis");
}

void ClimateGenerator::PaintBackground(Tensor& fields, Rng& rng) const {
  const std::int64_t h = opts_.height, w = opts_.width;
  // Each channel: latitude-dependent mean state plus a few smooth
  // planetary waves plus white noise.
  for (int c = 0; c < kNumClimateChannels; ++c) {
    // Random planetary-wave mixture (low zonal/meridional wavenumbers).
    struct Wave {
      double kx, ky, phase, amp;
    };
    std::array<Wave, 3> waves;
    for (auto& wave : waves) {
      wave.kx = rng.Int(1, 4);
      wave.ky = rng.Int(1, 3);
      wave.phase = rng.UniformDouble(0, 2 * kPi);
      wave.amp = rng.UniformDouble(0.1, 0.35);
    }
    const float lat_slope = rng.Uniform(-0.6f, 0.6f);
    for (std::int64_t y = 0; y < h; ++y) {
      const double lat = static_cast<double>(y) / (h - 1) - 0.5;  // [-.5,.5]
      for (std::int64_t x = 0; x < w; ++x) {
        const double lon = static_cast<double>(x) / w;
        double v = lat_slope * lat;
        for (const auto& wave : waves) {
          v += wave.amp * std::sin(2 * kPi * (wave.kx * lon +
                                              wave.ky * (lat + 0.5)) +
                                   wave.phase);
        }
        v += rng.Normal(0.0f, opts_.background_noise);
        FieldAt(fields, c, y, x, h, w) = static_cast<float>(v);
      }
    }
  }
}

void ClimateGenerator::PlantCyclone(ClimateSample& sample, Rng& rng) const {
  const std::int64_t h = opts_.height, w = opts_.width;
  Tensor& f = sample.fields;
  // TCs live in the tropics band on either side of the equator.
  const bool north = rng.Bernoulli(0.5);
  const std::int64_t cy = north
                              ? rng.Int(h * 28 / 100, h * 44 / 100)
                              : rng.Int(h * 56 / 100, h * 72 / 100);
  const std::int64_t cx = rng.Int(0, w - 1);
  const double radius = rng.UniformDouble(0.013, 0.024) * w;
  const double intensity = rng.UniformDouble(2.2, 3.6);
  const double warm_core = intensity * 0.6;
  const std::int64_t reach = static_cast<std::int64_t>(radius * 3.5) + 1;

  for (std::int64_t dy = -reach; dy <= reach; ++dy) {
    const std::int64_t y = cy + dy;
    if (y < 0 || y >= h) continue;
    for (std::int64_t dx = -reach; dx <= reach; ++dx) {
      const std::int64_t x = (cx + dx % w + w) % w;  // periodic longitude
      const double r = std::sqrt(static_cast<double>(dy * dy + dx * dx));
      const double envelope = std::exp(-0.5 * (r / radius) * (r / radius));
      if (envelope < 1e-3) continue;
      // Deep pressure minimum.
      FieldAt(f, kPSL, y, x, h, w) -= static_cast<float>(intensity * envelope);
      FieldAt(f, kPS, y, x, h, w) -=
          static_cast<float>(0.8 * intensity * envelope);
      // Azimuthal vortex winds (Rankine-like profile).
      const double tangential =
          intensity * (r / radius) * std::exp(0.5 - 0.5 * (r / radius) *
                                                        (r / radius));
      if (r > 0) {
        const double ux = -static_cast<double>(dy) / r * tangential;
        const double vy = static_cast<double>(dx) / r * tangential;
        FieldAt(f, kU850, y, x, h, w) += static_cast<float>(ux);
        FieldAt(f, kV850, y, x, h, w) += static_cast<float>(vy);
        FieldAt(f, kUBOT, y, x, h, w) += static_cast<float>(0.8 * ux);
        FieldAt(f, kVBOT, y, x, h, w) += static_cast<float>(0.8 * vy);
      }
      // Moisture, rain and the upper-level warm core.
      FieldAt(f, kTMQ, y, x, h, w) += static_cast<float>(1.6 * intensity *
                                                         envelope);
      FieldAt(f, kPRECT, y, x, h, w) +=
          static_cast<float>(2.0 * intensity * envelope);
      FieldAt(f, kT200, y, x, h, w) +=
          static_cast<float>(warm_core * envelope);
      FieldAt(f, kT500, y, x, h, w) +=
          static_cast<float>(0.7 * warm_core * envelope);
      FieldAt(f, kZ200, y, x, h, w) +=
          static_cast<float>(0.4 * intensity * envelope);
      // Truth mask: the dynamically significant core (~1.6 radii).
      if (r <= 1.6 * radius) {
        sample.truth[static_cast<std::size_t>(y * w + x)] =
            kTropicalCyclone;
      }
    }
  }
}

void ClimateGenerator::PlantRiver(ClimateSample& sample, Rng& rng) const {
  const std::int64_t h = opts_.height, w = opts_.width;
  Tensor& f = sample.fields;
  // A quadratic Bezier filament from the tropics toward mid-latitudes.
  const bool north = rng.Bernoulli(0.5);
  const double y0 = north ? rng.UniformDouble(0.40, 0.48)
                          : rng.UniformDouble(0.52, 0.60);
  const double y2 = north ? rng.UniformDouble(0.08, 0.25)
                          : rng.UniformDouble(0.75, 0.92);
  const double x0 = rng.UniformDouble(0.0, 1.0);
  const double span = rng.UniformDouble(0.18, 0.38);  // zonal extent
  const double x2 = x0 + span;
  const double x1 = (x0 + x2) / 2 + rng.UniformDouble(-0.08, 0.08);
  const double y1 = (y0 + y2) / 2 + rng.UniformDouble(-0.08, 0.08);
  const double width = rng.UniformDouble(0.010, 0.017) * h;
  const double intensity = rng.UniformDouble(1.8, 2.8);

  const int steps = static_cast<int>(3.0 * span * w) + 8;
  for (int s = 0; s <= steps; ++s) {
    const double t = static_cast<double>(s) / steps;
    const double bx = (1 - t) * (1 - t) * x0 + 2 * (1 - t) * t * x1 +
                      t * t * x2;
    const double by = (1 - t) * (1 - t) * y0 + 2 * (1 - t) * t * y1 +
                      t * t * y2;
    // Filament direction for the wind signature.
    const double dx_dt = 2 * (1 - t) * (x1 - x0) + 2 * t * (x2 - x1);
    const double dy_dt = 2 * (1 - t) * (y1 - y0) + 2 * t * (y2 - y1);
    const double norm = std::hypot(dx_dt, dy_dt) + 1e-9;

    const std::int64_t cy = static_cast<std::int64_t>(by * h);
    const std::int64_t cx = static_cast<std::int64_t>(bx * w);
    const std::int64_t reach = static_cast<std::int64_t>(width * 3) + 1;
    for (std::int64_t dy = -reach; dy <= reach; ++dy) {
      const std::int64_t y = cy + dy;
      if (y < 0 || y >= h) continue;
      for (std::int64_t dx = -reach; dx <= reach; ++dx) {
        const std::int64_t x = ((cx + dx) % w + w) % w;
        const double r = std::sqrt(static_cast<double>(dy * dy + dx * dx));
        const double envelope = std::exp(-0.5 * (r / width) * (r / width));
        if (envelope < 5e-2) continue;
        FieldAt(f, kTMQ, y, x, h, w) +=
            static_cast<float>(intensity * envelope * 0.5);
        FieldAt(f, kU850, y, x, h, w) +=
            static_cast<float>(0.5 * intensity * envelope * dx_dt / norm);
        FieldAt(f, kV850, y, x, h, w) +=
            static_cast<float>(0.5 * intensity * envelope * dy_dt / norm);
        FieldAt(f, kPRECT, y, x, h, w) +=
            static_cast<float>(0.6 * intensity * envelope);
        FieldAt(f, kQREFHT, y, x, h, w) +=
            static_cast<float>(0.8 * intensity * envelope);
        if (r <= 1.2 * width &&
            sample.truth[static_cast<std::size_t>(y * w + x)] ==
                kBackground) {
          sample.truth[static_cast<std::size_t>(y * w + x)] =
              kAtmosphericRiver;
        }
      }
    }
  }
}

ClimateSample ClimateGenerator::Generate(std::uint64_t seed,
                                         std::int64_t index) const {
  Rng rng = Rng(seed).Fork(static_cast<std::uint64_t>(index));
  ClimateSample sample;
  sample.height = opts_.height;
  sample.width = opts_.width;
  sample.fields = Tensor(
      TensorShape{kNumClimateChannels, opts_.height, opts_.width});
  sample.truth.assign(
      static_cast<std::size_t>(opts_.height * opts_.width), kBackground);

  PaintBackground(sample.fields, rng);
  const int n_tc = PoissonSample(rng, opts_.mean_cyclones);
  const int n_ar = PoissonSample(rng, opts_.mean_rivers);
  // Rivers first so cyclone cores override overlapping AR pixels.
  for (int i = 0; i < n_ar; ++i) PlantRiver(sample, rng);
  for (int i = 0; i < n_tc; ++i) PlantCyclone(sample, rng);
  return sample;
}

}  // namespace exaclim
