#include "data/augment.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace exaclim {

void RollLongitude(Batch& batch, std::int64_t shift, std::int64_t height,
                   std::int64_t width) {
  const TensorShape& s = batch.fields.shape();
  EXACLIM_CHECK(s.rank() == 4 && s.h() == height && s.w() == width,
                "batch shape mismatch");
  shift = ((shift % width) + width) % width;
  if (shift == 0) return;

  std::vector<float> row(static_cast<std::size_t>(width));
  const std::int64_t planes = s.n() * s.c();
  for (std::int64_t p = 0; p < planes; ++p) {
    for (std::int64_t y = 0; y < height; ++y) {
      float* base = batch.fields.Raw() + (p * height + y) * width;
      for (std::int64_t x = 0; x < width; ++x) {
        row[static_cast<std::size_t>((x + shift) % width)] = base[x];
      }
      std::copy(row.begin(), row.end(), base);
    }
  }
  std::vector<std::uint8_t> label_row(static_cast<std::size_t>(width));
  for (std::int64_t ny = 0; ny < s.n() * height; ++ny) {
    std::uint8_t* base = batch.labels.data() + ny * width;
    for (std::int64_t x = 0; x < width; ++x) {
      label_row[static_cast<std::size_t>((x + shift) % width)] = base[x];
    }
    std::copy(label_row.begin(), label_row.end(), base);
  }
}

void MirrorLatitude(Batch& batch, std::span<const std::int64_t> v_channels,
                    std::int64_t height, std::int64_t width) {
  const TensorShape& s = batch.fields.shape();
  EXACLIM_CHECK(s.rank() == 4 && s.h() == height && s.w() == width,
                "batch shape mismatch");
  const std::int64_t planes = s.n() * s.c();
  for (std::int64_t p = 0; p < planes; ++p) {
    float* plane = batch.fields.Raw() + p * height * width;
    for (std::int64_t y = 0; y < height / 2; ++y) {
      std::swap_ranges(plane + y * width, plane + (y + 1) * width,
                       plane + (height - 1 - y) * width);
    }
  }
  // Meridional winds change sign under a north-south flip.
  for (std::int64_t n = 0; n < s.n(); ++n) {
    for (const std::int64_t c : v_channels) {
      EXACLIM_CHECK(c >= 0 && c < s.c(), "bad meridional channel " << c);
      float* plane =
          batch.fields.Raw() + (n * s.c() + c) * height * width;
      for (std::int64_t i = 0; i < height * width; ++i) plane[i] = -plane[i];
    }
  }
  for (std::int64_t n = 0; n < s.n(); ++n) {
    std::uint8_t* sample = batch.labels.data() + n * height * width;
    for (std::int64_t y = 0; y < height / 2; ++y) {
      std::swap_ranges(sample + y * width, sample + (y + 1) * width,
                       sample + (height - 1 - y) * width);
    }
  }
}

void AugmentBatch(Batch& batch, const AugmentOptions& opts, Rng& rng,
                  std::int64_t height, std::int64_t width) {
  if (opts.roll_longitude) {
    RollLongitude(batch, rng.Int(0, width - 1), height, width);
  }
  if (opts.mirror_latitude && rng.Bernoulli(0.5)) {
    MirrorLatitude(batch, opts.meridional_channels, height, width);
  }
  if (opts.noise_stddev > 0.0f) {
    for (std::int64_t i = 0; i < batch.fields.NumElements(); ++i) {
      batch.fields[static_cast<std::size_t>(i)] +=
          rng.Normal(0.0f, opts.noise_stddev);
    }
  }
}

}  // namespace exaclim
