#include "tensor/cast.hpp"

#include <bit>
#include <cstdint>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace exaclim {
namespace {

// Branch-light float<->binary16 conversions for the wire path (the
// exchanger compresses/decompresses every fused gradient buffer per step,
// paper §4.4). Same round-to-nearest-even / overflow-to-inf / subnormal
// semantics as Half — bit-exactness against Half::FromFloat/ToFloat is
// fuzz-asserted in tests/test_tensor.cpp — but written as straight-line
// bit arithmetic the autovectorizer can chew on, instead of the
// branch-heavy scalar path in common/half.cpp.

// Threshold above which the elementwise loops fan out on the global pool.
constexpr std::size_t kCastGrain = 1 << 15;

inline std::uint16_t F32ToF16Bits(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  std::uint32_t abs = bits & 0x7fffffffu;
  std::uint32_t out;
  if (abs >= 0x47800000u) {
    // Inf, NaN, or magnitude >= 2^16: quiet-NaN payload or infinity.
    out = abs > 0x7f800000u ? 0x7e00u : 0x7c00u;
  } else if (abs < 0x38800000u) {
    // Result is binary16 subnormal or zero: let the FPU do the
    // denormalizing shift + RTNE by adding 0.5f (whose exponent places
    // the binary16 subnormal ulp just above the float mantissa), then
    // strip the 0.5f bit pattern back off.
    const float shifted = std::bit_cast<float>(abs) + 0.5f;
    out = std::bit_cast<std::uint32_t>(shifted) - 0x3f000000u;
  } else {
    // Normal range: rebias the exponent and round to nearest even; a
    // mantissa carry overflows into the exponent (and to inf) correctly.
    const std::uint32_t mant_odd = (abs >> 13) & 1u;
    abs += 0xc8000000u + 0xfffu + mant_odd;  // ((15-127)<<23) rebias + rtne
    out = abs >> 13;
  }
  return static_cast<std::uint16_t>(out | sign);
}

inline float F16ToF32(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  std::uint32_t bits = (static_cast<std::uint32_t>(h) & 0x7fffu) << 13;
  const std::uint32_t exp = bits & 0x0f800000u;  // binary16 exponent field
  bits += (127u - 15u) << 23;                    // rebias to binary32
  if (exp == 0x0f800000u) {
    bits += (128u - 16u) << 23;  // inf/NaN: push exponent to 255
  } else if (exp == 0u) {
    // Zero/subnormal: renormalize through float arithmetic (exact).
    bits += 1u << 23;
    bits = std::bit_cast<std::uint32_t>(std::bit_cast<float>(bits) -
                                        std::bit_cast<float>(0x38800000u));
  }
  return std::bit_cast<float>(sign | bits);
}

}  // namespace

const char* ToString(Precision p) {
  return p == Precision::kFP32 ? "FP32" : "FP16";
}

void RoundTripHalf(std::span<float> values) {
  float* data = values.data();
  ParallelFor(
      0, values.size(),
      [data](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          data[i] = F16ToF32(F32ToF16Bits(data[i]));
        }
      },
      kCastGrain);
}

void RoundTripHalf(Tensor& tensor) { RoundTripHalf(tensor.Data()); }

void PackHalf(std::span<const float> values,
              std::span<std::uint16_t> packed) {
  EXACLIM_CHECK(packed.size() == values.size(),
                "pack size mismatch: " << packed.size() << " vs "
                                       << values.size());
  const float* src = values.data();
  std::uint16_t* dst = packed.data();
  ParallelFor(
      0, values.size(),
      [src, dst](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) dst[i] = F32ToF16Bits(src[i]);
      },
      kCastGrain);
}

std::vector<std::uint16_t> PackHalf(std::span<const float> values) {
  std::vector<std::uint16_t> packed(values.size());
  PackHalf(values, packed);
  return packed;
}

void UnpackHalf(std::span<const std::uint16_t> packed,
                std::span<float> values) {
  EXACLIM_CHECK(packed.size() == values.size(),
                "pack/unpack size mismatch: " << packed.size() << " vs "
                                              << values.size());
  const std::uint16_t* src = packed.data();
  float* dst = values.data();
  ParallelFor(
      0, packed.size(),
      [src, dst](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) dst[i] = F16ToF32(src[i]);
      },
      kCastGrain);
}

std::int64_t CountHalfNonFinite(std::span<const float> values) {
  // An element is non-finite after binary16 conversion iff its magnitude
  // reaches the overflow-to-inf threshold (which inf/NaN bit patterns
  // exceed by construction) — a single compare, no conversion needed.
  std::int64_t count = 0;
  for (const float v : values) {
    const std::uint32_t abs = std::bit_cast<std::uint32_t>(v) & 0x7fffffffu;
    count += abs >= 0x477ff000u ? 1 : 0;
  }
  return count;
}

}  // namespace exaclim
