#include "tensor/cast.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/tensor.hpp"

namespace exaclim {

const char* ToString(Precision p) {
  return p == Precision::kFP32 ? "FP32" : "FP16";
}

void RoundTripHalf(std::span<float> values) {
  for (auto& v : values) v = Half(v).ToFloat();
}

void RoundTripHalf(Tensor& tensor) { RoundTripHalf(tensor.Data()); }

std::vector<std::uint16_t> PackHalf(std::span<const float> values) {
  std::vector<std::uint16_t> packed;
  packed.reserve(values.size());
  for (float v : values) packed.push_back(Half(v).bits());
  return packed;
}

void UnpackHalf(std::span<const std::uint16_t> packed,
                std::span<float> values) {
  EXACLIM_CHECK(packed.size() == values.size(),
                "pack/unpack size mismatch: " << packed.size() << " vs "
                                              << values.size());
  for (std::size_t i = 0; i < packed.size(); ++i) {
    values[i] = Half::FromBits(packed[i]).ToFloat();
  }
}

std::int64_t CountHalfNonFinite(std::span<const float> values) {
  std::int64_t count = 0;
  for (float v : values) {
    if (!Half(v).IsFinite()) ++count;
  }
  return count;
}

}  // namespace exaclim
