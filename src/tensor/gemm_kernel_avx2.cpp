// AVX2+FMA variant of the GEMM microkernel (DESIGN §10). This TU — and
// only this TU — is compiled with -mavx2 -mfma (see src/CMakeLists.txt),
// so nothing outside the kernel body can pick up AVX2 instructions; the
// engine dispatches here only after __builtin_cpu_supports("avx2"/"fma")
// passes at runtime. On non-x86 targets, or when the toolchain lacks the
// flags, EXACLIM_GEMM_AVX2 is undefined and this file compiles to nothing.

#include "tensor/gemm_kernel.hpp"

#if defined(EXACLIM_GEMM_AVX2) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace exaclim {

// 6x16 register tile: two ymm columns per row, 12 accumulators live across
// the whole KC panel, one broadcast + two FMAs per (row, p).
void GemmMicroKernelAvx2(std::int64_t kc, const float* a, const float* b,
                         float* c, std::int64_t ldc, float beta) {
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
  __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();

  const float* __restrict ap = a;
  const float* __restrict bp = b;
  for (std::int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp);
    const __m256 b1 = _mm256_loadu_ps(bp + 8);
    __m256 av;
    av = _mm256_broadcast_ss(ap + 0);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    av = _mm256_broadcast_ss(ap + 1);
    c10 = _mm256_fmadd_ps(av, b0, c10);
    c11 = _mm256_fmadd_ps(av, b1, c11);
    av = _mm256_broadcast_ss(ap + 2);
    c20 = _mm256_fmadd_ps(av, b0, c20);
    c21 = _mm256_fmadd_ps(av, b1, c21);
    av = _mm256_broadcast_ss(ap + 3);
    c30 = _mm256_fmadd_ps(av, b0, c30);
    c31 = _mm256_fmadd_ps(av, b1, c31);
    av = _mm256_broadcast_ss(ap + 4);
    c40 = _mm256_fmadd_ps(av, b0, c40);
    c41 = _mm256_fmadd_ps(av, b1, c41);
    av = _mm256_broadcast_ss(ap + 5);
    c50 = _mm256_fmadd_ps(av, b0, c50);
    c51 = _mm256_fmadd_ps(av, b1, c51);
    ap += kGemmMR;
    bp += kGemmNR;
  }

  __m256 acc[kGemmMR][2] = {{c00, c01}, {c10, c11}, {c20, c21},
                            {c30, c31}, {c40, c41}, {c50, c51}};
  if (beta == 0.0f) {
    for (int i = 0; i < kGemmMR; ++i) {
      float* crow = c + i * ldc;
      _mm256_storeu_ps(crow, acc[i][0]);
      _mm256_storeu_ps(crow + 8, acc[i][1]);
    }
  } else if (beta == 1.0f) {
    for (int i = 0; i < kGemmMR; ++i) {
      float* crow = c + i * ldc;
      _mm256_storeu_ps(crow,
                       _mm256_add_ps(_mm256_loadu_ps(crow), acc[i][0]));
      _mm256_storeu_ps(crow + 8,
                       _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[i][1]));
    }
  } else {
    const __m256 bv = _mm256_set1_ps(beta);
    for (int i = 0; i < kGemmMR; ++i) {
      float* crow = c + i * ldc;
      _mm256_storeu_ps(
          crow, _mm256_fmadd_ps(bv, _mm256_loadu_ps(crow), acc[i][0]));
      _mm256_storeu_ps(
          crow + 8,
          _mm256_fmadd_ps(bv, _mm256_loadu_ps(crow + 8), acc[i][1]));
    }
  }
}

// SIMD half of the fused epilogue merge (DESIGN §15): one full 6x16 tile,
// C = beta*C + Acc (+bias[row]) with optional ReLU, beta in {0, 1}. Adds
// are exact, and the masked-AND ReLU (keep v only where v > 0, ordered
// compare) reproduces the scalar ternary exactly — NaN and -0.0 inputs
// both yield +0.0 — so this path is bit-identical to the scalar merge.
// No BN math lives in this TU: -mfma would contract it differently from
// the baseline-ISA TUs that define the unfused reference.
void GemmMergeBiasReluAvx2(const float* acc, float* c, std::int64_t ldc,
                           float beta, const float* bias, bool relu) {
  // hot-path: begin
  const __m256 zero = _mm256_setzero_ps();
  for (int i = 0; i < kGemmMR; ++i) {
    const float* arow = acc + i * kGemmNR;
    float* crow = c + i * ldc;
    const __m256 bv = bias != nullptr ? _mm256_set1_ps(bias[i]) : zero;
    for (int h = 0; h < 2; ++h) {
      __m256 v = _mm256_loadu_ps(arow + 8 * h);
      if (beta != 0.0f) v = _mm256_add_ps(_mm256_loadu_ps(crow + 8 * h), v);
      if (bias != nullptr) v = _mm256_add_ps(v, bv);
      if (relu) {
        v = _mm256_and_ps(v, _mm256_cmp_ps(v, zero, _CMP_GT_OQ));
      }
      _mm256_storeu_ps(crow + 8 * h, v);
    }
  }
  // hot-path: end
}

}  // namespace exaclim

#endif  // EXACLIM_GEMM_AVX2 && __AVX2__ && __FMA__
