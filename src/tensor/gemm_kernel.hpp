#pragma once

// Packed, register-blocked GEMM microkernel engine (BLIS/Goto style) —
// DESIGN §10.
//
// The engine decomposes C = alpha*op(A)*op(B) + beta*C into three levels
// of cache blocking (KC panels of the contraction dim, MC row blocks, NC
// column blocks) around a fixed MRxNR register-tiled microkernel:
//
//   for jc in [0,n) step NC:                 B panel -> L3
//     for pc in [0,k) step KC:               beta applied on first pc only
//       pack op(B)[pc:pc+KC, jc:jc+NC] into NR-strips   (thread scratch)
//       parallel over MR-strips of op(A):
//         pack alpha*op(A)[ic:ic+MC, pc:pc+KC] into MR-strips  (L2)
//         for jr step NR:                    B strip -> L1
//           for ir step MR: microkernel      C tile -> registers
//
// Both pack formats are transpose-normalized (op() resolved at pack time)
// and alpha is folded into the A panels, so the microkernel inner loop is
// a pure broadcast-FMA sweep with fixed trip counts: it keeps the MRxNR
// C tile in registers across the whole KC panel and touches C once per
// panel. Variants: AVX2+FMA and NEON intrinsics selected at runtime when
// compiled in, with a portable autovectorized kernel as fallback.
//
// Kernel selection for the public Gemm() entry point is controlled by
// EXACLIM_GEMM_KERNEL={auto,packed,reference} (SetGemmKernelMode overrides
// programmatically); `reference` keeps the pre-engine blocked walk for
// A/B testing and bisection.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace exaclim {

// ------------------------------------------------- kernel selection -----

enum class GemmKernelMode {
  kAuto,       // currently identical to kPacked
  kPacked,     // the packed microkernel engine
  kReference,  // pre-engine cache-blocked walk (gemm.cpp)
};

const char* ToString(GemmKernelMode mode);

/// Parses "auto" / "packed" / "reference"; nullopt on anything else.
std::optional<GemmKernelMode> ParseGemmKernelMode(std::string_view value);

/// Mode in use by Gemm(): the programmatic override if set, else
/// EXACLIM_GEMM_KERNEL (parsed once), else kAuto. Unparsable env values
/// fall back to kAuto.
GemmKernelMode GemmKernelModeInUse();

/// Programmatic override (benches and the fuzz tests flip this per run).
void SetGemmKernelMode(GemmKernelMode mode);

/// True when the packed engine serves Gemm() (mode != kReference). Call
/// sites that maintain prepacked operands (conv weight panels) key off
/// this so EXACLIM_GEMM_KERNEL=reference A/B-tests the whole layer path.
bool GemmUsesPackedEngine();

/// Name of the microkernel variant the packed engine dispatches to on
/// this machine: "avx2-fma", "neon" or "portable".
const char* GemmMicroKernelName();

// ------------------------------------------------ blocking geometry -----

/// Register tile: MR rows x NR columns of C per microkernel call. 6x16
/// fits AVX2 exactly (12 ymm accumulators + 2 B loads + 1 A broadcast =
/// 15 of 16 registers) and NEON comfortably (24 q accumulators of 32).
inline constexpr std::int64_t kGemmMR = 6;
inline constexpr std::int64_t kGemmNR = 16;

/// Cache blocks: KC sizes the packed strips so an MR-strip of A plus an
/// NR-strip of B stay L1-resident (6+16)*256*4B = 22KB; MC*KC A panels
/// (~144KB) target L2; KC*NC B panels (~2MB) target L3. MC is a multiple
/// of MR, NC a multiple of NR.
inline constexpr std::int64_t kGemmKC = 256;
inline constexpr std::int64_t kGemmMC = 144;
inline constexpr std::int64_t kGemmNC = 2048;

// ------------------------------------------------------ microkernels ----

/// Computes the MRxNR tile update C = beta*C + Acc where
/// Acc[i][j] = sum_p a[p*MR+i] * b[p*NR+j] over p in [0, kc).
/// `a` is an MR-strip (alpha already folded), `b` an NR-strip, both
/// zero-padded to full width; `c` points at the tile's top-left element
/// with row stride `ldc`. beta == 0 never reads C (it may hold garbage).
using GemmMicroKernelFn = void (*)(std::int64_t kc, const float* a,
                                   const float* b, float* c,
                                   std::int64_t ldc, float beta);

void GemmMicroKernelPortable(std::int64_t kc, const float* a, const float* b,
                             float* c, std::int64_t ldc, float beta);
#if defined(EXACLIM_GEMM_AVX2)
// Defined in gemm_kernel_avx2.cpp (compiled with -mavx2 -mfma); only
// dispatched to after a runtime cpuid check.
void GemmMicroKernelAvx2(std::int64_t kc, const float* a, const float* b,
                         float* c, std::int64_t ldc, float beta);
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
void GemmMicroKernelNeon(std::int64_t kc, const float* a, const float* b,
                         float* c, std::int64_t ldc, float beta);
#endif

/// The variant the packed engine uses on this machine (resolved once).
GemmMicroKernelFn ActiveGemmMicroKernel();

// ---------------------------------------------------- fused epilogues ---

/// Pointwise work folded into the C-writeback of the FINAL KC panel —
/// DESIGN §15. Per C element (row = conv output channel) the merge
/// computes, in order:
///
///   v = beta*C + Acc            (beta restricted to {0, 1})
///   if bias:       v += bias[row]
///   if bn_mean:    x_hat = (v - bn_mean[row]) * bn_inv_std[row]
///                  if bn_norm: bn_norm[row*mask_ld + col] = x_hat
///                  v = bn_gamma[row] * x_hat + bn_beta[row]
///   if relu_mask:  relu_mask[row*mask_ld + col] = (v > 0)
///   if relu:       v = v > 0 ? v : 0
///   C = v
///
/// via the shared helpers in tensor/epilogue.hpp, so the result is
/// bit-identical to running the unfused GEMM followed by the standalone
/// bias / BatchNorm2d / ReLU passes. All pointers are per-output-channel
/// arrays of length m (bn_* are all set or all null); relu_mask and
/// bn_norm (BatchNorm2d's x_hat backward cache, so a GEMM-folded eval
/// forward still supports Backward), when non-null, have C's layout
/// (row stride mask_ld == the GEMM's n).
struct GemmEpilogue {
  const float* bias = nullptr;
  const float* bn_mean = nullptr;
  const float* bn_inv_std = nullptr;
  const float* bn_gamma = nullptr;
  const float* bn_beta = nullptr;
  float* bn_norm = nullptr;
  bool relu = false;
  unsigned char* relu_mask = nullptr;
  std::int64_t mask_ld = 0;

  bool Empty() const {
    return bias == nullptr && bn_mean == nullptr && !relu &&
           relu_mask == nullptr;
  }
};

/// SIMD fast path for the epilogue merge of one full MRxNR tile:
/// C = beta*C + Acc (+ bias[row]) (ReLU'd when `relu`). Only the
/// bias/ReLU subset — BN and mask tiles take the scalar path. `bias`,
/// when non-null, points at the tile's first row's entry. Must match the
/// scalar merge bit-for-bit (adds are exact; the ReLU mirrors the
/// ternary's NaN/-0.0 behaviour).
using GemmMergeBiasReluFn = void (*)(const float* acc, float* c,
                                     std::int64_t ldc, float beta,
                                     const float* bias, bool relu);
#if defined(EXACLIM_GEMM_AVX2)
void GemmMergeBiasReluAvx2(const float* acc, float* c, std::int64_t ldc,
                           float beta, const float* bias, bool relu);
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
void GemmMergeBiasReluNeon(const float* acc, float* c, std::int64_t ldc,
                           float beta, const float* bias, bool relu);
#endif

// ------------------------------------------------------- implicit B -----

/// One row of the implicit im2col matrix: B[r] covers input channel ci
/// and kernel tap (kh, kw) of a convolution, r = (ci*KH + kh)*KW + kw.
/// The element at output pixel (oy, ox) is
///
///   image[offset + oy*stride*in_row_stride + ox*stride]
///
/// when oy in [oy_lo, oy_hi) and ox in [ox_lo, ox_hi), else 0 (padding).
/// offset = ci*in_h*in_w + dy*in_w + dx with dy = kh*dilation - pad,
/// dx = kw*dilation - pad; it may be negative, so gathers must form the
/// full int64 element index before touching the pointer. Built once per
/// geometry by BuildImplicitRows (nn/im2col.*) into pooled scratch.
struct GemmImplicitRow {
  std::int64_t offset = 0;
  std::int64_t oy_lo = 0;
  std::int64_t oy_hi = 0;
  std::int64_t ox_lo = 0;
  std::int64_t ox_hi = 0;
};

/// A conv input image viewed as the k x n im2col matrix (k = rows per
/// patch, n = out_h*out_w) without materializing it: the B-panel packer
/// gathers KCxNC panels straight from `image` via the row table.
struct GemmImplicitB {
  const float* image = nullptr;       // one image, [in_c, in_h, in_w]
  const GemmImplicitRow* rows = nullptr;  // k entries
  std::int64_t out_h = 0;
  std::int64_t out_w = 0;
  std::int64_t in_row_stride = 0;     // elements per input image row
  std::int64_t stride = 1;            // conv stride (shared h/w)
};

// ------------------------------------------------------ prepacked A -----

/// A matrix packed once into the engine's A-panel layout for reuse across
/// many Gemm calls with the same left operand — the conv layers pack the
/// weight matrix once per Forward/Backward and share it across batch
/// shards (read-only, so shard tasks need no copies).
///
/// Layout: for each KC block pc, ceil(m/MR) MR-strips, strip s holding
/// columns p in [pc, pc+kc) as MR consecutive rows (p-major), rows beyond
/// m zero-padded, alpha folded in. Strips of one block are contiguous, so
/// block pc starts at data() + RoundUp(m, MR) * pc.
class PackedGemmA {
 public:
  /// Packs alpha * op(A) where op(A) is m x k (A stored k x m when
  /// trans_a). Reuses the existing allocation when geometry matches.
  void Pack(bool trans_a, std::int64_t m, std::int64_t k, float alpha,
            const float* a);

  std::int64_t m() const { return m_; }
  std::int64_t k() const { return k_; }
  bool empty() const { return data_.empty(); }

  /// Start of KC block `pc` (a multiple of kGemmKC, < k).
  const float* Block(std::int64_t pc) const {
    return data_.data() + m_padded_ * pc;
  }

 private:
  std::int64_t m_ = 0;
  std::int64_t k_ = 0;
  std::int64_t m_padded_ = 0;  // m rounded up to a multiple of kGemmMR
  std::vector<float> data_;
};

// ------------------------------------------------------- entry points ---

/// Packed-engine GEMM: C(m,n) = alpha*op(A)*op(B) + beta*C, row-major.
/// Semantics match Gemm() exactly (beta == 0 overwrites C without reading
/// it). Parallelised over MR-strips of C via ThreadPool::Global(); the
/// per-element FP contraction order is fixed by the KC walk and never
/// depends on the thread count or partition.
void GemmPacked(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
                std::int64_t k, float alpha, const float* a, const float* b,
                float beta, float* c);

/// Same, with the left operand prepacked (alpha folded at Pack time).
/// A non-empty `epi` folds the epilogue into the final-KC-panel merge;
/// it requires beta in {0, 1} and k > 0.
void GemmPackedWithA(const PackedGemmA& a, bool trans_b, std::int64_t n,
                     const float* b, float beta, float* c,
                     const GemmEpilogue* epi = nullptr);

/// Implicit-GEMM convolution forward: C(m, out_h*out_w) = A * B + beta*C
/// where A is the prepacked weight matrix [out_c, patch] and B is the
/// image's implicit im2col matrix (b.rows must have a.k() entries). No
/// col buffer is ever materialized — the B packer gathers panels from
/// the image on the fly. Bit-identical to packing the same panels from a
/// materialized Im2Col buffer, since the contraction order is fixed by
/// the KC walk regardless of where B's bytes come from.
void GemmPackedImplicit(const PackedGemmA& a, const GemmImplicitB& b,
                        float beta, float* c,
                        const GemmEpilogue* epi = nullptr);

}  // namespace exaclim
