#include "tensor/gemm_kernel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

#include "common/alloc_tracker.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/workspace.hpp"
#include "tensor/epilogue.hpp"

namespace exaclim {
namespace {

constexpr std::int64_t MR = kGemmMR;
constexpr std::int64_t NR = kGemmNR;
constexpr std::int64_t KC = kGemmKC;
constexpr std::int64_t MC = kGemmMC;
constexpr std::int64_t NC = kGemmNC;
static_assert(MC % MR == 0, "MC must hold whole MR-strips");
static_assert(NC % NR == 0, "NC must hold whole NR-strips");

std::int64_t RoundUp(std::int64_t v, std::int64_t unit) {
  return (v + unit - 1) / unit * unit;
}

std::atomic<GemmKernelMode>& ModeFlag() {
  static std::atomic<GemmKernelMode> flag([] {
    if (const char* env = std::getenv("EXACLIM_GEMM_KERNEL")) {
      if (const auto parsed = ParseGemmKernelMode(env)) return *parsed;
    }
    return GemmKernelMode::kAuto;
  }());
  return flag;
}

struct ResolvedKernel {
  GemmMicroKernelFn fn;
  const char* name;
  GemmMergeBiasReluFn merge;  // SIMD epilogue merge; null -> scalar path
};

ResolvedKernel ResolveMicroKernel() {
#if defined(EXACLIM_GEMM_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return {&GemmMicroKernelAvx2, "avx2-fma", &GemmMergeBiasReluAvx2};
  }
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
  return {&GemmMicroKernelNeon, "neon", &GemmMergeBiasReluNeon};
#else
  return {&GemmMicroKernelPortable, "portable", nullptr};
#endif
}

const ResolvedKernel& ActiveKernel() {
  static const ResolvedKernel kernel = ResolveMicroKernel();
  return kernel;
}

// C *= beta over a contiguous run, honouring the beta == 0 no-read rule.
void ScaleC(float* c, std::int64_t elems, float beta) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::fill(c, c + elems, 0.0f);
    return;
  }
  for (std::int64_t i = 0; i < elems; ++i) c[i] *= beta;
}

// ------------------------------------------------------------ packing ---

// Packs alpha*op(A) strips [s0, s1) of KC block pc into dst: strip s
// holds rows [s*MR, s*MR+MR) x columns [pc, pc+kc), p-major with MR
// consecutive rows per column, rows beyond m zeroed.
void PackAStrips(bool trans_a, const float* a, std::int64_t m,
                 std::int64_t k, float alpha, std::int64_t pc,
                 std::int64_t kc, std::int64_t s0, std::int64_t s1,
                 float* dst) {
  for (std::int64_t s = s0; s < s1; ++s) {
    const std::int64_t ir = s * MR;
    const std::int64_t mr = std::min(MR, m - ir);
    float* strip = dst + (s - s0) * MR * kc;
    if (mr < MR) {
      std::memset(strip, 0, static_cast<std::size_t>(MR * kc) * sizeof(float));
    }
    if (!trans_a) {
      // A is row-major m x k: stream each row, scatter at stride MR.
      for (std::int64_t i = 0; i < mr; ++i) {
        const float* src = a + (ir + i) * k + pc;
        for (std::int64_t p = 0; p < kc; ++p) strip[p * MR + i] = alpha * src[p];
      }
    } else {
      // A stored k x m: each packed column is a contiguous slice of a row.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = a + (pc + p) * m + ir;
        float* dcol = strip + p * MR;
        for (std::int64_t i = 0; i < mr; ++i) dcol[i] = alpha * src[i];
      }
    }
  }
}

// Packs op(B)[pc:pc+kc, jc:jc+nc] into NR-strips: strip jr/NR holds
// columns [jc+jr, jc+jr+NR), p-major with NR consecutive columns per p,
// columns beyond n zeroed.
void PackBPanel(bool trans_b, const float* b, std::int64_t k, std::int64_t n,
                std::int64_t pc, std::int64_t kc, std::int64_t jc,
                std::int64_t nc, float* dst) {
  for (std::int64_t jr = 0; jr < nc; jr += NR) {
    const std::int64_t nr = std::min(NR, nc - jr);
    float* strip = dst + (jr / NR) * kc * NR;
    if (!trans_b) {
      // B is row-major k x n: each packed row is a contiguous slice.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = b + (pc + p) * n + jc + jr;
        float* drow = strip + p * NR;
        std::memcpy(drow, src, static_cast<std::size_t>(nr) * sizeof(float));
        for (std::int64_t j = nr; j < NR; ++j) drow[j] = 0.0f;
      }
    } else {
      // B stored n x k: stream each B row, scatter at stride NR.
      if (nr < NR) {
        std::memset(strip, 0,
                    static_cast<std::size_t>(kc * NR) * sizeof(float));
      }
      for (std::int64_t j = 0; j < nr; ++j) {
        const float* src = b + (jc + jr + j) * k + pc;
        float* dcol = strip + j;
        for (std::int64_t p = 0; p < kc; ++p) dcol[p * NR] = src[p];
      }
    }
  }
}

// Fills dst[0..count) with row `rd` of the implicit im2col matrix at
// output pixels [j0, j0+count): exactly the bytes PackBPanel would have
// copied from a materialized Im2Col buffer (copies and zeros only, so
// bit-identity with the col path is automatic). Walks the pixel range as
// per-output-row segments: zero prefix (left padding), a stride-1 memcpy
// or strided gather for the in-bounds middle, zero suffix.
void GatherImplicitRow(const GemmImplicitB& src, const GemmImplicitRow& rd,
                       std::int64_t j0, std::int64_t count, float* dst) {
  // hot-path: begin
  std::int64_t oy = j0 / src.out_w;
  std::int64_t ox = j0 - oy * src.out_w;
  std::int64_t filled = 0;
  while (filled < count) {
    const std::int64_t seg = std::min(count - filled, src.out_w - ox);
    float* d = dst + filled;
    if (oy < rd.oy_lo || oy >= rd.oy_hi) {
      for (std::int64_t j = 0; j < seg; ++j) d[j] = 0.0f;
    } else {
      // Element index for valid (oy, ox) is always >= 0; form it fully
      // before touching the pointer (rd.offset alone may be negative).
      const std::int64_t base =
          rd.offset + oy * src.stride * src.in_row_stride;
      const std::int64_t lo = std::min(std::max(ox, rd.ox_lo), ox + seg);
      const std::int64_t hi = std::max(lo, std::min(ox + seg, rd.ox_hi));
      for (std::int64_t x = ox; x < lo; ++x) d[x - ox] = 0.0f;
      if (src.stride == 1) {
        if (hi > lo) {
          std::memcpy(d + (lo - ox), src.image + (base + lo),
                      static_cast<std::size_t>(hi - lo) * sizeof(float));
        }
      } else {
        for (std::int64_t x = lo; x < hi; ++x) {
          d[x - ox] = src.image[base + x * src.stride];
        }
      }
      for (std::int64_t x = hi; x < ox + seg; ++x) d[x - ox] = 0.0f;
    }
    filled += seg;
    ox = 0;
    ++oy;
  }
  // hot-path: end
}

// PackBPanel's twin for an implicit B operand: same NR-strip layout and
// zero padding, but each packed row is gathered from the input image via
// its GemmImplicitRow descriptor instead of copied from a col buffer.
void PackImplicitBPanel(const GemmImplicitB& src, std::int64_t pc,
                        std::int64_t kc, std::int64_t jc, std::int64_t nc,
                        float* dst) {
  for (std::int64_t jr = 0; jr < nc; jr += NR) {
    const std::int64_t nr = std::min(NR, nc - jr);
    float* strip = dst + (jr / NR) * kc * NR;
    for (std::int64_t p = 0; p < kc; ++p) {
      float* drow = strip + p * NR;
      GatherImplicitRow(src, src.rows[pc + p], jc + jr, nr, drow);
      for (std::int64_t j = nr; j < NR; ++j) drow[j] = 0.0f;
    }
  }
}

// Applies a microkernel accumulator (NR-strided, from the edge-tile path)
// to the mr x nr corner of C at row stride ldc.
void MergeEdgeTile(const float* acc, float* c, std::int64_t mr,
                   std::int64_t nr, std::int64_t ldc, float beta) {
  for (std::int64_t i = 0; i < mr; ++i) {
    const float* arow = acc + i * NR;
    float* crow = c + i * ldc;
    if (beta == 0.0f) {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] = arow[j];
    } else if (beta == 1.0f) {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] += arow[j];
    } else {
      for (std::int64_t j = 0; j < nr; ++j) {
        crow[j] = beta * crow[j] + arow[j];
      }
    }
  }
}

// Scalar epilogue merge for one mr x nr tile of the final KC panel:
// combines the accumulator with beta*C, then bias / BN scale-shift /
// ReLU(+mask) per GemmEpilogue's contract. `ir` / `col0` locate the tile
// in C so per-channel vectors and the mask index correctly. beta is
// restricted to {0, 1} by the entry points: the generic-beta microkernel
// writeback may contract beta*C + Acc into an FMA on some ISAs, and this
// merge must stay bit-identical to the unfused writeback it replaces.
void MergeTileWithEpilogue(const float* acc, float* c, std::int64_t ldc,
                           std::int64_t ir, std::int64_t col0,
                           std::int64_t mr, std::int64_t nr, float beta,
                           const GemmEpilogue& epi) {
  // hot-path: begin
  const bool bn = epi.bn_mean != nullptr;
  for (std::int64_t i = 0; i < mr; ++i) {
    const std::int64_t row = ir + i;
    const float* arow = acc + i * NR;
    float* crow = c + i * ldc;
    unsigned char* mrow =
        epi.relu_mask != nullptr ? epi.relu_mask + row * epi.mask_ld + col0
                                 : nullptr;
    float* nrow = epi.bn_norm != nullptr
                      ? epi.bn_norm + row * epi.mask_ld + col0
                      : nullptr;
    for (std::int64_t j = 0; j < nr; ++j) {
      float v = beta == 0.0f ? arow[j] : crow[j] + arow[j];
      // Guarded adds: an unconditional `v += 0.0f` would flip -0.0
      // outputs to +0.0 and break bit-identity with the unfused path.
      if (epi.bias != nullptr) v += epi.bias[row];
      if (bn) {
        const float x_hat =
            BnNormalise(v, epi.bn_mean[row], epi.bn_inv_std[row]);
        if (nrow != nullptr) nrow[j] = x_hat;
        v = BnAffine(x_hat, epi.bn_gamma[row], epi.bn_beta[row]);
      }
      if (mrow != nullptr) mrow[j] = ReluActive(v) ? 1 : 0;
      if (epi.relu) v = ReluValueBits(v);
      crow[j] = v;
    }
  }
  // hot-path: end
}

// ------------------------------------------------------------- driver ---

// Shared KC/MC/NC walk behind GemmPacked, GemmPackedWithA and
// GemmPackedImplicit. When `prepacked` is non-null its panels replace
// on-the-fly A packing (and alpha is already folded in); when `bimp` is
// non-null the B panels are gathered from the input image instead of a
// dense matrix. A non-null `epi` (never empty; beta in {0,1}; requires a
// prepacked A with no alpha scaling) is applied while merging the final
// KC panel into C, so fused chains touch C exactly as often as unfused
// ones. Parallelism is over MR-strips of C: the strip space partitions
// identically for every pc, and each C element's FP contraction order is
// fixed by (KC walk, microkernel p loop), so results never depend on the
// thread count.
void RunPackedGemm(const PackedGemmA* prepacked, bool trans_a,
                   const float* a, bool trans_b, const float* b,
                   const GemmImplicitB* bimp, std::int64_t m, std::int64_t n,
                   std::int64_t k, float alpha, float beta, float* c,
                   const GemmEpilogue* epi) {
  const GemmMicroKernelFn kernel = ActiveKernel().fn;
  const GemmMergeBiasReluFn simd_merge = ActiveKernel().merge;
  const std::int64_t m_strips = (m + MR - 1) / MR;
  const std::int64_t strips_per_mc = MC / MR;

  for (std::int64_t jc = 0; jc < n; jc += NC) {
    const std::int64_t nc = std::min(NC, n - jc);
    const std::int64_t nc_pad = RoundUp(nc, NR);
    for (std::int64_t pc = 0; pc < k; pc += KC) {
      const std::int64_t kc = std::min(KC, k - pc);
      const float beta_eff = pc == 0 ? beta : 1.0f;
      // The epilogue fires exactly once per C element: on this jc
      // block's final KC panel (every jc block walks all of [0, k)).
      const GemmEpilogue* tile_epi = pc + KC >= k ? epi : nullptr;
      // The SIMD merge covers only the bias/ReLU subset on full tiles;
      // BN or mask epilogues use the scalar merge everywhere.
      const bool simd_epi = tile_epi != nullptr && simd_merge != nullptr &&
                            tile_epi->bn_mean == nullptr &&
                            tile_epi->relu_mask == nullptr;
      // The forking thread packs B once; strip tasks share it read-only
      // (ParallelFor joins before the next acquire can grow the slot).
      // Steady state the scratch slots are warm, so the gemm.pack.*
      // census sites read zero; growth (first call, bigger shape) is
      // exactly what they catch.
      float* bpack;
      {
        EXACLIM_ALLOC_CENSUS_THREAD("gemm.pack.b");
        bpack = AcquireScratch(ScratchSlot::kGemmPackB,
                               static_cast<std::size_t>(kc * nc_pad));
        if (bimp != nullptr) {
          PackImplicitBPanel(*bimp, pc, kc, jc, nc, bpack);
        } else {
          PackBPanel(trans_b, b, k, n, pc, kc, jc, nc, bpack);
        }
      }
      const float* pre_block = prepacked ? prepacked->Block(pc) : nullptr;

      ParallelFor(
          0, static_cast<std::size_t>(m_strips),
          [&](std::size_t lo_s, std::size_t hi_s) {
            const auto lo = static_cast<std::int64_t>(lo_s);
            const auto hi = static_cast<std::int64_t>(hi_s);
            for (std::int64_t s0 = lo; s0 < hi; s0 += strips_per_mc) {
              const std::int64_t s1 = std::min(hi, s0 + strips_per_mc);
              const float* apack;
              if (pre_block != nullptr) {
                apack = pre_block + s0 * MR * kc;
              } else {
                EXACLIM_ALLOC_CENSUS_THREAD("gemm.pack.a");
                float* dst = AcquireScratch(
                    ScratchSlot::kGemmPackA,
                    static_cast<std::size_t>((s1 - s0) * MR * kc));
                PackAStrips(trans_a, a, m, k, alpha, pc, kc, s0, s1, dst);
                apack = dst;
              }
              // hot-path: begin
              for (std::int64_t jr = 0; jr < nc; jr += NR) {
                const std::int64_t nr = std::min(NR, nc - jr);
                const float* bstrip = bpack + (jr / NR) * kc * NR;
                for (std::int64_t s = s0; s < s1; ++s) {
                  const std::int64_t ir = s * MR;
                  const std::int64_t mr = std::min(MR, m - ir);
                  const float* astrip = apack + (s - s0) * MR * kc;
                  float* ctile = c + ir * n + jc + jr;
                  if (tile_epi == nullptr && mr == MR && nr == NR) {
                    kernel(kc, astrip, bstrip, ctile, n, beta_eff);
                  } else if (tile_epi == nullptr) {
                    float acc[kGemmMR * kGemmNR];
                    kernel(kc, astrip, bstrip, acc, NR, 0.0f);
                    MergeEdgeTile(acc, ctile, mr, nr, n, beta_eff);
                  } else {
                    // Final-panel tiles of a fused GEMM: accumulate into
                    // registers/stack as usual, then one epilogue-fused
                    // pass over C (the whole point of DESIGN §15).
                    float acc[kGemmMR * kGemmNR];
                    kernel(kc, astrip, bstrip, acc, NR, 0.0f);
                    if (simd_epi && mr == MR && nr == NR) {
                      simd_merge(acc, ctile, n, beta_eff,
                                 tile_epi->bias != nullptr
                                     ? tile_epi->bias + ir
                                     : nullptr,
                                 tile_epi->relu);
                    } else {
                      MergeTileWithEpilogue(acc, ctile, n, ir, jc + jr, mr,
                                            nr, beta_eff, *tile_epi);
                    }
                  }
                }
              }
              // hot-path: end
            }
          },
          /*grain=*/1);
    }
  }
}

}  // namespace

// ------------------------------------------------- kernel selection -----

const char* ToString(GemmKernelMode mode) {
  switch (mode) {
    case GemmKernelMode::kAuto: return "auto";
    case GemmKernelMode::kPacked: return "packed";
    case GemmKernelMode::kReference: return "reference";
  }
  return "?";
}

std::optional<GemmKernelMode> ParseGemmKernelMode(std::string_view value) {
  if (value == "auto") return GemmKernelMode::kAuto;
  if (value == "packed") return GemmKernelMode::kPacked;
  if (value == "reference") return GemmKernelMode::kReference;
  return std::nullopt;
}

GemmKernelMode GemmKernelModeInUse() {
  return ModeFlag().load(std::memory_order_relaxed);
}

void SetGemmKernelMode(GemmKernelMode mode) {
  ModeFlag().store(mode, std::memory_order_relaxed);
}

bool GemmUsesPackedEngine() {
  return GemmKernelModeInUse() != GemmKernelMode::kReference;
}

const char* GemmMicroKernelName() { return ActiveKernel().name; }

GemmMicroKernelFn ActiveGemmMicroKernel() { return ActiveKernel().fn; }

// ------------------------------------------------------ microkernels ----

void GemmMicroKernelPortable(std::int64_t kc, const float* a, const float* b,
                             float* c, std::int64_t ldc, float beta) {
  // Fixed trip counts + __restrict let the autovectorizer keep the whole
  // accumulator tile in registers (modulo spills on narrow ISAs).
  // hot-path: begin
  float acc[kGemmMR * kGemmNR] = {};
  const float* __restrict ap = a;
  const float* __restrict bp = b;
  for (std::int64_t p = 0; p < kc; ++p) {
    for (std::int64_t i = 0; i < MR; ++i) {
      const float av = ap[i];
      float* __restrict arow = acc + i * NR;
      for (std::int64_t j = 0; j < NR; ++j) arow[j] += av * bp[j];
    }
    ap += MR;
    bp += NR;
  }
  for (std::int64_t i = 0; i < MR; ++i) {
    const float* arow = acc + i * NR;
    float* __restrict crow = c + i * ldc;
    if (beta == 0.0f) {
      for (std::int64_t j = 0; j < NR; ++j) crow[j] = arow[j];
    } else if (beta == 1.0f) {
      for (std::int64_t j = 0; j < NR; ++j) crow[j] += arow[j];
    } else {
      for (std::int64_t j = 0; j < NR; ++j) {
        crow[j] = beta * crow[j] + arow[j];
      }
    }
  }
  // hot-path: end
}

#if defined(__aarch64__) && defined(__ARM_NEON)
void GemmMicroKernelNeon(std::int64_t kc, const float* a, const float* b,
                         float* c, std::int64_t ldc, float beta) {
  // hot-path: begin
  float32x4_t acc[kGemmMR][4];
  for (int i = 0; i < kGemmMR; ++i) {
    for (int q = 0; q < 4; ++q) acc[i][q] = vdupq_n_f32(0.0f);
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    const float32x4_t b0 = vld1q_f32(b);
    const float32x4_t b1 = vld1q_f32(b + 4);
    const float32x4_t b2 = vld1q_f32(b + 8);
    const float32x4_t b3 = vld1q_f32(b + 12);
    for (int i = 0; i < kGemmMR; ++i) {
      const float32x4_t av = vdupq_n_f32(a[i]);
      acc[i][0] = vfmaq_f32(acc[i][0], av, b0);
      acc[i][1] = vfmaq_f32(acc[i][1], av, b1);
      acc[i][2] = vfmaq_f32(acc[i][2], av, b2);
      acc[i][3] = vfmaq_f32(acc[i][3], av, b3);
    }
    a += kGemmMR;
    b += kGemmNR;
  }
  for (int i = 0; i < kGemmMR; ++i) {
    float* crow = c + i * ldc;
    for (int q = 0; q < 4; ++q) {
      float32x4_t out = acc[i][q];
      if (beta == 1.0f) {
        out = vaddq_f32(vld1q_f32(crow + 4 * q), out);
      } else if (beta != 0.0f) {
        out = vfmaq_n_f32(out, vld1q_f32(crow + 4 * q), beta);
      }
      vst1q_f32(crow + 4 * q, out);
    }
  }
  // hot-path: end
}

void GemmMergeBiasReluNeon(const float* acc, float* c, std::int64_t ldc,
                           float beta, const float* bias, bool relu) {
  // hot-path: begin
  const float32x4_t zero = vdupq_n_f32(0.0f);
  for (int i = 0; i < kGemmMR; ++i) {
    const float* arow = acc + i * kGemmNR;
    float* crow = c + i * ldc;
    const float32x4_t bv = bias != nullptr ? vdupq_n_f32(bias[i]) : zero;
    for (int q = 0; q < 4; ++q) {
      float32x4_t v = vld1q_f32(arow + 4 * q);
      if (beta != 0.0f) v = vaddq_f32(vld1q_f32(crow + 4 * q), v);
      if (bias != nullptr) v = vaddq_f32(v, bv);
      if (relu) {
        // vmaxq's NaN semantics differ from the scalar ternary; a
        // compare+select mirrors `v > 0 ? v : 0` exactly (NaN and -0.0
        // both select +0.0).
        v = vbslq_f32(vcgtq_f32(v, zero), v, zero);
      }
      vst1q_f32(crow + 4 * q, v);
    }
  }
  // hot-path: end
}
#endif  // __aarch64__ && __ARM_NEON

// ------------------------------------------------------ prepacked A -----

void PackedGemmA::Pack(bool trans_a, std::int64_t m, std::int64_t k,
                       float alpha, const float* a) {
  EXACLIM_CHECK(m >= 0 && k >= 0, "PackedGemmA: bad dims " << m << "x" << k);
  m_ = m;
  k_ = k;
  m_padded_ = RoundUp(m, MR);
  data_.resize(static_cast<std::size_t>(m_padded_ * k));
  const std::int64_t strips = (m + MR - 1) / MR;
  for (std::int64_t pc = 0; pc < k; pc += KC) {
    const std::int64_t kc = std::min(KC, k - pc);
    PackAStrips(trans_a, a, m, k, alpha, pc, kc, 0, strips,
                data_.data() + m_padded_ * pc);
  }
}

// ------------------------------------------------------- entry points ---

namespace {

// Normalizes and validates the caller's epilogue: empty folds to null;
// a live epilogue needs beta in {0,1} (MergeTileWithEpilogue's contract)
// and a real product term to hang off.
const GemmEpilogue* CheckEpilogue(const GemmEpilogue* epi, std::int64_t k,
                                  float beta) {
  if (epi == nullptr || epi->Empty()) return nullptr;
  EXACLIM_CHECK(beta == 0.0f || beta == 1.0f,
                "Gemm epilogue requires beta in {0, 1}, got " << beta);
  EXACLIM_CHECK(k > 0, "Gemm epilogue requires k > 0");
  EXACLIM_CHECK(
      (epi->relu_mask == nullptr && epi->bn_norm == nullptr) ||
          epi->mask_ld > 0,
      "Gemm epilogue mask/norm outputs need a row stride");
  const bool bn_all = epi->bn_mean != nullptr && epi->bn_inv_std != nullptr &&
                      epi->bn_gamma != nullptr && epi->bn_beta != nullptr;
  const bool bn_none = epi->bn_mean == nullptr &&
                       epi->bn_inv_std == nullptr &&
                       epi->bn_gamma == nullptr && epi->bn_beta == nullptr;
  EXACLIM_CHECK(bn_all || bn_none, "Gemm epilogue BN vectors must all be set");
  EXACLIM_CHECK(epi->bn_norm == nullptr || bn_all,
                "Gemm epilogue x_hat writeback needs the BN vectors");
  return epi;
}

}  // namespace

void GemmPacked(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
                std::int64_t k, float alpha, const float* a, const float* b,
                float beta, float* c) {
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    // BLAS semantics: no product term; beta == 0 overwrites C unread.
    ScaleC(c, m * n, beta);
    return;
  }
  RunPackedGemm(nullptr, trans_a, a, trans_b, b, nullptr, m, n, k, alpha,
                beta, c, nullptr);
}

void GemmPackedWithA(const PackedGemmA& a, bool trans_b, std::int64_t n,
                     const float* b, float beta, float* c,
                     const GemmEpilogue* epi) {
  const std::int64_t m = a.m();
  const std::int64_t k = a.k();
  epi = CheckEpilogue(epi, k, beta);
  if (m == 0 || n == 0) return;
  if (k == 0) {
    ScaleC(c, m * n, beta);
    return;
  }
  EXACLIM_CHECK(!a.empty(), "GemmPackedWithA: operand not packed");
  RunPackedGemm(&a, /*trans_a=*/false, nullptr, trans_b, b, nullptr, m, n, k,
                /*alpha=*/1.0f, beta, c, epi);
}

void GemmPackedImplicit(const PackedGemmA& a, const GemmImplicitB& b,
                        float beta, float* c, const GemmEpilogue* epi) {
  const std::int64_t m = a.m();
  const std::int64_t k = a.k();
  const std::int64_t n = b.out_h * b.out_w;
  epi = CheckEpilogue(epi, k, beta);
  if (m == 0 || n == 0) return;
  EXACLIM_CHECK(k > 0 && !a.empty(), "GemmPackedImplicit: A not packed");
  EXACLIM_CHECK(b.image != nullptr && b.rows != nullptr && b.stride >= 1 &&
                    b.in_row_stride >= 1,
                "GemmPackedImplicit: bad implicit-B descriptor");
  RunPackedGemm(&a, /*trans_a=*/false, nullptr, /*trans_b=*/false, nullptr,
                &b, m, n, k, /*alpha=*/1.0f, beta, c, epi);
}

}  // namespace exaclim
