#include "tensor/gemm_kernel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

#include "common/alloc_tracker.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/workspace.hpp"

namespace exaclim {
namespace {

constexpr std::int64_t MR = kGemmMR;
constexpr std::int64_t NR = kGemmNR;
constexpr std::int64_t KC = kGemmKC;
constexpr std::int64_t MC = kGemmMC;
constexpr std::int64_t NC = kGemmNC;
static_assert(MC % MR == 0, "MC must hold whole MR-strips");
static_assert(NC % NR == 0, "NC must hold whole NR-strips");

std::int64_t RoundUp(std::int64_t v, std::int64_t unit) {
  return (v + unit - 1) / unit * unit;
}

std::atomic<GemmKernelMode>& ModeFlag() {
  static std::atomic<GemmKernelMode> flag([] {
    if (const char* env = std::getenv("EXACLIM_GEMM_KERNEL")) {
      if (const auto parsed = ParseGemmKernelMode(env)) return *parsed;
    }
    return GemmKernelMode::kAuto;
  }());
  return flag;
}

struct ResolvedKernel {
  GemmMicroKernelFn fn;
  const char* name;
};

ResolvedKernel ResolveMicroKernel() {
#if defined(EXACLIM_GEMM_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return {&GemmMicroKernelAvx2, "avx2-fma"};
  }
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
  return {&GemmMicroKernelNeon, "neon"};
#else
  return {&GemmMicroKernelPortable, "portable"};
#endif
}

const ResolvedKernel& ActiveKernel() {
  static const ResolvedKernel kernel = ResolveMicroKernel();
  return kernel;
}

// C *= beta over a contiguous run, honouring the beta == 0 no-read rule.
void ScaleC(float* c, std::int64_t elems, float beta) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::fill(c, c + elems, 0.0f);
    return;
  }
  for (std::int64_t i = 0; i < elems; ++i) c[i] *= beta;
}

// ------------------------------------------------------------ packing ---

// Packs alpha*op(A) strips [s0, s1) of KC block pc into dst: strip s
// holds rows [s*MR, s*MR+MR) x columns [pc, pc+kc), p-major with MR
// consecutive rows per column, rows beyond m zeroed.
void PackAStrips(bool trans_a, const float* a, std::int64_t m,
                 std::int64_t k, float alpha, std::int64_t pc,
                 std::int64_t kc, std::int64_t s0, std::int64_t s1,
                 float* dst) {
  for (std::int64_t s = s0; s < s1; ++s) {
    const std::int64_t ir = s * MR;
    const std::int64_t mr = std::min(MR, m - ir);
    float* strip = dst + (s - s0) * MR * kc;
    if (mr < MR) {
      std::memset(strip, 0, static_cast<std::size_t>(MR * kc) * sizeof(float));
    }
    if (!trans_a) {
      // A is row-major m x k: stream each row, scatter at stride MR.
      for (std::int64_t i = 0; i < mr; ++i) {
        const float* src = a + (ir + i) * k + pc;
        for (std::int64_t p = 0; p < kc; ++p) strip[p * MR + i] = alpha * src[p];
      }
    } else {
      // A stored k x m: each packed column is a contiguous slice of a row.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = a + (pc + p) * m + ir;
        float* dcol = strip + p * MR;
        for (std::int64_t i = 0; i < mr; ++i) dcol[i] = alpha * src[i];
      }
    }
  }
}

// Packs op(B)[pc:pc+kc, jc:jc+nc] into NR-strips: strip jr/NR holds
// columns [jc+jr, jc+jr+NR), p-major with NR consecutive columns per p,
// columns beyond n zeroed.
void PackBPanel(bool trans_b, const float* b, std::int64_t k, std::int64_t n,
                std::int64_t pc, std::int64_t kc, std::int64_t jc,
                std::int64_t nc, float* dst) {
  for (std::int64_t jr = 0; jr < nc; jr += NR) {
    const std::int64_t nr = std::min(NR, nc - jr);
    float* strip = dst + (jr / NR) * kc * NR;
    if (!trans_b) {
      // B is row-major k x n: each packed row is a contiguous slice.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = b + (pc + p) * n + jc + jr;
        float* drow = strip + p * NR;
        std::memcpy(drow, src, static_cast<std::size_t>(nr) * sizeof(float));
        for (std::int64_t j = nr; j < NR; ++j) drow[j] = 0.0f;
      }
    } else {
      // B stored n x k: stream each B row, scatter at stride NR.
      if (nr < NR) {
        std::memset(strip, 0,
                    static_cast<std::size_t>(kc * NR) * sizeof(float));
      }
      for (std::int64_t j = 0; j < nr; ++j) {
        const float* src = b + (jc + jr + j) * k + pc;
        float* dcol = strip + j;
        for (std::int64_t p = 0; p < kc; ++p) dcol[p * NR] = src[p];
      }
    }
  }
}

// Applies a microkernel accumulator (NR-strided, from the edge-tile path)
// to the mr x nr corner of C at row stride ldc.
void MergeEdgeTile(const float* acc, float* c, std::int64_t mr,
                   std::int64_t nr, std::int64_t ldc, float beta) {
  for (std::int64_t i = 0; i < mr; ++i) {
    const float* arow = acc + i * NR;
    float* crow = c + i * ldc;
    if (beta == 0.0f) {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] = arow[j];
    } else if (beta == 1.0f) {
      for (std::int64_t j = 0; j < nr; ++j) crow[j] += arow[j];
    } else {
      for (std::int64_t j = 0; j < nr; ++j) {
        crow[j] = beta * crow[j] + arow[j];
      }
    }
  }
}

// ------------------------------------------------------------- driver ---

// Shared KC/MC/NC walk behind GemmPacked and GemmPackedWithA. When
// `prepacked` is non-null its panels replace on-the-fly A packing (and
// alpha is already folded in). Parallelism is over MR-strips of C: the
// strip space partitions identically for every pc, and each C element's
// FP contraction order is fixed by (KC walk, microkernel p loop), so
// results never depend on the thread count.
void RunPackedGemm(const PackedGemmA* prepacked, bool trans_a,
                   const float* a, bool trans_b, const float* b,
                   std::int64_t m, std::int64_t n, std::int64_t k,
                   float alpha, float beta, float* c) {
  const GemmMicroKernelFn kernel = ActiveKernel().fn;
  const std::int64_t m_strips = (m + MR - 1) / MR;
  const std::int64_t strips_per_mc = MC / MR;

  for (std::int64_t jc = 0; jc < n; jc += NC) {
    const std::int64_t nc = std::min(NC, n - jc);
    const std::int64_t nc_pad = RoundUp(nc, NR);
    for (std::int64_t pc = 0; pc < k; pc += KC) {
      const std::int64_t kc = std::min(KC, k - pc);
      const float beta_eff = pc == 0 ? beta : 1.0f;
      // The forking thread packs B once; strip tasks share it read-only
      // (ParallelFor joins before the next acquire can grow the slot).
      // Steady state the scratch slots are warm, so the gemm.pack.*
      // census sites read zero; growth (first call, bigger shape) is
      // exactly what they catch.
      float* bpack;
      {
        EXACLIM_ALLOC_CENSUS_THREAD("gemm.pack.b");
        bpack = AcquireScratch(ScratchSlot::kGemmPackB,
                               static_cast<std::size_t>(kc * nc_pad));
        PackBPanel(trans_b, b, k, n, pc, kc, jc, nc, bpack);
      }
      const float* pre_block = prepacked ? prepacked->Block(pc) : nullptr;

      ParallelFor(
          0, static_cast<std::size_t>(m_strips),
          [&](std::size_t lo_s, std::size_t hi_s) {
            const auto lo = static_cast<std::int64_t>(lo_s);
            const auto hi = static_cast<std::int64_t>(hi_s);
            for (std::int64_t s0 = lo; s0 < hi; s0 += strips_per_mc) {
              const std::int64_t s1 = std::min(hi, s0 + strips_per_mc);
              const float* apack;
              if (pre_block != nullptr) {
                apack = pre_block + s0 * MR * kc;
              } else {
                EXACLIM_ALLOC_CENSUS_THREAD("gemm.pack.a");
                float* dst = AcquireScratch(
                    ScratchSlot::kGemmPackA,
                    static_cast<std::size_t>((s1 - s0) * MR * kc));
                PackAStrips(trans_a, a, m, k, alpha, pc, kc, s0, s1, dst);
                apack = dst;
              }
              // hot-path: begin
              for (std::int64_t jr = 0; jr < nc; jr += NR) {
                const std::int64_t nr = std::min(NR, nc - jr);
                const float* bstrip = bpack + (jr / NR) * kc * NR;
                for (std::int64_t s = s0; s < s1; ++s) {
                  const std::int64_t ir = s * MR;
                  const std::int64_t mr = std::min(MR, m - ir);
                  const float* astrip = apack + (s - s0) * MR * kc;
                  float* ctile = c + ir * n + jc + jr;
                  if (mr == MR && nr == NR) {
                    kernel(kc, astrip, bstrip, ctile, n, beta_eff);
                  } else {
                    float acc[kGemmMR * kGemmNR];
                    kernel(kc, astrip, bstrip, acc, NR, 0.0f);
                    MergeEdgeTile(acc, ctile, mr, nr, n, beta_eff);
                  }
                }
              }
              // hot-path: end
            }
          },
          /*grain=*/1);
    }
  }
}

}  // namespace

// ------------------------------------------------- kernel selection -----

const char* ToString(GemmKernelMode mode) {
  switch (mode) {
    case GemmKernelMode::kAuto: return "auto";
    case GemmKernelMode::kPacked: return "packed";
    case GemmKernelMode::kReference: return "reference";
  }
  return "?";
}

std::optional<GemmKernelMode> ParseGemmKernelMode(std::string_view value) {
  if (value == "auto") return GemmKernelMode::kAuto;
  if (value == "packed") return GemmKernelMode::kPacked;
  if (value == "reference") return GemmKernelMode::kReference;
  return std::nullopt;
}

GemmKernelMode GemmKernelModeInUse() {
  return ModeFlag().load(std::memory_order_relaxed);
}

void SetGemmKernelMode(GemmKernelMode mode) {
  ModeFlag().store(mode, std::memory_order_relaxed);
}

bool GemmUsesPackedEngine() {
  return GemmKernelModeInUse() != GemmKernelMode::kReference;
}

const char* GemmMicroKernelName() { return ActiveKernel().name; }

GemmMicroKernelFn ActiveGemmMicroKernel() { return ActiveKernel().fn; }

// ------------------------------------------------------ microkernels ----

void GemmMicroKernelPortable(std::int64_t kc, const float* a, const float* b,
                             float* c, std::int64_t ldc, float beta) {
  // Fixed trip counts + __restrict let the autovectorizer keep the whole
  // accumulator tile in registers (modulo spills on narrow ISAs).
  // hot-path: begin
  float acc[kGemmMR * kGemmNR] = {};
  const float* __restrict ap = a;
  const float* __restrict bp = b;
  for (std::int64_t p = 0; p < kc; ++p) {
    for (std::int64_t i = 0; i < MR; ++i) {
      const float av = ap[i];
      float* __restrict arow = acc + i * NR;
      for (std::int64_t j = 0; j < NR; ++j) arow[j] += av * bp[j];
    }
    ap += MR;
    bp += NR;
  }
  for (std::int64_t i = 0; i < MR; ++i) {
    const float* arow = acc + i * NR;
    float* __restrict crow = c + i * ldc;
    if (beta == 0.0f) {
      for (std::int64_t j = 0; j < NR; ++j) crow[j] = arow[j];
    } else if (beta == 1.0f) {
      for (std::int64_t j = 0; j < NR; ++j) crow[j] += arow[j];
    } else {
      for (std::int64_t j = 0; j < NR; ++j) {
        crow[j] = beta * crow[j] + arow[j];
      }
    }
  }
  // hot-path: end
}

#if defined(__aarch64__) && defined(__ARM_NEON)
void GemmMicroKernelNeon(std::int64_t kc, const float* a, const float* b,
                         float* c, std::int64_t ldc, float beta) {
  // hot-path: begin
  float32x4_t acc[kGemmMR][4];
  for (int i = 0; i < kGemmMR; ++i) {
    for (int q = 0; q < 4; ++q) acc[i][q] = vdupq_n_f32(0.0f);
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    const float32x4_t b0 = vld1q_f32(b);
    const float32x4_t b1 = vld1q_f32(b + 4);
    const float32x4_t b2 = vld1q_f32(b + 8);
    const float32x4_t b3 = vld1q_f32(b + 12);
    for (int i = 0; i < kGemmMR; ++i) {
      const float32x4_t av = vdupq_n_f32(a[i]);
      acc[i][0] = vfmaq_f32(acc[i][0], av, b0);
      acc[i][1] = vfmaq_f32(acc[i][1], av, b1);
      acc[i][2] = vfmaq_f32(acc[i][2], av, b2);
      acc[i][3] = vfmaq_f32(acc[i][3], av, b3);
    }
    a += kGemmMR;
    b += kGemmNR;
  }
  for (int i = 0; i < kGemmMR; ++i) {
    float* crow = c + i * ldc;
    for (int q = 0; q < 4; ++q) {
      float32x4_t out = acc[i][q];
      if (beta == 1.0f) {
        out = vaddq_f32(vld1q_f32(crow + 4 * q), out);
      } else if (beta != 0.0f) {
        out = vfmaq_n_f32(out, vld1q_f32(crow + 4 * q), beta);
      }
      vst1q_f32(crow + 4 * q, out);
    }
  }
  // hot-path: end
}
#endif  // __aarch64__ && __ARM_NEON

// ------------------------------------------------------ prepacked A -----

void PackedGemmA::Pack(bool trans_a, std::int64_t m, std::int64_t k,
                       float alpha, const float* a) {
  EXACLIM_CHECK(m >= 0 && k >= 0, "PackedGemmA: bad dims " << m << "x" << k);
  m_ = m;
  k_ = k;
  m_padded_ = RoundUp(m, MR);
  data_.resize(static_cast<std::size_t>(m_padded_ * k));
  const std::int64_t strips = (m + MR - 1) / MR;
  for (std::int64_t pc = 0; pc < k; pc += KC) {
    const std::int64_t kc = std::min(KC, k - pc);
    PackAStrips(trans_a, a, m, k, alpha, pc, kc, 0, strips,
                data_.data() + m_padded_ * pc);
  }
}

// ------------------------------------------------------- entry points ---

void GemmPacked(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
                std::int64_t k, float alpha, const float* a, const float* b,
                float beta, float* c) {
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    // BLAS semantics: no product term; beta == 0 overwrites C unread.
    ScaleC(c, m * n, beta);
    return;
  }
  RunPackedGemm(nullptr, trans_a, a, trans_b, b, m, n, k, alpha, beta, c);
}

void GemmPackedWithA(const PackedGemmA& a, bool trans_b, std::int64_t n,
                     const float* b, float beta, float* c) {
  const std::int64_t m = a.m();
  const std::int64_t k = a.k();
  if (m == 0 || n == 0) return;
  if (k == 0) {
    ScaleC(c, m * n, beta);
    return;
  }
  EXACLIM_CHECK(!a.empty(), "GemmPackedWithA: operand not packed");
  RunPackedGemm(&a, /*trans_a=*/false, nullptr, trans_b, b, m, n, k,
                /*alpha=*/1.0f, beta, c);
}

}  // namespace exaclim
