#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "tensor/shape.hpp"

namespace exaclim {

/// Dense FP32 tensor with row-major (NCHW) layout.
///
/// All network compute happens in FP32; FP16 training is emulated by
/// round-tripping values through the software binary16 type at the points
/// where the paper's pipeline stored FP16 (activations, weight copies,
/// gradients) — see tensor/cast.hpp. This captures the numerical behaviour
/// of mixed-precision Tensor Core training (FP16 storage, FP32 accumulate)
/// without a second kernel set.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(TensorShape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.NumElements()), 0.0f) {}

  static Tensor Zeros(TensorShape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(TensorShape shape, float value);
  /// Elements drawn from N(mean, stddev); used for weight init.
  static Tensor Randn(TensorShape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  static Tensor Uniform(TensorShape shape, Rng& rng, float lo, float hi);
  static Tensor FromVector(TensorShape shape, std::vector<float> values);

  const TensorShape& shape() const { return shape_; }
  std::int64_t NumElements() const {
    return static_cast<std::int64_t>(data_.size());
  }
  bool Empty() const { return data_.empty(); }

  std::span<float> Data() { return data_; }
  std::span<const float> Data() const { return data_; }
  float* Raw() { return data_.data(); }
  const float* Raw() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// NCHW element access (rank-4 only). Bounds-checked.
  float& At(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float At(std::int64_t n, std::int64_t c, std::int64_t h,
           std::int64_t w) const;

  /// Reinterprets the buffer under a new shape with equal element count.
  Tensor Reshaped(TensorShape new_shape) const;

  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  // In-place arithmetic (elementwise, shapes must match).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);

  /// this += alpha * other.
  void Axpy(float alpha, const Tensor& other);

  float Sum() const;
  float Max() const;
  float Min() const;
  /// L2 norm of all elements.
  float Norm() const;
  float Dot(const Tensor& other) const;

  bool AllFinite() const;

 private:
  std::size_t Offset(std::int64_t n, std::int64_t c, std::int64_t h,
                     std::int64_t w) const;

  TensorShape shape_;
  std::vector<float> data_;
};

}  // namespace exaclim
