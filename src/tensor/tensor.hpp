#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/pool.hpp"
#include "common/rng.hpp"
#include "tensor/shape.hpp"

namespace exaclim {

/// Dense FP32 tensor with row-major (NCHW) layout.
///
/// All network compute happens in FP32; FP16 training is emulated by
/// round-tripping values through the software binary16 type at the points
/// where the paper's pipeline stored FP16 (activations, weight copies,
/// gradients) — see tensor/cast.hpp. This captures the numerical behaviour
/// of mixed-precision Tensor Core training (FP16 storage, FP32 accumulate)
/// without a second kernel set.
///
/// Storage is a pooled buffer handle (common/pool.hpp, DESIGN §12): the
/// element buffer comes from the size-bucketed arena and returns to it on
/// destruction, so a warmed-up training step constructs and destroys
/// tensor temporaries without heap traffic. Copy-assignment reuses the
/// existing buffer when the new element count fits its capacity (the
/// same guarantee std::vector gave the cached_input_ = input pattern).
/// With EXACLIM_POOL=off every buffer is a plain exact-size heap
/// allocation, bit-identical in behaviour.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(TensorShape shape);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept
      : shape_(other.shape_), buf_(std::move(other.buf_)),
        size_(other.size_) {
    other.shape_ = TensorShape();
    other.size_ = 0;
  }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      shape_ = other.shape_;
      buf_ = std::move(other.buf_);
      size_ = other.size_;
      other.shape_ = TensorShape();
      other.size_ = 0;
    }
    return *this;
  }
  ~Tensor() = default;

  static Tensor Zeros(TensorShape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(TensorShape shape, float value);
  /// Elements drawn from N(mean, stddev); used for weight init.
  static Tensor Randn(TensorShape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  static Tensor Uniform(TensorShape shape, Rng& rng, float lo, float hi);
  /// Copies `values` into pooled storage.
  static Tensor FromVector(TensorShape shape, std::span<const float> values);
  static Tensor FromVector(TensorShape shape, std::vector<float> values);

  const TensorShape& shape() const { return shape_; }
  std::int64_t NumElements() const { return size_; }
  bool Empty() const { return size_ == 0; }

  std::span<float> Data() {
    return {buf_.data(), static_cast<std::size_t>(size_)};
  }
  std::span<const float> Data() const {
    return {buf_.data(), static_cast<std::size_t>(size_)};
  }
  float* Raw() { return buf_.data(); }
  const float* Raw() const { return buf_.data(); }

  float& operator[](std::size_t i) { return buf_.data()[i]; }
  float operator[](std::size_t i) const { return buf_.data()[i]; }

  /// NCHW element access (rank-4 only). Bounds-checked.
  float& At(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float At(std::int64_t n, std::int64_t c, std::int64_t h,
           std::int64_t w) const;

  /// Copies the elements into a fresh tensor with a new shape of equal
  /// element count. The result owns its own pool buffer — it never
  /// aliases the source's storage, so writes through either tensor stay
  /// invisible to the other (asserted in test_pool.cpp).
  Tensor Reshaped(TensorShape new_shape) const;

  void Fill(float value);
  void SetZero() { Fill(0.0f); }

  // In-place arithmetic (elementwise, shapes must match).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);

  /// this += alpha * other.
  void Axpy(float alpha, const Tensor& other);

  float Sum() const;
  float Max() const;
  float Min() const;
  /// L2 norm of all elements.
  float Norm() const;
  float Dot(const Tensor& other) const;

  bool AllFinite() const;

 private:
  std::size_t Offset(std::int64_t n, std::int64_t c, std::int64_t h,
                     std::int64_t w) const;

  TensorShape shape_;
  PoolBuffer buf_;
  std::int64_t size_ = 0;  // elements in use (<= buf_.capacity())
};

}  // namespace exaclim
