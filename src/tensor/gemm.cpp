#include "tensor/gemm.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "common/workspace.hpp"
#include "tensor/gemm_kernel.hpp"

namespace exaclim {
namespace {

// Reference kernel (EXACLIM_GEMM_KERNEL=reference): the pre-engine flat
// cache-blocked walk, kept for A/B testing and bisection against the
// packed microkernel engine in gemm_kernel.cpp.
constexpr std::int64_t kBlockM = 64;
constexpr std::int64_t kBlockN = 256;
constexpr std::int64_t kBlockK = 256;

inline float LoadA(const float* a, bool trans_a, std::int64_t m,
                   std::int64_t k, std::int64_t i, std::int64_t p) {
  return trans_a ? a[p * m + i] : a[i * k + p];
}

inline float LoadB(const float* b, bool trans_b, std::int64_t k,
                   std::int64_t n, std::int64_t p, std::int64_t j) {
  return trans_b ? b[j * k + p] : b[p * n + j];
}

// Computes one M-panel of C. Packs the K×N panel of op(B) once per K-block
// so the inner loop streams contiguously regardless of transposes. The
// panel buffer is this thread's persistent scratch slot — tasks used to
// construct a std::vector per closure invocation, which put a malloc/free
// on every dispatch.
void GemmPanel(bool trans_a, bool trans_b, std::int64_t i0, std::int64_t i1,
               std::int64_t n, std::int64_t k, float alpha, const float* a,
               std::int64_t m, const float* b, float beta, float* c) {
  float* packed =
      AcquireScratch(ScratchSlot::kGemmRefPanel,
                     static_cast<std::size_t>(kBlockK) * kBlockN);

  for (std::int64_t i = i0; i < i1; ++i) {
    float* row = c + i * n;
    if (beta == 0.0f) {
      std::fill(row, row + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }

  for (std::int64_t p0 = 0; p0 < k; p0 += kBlockK) {
    const std::int64_t pb = std::min(kBlockK, k - p0);
    for (std::int64_t j0 = 0; j0 < n; j0 += kBlockN) {
      const std::int64_t jb = std::min(kBlockN, n - j0);
      // Pack op(B)[p0:p0+pb, j0:j0+jb] row-major into the panel buffer.
      for (std::int64_t p = 0; p < pb; ++p) {
        float* dst = packed + p * jb;
        if (!trans_b) {
          const float* src = b + (p0 + p) * n + j0;
          std::copy(src, src + jb, dst);
        } else {
          for (std::int64_t j = 0; j < jb; ++j) {
            dst[j] = LoadB(b, trans_b, k, n, p0 + p, j0 + j);
          }
        }
      }
      for (std::int64_t ii0 = i0; ii0 < i1; ii0 += kBlockM) {
        const std::int64_t ib = std::min(kBlockM, i1 - ii0);
        for (std::int64_t i = ii0; i < ii0 + ib; ++i) {
          float* crow = c + i * n + j0;
          // Unroll by 4 over K for ILP; the compiler vectorises over j.
          std::int64_t p = 0;
          for (; p + 4 <= pb; p += 4) {
            const float a0 = alpha * LoadA(a, trans_a, m, k, i, p0 + p);
            const float a1 = alpha * LoadA(a, trans_a, m, k, i, p0 + p + 1);
            const float a2 = alpha * LoadA(a, trans_a, m, k, i, p0 + p + 2);
            const float a3 = alpha * LoadA(a, trans_a, m, k, i, p0 + p + 3);
            const float* b0 = packed + p * jb;
            const float* b1 = b0 + jb;
            const float* b2 = b1 + jb;
            const float* b3 = b2 + jb;
            for (std::int64_t j = 0; j < jb; ++j) {
              crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
          }
          for (; p < pb; ++p) {
            const float av = alpha * LoadA(a, trans_a, m, k, i, p0 + p);
            const float* brow = packed + p * jb;
            for (std::int64_t j = 0; j < jb; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

void GemmReference(bool trans_a, bool trans_b, std::int64_t m,
                   std::int64_t n, std::int64_t k, float alpha,
                   const float* a, const float* b, float beta, float* c) {
  // Tasks are M-panels; panels are independent so this is safely parallel.
  // Clamp the grain so every task covers at least one full kBlockM panel:
  // at paper-scale pixel counts (n = 884736 for a 1152×768 map) the
  // flops-balancing term degenerates below 1 and would dispatch one
  // closure per row.
  const std::size_t grain = static_cast<std::size_t>(std::max<std::int64_t>(
      kBlockM, kBlockM * 512 / std::max<std::int64_t>(1, n)));
  ParallelFor(
      0, static_cast<std::size_t>(m),
      [&](std::size_t lo, std::size_t hi) {
        GemmPanel(trans_a, trans_b, static_cast<std::int64_t>(lo),
                  static_cast<std::int64_t>(hi), n, k, alpha, a, m, b, beta,
                  c);
      },
      grain);
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, const float* b,
          float beta, float* c) {
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    // BLAS semantics: no product term, C = beta*C; beta == 0 overwrites C,
    // never reads it (C may hold NaN/Inf garbage).
    if (beta == 0.0f) {
      std::fill(c, c + m * n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
    }
    return;
  }
  if (GemmUsesPackedEngine()) {
    GemmPacked(trans_a, trans_b, m, n, k, alpha, a, b, beta, c);
    return;
  }
  GemmReference(trans_a, trans_b, m, n, k, alpha, a, b, beta, c);
}

void GemmChecked(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
                 std::int64_t k, float alpha, std::span<const float> a,
                 std::span<const float> b, float beta, std::span<float> c) {
  EXACLIM_CHECK(static_cast<std::int64_t>(a.size()) == m * k,
                "A size " << a.size() << " != " << m * k);
  EXACLIM_CHECK(static_cast<std::int64_t>(b.size()) == k * n,
                "B size " << b.size() << " != " << k * n);
  EXACLIM_CHECK(static_cast<std::int64_t>(c.size()) == m * n,
                "C size " << c.size() << " != " << m * n);
  Gemm(trans_a, trans_b, m, n, k, alpha, a.data(), b.data(), beta, c.data());
}

}  // namespace exaclim
