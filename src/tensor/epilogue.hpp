#pragma once

#include <bit>
#include <cstdint>

// Shared scalar epilogue math — the bit-exactness contract of DESIGN §15.
//
// The fused GEMM epilogue (tensor/gemm_kernel.cpp) and the standalone
// BatchNorm2d / ReLU layers (nn/norm.cpp, nn/activation.cpp) must produce
// bit-identical results so EXACLIM_CONV_FUSE is a pure perf knob. Both
// sides therefore evaluate the pointwise math through these SAME inline
// definitions, compiled in TUs with identical flags — never the -mfma
// AVX2 kernel TU, whose contraction rules differ from the baseline ISA.
// The expressions are kept trivially small so the compiler's FP-contract
// decisions (a*b+c fusing on targets with scalar FMA) are made once per
// definition, not once per call site.

namespace exaclim {

/// x_hat = (v - mean) * inv_std — the normalisation half of BatchNorm.
inline float BnNormalise(float v, float mean, float inv_std) {
  return (v - mean) * inv_std;
}

/// gamma * x_hat + beta — the affine half of BatchNorm.
inline float BnAffine(float x_hat, float gamma, float beta) {
  return gamma * x_hat + beta;
}

/// Full folded BatchNorm scale/shift as one step (the GEMM epilogue has
/// no use for the intermediate x_hat the layer caches for backward).
inline float BnScaleShift(float v, float mean, float inv_std, float gamma,
                          float beta) {
  return BnAffine(BnNormalise(v, mean, inv_std), gamma, beta);
}

/// The ReLU activity predicate — also the mask bit the backward consumes.
inline bool ReluActive(float v) { return v > 0.0f; }

/// ReLU itself. Written as the ternary (not max) so NaN and -0.0 inputs
/// map to +0.0 everywhere, including the SIMD merge paths that mirror it.
inline float ReluValue(float v) { return ReluActive(v) ? v : 0.0f; }

/// Branchless ReluValue, bit-exact with the ternary for every input:
/// positive v keeps its bits, NaN/-0.0/negative all clear to +0.0 (the
/// predicate is false, so the mask wipes every bit). The fused GEMM merge
/// must use this form: its C tiles are cache-cold after the B panel
/// streamed through, and a data-dependent branch on the loaded value
/// serializes the outstanding misses — cmp+mask keeps them pipelined.
inline float ReluValueBits(float v) {
  const std::uint32_t keep = 0u - static_cast<std::uint32_t>(ReluActive(v));
  return std::bit_cast<float>(std::bit_cast<std::uint32_t>(v) & keep);
}

}  // namespace exaclim
