#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/half.hpp"

namespace exaclim {
class Tensor;

/// Numeric precision of a training pipeline. FP16 means "mixed precision
/// as the paper ran it": FP16 storage for activations/gradients/weight
/// copies with FP32 master weights and accumulation (Tensor Core style).
enum class Precision { kFP32, kFP16 };

const char* ToString(Precision p);

/// Rounds every element through IEEE binary16 in place (value -> half ->
/// value). This is the emulation point for FP16 storage: applying it at
/// layer boundaries gives the exact quantisation, overflow-to-inf and
/// flush behaviour the paper's mixed-precision runs saw.
void RoundTripHalf(std::span<float> values);
void RoundTripHalf(Tensor& tensor);

/// Converts to packed binary16 words (the wire/storage format used by the
/// FP16 allreduce path and the staging format benchmarks). The span
/// overload writes into a preallocated buffer of equal size; conversions
/// run branch-light bit-twiddling loops, parallelised over large spans,
/// bit-identical to element-by-element Half construction.
void PackHalf(std::span<const float> values,
              std::span<std::uint16_t> packed);
std::vector<std::uint16_t> PackHalf(std::span<const float> values);
void UnpackHalf(std::span<const std::uint16_t> packed,
                std::span<float> values);

/// Counts elements that are not finite after binary16 conversion — the
/// overflow detector used by dynamic loss scaling and the Sec V-B1
/// stability experiment.
std::int64_t CountHalfNonFinite(std::span<const float> values);

/// Bytes per element under a given precision (4 or 2); used by the traffic
/// accounting in flops/ and netsim/.
inline int BytesPerElement(Precision p) {
  return p == Precision::kFP32 ? 4 : 2;
}

}  // namespace exaclim
