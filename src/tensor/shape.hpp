#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>

#include "common/error.hpp"

namespace exaclim {

/// Dense row-major tensor shape. Activations follow the NCHW convention
/// throughout (batch, channels, height, width), matching the layout the
/// paper's cuDNN kernels used.
///
/// Dims live inline (fixed-capacity array, no heap): every layer builds
/// shapes on each Forward/Backward, so a heap-backed dims vector would
/// put allocations on the steady-state step path the pool is designed to
/// keep empty (DESIGN §12).
class TensorShape {
 public:
  /// More than enough for NCHW plus a margin; constructing a shape with
  /// higher rank throws.
  static constexpr std::size_t kMaxRank = 6;

  TensorShape() = default;
  TensorShape(std::initializer_list<std::int64_t> dims) {
    Assign(std::span<const std::int64_t>(dims.begin(), dims.size()));
  }
  explicit TensorShape(std::span<const std::int64_t> dims) { Assign(dims); }

  static TensorShape NCHW(std::int64_t n, std::int64_t c, std::int64_t h,
                          std::int64_t w) {
    return TensorShape{n, c, h, w};
  }

  std::size_t rank() const { return rank_; }
  std::int64_t dim(std::size_t i) const {
    EXACLIM_CHECK(i < rank_, "dim index " << i << " out of rank " << rank_);
    return dims_[i];
  }
  std::int64_t operator[](std::size_t i) const { return dim(i); }

  std::span<const std::int64_t> dims() const {
    return {dims_.data(), rank_};
  }

  std::int64_t NumElements() const {
    std::int64_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  // NCHW accessors (valid for rank-4 shapes).
  std::int64_t n() const { return dim(0); }
  std::int64_t c() const { return dim(1); }
  std::int64_t h() const { return dim(2); }
  std::int64_t w() const { return dim(3); }

  bool operator==(const TensorShape& other) const {
    if (rank_ != other.rank_) return false;
    for (std::size_t i = 0; i < rank_; ++i) {
      if (dims_[i] != other.dims_[i]) return false;
    }
    return true;
  }
  bool operator!=(const TensorShape& other) const {
    return !(*this == other);
  }

  std::string ToString() const {
    std::string out = "[";
    for (std::size_t i = 0; i < rank_; ++i) {
      if (i) out += ",";
      out += std::to_string(dims_[i]);
    }
    return out + "]";
  }

 private:
  void Assign(std::span<const std::int64_t> dims) {
    EXACLIM_CHECK(dims.size() <= kMaxRank,
                  "shape rank " << dims.size() << " exceeds max "
                                << kMaxRank);
    for (std::size_t i = 0; i < dims.size(); ++i) {
      EXACLIM_CHECK(dims[i] >= 0, "negative dimension in shape");
      dims_[i] = dims[i];
    }
    rank_ = dims.size();
  }

  std::array<std::int64_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

}  // namespace exaclim
