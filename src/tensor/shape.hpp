#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace exaclim {

/// Dense row-major tensor shape. Activations follow the NCHW convention
/// throughout (batch, channels, height, width), matching the layout the
/// paper's cuDNN kernels used.
class TensorShape {
 public:
  TensorShape() = default;
  TensorShape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
    Validate();
  }
  explicit TensorShape(std::vector<std::int64_t> dims)
      : dims_(std::move(dims)) {
    Validate();
  }

  static TensorShape NCHW(std::int64_t n, std::int64_t c, std::int64_t h,
                          std::int64_t w) {
    return TensorShape{n, c, h, w};
  }

  std::size_t rank() const { return dims_.size(); }
  std::int64_t dim(std::size_t i) const {
    EXACLIM_CHECK(i < dims_.size(), "dim index " << i << " out of rank "
                                                 << dims_.size());
    return dims_[i];
  }
  std::int64_t operator[](std::size_t i) const { return dim(i); }

  const std::vector<std::int64_t>& dims() const { return dims_; }

  std::int64_t NumElements() const {
    return std::accumulate(dims_.begin(), dims_.end(), std::int64_t{1},
                           std::multiplies<>());
  }

  // NCHW accessors (valid for rank-4 shapes).
  std::int64_t n() const { return dim(0); }
  std::int64_t c() const { return dim(1); }
  std::int64_t h() const { return dim(2); }
  std::int64_t w() const { return dim(3); }

  bool operator==(const TensorShape& other) const {
    return dims_ == other.dims_;
  }
  bool operator!=(const TensorShape& other) const {
    return !(*this == other);
  }

  std::string ToString() const {
    std::string out = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(dims_[i]);
    }
    return out + "]";
  }

 private:
  void Validate() const {
    for (auto d : dims_) {
      EXACLIM_CHECK(d >= 0, "negative dimension in shape");
    }
  }

  std::vector<std::int64_t> dims_;
};

}  // namespace exaclim
