#pragma once

#include <cstdint>
#include <span>

namespace exaclim {

/// C(m,n) = alpha * op(A) * op(B) + beta * C, row-major.
///
/// op(A) is A (m,k) or A^T when trans_a (A stored as (k,m)); likewise for B.
/// Dispatches to the packed register-blocked microkernel engine
/// (tensor/gemm_kernel.hpp, DESIGN §10) unless
/// EXACLIM_GEMM_KERNEL=reference selects the flat cache-blocked walk;
/// both parallelise over row panels with ThreadPool::Global(). This is
/// the workhorse behind im2col convolution — the stand-in for cuDNN's
/// implicit-GEMM kernels (Sec VI). beta == 0 overwrites C without reading
/// it; alpha == 0 skips the product entirely.
void Gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, const float* b,
          float beta, float* c);

/// Convenience span-checked wrapper used by tests.
void GemmChecked(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
                 std::int64_t k, float alpha, std::span<const float> a,
                 std::span<const float> b, float beta, std::span<float> c);

}  // namespace exaclim
