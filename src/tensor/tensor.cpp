#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace exaclim {

Tensor::Tensor(TensorShape shape)
    : shape_(std::move(shape)),
      buf_(AcquirePoolBuffer(
          static_cast<std::size_t>(shape_.NumElements()))),
      size_(shape_.NumElements()) {
  // Pool blocks hand back whatever the previous owner left; match the
  // zero-initialised std::vector this storage replaced so pooled and
  // non-pooled runs stay bit-identical.
  if (size_ > 0) {
    std::memset(buf_.data(), 0,
                static_cast<std::size_t>(size_) * sizeof(float));
  }
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_),
      buf_(AcquirePoolBuffer(static_cast<std::size_t>(other.size_))),
      size_(other.size_) {
  if (size_ > 0) {
    std::memcpy(buf_.data(), other.buf_.data(),
                static_cast<std::size_t>(size_) * sizeof(float));
  }
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  if (static_cast<std::size_t>(other.size_) > buf_.capacity()) {
    buf_ = AcquirePoolBuffer(static_cast<std::size_t>(other.size_));
  }
  size_ = other.size_;
  if (size_ > 0) {
    std::memcpy(buf_.data(), other.buf_.data(),
                static_cast<std::size_t>(size_) * sizeof(float));
  }
  return *this;
}

Tensor Tensor::Full(TensorShape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(TensorShape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.Data()) v = rng.Normal(mean, stddev);
  return t;
}

Tensor Tensor::Uniform(TensorShape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.Data()) v = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::FromVector(TensorShape shape, std::span<const float> values) {
  EXACLIM_CHECK(static_cast<std::int64_t>(values.size()) ==
                    shape.NumElements(),
                "value count " << values.size() << " != shape "
                               << shape.ToString());
  Tensor t;
  t.shape_ = std::move(shape);
  t.buf_ = AcquirePoolBuffer(values.size());
  t.size_ = static_cast<std::int64_t>(values.size());
  if (!values.empty()) {
    std::memcpy(t.buf_.data(), values.data(),
                values.size() * sizeof(float));
  }
  return t;
}

Tensor Tensor::FromVector(TensorShape shape, std::vector<float> values) {
  return FromVector(std::move(shape), std::span<const float>(values));
}

std::size_t Tensor::Offset(std::int64_t n, std::int64_t c, std::int64_t h,
                           std::int64_t w) const {
  EXACLIM_CHECK(shape_.rank() == 4, "At() requires rank-4, got rank "
                                        << shape_.rank());
  EXACLIM_CHECK(n >= 0 && n < shape_.n() && c >= 0 && c < shape_.c() &&
                    h >= 0 && h < shape_.h() && w >= 0 && w < shape_.w(),
                "index (" << n << "," << c << "," << h << "," << w
                          << ") out of " << shape_.ToString());
  return static_cast<std::size_t>(
      ((n * shape_.c() + c) * shape_.h() + h) * shape_.w() + w);
}

float& Tensor::At(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) {
  return buf_.data()[Offset(n, c, h, w)];
}

float Tensor::At(std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w) const {
  return buf_.data()[Offset(n, c, h, w)];
}

Tensor Tensor::Reshaped(TensorShape new_shape) const {
  EXACLIM_CHECK(new_shape.NumElements() == NumElements(),
                "reshape " << shape_.ToString() << " -> "
                           << new_shape.ToString()
                           << " changes element count");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.buf_ = AcquirePoolBuffer(static_cast<std::size_t>(size_));
  t.size_ = size_;
  if (size_ > 0) {
    std::memcpy(t.buf_.data(), buf_.data(),
                static_cast<std::size_t>(size_) * sizeof(float));
  }
  return t;
}

void Tensor::Fill(float value) {
  float* data = buf_.data();
  std::fill(data, data + size_, value);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  EXACLIM_CHECK(shape_ == other.shape_, "shape mismatch in +=");
  float* a = buf_.data();
  const float* b = other.buf_.data();
  for (std::int64_t i = 0; i < size_; ++i) a[i] += b[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  EXACLIM_CHECK(shape_ == other.shape_, "shape mismatch in -=");
  float* a = buf_.data();
  const float* b = other.buf_.data();
  for (std::int64_t i = 0; i < size_; ++i) a[i] -= b[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  float* a = buf_.data();
  for (std::int64_t i = 0; i < size_; ++i) a[i] *= scalar;
  return *this;
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  EXACLIM_CHECK(shape_ == other.shape_, "shape mismatch in Axpy");
  float* a = buf_.data();
  const float* b = other.buf_.data();
  for (std::int64_t i = 0; i < size_; ++i) a[i] += alpha * b[i];
}

float Tensor::Sum() const {
  double acc = 0.0;
  const float* a = buf_.data();
  for (std::int64_t i = 0; i < size_; ++i) acc += a[i];
  return static_cast<float>(acc);
}

float Tensor::Max() const {
  EXACLIM_CHECK(size_ > 0, "Max of empty tensor");
  const float* a = buf_.data();
  return *std::max_element(a, a + size_);
}

float Tensor::Min() const {
  EXACLIM_CHECK(size_ > 0, "Min of empty tensor");
  const float* a = buf_.data();
  return *std::min_element(a, a + size_);
}

float Tensor::Norm() const {
  double acc = 0.0;
  const float* a = buf_.data();
  for (std::int64_t i = 0; i < size_; ++i) {
    acc += static_cast<double>(a[i]) * a[i];
  }
  return static_cast<float>(std::sqrt(acc));
}

float Tensor::Dot(const Tensor& other) const {
  EXACLIM_CHECK(shape_ == other.shape_, "shape mismatch in Dot");
  const float* a = buf_.data();
  const float* b = other.buf_.data();
  double acc = 0.0;
  for (std::int64_t i = 0; i < size_; ++i) {
    acc += static_cast<double>(a[i]) * b[i];
  }
  return static_cast<float>(acc);
}

bool Tensor::AllFinite() const {
  const float* a = buf_.data();
  return std::all_of(a, a + size_,
                     [](float v) { return std::isfinite(v); });
}

}  // namespace exaclim
