#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace exaclim {

Tensor Tensor::Full(TensorShape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(TensorShape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.Normal(mean, stddev);
  return t;
}

Tensor Tensor::Uniform(TensorShape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::FromVector(TensorShape shape, std::vector<float> values) {
  EXACLIM_CHECK(static_cast<std::int64_t>(values.size()) ==
                    shape.NumElements(),
                "value count " << values.size() << " != shape "
                               << shape.ToString());
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

std::size_t Tensor::Offset(std::int64_t n, std::int64_t c, std::int64_t h,
                           std::int64_t w) const {
  EXACLIM_CHECK(shape_.rank() == 4, "At() requires rank-4, got rank "
                                        << shape_.rank());
  EXACLIM_CHECK(n >= 0 && n < shape_.n() && c >= 0 && c < shape_.c() &&
                    h >= 0 && h < shape_.h() && w >= 0 && w < shape_.w(),
                "index (" << n << "," << c << "," << h << "," << w
                          << ") out of " << shape_.ToString());
  return static_cast<std::size_t>(
      ((n * shape_.c() + c) * shape_.h() + h) * shape_.w() + w);
}

float& Tensor::At(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) {
  return data_[Offset(n, c, h, w)];
}

float Tensor::At(std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w) const {
  return data_[Offset(n, c, h, w)];
}

Tensor Tensor::Reshaped(TensorShape new_shape) const {
  EXACLIM_CHECK(new_shape.NumElements() == NumElements(),
                "reshape " << shape_.ToString() << " -> "
                           << new_shape.ToString()
                           << " changes element count");
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  EXACLIM_CHECK(shape_ == other.shape_, "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  EXACLIM_CHECK(shape_ == other.shape_, "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  EXACLIM_CHECK(shape_ == other.shape_, "shape mismatch in Axpy");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

float Tensor::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::Max() const {
  EXACLIM_CHECK(!data_.empty(), "Max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::Min() const {
  EXACLIM_CHECK(!data_.empty(), "Min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::Norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float Tensor::Dot(const Tensor& other) const {
  EXACLIM_CHECK(shape_ == other.shape_, "shape mismatch in Dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    acc += static_cast<double>(data_[i]) * other.data_[i];
  }
  return static_cast<float>(acc);
}

bool Tensor::AllFinite() const {
  return std::all_of(data_.begin(), data_.end(),
                     [](float v) { return std::isfinite(v); });
}

}  // namespace exaclim
