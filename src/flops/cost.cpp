#include "flops/cost.hpp"

namespace exaclim {

const char* ToString(KernelCategory c) {
  switch (c) {
    case KernelCategory::kFwdConv: return "Forward Convolutions";
    case KernelCategory::kFwdPointwise: return "Forward Point-wise";
    case KernelCategory::kBwdConv: return "Backward Convolutions";
    case KernelCategory::kBwdPointwise: return "Backward Point-wise";
    case KernelCategory::kOptimizer: return "Optimizer";
    case KernelCategory::kCopies: return "Copies/Transposes";
    case KernelCategory::kAllreduce: return "Allreduce (NCCL)";
    case KernelCategory::kConvert: return "Type Conversions";
  }
  return "?";
}

double TrainingCost::TotalFlops() const {
  double total = 0.0;
  for (const auto& c : categories) total += c.flops;
  return total;
}

double TrainingCost::TotalBytes() const {
  double total = 0.0;
  for (const auto& c : categories) total += c.bytes;
  return total;
}

double TrainingCost::ConvFlopsPerSample() const {
  return (at(KernelCategory::kFwdConv).flops +
          at(KernelCategory::kBwdConv).flops) /
         static_cast<double>(batch);
}

double ConvFlops(std::int64_t k, std::int64_t out_h, std::int64_t out_w,
                 std::int64_t in_c, std::int64_t out_c, std::int64_t batch) {
  return 2.0 * static_cast<double>(k) * k * static_cast<double>(out_h) *
         out_w * static_cast<double>(in_c) * out_c *
         static_cast<double>(batch);
}

TrainingCost AnalyzeTraining(const ArchSpec& spec, Precision precision,
                             std::int64_t batch) {
  TrainingCost cost;
  cost.batch = batch;
  const double e = BytesPerElement(precision);   // activation storage
  const double ew = 4.0;                         // FP32 master weights
  const double b = static_cast<double>(batch);

  for (const OpSpec& op : spec.ops) {
    const double in_elems = static_cast<double>(op.in_c) * op.in_h * op.in_w * b;
    const double out_elems =
        static_cast<double>(op.out_c) * op.out_h * op.out_w * b;
    const double weight_bytes = static_cast<double>(op.params) * e;

    switch (op.kind) {
      case OpSpec::Kind::kConv: {
        const double fwd =
            ConvFlops(op.kernel, op.out_h, op.out_w, op.in_c, op.out_c, batch);
        auto& f = cost.at(KernelCategory::kFwdConv);
        ++f.kernels;
        f.flops += fwd;
        f.bytes += (in_elems + out_elems) * e + weight_bytes;
        // Backward: data gradient + weight gradient, each ~ forward cost.
        auto& bwd = cost.at(KernelCategory::kBwdConv);
        bwd.kernels += 2;
        bwd.flops += 2.0 * fwd;
        bwd.bytes += (2 * in_elems + 2 * out_elems) * e + 2 * weight_bytes;
        break;
      }
      case OpSpec::Kind::kDeconv: {
        // MACs are per *input* position for a transposed conv.
        const double fwd =
            ConvFlops(op.kernel, op.in_h, op.in_w, op.in_c, op.out_c, batch);
        auto& f = cost.at(KernelCategory::kFwdConv);
        ++f.kernels;
        f.flops += fwd;
        f.bytes += (in_elems + out_elems) * e + weight_bytes;
        auto& bwd = cost.at(KernelCategory::kBwdConv);
        bwd.kernels += 2;
        bwd.flops += 2.0 * fwd;
        bwd.bytes += (2 * in_elems + 2 * out_elems) * e + 2 * weight_bytes;
        break;
      }
      case OpSpec::Kind::kNorm: {
        auto& f = cost.at(KernelCategory::kFwdPointwise);
        ++f.kernels;
        f.flops += 8.0 * out_elems;
        f.bytes += 3.0 * out_elems * e;
        auto& bwd = cost.at(KernelCategory::kBwdPointwise);
        ++bwd.kernels;
        bwd.flops += 10.0 * out_elems;
        bwd.bytes += 4.0 * out_elems * e;
        break;
      }
      case OpSpec::Kind::kActivation:
      case OpSpec::Kind::kBias: {
        auto& f = cost.at(KernelCategory::kFwdPointwise);
        ++f.kernels;
        f.flops += out_elems;
        f.bytes += 2.0 * out_elems * e;
        auto& bwd = cost.at(KernelCategory::kBwdPointwise);
        ++bwd.kernels;
        bwd.flops += out_elems;
        bwd.bytes += 2.0 * out_elems * e;
        break;
      }
      case OpSpec::Kind::kPool: {
        auto& f = cost.at(KernelCategory::kFwdPointwise);
        ++f.kernels;
        f.flops += static_cast<double>(op.kernel) * op.kernel * out_elems;
        f.bytes += (in_elems + out_elems) * e;
        auto& bwd = cost.at(KernelCategory::kBwdPointwise);
        ++bwd.kernels;
        bwd.bytes += (in_elems + out_elems) * e;
        break;
      }
      case OpSpec::Kind::kConcat: {
        // Pure data movement (the copies TensorFlow could not elide,
        // Sec VII-A) — forward copy plus backward split.
        auto& c = cost.at(KernelCategory::kCopies);
        c.kernels += 2;
        c.bytes += 4.0 * out_elems * e;
        break;
      }
      case OpSpec::Kind::kUpsample: {
        auto& f = cost.at(KernelCategory::kFwdPointwise);
        ++f.kernels;
        f.flops += 8.0 * out_elems;
        f.bytes += (in_elems + out_elems) * e;
        auto& bwd = cost.at(KernelCategory::kBwdPointwise);
        ++bwd.kernels;
        bwd.flops += 8.0 * out_elems;
        bwd.bytes += (in_elems + out_elems) * e;
        break;
      }
    }

    if (precision == Precision::kFP16 && op.params > 0) {
      // FP32 master weights are cast to FP16 for use each step.
      auto& conv = cost.at(KernelCategory::kConvert);
      ++conv.kernels;
      conv.flops += static_cast<double>(op.params);
      conv.bytes += static_cast<double>(op.params) * (ew + e);
    }
  }

  const double params = static_cast<double>(spec.TotalParams());
  auto& opt = cost.at(KernelCategory::kOptimizer);
  // One fused update kernel per op with parameters (SGD+momentum scale).
  for (const OpSpec& op : spec.ops) {
    if (op.params > 0) opt.kernels += 2;  // weight + bias/gamma-beta style
  }
  opt.flops += 4.0 * params;
  opt.bytes += 4.0 * params * ew;

  auto& ar = cost.at(KernelCategory::kAllreduce);
  // Ring all-reduce moves ~2x the gradient bytes through each GPU.
  ar.kernels = 1 + static_cast<std::int64_t>(spec.ops.size()) / 40;
  ar.flops += params;
  ar.bytes += 2.0 * params * e;

  return cost;
}

}  // namespace exaclim
