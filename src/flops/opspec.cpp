#include "flops/opspec.hpp"

#include <array>

#include "common/error.hpp"

namespace exaclim {
namespace {

std::int64_t ConvOut(std::int64_t size, std::int64_t k, std::int64_t stride,
                     std::int64_t pad, std::int64_t dilation = 1) {
  return (size + 2 * pad - (dilation * (k - 1) + 1)) / stride + 1;
}

/// Incrementally builds a spec while tracking the current feature shape.
class SpecBuilder {
 public:
  SpecBuilder(std::string name, std::int64_t c, std::int64_t h,
              std::int64_t w) {
    spec_.name = std::move(name);
    spec_.in_c = c_ = c;
    spec_.in_h = h_ = h;
    spec_.in_w = w_ = w;
  }

  std::int64_t c() const { return c_; }
  std::int64_t h() const { return h_; }
  std::int64_t w() const { return w_; }
  void SetShape(std::int64_t c, std::int64_t h, std::int64_t w) {
    c_ = c;
    h_ = h;
    w_ = w;
  }

  void Conv(const std::string& name, std::int64_t out_c, std::int64_t k,
            std::int64_t stride, std::int64_t dilation, bool bias,
            std::int64_t pad = -1) {
    if (pad < 0) pad = dilation * (k / 2);
    OpSpec op;
    op.name = name;
    op.kind = OpSpec::Kind::kConv;
    op.in_c = c_;
    op.out_c = out_c;
    op.kernel = k;
    op.stride = stride;
    op.dilation = dilation;
    op.in_h = h_;
    op.in_w = w_;
    op.out_h = ConvOut(h_, k, stride, pad, dilation);
    op.out_w = ConvOut(w_, k, stride, pad, dilation);
    op.params = c_ * out_c * k * k + (bias ? out_c : 0);
    if (bias) Pointwise(name + ".bias", OpSpec::Kind::kBias, out_c, op.out_h, op.out_w);
    // Insert conv before the bias op it may have queued (order cosmetic).
    spec_.ops.insert(spec_.ops.end() - (bias ? 1 : 0), op);
    SetShape(out_c, op.out_h, op.out_w);
  }

  void Deconv(const std::string& name, std::int64_t out_c, std::int64_t k,
              std::int64_t stride, std::int64_t pad, std::int64_t out_pad,
              bool bias) {
    OpSpec op;
    op.name = name;
    op.kind = OpSpec::Kind::kDeconv;
    op.in_c = c_;
    op.out_c = out_c;
    op.kernel = k;
    op.stride = stride;
    op.in_h = h_;
    op.in_w = w_;
    op.out_h = (h_ - 1) * stride - 2 * pad + k + out_pad;
    op.out_w = (w_ - 1) * stride - 2 * pad + k + out_pad;
    op.params = c_ * out_c * k * k + (bias ? out_c : 0);
    spec_.ops.push_back(op);
    if (bias) Pointwise(name + ".bias", OpSpec::Kind::kBias, out_c, op.out_h, op.out_w);
    SetShape(out_c, op.out_h, op.out_w);
  }

  void Norm(const std::string& name) {
    OpSpec op;
    op.name = name;
    op.kind = OpSpec::Kind::kNorm;
    op.in_c = op.out_c = c_;
    op.in_h = op.out_h = h_;
    op.in_w = op.out_w = w_;
    op.params = 2 * c_;
    spec_.ops.push_back(op);
  }

  void Activation(const std::string& name) {
    Pointwise(name, OpSpec::Kind::kActivation, c_, h_, w_);
  }

  void Pool(const std::string& name, std::int64_t k, std::int64_t stride,
            std::int64_t pad) {
    OpSpec op;
    op.name = name;
    op.kind = OpSpec::Kind::kPool;
    op.in_c = op.out_c = c_;
    op.kernel = k;
    op.stride = stride;
    op.in_h = h_;
    op.in_w = w_;
    op.out_h = ConvOut(h_, k, stride, pad);
    op.out_w = ConvOut(w_, k, stride, pad);
    spec_.ops.push_back(op);
    SetShape(c_, op.out_h, op.out_w);
  }

  void Concat(const std::string& name, std::int64_t added_c) {
    OpSpec op;
    op.name = name;
    op.kind = OpSpec::Kind::kConcat;
    op.in_c = c_;
    op.out_c = c_ + added_c;
    op.in_h = op.out_h = h_;
    op.in_w = op.out_w = w_;
    spec_.ops.push_back(op);
    SetShape(c_ + added_c, h_, w_);
  }

  void Upsample(const std::string& name, std::int64_t factor) {
    OpSpec op;
    op.name = name;
    op.kind = OpSpec::Kind::kUpsample;
    op.in_c = op.out_c = c_;
    op.in_h = h_;
    op.in_w = w_;
    op.out_h = h_ * factor;
    op.out_w = w_ * factor;
    spec_.ops.push_back(op);
    SetShape(c_, op.out_h, op.out_w);
  }

  ArchSpec Take() { return std::move(spec_); }

 private:
  void Pointwise(const std::string& name, OpSpec::Kind kind, std::int64_t c,
                 std::int64_t h, std::int64_t w) {
    OpSpec op;
    op.name = name;
    op.kind = kind;
    op.in_c = op.out_c = c;
    op.in_h = op.out_h = h;
    op.in_w = op.out_w = w;
    spec_.ops.push_back(op);
  }

  ArchSpec spec_;
  std::int64_t c_ = 0, h_ = 0, w_ = 0;
};

void DenseBlockSpec(SpecBuilder& b, const std::string& base,
                    std::int64_t layers, std::int64_t growth,
                    std::int64_t kernel, float dropout, bool include_input) {
  const std::int64_t block_in = b.c();
  std::int64_t in_c = block_in;
  const std::int64_t h = b.h(), w = b.w();
  for (std::int64_t j = 0; j < layers; ++j) {
    b.SetShape(in_c, h, w);
    b.Norm(base + ".unit" + std::to_string(j) + ".bn");
    b.Activation(base + ".unit" + std::to_string(j) + ".relu");
    b.Conv(base + ".unit" + std::to_string(j) + ".conv", growth, kernel, 1,
           1, /*bias=*/false);
    if (dropout > 0.0f) {
      b.Activation(base + ".unit" + std::to_string(j) + ".drop");
    }
    in_c += growth;
  }
  // The output concat of all new features (+ block input on down path).
  const std::int64_t out_c =
      (include_input ? block_in : 0) + layers * growth;
  b.SetShape(growth, h, w);
  b.Concat(base + ".concat", out_c - growth);
}

void BottleneckSpec(SpecBuilder& b, const std::string& base,
                    std::int64_t mid_c, std::int64_t out_c,
                    std::int64_t stride, std::int64_t dilation) {
  const std::int64_t in_c = b.c();
  const std::int64_t in_h = b.h(), in_w = b.w();
  b.Conv(base + ".conv1", mid_c, 1, 1, 1, false, 0);
  b.Norm(base + ".bn1");
  b.Activation(base + ".relu1");
  b.Conv(base + ".conv2", mid_c, 3, stride, dilation, false);
  b.Norm(base + ".bn2");
  b.Activation(base + ".relu2");
  b.Conv(base + ".conv3", out_c, 1, 1, 1, false, 0);
  b.Norm(base + ".bn3");
  if (in_c != out_c || stride != 1) {
    const std::int64_t out_h = b.h(), out_w = b.w();
    b.SetShape(in_c, in_h, in_w);
    b.Conv(base + ".proj", out_c, 1, stride, 1, false, 0);
    b.Norm(base + ".proj_bn");
    b.SetShape(out_c, out_h, out_w);
  }
  b.Activation(base + ".out_relu");
}

}  // namespace

std::int64_t ArchSpec::TotalParams() const {
  std::int64_t total = 0;
  for (const OpSpec& op : ops) total += op.params;
  return total;
}

std::int64_t ArchSpec::CountOps(OpSpec::Kind kind) const {
  std::int64_t count = 0;
  for (const OpSpec& op : ops) {
    if (op.kind == kind) ++count;
  }
  return count;
}

ArchSpec BuildTiramisuSpec(const Tiramisu::Config& cfg, std::int64_t h,
                           std::int64_t w) {
  SpecBuilder b("tiramisu", cfg.in_channels, h, w);
  b.Conv("first", cfg.first_features, cfg.kernel, 1, 1, false);

  std::vector<std::int64_t> skip_channels;
  std::vector<std::array<std::int64_t, 2>> skip_dims;
  for (std::size_t i = 0; i < cfg.down_layers.size(); ++i) {
    const std::string base = "down" + std::to_string(i);
    DenseBlockSpec(b, base, cfg.down_layers[i], cfg.growth_rate, cfg.kernel,
                   cfg.dropout, /*include_input=*/true);
    skip_channels.push_back(b.c());
    skip_dims.push_back({b.h(), b.w()});
    // Transition down.
    b.Norm(base + ".td.bn");
    b.Activation(base + ".td.relu");
    b.Conv(base + ".td.conv", b.c(), 1, 1, 1, false, 0);
    if (cfg.dropout > 0.0f) b.Activation(base + ".td.drop");
    b.Pool(base + ".td.pool", 2, 2, 0);
  }

  DenseBlockSpec(b, "bottleneck", cfg.bottleneck_layers, cfg.growth_rate,
                 cfg.kernel, cfg.dropout, /*include_input=*/false);

  for (std::size_t i = cfg.down_layers.size(); i-- > 0;) {
    const std::string base = "up" + std::to_string(i);
    b.Deconv(base + ".tu", b.c(), 3, 2, 1, 1, false);
    b.Concat(base + ".skip_concat", skip_channels[i]);
    DenseBlockSpec(b, base, cfg.down_layers[i], cfg.growth_rate, cfg.kernel,
                   cfg.dropout, /*include_input=*/false);
  }
  b.Conv("final", cfg.num_classes, 1, 1, 1, true, 0);
  return b.Take();
}

ArchSpec BuildDeepLabSpec(const DeepLabV3Plus::Config& cfg, std::int64_t h,
                          std::int64_t w) {
  const auto& enc = cfg.encoder;
  SpecBuilder b("deeplabv3plus", enc.in_channels, h, w);
  b.Conv("stem.conv", enc.stem_features, 7, 2, 1, false);
  b.Norm("stem.bn");
  b.Activation("stem.relu");
  b.Pool("stem.pool", 3, 2, 1);

  std::int64_t low_level_c = 0, low_level_h = 0, low_level_w = 0;
  for (std::size_t s = 0; s < enc.stage_widths.size(); ++s) {
    const std::int64_t width = enc.stage_widths[s];
    const std::int64_t out_c = width * 4;
    for (std::int64_t blk = 0; blk < enc.stage_blocks[s]; ++blk) {
      const std::int64_t stride = blk == 0 ? enc.stage_strides[s] : 1;
      BottleneckSpec(b,
                     "stage" + std::to_string(s + 1) + ".block" +
                         std::to_string(blk),
                     width, out_c, stride, enc.stage_dilations[s]);
    }
    if (s == 0) {
      low_level_c = b.c();
      low_level_h = b.h();
      low_level_w = b.w();
    }
  }

  // ASPP.
  const std::int64_t aspp_in = b.c();
  const std::int64_t aspp_h = b.h(), aspp_w = b.w();
  b.Conv("aspp.b1x1.conv", cfg.aspp_channels, 1, 1, 1, false, 0);
  b.Norm("aspp.b1x1.bn");
  b.Activation("aspp.b1x1.relu");
  for (const std::int64_t rate : cfg.aspp_rates) {
    b.SetShape(aspp_in, aspp_h, aspp_w);
    b.Conv("aspp.b3x3_d" + std::to_string(rate) + ".conv",
           cfg.aspp_channels, 3, 1, rate, false);
    b.Norm("aspp.b3x3_d" + std::to_string(rate) + ".bn");
    b.Activation("aspp.b3x3_d" + std::to_string(rate) + ".relu");
  }
  b.SetShape(cfg.aspp_channels, aspp_h, aspp_w);
  b.Concat("aspp.concat",
           static_cast<std::int64_t>(cfg.aspp_rates.size()) *
               cfg.aspp_channels);
  b.Conv("aspp.project.conv", cfg.aspp_channels, 1, 1, 1, false, 0);
  b.Norm("aspp.project.bn");
  b.Activation("aspp.project.relu");

  // Decoder.
  const std::int64_t d0 = cfg.decoder_channels[0];
  b.Deconv("decoder.up1", d0, 3, 2, 1, 1, false);
  {
    // Skip-reduce branch (computed at low-level resolution).
    const std::int64_t main_c = b.c(), main_h = b.h(), main_w = b.w();
    b.SetShape(low_level_c, low_level_h, low_level_w);
    b.Conv("decoder.skip.conv", cfg.decoder_skip_channels, 1, 1, 1, false,
           0);
    b.Norm("decoder.skip.bn");
    b.Activation("decoder.skip.relu");
    b.SetShape(main_c, main_h, main_w);
  }
  b.Concat("decoder.skip_concat", cfg.decoder_skip_channels);
  b.Conv("decoder.refine.conv1", d0, 3, 1, 1, false);
  b.Norm("decoder.refine.bn1");
  b.Activation("decoder.refine.relu1");
  b.Conv("decoder.refine.conv2", d0, 3, 1, 1, false);
  b.Norm("decoder.refine.bn2");
  b.Activation("decoder.refine.relu2");

  if (cfg.full_res_decoder) {
    std::int64_t head = d0;
    for (int step = 0; step < 2; ++step) {
      const std::int64_t out_c = cfg.decoder_channels[
          static_cast<std::size_t>(step + 1)];
      const std::string base = "decoder.up" + std::to_string(step + 2);
      b.Deconv(base + ".deconv", out_c, 3, 2, 1, 1, false);
      b.Norm(base + ".bn");
      b.Activation(base + ".relu");
      b.Conv(base + ".conv", out_c, 3, 1, 1, false);
      b.Norm(base + ".bn2");
      b.Activation(base + ".relu2");
      head = out_c;
    }
    (void)head;
    b.Conv("decoder.classifier", cfg.num_classes, 1, 1, 1, true, 0);
  } else {
    b.Conv("decoder.classifier", cfg.num_classes, 1, 1, 1, true, 0);
    b.Upsample("decoder.bilinear", 4);
  }
  return b.Take();
}

ArchSpec PaperTiramisuSpec(std::int64_t channels) {
  Tiramisu::Config cfg = Tiramisu::Config::Modified();
  cfg.in_channels = channels;
  return BuildTiramisuSpec(cfg, 768, 1152);
}

ArchSpec PaperDeepLabSpec(std::int64_t channels) {
  DeepLabV3Plus::Config cfg = DeepLabV3Plus::Config::Paper(channels);
  return BuildDeepLabSpec(cfg, 768, 1152);
}

}  // namespace exaclim
