#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "models/deeplab.hpp"
#include "models/tiramisu.hpp"

namespace exaclim {

/// Analytic description of one network operation — the node granularity
/// of the Sec VI graph traversal that computes FLOP counts. Specs are
/// pure geometry: building a full-size (1152×768×16) network description
/// costs nothing, unlike instantiating its activations.
struct OpSpec {
  enum class Kind {
    kConv,        // direct / implicit-GEMM convolution
    kDeconv,      // transposed convolution
    kNorm,        // batch normalisation
    kActivation,  // ReLU / dropout (pointwise)
    kBias,        // bias add (pointwise)
    kPool,        // max / avg pooling
    kConcat,      // channel concatenation (copy)
    kUpsample,    // bilinear resize
  };

  std::string name;
  Kind kind = Kind::kConv;
  std::int64_t in_c = 0, out_c = 0;
  std::int64_t kernel = 1, stride = 1, dilation = 1;
  std::int64_t in_h = 0, in_w = 0;    // input spatial dims
  std::int64_t out_h = 0, out_w = 0;  // output spatial dims
  std::int64_t params = 0;            // learnable element count
};

/// A whole network as a flat op list plus its input geometry.
struct ArchSpec {
  std::string name;
  std::int64_t in_c = 0, in_h = 0, in_w = 0;
  std::vector<OpSpec> ops;

  std::int64_t TotalParams() const;
  std::int64_t CountOps(OpSpec::Kind kind) const;
};

/// Spec builders mirroring the real model constructors in models/ (the
/// tests assert parameter-count and shape agreement between the two for
/// identical configs, so the analytic path cannot drift from the
/// executable one).
ArchSpec BuildTiramisuSpec(const Tiramisu::Config& config, std::int64_t h,
                           std::int64_t w);
ArchSpec BuildDeepLabSpec(const DeepLabV3Plus::Config& config, std::int64_t h,
                          std::int64_t w);

/// Paper-scale presets: 1152×768 CAM5 grid (Sec III-A2).
ArchSpec PaperTiramisuSpec(std::int64_t channels = 16);
ArchSpec PaperDeepLabSpec(std::int64_t channels = 16);

}  // namespace exaclim
