#pragma once

#include <array>
#include <cstdint>

#include "flops/opspec.hpp"
#include "tensor/cast.hpp"

namespace exaclim {

/// Kernel categories of Figs 3/8/9.
enum class KernelCategory {
  kFwdConv = 0,
  kFwdPointwise,
  kBwdConv,
  kBwdPointwise,
  kOptimizer,
  kCopies,
  kAllreduce,
  kConvert,
};
inline constexpr int kNumKernelCategories = 8;

const char* ToString(KernelCategory c);

struct CategoryCost {
  std::int64_t kernels = 0;
  double flops = 0.0;  // multiply+add both counted (Sec VI convention)
  double bytes = 0.0;  // DRAM traffic estimate
};

/// Full per-step cost of training one batch, grouped by kernel category
/// — the analytic reproduction of the Sec VI graph traversal. All values
/// are per training step (batch of `batch` samples).
struct TrainingCost {
  std::array<CategoryCost, kNumKernelCategories> categories{};
  std::int64_t batch = 1;

  CategoryCost& at(KernelCategory c) {
    return categories[static_cast<std::size_t>(c)];
  }
  const CategoryCost& at(KernelCategory c) const {
    return categories[static_cast<std::size_t>(c)];
  }

  double TotalFlops() const;
  double TotalBytes() const;
  /// Fig 2's "Operation Count (TF/sample)": forward+backward convolution
  /// FLOPs per sample (the compute-relevant count the paper reports).
  double ConvFlopsPerSample() const;
};

/// Computes the training-step cost of a network spec. FP16 halves
/// activation/weight traffic, doubles the effective batch in the paper's
/// runs (pass it via `batch`), and adds type-conversion kernels.
TrainingCost AnalyzeTraining(const ArchSpec& spec, Precision precision,
                             std::int64_t batch);

/// FLOPs of a single convolution per Sec VI: 2 * k*k * Cin * Cout * Hout
/// * Wout * batch (multiplies and adds both counted). Exposed for the
/// unit test reproducing the paper's 48.9 GFLOP example.
double ConvFlops(std::int64_t k, std::int64_t out_h, std::int64_t out_w,
                 std::int64_t in_c, std::int64_t out_c, std::int64_t batch);

}  // namespace exaclim
