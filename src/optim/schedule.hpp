#pragma once

#include <cstdint>

namespace exaclim {

/// Learning-rate schedule: linear warm-up followed by polynomial decay.
/// With LARC the paper needed no warm-up (warmup_steps = 0), which is one
/// of LARC's advantages over LARS (Sec V-B2); warm-up support is kept for
/// the ablation benches.
class LRSchedule {
 public:
  struct Options {
    float base_lr = 0.01f;
    std::int64_t warmup_steps = 0;
    std::int64_t total_steps = 0;  // 0 = constant after warm-up
    float end_lr_fraction = 0.01f;
    float poly_power = 1.0f;
  };

  explicit LRSchedule(const Options& opts) : opts_(opts) {}

  float At(std::int64_t step) const {
    if (opts_.warmup_steps > 0 && step < opts_.warmup_steps) {
      return opts_.base_lr * static_cast<float>(step + 1) /
             static_cast<float>(opts_.warmup_steps);
    }
    if (opts_.total_steps <= 0) return opts_.base_lr;
    const std::int64_t decay_steps = opts_.total_steps - opts_.warmup_steps;
    const std::int64_t s = step - opts_.warmup_steps;
    if (s >= decay_steps) return opts_.base_lr * opts_.end_lr_fraction;
    float frac = 1.0f - static_cast<float>(s) / static_cast<float>(decay_steps);
    float poly = 1.0f;
    for (int i = 0; i < static_cast<int>(opts_.poly_power); ++i) poly *= frac;
    return opts_.base_lr *
           (opts_.end_lr_fraction + (1.0f - opts_.end_lr_fraction) * poly);
  }

  const Options& options() const { return opts_; }

 private:
  Options opts_;
};

/// Linear batch-size LR scaling rule used in the paper's Fig 6 runs
/// (LR 0.0001 at 384 GPUs -> 0.0064 at 1536 -> 0.4096 at 6144 follows
/// lr ∝ ranks² there; this helper implements the common linear rule and
/// the paper's observed super-linear settings via `exponent`).
float ScaleLearningRate(float base_lr, std::int64_t base_ranks,
                        std::int64_t ranks, double exponent = 1.0);

}  // namespace exaclim
