#pragma once

#include <memory>

#include "optim/optimizer.hpp"

namespace exaclim {

/// Layer-wise adaptive rate control (Sec V-B2, [30]).
///
/// For each parameter tensor (layer), LARC computes a local learning-rate
/// multiplier from the ratio of the weight norm to the gradient norm,
/// keeping the update small relative to the weights. In "clip" mode
/// (the LARC improvement over LARS) the local rate is capped by the
/// global rate, which removes the need for learning-rate warm-up. The
/// wrapper rescales gradients in place and then delegates to the inner
/// optimizer, so it composes with SGD or Adam.
class LARC : public Optimizer {
 public:
  struct Options {
    float trust_coefficient = 2e-3f;
    float epsilon = 1e-8f;
    /// true: local rate = min(larc_rate, lr) (clip mode, the paper's
    /// choice); false: pure scaling (LARS-like).
    bool clip = true;
  };

  LARC(std::unique_ptr<Optimizer> inner, const Options& opts);

  void Step() override;

  /// The multiplier applied to parameter i on the last Step (diagnostic).
  float last_multiplier(std::size_t i) const { return multipliers_.at(i); }

  Optimizer& inner() { return *inner_; }

 private:
  std::unique_ptr<Optimizer> inner_;
  Options opts_;
  std::vector<float> multipliers_;
};

}  // namespace exaclim
