#include "optim/optimizer.hpp"

#include <cmath>

namespace exaclim {

void Optimizer::UnscaleGradients(float scale) {
  EXACLIM_CHECK(scale != 0.0f, "loss scale must be nonzero");
  const float inv = 1.0f / scale;
  for (Param* p : params_) p->grad *= inv;
}

bool Optimizer::HasNonFiniteGradient() const {
  for (const Param* p : params_) {
    if (!p->grad.AllFinite()) return true;
  }
  return false;
}

// ---------------------------------------------------------------- SGD ---

SGD::SGD(std::vector<Param*> params, const Options& opts)
    : Optimizer(std::move(params), opts.lr), opts_(opts) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void SGD::Step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& v = velocity_[i];
    for (std::int64_t j = 0; j < p.value.NumElements(); ++j) {
      const auto idx = static_cast<std::size_t>(j);
      float g = p.grad[idx];
      if (opts_.weight_decay > 0.0f) g += opts_.weight_decay * p.value[idx];
      if (opts_.momentum > 0.0f) {
        v[idx] = opts_.momentum * v[idx] + g;
        g = v[idx];
      }
      p.value[idx] -= lr_ * g;
    }
  }
}

// --------------------------------------------------------------- Adam ---

Adam::Adam(std::vector<Param*> params, const Options& opts)
    : Optimizer(std::move(params), opts.lr), opts_(opts) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::Step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(opts_.beta1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(opts_.beta2, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    for (std::int64_t j = 0; j < p.value.NumElements(); ++j) {
      const auto idx = static_cast<std::size_t>(j);
      float g = p.grad[idx];
      if (opts_.weight_decay > 0.0f) g += opts_.weight_decay * p.value[idx];
      m_[i][idx] = opts_.beta1 * m_[i][idx] + (1.0f - opts_.beta1) * g;
      v_[i][idx] = opts_.beta2 * v_[i][idx] + (1.0f - opts_.beta2) * g * g;
      const float m_hat = m_[i][idx] / bias1;
      const float v_hat = v_[i][idx] / bias2;
      p.value[idx] -= lr_ * m_hat / (std::sqrt(v_hat) + opts_.epsilon);
    }
  }
}

}  // namespace exaclim
