#include "optim/schedule.hpp"

#include <cmath>

namespace exaclim {

float ScaleLearningRate(float base_lr, std::int64_t base_ranks,
                        std::int64_t ranks, double exponent) {
  const double ratio =
      static_cast<double>(ranks) / static_cast<double>(base_ranks);
  return static_cast<float>(base_lr * std::pow(ratio, exponent));
}

}  // namespace exaclim
