#include "optim/lag.hpp"

#include <utility>

namespace exaclim {

GradientLag::GradientLag(std::unique_ptr<Optimizer> inner, int lag)
    : Optimizer(inner->params(), inner->learning_rate()),
      inner_(std::move(inner)),
      lag_(lag) {
  EXACLIM_CHECK(lag_ >= 0, "lag must be non-negative");
  buffer_.resize(static_cast<std::size_t>(lag_));
  for (auto& slot : buffer_) {
    slot.reserve(params_.size());
    for (Param* p : params_) slot.emplace_back(p->grad.shape());
  }
}

void GradientLag::Step() {
  inner_->SetLearningRate(lr_);
  if (lag_ == 0) {
    inner_->Step();
    ++steps_;
    return;
  }
  auto& slot = buffer_[slot_];
  // Swap current grads with the `lag`-old snapshot living in this slot.
  for (std::size_t i = 0; i < params_.size(); ++i) {
    std::swap(params_[i]->grad, slot[i]);
  }
  slot_ = (slot_ + 1) % buffer_.size();
  if (steps_ < lag_) {
    // No lagged gradient yet: the snapshot we swapped in is zeros, so an
    // update would be a no-op. Skip it (keeps e.g. Adam's step count
    // honest).
    ++skipped_;
  } else {
    inner_->Step();
  }
  ++steps_;
}

}  // namespace exaclim
