#include "optim/larc.hpp"

#include <algorithm>

namespace exaclim {

LARC::LARC(std::unique_ptr<Optimizer> inner, const Options& opts)
    : Optimizer(inner->params(), inner->learning_rate()),
      inner_(std::move(inner)),
      opts_(opts) {
  multipliers_.assign(params_.size(), 1.0f);
}

void LARC::Step() {
  // Keep the inner optimizer's global rate in sync with ours (schedules
  // adjust the wrapper).
  inner_->SetLearningRate(lr_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    const float w_norm = p.value.Norm();
    const float g_norm = p.grad.Norm();
    float multiplier = 1.0f;
    if (w_norm > 0.0f && g_norm > 0.0f) {
      const float larc_rate =
          opts_.trust_coefficient * w_norm / (g_norm + opts_.epsilon);
      // The inner optimizer multiplies by lr, so express the local rate as
      // a gradient rescale of larc_rate / lr (clipped to <= 1 in clip
      // mode).
      multiplier = larc_rate / std::max(lr_, opts_.epsilon);
      if (opts_.clip) multiplier = std::min(multiplier, 1.0f);
    }
    multipliers_[i] = multiplier;
    if (multiplier != 1.0f) p.grad *= multiplier;
  }
  inner_->Step();
}

}  // namespace exaclim
