#pragma once

#include <memory>
#include <vector>

#include "optim/optimizer.hpp"

namespace exaclim {

/// Gradient lag (Sec V-B4): the optimizer applies the gradients computed
/// `lag` steps earlier, decoupling the top-layer gradient all-reduce from
/// the critical path and letting Horovod batch tensors more efficiently.
/// lag=0 is a pass-through; the paper ran lag=1 at the largest scales
/// (the "lag 1" curves of Figs 4 and 6). EASGD-style larger lags are
/// supported for the ablation benches.
class GradientLag : public Optimizer {
 public:
  GradientLag(std::unique_ptr<Optimizer> inner, int lag);

  /// Buffers the current gradients and applies the gradients from `lag`
  /// steps ago (no-op updates for the first `lag` steps).
  void Step() override;

  int lag() const { return lag_; }
  /// Steps whose update was skipped because no lagged gradient existed yet.
  std::int64_t warmup_steps_skipped() const { return skipped_; }

 private:
  std::unique_ptr<Optimizer> inner_;
  int lag_;
  // Ring buffer of gradient snapshots, one slot per lag step.
  std::vector<std::vector<Tensor>> buffer_;
  std::size_t slot_ = 0;
  std::int64_t steps_ = 0;
  std::int64_t skipped_ = 0;
};

}  // namespace exaclim
