#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace exaclim {

/// Dynamic loss scaling for FP16 mixed-precision training: the loss
/// gradient is multiplied by scale() before backprop; on a step whose
/// gradients contain inf/NaN the update is skipped and the scale halves,
/// while `growth_interval` consecutive good steps double it (up to
/// max_scale). A growth_interval of 0 makes the scale static.
class LossScaler {
 public:
  struct Options {
    float initial_scale = 1024.0f;
    float max_scale = 65536.0f;
    float min_scale = 1.0f;
    std::int64_t growth_interval = 200;
  };

  LossScaler() : LossScaler(Options{}) {}
  explicit LossScaler(const Options& opts)
      : opts_(opts), scale_(opts.initial_scale) {
    EXACLIM_CHECK(opts_.initial_scale > 0, "initial scale must be > 0");
  }

  float scale() const { return scale_; }

  /// Records the outcome of a step. Returns true if the step should be
  /// applied (finite gradients), false if it must be skipped.
  bool Update(bool grads_finite) {
    if (!grads_finite) {
      scale_ = std::max(opts_.min_scale, scale_ * 0.5f);
      good_steps_ = 0;
      ++overflow_count_;
      return false;
    }
    if (opts_.growth_interval > 0 &&
        ++good_steps_ >= opts_.growth_interval) {
      scale_ = std::min(opts_.max_scale, scale_ * 2.0f);
      good_steps_ = 0;
    }
    return true;
  }

  std::int64_t overflow_count() const { return overflow_count_; }

 private:
  Options opts_;
  float scale_;
  std::int64_t good_steps_ = 0;
  std::int64_t overflow_count_ = 0;
};

}  // namespace exaclim
