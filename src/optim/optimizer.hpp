#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace exaclim {

/// Base class for optimizers operating on a fixed list of Params. The
/// training loop's contract is: zero grads, forward, backward (grads
/// accumulate), optionally aggregate grads across ranks (hvd), then
/// Step().
class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params, float lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the current gradients.
  virtual void Step() = 0;

  void ZeroGrad() {
    for (Param* p : params_) p->grad.SetZero();
  }

  void SetLearningRate(float lr) { lr_ = lr; }
  float learning_rate() const { return lr_; }
  const std::vector<Param*>& params() const { return params_; }

  /// Divides all gradients by `scale` (undoing FP16 loss scaling before
  /// the update).
  void UnscaleGradients(float scale);

  /// True if any gradient contains a non-finite value (skip-step signal
  /// for dynamic loss scaling).
  bool HasNonFiniteGradient() const;

 protected:
  std::vector<Param*> params_;
  float lr_;
};

/// Plain SGD with optional momentum and decoupled weight decay.
class SGD : public Optimizer {
 public:
  struct Options {
    float lr = 0.01f;
    float momentum = 0.0f;
    float weight_decay = 0.0f;
  };

  SGD(std::vector<Param*> params, const Options& opts);
  void Step() override;

 private:
  Options opts_;
  std::vector<Tensor> velocity_;
};

/// Adaptive moment estimation (Kingma & Ba) — the optimizer used for the
/// paper's Tiramisu training.
class Adam : public Optimizer {
 public:
  struct Options {
    float lr = 1e-4f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float epsilon = 1e-8f;
    float weight_decay = 0.0f;
  };

  Adam(std::vector<Param*> params, const Options& opts);
  void Step() override;

  std::int64_t step_count() const { return t_; }

 private:
  Options opts_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::int64_t t_ = 0;
};

}  // namespace exaclim
