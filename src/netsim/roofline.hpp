#pragma once

#include <array>

#include "flops/cost.hpp"
#include "netsim/machine.hpp"

namespace exaclim {

/// Per-kernel-category achieved fractions of peak math / peak memory
/// bandwidth. Defaults are calibrated from the measured utilisations in
/// Figs 3/8/9 (e.g. FP32 convolutions reach 50-75% of math peak; FP16
/// convolutions only 20-52% because the Tensor-Core kernels become
/// memory-limited on small filter counts; pointwise kernels stream at
/// 45-80% of DRAM bandwidth).
struct RooflineEfficiencies {
  double conv_math_fp32 = 0.65;
  double conv_math_fp16 = 0.35;
  double conv_mem = 0.60;
  double pointwise_mem = 0.70;
  double copies_mem = 0.60;
  double optimizer_mem = 0.30;
  double convert_mem = 0.40;
  double allreduce_link = 0.70;  // NVLink fraction for NCCL kernels
};

/// Time of one kernel category on one GPU: the roofline maximum of the
/// math time and the memory time at the achieved fractions.
double CategoryTime(const CategoryCost& cost, KernelCategory category,
                    const GpuModel& gpu, Precision precision,
                    const RooflineEfficiencies& eff,
                    double intra_node_link_bw);

/// Per-category and total single-GPU step timing (the Fig 3/8/9 rows).
struct StepTimeBreakdown {
  std::array<double, kNumKernelCategories> seconds{};
  double total = 0.0;

  double at(KernelCategory c) const {
    return seconds[static_cast<std::size_t>(c)];
  }
  /// Step time excluding the all-reduce category (the pure-compute time
  /// the scale simulator overlaps communication against).
  double ComputeOnly() const;
};

StepTimeBreakdown SingleGpuStepTime(const TrainingCost& cost,
                                    const MachineModel& machine,
                                    Precision precision,
                                    const RooflineEfficiencies& eff = {});

/// One row of the Fig 2 table.
struct SingleGpuPerformance {
  double tf_per_sample = 0.0;   // operation count
  double samples_per_sec = 0.0; // training rate
  double tf_per_sec = 0.0;      // sustained performance
  double fraction_of_peak = 0.0;
};

SingleGpuPerformance AnalyzeSingleGpu(const ArchSpec& spec,
                                      const MachineModel& machine,
                                      Precision precision,
                                      std::int64_t local_batch,
                                      const RooflineEfficiencies& eff = {});

}  // namespace exaclim
