#include "netsim/scale.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace exaclim {

ScaleSimulator::ScaleSimulator(const ScaleOptions& opts) : opts_(opts) {
  EXACLIM_CHECK(!opts_.spec.ops.empty(), "scale simulation needs a network");
  local_batch_ = static_cast<double>(opts_.local_batch);

  const TrainingCost cost =
      AnalyzeTraining(opts_.spec, opts_.precision, opts_.local_batch);
  tf_per_sample_ = opts_.anchor_tf_per_sample > 0.0
                       ? opts_.anchor_tf_per_sample
                       : cost.ConvFlopsPerSample() / 1e12;
  if (opts_.anchor_samples_per_sec > 0.0) {
    compute_seconds_ = local_batch_ / opts_.anchor_samples_per_sec;
  } else {
    compute_seconds_ =
        SingleGpuStepTime(cost, opts_.machine, opts_.precision, opts_.eff)
            .ComputeOnly();
  }

  gradient_bytes_ = static_cast<double>(opts_.spec.TotalParams()) *
                    BytesPerElement(opts_.precision);
  // The snapshot files hold all 16 CAM5 variables in FP32 regardless of
  // the channel subset the network trains on, so the I/O demand is the
  // full-file size per sample (this is what pushes 2048 Piz Daint GPUs
  // to ~110 GB/s in Fig 5).
  input_bytes_per_sample_ =
      16.0 * opts_.spec.in_h * opts_.spec.in_w * 4.0;
  // One readiness message per gradient tensor per step: approximately
  // one weight tensor per parameterised op ("over a hundred allreduce
  // operations per step", Sec V-A3).
  for (const OpSpec& op : opts_.spec.ops) {
    if (op.params > 0) ++num_tensors_;
  }
}

double ScaleSimulator::AllreduceSeconds(int gpus) const {
  const MachineModel& m = opts_.machine;
  if (gpus <= 1) return 0.0;
  const double alpha = m.net_latency;

  if (opts_.hybrid_allreduce && m.gpus_per_node > 1) {
    const int nodes = std::max(1, gpus / m.gpus_per_node);
    // Phase 1+3 (NCCL ring reduce + broadcast over NVLink).
    const double g = m.gpus_per_node;
    const double intra =
        2.0 * (g - 1.0) / g * gradient_bytes_ /
        (m.nvlink_bw * opts_.eff.allreduce_link);
    if (nodes == 1) return intra;
    // Phase 2: the 4 shard owners drive all virtual IB devices in
    // parallel — Rabenseifner-style cost on each shard, NIC fully used.
    const double shard =
        gradient_bytes_ / static_cast<double>(m.mpi_ranks_per_node);
    const double inter =
        2.0 * std::log2(static_cast<double>(nodes)) * alpha +
        2.0 * (nodes - 1.0) / nodes * shard / (m.nic_bw / m.mpi_ranks_per_node);
    return intra + inter;
  }

  // Flat ring over every rank: bandwidth-optimal in bytes but with a
  // latency term linear in P, and only one rank per node drives the NIC.
  const double per_rank_bw =
      m.nic_bw / static_cast<double>(m.gpus_per_node);
  return 2.0 * (gpus - 1.0) * alpha +
         2.0 * (gpus - 1.0) / gpus * gradient_bytes_ / per_rank_bw;
}

double ScaleSimulator::ControlSeconds(int gpus) const {
  const MachineModel& m = opts_.machine;
  if (gpus <= 1) return 0.0;
  const double n = static_cast<double>(num_tensors_);
  if (!opts_.hierarchical_control) {
    // Rank 0 receives (P-1)*N readiness messages per step, serialised
    // through its message-processing rate (the Sec V-A3 bottleneck).
    return (gpus - 1.0) * n / m.controller_msg_rate + 2.0 * m.net_latency;
  }
  const double r = opts_.control_radix;
  const double depth =
      std::ceil(std::log(static_cast<double>(gpus)) / std::log(r + 1e-12));
  return r * n / m.controller_msg_rate +
         2.0 * std::max(1.0, depth) * m.net_latency;
}

ScalePoint ScaleSimulator::SimulateStrongScaling(
    int gpus, std::int64_t global_batch) const {
  EXACLIM_CHECK(gpus >= 1 && global_batch >= gpus,
                "strong scaling needs at least one sample per GPU");
  const MachineModel& m = opts_.machine;
  // Split the anchored step time into a batch-proportional part and a
  // fixed per-step part; the fixed part is what strong scaling cannot
  // shrink.
  const double fixed = opts_.fixed_step_fraction * compute_seconds_;
  const double per_sample = (compute_seconds_ - fixed) / local_batch_;
  const double local =
      static_cast<double>(global_batch) / static_cast<double>(gpus);
  const double c = per_sample * local + fixed;

  ScalePoint pt;
  pt.gpus = gpus;
  pt.compute_seconds = c;
  // Communication is batch-independent (gradients have fixed size), so
  // the shrinking compute window hides less and less of it.
  const double a = AllreduceSeconds(gpus);
  const double ctrl = ControlSeconds(gpus);
  if (!opts_.overlap_exchange) {
    // Serialized compute-then-comm (the pre-DESIGN-§14 exchanger):
    // nothing hides behind backward.
    pt.exposed_comm_seconds = a;
    pt.control_seconds = ctrl;
  } else {
    pt.exposed_comm_seconds = opts_.lag >= 1
                                  ? std::max(0.0, a - 0.9 * c)
                                  : std::max(0.15 * a, a - 0.7 * c);
    pt.control_seconds =
        opts_.lag >= 1 ? std::max(0.0, ctrl - 0.5 * c) : ctrl;
  }
  if (gpus > 1) {
    pt.straggler_seconds =
        m.variability.sigma_frac *
            std::sqrt(2.0 * std::log(static_cast<double>(gpus))) * c +
        m.variability.per_rank_serial * gpus;
  }
  pt.step_seconds = c + pt.exposed_comm_seconds + pt.control_seconds +
                    pt.straggler_seconds;
  pt.images_per_sec = static_cast<double>(global_batch) / pt.step_seconds;
  pt.pflops_sustained = pt.images_per_sec * tf_per_sample_ / 1e3;
  // Speedup baseline: an idealised single GPU running the whole global
  // batch as one step under the same cost split (so efficiency(1) = 1 and
  // the decay isolates the parallelisation costs: replicated fixed work,
  // exposed communication and stragglers).
  const double single_gpu_time =
      per_sample * static_cast<double>(global_batch) + fixed;
  pt.efficiency = single_gpu_time / (pt.step_seconds * gpus);
  return pt;
}

ScalePoint ScaleSimulator::Simulate(int gpus) const {
  EXACLIM_CHECK(gpus >= 1, "need at least one GPU");
  const MachineModel& m = opts_.machine;
  ScalePoint pt;
  pt.gpus = gpus;
  pt.compute_seconds = compute_seconds_;
  const double c = compute_seconds_;

  // Communication overlap: the as-ready bucketed exchange (DESIGN §14)
  // hides most all-reduces behind back-prop; the top layer's gradient is
  // sequential without lag (Sec V-B4). With lag the whole exchange can
  // overlap the next step's compute. overlap_exchange = false models the
  // serialized compute-then-comm step for comparison (bench_overlap).
  const double a = AllreduceSeconds(gpus);
  const double ctrl = ControlSeconds(gpus);
  if (!opts_.overlap_exchange) {
    pt.exposed_comm_seconds = a;
    pt.control_seconds = ctrl;
  } else {
    if (opts_.lag >= 1) {
      pt.exposed_comm_seconds = std::max(0.0, a - 0.9 * c);
    } else {
      pt.exposed_comm_seconds = std::max(0.15 * a, a - 0.7 * c);
    }
    // Control plane: negotiation overlaps with compute under lag as well.
    pt.control_seconds =
        opts_.lag >= 1 ? std::max(0.0, ctrl - 0.5 * c) : ctrl;
  }

  // Straggler/variability: synchronous steps wait for the slowest rank.
  if (gpus > 1) {
    pt.straggler_seconds = m.variability.sigma_frac *
                               std::sqrt(2.0 * std::log(
                                             static_cast<double>(gpus))) *
                               c +
                           m.variability.per_rank_serial * gpus;
  }

  double step = c + pt.exposed_comm_seconds + pt.control_seconds +
                pt.straggler_seconds;

  // Input pipeline: staged input streams from node-local storage (never
  // limiting at these rates); unstaged input shares the global
  // filesystem (Fig 5).
  if (!opts_.staged_input) {
    const double demand_bytes_per_sec =
        static_cast<double>(gpus) * local_batch_ * input_bytes_per_sample_ /
        step;
    const double utilisation = demand_bytes_per_sec / m.fs_read_bw;
    if (utilisation > 1.0) {
      // Saturated: steps serialise on the filesystem, which delivers
      // below its nominal rate under full contention (the growing error
      // bars and 9.5% penalty of Fig 5).
      const double contended_bw = m.fs_read_bw / 1.07;
      const double input_step = static_cast<double>(gpus) * local_batch_ *
                                input_bytes_per_sample_ / contended_bw;
      pt.input_stall_seconds = input_step - step;
      step = input_step;
    } else if (utilisation > 0.6) {
      // Contention variability near the filesystem limit (the larger
      // error bars of Fig 5).
      const double contention = 0.25 * (utilisation - 0.6) / 0.4 * step;
      pt.input_stall_seconds = contention;
      step += contention;
    }
  }

  pt.step_seconds = step;
  pt.images_per_sec = static_cast<double>(gpus) * local_batch_ / step;
  pt.pflops_sustained = pt.images_per_sec * tf_per_sample_ / 1e3;
  pt.efficiency = c / step;
  return pt;
}

}  // namespace exaclim
