#include "netsim/throughput_series.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace exaclim {

ThroughputSeries SampleThroughputSeries(const ScaleSimulator& sim, int gpus,
                                        int steps, std::uint64_t seed) {
  EXACLIM_CHECK(steps >= 1, "need at least one step");
  const ScalePoint base = sim.Simulate(gpus);
  // Deterministic part of the step (everything except the straggler term,
  // which we re-realise stochastically per step).
  const double deterministic = base.step_seconds - base.straggler_seconds;
  const double sigma =
      sim.options().machine.variability.sigma_frac * base.compute_seconds;
  const double serial =
      sim.options().machine.variability.per_rank_serial * gpus;

  ThroughputSeries series;
  series.images_per_sec.reserve(static_cast<std::size_t>(steps));
  Rng rng(seed);
  const double batch = static_cast<double>(gpus) *
                       static_cast<double>(sim.options().local_batch);
  for (int s = 0; s < steps; ++s) {
    // Max of P per-rank N(0, sigma) delays. Drawing P normals per step is
    // exact; for very large P, subsample and apply the extreme-value
    // correction for the remainder.
    double worst = 0.0;
    const int draws = std::min(gpus, 4096);
    for (int r = 0; r < draws; ++r) {
      worst = std::max(worst, static_cast<double>(rng.Normal(
                                  0.0f, static_cast<float>(sigma))));
    }
    if (gpus > draws && sigma > 0.0) {
      // E[max of n] grows ~ sigma * sqrt(2 ln n): shift the sampled max
      // by the expected difference between the full and sampled extremes.
      const double full = std::sqrt(2.0 * std::log(static_cast<double>(gpus)));
      const double part =
          std::sqrt(2.0 * std::log(static_cast<double>(draws)));
      worst += sigma * (full - part);
    }
    const double step_time = deterministic + worst + serial;
    series.images_per_sec.push_back(batch / step_time);
  }
  series.summary = Summarize(series.images_per_sec);
  series.pflops_median =
      series.summary.median * sim.tf_per_sample() / 1e3;
  return series;
}

}  // namespace exaclim
