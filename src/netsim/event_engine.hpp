#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "flops/opspec.hpp"
#include "netsim/machine.hpp"

namespace exaclim {

/// Minimal discrete-event engine: timestamped handlers executed in time
/// order; handlers may schedule further events. Used by the training-step
/// overlap simulation below (and available for other models).
class EventEngine {
 public:
  using Handler = std::function<void(double now)>;

  void Schedule(double time, Handler handler);
  /// Processes events until the queue drains; returns the final time.
  double Run();
  double now() const { return now_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    Handler handler;
    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

/// Event-driven simulation of communication/computation overlap in one
/// data-parallel training pipeline (the mechanism behind gradient lag,
/// Sec V-B4, and Horovod tensor fusion).
///
/// Back-propagation emits fused gradient buckets at known offsets into
/// the compute step (deepest layers first); each bucket's all-reduce then
/// queues on the network resource (alpha + bytes/beta). Without lag the
/// step cannot finish until every bucket of the step has been reduced
/// (the top layer's reduction is fully exposed); with lag 1 the next
/// step's compute proceeds immediately and only needs step s-1's
/// reductions, so the network drains in the shadow of compute.
struct OverlapConfig {
  /// Offset (seconds from step start) at which bucket i's gradients are
  /// ready, ascending; the last value <= compute_seconds.
  std::vector<double> bucket_ready_s;
  std::vector<double> bucket_bytes;
  double compute_seconds = 0.0;
  double bandwidth = 1.0;  // bytes/s through the reduction pipeline
  double latency = 0.0;    // per-bucket fixed cost
  int lag = 0;             // 0 or 1
  int steps = 24;          // simulate this many steps; measure steady state
};

struct OverlapResult {
  double steady_step_seconds = 0.0;  // steady-state per-step time
  double exposed_comm_seconds = 0.0; // steady step minus pure compute
  double network_busy_fraction = 0.0;
};

OverlapResult SimulateOverlap(const OverlapConfig& config);

/// Builds an OverlapConfig from a network spec: buckets are formed by
/// greedy fusion over parameterised ops in reverse (backprop) order up to
/// `fusion_bytes`; readiness offsets follow the cumulative share of
/// backward conv FLOPs; bandwidth/latency come from the machine's
/// inter-node path.
OverlapConfig BuildOverlapConfig(const ArchSpec& spec,
                                 const MachineModel& machine,
                                 Precision precision,
                                 double compute_seconds,
                                 std::int64_t fusion_bytes, int lag);

}  // namespace exaclim
