#include "netsim/roofline.hpp"

#include <algorithm>

namespace exaclim {

double CategoryTime(const CategoryCost& cost, KernelCategory category,
                    const GpuModel& gpu, Precision precision,
                    const RooflineEfficiencies& eff,
                    double intra_node_link_bw) {
  if (cost.kernels == 0 && cost.flops == 0.0 && cost.bytes == 0.0) {
    return 0.0;
  }
  double math_frac = 0.0;
  double mem_frac = 0.0;
  switch (category) {
    case KernelCategory::kFwdConv:
    case KernelCategory::kBwdConv:
      math_frac = precision == Precision::kFP32 ? eff.conv_math_fp32
                                                : eff.conv_math_fp16;
      mem_frac = eff.conv_mem;
      break;
    case KernelCategory::kFwdPointwise:
    case KernelCategory::kBwdPointwise:
      mem_frac = eff.pointwise_mem;
      break;
    case KernelCategory::kOptimizer:
      mem_frac = eff.optimizer_mem;
      break;
    case KernelCategory::kCopies:
      mem_frac = eff.copies_mem;
      break;
    case KernelCategory::kConvert:
      mem_frac = eff.convert_mem;
      break;
    case KernelCategory::kAllreduce: {
      // NCCL ring kernels are NVLink-limited, not DRAM-limited
      // (Sec VII-A). With no intra-node link (Piz Daint) the data goes
      // through the NIC; use DRAM as the local bound.
      const double link = intra_node_link_bw > 0.0
                              ? intra_node_link_bw * eff.allreduce_link
                              : gpu.mem_bw * eff.copies_mem;
      return cost.bytes / link;
    }
  }
  const double math_time =
      math_frac > 0.0 ? cost.flops / (gpu.Peak(precision) * math_frac) : 0.0;
  const double mem_time =
      mem_frac > 0.0 ? cost.bytes / (gpu.mem_bw * mem_frac) : 0.0;
  return std::max(math_time, mem_time);
}

double StepTimeBreakdown::ComputeOnly() const {
  return total - at(KernelCategory::kAllreduce);
}

StepTimeBreakdown SingleGpuStepTime(const TrainingCost& cost,
                                    const MachineModel& machine,
                                    Precision precision,
                                    const RooflineEfficiencies& eff) {
  StepTimeBreakdown breakdown;
  for (int c = 0; c < kNumKernelCategories; ++c) {
    const auto category = static_cast<KernelCategory>(c);
    breakdown.seconds[static_cast<std::size_t>(c)] =
        CategoryTime(cost.at(category), category, machine.gpu, precision,
                     eff, machine.nvlink_bw);
    breakdown.total += breakdown.seconds[static_cast<std::size_t>(c)];
  }
  return breakdown;
}

SingleGpuPerformance AnalyzeSingleGpu(const ArchSpec& spec,
                                      const MachineModel& machine,
                                      Precision precision,
                                      std::int64_t local_batch,
                                      const RooflineEfficiencies& eff) {
  const TrainingCost cost = AnalyzeTraining(spec, precision, local_batch);
  const StepTimeBreakdown breakdown =
      SingleGpuStepTime(cost, machine, precision, eff);
  SingleGpuPerformance perf;
  perf.tf_per_sample = cost.ConvFlopsPerSample() / 1e12;
  // Single-GPU rate: no all-reduce partner, so compute-only time.
  perf.samples_per_sec =
      static_cast<double>(local_batch) / breakdown.ComputeOnly();
  perf.tf_per_sec = perf.samples_per_sec * perf.tf_per_sample;
  perf.fraction_of_peak =
      perf.tf_per_sec * 1e12 / machine.gpu.Peak(precision);
  return perf;
}

}  // namespace exaclim
