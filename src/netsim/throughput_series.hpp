#pragma once

#include "common/rng.hpp"
#include "netsim/scale.hpp"
#include "stats/stats.hpp"

namespace exaclim {

/// Stochastic per-step throughput series for a scale point — the Sec VI
/// measurement methodology applied to the model. Each step's straggler
/// delay is realised as the maximum of P per-rank normal perturbations
/// (synchronous training waits for the slowest rank), giving a noisy
/// images/s series from which the paper's statistics — median over time
/// with the central-68% confidence interval from the 0.16/0.84
/// percentiles — are computed (the error bars of Figs 4 and 5).
struct ThroughputSeries {
  std::vector<double> images_per_sec;  // one entry per step
  SeriesSummary summary;               // Sec VI statistics
  double pflops_median = 0.0;
};

ThroughputSeries SampleThroughputSeries(const ScaleSimulator& sim, int gpus,
                                        int steps, std::uint64_t seed);

}  // namespace exaclim
