#pragma once

#include "flops/opspec.hpp"
#include "netsim/roofline.hpp"

namespace exaclim {

/// At-scale data-parallel training performance model (Figs 4 and 5).
///
/// One training step at P GPUs is modelled as
///   step(P) = C + exposed_allreduce(P) + control(P) + straggler(P)
///             (+ input stall when reading the global filesystem)
/// where C is the single-GPU compute time (roofline, or anchored to a
/// measured rate), the all-reduce follows the alpha-beta cost of the
/// configured algorithm (hybrid NCCL+MPI or flat ring), the control
/// plane follows the flat / radix-r hierarchical message counts of Sec
/// V-A3, and the straggler term is the expected max of P noisy step
/// times (sigma * sqrt(2 ln P)), calibrated per machine.
struct ScaleOptions {
  MachineModel machine = MachineModel::Summit();
  ArchSpec spec;
  Precision precision = Precision::kFP32;
  std::int64_t local_batch = 1;
  int lag = 0;                       // gradient lag (Sec V-B4)
  bool hierarchical_control = true;  // radix-r tree vs flat rank-0
  int control_radix = 4;
  bool hybrid_allreduce = true;      // Sec V-A3 hybrid vs flat ring
  bool staged_input = true;          // node-local staging vs global FS
  /// Overlap the gradient exchange with backward compute (the as-ready
  /// bucketed exchange of DESIGN §14). When false the step pays
  /// compute-then-comm serially — the pre-overlap exchanger, kept as the
  /// baseline bench_overlap cross-checks the executed ratio against.
  bool overlap_exchange = true;
  /// Calibration anchors: override the roofline single-GPU rate and the
  /// per-sample operation count with the paper's measured Fig 2 values
  /// (0 = use this repo's computed values).
  double anchor_samples_per_sec = 0.0;
  double anchor_tf_per_sample = 0.0;
  /// Fraction of the anchored step time that is batch-independent
  /// (kernel launches, input handling, optimizer) — the term that makes
  /// strong scaling decay once the per-GPU batch shrinks (Sec III-A).
  double fixed_step_fraction = 0.08;
  RooflineEfficiencies eff{};
};

struct ScalePoint {
  int gpus = 1;
  double images_per_sec = 0.0;
  double pflops_sustained = 0.0;
  double efficiency = 1.0;
  double step_seconds = 0.0;
  // Step-time decomposition (diagnostics for the benches).
  double compute_seconds = 0.0;
  double exposed_comm_seconds = 0.0;
  double control_seconds = 0.0;
  double straggler_seconds = 0.0;
  double input_stall_seconds = 0.0;
};

class ScaleSimulator {
 public:
  explicit ScaleSimulator(const ScaleOptions& opts);

  ScalePoint Simulate(int gpus) const;

  /// Strong scaling (Sec III-A: "keeping the global batch size constant
  /// as worker count grows"): the per-GPU batch shrinks as 1/P, so
  /// compute shrinks while communication/control/straggler costs do not —
  /// efficiency decays much faster than weak scaling, which is why the
  /// paper only uses it when large-batch hyperparameters fail.
  /// `efficiency` here is speedup(P)/P against the single-GPU time for
  /// the same global batch.
  ScalePoint SimulateStrongScaling(int gpus,
                                   std::int64_t global_batch) const;

  /// Full all-reduce wall time at P GPUs (before overlap).
  double AllreduceSeconds(int gpus) const;
  /// Control-plane negotiation time at P GPUs.
  double ControlSeconds(int gpus) const;

  double single_gpu_rate() const { return local_batch_ / compute_seconds_; }
  double tf_per_sample() const { return tf_per_sample_; }
  double gradient_bytes() const { return gradient_bytes_; }
  const ScaleOptions& options() const { return opts_; }

 private:
  ScaleOptions opts_;
  double compute_seconds_ = 0.0;   // C
  double tf_per_sample_ = 0.0;
  double gradient_bytes_ = 0.0;
  double input_bytes_per_sample_ = 0.0;
  int num_tensors_ = 0;
  double local_batch_ = 1.0;
};

}  // namespace exaclim
