#include "netsim/event_engine.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"
#include "flops/cost.hpp"
#include "obs/obs.hpp"

namespace exaclim {

void EventEngine::Schedule(double time, Handler handler) {
  EXACLIM_CHECK(time >= now_ - 1e-12, "cannot schedule into the past");
  queue_.push(Event{time, next_seq_++, std::move(handler)});
}

double EventEngine::Run() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    event.handler(now_);
  }
  return now_;
}

OverlapResult SimulateOverlap(const OverlapConfig& config) {
  EXACLIM_CHECK(config.bucket_ready_s.size() == config.bucket_bytes.size(),
                "bucket arrays must match");
  EXACLIM_CHECK(config.steps >= 4, "need a few steps for steady state");
  const auto n_buckets = config.bucket_ready_s.size();

  EventEngine engine;
  // Network FIFO resource.
  bool network_busy = false;
  std::deque<std::pair<int, std::size_t>> network_queue;  // (step, bucket)
  double network_busy_time = 0.0;
  struct Transfer {
    double start;
    double duration;
  };
  std::vector<Transfer> transfers;  // for simulated-time trace export

  // Per-step bookkeeping.
  std::vector<std::size_t> buckets_done(static_cast<std::size_t>(config.steps), 0);
  std::vector<double> all_reduced_at(static_cast<std::size_t>(config.steps), -1.0);
  std::vector<double> compute_done_at(static_cast<std::size_t>(config.steps), -1.0);
  std::vector<double> step_started_at(static_cast<std::size_t>(config.steps), -1.0);
  std::vector<bool> step_started(static_cast<std::size_t>(config.steps), false);

  std::function<void(double, int)> start_step;
  std::function<void(double)> pump_network;
  std::function<void(double, int)> maybe_start_next;

  auto transfer_time = [&](std::size_t bucket) {
    return config.latency +
           config.bucket_bytes[bucket] / config.bandwidth;
  };

  pump_network = [&](double now) {
    if (network_busy || network_queue.empty()) return;
    const auto [step, bucket] = network_queue.front();
    network_queue.pop_front();
    network_busy = true;
    const double dt = transfer_time(bucket);
    network_busy_time += dt;
    transfers.push_back({now, dt});
    engine.Schedule(now + dt, [&, step, bucket](double done_time) {
      network_busy = false;
      auto& done = buckets_done[static_cast<std::size_t>(step)];
      ++done;
      (void)bucket;
      if (done == n_buckets) {
        all_reduced_at[static_cast<std::size_t>(step)] = done_time;
        maybe_start_next(done_time, step);
      }
      pump_network(done_time);
    });
  };

  // Dependency rule: step s+1's compute may begin once step s's compute
  // is done AND the reductions it needs are complete — step s's own
  // (lag 0) or step s-1's (lag 1).
  maybe_start_next = [&](double now, int /*completed*/) {
    for (int s = 1; s < config.steps; ++s) {
      if (step_started[static_cast<std::size_t>(s)]) continue;
      const int dep = config.lag >= 1 ? s - 2 : s - 1;
      const bool reductions_ok =
          dep < 0 || all_reduced_at[static_cast<std::size_t>(dep)] >= 0.0;
      const bool compute_ok =
          compute_done_at[static_cast<std::size_t>(s - 1)] >= 0.0;
      if (reductions_ok && compute_ok) {
        const double start =
            std::max(compute_done_at[static_cast<std::size_t>(s - 1)],
                     dep < 0 ? 0.0
                             : all_reduced_at[static_cast<std::size_t>(dep)]);
        start_step(std::max(now, start), s);
      } else {
        break;  // steps start in order
      }
    }
  };

  start_step = [&](double when, int step) {
    if (step >= config.steps ||
        step_started[static_cast<std::size_t>(step)]) {
      return;
    }
    step_started[static_cast<std::size_t>(step)] = true;
    engine.Schedule(when, [&, step](double now) {
      step_started_at[static_cast<std::size_t>(step)] = now;
      // Gradient buckets become ready during back-propagation.
      for (std::size_t b = 0; b < n_buckets; ++b) {
        engine.Schedule(now + config.bucket_ready_s[b],
                        [&, step, b](double ready_time) {
                          network_queue.emplace_back(step, b);
                          pump_network(ready_time);
                        });
      }
      if (n_buckets == 0) all_reduced_at[static_cast<std::size_t>(step)] = now;
      engine.Schedule(now + config.compute_seconds, [&, step](double done) {
        compute_done_at[static_cast<std::size_t>(step)] = done;
        if (n_buckets == 0) {
          all_reduced_at[static_cast<std::size_t>(step)] = done;
        }
        maybe_start_next(done, step);
      });
    });
  };

  start_step(0.0, 0);
  const double end = engine.Run();

  // Export the simulated timeline through the same Chrome-trace format
  // the wall-clock instrumentation uses: compute spans on one lane,
  // network transfers on the next. Simulated seconds map directly to
  // trace microseconds.
  if (auto* tracer = obs::Tracer()) {
    constexpr double kUs = 1e6;
    const int compute_tid = obs::TraceRecorder::kSimTid;
    const int network_tid = obs::TraceRecorder::kSimTid + 1;
    for (int s = 0; s < config.steps; ++s) {
      const double started = step_started_at[static_cast<std::size_t>(s)];
      const double done = compute_done_at[static_cast<std::size_t>(s)];
      if (started < 0.0 || done < started) continue;
      tracer->RecordSpanAt("sim.compute", "netsim", started * kUs,
                           (done - started) * kUs, compute_tid);
    }
    for (const Transfer& t : transfers) {
      tracer->RecordSpanAt("sim.transfer", "netsim", t.start * kUs,
                           t.duration * kUs, network_tid);
    }
  }

  // Steady-state step time from the second half of the run.
  const int half = config.steps / 2;
  const double span = step_started_at[static_cast<std::size_t>(
                          config.steps - 1)] -
                      step_started_at[static_cast<std::size_t>(half)];
  OverlapResult result;
  result.steady_step_seconds = span / (config.steps - 1 - half);
  result.exposed_comm_seconds =
      std::max(0.0, result.steady_step_seconds - config.compute_seconds);
  result.network_busy_fraction = end > 0 ? network_busy_time / end : 0.0;
  return result;
}

OverlapConfig BuildOverlapConfig(const ArchSpec& spec,
                                 const MachineModel& machine,
                                 Precision precision,
                                 double compute_seconds,
                                 std::int64_t fusion_bytes, int lag) {
  OverlapConfig config;
  config.compute_seconds = compute_seconds;
  config.lag = lag;
  config.bandwidth = machine.nic_bw;
  config.latency = 2.0 * machine.net_latency *
                   std::max(1.0, std::log2(static_cast<double>(
                                     machine.max_nodes)));
  const int bpe = BytesPerElement(precision);

  // Walk parameterised ops in backprop (reverse) order, fusing into
  // buckets; a bucket is ready when the cumulative share of backward
  // conv FLOPs preceding it has been computed.
  double total_flops = 0.0;
  for (const OpSpec& op : spec.ops) {
    if (op.kind == OpSpec::Kind::kConv || op.kind == OpSpec::Kind::kDeconv) {
      total_flops += ConvFlops(op.kernel, op.out_h, op.out_w, op.in_c,
                               op.out_c, 1);
    }
  }
  double flops_so_far = 0.0;
  double bucket = 0.0;
  for (auto it = spec.ops.rbegin(); it != spec.ops.rend(); ++it) {
    if (it->kind == OpSpec::Kind::kConv ||
        it->kind == OpSpec::Kind::kDeconv) {
      flops_so_far += ConvFlops(it->kernel, it->out_h, it->out_w, it->in_c,
                                it->out_c, 1);
    }
    if (it->params == 0) continue;
    bucket += static_cast<double>(it->params) * bpe;
    if (bucket >= static_cast<double>(fusion_bytes)) {
      config.bucket_bytes.push_back(bucket);
      config.bucket_ready_s.push_back(
          compute_seconds * std::min(1.0, flops_so_far / total_flops));
      bucket = 0.0;
    }
  }
  if (bucket > 0.0) {
    config.bucket_bytes.push_back(bucket);
    config.bucket_ready_s.push_back(compute_seconds);
  }
  return config;
}

}  // namespace exaclim
