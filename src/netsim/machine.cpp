#include "netsim/machine.hpp"

namespace exaclim {

MachineModel MachineModel::Summit() {
  MachineModel m;
  m.name = "Summit";
  m.gpu = {.name = "V100",
           .peak_fp32 = 15.7e12,
           .peak_fp16 = 125e12,
           .mem_bw = 900e9};
  m.gpus_per_node = 6;
  m.mpi_ranks_per_node = 4;  // one per virtual IB device (Sec V-A3)
  m.nvlink_bw = 150e9;       // effective unidirectional per GPU
  m.nic_bw = 12.5e9;         // dual-rail EDR, unidirectional effective
  m.net_latency = 5e-6;
  m.fs_read_bw = 100e9;      // early-install Spectrum Scale read rate
  m.local_storage_bw = 6e9;  // node NVMe burst buffer
  m.max_nodes = 4608;
  // Calibrated against 90.7% parallel efficiency at 27360 GPUs (Fig 4b).
  m.variability = {.sigma_frac = 0.0225, .per_rank_serial = 4.5e-10};
  return m;
}

MachineModel MachineModel::PizDaint() {
  MachineModel m;
  m.name = "Piz Daint";
  m.gpu = {.name = "P100",
           .peak_fp32 = 9.5e12,
           .peak_fp16 = 9.5e12,  // no Tensor Cores: FP16 not accelerated
           .mem_bw = 732e9};
  m.gpus_per_node = 1;
  m.mpi_ranks_per_node = 1;
  m.nvlink_bw = 0.0;  // single GPU per node
  m.nic_bw = 10e9;    // Aries per-node injection
  m.net_latency = 1.5e-6;
  m.fs_read_bw = 112e9;       // effective Lustre read limit (Fig 5)
  m.local_storage_bw = 20e9;  // tmpfs (DRAM) staging
  m.max_nodes = 5320;
  // Calibrated against 83.4% @ 2048 and 79.0% @ 5300 GPUs (Fig 4a).
  m.variability = {.sigma_frac = 0.042, .per_rank_serial = 1.45e-5};
  return m;
}

}  // namespace exaclim
