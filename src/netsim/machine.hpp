#pragma once

#include <string>

#include "tensor/cast.hpp"

namespace exaclim {

/// GPU compute/memory capability (peak numbers from the vendor specs the
/// paper quotes in Sec VI-A).
struct GpuModel {
  std::string name;
  double peak_fp32 = 0.0;   // FLOP/s
  double peak_fp16 = 0.0;   // FLOP/s (Tensor Cores on V100)
  double mem_bw = 0.0;      // bytes/s HBM2

  double Peak(Precision p) const {
    return p == Precision::kFP32 ? peak_fp32 : peak_fp16;
  }
};

/// Per-machine run-time variability: synchronous data-parallel training
/// waits for the slowest of P ranks each step, so per-step noise costs
/// roughly sigma * sqrt(2 ln P) (expected max of P near-Gaussian step
/// times), plus a per-rank serial term for latency-bound stages. The two
/// coefficients are calibrated against the paper's reported endpoint
/// efficiencies (Sec VII-B) and documented in EXPERIMENTS.md; the shape
/// of every scaling curve then follows from the model.
struct VariabilityModel {
  double sigma_frac = 0.02;       // relative per-step noise
  double per_rank_serial = 0.0;   // seconds of serial cost per rank
};

/// A whole system (Sec VI-A): Summit or Piz Daint.
struct MachineModel {
  std::string name;
  GpuModel gpu;
  int gpus_per_node = 1;
  int mpi_ranks_per_node = 1;     // hybrid all-reduce shard owners
  double nvlink_bw = 0.0;         // intra-node GPU<->GPU bytes/s
  double nic_bw = 0.0;            // per-node inter-node bytes/s
  double net_latency = 5e-6;      // per-message seconds
  double fs_read_bw = 0.0;        // shared global filesystem bytes/s
  double local_storage_bw = 0.0;  // per-node SSD / tmpfs bytes/s
  int max_nodes = 0;
  VariabilityModel variability;
  /// Controller message-processing rate (Horovod rank-0 bottleneck).
  double controller_msg_rate = 1.5e6;

  int MaxGpus() const { return max_nodes * gpus_per_node; }

  /// Summit (Sec VI-A2): 4608 nodes x 6 V100 (125 TF/s FP16 Tensor
  /// Cores, 900 GB/s HBM2), NVLink 300 GB/s bidirectional per GPU,
  /// dual-rail EDR InfiniBand (~25 GB/s per node, virtualised as 4
  /// devices), Spectrum Scale filesystem, 800 GB node-local NVMe burst
  /// buffer.
  static MachineModel Summit();

  /// Piz Daint XC50 (Sec VI-A1): 5320 nodes x 1 P100 (9.5 TF/s FP32,
  /// 732 GB/s), Aries dragonfly, Lustre with ~112 GB/s effective read
  /// bandwidth for this workload (Fig 5), tmpfs local staging.
  static MachineModel PizDaint();
};

}  // namespace exaclim
