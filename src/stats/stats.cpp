#include "stats/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace exaclim {

double Percentile(std::span<const double> values, double q) {
  EXACLIM_CHECK(!values.empty(), "percentile of empty sample");
  EXACLIM_CHECK(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

SeriesSummary Summarize(std::span<const double> series) {
  SeriesSummary s;
  s.median = Percentile(series, 0.5);
  s.lo = Percentile(series, 0.16);
  s.hi = Percentile(series, 0.84);
  return s;
}

std::vector<double> MovingAverage(std::span<const double> series,
                                  std::size_t window) {
  EXACLIM_CHECK(window >= 1, "moving-average window must be >= 1");
  std::vector<double> out;
  out.reserve(series.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    acc += series[i];
    if (i >= window) acc -= series[i - window];
    const std::size_t n = std::min(i + 1, window);
    out.push_back(acc / static_cast<double>(n));
  }
  return out;
}

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<std::size_t>(num_classes) * num_classes, 0) {
  EXACLIM_CHECK(num_classes_ >= 1, "need at least one class");
}

void ConfusionMatrix::AddOne(std::uint8_t prediction, std::uint8_t label) {
  EXACLIM_CHECK(prediction < num_classes_ && label < num_classes_,
                "class out of range");
  ++counts_[static_cast<std::size_t>(prediction) * num_classes_ + label];
  ++total_;
}

void ConfusionMatrix::Add(std::span<const std::uint8_t> predictions,
                          std::span<const std::uint8_t> labels) {
  EXACLIM_CHECK(predictions.size() == labels.size(),
                "prediction/label count mismatch");
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    AddOne(predictions[i], labels[i]);
  }
}

void ConfusionMatrix::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

std::int64_t ConfusionMatrix::count(int pred, int label) const {
  return counts_[static_cast<std::size_t>(pred) * num_classes_ + label];
}

double ConfusionMatrix::IoU(int c) const {
  std::int64_t tp = count(c, c);
  std::int64_t fp = 0, fn = 0;
  for (int k = 0; k < num_classes_; ++k) {
    if (k == c) continue;
    fp += count(c, k);
    fn += count(k, c);
  }
  const std::int64_t denom = tp + fp + fn;
  return denom == 0 ? 1.0
                    : static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionMatrix::MeanIoU() const {
  double acc = 0.0;
  for (int c = 0; c < num_classes_; ++c) acc += IoU(c);
  return acc / num_classes_;
}

double ConfusionMatrix::PixelAccuracy() const {
  if (total_ == 0) return 1.0;
  std::int64_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += count(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::LabelFrequency(int c) const {
  if (total_ == 0) return 0.0;
  std::int64_t labelled = 0;
  for (int k = 0; k < num_classes_; ++k) labelled += count(k, c);
  return static_cast<double>(labelled) / static_cast<double>(total_);
}

}  // namespace exaclim
