#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace exaclim {

/// Linear-interpolated percentile of an unsorted sample (q in [0,1]).
double Percentile(std::span<const double> values, double q);

/// Sec VI summary of a per-step time series: median over time with an
/// asymmetric central-68% confidence interval from the 0.16 / 0.84
/// percentiles.
struct SeriesSummary {
  double median = 0.0;
  double lo = 0.0;  // 0.16 percentile
  double hi = 0.0;  // 0.84 percentile
};
SeriesSummary Summarize(std::span<const double> series);

/// Moving average with the given window (the Fig 6 loss curves use
/// window 10 to filter step-to-step fluctuations).
std::vector<double> MovingAverage(std::span<const double> series,
                                  std::size_t window);

/// Per-class confusion matrix for segmentation metrics: intersection over
/// union per class, mean IoU (the Sec VII-D metric: 59% Tiramisu, 73%
/// DeepLabv3+), pixel accuracy and observed class frequencies.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void Add(std::span<const std::uint8_t> predictions,
           std::span<const std::uint8_t> labels);
  void AddOne(std::uint8_t prediction, std::uint8_t label);
  void Reset();

  int num_classes() const { return num_classes_; }
  std::int64_t count(int pred, int label) const;
  std::int64_t total() const { return total_; }

  /// IoU of class c: TP / (TP + FP + FN). Returns 1 for classes absent
  /// from both predictions and labels.
  double IoU(int c) const;
  double MeanIoU() const;
  double PixelAccuracy() const;
  /// Label-class frequency (fraction of pixels labelled c).
  double LabelFrequency(int c) const;

 private:
  int num_classes_;
  std::vector<std::int64_t> counts_;  // counts_[pred * C + label]
  std::int64_t total_ = 0;
};

}  // namespace exaclim
