// Overlapped gradient exchange (DESIGN §14): executed step-time of the
// serialized compute-then-comm exchanger vs the as-ready bucketed
// overlap, wire bytes of the packed-FP16 format vs FP32, a zero-alloc
// census of the steady-state exchange phase, and the netsim model's
// predicted serialized/overlapped ratio as a cross-check.
//
// Emits BENCH_overlap.json; the ci.sh `overlap-smoke` stage asserts the
// overlapped exposed-comm tail stays well under the serialized exchange,
// fences the step wall time, and ratchets the exchange-phase allocation
// census against tools/alloc_budget_exchange.json.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/fault.hpp"
#include "common/thread_pool.hpp"
#include "data/dataset.hpp"
#include "netsim/scale.hpp"
#include "nn/loss.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "stats/stats.hpp"
#include "train/trainer.hpp"

namespace exaclim {
namespace {

constexpr int kRanks = 4;
constexpr int kWarmupSteps = 2;
constexpr int kMeasuredSteps = 4;
constexpr int kRounds = 3;  // serialized/overlapped runs alternate

TrainerOptions BenchTrainer(bool overlap) {
  TrainerOptions o;
  o.arch = TrainerOptions::Arch::kTiramisu;
  o.tiramisu = Tiramisu::Config::Downscaled(4);
  o.learning_rate = 2e-3f;
  o.exchanger.transport = ReduceTransport::kMpiRing;
  o.exchanger.shuffle_ready_order = false;
  o.exchanger.overlap = overlap;
  // A few buckets per step so early buckets close (and reduce) while
  // backward is still producing the later ones. The downscaled Tiramisu
  // carries ~15 KB of gradients, so 4 KB splits a step into ~4 buckets.
  o.exchanger.fusion_threshold_bytes = 4 << 10;
  return o;
}

struct StepTimes {
  std::vector<double> step_s;      // rank 0 per-step wall time
  std::vector<double> exchange_s;  // rank 0 per-step exchange-phase time:
                                   // the full exchange when serialized,
                                   // only the exposed WaitAll tail when
                                   // overlapped
};

/// Runs `kWarmupSteps + kMeasuredSteps` distributed steps over kRanks
/// SimWorld ranks and appends rank 0's measured per-step timings.
/// Every rank draws the same deterministic batch sequence as the other
/// configuration, so the two timed runs execute identical math. The
/// caller alternates serialized/overlapped rounds so slow machine-load
/// drift hits both configurations evenly.
void TimeSteps(const ClimateDataset& dataset,
               const std::vector<float>& weights, bool overlap,
               StepTimes* out, bool diag = false) {
  std::int64_t buf0 = 0, byt0 = 0;
  if (auto* c = obs::CounterOrNull("exchange.buffers")) buf0 = c->value();
  if (auto* c = obs::CounterOrNull("exchange.bytes")) byt0 = c->value();
  SimWorld world(kRanks);
  world.Run([&](Communicator& comm) {
    RankTrainer trainer(BenchTrainer(overlap), weights, comm.rank());
    Rng rng(1234u + static_cast<std::uint64_t>(comm.rank()));
    const auto next_batch = [&] {
      std::vector<std::int64_t> idx(2);
      for (auto& i : idx) {
        i = rng.Int(0, dataset.size(DatasetSplit::kTrain) - 1);
      }
      return dataset.MakeBatch(DatasetSplit::kTrain, idx);
    };
    for (int s = 0; s < kWarmupSteps; ++s) {
      (void)trainer.Step(next_batch(), &comm);
    }
    for (int s = 0; s < kMeasuredSteps; ++s) {
      const auto r = trainer.Step(next_batch(), &comm);
      if (comm.rank() == 0) {
        out->step_s.push_back(r.timings.total_seconds);
        out->exchange_s.push_back(r.timings.exchange_seconds);
      }
    }
  });
  if (!diag) return;
  if (auto* c = obs::CounterOrNull("exchange.buffers")) {
    std::int64_t byt = 0;
    if (auto* b = obs::CounterOrNull("exchange.bytes")) byt = b->value() - byt0;
    const double steps = (kWarmupSteps + kMeasuredSteps) * kRanks;
    std::printf("  %s: %.0f fused buckets/step, %.0f gradient bytes/step\n",
                overlap ? "overlapped" : "serialized",
                static_cast<double>(c->value() - buf0) / steps,
                static_cast<double>(byt) / steps);
  }
}

/// Total bytes SimWorld moved for one full exchange of `elems` gradient
/// floats under the given wire format.
std::int64_t ExchangeWireBytes(Precision wire, std::int64_t elems) {
  SimWorld world(kRanks);
  world.Run([&](Communicator& comm) {
    Param param("g", Tensor::Zeros(TensorShape{elems}));
    param.grad.Fill(static_cast<float>(comm.rank() + 1) * 0.25f);
    ExchangerOptions opts;
    opts.transport = ReduceTransport::kMpiRing;
    opts.shuffle_ready_order = false;
    opts.wire_precision = wire;
    GradientExchanger exchanger(opts, 5);
    std::vector<Param*> params{&param};
    exchanger.Exchange(comm, params);
  });
  return world.total_bytes();
}

struct ExchangeAllocs {
  std::int64_t count = 0;
  std::int64_t bytes = 0;
};

/// Process-wide allocations of `reps` overlapped exchanges over kRanks
/// ranks (FP16 wire, multiple buckets). Nothing but the exchange path
/// runs inside the world, so the census is attributable; the caller
/// subtracts two rep counts to cancel the fixed setup/warmup costs.
ExchangeAllocs CensusRun(int reps) {
  ResetAllocSiteStats();
  std::int64_t count = 0, bytes = 0;
  {
    EXACLIM_ALLOC_CENSUS("exchange.census");
    SimWorld world(kRanks);
    world.Run([&](Communicator& comm) {
      std::vector<std::unique_ptr<Param>> owned;
      std::vector<Param*> params;
      for (int i = 0; i < 12; ++i) {
        owned.push_back(std::make_unique<Param>(
            "g" + std::to_string(i), Tensor::Zeros(TensorShape{4096})));
        owned.back()->grad.Fill(static_cast<float>(comm.rank() + i));
        params.push_back(owned.back().get());
      }
      ExchangerOptions opts;
      opts.transport = ReduceTransport::kMpiRing;
      opts.shuffle_ready_order = false;
      opts.wire_precision = Precision::kFP16;
      opts.fusion_threshold_bytes = 16 << 10;  // a few tensors per bucket
      GradientExchanger exchanger(opts, 5);
      for (int s = 0; s < reps; ++s) {
        exchanger.BeginStep(comm, params, nullptr, Deadline(kNoTimeout));
        for (int i = 0; i < static_cast<int>(params.size()); ++i) {
          exchanger.NotifyGradReady(i);
        }
        (void)exchanger.WaitAll();
      }
    });
  }
  const AllocSiteId id = FindAllocSite("exchange.census");
  if (id >= 0) {
    const AllocSiteInfo info = GetAllocSite(id);
    count = info.count;
    bytes = info.bytes;
  }
  return {count, bytes};
}

}  // namespace

int Main() {
  // Pin the pool (ParallelFor closure counts scale with workers) and
  // count heap traffic for the exchange-phase census below.
  setenv("EXACLIM_THREADS", "4", /*overwrite=*/1);
  SetAllocTracking(true);
  if (!obs::EnableFromEnv()) obs::Enable();

  ClimateDataset::Options d;
  d.num_samples = 24;
  d.generator.height = 128;
  d.generator.width = 128;
  d.channels = {kTMQ, kU850, kV850, kPSL};
  const ClimateDataset dataset(d);
  const auto weights = MakeClassWeights(dataset.MeasureFrequencies(8),
                                        WeightingScheme::kInverseSqrt);

  obs::BenchReport report("overlap");

  // ---- Executed step time: serialized vs overlapped exchange. --------
  // Arm a deterministic 5 ms per-message delivery latency (the
  // comm.delay fault site, DESIGN §8) for the timed rounds. SimWorld's
  // transport is otherwise pure memcpy: on a box with fewer cores than
  // ranks the compute halves of both configurations time-slice the same
  // CPU and the overlap win drowns in scheduler noise. Wire latency is
  // a timed condvar wait, not CPU, so it models the network component
  // that overlap actually hides — it is hideable on any core count
  // (CPU contention only lengthens backward, which *grows* the hiding
  // window), which makes the comparison deterministic: the serialized
  // path pays every bucket's latency chain after backward, the
  // overlapped path only the tail that backward could not cover.
  FaultInjector::Global().Reset();
  FaultInjector::Global().ArmFromString("comm.delay:1:1:-1:0.005");
  StepTimes ser_times, ovl_times;
  for (int round = 0; round < kRounds; ++round) {
    TimeSteps(dataset, weights, /*overlap=*/false, &ser_times,
              /*diag=*/round == 0);
    TimeSteps(dataset, weights, /*overlap=*/true, &ovl_times,
              /*diag=*/round == 0);
  }
  FaultInjector::Global().Reset();
  const std::vector<double>& serialized = ser_times.step_s;
  const std::vector<double>& overlapped = ovl_times.step_s;

  // Steady-state exchange allocation census (exchange thread + packed
  // FP16 wire + per-bucket negotiation). Two rep counts, subtracted:
  // world/exchanger setup and first-step buffer growth cancel, leaving
  // only the per-exchange steady-state heap traffic.
  constexpr int kCensusBase = 3;
  constexpr int kCensusExtra = 8;
  const ExchangeAllocs base = CensusRun(kCensusBase);
  const ExchangeAllocs more = CensusRun(kCensusBase + kCensusExtra);
  const double exch_allocs =
      static_cast<double>(more.count - base.count) / kCensusExtra;
  const double exch_bytes =
      static_cast<double>(more.bytes - base.bytes) / kCensusExtra;

  const double ser_med = Summarize(serialized).median;
  const double ovl_med = Summarize(overlapped).median;
  const double ser_exch_med = Summarize(ser_times.exchange_s).median;
  const double ovl_exch_med = Summarize(ovl_times.exchange_s).median;
  report.AddSeries("step_serialized_s", serialized);
  report.AddSeries("step_overlap_s", overlapped);
  // Exposed exchange time: the serialized path pays the whole exchange
  // after backward; the overlapped path pays only the WaitAll tail not
  // hidden behind backward compute. This is the structural win and the
  // sharp CI gate — step wall time also improves but is noisier.
  report.AddSeries("exchange_exposed_serialized_s", ser_times.exchange_s);
  report.AddSeries("exchange_exposed_overlap_s", ovl_times.exchange_s);
  report.AddScalar("overlap_step_ratio", ovl_med / ser_med);
  report.AddScalar("alloc_count.step.exchange", exch_allocs);
  report.AddScalar("alloc_bytes.step.exchange", exch_bytes);

  std::printf(
      "DESIGN §14 — overlapped exchange, executed over %d SimWorld ranks "
      "(Tiramisu 1/4-scale, ring transport, %d x %d measured steps)\n",
      kRanks, kRounds, kMeasuredSteps);
  std::printf("  %-28s %12s %16s\n", "mode", "step [ms]",
              "exposed comm [ms]");
  std::printf("  %-28s %12.2f %16.2f\n", "serialized (comm after bwd)",
              ser_med * 1e3, ser_exch_med * 1e3);
  std::printf("  %-28s %12.2f %16.2f\n", "overlapped (as-ready buckets)",
              ovl_med * 1e3, ovl_exch_med * 1e3);
  std::printf(
      "  overlapped/serialized: step-time ratio %.3f, exposed-comm ratio "
      "%.3f\n",
      ovl_med / ser_med, ovl_exch_med / ser_exch_med);
  std::printf(
      "  exchange heap traffic (steady state, %d ranks, per overlapped "
      "exchange): %.0f allocs, %.0f bytes\n",
      kRanks, exch_allocs, exch_bytes);

  // ---- Wire bytes: packed FP16 vs FP32. ------------------------------
  const std::int64_t grad_elems = 1 << 18;  // 1 MB of gradients
  const std::int64_t bytes_fp32 =
      ExchangeWireBytes(Precision::kFP32, grad_elems);
  const std::int64_t bytes_fp16 =
      ExchangeWireBytes(Precision::kFP16, grad_elems);
  report.AddScalar("exchange_bytes_fp32", static_cast<double>(bytes_fp32));
  report.AddScalar("exchange_bytes_fp16", static_cast<double>(bytes_fp16));
  report.AddScalar("wire_byte_ratio",
                   static_cast<double>(bytes_fp16) /
                       static_cast<double>(bytes_fp32));
  std::printf(
      "\nPacked wire (1 MB gradient, ring over %d ranks): FP32 %.2f MB, "
      "FP16 %.2f MB on the wire (ratio %.3f)\n",
      kRanks, bytes_fp32 / 1e6, bytes_fp16 / 1e6,
      static_cast<double>(bytes_fp16) / static_cast<double>(bytes_fp32));

  // ---- Model cross-check: netsim's serialized/overlapped ratio. ------
  ScaleOptions o;
  o.machine = MachineModel::Summit();
  o.spec = PaperDeepLabSpec(16);
  o.precision = Precision::kFP32;
  o.anchor_samples_per_sec = 0.87;
  o.anchor_tf_per_sample = 14.41;
  ScaleOptions serial_opts = o;
  serial_opts.overlap_exchange = false;
  const ScaleSimulator overlap_sim(o), serial_sim(serial_opts);
  std::printf(
      "\nModelled serialized/overlapped step ratio at Summit scale "
      "(DeepLabv3+ FP32, lag 0):\n");
  std::printf("  %7s %16s %16s %8s\n", "GPUs", "serialized [ms]",
              "overlapped [ms]", "ratio");
  for (const int gpus : {96, 1536, 6144, 27360}) {
    const double ts = serial_sim.Simulate(gpus).step_seconds;
    const double to = overlap_sim.Simulate(gpus).step_seconds;
    std::printf("  %7d %16.1f %16.1f %8.3f\n", gpus, ts * 1e3, to * 1e3,
                to / ts);
  }
  const double model_ratio =
      overlap_sim.Simulate(27360).step_seconds /
      serial_sim.Simulate(27360).step_seconds;
  report.AddScalar("model_overlap_ratio_27360", model_ratio);
  std::printf(
      "  The executed ratio above is CPU-substrate-bound; at Summit scale "
      "the model\n  puts the hidden fraction at %.0f%% of the exchange.\n",
      (1.0 - model_ratio) * 100.0);

  const auto path = report.WriteJsonFile();
  if (!path.empty()) std::printf("\nwrote %s\n", path.string().c_str());
  obs::FinishFromEnv();
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
