// Reproduces Fig 6: training-loss-vs-time curves at several scales,
// precisions and lag settings. The training itself is real — downscaled
// networks on the synthetic CAM5 data, distributed over simulated ranks
// with the full Horovod-style exchange — while the wall-clock axis is
// mapped through the at-scale performance model (a thread rank stands in
// for a block of GPUs; the learning rate follows the paper's Fig 6
// settings: 0.0001 @384 -> 0.0064 @1536 -> 0.4096 @6144, i.e. lr scaled
// by (ranks/384)^3 ... but applied to a stable downscaled base).
//
// Structural findings to reproduce (Sec VII-C): all configurations
// converge; FP16 converges in less wall-clock time than FP32; DeepLabv3+
// converges faster than Tiramisu; lag 0 and lag 1 give nearly identical
// loss curves.

#include <cstdio>
#include <string>
#include <vector>

#include "netsim/scale.hpp"
#include "stats/stats.hpp"
#include "train/trainer.hpp"

namespace exaclim {
namespace {

struct Curve {
  std::string label;
  std::vector<double> time_s;
  std::vector<double> loss;
};

Curve RunConfig(const ClimateDataset& dataset, TrainerOptions::Arch arch,
                Precision precision, int lag, int ranks, int paper_gpus,
                double paper_rate, double lr_scale, int steps) {
  TrainerOptions o;
  o.arch = arch;
  o.tiramisu = Tiramisu::Config::Downscaled(4);
  o.deeplab = DeepLabV3Plus::Config::Downscaled(4);
  o.precision = precision;
  o.lag = lag;
  // A gentle version of the paper's super-linear LR scaling, kept inside
  // the stable region of the downscaled problem.
  o.learning_rate = 1.5e-3f * static_cast<float>(lr_scale);
  o.exchanger.transport = ReduceTransport::kMpiRing;
  const auto result = RunDistributedTraining(o, dataset, ranks, steps, 16);

  // Simulated step time at the paper scale this run stands in for.
  ScaleOptions so;
  so.machine = MachineModel::Summit();
  so.spec = arch == TrainerOptions::Arch::kTiramisu ? PaperTiramisuSpec(16)
                                                    : PaperDeepLabSpec(16);
  so.precision = precision;
  so.local_batch = precision == Precision::kFP16 ? 2 : 1;
  so.lag = lag;
  so.anchor_samples_per_sec = paper_rate;
  const double step_seconds =
      ScaleSimulator(so).Simulate(paper_gpus).step_seconds;

  Curve curve;
  char label[128];
  std::snprintf(label, sizeof(label), "%-10s %s #GPUs=%-5d lag=%d",
                arch == TrainerOptions::Arch::kTiramisu ? "Tiramisu"
                                                        : "DeepLabv3+",
                ToString(precision), paper_gpus, lag);
  curve.label = label;
  const auto smoothed = MovingAverage(result.loss_history, 10);
  for (std::size_t s = 0; s < smoothed.size(); ++s) {
    curve.time_s.push_back(static_cast<double>(s + 1) * step_seconds);
    curve.loss.push_back(smoothed[s]);
  }
  return curve;
}

}  // namespace

int Main() {
  ClimateDataset::Options data;
  data.num_samples = 60;
  data.generator.height = 32;
  data.generator.width = 32;
  data.channels = {kTMQ, kU850, kV850, kPSL};
  const ClimateDataset dataset(data);

  const int steps = 48;
  std::vector<Curve> curves;
  using Arch = TrainerOptions::Arch;
  // Thread-rank stand-ins: 2 ranks ~ 384 GPUs, 4 ~ 1536, 8 ~ 6144.
  curves.push_back(RunConfig(dataset, Arch::kTiramisu, Precision::kFP16, 0,
                             2, 384, 5.00, 1.0, steps));
  curves.push_back(RunConfig(dataset, Arch::kTiramisu, Precision::kFP32, 0,
                             2, 384, 1.91, 1.0, steps));
  curves.push_back(RunConfig(dataset, Arch::kTiramisu, Precision::kFP16, 0,
                             4, 1536, 5.00, 2.0, steps));
  curves.push_back(RunConfig(dataset, Arch::kTiramisu, Precision::kFP32, 0,
                             4, 1536, 1.91, 2.0, steps));
  curves.push_back(RunConfig(dataset, Arch::kDeepLab, Precision::kFP16, 0,
                             4, 1536, 2.67, 2.0, steps));
  curves.push_back(RunConfig(dataset, Arch::kDeepLab, Precision::kFP16, 1,
                             4, 1536, 2.67, 2.0, steps));
  curves.push_back(RunConfig(dataset, Arch::kTiramisu, Precision::kFP16, 0,
                             8, 6144, 5.00, 4.0, steps));
  curves.push_back(RunConfig(dataset, Arch::kTiramisu, Precision::kFP32, 0,
                             8, 6144, 1.91, 4.0, steps));

  std::printf(
      "Fig 6 — training loss vs (simulated) wall-clock time; 10-step "
      "moving averages\n\n");
  std::printf("%-42s %10s %10s %10s %12s\n", "configuration", "loss@25%",
              "loss@50%", "loss@100%", "t_final [s]");
  for (const Curve& c : curves) {
    const std::size_t n = c.loss.size();
    std::printf("%-42s %10.4f %10.4f %10.4f %12.1f\n", c.label.c_str(),
                c.loss[n / 4], c.loss[n / 2], c.loss[n - 1],
                c.time_s.back());
  }

  // Structural checks, printed explicitly.
  auto final_loss = [&](std::size_t i) { return curves[i].loss.back(); };
  auto start_loss = [&](std::size_t i) { return curves[i].loss.front(); };
  std::printf("\nStructural findings vs the paper:\n");
  for (std::size_t i = 0; i < curves.size(); ++i) {
    std::printf("  converges (loss down %5.1f%%): %s\n",
                (1.0 - final_loss(i) / start_loss(i)) * 100.0,
                curves[i].label.c_str());
  }
  // FP16 finishes the same step count in less simulated time than FP32.
  std::printf(
      "  FP16 time for %d steps = %.1fs vs FP32 %.1fs (paper: FP16 "
      "converges in significantly less time)\n",
      steps, curves[0].time_s.back(), curves[1].time_s.back());
  std::printf(
      "  DeepLab lag0 vs lag1 final loss: %.4f vs %.4f (paper: nearly "
      "identical)\n",
      final_loss(4), final_loss(5));
  return 0;
}

}  // namespace exaclim

int main() { return exaclim::Main(); }
